// Package txconflict reproduces "The Transactional Conflict Problem"
// (Alistarh, Haider, Kübler, Nadiradze — SPAA 2018): optimal online
// algorithms for choosing grace periods when transactions conflict,
// under both requestor-wins and requestor-aborts resolution.
//
// The repository contains the strategy family (internal/strategy),
// the conflict cost model (internal/core), the transaction-length
// distribution subsystem (internal/dist: the Figure 2 suite —
// constant, uniform, exponential, lognormal, bimodal — plus
// heavy-tailed pareto, rank-skewed zipf and empirical trace replay,
// and the CDF-inversion/integration helpers the strategies use), a
// cycle-level HTM multicore simulator with directory MSI coherence
// (internal/htm and friends) standing in for the paper's Graphite
// setup, a hand-rolled software transactional runtime for
// real-goroutine experiments (internal/stm: a sharded lock arena
// with cache-line-padded word metadata, striped per-shard commit
// clocks with TL2-style snapshot extension, and an attempt-epoch
// kill protocol), and harnesses
// regenerating every figure of the paper's evaluation
// (internal/synth, internal/adversary, internal/experiments; see
// bench_test.go, cmd/ and EXPERIMENTS.md).
package txconflict
