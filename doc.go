// Package txconflict reproduces "The Transactional Conflict Problem"
// (Alistarh, Haider, Kübler, Nadiradze — SPAA 2018): optimal online
// algorithms for choosing grace periods when transactions conflict,
// under both requestor-wins and requestor-aborts resolution.
//
// The repository contains the strategy family (internal/strategy),
// the conflict cost model (internal/core), the transaction-length
// distribution subsystem (internal/dist: the Figure 2 suite —
// constant, uniform, exponential, lognormal, bimodal — plus
// heavy-tailed pareto, rank-skewed zipf and empirical trace replay,
// and the CDF-inversion/integration helpers the strategies use), and
// the unified scenario engine (internal/scenario): the paper's
// Section 8.2 benchmarks (stack, queue, TxApp, bimodal) plus
// read-mostly, long-reader and hotspot/zipf workloads expressed as
// backend-agnostic transaction programs with dist-driven lengths and
// verifiable committed-state invariants.
//
// Two execution backends run the same scenarios: a cycle-level HTM
// multicore simulator with directory MSI coherence (internal/htm,
// fed through the internal/workload compiler) standing in for the
// paper's Graphite setup, and a hand-rolled software transactional
// runtime for real-goroutine experiments (internal/stm: a sharded
// lock arena with cache-line-padded word metadata, striped per-shard
// commit clocks with TL2-style snapshot extension, an attempt-epoch
// kill protocol, a windowed conflict-chain estimator behind
// Config.KWindow, and a flat-combining group commit for the lazy TL2
// mode behind Config.CommitBatch — a per-shard combiner acquires the
// merged commit locks once and writes back a bounded queue of write
// sets with a single clock advance per written stripe, stamping each
// queued descriptor's outcome into its packed state word so kills
// landed while queued still resolve correctly), driven by
// scenario.STMRunner. cmd/txsim and cmd/stmbench select workloads
// from the one registry via -scenario/-dist (stmbench -batch for the
// group commit), and every run is checked against its scenario's
// invariant end to end — including the cross-mode equivalence suite
// holding eager, lazy and lazy+batched commits to identical
// committed state on seeded schedules.
//
// The internal/trace subsystem closes the Section 1 profile-to-
// simulation loop: a per-worker recorder hooks into the STM runtime
// (stm.Config.Trace) and captures one record per atomic block —
// footprints, retries, kills, grace waits, timings — into a
// versioned on-disk format; profiles convert to dist.Empirical
// samplers in the catalog (trace:<key>), and replays re-issue the
// recorded footprints as first-class scenarios on both backends
// (stmbench -record/-replay/-fidelity, txsim -replay,
// experiments.TraceFidelity).
//
// internal/txkv takes the runtime end-to-end: a transactional
// key-value store built entirely on the STM word arena — an
// open-addressing hash map whose buckets, values and per-value-class
// linked secondary index live in arena words, so every probe, insert
// and index relink is ordinary tx.Load/tx.Store traffic and the
// conflict policies, grace strategies and group commit apply
// unchanged — plus multi-key document updates, keyed counters, a
// catalog of zipf-skewed workloads (readmostly, hotspot-counter,
// document) with structural and semantic invariant checks, a
// closed-loop load generator, and the cmd/txkvd HTTP front-end
// (batch requests on a fixed pool of stm.AtomicWorker identities;
// -perf emits the BENCH_txkv.json keyed-throughput matrix). The same
// traffic shapes are registered in the scenario catalog as
// kvcounter/kvread/kvdoc, so both backends exercise keyed conflict
// patterns in the parity suites.
//
// The runtime's knobs form a live control plane: stm.Config keeps
// only construction-time structure, while the dynamic half —
// resolution policy, grace strategy, the Section 9 hybrid rule,
// KWindow, CommitBatch, retry bounds — lives in an stm.Policy behind
// one atomic pointer, swappable mid-run via Runtime.SetPolicy (each
// attempt latches the policy once, so swaps never tear a running
// transaction). internal/tune closes the trace→policy loop online —
// a Sampler in the Config.Trace seam keeps rolling counters, a
// hysteresis Controller maps windowed observations to policy moves
// (group-commit lane on grace fraction, KWindow from k variance,
// requestor-wins↔aborts at the paper's k≈2.5 boundary), and a Tuner
// goroutine applies them with a decision log. stmbench -adaptive
// runs the phase-shift convergence experiment against per-phase
// static oracles; txkvd -adaptive serves under the loop with
// GET/POST /v1/policy for inspection and manual override.
//
// Harnesses regenerating every figure of the paper's evaluation live
// in internal/synth, internal/adversary and internal/experiments;
// see bench_test.go, cmd/, internal/README.md and EXPERIMENTS.md.
package txconflict
