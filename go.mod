module txconflict

go 1.24
