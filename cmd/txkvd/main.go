// Command txkvd serves the transactional key-value store
// (internal/txkv) over HTTP and drives it with the closed-loop load
// generator — the serving front-end that turns the STM word arena
// into an end-to-end keyed system: batch requests execute on a fixed
// pool of transaction workers, one stm.AtomicWorker identity per pool
// worker.
//
// Usage:
//
//	txkvd                                    # serve on -addr
//	txkvd -mode lazy -batch 4 -workers 8     # lazy group-commit pool
//	txkvd -workload list                     # list keyed workloads
//	txkvd -bench -workload hotspot-counter   # in-process closed loop
//	txkvd -bench -record run.btrace          # capture the run's transaction trace
//	txkvd -load http://127.0.0.1:7070 -users 8 -workload document
//	txkvd -perf -out BENCH_txkv.json         # CI perf snapshot
//
// Endpoints: POST /v1/batch, GET /v1/stats, GET|POST /v1/policy,
// GET /v1/check, GET /metrics (Prometheus text exposition),
// GET /healthz, and with -pprof the net/http/pprof suite under
// /debug/pprof/.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"time"

	"txconflict/internal/cliutil"
	"txconflict/internal/dist"
	"txconflict/internal/metrics"
	"txconflict/internal/rng"
	"txconflict/internal/scenario"
	"txconflict/internal/stm"
	"txconflict/internal/trace"
	"txconflict/internal/tune"
	"txconflict/internal/txkv"
)

func main() {
	var (
		addr     = flag.String("addr", ":7070", "listen address (serve mode)")
		capacity = flag.Int("capacity", 0, "store bucket count (0 = sized for -workload, else 2048)")
		workers  = flag.Int("workers", 4, "transaction worker pool size (one stm.AtomicWorker each)")
		mode     = flag.String("mode", "eager", "locking mode: eager or lazy")
		adaptive = flag.Bool("adaptive", false, "run the internal/tune control loop over the served runtime (serve/-bench modes; implies -mode lazy)")
		batch    = flag.Int("batch", 0, "lazy group-commit batch bound (0 = unbatched; > 0 implies -mode lazy)")
		fold     = flag.Bool("fold", false, "escrow-counter mode: key-classed index + commutative delta folding in the combiner (requires -batch > 0)")
		shards   = flag.Int("shards", 0, "clock stripes per arena (0 = default, 1 = flat single-clock)")
		workload = flag.String("workload", "", "keyed workload from internal/txkv (or 'list'); drives -bench/-load/-perf and sizes the served store")
		distName = flag.String("dist", "", "override the workload's key-rank sampler (see internal/dist; '' = workload zipf default)")
		mu       = flag.Float64("mu", 0, "mean of the -dist override, in key ranks (0 = half the keyspace)")
		users    = flag.Uint("users", 4, "closed-loop users (-bench/-load)")
		bsize    = flag.Int("batchsize", 16, "ops per batch request (-bench/-load)")
		dur      = flag.Duration("duration", 300*time.Millisecond, "load run duration (-bench/-load; per cell in -perf)")
		seed     = flag.Uint64("seed", 1, "random seed")
		load     = flag.String("load", "", "drive a running txkvd at this base URL instead of serving")
		bench    = flag.Bool("bench", false, "run the workload closed-loop against an in-process store and exit")
		perf     = flag.Bool("perf", false, "emit the JSON perf snapshot (keyed ops/sec at 1/4/8 procs)")
		out      = flag.String("out", "", "write output to this file instead of stdout (perf mode)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the serve mux (serve mode; exposes goroutine/heap/CPU profiles — keep off on untrusted networks)")
		msample  = flag.Int("metrics-sample", metrics.DefaultSampleN, "1-in-N sampling interval for the commit-phase timers (rounded up to a power of two)")
		record   = flag.String("record", "", "with -bench: record the run's transaction trace to this file (.btrace = binary container; see internal/trace)")
	)
	flag.Parse()

	if *workload == "list" {
		for _, line := range txkv.Describe() {
			fmt.Println(line)
		}
		return
	}
	if *workload != "" {
		if err := cliutil.CheckName("workload", *workload, txkv.Names()); err != nil {
			cliutil.Fatal("txkvd", err)
		}
	}
	if *mode != "eager" && *mode != "lazy" {
		cliutil.Fatal("txkvd", fmt.Errorf("unknown mode %q; modes: eager, lazy", *mode))
	}
	for _, c := range []struct {
		name string
		v    int
	}{{"workers", *workers}, {"users", int(*users)}, {"batchsize", *bsize}} {
		if err := cliutil.CheckPositive(c.name, c.v); err != nil {
			cliutil.Fatal("txkvd", err)
		}
	}
	for _, c := range []struct {
		name string
		v    int
	}{{"batch", *batch}, {"shards", *shards}, {"capacity", *capacity}} {
		if err := cliutil.CheckNonNegative(c.name, c.v); err != nil {
			cliutil.Fatal("txkvd", err)
		}
	}
	// Folding only exists inside the group-commit combiner; without a
	// batch bound the escrow store would never fold anything.
	if err := cliutil.CheckRequires("fold", *fold, *batch > 0, "-batch > 0 (folding happens in the group-commit combiner)"); err != nil {
		cliutil.Fatal("txkvd", err)
	}
	if err := cliutil.CheckPositive("metrics-sample", *msample); err != nil {
		cliutil.Fatal("txkvd", err)
	}
	// The pprof mux only exists in serve mode; in the one-shot modes
	// the flag would silently do nothing.
	serving := !*bench && !*perf && *load == ""
	if err := cliutil.CheckRequires("pprof", *pprofOn, serving, "serve mode (-pprof mounts on the HTTP mux)"); err != nil {
		cliutil.Fatal("txkvd", err)
	}
	if err := cliutil.CheckRequires("record", *record != "", *bench, "-bench (the recorder drains when the in-process run stops)"); err != nil {
		cliutil.Fatal("txkvd", err)
	}

	cfg := stm.DefaultConfig()
	// The combiner only exists in lazy mode; adaptive runs lazy too so
	// the controller may open it.
	cfg.Lazy = *mode == "lazy" || *batch > 0 || *adaptive
	cfg.CommitBatch = *batch
	cfg.FoldCommutative = *fold
	cfg.Shards = *shards
	if *adaptive && cfg.KWindow == 0 {
		cfg.KWindow = 64 // the controller's k rules read the windowed estimator
	}
	// Always-on metrics plane: latency histograms and the abort
	// taxonomy feed /metrics and /v1/stats; -metrics-sample paces the
	// commit-phase timers. Sharded per worker — size for whichever
	// pool identity (serve workers or bench users) is larger.
	planeWorkers := *workers
	if *bench && int(*users) > planeWorkers {
		planeWorkers = int(*users)
	}
	cfg.Metrics = metrics.NewPlane(planeWorkers, *msample)

	if *perf {
		// The perf matrix sweeps all three commit modes itself; only
		// the lazy+batch bound carries over from the flags.
		runPerf(*workload, *batch, *dur, *seed, *out)
		return
	}

	// Everything below needs a concrete workload; default to the
	// read-dominated shape for serving and ad-hoc runs.
	wname := *workload
	if wname == "" {
		wname = "readmostly"
	}
	opt := txkv.Options{}
	if *distName != "" {
		w0, err := txkv.ByName(wname, txkv.Options{})
		if err != nil {
			cliutil.Fatal("txkvd", err)
		}
		m := *mu
		if m <= 0 {
			m = float64(w0.Keys()) / 2
		}
		smp, err := dist.ByName(*distName, m)
		if err != nil {
			// The error already carries the sorted registered names.
			cliutil.Fatal("txkvd", err)
		}
		opt.KeyDist = smp
	}
	w, err := txkv.ByName(wname, opt)
	if err != nil {
		cliutil.Fatal("txkvd", err)
	}

	g := txkv.GenConfig{
		Users:    int(*users),
		Batch:    *bsize,
		Duration: *dur,
		Seed:     *seed,
	}

	switch {
	case *bench:
		// The recorder goes on cfg.Trace first so attachSampler tees
		// into it: adaptive sampling and trace capture stack.
		var rec *trace.Recorder
		if *record != "" {
			rec = trace.NewRecorder("txkv:"+w.Name(), planeWorkers, cfg.String())
			rec.SetUnitNs(scenario.CalibrateUnitNs())
			cfg.Trace = rec
		}
		sampler := attachSampler(&cfg, *adaptive)
		s := w.NewStore(txkv.Config{Capacity: *capacity, EscrowCounters: *fold, STM: cfg})
		var tn *tune.Tuner
		if sampler != nil {
			tn = tune.New(s.Runtime(), sampler, tune.Limits{}, 0)
			tn.Start()
		}
		res, err := w.RunLocal(s, g)
		if tn != nil {
			tn.Stop()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "txkvd:", err)
			os.Exit(1)
		}
		if rec != nil {
			saveRecording(rec, *record)
		}
		snap := s.Runtime().Stats.Snapshot()
		fmt.Printf("%s: %.0f ops/sec (%d ops, %d users, %d commits, %d aborts, mode %s)\n",
			w.Name(), res.OpsPerSec(), res.Ops, g.Users, snap["commits"], snap["aborts"], modeLabel(cfg, *adaptive))
		if tn != nil {
			fmt.Printf("adaptive: policy %s after %d swaps\n",
				s.Runtime().Policy(), s.Runtime().PolicySwaps())
			for _, d := range tn.Decisions() {
				for _, reason := range d.Reasons {
					fmt.Printf("  decision %d -> %s: %s\n", d.Seq, d.Policy, reason)
				}
			}
		}
	case *load != "":
		runRemote(w, *load, g)
	default:
		serve(w, *addr, *capacity, *workers, *seed, cfg, *adaptive, *fold, *pprofOn)
	}
}

// saveRecording drains the bench recorder into the trace file at
// path through the streaming writer (format by extension), after the
// load generator's users have stopped.
func saveRecording(rec *trace.Recorder, path string) {
	w, err := trace.Create(path, rec.Header())
	if err != nil {
		fmt.Fprintln(os.Stderr, "txkvd:", err)
		os.Exit(1)
	}
	n, err := rec.WriteTo(w)
	if err == nil {
		err = w.Close()
	} else {
		w.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "txkvd:", err)
		os.Exit(1)
	}
	fmt.Printf("recorded %d transactions to %s\n", n, path)
}

// attachSampler wraps cfg.Trace in a tune.Sampler when adaptive mode
// is on, returning the sampler (nil otherwise).
func attachSampler(cfg *stm.Config, adaptive bool) *tune.Sampler {
	if !adaptive {
		return nil
	}
	s := tune.NewSampler(cfg.Trace)
	cfg.Trace = s
	return s
}

func modeLabel(cfg stm.Config, adaptive bool) string {
	label := "eager"
	switch {
	case cfg.Lazy && cfg.CommitBatch > 0:
		label = fmt.Sprintf("lazy+batch%d", cfg.CommitBatch)
	case cfg.Lazy:
		label = "lazy"
	}
	if cfg.FoldCommutative {
		label += "+fold"
	}
	if adaptive {
		label += "+adaptive"
	}
	return label
}

// serve runs the HTTP front-end until the process is killed. The
// store is sized for the selected workload unless -capacity is set.
// With -adaptive, the internal/tune control loop runs over the served
// runtime and /v1/policy exposes (and overrides) its decisions. With
// -pprof, net/http/pprof mounts under /debug/pprof/ on the same mux
// — guarded behind the flag because the profile endpoints leak
// goroutine stacks and heap contents to anyone who can reach them.
func serve(w *txkv.Workload, addr string, capacity, workers int, seed uint64, cfg stm.Config, adaptive, escrow, pprofOn bool) {
	sampler := attachSampler(&cfg, adaptive)
	s := w.NewStore(txkv.Config{Capacity: capacity, EscrowCounters: escrow, STM: cfg})
	sv := txkv.NewServer(s, workers, seed)
	if sampler != nil {
		tn := tune.New(s.Runtime(), sampler, tune.Limits{}, 0)
		sv.AttachTuner(tn)
		tn.Start() // sv.Close stops it
	}
	defer sv.Close()
	mux := http.NewServeMux()
	mux.Handle("/", sv)
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	fmt.Printf("txkvd: serving on %s (workload %s, capacity %d, %d workers, mode %s, pprof %v)\n",
		addr, w.Name(), w.Capacity(), workers, modeLabel(cfg, adaptive), pprofOn)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "txkvd:", err)
		os.Exit(1)
	}
}

// runRemote drives a running txkvd over HTTP with the closed-loop
// generator, then asks the server to verify its structural invariants
// (meaningful only once traffic has stopped — ours just did).
func runRemote(w *txkv.Workload, base string, g txkv.GenConfig) {
	res, err := w.Run(func(int, *rng.Rand) txkv.Client {
		return &txkv.HTTPClient{Base: base}
	}, g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "txkvd:", err)
		os.Exit(1)
	}
	fmt.Printf("%s @ %s: %.0f ops/sec (%d ops, %d users)\n",
		w.Name(), base, res.OpsPerSec(), res.Ops, g.Users)
	resp, err := http.Get(base + "/v1/check")
	if err != nil {
		fmt.Fprintln(os.Stderr, "txkvd:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fmt.Fprintf(os.Stderr, "txkvd: server invariant check failed: %s", msg)
		os.Exit(1)
	}
	fmt.Println("server invariants ok")
}

// runPerf emits the machine-readable keyed-throughput snapshot for CI
// (make bench-txkv): workload x commit mode x GOMAXPROCS, every cell
// verified against the structural and semantic invariants.
func runPerf(workload string, commitBatch int, dur time.Duration, seed uint64, out string) {
	pc := txkv.PerfConfig{
		CommitBatch: commitBatch,
		Duration:    dur,
		Seed:        seed,
	}
	if workload != "" {
		pc.Workloads = []string{workload}
	}
	rep, err := txkv.Perf(pc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "txkvd:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "txkvd:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "txkvd:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d cells)\n", out, len(rep.Cells))
}
