// Command advbench validates the paper's global guarantees:
// Corollary 1 (the sum of running times under adversarial conflict
// scheduling is constant-competitive with the clairvoyant optimum)
// and Corollary 2 (multiplicative backoff yields probabilistic
// progress).
//
// Usage:
//
//	advbench                 # Corollary 1 table over all adversaries
//	advbench -progress       # Corollary 2 attempt-bound experiment
//	advbench -timeline       # operational multi-thread validation
//	advbench -ntx 100000     # bigger schedules
//	advbench -dist pareto    # draw lengths from a named distribution
//
// -dist accepts any name from internal/dist (constant, uniform,
// exponential, lognormal, bimodal, pareto, zipf, trace) and replaces
// the default length distributions of the random and high-contention
// adversaries and of the timeline; -mu sets its mean.
package main

import (
	"flag"
	"fmt"
	"os"

	"txconflict/internal/adversary"
	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/report"
	"txconflict/internal/rng"
	"txconflict/internal/stats"
	"txconflict/internal/strategy"
)

func main() {
	var (
		progress = flag.Bool("progress", false, "run the Corollary 2 progress experiment")
		timeline = flag.Bool("timeline", false, "run the operational multi-thread timeline validation")
		ntx      = flag.Int("ntx", 20000, "transactions per adversarial schedule")
		trials   = flag.Int("trials", 5000, "trials for the progress experiment")
		distName = flag.String("dist", "", "named length distribution overriding the defaults")
		mu       = flag.Float64("mu", 150, "mean transaction length for -dist")
		seed     = flag.Uint64("seed", 1, "random seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of text")
	)
	flag.Parse()
	r := rng.New(*seed)

	var lengths dist.Sampler
	if *distName != "" {
		var err error
		if lengths, err = dist.ByName(*distName, *mu); err != nil {
			fmt.Fprintln(os.Stderr, "advbench:", err)
			os.Exit(2)
		}
	}

	var tab *report.Table
	switch {
	case *progress:
		tab = progressTable(*trials, r)
	case *timeline:
		tab = timelineTable(*ntx, *seed, lengths)
	default:
		tab = corollary1Table(*ntx, lengths, r)
	}
	var err error
	if *csv {
		err = tab.WriteCSV(os.Stdout)
	} else {
		err = tab.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "advbench:", err)
		os.Exit(1)
	}
}

func corollary1Table(ntx int, lengths dist.Sampler, r *rng.Rand) *report.Table {
	t := &report.Table{
		Title:   "Corollary 1: sum-of-running-times ratio vs (r·w+1)/(w+1) bound",
		Columns: []string{"adversary", "policy", "strategy", "waste w", "ratio", "bound", "holds"},
	}
	l1, l2, l3 := dist.Sampler(dist.Exponential{Mu: 200}), dist.Sampler(dist.UniformMean(300)), dist.Sampler(dist.Exponential{Mu: 100})
	if lengths != nil {
		l1, l2, l3 = lengths, lengths, lengths
	}
	gens := []adversary.Generator{
		adversary.Random{NTx: ntx, Lengths: l1, ConflictFrac: 0.5, K: 2, Cleanup: 50},
		adversary.Random{NTx: ntx, Lengths: l2, ConflictFrac: 0.9, K: 3, Cleanup: 20},
		adversary.HighContention{NTx: ntx, Lengths: l3, KMax: 6, Cleanup: 30},
		adversary.AntiDeterministic{NTx: ntx, K: 2, Cleanup: 25},
	}
	cases := []struct {
		pol core.Policy
		s   core.Strategy
	}{
		{core.RequestorWins, strategy.UniformRW{}},
		{core.RequestorWins, strategy.GeneralRW{}},
		{core.RequestorWins, strategy.Deterministic{}},
		{core.RequestorAborts, strategy.ExpRA{}},
	}
	for _, g := range gens {
		sched := g.Generate(r)
		for _, c := range cases {
			w := adversary.Waste(c.pol, sched)
			on := adversary.Run(c.pol, c.s, sched, r)
			opt := adversary.RunOpt(c.pol, sched)
			ratio := stats.Ratio(on.SumRunning, opt.SumRunning)
			localRatio := 0.0
			for _, conf := range sched.Conflicts {
				cc := core.Conflict{Policy: c.pol, K: conf.K, B: 1}
				if lr := c.s.(strategy.Analytic).Ratio(cc); lr > localRatio {
					localRatio = lr
				}
			}
			bound := adversary.CorollaryBound(localRatio, w)
			holds := "yes"
			if ratio > bound*1.03 {
				holds = "NO"
			}
			t.AddRow(g.Name(), c.pol.String(), c.s.Name(), w, ratio, bound, holds)
		}
	}
	return t
}

func progressTable(trials int, r *rng.Rand) *report.Table {
	t := &report.Table{
		Title:   "Corollary 2: attempts to commit under multiplicative backoff",
		Columns: []string{"y", "gamma", "k", "B0", "bound", "P[within bound]", "mean attempts"},
	}
	cases := []adversary.ProgressParams{
		{Y: 1000, Gamma: 3, K: 2, B0: 64},
		{Y: 5000, Gamma: 5, K: 2, B0: 32},
		{Y: 1000, Gamma: 2, K: 4, B0: 128},
		{Y: 200, Gamma: 8, K: 2, B0: 16},
	}
	for _, p := range cases {
		res := adversary.RunProgress(p, trials, r)
		sum := 0
		for _, a := range res.Attempts {
			sum += a
		}
		mean := float64(sum) / float64(len(res.Attempts))
		t.AddRow(p.Y, p.Gamma, p.K, p.B0, res.Bound, res.PWithinBound, mean)
	}
	t.AddNote("Corollary 2 predicts P[within bound] >= 1/2")
	return t
}

func timelineTable(ntx int, seed uint64, lengths dist.Sampler) *report.Table {
	if lengths == nil {
		lengths = dist.Exponential{Mu: 120}
	}
	t := &report.Table{
		Title:   "Operational timeline: sum of running times vs clairvoyant optimum",
		Columns: []string{"policy", "strategy", "threads", "waste w", "ratio", "bound", "grace saves"},
	}
	for _, n := range []int{2, 4, 8} {
		for _, c := range []struct {
			pol core.Policy
			s   core.Strategy
			r   float64
		}{
			{core.RequestorWins, strategy.UniformRW{}, 2},
			{core.RequestorAborts, strategy.ExpRA{}, 1.582},
		} {
			p := adversary.TimelineParams{
				Threads:      n,
				TxPerThread:  ntx / n,
				Lengths:      lengths,
				ConflictFrac: 0.4,
				Cleanup:      40,
				Policy:       c.pol,
				Strategy:     c.s,
				Seed:         seed,
			}
			ratio, w, online, _ := adversary.TimelineRatio(p)
			t.AddRow(c.pol.String(), c.s.Name(), n, w, ratio, adversary.CorollaryBound(c.r, w), online.GraceSaves)
		}
	}
	t.AddNote("operational model: delays shift whole thread timelines (queueing included)")
	return t
}
