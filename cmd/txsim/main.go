// Command txsim regenerates Figure 3 on the HTM multicore simulator:
// throughput of NO_DELAY, DELAY_TUNED, DELAY_DET and DELAY_RAND on
// the registered scenarios (the paper's stack, queue,
// transactional-application and bimodal benchmarks plus the
// read-mostly, long-reader and hotspot/zipf extensions) across
// thread counts. Workloads come from the shared scenario registry
// (internal/scenario), the same engine cmd/stmbench drives on the
// real STM runtime, and every cell is verified against the
// scenario's committed-state invariant.
//
// Usage:
//
//	txsim -scenario stack                   # one panel
//	txsim -scenario all                     # every registered scenario
//	txsim -scenario queue -threads 1,2,4,8  # custom sweep
//	txsim -scenario txapp -policy ra        # requestor-aborts HTM
//	txsim -scenario txapp -dist pareto -mu 80  # heavy-tailed lengths
//	txsim -scenario stack -detail 8         # per-cell metrics at 8 threads
//	txsim -replay run.trace                 # replay an stmbench -record file
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"txconflict/internal/cliutil"
	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/experiments"
	"txconflict/internal/report"
	"txconflict/internal/scenario"
	"txconflict/internal/strategy"
	"txconflict/internal/trace"
)

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	var (
		scen     = flag.String("scenario", "", "scenario from the shared registry (or 'all', 'list'); see internal/scenario")
		bench    = flag.String("bench", "all", "deprecated alias for -scenario")
		distName = flag.String("dist", "", "override the transaction-length distribution (see internal/dist; '' = scenario default)")
		mu       = flag.Float64("mu", 60, "mean of the -dist override, in cycles (0 replays a registered trace:<key> distribution raw)")
		threads  = flag.String("threads", "1,2,4,8,12,16", "comma-separated core counts")
		cycles   = flag.Uint64("cycles", 2_000_000, "simulated cycles per cell")
		policy   = flag.String("policy", "rw", "conflict policy: rw or ra")
		delta    = flag.Int("delta", 1, "Add increment magnitude for the commutative scenarios (hotspot, kvcounter; lowered to read-modify-write on the simulator)")
		seed     = flag.Uint64("seed", 1, "random seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of text")
		detail   = flag.Int("detail", 0, "print detailed metrics for this thread count instead of the sweep")
		ablate   = flag.Int("ablate", 0, "run the design-choice ablations at this thread count instead of the sweep")
		replay   = flag.String("replay", "", "replay a recorded trace file (stmbench -record) as the simulated workload")
	)
	flag.Parse()

	for _, c := range []struct {
		name string
		v    int
	}{{"detail", *detail}, {"ablate", *ablate}} {
		if err := cliutil.CheckNonNegative(c.name, c.v); err != nil {
			cliutil.Fatal("txsim", err)
		}
	}
	if err := cliutil.CheckPositive("delta", *delta); err != nil {
		cliutil.Fatal("txsim", err)
	}

	sel := *scen
	if sel == "" {
		sel = *bench
	}
	if sel == "list" {
		for _, line := range scenario.Describe() {
			fmt.Println(line)
		}
		return
	}

	if *replay != "" {
		// The recorded footprints become a registry scenario, so the
		// Figure 3 sweep below replays them like any built-in workload.
		// Compute units are converted to simulated cycles via the
		// trace's calibration header; huge captures load as an evenly
		// spaced index sample.
		tr, err := trace.LoadSample(*replay, 65536)
		if err != nil {
			fmt.Fprintln(os.Stderr, "txsim:", err)
			os.Exit(2)
		}
		sel = "replay:" + filepath.Base(*replay)
		if err := trace.RegisterScenarioCycles(sel, tr); err != nil {
			fmt.Fprintln(os.Stderr, "txsim:", err)
			os.Exit(2)
		}
		if _, _, err := trace.NewProfile(tr).RegisterSamplers(filepath.Base(*replay)); err != nil {
			fmt.Fprintln(os.Stderr, "txsim:", err)
			os.Exit(2)
		}
		fmt.Printf("replaying %s: scenario %q (%d committed records, unit scale ×%.3g; -dist trace:%s -mu 0 for its raw lengths)\n",
			*replay, sel, tr.Commits(), tr.CycleScale(), filepath.Base(*replay))
	}

	ths, err := parseThreads(*threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "txsim:", err)
		os.Exit(2)
	}
	pol := core.RequestorWins
	if strings.EqualFold(*policy, "ra") {
		pol = core.RequestorAborts
	}
	cfg := experiments.Fig3Config{Threads: ths, Cycles: *cycles, Policy: pol, Delta: uint64(*delta), Seed: *seed, GHz: 1}
	if *distName != "" {
		smp, err := dist.ByName(*distName, *mu)
		if err != nil {
			// The error already carries the sorted registered names.
			cliutil.Fatal("txsim", err)
		}
		cfg.Length = smp
	}
	if sel != "all" {
		if err := cliutil.CheckName("scenario", sel, scenario.Names()); err != nil {
			cliutil.Fatal("txsim", err)
		}
	}

	benches := []string{sel}
	if sel == "all" {
		benches = scenario.Names()
	}

	for _, b := range benches {
		if *ablate > 0 {
			tab, err := experiments.Ablations(b, *ablate, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "txsim:", err)
				os.Exit(1)
			}
			if err := tab.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "txsim:", err)
				os.Exit(1)
			}
			continue
		}
		if *detail > 0 {
			if err := printDetail(b, *detail, cfg); err != nil {
				fmt.Fprintln(os.Stderr, "txsim:", err)
				os.Exit(1)
			}
			continue
		}
		tab, err := experiments.Figure3(b, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "txsim:", err)
			os.Exit(1)
		}
		if *csv {
			err = tab.WriteCSV(os.Stdout)
		} else {
			err = tab.WriteText(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "txsim:", err)
			os.Exit(1)
		}
	}
}

func printDetail(bench string, threads int, cfg experiments.Fig3Config) error {
	t := &report.Table{
		Title:   fmt.Sprintf("%s detail at %d threads", bench, threads),
		Columns: []string{"strategy", "commits", "aborts", "conflicts", "graceCommits", "capAborts", "nackAborts", "ops/s"},
	}
	tuned, err := experiments.TunedDelayFor(bench, cfg.Length)
	if err != nil {
		return err
	}
	for _, s := range strategy.Fig3Set(tuned) {
		met, err := experiments.Fig3Metrics(bench, threads, s, cfg)
		if err != nil {
			return err
		}
		t.AddRow(s.Name(), met.Commits, met.Aborts, met.Conflicts, met.GraceCommits,
			met.CapacityAborts, met.NackAborts, met.OpsPerSecond(cfg.GHz))
	}
	return t.WriteText(os.Stdout)
}
