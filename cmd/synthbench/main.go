// Command synthbench regenerates the paper's synthetic experiments
// (Section 8.1): Figure 2a/2b/2c, the Section 5.3 abort-probability
// comparison, the RW-vs-RA crossover table, and the competitive-ratio
// validation sweep.
//
// Usage:
//
//	synthbench -fig 2a            # Figure 2a (B=2000, µ=500)
//	synthbench -fig 2b            # Figure 2b (B=200,  µ=500)
//	synthbench -fig 2c            # Figure 2c (worst case for DET)
//	synthbench -abortprob         # Section 5.3 abort probabilities
//	synthbench -crossover         # RW vs RA ratios by chain length
//	synthbench -ratios            # empirical vs analytic ratios
//	synthbench -sweep             # extended distribution suite sweep
//	synthbench -dist pareto       # sweep one named distribution
//	synthbench -all               # everything
//	synthbench -fig 2a -csv       # CSV instead of aligned text
//
// The sweeps accept -b, -mu and -k to reshape the conflict (fixed
// abort cost, mean transaction length, chain length); -dist accepts
// any name from internal/dist (constant, uniform, exponential,
// lognormal, bimodal, pareto, zipf, trace).
package main

import (
	"flag"
	"fmt"
	"os"

	"txconflict/internal/dist"
	"txconflict/internal/report"
	"txconflict/internal/synth"
)

func main() {
	var (
		fig       = flag.String("fig", "", "figure to regenerate: 2a, 2b or 2c")
		abortProb = flag.Bool("abortprob", false, "run the Section 5.3 abort-probability experiment")
		crossover = flag.Bool("crossover", false, "print the RW vs RA crossover table")
		ratios    = flag.Bool("ratios", false, "validate empirical competitive ratios")
		sweep     = flag.Bool("sweep", false, "sweep the extended distribution suite")
		distName  = flag.String("dist", "", "sweep a single named length distribution")
		all       = flag.Bool("all", false, "run every synthetic experiment")
		trials    = flag.Int("trials", 200000, "trials per cell")
		b         = flag.Float64("b", 2000, "fixed abort cost B for the sweeps")
		mu        = flag.Float64("mu", 500, "mean transaction length for the sweeps")
		k         = flag.Int("k", 2, "conflict chain length for the sweeps")
		seed      = flag.Uint64("seed", 1, "random seed")
		csv       = flag.Bool("csv", false, "emit CSV instead of text")
	)
	flag.Parse()

	// Validate the distribution name before burning trials on the
	// other experiments.
	var single dist.Sampler
	if *distName != "" {
		var err error
		if single, err = dist.ByName(*distName, *mu); err != nil {
			fmt.Fprintln(os.Stderr, "synthbench:", err)
			os.Exit(2)
		}
	}

	var tables []*report.Table
	add := func(t *report.Table) { tables = append(tables, t) }

	if *all || *fig == "2a" {
		add(synth.Figure2(2000, 500, *trials, *seed))
	}
	if *all || *fig == "2b" {
		add(synth.Figure2(200, 500, *trials, *seed))
	}
	if *all || *fig == "2c" {
		add(synth.Figure2c(1000, *trials, *seed))
	}
	if *all || *abortProb {
		add(synth.AbortProbability(1000, *trials, *seed))
	}
	if *all || *crossover {
		add(synth.Crossover(10))
	}
	if *all || *ratios {
		add(synth.RatioValidation(1000, *trials/4, *seed))
	}
	if *all || *sweep {
		add(synth.ExtendedSweep(*b, *mu, *k, *trials, *seed))
	}
	if single != nil {
		add(synth.Sweep([]dist.Sampler{single}, *b, *k, *trials, *seed))
	}
	if len(tables) == 0 {
		fmt.Fprintln(os.Stderr, "nothing to do; try -all or -fig 2a (see -h)")
		os.Exit(2)
	}
	for _, t := range tables {
		var err error
		if *csv {
			err = t.WriteCSV(os.Stdout)
		} else {
			err = t.WriteText(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "synthbench:", err)
			os.Exit(1)
		}
	}
}
