// Command paper regenerates the complete evaluation of "The
// Transactional Conflict Problem" in one run, writing every table to
// the given output directory (default ./results):
//
//	paper [-out results] [-quick]
//
// -quick shrinks trial counts and simulated durations for a fast
// smoke reproduction (~seconds); the default sizes take a few
// minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"txconflict/internal/adversary"
	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/experiments"
	"txconflict/internal/report"
	"txconflict/internal/rng"
	"txconflict/internal/stats"
	"txconflict/internal/strategy"
	"txconflict/internal/synth"
)

func main() {
	var (
		out   = flag.String("out", "results", "output directory")
		quick = flag.Bool("quick", false, "small trial counts for a fast run")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	trials := 200000
	cycles := uint64(2_000_000)
	ntx := 20000
	if *quick {
		trials = 20000
		cycles = 300_000
		ntx = 3000
	}

	save := func(name string, tables ...*report.Table) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		for _, t := range tables {
			if err := t.WriteText(f); err != nil {
				fatal(err)
			}
		}
		fmt.Println("wrote", path)
	}

	// E1-E3: Figure 2.
	save("figure2.txt",
		synth.Figure2(2000, 500, trials, *seed),
		synth.Figure2(200, 500, trials, *seed),
		synth.Figure2c(1000, trials, *seed))

	// E10-E12: analytic validations.
	save("analytic.txt",
		synth.AbortProbability(1000, trials, *seed),
		synth.Crossover(10),
		synth.RatioValidation(1000, trials/4, *seed))

	// Scenario diversity beyond the paper: the extended distribution
	// suite (heavy-tailed, rank-skewed, trace replay) in both Figure 2
	// cost regimes.
	save("distsweep.txt",
		synth.ExtendedSweep(2000, 500, 2, trials, *seed),
		synth.ExtendedSweep(200, 500, 2, trials, *seed))

	// E4-E7: Figure 3 on the HTM simulator.
	cfg := experiments.DefaultFig3Config()
	cfg.Cycles = cycles
	cfg.Seed = *seed
	var fig3 []*report.Table
	for _, bench := range []string{"stack", "queue", "txapp", "bimodal"} {
		t, err := experiments.Figure3(bench, cfg)
		if err != nil {
			fatal(err)
		}
		fig3 = append(fig3, t)
	}
	save("figure3.txt", fig3...)

	// Ablations (DESIGN.md §5).
	abl, err := experiments.Ablations("txapp", 8, cfg)
	if err != nil {
		fatal(err)
	}
	save("ablations.txt", abl)

	// E8: Corollary 1.
	save("corollary1.txt", corollary1(ntx, rng.New(*seed)))

	// E9: Corollary 2.
	save("corollary2.txt", corollary2(trials/40, rng.New(*seed)))

	// E13: STM throughput on real goroutines.
	stmCfg := experiments.DefaultSTMConfig()
	if *quick {
		stmCfg.Duration = 50 * time.Millisecond
	}
	var stmTabs []*report.Table
	for _, bench := range []string{"stack", "queue", "txapp", "bimodal"} {
		t, err := experiments.STMThroughput(bench, stmCfg)
		if err != nil {
			fatal(err)
		}
		stmTabs = append(stmTabs, t)
	}
	save("stm.txt", stmTabs...)

	// E18: STM runtime design ablations — arena sharding, locking
	// mode, batched group commit, policies, chain estimator — each
	// varied alone against the pinned eager requestor-wins baseline.
	stmAbl, err := experiments.STMAblations("txapp", 8, stmCfg)
	if err != nil {
		fatal(err)
	}
	save("stm_ablations.txt", stmAbl)

	// E17: the Section 1 profile-to-simulation loop — record a real
	// hotspot run on the STM runtime, replay its exact footprints on
	// the HTM simulator and a fresh STM arena, compare.
	recDur := 300 * time.Millisecond
	fidCycles := uint64(1_000_000)
	if *quick {
		recDur = 80 * time.Millisecond
		fidCycles = 200_000
	}
	tr, err := experiments.RecordTrace("hotspot", stmCfg, 4, recDur)
	if err != nil {
		fatal(err)
	}
	fid, err := experiments.TraceFidelity(tr, experiments.FidelityConfig{
		Cycles:   fidCycles,
		Duration: recDur,
		Seed:     *seed,
		STM:      stmCfg, // same runtime mode as the recorded run
	})
	if err != nil {
		fatal(err)
	}
	save("tracefidelity.txt", fid)
}

func corollary1(ntx int, r *rng.Rand) *report.Table {
	t := &report.Table{
		Title:   "Corollary 1: sum-of-running-times ratio vs (r·w+1)/(w+1) bound",
		Columns: []string{"adversary", "policy", "strategy", "waste w", "ratio", "bound"},
	}
	gens := []adversary.Generator{
		adversary.Random{NTx: ntx, Lengths: dist.Exponential{Mu: 200}, ConflictFrac: 0.5, K: 2, Cleanup: 50},
		adversary.HighContention{NTx: ntx, Lengths: dist.Exponential{Mu: 100}, KMax: 6, Cleanup: 30},
		adversary.AntiDeterministic{NTx: ntx, K: 2, Cleanup: 25},
	}
	cases := []struct {
		pol core.Policy
		s   core.Strategy
	}{
		{core.RequestorWins, strategy.UniformRW{}},
		{core.RequestorWins, strategy.GeneralRW{}},
		{core.RequestorAborts, strategy.ExpRA{}},
	}
	for _, g := range gens {
		sched := g.Generate(r)
		for _, c := range cases {
			w := adversary.Waste(c.pol, sched)
			on := adversary.Run(c.pol, c.s, sched, r)
			opt := adversary.RunOpt(c.pol, sched)
			local := 0.0
			for _, conf := range sched.Conflicts {
				cc := core.Conflict{Policy: c.pol, K: conf.K, B: 1}
				if lr := c.s.(strategy.Analytic).Ratio(cc); lr > local {
					local = lr
				}
			}
			t.AddRow(g.Name(), c.pol.String(), c.s.Name(),
				w, stats.Ratio(on.SumRunning, opt.SumRunning), adversary.CorollaryBound(local, w))
		}
	}
	return t
}

func corollary2(trials int, r *rng.Rand) *report.Table {
	t := &report.Table{
		Title:   "Corollary 2: attempts to commit under multiplicative backoff",
		Columns: []string{"y", "gamma", "k", "B0", "bound", "P[within bound]"},
	}
	for _, p := range []adversary.ProgressParams{
		{Y: 1000, Gamma: 3, K: 2, B0: 64},
		{Y: 5000, Gamma: 5, K: 2, B0: 32},
		{Y: 1000, Gamma: 2, K: 4, B0: 128},
	} {
		res := adversary.RunProgress(p, trials, r)
		t.AddRow(p.Y, p.Gamma, p.K, p.B0, res.Bound, res.PWithinBound)
	}
	return t
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paper:", err)
	os.Exit(1)
}
