// Command stmbench runs the real-goroutine STM throughput benchmarks
// — the Figure 3 analogue on actual parallel hardware, with the same
// strategy set (NO_DELAY, DELAY_TUNED, DELAY_DET, DELAY_RAND).
// Workloads come from the shared scenario registry
// (internal/scenario), the same engine cmd/txsim drives on the HTM
// simulator, and every cell is verified against the scenario's
// committed-state invariant.
//
// Usage:
//
//	stmbench -scenario all
//	stmbench -scenario stack -goroutines 1,2,4,8
//	stmbench -scenario txapp -policy ra -lazy
//	stmbench -scenario hotspot -dist zipf -mu 100  # skewed lengths too
//	stmbench -scenario txapp -shards 1       # flat single-clock arena
//	stmbench -scenario txapp -kwindow 64     # windowed chain estimator
//	stmbench -scenario hotspot -batch 8      # lazy batched group commit
//	stmbench -scenario hotspot -batch 4 -fold  # commutative delta folding
//	stmbench -ablate -scenario txapp         # runtime design ablations
//	stmbench -perf -out BENCH_stm.json       # CI perf snapshot
//	stmbench -scenario all -fleet -fold -out BENCH_stm.json  # append the fleet matrix
//
// Trace capture and replay (internal/trace — the Section 1
// profile-to-simulation loop):
//
//	stmbench -scenario hotspot -record run.btrace  # record a real run (binary container)
//	stmbench -replay run.btrace                    # replay it as a scenario
//	stmbench -fidelity run.btrace                  # recorded vs sim vs replayed
//	stmbench -convert run.btrace -out run.trace    # binary <-> JSONL, streaming
//	stmbench -synth 1000000 -record big.btrace     # stream a synthetic trace to disk
//	stmbench -perf -tracesweep -out BENCH_stm.json # format size/codec sweep section
//
// Both trace formats load everywhere (-replay/-fidelity/-convert
// auto-detect by content); the .btrace extension selects the binary
// container on the writing side.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"txconflict/internal/cliutil"
	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/experiments"
	"txconflict/internal/metrics"
	"txconflict/internal/report"
	"txconflict/internal/scenario"
	"txconflict/internal/trace"
)

func main() {
	var (
		scen     = flag.String("scenario", "", "scenario from the shared registry (or 'all', 'list'); see internal/scenario")
		bench    = flag.String("bench", "all", "deprecated alias for -scenario")
		distName = flag.String("dist", "", "override the transaction-length distribution (see internal/dist; '' = scenario default)")
		mu       = flag.Float64("mu", 60, "mean of the -dist override, in busy-work iterations (0 replays a registered trace:<key> distribution raw)")
		levels   = flag.String("goroutines", "", "comma-separated goroutine counts (default: powers of two up to GOMAXPROCS)")
		dur      = flag.Duration("duration", 300*time.Millisecond, "measurement duration per cell")
		policy   = flag.String("policy", "rw", "conflict policy: rw or ra")
		lazy     = flag.Bool("lazy", false, "use lazy (commit-time) locking instead of eager")
		batch    = flag.Int("batch", 0, "lazy group-commit batch bound (0 = unbatched; > 0 implies -lazy)")
		fold     = flag.Bool("fold", false, "fold commutative deltas in the batched combiner (requires -batch > 0); with -perf, adds the foldSweep section")
		delta    = flag.Int("delta", 1, "Add increment magnitude for the commutative scenarios (hotspot, kvcounter)")
		shards   = flag.Int("shards", 0, "clock stripes per arena (0 = default, 1 = flat single-clock)")
		kwindow  = flag.Int("kwindow", 0, "windowed conflict-chain estimator size (0 = instantaneous 2+waiters)")
		reportIv = flag.Duration("report", 0, "periodic stderr progress reporter interval during measured cells: commits, p50/p99 commit latency, abort taxonomy (0 = off)")
		msample  = flag.Int("metrics-sample", metrics.DefaultSampleN, "1-in-N sampling interval for the commit-phase timers (rounded up to a power of two)")
		seed     = flag.Uint64("seed", 1, "random seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of text")
		ablate   = flag.Bool("ablate", false, "run the STM design ablations instead of the strategy sweep (baseline pinned: -policy/-lazy/-shards/-kwindow ignored)")
		adaptive = flag.Bool("adaptive", false, "run the adaptive-control convergence experiment (phase-shifted workload under the internal/tune loop); with -perf, adds the adaptiveSweep section")
		perf     = flag.Bool("perf", false, "emit the JSON perf snapshot (commits/sec at 1/4/8 procs plus the per-scenario sweep)")
		fleet    = flag.Bool("fleet", false, "run the scenario x shards x batch perf matrix and append machine-stamped entries to -out (instead of overwriting)")
		out      = flag.String("out", "", "write output to this file instead of stdout (perf mode)")
		record   = flag.String("record", "", "record a trace of the scenario run to this file (.btrace = binary container; see internal/trace)")
		replay   = flag.String("replay", "", "replay a recorded trace file as the benchmark scenario (either format; large traces are index-sampled)")
		fidelity = flag.String("fidelity", "", "emit the sim-vs-real fidelity report for a recorded trace file")
		convert  = flag.String("convert", "", "convert the trace file to the format of -out (JSONL <-> binary, streaming) and exit")
		synth    = flag.Int("synth", 0, "stream this many synthetic records to the -record path and exit (streaming-writer soak)")
		traceswp = flag.Bool("tracesweep", false, "with -perf, add the trace-format size/codec sweep section (traceSweep)")
	)
	flag.Parse()

	for _, c := range []struct {
		name string
		v    int
	}{{"batch", *batch}, {"shards", *shards}, {"kwindow", *kwindow}} {
		if err := cliutil.CheckNonNegative(c.name, c.v); err != nil {
			cliutil.Fatal("stmbench", err)
		}
	}
	if err := cliutil.CheckPositive("delta", *delta); err != nil {
		cliutil.Fatal("stmbench", err)
	}
	if err := cliutil.CheckPositive("metrics-sample", *msample); err != nil {
		cliutil.Fatal("stmbench", err)
	}
	// Folding only exists inside the group-commit combiner, so a
	// -fold without a batch bound would silently measure nothing —
	// except under -fleet, which sweeps the batch bound itself and
	// folds only in the batched cells.
	if err := cliutil.CheckRequires("fold", *fold, *batch > 0 || *fleet, "-batch > 0 (folding happens in the group-commit combiner)"); err != nil {
		cliutil.Fatal("stmbench", err)
	}
	if err := cliutil.CheckNonNegative("synth", *synth); err != nil {
		cliutil.Fatal("stmbench", err)
	}
	if err := cliutil.CheckRequires("tracesweep", *traceswp, *perf, "-perf (the sweep is a section of the perf snapshot)"); err != nil {
		cliutil.Fatal("stmbench", err)
	}
	if err := cliutil.CheckRequires("synth", *synth > 0, *record != "", "-record <path> (the synthetic stream needs a destination)"); err != nil {
		cliutil.Fatal("stmbench", err)
	}
	if err := cliutil.CheckRequires("convert", *convert != "", *out != "", "-out <path> (the destination format comes from its extension)"); err != nil {
		cliutil.Fatal("stmbench", err)
	}

	if *convert != "" {
		runConvert(*convert, *out)
		return
	}

	sel := *scen
	if sel == "" {
		sel = *bench
	}
	if sel == "list" {
		for _, line := range scenario.Describe() {
			fmt.Println(line)
		}
		return
	}

	if *replay != "" {
		// The loaded trace becomes a first-class registry scenario (and
		// its profiled distributions join the dist catalog), so the
		// normal sweep below runs it like any built-in.
		sel = loadReplay(*replay)
	}

	cfg := experiments.DefaultSTMConfig()
	cfg.Duration = *dur
	cfg.Seed = *seed
	cfg.Lazy = *lazy || *batch > 0 // the combiner only exists in lazy mode
	cfg.CommitBatch = *batch
	cfg.Fold = *fold
	cfg.Delta = uint64(*delta)
	cfg.Shards = *shards
	cfg.KWindow = *kwindow
	cfg.MetricsSample = *msample
	cfg.ReportEvery = *reportIv
	if strings.EqualFold(*policy, "ra") {
		cfg.Policy = core.RequestorAborts
	}
	if *distName != "" {
		smp, err := dist.ByName(*distName, *mu)
		if err != nil {
			// The error already carries the sorted registered names.
			cliutil.Fatal("stmbench", err)
		}
		cfg.Length = smp
	}
	if sel != "all" {
		if err := cliutil.CheckName("scenario", sel, scenario.Names()); err != nil {
			cliutil.Fatal("stmbench", err)
		}
	}
	if *levels != "" {
		var gs []int
		for _, part := range strings.Split(*levels, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "stmbench: bad goroutine count %q\n", part)
				os.Exit(2)
			}
			gs = append(gs, n)
		}
		cfg.Goroutines = gs
	}

	if *fidelity != "" {
		runFidelity(*fidelity, cfg)
		return
	}
	if *synth > 0 {
		runSynth(*synth, *record, maxLevel(cfg.Goroutines), *seed)
		return
	}
	if *record != "" {
		runRecord(sel, *record, cfg)
		return
	}
	if *fleet {
		runFleet(sel, cfg, *levels != "", *out)
		return
	}
	if *perf {
		cfg.Adaptive = *adaptive
		cfg.TraceSweep = *traceswp
		runPerf(sel, cfg, *levels != "", *out)
		return
	}
	if *adaptive {
		runAdaptive(cfg, *dur, *seed, *csv)
		return
	}

	benches := []string{sel}
	if sel == "all" {
		benches = scenario.Names()
	}
	for _, b := range benches {
		var (
			tab *report.Table
			err error
		)
		if *ablate {
			tab, err = experiments.STMAblations(b, maxLevel(cfg.Goroutines), cfg)
		} else {
			tab, err = experiments.STMThroughput(b, cfg)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		if *csv {
			err = tab.WriteCSV(os.Stdout)
		} else {
			err = tab.WriteText(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
	}
}

// runAdaptive runs the phase-shift convergence experiment: the
// internal/tune control loop over one live runtime, read against the
// best static policy per phase.
func runAdaptive(cfg experiments.STMConfig, dur time.Duration, seed uint64, csv bool) {
	rep, err := experiments.AdaptiveConvergence(experiments.AdaptiveConfig{
		Goroutines:    maxLevel(cfg.Goroutines),
		PhaseDuration: dur,
		Length:        cfg.Length,
		Seed:          seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	tab := rep.Table()
	if csv {
		err = tab.WriteCSV(os.Stdout)
	} else {
		err = tab.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
}

func maxLevel(levels []int) int {
	m := 0
	for _, n := range levels {
		if n > m {
			m = n
		}
	}
	return m
}

// replayBudget caps how many records -replay materializes: beyond
// it, trace.LoadSample keeps an evenly spaced subset (via the binary
// index where available), so replaying a 10⁸-record capture stays
// bounded in memory.
const replayBudget = 65536

// loadReplay loads a recorded trace (sampling past replayBudget),
// registers its replay in the scenario catalog (as
// "replay:<filename>") and its profiled length/think distributions in
// the dist catalog, and returns the registered scenario name.
func loadReplay(path string) string {
	tr, err := trace.LoadSample(path, replayBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(2)
	}
	name := "replay:" + filepath.Base(path)
	if err := trace.RegisterScenario(name, tr); err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(2)
	}
	if _, _, err := trace.NewProfile(tr).RegisterSamplers(filepath.Base(path)); err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(2)
	}
	if tr.Sampled > 0 {
		fmt.Printf("replaying %s: scenario %q (%d of %d records, index-sampled; -dist trace:%s -mu 0 for its raw lengths)\n",
			path, name, len(tr.Records), tr.Sampled, filepath.Base(path))
	} else {
		fmt.Printf("replaying %s: scenario %q (%d committed records; -dist trace:%s -mu 0 for its raw lengths)\n",
			path, name, tr.Commits(), filepath.Base(path))
	}
	return name
}

// runConvert streams a trace from one on-disk format to the other
// (destination format from -out's extension) without materializing
// it.
func runConvert(src, dst string) {
	n, err := trace.Convert(src, dst)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	sfi, serr := os.Stat(src)
	dfi, derr := os.Stat(dst)
	if serr == nil && derr == nil && sfi.Size() > 0 {
		fmt.Printf("converted %s -> %s (%d records, %d -> %d bytes, %.2fx)\n",
			src, dst, n, sfi.Size(), dfi.Size(), float64(sfi.Size())/float64(dfi.Size()))
		return
	}
	fmt.Printf("converted %s -> %s (%d records)\n", src, dst, n)
}

// runSynth streams n synthetic records through the trace writer —
// the bounded-memory soak behind `make trace-demo`'s million-record
// leg. Records are deterministic in -seed: round-robin workers,
// monotone start times, small sorted footprints, all committed.
func runSynth(n int, path string, workers int, seed uint64) {
	if workers < 1 {
		workers = 4
	}
	h := trace.Header{
		Scenario: "synth",
		Workers:  workers,
		Config:   fmt.Sprintf("synth(n=%d,seed=%d)", n, seed),
		UnitNs:   1,
	}
	w, err := trace.Create(path, h)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	x := seed | 1
	var rec trace.Record
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		base := uint32(x>>33) % 1024
		rec = trace.Record{
			Worker:    int32(i % workers),
			StartNs:   int64(i) * 1500,
			DurNs:     1200 + int64(x%400),
			Retries:   uint32(x % 3),
			Committed: true,
			Ops:       4,
			Compute:   float64(16 + x%64),
			Think:     float64(x % 32),
			Reads:     []uint32{base, base + 1, base + 7},
			Writes:    []uint32{base},
		}
		if err := w.WriteRecord(&rec); err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
	}
	if err := w.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	fi, err := os.Stat(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d synthetic records, %d bytes, %.1f bytes/record)\n",
		path, n, fi.Size(), float64(fi.Size())/float64(n))
}

// runRecord records one STM run of the selected scenario at the
// highest configured goroutine level, saves the trace, and prints its
// profile.
func runRecord(bench, path string, cfg experiments.STMConfig) {
	if bench == "all" {
		bench = "hotspot" // the contended default worth profiling
	}
	workers := maxLevel(cfg.Goroutines)
	tr, err := experiments.RecordTrace(bench, cfg, workers, cfg.Duration)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	if err := trace.Save(path, tr); err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	if err := trace.NewProfile(tr).Table().WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d records, %d committed, %d workers)\n",
		path, len(tr.Records), tr.Commits(), tr.Workers)
}

// runFidelity replays a recorded trace on both backends and prints
// the recorded-vs-simulated-vs-measured comparison.
func runFidelity(path string, cfg experiments.STMConfig) {
	tr, err := trace.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(2)
	}
	tab, err := experiments.TraceFidelity(tr, experiments.FidelityConfig{
		Duration: cfg.Duration,
		Seed:     cfg.Seed,
		STM:      cfg, // honor -policy/-lazy/-shards/-kwindow on the replay runtime
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	if err := tab.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
}

// runFleet runs the scenario x shards x batch perf matrix and
// *appends* the machine-stamped reports to -out, so one
// BENCH_stm.json accumulates entries across runs, machines and
// configurations instead of keeping only the last snapshot
// (make bench-fleet). Each cell is a Quick STMPerf report — main
// points only; the matrix supplies the coverage the single-report
// sweeps would duplicate.
func runFleet(bench string, cfg experiments.STMConfig, explicitLevels bool, out string) {
	benches := []string{bench}
	if bench == "all" {
		// The write-heavy application plus the foldable counter shape:
		// the two trajectories the batch and fold work moves.
		benches = []string{"txapp", "hotspot"}
	}
	if !explicitLevels {
		cfg.Goroutines = []int{1, 4, 8}
	}
	cfg.Quick = true
	var reports []*experiments.STMPerfReport
	for _, b := range benches {
		for _, shards := range []int{0, 1} {
			for _, batch := range []int{0, 4, 8} {
				c := cfg
				c.Shards = shards
				c.CommitBatch = batch
				c.Lazy = cfg.Lazy || batch > 0
				c.Fold = cfg.Fold && batch > 0
				rep, err := experiments.STMPerf(b, c)
				if err != nil {
					fmt.Fprintln(os.Stderr, "stmbench:", err)
					os.Exit(1)
				}
				reports = append(reports, rep)
			}
		}
	}
	if out == "" {
		buf, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(buf, '\n'))
		return
	}
	n, err := appendBench(out, reports)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	fmt.Printf("appended %d fleet entries to %s (%d total)\n", len(reports), out, n)
}

// appendBench merges the new reports into the JSON file at path:
// an existing array gains the new entries, an existing single-report
// object (the runPerf format) is wrapped into an array first, and a
// missing or empty file starts one. It returns the resulting entry
// count.
func appendBench(path string, reports []*experiments.STMPerfReport) (int, error) {
	var entries []json.RawMessage
	if buf, err := os.ReadFile(path); err == nil && len(bytes.TrimSpace(buf)) > 0 {
		trimmed := bytes.TrimSpace(buf)
		if trimmed[0] == '[' {
			if err := json.Unmarshal(trimmed, &entries); err != nil {
				return 0, fmt.Errorf("existing %s: %w", path, err)
			}
		} else {
			entries = append(entries, json.RawMessage(trimmed))
		}
	} else if err != nil && !os.IsNotExist(err) {
		return 0, err
	}
	for _, rep := range reports {
		raw, err := json.Marshal(rep)
		if err != nil {
			return 0, err
		}
		entries = append(entries, raw)
	}
	buf, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return 0, err
	}
	return len(entries), os.WriteFile(path, append(buf, '\n'), 0o644)
}

// runPerf emits the machine-readable perf snapshot for CI
// (make bench-stm). Unless -goroutines was given explicitly it pins
// the 1/4/8 ladder so trajectories stay comparable across machines.
func runPerf(bench string, cfg experiments.STMConfig, explicitLevels bool, out string) {
	if bench == "all" {
		bench = "txapp" // the write-heavy 2-of-64-objects application
	}
	if !explicitLevels {
		cfg.Goroutines = []int{1, 4, 8}
	}
	rep, err := experiments.STMPerf(bench, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%s, shards=%d, %d scenarios)\n", out, rep.Bench, rep.Shards, len(rep.Scenarios))
}
