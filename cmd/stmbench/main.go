// Command stmbench runs the real-goroutine STM throughput benchmarks
// — the Figure 3 analogue on actual parallel hardware, with the same
// strategy set (NO_DELAY, DELAY_TUNED, DELAY_DET, DELAY_RAND).
//
// Usage:
//
//	stmbench -bench all
//	stmbench -bench stack -goroutines 1,2,4,8
//	stmbench -bench txapp -policy ra -lazy
//	stmbench -bench txapp -shards 1          # flat single-clock arena
//	stmbench -ablate -bench txapp            # runtime design ablations
//	stmbench -perf -out BENCH_stm.json       # CI perf snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/experiments"
	"txconflict/internal/report"
)

func main() {
	var (
		bench  = flag.String("bench", "all", "benchmark: stack, queue, txapp, bimodal or all")
		levels = flag.String("goroutines", "", "comma-separated goroutine counts (default: powers of two up to GOMAXPROCS)")
		dur    = flag.Duration("duration", 300*time.Millisecond, "measurement duration per cell")
		policy = flag.String("policy", "rw", "conflict policy: rw or ra")
		lazy   = flag.Bool("lazy", false, "use lazy (commit-time) locking instead of eager")
		shards = flag.Int("shards", 0, "clock stripes per arena (0 = default, 1 = flat single-clock)")
		seed   = flag.Uint64("seed", 1, "random seed")
		csv    = flag.Bool("csv", false, "emit CSV instead of text")
		ablate = flag.Bool("ablate", false, "run the STM design ablations instead of the strategy sweep (baseline pinned: -policy/-lazy/-shards ignored)")
		perf   = flag.Bool("perf", false, "emit the JSON perf snapshot (commits/sec and aborts at 1/4/8 procs)")
		out    = flag.String("out", "", "write output to this file instead of stdout (perf mode)")
	)
	flag.Parse()

	cfg := experiments.DefaultSTMConfig()
	cfg.Duration = *dur
	cfg.Seed = *seed
	cfg.Lazy = *lazy
	cfg.Shards = *shards
	if strings.EqualFold(*policy, "ra") {
		cfg.Policy = core.RequestorAborts
	}
	if *levels != "" {
		var gs []int
		for _, part := range strings.Split(*levels, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "stmbench: bad goroutine count %q\n", part)
				os.Exit(2)
			}
			gs = append(gs, n)
		}
		cfg.Goroutines = gs
	}

	if *perf {
		runPerf(*bench, cfg, *levels != "", *out)
		return
	}

	benches := []string{*bench}
	if *bench == "all" {
		benches = []string{"stack", "queue", "txapp", "bimodal"}
	}
	for _, b := range benches {
		var (
			tab *report.Table
			err error
		)
		if *ablate {
			tab, err = experiments.STMAblations(b, maxLevel(cfg.Goroutines), cfg)
		} else {
			tab, err = experiments.STMThroughput(b, cfg)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		if *csv {
			err = tab.WriteCSV(os.Stdout)
		} else {
			err = tab.WriteText(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
	}
}

func maxLevel(levels []int) int {
	m := 0
	for _, n := range levels {
		if n > m {
			m = n
		}
	}
	return m
}

// runPerf emits the machine-readable perf snapshot for CI
// (make bench-stm). Unless -goroutines was given explicitly it pins
// the 1/4/8 ladder so trajectories stay comparable across machines.
func runPerf(bench string, cfg experiments.STMConfig, explicitLevels bool, out string) {
	if bench == "all" {
		bench = "txapp" // the write-heavy 2-of-64-objects application
	}
	if !explicitLevels {
		cfg.Goroutines = []int{1, 4, 8}
	}
	rep, err := experiments.STMPerf(bench, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%s, shards=%d)\n", out, rep.Bench, rep.Shards)
}
