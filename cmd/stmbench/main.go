// Command stmbench runs the real-goroutine STM throughput benchmarks
// — the Figure 3 analogue on actual parallel hardware, with the same
// strategy set (NO_DELAY, DELAY_TUNED, DELAY_DET, DELAY_RAND).
//
// Usage:
//
//	stmbench -bench all
//	stmbench -bench stack -goroutines 1,2,4,8
//	stmbench -bench txapp -policy ra -lazy
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/experiments"
)

func main() {
	var (
		bench  = flag.String("bench", "all", "benchmark: stack, queue, txapp, bimodal or all")
		levels = flag.String("goroutines", "", "comma-separated goroutine counts (default: powers of two up to GOMAXPROCS)")
		dur    = flag.Duration("duration", 300*time.Millisecond, "measurement duration per cell")
		policy = flag.String("policy", "rw", "conflict policy: rw or ra")
		lazy   = flag.Bool("lazy", false, "use lazy (commit-time) locking instead of eager")
		seed   = flag.Uint64("seed", 1, "random seed")
		csv    = flag.Bool("csv", false, "emit CSV instead of text")
	)
	flag.Parse()

	cfg := experiments.DefaultSTMConfig()
	cfg.Duration = *dur
	cfg.Seed = *seed
	cfg.Lazy = *lazy
	if strings.EqualFold(*policy, "ra") {
		cfg.Policy = core.RequestorAborts
	}
	if *levels != "" {
		var gs []int
		for _, part := range strings.Split(*levels, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "stmbench: bad goroutine count %q\n", part)
				os.Exit(2)
			}
			gs = append(gs, n)
		}
		cfg.Goroutines = gs
	}

	benches := []string{*bench}
	if *bench == "all" {
		benches = []string{"stack", "queue", "txapp", "bimodal"}
	}
	for _, b := range benches {
		tab, err := experiments.STMThroughput(b, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
		if *csv {
			err = tab.WriteCSV(os.Stdout)
		} else {
			err = tab.WriteText(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmbench:", err)
			os.Exit(1)
		}
	}
}
