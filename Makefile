# Development targets. CI runs build/vet/test; race-short is the
# concurrency smoke check for the two real-goroutine runtimes.

GO ?= go

.PHONY: all build vet test race-short race-adaptive scenario-parity smoke-txkv smoke-txkvd bench bench-stm bench-adaptive bench-batch bench-fold bench-fleet bench-txkv bench-latency bench-trace trace-demo fuzz-trace tidy

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the runtimes with real concurrency
# (internal/stm: goroutine STM; internal/htm: simulator driven from
# worker goroutines; internal/scenario: the cross-backend parity
# suite; internal/trace + internal/experiments: recorded runs and the
# trace-fidelity loop; internal/txkv: the keyed store's workload
# invariant matrix and serving pool). -short keeps it inside CI
# budgets.
race-short:
	$(GO) test -race -short ./internal/stm/ ./internal/htm/ ./internal/scenario/ ./internal/trace/ ./internal/experiments/ ./internal/txkv/

# Adaptive control-plane race cell: SetPolicy churn against live
# traffic on all three commit modes (internal/stm) — including the
# kill-heavy commutative-fold churn, which flips FoldCommutative
# mid-run against mixed Add/Store traffic on the same hot words — the
# cross-mode equivalence suite under mid-run policy flips
# (internal/scenario), and the tune loop itself (internal/tune), all
# under the race detector. CI runs this in the GOMAXPROCS=4 matrix
# cell.
race-adaptive:
	$(GO) test -race -count=1 ./internal/tune/
	$(GO) test -race -count=1 -run 'TestSetPolicyChurn|TestFoldPolicyChurn' ./internal/stm/
	$(GO) test -race -count=1 -run 'TestCrossModePolicyChurn' ./internal/scenario/

# Cross-backend scenario parity plus the cross-mode (eager vs lazy vs
# lazy+batched) equivalence suite: every registry scenario on both
# backends and all three STM commit paths, invariants verified, under
# the race detector. CI runs this at GOMAXPROCS=1, 4 and 8 (the 8-proc
# cell pins STM_COMMIT_BATCH=4).
scenario-parity:
	$(GO) test -race -count=1 -run 'TestScenarioParity|TestCrossMode' ./internal/scenario/

# End-to-end txkv serving smoke under the race detector: every keyed
# workload over HTTP (httptest), one AtomicWorker per pool worker,
# structural + semantic invariants verified after shutdown.
smoke-txkv:
	$(GO) test -race -count=1 -run 'TestTxkvdSmoke|TestServerEndpoints' ./internal/txkv/

# Observability-plane smoke under the race detector: drive live
# traffic through a metrics-enabled server, scrape GET /metrics, and
# parse the exposition back — fails on malformed 0.0.4 text, a
# missing metric family, or a missing abort-reason series; then the
# churn cell races concurrent scrapes against live traffic and
# SetPolicy swaps.
smoke-txkvd:
	$(GO) test -race -count=1 -run 'TestMetricsExposition|TestMetricsScrapeChurn' ./internal/txkv/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Machine-readable STM perf trajectory: commits/sec and aborts on the
# write-heavy transactional application at 1/4/8 goroutines. CI runs
# this as a non-blocking step so the perf history starts recording.
bench-stm:
	$(GO) run ./cmd/stmbench -perf -out BENCH_stm.json

# Same snapshot plus the adaptiveSweep section: the phase-shift
# convergence experiment (internal/tune loop vs the best static
# policy per phase) folded into BENCH_stm.json. CI runs this as a
# non-blocking step and uploads the snapshot.
bench-adaptive:
	$(GO) run ./cmd/stmbench -perf -adaptive -out BENCH_stm.json

# Batched group commit vs the unbatched lazy baseline: the
# CommitBatch sweep on the contended scenarios at 8 procs. CI runs
# this as a non-blocking smoke step; the speedup needs real hardware
# parallelism (see BenchmarkSTMCommitBatch's doc comment).
bench-batch:
	$(GO) test -run '^$$' -bench STMCommitBatch -cpu 8 -benchtime 300ms .

# Commutative folding A/B: the perf snapshot plus the foldSweep
# section — hotspot commits/sec with the combiner folding blind
# increments (fold on) vs writing them back in roster order (fold
# off), at batch 4 and 8. CI runs this as a non-blocking step and
# uploads the snapshot; on a single-CPU runner expect parity, not
# speedup (see experiments.STMFoldPerf).
bench-fold:
	$(GO) run ./cmd/stmbench -perf -fold -batch 4 -out BENCH_stm.json

# The full fleet matrix: scenario x shards {0,1} x batch {0,4,8}
# (x fold where the batch lane is open, with -fold) at 1/4/8
# goroutines, each cell a trimmed perf snapshot. Entries APPEND to
# BENCH_stm.json with a machine stamp (GOMAXPROCS, NumCPU, go
# version, timestamp), so the file accumulates a cross-machine
# history instead of being overwritten.
bench-fleet:
	$(GO) run ./cmd/stmbench -scenario all -fleet -fold -out BENCH_stm.json

# Machine-readable keyed-store perf trajectory: verified keyed
# ops/sec for every txkv workload on all three commit paths (eager /
# lazy / lazy+batch4) at GOMAXPROCS 1/4/8. CI runs this as a
# non-blocking step and uploads the snapshot.
bench-txkv:
	$(GO) run ./cmd/txkvd -perf -out BENCH_txkv.json

# Latency-focused snapshots: the same two perf trajectories, which
# now carry commit-latency p50/p99 columns (p50Ns/p99Ns) in every
# cell, read from each cell's own metrics plane. CI runs this as a
# non-blocking step so the tail history records alongside throughput.
bench-latency:
	$(GO) run ./cmd/stmbench -perf -out BENCH_stm.json
	$(GO) run ./cmd/txkvd -perf -out BENCH_txkv.json

# Trace encode/decode perf: the traceSweep section (bytes/record and
# ns/record for JSONL vs the binary container on a 10k-record hotspot
# capture, plus the compression ratio) folded into BENCH_stm.json. CI
# runs this as a non-blocking step and uploads the snapshot.
bench-trace:
	$(GO) run ./cmd/stmbench -perf -tracesweep -out BENCH_stm.json

# The Section 1 profile-to-simulation loop, end to end, on the binary
# container: record a short contended hotspot run on the STM runtime
# as a .btrace, convert it to JSONL (exercising the cross-format
# streaming path), replay the identical footprints on the HTM
# simulator and on a fresh STM arena from the binary file, diff
# recorded vs simulated vs re-measured behaviour, then stream a 10⁶-
# record synthetic trace through the block writer and replay an
# index-spaced sample of it — all under the race detector. CI runs
# this and uploads both trace artifacts.
TRACE_FILE ?= demo.btrace
TRACE_JSONL ?= demo.trace
TRACE_BIG ?= demo-big.btrace
trace-demo:
	$(GO) run -race ./cmd/stmbench -scenario hotspot -duration 200ms -record $(TRACE_FILE)
	$(GO) run -race ./cmd/stmbench -convert $(TRACE_FILE) -out $(TRACE_JSONL)
	$(GO) run -race ./cmd/txsim -replay $(TRACE_FILE) -threads 1,2,4 -cycles 300000
	$(GO) run -race ./cmd/stmbench -replay $(TRACE_FILE) -goroutines 1,2 -duration 100ms
	$(GO) run -race ./cmd/stmbench -fidelity $(TRACE_FILE) -duration 100ms
	$(GO) run -race ./cmd/stmbench -synth 1000000 -record $(TRACE_BIG)
	$(GO) run -race ./cmd/txsim -replay $(TRACE_BIG) -threads 2 -cycles 200000

# Fuzz both trace persistence formats: refresh the recorded seed under
# internal/trace/testdata, then fuzz Load on JSONL and on the binary
# container — corrupt or truncated inputs must error, never panic,
# never over-allocate, never silently drop records.
fuzz-trace:
	$(GO) run ./cmd/stmbench -scenario hotspot -duration 50ms -goroutines 2 -record internal/trace/testdata/fuzz-seed.trace
	$(GO) test -run '^$$' -fuzz 'FuzzLoad$$' -fuzztime 20s ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzLoadBinary -fuzztime 20s ./internal/trace/

tidy:
	$(GO) mod tidy
