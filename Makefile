# Development targets. CI runs build/vet/test; race-short is the
# concurrency smoke check for the two real-goroutine runtimes.

GO ?= go

.PHONY: all build vet test race-short scenario-parity bench bench-stm tidy

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the runtimes with real concurrency
# (internal/stm: goroutine STM; internal/htm: simulator driven from
# worker goroutines; internal/scenario: the cross-backend parity
# suite). -short keeps it inside CI budgets.
race-short:
	$(GO) test -race -short ./internal/stm/ ./internal/htm/ ./internal/scenario/

# Cross-backend scenario parity: every registry scenario on both the
# HTM simulator and the STM runtime, invariants verified, under the
# race detector. CI runs this at GOMAXPROCS=1 and 4.
scenario-parity:
	$(GO) test -race -count=1 -run 'TestScenarioParity' ./internal/scenario/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Machine-readable STM perf trajectory: commits/sec and aborts on the
# write-heavy transactional application at 1/4/8 goroutines. CI runs
# this as a non-blocking step so the perf history starts recording.
bench-stm:
	$(GO) run ./cmd/stmbench -perf -out BENCH_stm.json

tidy:
	$(GO) mod tidy
