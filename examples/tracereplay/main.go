// Command tracereplay walks the Section 1 profile-to-simulation loop
// in one file: record a real STM run of the contended hotspot
// scenario, profile it into empirical distributions, persist and
// reload the trace, then replay the identical footprints on both
// execution backends and print the fidelity comparison.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"txconflict/internal/dist"
	"txconflict/internal/experiments"
	"txconflict/internal/trace"
)

func main() {
	// 1. Record: drive hotspot on the real-goroutine STM runtime with
	// a trace.Recorder installed (experiments.RecordTrace wires
	// stm.Config.Trace and verifies the scenario invariant).
	cfg := experiments.DefaultSTMConfig()
	tr, err := experiments.RecordTrace("hotspot", cfg, 2, 100*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d transactions (%d committed) from a %s run\n",
		len(tr.Records), tr.Commits(), tr.Scenario)

	// 2. Profile: lengths and think times become dist.Empirical
	// samplers, registered in the catalog as trace:<key>.
	prof := trace.NewProfile(tr)
	lname, _, err := prof.RegisterSamplers("example")
	if err != nil {
		log.Fatal(err)
	}
	smp, err := dist.ByName(lname, 0) // mu <= 0 replays the raw trace
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled length distribution %q: mean %.1f units, %.2f aborts/commit\n",
		lname, smp.Mean(), prof.AbortsPerCommit)

	// 3. Persist: the versioned on-disk format round-trips the trace.
	path := filepath.Join(os.TempDir(), "tracereplay-example.trace")
	if err := trace.Save(path, tr); err != nil {
		log.Fatal(err)
	}
	loaded, err := trace.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	fmt.Printf("saved and reloaded %s (%d records)\n", path, loaded.Count)

	// 4. Replay and compare: the same footprints on the HTM simulator
	// and a fresh STM arena, next to the recorded originals.
	tab, err := experiments.TraceFidelity(loaded, experiments.FidelityConfig{
		Cycles:   300_000,
		Duration: 100 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tab.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
