// Quickstart: resolve a single transactional conflict with each of
// the paper's strategies and compare expected costs against the
// clairvoyant optimum.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"txconflict/internal/core"
	"txconflict/internal/report"
	"txconflict/internal/rng"
	"txconflict/internal/strategy"
)

func main() {
	r := rng.New(42)

	// A receiver transaction is interrupted. Aborting it costs
	// B = 1000 (elapsed work + cleanup); the profiler says
	// transactions run for µ = 200 on average; the conflict involves
	// k = 2 transactions. The remaining time D is the online unknown
	// — we tabulate a few adversarial choices.
	conflict := core.Conflict{Policy: core.RequestorWins, K: 2, B: 1000, Mean: 200}

	strategies := []core.Strategy{
		strategy.Immediate{},     // abort at once (NO_DELAY)
		strategy.Deterministic{}, // wait exactly B (Theorem 4)
		strategy.UniformRW{},     // uniform grace (Theorem 5, ratio 2)
		strategy.MeanRW{},        // mean-constrained (Theorem 5 with µ)
	}

	t := &report.Table{
		Title:   "Expected conflict cost by remaining time D (requestor wins, B=1000, µ=200)",
		Columns: []string{"D", "OPT"},
	}
	for _, s := range strategies {
		t.Columns = append(t.Columns, strategy.Describe(s, conflict))
	}
	for _, d := range []float64{50, 200, 500, 1000, 3000} {
		row := []interface{}{d, core.OptCost(conflict, d)}
		for _, s := range strategies {
			row = append(row, core.ExpectedCost(conflict, s, d, r, 200000))
		}
		t.AddRow(row...)
	}
	t.AddNote("the uniform strategy pays exactly 2x OPT for every D — the equalizer property")

	if err := t.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The requestor-aborts side reduces to ski rental: the optimal
	// strategy is exponential, with ratio e/(e-1) ~ 1.58.
	ra := core.Conflict{Policy: core.RequestorAborts, K: 2, B: 1000}
	fmt.Printf("requestor-aborts optimum: %s\n", strategy.Describe(strategy.ExpRA{}, ra))
	fmt.Printf("hybrid policy picks: k=2 -> %v, k=4 -> %v\n",
		strategy.Hybrid{}.PreferredPolicy(2), strategy.Hybrid{}.PreferredPolicy(4))
}
