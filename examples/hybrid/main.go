// Hybrid policy study (Section 9): requestor-aborts has the better
// competitive ratio for pair conflicts, requestor-wins for chains —
// so a system that can alternate should beat both pure policies on
// mixed workloads. This example measures all three on the adversarial
// accounting model and on the HTM simulator.
//
// Run with: go run ./examples/hybrid
package main

import (
	"fmt"
	"os"

	"txconflict/internal/adversary"
	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/htm"
	"txconflict/internal/report"
	"txconflict/internal/rng"
	"txconflict/internal/strategy"
	"txconflict/internal/workload"
)

func main() {
	r := rng.New(2024)

	// Part 1: adversarial schedules with mixed chain lengths.
	// The hybrid strategy resolves each conflict under its preferred
	// policy; pure strategies are stuck with one.
	sched := adversary.HighContention{
		NTx:     30000,
		Lengths: dist.Exponential{Mu: 150},
		KMax:    6,
		Cleanup: 40,
	}.Generate(r)

	t := &report.Table{
		Title:   "Mixed chain lengths (k in 2..6): waste vs clairvoyant optimum",
		Columns: []string{"resolution", "waste", "vs OPT"},
	}
	optRW := adversary.RunOpt(core.RequestorWins, sched)
	rw := adversary.Run(core.RequestorWins, strategy.GeneralRW{}, sched, r)
	t.AddRow("pure requestor-wins (RRW*)", rw.Waste, rw.Waste/optRW.Waste)
	optRA := adversary.RunOpt(core.RequestorAborts, sched)
	ra := adversary.Run(core.RequestorAborts, strategy.ExpRA{}, sched, r)
	t.AddRow("pure requestor-aborts (RRA)", ra.Waste, ra.Waste/optRA.Waste)
	// Hybrid: resolve each conflict under its preferred policy.
	hybridWaste := 0.0
	h := strategy.Hybrid{}
	for _, c := range sched.Conflicts {
		pol := h.PreferredPolicy(c.K)
		sub := adversary.Schedule{Cleanup: sched.Cleanup, Conflicts: []adversary.Conflict{c}}
		hybridWaste += adversary.Run(pol, h, sub, r).Waste
	}
	t.AddRow("hybrid (Section 9)", hybridWaste, hybridWaste/optRW.Waste)
	if err := t.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Part 2: the HTM simulator with the hybrid policy enabled.
	t2 := &report.Table{
		Title:   "HTM simulator, contended counter-like txapp at 12 cores",
		Columns: []string{"policy", "ops/s", "aborts/commit"},
	}
	for _, v := range []struct {
		name   string
		adjust func(p *htm.Params)
	}{
		{"requestor wins + RRW*", func(p *htm.Params) { p.Strategy = strategy.GeneralRW{} }},
		{"requestor aborts + RRA", func(p *htm.Params) {
			p.Policy = core.RequestorAborts
			p.Strategy = strategy.ExpRA{}
		}},
		{"hybrid + hybrid strategy", func(p *htm.Params) {
			p.HybridPolicy = true
			p.Strategy = strategy.Hybrid{}
		}},
	} {
		p := htm.DefaultParams(12)
		p.Seed = 5
		v.adjust(&p)
		m := htm.NewMachine(p, workload.NewTxApp(60, 5))
		met := m.Run(1_000_000)
		t2.AddRow(v.name, met.OpsPerSecond(1), met.AbortRate())
	}
	if err := t2.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
