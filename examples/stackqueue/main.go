// Stack & queue throughput on the HTM multicore simulator — the
// Figure 3 (top row) scenario: a contended transactional stack and
// queue, sweeping thread counts under the four delay strategies.
//
// Run with: go run ./examples/stackqueue
package main

import (
	"fmt"
	"os"

	"txconflict/internal/experiments"
)

func main() {
	cfg := experiments.Fig3Config{
		Threads: []int{1, 2, 4, 8, 16},
		Cycles:  1_000_000,
		Seed:    7,
		GHz:     1,
	}
	for _, bench := range []string{"stack", "queue"} {
		tab, err := experiments.Figure3(bench, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tab.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Println("expected shape: delay strategies retain throughput under contention;")
	fmt.Println("NO_DELAY degrades as threads (and conflicts) increase.")
}
