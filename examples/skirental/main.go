// Ski-rental reduction demo (Section 4.2): the requestor-aborts
// transactional conflict problem with k=2 maps exactly onto the
// classic ski rental problem. This example runs both sides of the
// reduction on matching instances and prints the cost profiles.
//
// Run with: go run ./examples/skirental
package main

import (
	"fmt"
	"os"

	"txconflict/internal/core"
	"txconflict/internal/report"
	"txconflict/internal/rng"
	"txconflict/internal/skirental"
	"txconflict/internal/strategy"
)

func main() {
	const b = 80
	r := rng.New(5)
	in := skirental.Instance{B: b}
	conflict := core.Conflict{Policy: core.RequestorAborts, K: 2, B: b}

	t := &report.Table{
		Title: "Ski rental vs requestor-aborts conflict (B = 80)",
		Columns: []string{
			"D (days / remaining)", "OPT",
			"ski DET", "ski RAND", "conflict RRA", "conflict DET-equiv",
		},
	}
	for _, d := range []int{8, 40, 80, 160, 400} {
		skiDet := float64(in.Cost(skirental.Deterministic{}.BuyDay(in, r), d))
		skiRand := skirental.ExpectedCost(in, skirental.Randomized{}, d, r, 100000)
		rra := core.ExpectedCost(conflict, strategy.ExpRA{}, float64(d), r, 100000)
		// The deterministic conflict strategy waits B then aborts.
		detEquiv := core.Cost(conflict, b, float64(d))
		t.AddRow(d, in.OptCost(d), skiDet, skiRand, rra, detEquiv)
	}
	t.AddNote("RAND and RRA agree within discretization: both are e/(e-1)-competitive")
	t.AddNote("buying skis on day x+1 == delaying the requestor by x before aborting it")
	if err := t.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
