// Contention study on the real-goroutine STM runtime: the paper's
// transactional application (jointly acquire and modify 2 of 64
// objects) under requestor-wins vs requestor-aborts, with and without
// grace periods, plus the bimodal variant where hand-tuning fails.
//
// Run with: go run ./examples/contention
package main

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/report"
	"txconflict/internal/rng"
	"txconflict/internal/stm"
	"txconflict/internal/strategy"
	"txconflict/internal/txds"
)

func run(app *txds.App, goroutines int, d time.Duration, seed uint64) (opsPerSec float64, stats map[string]uint64) {
	root := rng.New(seed)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	counts := make([]uint64, goroutines)
	for g := 0; g < goroutines; g++ {
		r := root.Split()
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				app.Op(r)
				counts[g]++
			}
		}()
	}
	start := time.Now()
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	var total uint64
	for _, c := range counts {
		total += c
	}
	return float64(total) / elapsed, app.Runtime().Stats.Snapshot()
}

func main() {
	goroutines := runtime.GOMAXPROCS(0)
	const dur = 250 * time.Millisecond

	type variant struct {
		name string
		cfg  stm.Config
	}
	mk := func(pol core.Policy, s core.Strategy) stm.Config {
		return stm.Config{Policy: pol, Strategy: s, CleanupCost: 2 * time.Microsecond, MaxRetries: 256}
	}
	variants := []variant{
		{"RW / NO_DELAY", mk(core.RequestorWins, nil)},
		{"RW / DELAY_RAND", mk(core.RequestorWins, strategy.UniformRW{})},
		{"RW / DELAY_RAND(mu)", func() stm.Config {
			c := mk(core.RequestorWins, strategy.MeanRW{})
			c.UseMeanProfile = true
			return c
		}()},
		{"RA / NO_DELAY", mk(core.RequestorAborts, nil)},
		{"RA / DELAY_RAND", mk(core.RequestorAborts, strategy.ExpRA{})},
	}

	for _, bimodal := range []bool{false, true} {
		title := "uniform transactional application (2 of 64 objects)"
		if bimodal {
			title = "bimodal transactional application (short/very long mix)"
		}
		t := &report.Table{
			Title:   fmt.Sprintf("%s, %d goroutines", title, goroutines),
			Columns: []string{"variant", "ops/s", "commits", "aborts", "kills", "graceWaits"},
		}
		for _, v := range variants {
			var app *txds.App
			if bimodal {
				app = txds.NewBimodalApp(100, 30000, 0.5, v.cfg)
			} else {
				app = txds.NewApp(400, v.cfg)
			}
			ops, st := run(app, goroutines, dur, 11)
			t.AddRow(v.name, ops, st["commits"], st["aborts"], st["kills"], st["graceWaits"])
			// Serializability spot check: every commit bumped two
			// objects.
			if got, want := app.ObjectSum(), 2*st["commits"]; got != want {
				fmt.Fprintf(os.Stderr, "INVARIANT VIOLATION: object sum %d != 2*commits %d\n", got, want)
				os.Exit(1)
			}
		}
		if err := t.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
