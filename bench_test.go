// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 8). Each benchmark prints the corresponding
// table once (on the first iteration) and then times the underlying
// harness, so `go test -bench=. -benchmem` doubles as the full
// reproduction run. See EXPERIMENTS.md for the paper-vs-measured
// comparison.
package txconflict_test

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"txconflict/internal/adversary"
	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/experiments"
	"txconflict/internal/htm"
	"txconflict/internal/report"
	"txconflict/internal/rng"
	"txconflict/internal/scenario"
	"txconflict/internal/stats"
	"txconflict/internal/stm"
	"txconflict/internal/strategy"
	"txconflict/internal/synth"
	"txconflict/internal/workload"
)

// printOnce writes a table to stdout on the benchmark's first
// iteration only.
var printedTables sync.Map

func printOnce(b *testing.B, key string, t *report.Table) {
	b.Helper()
	if _, loaded := printedTables.LoadOrStore(key, true); !loaded {
		b.StopTimer()
		_ = t.WriteText(os.Stdout)
		b.StartTimer()
	}
}

// BenchmarkFigure2a — E1: synthetic conflict costs, high fixed cost
// (B=2000, µ=500) across the five length distributions.
func BenchmarkFigure2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := synth.Figure2(2000, 500, 20000, 1)
		printOnce(b, "fig2a", t)
	}
}

// BenchmarkFigure2b — E2: synthetic conflict costs, low fixed cost
// (B=200, µ=500).
func BenchmarkFigure2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := synth.Figure2(200, 500, 20000, 1)
		printOnce(b, "fig2b", t)
	}
}

// BenchmarkFigure2c — E3: the worst-case distribution for the
// deterministic strategy.
func BenchmarkFigure2c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := synth.Figure2c(1000, 50000, 1)
		printOnce(b, "fig2c", t)
	}
}

func benchFigure3(b *testing.B, bench string) {
	cfg := experiments.Fig3Config{
		Threads: []int{1, 2, 4, 8, 16},
		Cycles:  500_000,
		Policy:  core.RequestorWins,
		Seed:    1,
		GHz:     1,
	}
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure3(bench, cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, "fig3-"+bench, t)
	}
}

// BenchmarkFigure3Stack — E4: HTM-simulator stack throughput across
// threads and delay strategies.
func BenchmarkFigure3Stack(b *testing.B) { benchFigure3(b, "stack") }

// BenchmarkFigure3Queue — E5: HTM-simulator queue throughput.
func BenchmarkFigure3Queue(b *testing.B) { benchFigure3(b, "queue") }

// BenchmarkFigure3TxApp — E6: HTM-simulator transactional-application
// throughput (2 of 64 objects).
func BenchmarkFigure3TxApp(b *testing.B) { benchFigure3(b, "txapp") }

// BenchmarkFigure3Bimodal — E7: HTM-simulator bimodal application
// (short / very long transactions).
func BenchmarkFigure3Bimodal(b *testing.B) { benchFigure3(b, "bimodal") }

// BenchmarkCorollary1 — E8: adversarial sum-of-running-times ratio vs
// the (r·w+1)/(w+1) bound.
func BenchmarkCorollary1(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		t := &report.Table{
			Title:   "Corollary 1: adversarial throughput competitiveness",
			Columns: []string{"adversary", "strategy", "waste w", "ratio", "bound"},
		}
		gens := []adversary.Generator{
			adversary.Random{NTx: 10000, Lengths: dist.Exponential{Mu: 200}, ConflictFrac: 0.5, K: 2, Cleanup: 50},
			adversary.AntiDeterministic{NTx: 10000, K: 2, Cleanup: 25},
		}
		for _, g := range gens {
			sched := g.Generate(r)
			w := adversary.Waste(core.RequestorWins, sched)
			on := adversary.Run(core.RequestorWins, strategy.UniformRW{}, sched, r)
			opt := adversary.RunOpt(core.RequestorWins, sched)
			t.AddRow(g.Name(), "RRW", w, stats.Ratio(on.SumRunning, opt.SumRunning), adversary.CorollaryBound(2, w))
		}
		printOnce(b, "cor1", t)
	}
}

// BenchmarkCorollary2 — E9: progress under multiplicative backoff.
func BenchmarkCorollary2(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		t := &report.Table{
			Title:   "Corollary 2: attempts to commit under backoff",
			Columns: []string{"y", "gamma", "bound", "P[within]"},
		}
		for _, p := range []adversary.ProgressParams{
			{Y: 1000, Gamma: 3, K: 2, B0: 64},
			{Y: 5000, Gamma: 5, K: 2, B0: 32},
		} {
			res := adversary.RunProgress(p, 2000, r)
			t.AddRow(p.Y, p.Gamma, res.Bound, res.PWithinBound)
		}
		printOnce(b, "cor2", t)
	}
}

// BenchmarkAbortProbability — E10: Section 5.3's abort probabilities
// at y = B.
func BenchmarkAbortProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := synth.AbortProbability(1000, 100000, 1)
		printOnce(b, "abortprob", t)
	}
}

// BenchmarkRWvsRA — E11: the competitive-ratio crossover in the
// chain length k.
func BenchmarkRWvsRA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := synth.Crossover(10)
		printOnce(b, "crossover", t)
	}
}

// BenchmarkCompetitiveRatios — E12: empirical worst-case ratio of
// each strategy vs its analytic value.
func BenchmarkCompetitiveRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := synth.RatioValidation(1000, 10000, 1)
		printOnce(b, "ratios", t)
	}
}

// BenchmarkSTMArenaSharding — E14: flat single-clock arena vs
// striped per-shard clocks under disjoint writers (pure commit-clock
// and metadata traffic, no transactional conflicts). Run with
// -cpu 8 (or higher) to see the striped clocks pull ahead. Same
// workload shape as internal/stm's benchDisjointWriters — keep them
// in sync.
func BenchmarkSTMArenaSharding(b *testing.B) {
	const words = 1024
	for _, v := range []struct {
		name   string
		shards int
	}{
		{"flat", 1},
		{"sharded", 0},
	} {
		b.Run(v.name, func(b *testing.B) {
			cfg := stm.DefaultConfig()
			cfg.Strategy = nil
			cfg.Shards = v.shards
			rt := stm.New(words, cfg)
			var gid int32
			var mu sync.Mutex
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				g := gid
				gid++
				mu.Unlock()
				r := rng.New(uint64(g) + 1)
				base := (int(g) * 16) % words
				i := 0
				for pb.Next() {
					idx := base + (i & 15)
					i++
					_ = rt.Atomic(r, func(tx *stm.Tx) error {
						tx.Store(idx, tx.Load(idx)+1)
						return nil
					})
				}
			})
		})
	}
}

// BenchmarkSTMCommitBatch — E18: batched group commit vs the
// unbatched lazy baseline. Eight workers hammer the contended
// scenarios through lazy (TL2) commits while Config.CommitBatch
// sweeps 0 (the ablation baseline) and three batch bounds; ns/op is
// per committed transaction, so the batch=0 / batch=N ratio is the
// group-commit speedup. Think time is zeroed to keep the workload
// commit-bound (the regime batching targets — with long think times
// batches never fill and the combiner handshake is pure overhead).
// Run with -cpu 8; every cell verifies its scenario invariant.
//
// Reading the numbers: batches only form when commits genuinely
// overlap, so the speedup needs real hardware parallelism. On a
// machine with >= 8 physical cores the batched cells amortize the
// hot-word lock handoffs and stripe-clock CAS traffic that serialize
// the unbatched committers; on a single-CPU box (where the OS
// serializes commits anyway and there is nothing to amortize) the
// sweep measures the combiner handshake overhead instead, and batched
// cells sit at parity with the baseline.
//
// The hotspot /fold cells re-run the batched cells with commutative
// delta folding on (stm.Config.FoldCommutative): the scenario's blind
// increments commit as one summed store per hot word instead of a
// roster-order write-back chain. Select just those cells with
// -bench 'STMCommitBatch/.*fold'.
func BenchmarkSTMCommitBatch(b *testing.B) {
	const workers = 8
	for _, bench := range []string{"hotspot", "txapp"} {
		for _, batch := range []int{0, 2, 4, 8} {
			// Commutative folding only has cells where it can act: the
			// blind-increment scenario, inside the combiner. The /fold
			// suffix keeps the cells selectable with -bench '/fold'.
			folds := []bool{false}
			if bench == "hotspot" && batch > 0 {
				folds = append(folds, true)
			}
			for _, fold := range folds {
				name := fmt.Sprintf("%s/batch=%d", bench, batch)
				if fold {
					name += "/fold"
				}
				b.Run(name, func(b *testing.B) {
					sc, err := scenario.ByName(bench, scenario.Options{
						Workers: workers,
						Think:   dist.Constant{V: 0},
					})
					if err != nil {
						b.Fatal(err)
					}
					cfg := stm.DefaultConfig()
					cfg.Lazy = true
					cfg.CommitBatch = batch
					cfg.FoldCommutative = fold
					cfg.MaxRetries = 256
					rn := scenario.NewSTMRunner(sc, cfg)
					root := rng.New(1)
					counts := make([]uint64, workers)
					var remaining atomic.Int64
					remaining.Store(int64(b.N))
					var wg sync.WaitGroup
					b.ResetTimer()
					for w := 0; w < workers; w++ {
						w, r := w, root.Split()
						wg.Add(1)
						go func() {
							defer wg.Done()
							for remaining.Add(-1) >= 0 {
								rn.RunOne(w, r)
								counts[w]++
							}
						}()
					}
					wg.Wait()
					b.StopTimer()
					if err := rn.Check(counts); err != nil {
						b.Fatal(err)
					}
				})
			}
		}
	}
}

// BenchmarkScenarioHTM — E15: every registry scenario on the HTM
// simulator at 8 cores (one sub-benchmark per scenario name, the
// same registry the -scenario CLI flags select from).
func BenchmarkScenarioHTM(b *testing.B) {
	for _, name := range scenario.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			w, err := workload.ByName(name, scenario.Options{})
			if err != nil {
				b.Fatal(err)
			}
			p := htm.DefaultParams(8)
			p.Strategy = strategy.UniformRW{}
			m := htm.NewMachine(p, w)
			b.ResetTimer()
			m.Run(uint64(b.N) * 200)
		})
	}
}

// BenchmarkScenarioSTM — E16: every registry scenario as real
// transactions on the STM runtime (single worker: per-op latency).
func BenchmarkScenarioSTM(b *testing.B) {
	for _, name := range scenario.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			sc, err := scenario.ByName(name, scenario.Options{Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			rn := scenario.NewSTMRunner(sc, stm.DefaultConfig())
			r := rng.New(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rn.RunOne(0, r)
			}
		})
	}
}

// BenchmarkSTMThroughput — E13: the real-goroutine STM counterpart
// of Figure 3 (transactional application).
func BenchmarkSTMThroughput(b *testing.B) {
	cfg := experiments.STMConfig{
		Goroutines: []int{1, 2, 4},
		Duration:   50 * time.Millisecond,
		Policy:     core.RequestorWins,
		Seed:       1,
	}
	for i := 0; i < b.N; i++ {
		t, err := experiments.STMThroughput("txapp", cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, "stm", t)
	}
}
