package txds

import (
	"errors"
	"sync"
	"testing"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/rng"
	"txconflict/internal/stm"
	"txconflict/internal/strategy"
)

func testConfigs() []stm.Config {
	base := stm.DefaultConfig()
	raCfg := base
	raCfg.Policy = core.RequestorAborts
	raCfg.Strategy = strategy.ExpRA{}
	noDelay := base
	noDelay.Strategy = nil
	lazy := base
	lazy.Lazy = true
	return []stm.Config{base, raCfg, noDelay, lazy}
}

func TestStackSequential(t *testing.T) {
	s := NewStack(4, stm.DefaultConfig())
	r := rng.New(1)
	if _, err := s.Pop(r); !errors.Is(err, ErrEmpty) {
		t.Fatalf("pop empty: %v", err)
	}
	for i := uint64(0); i < 4; i++ {
		if err := s.Push(r, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Push(r, 99); !errors.Is(err, ErrFull) {
		t.Fatalf("push full: %v", err)
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
	for i := 3; i >= 0; i-- {
		v, err := s.Pop(r)
		if err != nil || v != uint64(i) {
			t.Fatalf("pop = %d,%v want %d", v, err, i)
		}
	}
}

func TestQueueSequential(t *testing.T) {
	q := NewQueue(3, stm.DefaultConfig())
	r := rng.New(1)
	if _, err := q.Dequeue(r); !errors.Is(err, ErrEmpty) {
		t.Fatalf("deq empty: %v", err)
	}
	for i := uint64(0); i < 3; i++ {
		if err := q.Enqueue(r, i+10); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Enqueue(r, 99); !errors.Is(err, ErrFull) {
		t.Fatalf("enq full: %v", err)
	}
	for i := uint64(0); i < 3; i++ {
		v, err := q.Dequeue(r)
		if err != nil || v != i+10 {
			t.Fatalf("deq = %d,%v want %d", v, err, i+10)
		}
	}
	// Ring wrap-around.
	for round := 0; round < 10; round++ {
		if err := q.Enqueue(r, uint64(round)); err != nil {
			t.Fatal(err)
		}
		v, err := q.Dequeue(r)
		if err != nil || v != uint64(round) {
			t.Fatalf("wrap deq = %d,%v", v, err)
		}
	}
}

func TestStackConcurrentAlternating(t *testing.T) {
	for _, cfg := range testConfigs() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			t.Parallel()
			s := NewStack(256, cfg)
			const goroutines, pairs = 8, 800
			root := rng.New(42)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				r := root.Split()
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < pairs; i++ {
						if err := s.Push(r, uint64(g)); err != nil {
							t.Errorf("push: %v", err)
							return
						}
						if _, err := s.Pop(r); err != nil {
							t.Errorf("pop: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if s.Len() != 0 {
				t.Fatalf("stack not empty after balanced ops: %d", s.Len())
			}
			st := s.Runtime().Stats.Snapshot()
			if st["commits"] != goroutines*pairs*2 {
				t.Fatalf("commits = %d, want %d", st["commits"], goroutines*pairs*2)
			}
		})
	}
}

func TestQueueConcurrentAlternating(t *testing.T) {
	for _, cfg := range testConfigs() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			t.Parallel()
			q := NewQueue(256, cfg)
			const goroutines, pairs = 8, 800
			root := rng.New(43)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				r := root.Split()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < pairs; i++ {
						if err := q.Enqueue(r, 1); err != nil {
							t.Errorf("enq: %v", err)
							return
						}
						if _, err := q.Dequeue(r); err != nil {
							t.Errorf("deq: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if q.Len() != 0 {
				t.Fatalf("queue not empty: %d", q.Len())
			}
		})
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter(stm.DefaultConfig())
	const goroutines, perG = 8, 2000
	root := rng.New(44)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		r := root.Split()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(r, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestBankConservation(t *testing.T) {
	for _, cfg := range testConfigs() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			t.Parallel()
			b := NewBank(16, 1000, cfg)
			const goroutines, perG = 8, 1000
			root := rng.New(45)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				r := root.Split()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						b.Transfer(r, 1)
					}
				}()
			}
			wg.Wait()
			if got := b.Total(); got != 16*1000 {
				t.Fatalf("total = %d, want %d", got, 16000)
			}
		})
	}
}

func TestAppInvariant(t *testing.T) {
	for _, cfg := range testConfigs() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			t.Parallel()
			a := NewApp(100, cfg)
			const goroutines, perG = 8, 500
			root := rng.New(46)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				r := root.Split()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						a.Op(r)
					}
				}()
			}
			wg.Wait()
			if got := a.ObjectSum(); got != 2*goroutines*perG {
				t.Fatalf("object sum = %d, want %d", got, 2*goroutines*perG)
			}
		})
	}
}

func TestBimodalApp(t *testing.T) {
	a := NewBimodalApp(10, 5000, 0.5, stm.DefaultConfig())
	const goroutines, perG = 4, 200
	root := rng.New(47)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		r := root.Split()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				a.Op(r)
			}
		}()
	}
	wg.Wait()
	if got := a.ObjectSum(); got != 2*goroutines*perG {
		t.Fatalf("object sum = %d, want %d", got, 2*goroutines*perG)
	}
}

func TestBimodalSpinMix(t *testing.T) {
	a := NewBimodalApp(1, 999, 0.5, stm.DefaultConfig())
	r := rng.New(48)
	short, long := 0, 0
	for i := 0; i < 1000; i++ {
		switch a.Spin(r) {
		case 1:
			short++
		case 999:
			long++
		default:
			t.Fatal("unexpected spin value")
		}
	}
	if short == 0 || long == 0 {
		t.Fatalf("bimodal mix degenerate: %d/%d", short, long)
	}
}

func BenchmarkStackContended(b *testing.B) {
	s := NewStack(1024, stm.DefaultConfig())
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(uint64(time.Now().UnixNano()))
		for pb.Next() {
			_ = s.Push(r, 1)
			_, _ = s.Pop(r)
		}
	})
}

func BenchmarkAppContended(b *testing.B) {
	a := NewApp(50, stm.DefaultConfig())
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(uint64(time.Now().UnixNano()))
		for pb.Next() {
			a.Op(r)
		}
	})
}
