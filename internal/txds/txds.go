// Package txds implements the paper's benchmark data structures on
// top of the internal/stm runtime: a transactional stack and queue
// (Section 8.2's contended structures), a counter, a bank (classic
// transfer workload), and the 2-of-64-objects transactional
// application with uniform and bimodal transaction lengths.
//
// Every structure exposes a committed-state invariant so concurrency
// tests double as serializability checks.
package txds

import (
	"errors"

	"txconflict/internal/rng"
	"txconflict/internal/stm"
)

// ErrFull and ErrEmpty are user-level (non-retry) transaction
// outcomes.
var (
	ErrFull  = errors.New("txds: structure full")
	ErrEmpty = errors.New("txds: structure empty")
)

// Stack is a bounded transactional stack.
//
// Word layout: [0] size, [1..cap] elements.
type Stack struct {
	rt  *stm.Runtime
	cap int
}

// NewStack creates a stack with the given capacity and STM config.
func NewStack(capacity int, cfg stm.Config) *Stack {
	return &Stack{rt: stm.New(capacity+1, cfg), cap: capacity}
}

// Runtime exposes the underlying STM runtime (stats, verification).
func (s *Stack) Runtime() *stm.Runtime { return s.rt }

// Push adds v; returns ErrFull when at capacity.
func (s *Stack) Push(r *rng.Rand, v uint64) error {
	return s.rt.Atomic(r, func(tx *stm.Tx) error {
		size := tx.Load(0)
		if int(size) >= s.cap {
			return ErrFull
		}
		tx.Store(1+int(size), v)
		tx.Store(0, size+1)
		return nil
	})
}

// Pop removes and returns the top element; ErrEmpty when empty.
func (s *Stack) Pop(r *rng.Rand) (uint64, error) {
	var out uint64
	err := s.rt.Atomic(r, func(tx *stm.Tx) error {
		size := tx.Load(0)
		if size == 0 {
			return ErrEmpty
		}
		out = tx.Load(int(size))
		tx.Store(0, size-1)
		return nil
	})
	return out, err
}

// Len returns the committed size.
func (s *Stack) Len() int { return int(s.rt.ReadCommitted(0)) }

// Queue is a bounded transactional ring-buffer queue.
//
// Word layout: [0] head, [1] tail, [2..2+cap) slots.
type Queue struct {
	rt  *stm.Runtime
	cap int
}

// NewQueue creates a queue with the given capacity and STM config.
func NewQueue(capacity int, cfg stm.Config) *Queue {
	return &Queue{rt: stm.New(capacity+2, cfg), cap: capacity}
}

// Runtime exposes the underlying STM runtime.
func (q *Queue) Runtime() *stm.Runtime { return q.rt }

// Enqueue appends v; ErrFull when at capacity.
func (q *Queue) Enqueue(r *rng.Rand, v uint64) error {
	return q.rt.Atomic(r, func(tx *stm.Tx) error {
		head, tail := tx.Load(0), tx.Load(1)
		if tail-head >= uint64(q.cap) {
			return ErrFull
		}
		tx.Store(2+int(tail%uint64(q.cap)), v)
		tx.Store(1, tail+1)
		return nil
	})
}

// Dequeue removes and returns the oldest element; ErrEmpty when
// empty.
func (q *Queue) Dequeue(r *rng.Rand) (uint64, error) {
	var out uint64
	err := q.rt.Atomic(r, func(tx *stm.Tx) error {
		head, tail := tx.Load(0), tx.Load(1)
		if head == tail {
			return ErrEmpty
		}
		out = tx.Load(2 + int(head%uint64(q.cap)))
		tx.Store(0, head+1)
		return nil
	})
	return out, err
}

// Len returns the committed occupancy.
func (q *Queue) Len() int {
	return int(q.rt.ReadCommitted(1) - q.rt.ReadCommitted(0))
}

// Counter is a shared transactional counter.
type Counter struct{ rt *stm.Runtime }

// NewCounter creates a counter.
func NewCounter(cfg stm.Config) *Counter { return &Counter{rt: stm.New(1, cfg)} }

// Runtime exposes the underlying STM runtime.
func (c *Counter) Runtime() *stm.Runtime { return c.rt }

// Add increments the counter by delta.
func (c *Counter) Add(r *rng.Rand, delta uint64) {
	_ = c.rt.Atomic(r, func(tx *stm.Tx) error {
		tx.Store(0, tx.Load(0)+delta)
		return nil
	})
}

// Value returns the committed count.
func (c *Counter) Value() uint64 { return c.rt.ReadCommitted(0) }

// Bank is the classic transfer benchmark: serializability conserves
// the total balance.
type Bank struct {
	rt *stm.Runtime
	n  int
}

// NewBank creates n accounts, each holding initial.
func NewBank(n int, initial uint64, cfg stm.Config) *Bank {
	b := &Bank{rt: stm.New(n, cfg), n: n}
	r := rng.New(0)
	for i := 0; i < n; i++ {
		i := i
		_ = b.rt.Atomic(r, func(tx *stm.Tx) error {
			tx.Store(i, initial)
			return nil
		})
	}
	return b
}

// Runtime exposes the underlying STM runtime.
func (b *Bank) Runtime() *stm.Runtime { return b.rt }

// Accounts returns the number of accounts.
func (b *Bank) Accounts() int { return b.n }

// Transfer moves amount from one random account to another.
func (b *Bank) Transfer(r *rng.Rand, amount uint64) {
	from, to := r.TwoDistinct(b.n)
	_ = b.rt.Atomic(r, func(tx *stm.Tx) error {
		fv, tv := tx.Load(from), tx.Load(to)
		tx.Store(from, fv-amount)
		tx.Store(to, tv+amount)
		return nil
	})
}

// Total returns the committed sum of all balances.
func (b *Bank) Total() uint64 {
	var total uint64
	for i := 0; i < b.n; i++ {
		total += b.rt.ReadCommitted(i)
	}
	return total
}

// App is the paper's transactional application: each operation
// jointly acquires and modifies two distinct objects out of Objects,
// spinning for a workload-dependent number of iterations in between.
// Committed invariant: Σ objects = 2 * committed ops.
type App struct {
	rt      *stm.Runtime
	objects int
	// Spin returns the busy-work iterations for the next
	// transaction; constant for the uniform application, two-point
	// for the bimodal one.
	Spin func(r *rng.Rand) int
}

// NewApp creates the uniform-length application over 64 objects.
func NewApp(spin int, cfg stm.Config) *App {
	return &App{
		rt:      stm.New(64, cfg),
		objects: 64,
		Spin:    func(*rng.Rand) int { return spin },
	}
}

// NewBimodalApp creates the bimodal application: with probability
// pShort the transaction spins shortSpin iterations, otherwise
// longSpin (the "short and very long" mix of Figure 3).
func NewBimodalApp(shortSpin, longSpin int, pShort float64, cfg stm.Config) *App {
	return &App{
		rt:      stm.New(64, cfg),
		objects: 64,
		Spin: func(r *rng.Rand) int {
			if r.Bool(pShort) {
				return shortSpin
			}
			return longSpin
		},
	}
}

// Runtime exposes the underlying STM runtime.
func (a *App) Runtime() *stm.Runtime { return a.rt }

// Op runs one transaction: read-modify-write two random objects with
// busy work in between.
func (a *App) Op(r *rng.Rand) {
	i, j := r.TwoDistinct(a.objects)
	spin := a.Spin(r)
	_ = a.rt.Atomic(r, func(tx *stm.Tx) error {
		vi := tx.Load(i)
		tx.Store(i, vi+1)
		busyWork(spin)
		vj := tx.Load(j)
		tx.Store(j, vj+1)
		return nil
	})
}

// ObjectSum returns the committed sum over all objects.
func (a *App) ObjectSum() uint64 {
	var sum uint64
	for i := 0; i < a.objects; i++ {
		sum += a.rt.ReadCommitted(i)
	}
	return sum
}

// busyWork spins for n iterations of integer work, keeping the
// transaction on-CPU like real computation (no sleeping).
func busyWork(n int) {
	x := uint64(1)
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	if x == 42 {
		panic("unreachable")
	}
}
