package scenario

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"txconflict/internal/rng"
	"txconflict/internal/stm"
)

// STMRunner executes a scenario as real transactions on the
// internal/stm runtime: the same programs the HTM simulator replays
// become Atomic blocks over tx.Load/tx.Store, so both backends run
// identical access patterns and verify identical invariants.
type STMRunner struct {
	sc       *Scenario
	rt       *stm.Runtime
	annotate ProgramAnnotator
}

// ProgramAnnotator receives the scenario-level context of each
// transaction the runner executes — the half of a trace record the
// runtime cannot see (program op count, sampled compute length, think
// time). A tracer installed as stm.Config.Trace that also implements
// this interface (trace.Recorder does) is called right after the
// runtime delivers the block's TxTrace, on the same worker goroutine.
type ProgramAnnotator interface {
	AnnotateProgram(worker, ops int, compute, think float64)
}

// NewSTMRunner builds a runtime sized to the scenario's arena. The
// scenario's worker count is frozen from this point on: the arena
// cannot grow once words are allocated.
func NewSTMRunner(sc *Scenario, cfg stm.Config) *STMRunner {
	rn := &STMRunner{sc: sc, rt: stm.New(sc.Words(), cfg)}
	if a, ok := cfg.Trace.(ProgramAnnotator); ok {
		rn.annotate = a
	}
	return rn
}

// NewSTMRunnerOn wraps an existing runtime instead of building a
// fresh one, so successive scenarios (workload phases) can run over
// the same live arena — the shape an adaptive controller tunes
// against, where the workload shifts under a runtime that keeps its
// estimator history, policy, and committed state. The runtime must be
// at least as large as the scenario's arena; the annotator is wired
// from the tracer the runtime was constructed with.
func NewSTMRunnerOn(sc *Scenario, rt *stm.Runtime) *STMRunner {
	if rt.Size() < sc.Words() {
		panic(fmt.Sprintf("scenario %s: runtime arena has %d words, scenario needs %d",
			sc.Name(), rt.Size(), sc.Words()))
	}
	rn := &STMRunner{sc: sc, rt: rt}
	if a, ok := rt.Config().Trace.(ProgramAnnotator); ok {
		rn.annotate = a
	}
	return rn
}

// Scenario returns the underlying scenario.
func (rn *STMRunner) Scenario() *Scenario { return rn.sc }

// Runtime exposes the underlying STM runtime (stats, config).
func (rn *STMRunner) Runtime() *stm.Runtime { return rn.rt }

// RunOne generates and commits one transaction for the given worker,
// then burns the program's think time outside the transaction.
// Workers must each run on their own goroutine with their own stream.
func (rn *STMRunner) RunOne(worker int, r *rng.Rand) {
	p := rn.sc.Next(worker, r)
	_ = rn.rt.AtomicWorker(worker, r, func(tx *stm.Tx) error {
		execProgram(tx, p.Ops)
		return nil
	})
	if rn.annotate != nil {
		var compute float64
		for _, op := range p.Ops {
			if op.Kind == OpCompute {
				compute += op.Cycles
			}
		}
		rn.annotate.AnnotateProgram(worker, len(p.Ops), compute, p.Think)
	}
	busyWork(int(p.Think))
}

// execProgram interprets a scenario program against a transaction.
// The register file is re-zeroed per attempt (the closure re-runs on
// abort), mirroring the HTM core's fresh registers after restart.
func execProgram(tx *stm.Tx, ops []Op) {
	var regs [8]uint64
	for _, op := range ops {
		switch op.Kind {
		case OpCompute:
			busyWork(int(op.Cycles))
		case OpRead:
			regs[op.Dst&7] = tx.Load(op.WordIndex(&regs))
		case OpWrite:
			tx.Store(op.WordIndex(&regs), op.Value(&regs))
		case OpAdd:
			tx.Add(op.WordIndex(&regs), op.Imm)
		}
	}
}

// DriveResult summarizes one timed multi-worker run.
type DriveResult struct {
	// PerWorker counts completed transactions per worker.
	PerWorker []uint64
	// ElapsedSec is the measured wall-clock duration.
	ElapsedSec float64
}

// Ops returns the total completed transactions.
func (dr DriveResult) Ops() uint64 {
	var total uint64
	for _, c := range dr.PerWorker {
		total += c
	}
	return total
}

// OpsPerSec returns the completed-transaction throughput.
func (dr DriveResult) OpsPerSec() float64 {
	if dr.ElapsedSec <= 0 {
		return 0
	}
	return float64(dr.Ops()) / dr.ElapsedSec
}

// Drive hammers the scenario with the given number of worker
// goroutines for roughly d. It panics when workers exceeds the
// scenario's configured worker count (per-worker state cannot grow
// mid-run).
func (rn *STMRunner) Drive(workers int, d time.Duration, seed uint64) DriveResult {
	if workers <= 0 || workers > rn.sc.Workers() {
		panic(fmt.Sprintf("scenario %s: Drive with %d workers, instance sized for %d",
			rn.sc.Name(), workers, rn.sc.Workers()))
	}
	root := rng.New(seed)
	counts := make([]uint64, workers)
	stop := make(chan struct{})
	// Profiler labels carry the experiment context into pprof output:
	// CPU and block profiles split by scenario and commit mode, so a
	// mixed run (adaptive phases, perf sweeps) stays attributable.
	mode := "eager"
	if rn.rt.Config().Lazy {
		mode = "lazy"
		if rn.rt.Policy().CommitBatch > 0 {
			mode = "lazy-batched"
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		r := root.Split()
		wg.Add(1)
		labels := pprof.Labels("scenario", rn.sc.Name(),
			"stm_mode", mode, "stm_worker", strconv.Itoa(w))
		go pprof.Do(context.Background(), labels, func(context.Context) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rn.RunOne(w, r)
				counts[w]++
			}
		})
	}
	start := time.Now()
	time.Sleep(d)
	close(stop)
	wg.Wait()
	return DriveResult{PerWorker: counts, ElapsedSec: time.Since(start).Seconds()}
}

// Check verifies the scenario invariant against the runtime's
// committed state and the given per-worker completed-transaction
// counts (as returned in DriveResult.PerWorker).
func (rn *STMRunner) Check(perWorker []uint64) error {
	st := &State{
		Read:             func(word int) uint64 { return rn.rt.ReadCommitted(word) },
		PerWorkerCommits: perWorker,
	}
	return rn.sc.Check(st)
}

// CalibrateUnitNs measures this machine's wall-clock nanoseconds per
// compute unit (one busyWork iteration) — the conversion a trace
// recorder stamps into its header so recorded compute lengths replay
// as faithful simulated-cycle counts on another box (at the
// simulator's 1 GHz convention, units × UnitNs = cycles). Best of
// three trials over 2²⁰ iterations (~1-4 ms total); the minimum
// rejects scheduler preemption, which only ever inflates the
// measurement.
func CalibrateUnitNs() float64 {
	const n = 1 << 20
	best := math.MaxFloat64
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		busyWork(n)
		if d := float64(time.Since(start).Nanoseconds()) / n; d < best && d > 0 {
			best = d
		}
	}
	if best == math.MaxFloat64 {
		return 0
	}
	return best
}

// busyWork spins for n iterations of dependent integer work, keeping
// the goroutine on-CPU like real computation (no sleeping).
func busyWork(n int) {
	x := uint64(1)
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	if x == 42 {
		panic("unreachable")
	}
}
