// Package scenario is the unified workload engine: one description of
// the paper's evaluation workloads (Section 8.1 length distributions,
// Section 8.2 stack/queue/TxApp/bimodal benchmarks, plus read-mostly,
// long-reader and hotspot/zipf extensions) that drives both execution
// backends — the cycle-level HTM simulator (via internal/workload)
// and the real-goroutine STM runtime (via STMRunner in this package).
//
// A scenario emits transactions as tiny register-machine programs
// over *word indices* of a flat shared arena: loads and stores with
// optional register-indirect addressing, plus pure-compute steps whose
// lengths are drawn from a dist.Sampler. The HTM adapter compiles one
// program to htm.Ops (each word on its own cache line); the STM
// runner interprets the same program against tx.Load/tx.Store. Both
// backends therefore execute the *same* access patterns from the same
// random streams, making sim-vs-real comparisons apples to apples.
//
// Every scenario carries a committed-state invariant (stack depth,
// queue occupancy, object sums against per-worker tallies) expressed
// against an abstract State, so any run on either backend doubles as
// an end-to-end serializability check.
//
// Scenarios are selected by name through ByName — the single registry
// behind the -scenario flags of cmd/txsim and cmd/stmbench and the
// root benchmark suite.
package scenario

import (
	"fmt"

	"txconflict/internal/dist"
	"txconflict/internal/rng"
)

// maskAll is the no-op register mask for indirect addressing.
const maskAll = ^uint64(0)

// lenCap bounds sampled compute lengths, so heavy-tailed samplers
// (pareto, trace) cannot stall a run on one pathological draw.
const lenCap = 1e6

// OpKind distinguishes program steps.
type OpKind uint8

const (
	// OpRead loads the word at the effective index into register Dst.
	OpRead OpKind = iota
	// OpWrite stores (regs[Src] + Imm) — or just Imm when Src < 0 —
	// to the word at the effective index.
	OpWrite
	// OpCompute performs Cycles units of pure compute (simulated
	// cycles on the HTM backend, busy-work iterations on the STM).
	OpCompute
	// OpAdd adds the constant Imm to the word at the effective index —
	// a *tagged commutative* delta whose result is never observed by
	// the program. The STM backend lowers it to tx.Add, which the
	// group-commit combiner can fold with every other delta to the
	// same word in a batch (stm.Policy.FoldCommutative); the HTM
	// simulator compiles it to the read-modify-write a hardware TM
	// would execute, clobbering register Dst as scratch. Programs must
	// treat Dst as undefined after an OpAdd (the STM side has no
	// loaded value to put there).
	OpAdd
)

// Op is one step of a scenario transaction. The effective word index
// is Word when Reg < 0, and Word + (regs[Reg] & Mask) otherwise.
type Op struct {
	Kind   OpKind
	Word   int
	Reg    int
	Mask   uint64
	Cycles float64
	Dst    int
	Src    int
	Imm    uint64
}

// Load constructs a read of a static word into register dst.
func Load(word, dst int) Op {
	return Op{Kind: OpRead, Word: word, Reg: -1, Dst: dst, Src: -1}
}

// LoadAt constructs a read of word base + (regs[reg] & mask) into dst.
func LoadAt(base, reg int, mask uint64, dst int) Op {
	return Op{Kind: OpRead, Word: base, Reg: reg, Mask: mask, Dst: dst, Src: -1}
}

// Store constructs a write of regs[src]+imm to a static word.
func Store(word, src int, imm uint64) Op {
	return Op{Kind: OpWrite, Word: word, Reg: -1, Src: src, Imm: imm}
}

// StoreImm constructs a write of the constant imm to a static word.
func StoreImm(word int, imm uint64) Op {
	return Op{Kind: OpWrite, Word: word, Reg: -1, Src: -1, Imm: imm}
}

// StoreAt constructs a write of regs[src]+imm (or imm when src < 0)
// to word base + (regs[reg] & mask).
func StoreAt(base, reg int, mask uint64, src int, imm uint64) Op {
	return Op{Kind: OpWrite, Word: base, Reg: reg, Mask: mask, Src: src, Imm: imm}
}

// Work constructs a pure-compute step.
func Work(cycles float64) Op {
	return Op{Kind: OpCompute, Reg: -1, Src: -1, Cycles: cycles}
}

// Add constructs a commutative `word += imm` delta to a static word.
// Register 7 is the HTM backend's RMW scratch and is undefined after
// the op on both backends.
func Add(word int, imm uint64) Op {
	return Op{Kind: OpAdd, Word: word, Reg: -1, Dst: 7, Src: -1, Imm: imm}
}

// WordIndex resolves the op's effective word index against a register
// file.
func (op Op) WordIndex(regs *[8]uint64) int {
	if op.Reg < 0 {
		return op.Word
	}
	return op.Word + int(regs[op.Reg&7]&op.Mask)
}

// Value resolves the op's store value against a register file.
func (op Op) Value(regs *[8]uint64) uint64 {
	v := op.Imm
	if op.Src >= 0 {
		v += regs[op.Src&7]
	}
	return v
}

// Program is one transaction instance plus the non-transactional
// think time that follows it.
type Program struct {
	Ops []Op
	// Think is the non-transactional compute after the transaction
	// commits, in the same units as Op.Cycles.
	Think float64
}

// State is the committed view a backend exposes for invariant
// checking: a word reader plus the per-worker committed-transaction
// counts.
type State struct {
	// Read returns the committed value of a word.
	Read func(word int) uint64
	// PerWorkerCommits counts committed transactions per worker.
	PerWorkerCommits []uint64
}

// Commits returns the total committed transactions.
func (st *State) Commits() uint64 {
	var total uint64
	for _, c := range st.PerWorkerCommits {
		total += c
	}
	return total
}

// Options parameterize a scenario instance obtained from ByName.
type Options struct {
	// Workers is the number of concurrent workers (simulator cores or
	// goroutines) the instance must support; per-worker state (parity
	// counters, tally words) is sized from it. 0 defaults to 64, the
	// HTM simulator's maximum core count.
	Workers int
	// Length overrides the scenario's default in-transaction compute
	// length sampler. Units are simulated cycles on the HTM backend
	// and busy-work iterations on the STM.
	Length dist.Sampler
	// Think overrides the scenario's default non-transactional
	// think-time sampler (default: constant 10).
	Think dist.Sampler
	// Delta is the increment magnitude of the commutative-counter
	// scenarios' tagged Add ops (hotspot, kvcounter; 0 = 1). The
	// committed invariants scale with it, so any magnitude still
	// detects lost updates — larger deltas just make a single lost
	// fold stand out more in the sums.
	Delta uint64
}

// Scenario is one instantiated workload: a named program generator
// over a sized arena, with a verifiable committed-state invariant.
// Next carries per-worker state (e.g. push/pop parity); each worker
// must be driven by a single goroutine, and distinct workers may run
// concurrently.
type Scenario struct {
	name    string
	desc    string
	workers int
	wordsFn func(workers int) int
	length  dist.Sampler
	think   dist.Sampler
	next    func(worker int, r *rng.Rand) Program
	check   func(st *State) error
	delta   uint64 // Add magnitude for the commutative scenarios

	counts []uint64 // per-worker transaction parity/sequence state
}

// Name identifies the scenario in tables and CLI flags.
func (s *Scenario) Name() string { return s.name }

// Description is the one-line summary shown by CLI listings.
func (s *Scenario) Description() string { return s.desc }

// Workers returns the worker count the instance is sized for.
func (s *Scenario) Workers() int { return s.workers }

// Words returns the arena size (in words) the scenario needs at its
// current worker count.
func (s *Scenario) Words() int { return s.wordsFn(s.workers) }

// Next returns the next transaction program for the given worker.
// It panics with a descriptive message when worker is outside the
// configured range — per-worker state cannot be grown safely while
// other workers are running.
func (s *Scenario) Next(worker int, r *rng.Rand) Program {
	if worker < 0 || worker >= s.workers {
		panic(fmt.Sprintf(
			"scenario %s: worker %d out of range (instance sized for %d workers; set Options.Workers or call EnsureWorkers before starting)",
			s.name, worker, s.workers))
	}
	return s.next(worker, r)
}

// Check verifies the scenario's committed-state invariant.
func (s *Scenario) Check(st *State) error { return s.check(st) }

// EnsureWorkers grows the per-worker state to support n workers. It
// never shrinks. It must be called before any worker starts (the
// HTM machine calls it with the actual core count at construction);
// growing a scenario that already feeds a sized STM arena is invalid.
func (s *Scenario) EnsureWorkers(n int) {
	if n <= s.workers {
		return
	}
	grown := make([]uint64, n)
	copy(grown, s.counts)
	s.counts = grown
	s.workers = n
}

// seq returns the worker's transaction sequence number and advances
// it. Only the worker's own goroutine touches its slot.
func (s *Scenario) seq(worker int) uint64 {
	n := s.counts[worker]
	s.counts[worker]++
	return n
}

// sampleLen draws one in-transaction compute length, clamped to
// [0, lenCap].
func (s *Scenario) sampleLen(r *rng.Rand) float64 {
	v := s.length.Sample(r)
	if v < 0 {
		return 0
	}
	if v > lenCap {
		return lenCap
	}
	return v
}

// sampleThink draws one think time, clamped to [0, lenCap].
func (s *Scenario) sampleThink(r *rng.Rand) float64 {
	v := s.think.Sample(r)
	if v < 0 {
		return 0
	}
	if v > lenCap {
		return lenCap
	}
	return v
}
