package scenario

import (
	"fmt"

	"txconflict/internal/dist"
	"txconflict/internal/rng"
)

// ReplayRecord is one committed transaction of a recorded trace,
// reduced to what a backend needs to re-issue it: the distinct word
// indices read and written, the in-transaction compute, and the
// think time that followed (compute and think in the usual scenario
// units — simulated cycles on the HTM backend, busy-work iterations
// on the STM). internal/trace converts its on-disk records to this
// form; hand-built slices work too.
type ReplayRecord struct {
	Reads, Writes  []uint32
	Compute, Think float64
}

// replayIndex maps a (worker, per-worker sequence) pair onto the
// record list: worker w replays records w, w+workers, w+2·workers, …
// wrapping at the end. The striding keeps per-worker streams disjoint
// (as in the original run) while covering the whole trace, and the
// invariant check below replays the same mapping arithmetically.
func replayIndex(worker int, seq uint64, workers, n int) int {
	return int((uint64(worker) + seq*uint64(workers)) % uint64(n))
}

// NewReplay builds a scenario that re-issues recorded transaction
// footprints as register-machine programs: each program loads the
// record's read set, computes for the recorded in-transaction length,
// and increments every written word (a load-add-store pair, so the
// committed arena stays verifiable under concurrency). Both backends
// therefore execute the exact access pattern of the recorded run.
//
// Committed-state invariant: the sum over all words equals the total
// number of write ops in the records each worker committed — the
// record-to-worker mapping is deterministic (see replayIndex), so the
// expected sum is recomputable from the per-worker commit counts.
//
// Options.Length/Options.Think, when set, override the recorded
// compute and think times (so -dist sweeps still compose with
// replayed footprints); by default each program replays its record's
// own values.
func NewReplay(name, desc string, recs []ReplayRecord, opt Options) (*Scenario, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("scenario: replay %q needs at least one committed record", name)
	}
	words := 1
	var computes []float64
	for _, rec := range recs {
		for _, w := range rec.Reads {
			if int(w)+1 > words {
				words = int(w) + 1
			}
		}
		for _, w := range rec.Writes {
			if int(w)+1 > words {
				words = int(w) + 1
			}
		}
		computes = append(computes, rec.Compute)
	}
	lengthOverride := opt.Length != nil
	thinkOverride := opt.Think != nil
	// The default length sampler is the empirical distribution of the
	// recorded computes — only consulted when a caller later swaps
	// samplers, but it keeps Mean() meaningful for tuners.
	s := newBase(opt, dist.NewEmpirical(name, computes),
		func(int) int { return words })
	s.name, s.desc = name, desc
	s.next = func(worker int, r *rng.Rand) Program {
		rec := &recs[replayIndex(worker, s.seq(worker), s.workers, len(recs))]
		comp := rec.Compute
		if lengthOverride {
			comp = s.sampleLen(r)
		} else if comp > lenCap {
			comp = lenCap
		}
		think := rec.Think
		if thinkOverride {
			think = s.sampleThink(r)
		} else if think > lenCap {
			think = lenCap
		}
		ops := make([]Op, 0, len(rec.Reads)+2*len(rec.Writes)+1)
		reg := 0
	reads:
		for _, w := range rec.Reads {
			for _, wr := range rec.Writes {
				if wr == w {
					continue reads // the increment below re-reads it
				}
			}
			ops = append(ops, Load(int(w), reg&7))
			reg++
		}
		ops = append(ops, Work(comp))
		for _, w := range rec.Writes {
			ops = append(ops, Load(int(w), 7), Store(int(w), 7, 1))
		}
		return Program{Ops: ops, Think: think}
	}
	s.check = func(st *State) error {
		var want uint64
		for w, c := range st.PerWorkerCommits {
			for i := uint64(0); i < c; i++ {
				want += uint64(len(recs[replayIndex(w, i, s.workers, len(recs))].Writes))
			}
		}
		var got uint64
		for w := 0; w < words; w++ {
			got += st.Read(w)
		}
		if got != want {
			return fmt.Errorf("%s: arena sum %d, want %d write increments (per-worker commits %v)",
				s.name, got, want, st.PerWorkerCommits)
		}
		return nil
	}
	return s, nil
}
