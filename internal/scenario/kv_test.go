package scenario

import (
	"strings"
	"testing"

	"txconflict/internal/rng"
)

// TestKVScenariosRegistered pins the keyed shapes' presence in the
// shared registry (they ride the parity and cross-mode matrices from
// there).
func TestKVScenariosRegistered(t *testing.T) {
	for _, name := range []string{"kvcounter", "kvread", "kvdoc"} {
		if !Known(name) {
			t.Fatalf("scenario %q not registered (have %v)", name, Names())
		}
		sc, err := ByName(name, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if sc.Words() < kvKeys {
			t.Fatalf("%s arena only %d words", name, sc.Words())
		}
		p := sc.Next(0, rng.New(1))
		if len(p.Ops) == 0 {
			t.Fatalf("%s produced an empty program", name)
		}
	}
}

// TestKVDocCheckDetectsTearing proves the kvdoc invariant has teeth:
// a committed state where one field of a document lags the others
// must be rejected as a torn (non-atomic) document write.
func TestKVDocCheckDetectsTearing(t *testing.T) {
	sc, err := ByName("kvdoc", Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	words := make([]uint64, sc.Words())
	// Two clean bumps of document 0...
	for f := 0; f < kvDocFields; f++ {
		words[f] = 2
	}
	clean := &State{
		Read:             func(w int) uint64 { return words[w] },
		PerWorkerCommits: []uint64{2},
	}
	if err := sc.Check(clean); err != nil {
		t.Fatalf("clean state rejected: %v", err)
	}
	// ...then one field torn.
	words[kvDocFields-1] = 1
	if err := sc.Check(clean); err == nil || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("torn document not detected (err = %v)", err)
	}
	// And a bump-count mismatch (lost update) is also caught.
	words[kvDocFields-1] = 2
	clean.PerWorkerCommits = []uint64{3}
	if err := sc.Check(clean); err == nil {
		t.Fatal("lost document bump not detected")
	}
}

// TestKVCounterCheckDetectsLostUpdate proves the kvcounter tally
// invariant rejects a lost counter increment.
func TestKVCounterCheckDetectsLostUpdate(t *testing.T) {
	sc, err := ByName("kvcounter", Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	words := make([]uint64, sc.Words())
	words[3] = 5        // counter key 3
	words[kvKeys] = 3   // worker 0 tally
	words[kvKeys+1] = 2 // worker 1 tally
	st := &State{Read: func(w int) uint64 { return words[w] }, PerWorkerCommits: []uint64{3, 2}}
	if err := sc.Check(st); err != nil {
		t.Fatalf("consistent state rejected: %v", err)
	}
	words[3] = 4 // one lost increment
	if err := sc.Check(st); err == nil {
		t.Fatal("lost keyed increment not detected")
	}
}
