package scenario

import (
	"strings"
	"testing"
	"time"

	"txconflict/internal/dist"
	"txconflict/internal/rng"
	"txconflict/internal/stm"
)

func TestNamesAndByName(t *testing.T) {
	names := Names()
	want := []string{"bimodal", "hotspot", "kvcounter", "kvdoc", "kvread", "longreader", "queue", "readmostly", "stack", "txapp"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		sc, err := ByName(n, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if sc.Name() != n {
			t.Fatalf("scenario name %q, want %q", sc.Name(), n)
		}
		if sc.Description() == "" {
			t.Fatalf("%s: empty description", n)
		}
		if sc.Words() <= 0 {
			t.Fatalf("%s: words = %d", n, sc.Words())
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	_, err := ByName("nope", Options{})
	if err == nil || !strings.Contains(err.Error(), "stack") {
		t.Fatalf("err = %v, want error listing known names", err)
	}
}

func TestDescribeCoversCatalog(t *testing.T) {
	if len(Describe()) != len(Names()) {
		t.Fatal("Describe/Names length mismatch")
	}
}

func TestStackProgramAlternation(t *testing.T) {
	sc, _ := ByName("stack", Options{Workers: 2})
	r := rng.New(1)
	push := sc.Next(0, r)
	pop := sc.Next(0, r)
	if push.Ops[3].Imm != 1 || push.Ops[3].Src != 0 {
		t.Fatalf("first program is not a push: %+v", push.Ops[3])
	}
	if pop.Ops[3].Imm != ^uint64(0) {
		t.Fatalf("second program is not a pop: %+v", pop.Ops[3])
	}
	// Independent parity per worker.
	if p := sc.Next(1, r); p.Ops[3].Imm != 1 {
		t.Fatal("worker 1 first program is not a push")
	}
}

func TestWorkerRangePanics(t *testing.T) {
	sc, _ := ByName("txapp", Options{Workers: 2})
	defer func() {
		rec := recover()
		msg, ok := rec.(string)
		if !ok || !strings.Contains(msg, "out of range") {
			t.Fatalf("panic = %v, want out-of-range message", rec)
		}
	}()
	sc.Next(2, rng.New(1))
}

func TestEnsureWorkersGrowsNotShrinks(t *testing.T) {
	sc, _ := ByName("readmostly", Options{Workers: 2})
	words2 := sc.Words()
	sc.EnsureWorkers(8)
	if sc.Workers() != 8 {
		t.Fatalf("workers = %d, want 8", sc.Workers())
	}
	if sc.Words() != words2+6 {
		t.Fatalf("words = %d, want %d (one tally per worker)", sc.Words(), words2+6)
	}
	sc.EnsureWorkers(4)
	if sc.Workers() != 8 {
		t.Fatal("EnsureWorkers must never shrink")
	}
}

func TestLengthOverride(t *testing.T) {
	sc, _ := ByName("txapp", Options{Workers: 1, Length: dist.Constant{V: 321}})
	p := sc.Next(0, rng.New(2))
	if p.Ops[2].Kind != OpCompute || p.Ops[2].Cycles != 321 {
		t.Fatalf("compute op = %+v, want 321 cycles", p.Ops[2])
	}
}

func TestLengthClamped(t *testing.T) {
	sc, _ := ByName("txapp", Options{Workers: 1, Length: dist.Constant{V: 1e12}})
	p := sc.Next(0, rng.New(2))
	if p.Ops[2].Cycles != lenCap {
		t.Fatalf("compute = %v, want clamped to %v", p.Ops[2].Cycles, lenCap)
	}
}

func TestHotspotSkew(t *testing.T) {
	sc, _ := ByName("hotspot", Options{Workers: 1, Length: dist.Constant{V: 1}})
	r := rng.New(7)
	hits := make(map[int]int)
	for i := 0; i < 4000; i++ {
		p := sc.Next(0, r)
		hits[p.Ops[0].Word]++
		hits[p.Ops[1].Word]++
	}
	if hits[0] <= 4*hits[32] {
		t.Fatalf("object 0 not hot: %d vs object 32's %d", hits[0], hits[32])
	}
	for w := range hits {
		if w < 0 || w >= objects {
			t.Fatalf("object %d out of range", w)
		}
	}
}

func TestHotspotDistinctObjects(t *testing.T) {
	sc, _ := ByName("hotspot", Options{Workers: 1})
	r := rng.New(8)
	for i := 0; i < 2000; i++ {
		// Program shape: Work, Add(i), Add(j).
		p := sc.Next(0, r)
		if p.Ops[1].Kind != OpAdd || p.Ops[2].Kind != OpAdd {
			t.Fatal("hotspot increments are not tagged commutative deltas")
		}
		if p.Ops[1].Word == p.Ops[2].Word {
			t.Fatal("hotspot picked the same object twice")
		}
	}
}

func TestReadMostlyWriteFraction(t *testing.T) {
	sc, _ := ByName("readmostly", Options{Workers: 1})
	r := rng.New(3)
	writes, total := 0, 0
	for i := 0; i < 4000; i++ {
		total++
		p := sc.Next(0, r)
		wrote := false
		seen := map[int]bool{}
		for _, op := range p.Ops {
			if op.Kind == OpWrite {
				wrote = true
			}
			if op.Kind == OpRead && op.Word < objects {
				if seen[op.Word] {
					t.Fatal("duplicate object read in one transaction")
				}
				seen[op.Word] = true
			}
		}
		if wrote {
			writes++
		}
	}
	frac := float64(writes) / float64(total)
	if frac < 0.1 || frac > 0.3 {
		t.Fatalf("write fraction %v, want ~0.2", frac)
	}
}

func TestOpResolution(t *testing.T) {
	regs := [8]uint64{5, 0, 0, 0, 0, 0, 0, 9}
	if got := LoadAt(2, 0, maskAll, 1).WordIndex(&regs); got != 7 {
		t.Fatalf("indirect word = %d, want 7", got)
	}
	if got := Load(3, 0).WordIndex(&regs); got != 3 {
		t.Fatalf("static word = %d, want 3", got)
	}
	if got := Store(0, 7, 1).Value(&regs); got != 10 {
		t.Fatalf("reg+imm value = %d, want 10", got)
	}
	if got := StoreImm(0, 42).Value(&regs); got != 42 {
		t.Fatalf("imm value = %d, want 42", got)
	}
}

// TestSTMRunnerSingleWorker runs every scenario single-threaded on
// the real runtime and verifies the invariant — the cheap smoke half
// of the parity suite.
func TestSTMRunnerSingleWorker(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := ByName(name, Options{Workers: 1, Think: dist.Constant{V: 0}})
			if err != nil {
				t.Fatal(err)
			}
			rn := NewSTMRunner(sc, stm.DefaultConfig())
			r := rng.New(11)
			const ops = 500
			for i := 0; i < ops; i++ {
				rn.RunOne(0, r)
			}
			if err := rn.Check([]uint64{ops}); err != nil {
				t.Fatal(err)
			}
			if got := rn.Runtime().Stats.Commits.Load(); got < ops {
				t.Fatalf("runtime commits %d < %d ops", got, ops)
			}
		})
	}
}

func TestDriveCountsMatchInvariant(t *testing.T) {
	sc, _ := ByName("stack", Options{Workers: 4})
	rn := NewSTMRunner(sc, stm.DefaultConfig())
	res := rn.Drive(4, 30*time.Millisecond, 5)
	if res.Ops() == 0 {
		t.Fatal("no transactions completed")
	}
	if err := rn.Check(res.PerWorker); err != nil {
		t.Fatal(err)
	}
	if res.OpsPerSec() <= 0 {
		t.Fatal("non-positive throughput")
	}
}

func TestDriveTooManyWorkersPanics(t *testing.T) {
	sc, _ := ByName("txapp", Options{Workers: 2})
	rn := NewSTMRunner(sc, stm.DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when workers exceed the sized instance")
		}
	}()
	rn.Drive(4, time.Millisecond, 1)
}
