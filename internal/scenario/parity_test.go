// Scenario-parity suite (external test package so it can pull in the
// HTM adapter without an import cycle): every registered scenario
// runs on BOTH backends — the cycle-level HTM simulator and the
// real-goroutine STM runtime — and each run must satisfy the same
// committed-state invariant (stack depth, queue occupancy, object
// sums vs tallies). CI runs this under -race at GOMAXPROCS=1 and 4.
package scenario_test

import (
	"os"
	"strconv"
	"testing"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/htm"
	"txconflict/internal/rng"
	"txconflict/internal/scenario"
	"txconflict/internal/stm"
	"txconflict/internal/strategy"
	"txconflict/internal/workload"
)

// parityBatch is the Config.CommitBatch the batched-lazy parity and
// equivalence cells run with. CI sets it per matrix cell via
// STM_COMMIT_BATCH (the scenario-parity job's -batch knob): a
// positive value pins the batch bound, 0 skips the batched cells
// (they would duplicate the plain lazy runs), and unset defaults
// to 4.
func parityBatch() int {
	if s := os.Getenv("STM_COMMIT_BATCH"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 {
			return n
		}
	}
	return 4
}

// htmParity runs one scenario on the simulator and checks its
// invariant against the drained directory image.
func htmParity(t *testing.T, name string, pol core.Policy) {
	t.Helper()
	sc, err := scenario.ByName(name, scenario.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	w := workload.FromScenario(sc)
	p := htm.DefaultParams(8)
	p.Policy = pol
	p.Strategy = strategy.UniformRW{}
	p.Seed = 42
	m := htm.NewMachine(p, w)
	cycles := uint64(300_000)
	if testing.Short() {
		cycles = 120_000
	}
	m.Run(cycles)
	met := m.Drain()
	if met.Commits == 0 {
		t.Fatalf("%s/HTM: no commits", name)
	}
	if err := w.Check(m.Dir.ReadWord, met.PerCoreCommits); err != nil {
		t.Fatalf("%s/HTM (%v): %v", name, pol, err)
	}
}

// stmParity runs the same scenario as real transactions and checks
// the same invariant against the committed arena.
func stmParity(t *testing.T, name string, cfg stm.Config) {
	t.Helper()
	const workers = 4
	sc, err := scenario.ByName(name, scenario.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	rn := scenario.NewSTMRunner(sc, cfg)
	d := 50 * time.Millisecond
	if testing.Short() {
		d = 20 * time.Millisecond
	}
	res := rn.Drive(workers, d, 42)
	if res.Ops() == 0 {
		t.Fatalf("%s/STM: no transactions completed", name)
	}
	if err := rn.Check(res.PerWorker); err != nil {
		t.Fatalf("%s/STM (%s): %v", name, cfg.String(), err)
	}
}

// TestScenarioParity is the cross-backend invariant matrix: each
// registered scenario on the HTM simulator (requestor wins and
// aborts) and on the STM runtime (eager and lazy locking).
func TestScenarioParity(t *testing.T) {
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			htmParity(t, name, core.RequestorWins)
			if !testing.Short() {
				htmParity(t, name, core.RequestorAborts)
			}
			stmParity(t, name, stm.DefaultConfig())
			if !testing.Short() {
				lazy := stm.DefaultConfig()
				lazy.Lazy = true
				stmParity(t, name, lazy)
				if b := parityBatch(); b > 0 {
					batched := lazy
					batched.CommitBatch = b
					stmParity(t, name, batched)
				}
			}
		})
	}
}

// TestScenarioParityKWindow exercises the windowed conflict-chain
// estimator end to end on a contended scenario: the invariant must
// hold and the estimator must have observed real chains.
func TestScenarioParityKWindow(t *testing.T) {
	cfg := stm.DefaultConfig()
	cfg.KWindow = 32
	sc, err := scenario.ByName("hotspot", scenario.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rn := scenario.NewSTMRunner(sc, cfg)
	res := rn.Drive(4, 50*time.Millisecond, 7)
	if err := rn.Check(res.PerWorker); err != nil {
		t.Fatal(err)
	}
	if waits := rn.Runtime().Stats.GraceWaits.Load(); waits > 0 {
		if est := rn.Runtime().KEstimate(); est < 2 {
			t.Fatalf("KEstimate = %v after %d grace waits, want >= 2", est, waits)
		}
	}
}

// stmModes are the runtime configurations the equivalence suite
// compares: eager encounter-time locking, lazy (TL2) commit locking,
// lazy with the group-commit combiner, and the combiner with
// commutative delta folding. The fold cell rides the batched one
// (folding only exists inside the combiner); STM_FOLD=0 drops it from
// a CI matrix cell.
func stmModes() []struct {
	name string
	cfg  stm.Config
} {
	eager := stm.DefaultConfig()
	lazy := eager
	lazy.Lazy = true
	modes := []struct {
		name string
		cfg  stm.Config
	}{
		{"eager", eager},
		{"lazy", lazy},
	}
	if b := parityBatch(); b > 0 {
		batched := lazy
		batched.CommitBatch = b
		modes = append(modes, struct {
			name string
			cfg  stm.Config
		}{"lazy+batched", batched})
		if os.Getenv("STM_FOLD") != "0" {
			folded := batched
			folded.FoldCommutative = true
			modes = append(modes, struct {
				name string
				cfg  stm.Config
			}{"lazy+batched+fold", folded})
		}
	}
	return modes
}

// TestCrossModeEquivalence is the cross-mode property suite for the
// batched commit path: every registered scenario, on a seeded
// deterministic schedule (one worker, a fixed transaction count),
// must leave a byte-identical committed arena under eager, lazy, and
// lazy+batched configurations — same words, same object sums. A
// single worker makes the schedule a pure function of the seed, so
// any divergence is a real semantic difference between the commit
// paths (a lost write, a double write-back, a skipped program).
func TestCrossModeEquivalence(t *testing.T) {
	const txs = 300
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			var ref []uint64
			var refMode string
			for _, mode := range stmModes() {
				sc, err := scenario.ByName(name, scenario.Options{Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				rn := scenario.NewSTMRunner(sc, mode.cfg)
				r := rng.New(12345)
				for i := 0; i < txs; i++ {
					rn.RunOne(0, r)
				}
				perWorker := []uint64{txs}
				if err := rn.Check(perWorker); err != nil {
					t.Fatalf("%s: invariant: %v", mode.name, err)
				}
				words := make([]uint64, sc.Words())
				for i := range words {
					words[i] = rn.Runtime().ReadCommitted(i)
				}
				if ref == nil {
					ref, refMode = words, mode.name
					continue
				}
				if len(words) != len(ref) {
					t.Fatalf("%s arena has %d words, %s has %d", mode.name, len(words), refMode, len(ref))
				}
				for i := range words {
					if words[i] != ref[i] {
						t.Fatalf("%s diverges from %s at word %d: %d vs %d",
							mode.name, refMode, i, words[i], ref[i])
					}
				}
			}
		})
	}
}

// TestCrossModeEquivalenceContended drives the same three modes with
// real contention (the deterministic test above cannot exercise
// batching's multi-member rounds or conflict paths) and holds every
// mode to the scenario's committed-state invariant.
func TestCrossModeEquivalenceContended(t *testing.T) {
	if testing.Short() {
		t.Skip("contended equivalence is covered by TestScenarioParity in short mode")
	}
	const workers = 4
	d := 40 * time.Millisecond
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, mode := range stmModes() {
				sc, err := scenario.ByName(name, scenario.Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				rn := scenario.NewSTMRunner(sc, mode.cfg)
				res := rn.Drive(workers, d, 99)
				if res.Ops() == 0 {
					t.Fatalf("%s: no transactions completed", mode.name)
				}
				if err := rn.Check(res.PerWorker); err != nil {
					t.Fatalf("%s (%s): %v", mode.name, mode.cfg.String(), err)
				}
			}
		})
	}
}

// TestCrossModePolicyChurn holds the equivalence suite's invariant
// under a live control plane: every scenario runs contended on all
// three commit modes while a churner goroutine flips the runtime
// policy mid-run — resolution, strategy, hybrid rule, estimator
// window, combiner lane — as fast as it can. Whatever mix of policies
// individual transactions latched, the committed state must still
// satisfy the scenario's invariant: policy swaps steer contention,
// they never change what a committed transaction wrote.
func TestCrossModePolicyChurn(t *testing.T) {
	const workers = 4
	d := 40 * time.Millisecond
	if testing.Short() {
		d = 15 * time.Millisecond
	}
	churn := []stm.Policy{
		{Resolution: core.RequestorWins, Strategy: strategy.UniformRW{}, BackoffFactor: 1, MaxRetries: 128},
		{Resolution: core.RequestorAborts, Strategy: strategy.ExpRA{}, KWindow: 16, BackoffFactor: 1, MaxRetries: 128},
		{Resolution: core.RequestorWins, Hybrid: true, Strategy: strategy.Hybrid{}, KWindow: 64, CommitBatch: 4, FoldCommutative: true, BackoffFactor: 1, MaxRetries: 128},
		{Resolution: core.RequestorWins, CommitBatch: 2, BackoffFactor: 2, MaxRetries: 128},
		{Resolution: core.RequestorWins, CommitBatch: 4, FoldCommutative: true, BackoffFactor: 1, MaxRetries: 128},
	}
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, mode := range stmModes() {
				sc, err := scenario.ByName(name, scenario.Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				rn := scenario.NewSTMRunner(sc, mode.cfg)
				rt := rn.Runtime()
				stop := make(chan struct{})
				done := make(chan struct{})
				go func() {
					defer close(done)
					// Throttled so the churner cannot starve the
					// workers on a single P: ~50 swaps/ms is still far
					// beyond any real control loop.
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
							rt.SetPolicy(churn[i%len(churn)])
							time.Sleep(20 * time.Microsecond)
						}
					}
				}()
				res := rn.Drive(workers, d, 77)
				close(stop)
				<-done
				if res.Ops() == 0 {
					t.Fatalf("%s: no transactions completed under churn", mode.name)
				}
				if rt.PolicySwaps() == 0 {
					t.Fatalf("%s: churner never swapped", mode.name)
				}
				if err := rn.Check(res.PerWorker); err != nil {
					t.Fatalf("%s (%s) after %d policy swaps: %v",
						mode.name, mode.cfg.String(), rt.PolicySwaps(), err)
				}
			}
		})
	}
}

// TestSameSeedSameprograms pins the cross-backend contract: with the
// same seed, the scenario feeds byte-identical op streams to both
// adapters (the HTM side is a pure compilation of the scenario
// program).
func TestSameSeedSamePrograms(t *testing.T) {
	mk := func() (*scenario.Scenario, *rng.Rand) {
		sc, err := scenario.ByName("hotspot", scenario.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return sc, rng.New(99)
	}
	scA, rA := mk()
	scB, rB := mk()
	for i := 0; i < 200; i++ {
		pa := scA.Next(i%2, rA)
		pb := scB.Next(i%2, rB)
		if len(pa.Ops) != len(pb.Ops) || pa.Think != pb.Think {
			t.Fatalf("program %d shape mismatch", i)
		}
		for j := range pa.Ops {
			if pa.Ops[j] != pb.Ops[j] {
				t.Fatalf("program %d op %d mismatch: %+v vs %+v", i, j, pa.Ops[j], pb.Ops[j])
			}
		}
	}
}
