// Replay-scenario tests (external package, like the parity suite, so
// the HTM adapter is usable without an import cycle).
package scenario_test

import (
	"strings"
	"testing"
	"time"

	"txconflict/internal/dist"
	"txconflict/internal/htm"
	"txconflict/internal/rng"
	"txconflict/internal/scenario"
	"txconflict/internal/stm"
	"txconflict/internal/strategy"
	"txconflict/internal/workload"
)

// testRecords is a small hand-built trace: overlapping footprints on
// a 6-word arena with varying compute/think.
func testRecords() []scenario.ReplayRecord {
	return []scenario.ReplayRecord{
		{Reads: []uint32{0, 1}, Writes: []uint32{2}, Compute: 30, Think: 5},
		{Reads: []uint32{2}, Writes: []uint32{0, 3}, Compute: 10, Think: 0},
		{Reads: []uint32{4, 0}, Writes: []uint32{4}, Compute: 80, Think: 10},
		{Writes: []uint32{5, 1}, Compute: 20, Think: 2},
		{Reads: []uint32{3, 5}, Compute: 15, Think: 1}, // read-only
	}
}

// TestReplayBothBackends runs a hand-built replay on the STM runtime
// and the HTM simulator and checks the write-increment invariant on
// both committed images.
func TestReplayBothBackends(t *testing.T) {
	sc, err := scenario.NewReplay("replay-unit", "unit replay", testRecords(),
		scenario.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Words() != 6 {
		t.Fatalf("Words() = %d, want 6", sc.Words())
	}
	rn := scenario.NewSTMRunner(sc, stm.DefaultConfig())
	res := rn.Drive(4, 40*time.Millisecond, 11)
	if res.Ops() == 0 {
		t.Fatal("no replayed transactions completed on the STM")
	}
	if err := rn.Check(res.PerWorker); err != nil {
		t.Fatalf("STM replay invariant: %v", err)
	}

	sc2, err := scenario.NewReplay("replay-unit", "unit replay", testRecords(),
		scenario.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	w := workload.FromScenario(sc2)
	p := htm.DefaultParams(8)
	p.Strategy = strategy.UniformRW{}
	p.Seed = 11
	m := htm.NewMachine(p, w)
	m.Run(200_000)
	met := m.Drain()
	if met.Commits == 0 {
		t.Fatal("no replayed transactions committed on the simulator")
	}
	if err := w.Check(m.Dir.ReadWord, met.PerCoreCommits); err != nil {
		t.Fatalf("HTM replay invariant: %v", err)
	}
}

// TestReplayDeterministicAssignment pins the record-to-worker
// mapping: with recorded compute/think (no sampler override) the
// program stream is a pure function of (worker, sequence), so two
// instances replay identically.
func TestReplayDeterministicAssignment(t *testing.T) {
	mk := func() *scenario.Scenario {
		sc, err := scenario.NewReplay("replay-unit", "unit replay", testRecords(),
			scenario.Options{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	a, b := mk(), mk()
	ra, rb := rng.New(1), rng.New(2) // streams must not matter
	for i := 0; i < 50; i++ {
		pa := a.Next(i%3, ra)
		pb := b.Next(i%3, rb)
		if len(pa.Ops) != len(pb.Ops) || pa.Think != pb.Think {
			t.Fatalf("program %d shape mismatch: %d/%v vs %d/%v",
				i, len(pa.Ops), pa.Think, len(pb.Ops), pb.Think)
		}
		for j := range pa.Ops {
			if pa.Ops[j] != pb.Ops[j] {
				t.Fatalf("program %d op %d mismatch", i, j)
			}
		}
	}
}

// TestReplayOverrides checks that Options.Length/Think substitute the
// recorded compute/think while keeping the recorded footprints.
func TestReplayOverrides(t *testing.T) {
	sc, err := scenario.NewReplay("replay-unit", "unit replay", testRecords(),
		scenario.Options{
			Workers: 1,
			Length:  dist.Constant{V: 123},
			Think:   dist.Constant{V: 45},
		})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	for i := 0; i < 10; i++ {
		p := sc.Next(0, r)
		if p.Think != 45 {
			t.Fatalf("think = %v, want overridden 45", p.Think)
		}
		found := false
		for _, op := range p.Ops {
			if op.Kind == scenario.OpCompute {
				if op.Cycles != 123 {
					t.Fatalf("compute = %v, want overridden 123", op.Cycles)
				}
				found = true
			}
		}
		if !found {
			t.Fatal("no compute op in replay program")
		}
	}
	if _, err := scenario.NewReplay("empty", "", nil, scenario.Options{}); err == nil {
		t.Fatal("empty record list accepted")
	}
}

// TestScenarioRegister exercises the dynamic registry: a registered
// replay shows up in Names/ByName (and therefore in the parity matrix
// of this test binary — it must behave like any other scenario), and
// duplicate or reserved names are rejected.
func TestScenarioRegister(t *testing.T) {
	recs := testRecords()
	build := func(opt scenario.Options) *scenario.Scenario {
		sc, err := scenario.NewReplay("replay:unit-test", "registered unit replay", recs, opt)
		if err != nil {
			panic(err) // recs is non-empty, validated above
		}
		return sc
	}
	if err := scenario.Register("Replay:Unit-Test", "registered unit replay", build); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range scenario.Names() {
		if n == "replay:unit-test" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered name missing from Names(): %v", scenario.Names())
	}
	sc, err := scenario.ByName("replay:unit-test", scenario.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name() != "replay:unit-test" || sc.Workers() != 2 {
		t.Fatalf("registered scenario = %q/%d workers", sc.Name(), sc.Workers())
	}
	if err := scenario.Register("replay:unit-test", "", build); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate registration: %v", err)
	}
	if err := scenario.Register("hotspot", "", build); err == nil {
		t.Fatal("shadowing a built-in was accepted")
	}
	for _, reserved := range []string{"all", "list", " "} {
		if err := scenario.Register(reserved, "", build); err == nil {
			t.Fatalf("reserved name %q accepted", reserved)
		}
	}
}
