package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"txconflict/internal/dist"
	"txconflict/internal/rng"
)

// Arena layout shared by the object-array scenarios: 64 objects at
// words 0..63 (each on its own line under the HTM backend), matching
// the paper's "two out of a set of 64 objects" application. The
// tally-carrying scenarios append one private word per worker at
// tallyBase+worker.
const (
	objects   = 64
	tallyBase = objects
)

// queueRing is the slot count of the queue scenario's ring (a power
// of two, so slot indexing is a mask).
const queueRing = 64

type def struct {
	name  string
	desc  string
	build func(opt Options) *Scenario
}

// defs is the scenario catalog: the static built-ins below plus any
// Register-ed entries (trace replays register as "replay:<name>").
// Names are stable CLI identifiers; defsMu guards the slice against
// concurrent Register/ByName.
var (
	defsMu sync.RWMutex
	defs   = []def{
		{"stack", "contended stack: per-worker alternating push/pop on a shared top pointer", newStack},
		{"queue", "contended ring queue: per-worker alternating enqueue/dequeue on head/tail", newQueue},
		{"txapp", "transactional application: increment 2 uniform-random objects of 64", newTxApp},
		{"bimodal", "txapp alternating short and very long transactions", newBimodal},
		{"readmostly", "read 6 objects, write one with p=0.2 (per-worker tally invariant)", newReadMostly},
		{"longreader", "worker 0 scans all 64 objects while the rest do short increments", newLongReader},
		{"hotspot", "txapp with zipf-skewed object choice and pareto-tailed lengths", newHotspot},
	}
)

// Register adds a scenario constructor to the ByName catalog (names
// fold to lower case, matching lookup). The builder must return a
// ready scenario for any Options; name and description are stamped on
// by ByName like the built-ins. Registering an empty, reserved or
// already-taken name is an error — built-ins cannot be shadowed.
func Register(name, desc string, build func(opt Options) *Scenario) error {
	key := strings.ToLower(strings.TrimSpace(name))
	switch key {
	case "":
		return fmt.Errorf("scenario: cannot register an empty scenario name")
	case "all", "list":
		return fmt.Errorf("scenario: name %q is reserved by the CLIs", key)
	}
	if build == nil {
		return fmt.Errorf("scenario: nil builder for %q", key)
	}
	defsMu.Lock()
	defer defsMu.Unlock()
	for _, d := range defs {
		if d.name == key {
			return fmt.Errorf("scenario: scenario %q already registered", key)
		}
	}
	defs = append(defs, def{name: key, desc: desc, build: build})
	return nil
}

// Known reports whether ByName would accept the name (same
// lowercase/trim folding), without instantiating the scenario — a
// replay scenario's builder walks every recorded transaction, so
// validation must stay cheap.
func Known(name string) bool {
	want := strings.ToLower(strings.TrimSpace(name))
	defsMu.RLock()
	defer defsMu.RUnlock()
	for _, d := range defs {
		if d.name == want {
			return true
		}
	}
	return false
}

// Names returns the sorted scenario names ByName accepts.
func Names() []string {
	defsMu.RLock()
	defer defsMu.RUnlock()
	names := make([]string, 0, len(defs))
	for _, d := range defs {
		names = append(names, d.name)
	}
	sort.Strings(names)
	return names
}

// Describe returns "name: description" lines for CLI help, in
// catalog order.
func Describe() []string {
	defsMu.RLock()
	defer defsMu.RUnlock()
	out := make([]string, 0, len(defs))
	for _, d := range defs {
		out = append(out, d.name+": "+d.desc)
	}
	return out
}

// ByName instantiates the named scenario with the given options.
func ByName(name string, opt Options) (*Scenario, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	defsMu.RLock()
	for _, d := range defs {
		if d.name == want {
			build, dn, dd := d.build, d.name, d.desc
			defsMu.RUnlock()
			s := build(opt)
			s.name, s.desc = dn, dd
			return s, nil
		}
	}
	defsMu.RUnlock()
	return nil, fmt.Errorf("scenario: unknown scenario %q (have %s)",
		name, strings.Join(Names(), ", "))
}

// newBase assembles the common scenario plumbing: worker sizing and
// the length/think samplers with their per-scenario defaults. Name
// and description are stamped on by ByName.
func newBase(opt Options, defLen dist.Sampler, wordsFn func(workers int) int) *Scenario {
	workers := opt.Workers
	if workers <= 0 {
		workers = 64
	}
	length := opt.Length
	if length == nil {
		length = defLen
	}
	think := opt.Think
	if think == nil {
		think = dist.Constant{V: 10}
	}
	delta := opt.Delta
	if delta == 0 {
		delta = 1
	}
	return &Scenario{
		workers: workers,
		wordsFn: wordsFn,
		length:  length,
		think:   think,
		delta:   delta,
		counts:  make([]uint64, workers),
	}
}

// newStack builds the contended-stack scenario.
//
// Word layout: [0] depth ("top"), [1..workers+1) elements. Each
// worker strictly alternates push and pop, so the committed depth is
// Σ_worker (commits mod 2) and the element index never escapes the
// arena.
func newStack(opt Options) *Scenario {
	s := newBase(opt, dist.Constant{V: 15},
		func(workers int) int { return workers + 2 })
	s.next = func(worker int, r *rng.Rand) Program {
		n := s.seq(worker)
		l := s.sampleLen(r)
		think := s.sampleThink(r)
		if n%2 == 0 {
			// push: r0 = depth; elem[1+r0] = tag; depth = r0 + 1
			return Program{Ops: []Op{
				Load(0, 0),
				Work(l),
				StoreAt(1, 0, maskAll, -1, uint64(worker)+1),
				Store(0, 0, 1),
			}, Think: think}
		}
		// pop: r0 = depth; r1 = elem[1+(r0-1)] = word r0; depth = r0 - 1
		return Program{Ops: []Op{
			Load(0, 0),
			Work(l),
			LoadAt(0, 0, maskAll, 1),
			Store(0, 0, ^uint64(0)),
		}, Think: think}
	}
	s.check = func(st *State) error {
		var want uint64
		for _, c := range st.PerWorkerCommits {
			want += c % 2
		}
		if got := st.Read(0); got != want {
			return fmt.Errorf("stack: committed depth %d, want %d (per-worker commits %v)",
				got, want, st.PerWorkerCommits)
		}
		return nil
	}
	return s
}

// newQueue builds the contended-queue scenario.
//
// Word layout: [0] head count, [1] tail count, [2..2+queueRing) ring
// slots. Per-worker alternation of enqueue/dequeue gives the
// committed invariant tail = Σ ceil(c/2), head = Σ floor(c/2).
func newQueue(opt Options) *Scenario {
	s := newBase(opt, dist.Constant{V: 15},
		func(int) int { return 2 + queueRing })
	s.next = func(worker int, r *rng.Rand) Program {
		n := s.seq(worker)
		l := s.sampleLen(r)
		think := s.sampleThink(r)
		if n%2 == 0 {
			// enqueue: r0 = tail; slot[r0 & mask] = tag; tail = r0 + 1
			return Program{Ops: []Op{
				Load(1, 0),
				Work(l),
				StoreAt(2, 0, queueRing-1, -1, uint64(worker)+1),
				Store(1, 0, 1),
			}, Think: think}
		}
		// dequeue: r0 = head; r1 = slot[r0 & mask]; head = r0 + 1
		return Program{Ops: []Op{
			Load(0, 0),
			Work(l),
			LoadAt(2, 0, queueRing-1, 1),
			Store(0, 0, 1),
		}, Think: think}
	}
	s.check = func(st *State) error {
		var wantTail, wantHead uint64
		for _, c := range st.PerWorkerCommits {
			wantTail += (c + 1) / 2
			wantHead += c / 2
		}
		head, tail := st.Read(0), st.Read(1)
		if head > tail {
			return fmt.Errorf("queue: head %d beyond tail %d", head, tail)
		}
		if tail != wantTail || head != wantHead {
			return fmt.Errorf("queue: head/tail = %d/%d, want %d/%d (per-worker commits %v)",
				head, tail, wantHead, wantTail, st.PerWorkerCommits)
		}
		return nil
	}
	return s
}

// appProgram is the 2-objects transactional-application body shared
// by txapp, bimodal and hotspot: read both objects, compute, add one
// to each. Committed invariant: Σ objects = 2 · commits.
func appProgram(i, j int, l, think float64) Program {
	return Program{Ops: []Op{
		Load(i, 0),
		Load(j, 1),
		Work(l),
		Store(i, 0, 1),
		Store(j, 1, 1),
	}, Think: think}
}

func appCheck(st *State) error {
	var sum uint64
	for w := 0; w < objects; w++ {
		sum += st.Read(w)
	}
	if want := 2 * st.Commits(); sum != want {
		return fmt.Errorf("app: object sum %d, want %d (commits %d)",
			sum, want, st.Commits())
	}
	return nil
}

func newApp(opt Options, defLen dist.Sampler, pick func(r *rng.Rand) (int, int)) *Scenario {
	s := newBase(opt, defLen, func(int) int { return objects })
	s.next = func(worker int, r *rng.Rand) Program {
		i, j := pick(r)
		return appProgram(i, j, s.sampleLen(r), s.sampleThink(r))
	}
	s.check = appCheck
	return s
}

// newTxApp builds the uniform transactional application (2 uniform
// objects of 64, constant compute).
func newTxApp(opt Options) *Scenario {
	return newApp(opt, dist.Constant{V: 60},
		func(r *rng.Rand) (int, int) { return r.TwoDistinct(objects) })
}

// newBimodal builds the bimodal application: the compute length mixes
// a short and a very long mode (the regime where hand-tuned grace
// periods lose to the randomized strategy, Figure 3 bottom right).
func newBimodal(opt Options) *Scenario {
	return newApp(opt,
		dist.Bimodal{Short: 50, Long: 5000, PShort: 0.5},
		func(r *rng.Rand) (int, int) { return r.TwoDistinct(objects) })
}

// newHotspot builds the zipf/pareto scenario absent from the seed:
// object choice is rank-skewed (object 0 hottest) so a few words
// absorb most conflicts, and the default compute length is
// heavy-tailed pareto — the adversarial end of realistic workloads.
// Unlike txapp/bimodal, the two increments are *tagged commutative*
// deltas (OpAdd): the program never observes the counters, so the STM
// combiner may fold colliding increments under Policy.FoldCommutative
// instead of serializing them. Semantics and the Σ objects =
// 2 · delta · commits invariant are identical either way (delta is
// Options.Delta, default 1).
func newHotspot(opt Options) *Scenario {
	z := dist.NewZipf(objects, 1.1, 1)
	pick := func(r *rng.Rand) (int, int) {
		i := int(z.Sample(r)) - 1
		j := i
		for j == i {
			j = int(z.Sample(r)) - 1
		}
		return i, j
	}
	s := newBase(opt, dist.ParetoMean(60, 2.5), func(int) int { return objects })
	s.next = func(worker int, r *rng.Rand) Program {
		i, j := pick(r)
		return Program{Ops: []Op{
			Work(s.sampleLen(r)),
			Add(i, s.delta),
			Add(j, s.delta),
		}, Think: s.sampleThink(r)}
	}
	s.check = func(st *State) error {
		var sum uint64
		for w := 0; w < objects; w++ {
			sum += st.Read(w)
		}
		if want := 2 * s.delta * st.Commits(); sum != want {
			return fmt.Errorf("hotspot: object sum %d, want %d (commits %d, delta %d)",
				sum, want, st.Commits(), s.delta)
		}
		return nil
	}
	return s
}

// newReadMostly builds the read-mostly scenario: each transaction
// reads 6 distinct objects and, with probability 0.2, increments the
// first of them together with the worker's private tally word.
// Committed invariant: Σ objects = Σ tallies.
func newReadMostly(opt Options) *Scenario {
	const reads = 6
	const pWrite = 0.2
	s := newBase(opt, dist.Constant{V: 20},
		func(workers int) int { return tallyBase + workers })
	s.next = func(worker int, r *rng.Rand) Program {
		var objs [reads]int
		for k := 0; k < reads; k++ {
		redraw:
			o := r.Intn(objects)
			for m := 0; m < k; m++ {
				if objs[m] == o {
					goto redraw
				}
			}
			objs[k] = o
		}
		ops := make([]Op, 0, reads+4)
		for k, o := range objs {
			ops = append(ops, Load(o, k))
		}
		ops = append(ops, Work(s.sampleLen(r)))
		if r.Bool(pWrite) {
			ops = append(ops,
				Store(objs[0], 0, 1),
				Load(tallyBase+worker, 7),
				Store(tallyBase+worker, 7, 1),
			)
		}
		return Program{Ops: ops, Think: s.sampleThink(r)}
	}
	s.check = tallyCheck(s)
	return s
}

// newLongReader builds the long-reader scenario: worker 0 runs long
// read-only scans of the whole object array (the transactional-reader
// invalidation chain the requestor-wins strategies target) while the
// remaining workers do short tallied increments. Committed
// invariant: Σ objects = Σ tallies (the reader never writes). With a
// single worker the scenario degenerates to the writer role so
// single-threaded runs still make progress.
func newLongReader(opt Options) *Scenario {
	s := newBase(opt, dist.Constant{V: 40},
		func(workers int) int { return tallyBase + workers })
	s.next = func(worker int, r *rng.Rand) Program {
		if worker == 0 && s.workers > 1 {
			ops := make([]Op, 0, objects+1)
			for w := 0; w < objects; w++ {
				ops = append(ops, Load(w, w&3))
			}
			// The reader's compute is 20x the writers', re-clamped so a
			// heavy-tailed override still respects the lenCap bound.
			scan := 20 * s.sampleLen(r)
			if scan > lenCap {
				scan = lenCap
			}
			ops = append(ops, Work(scan))
			return Program{Ops: ops, Think: s.sampleThink(r)}
		}
		obj := r.Intn(objects)
		return Program{Ops: []Op{
			Load(obj, 0),
			Load(tallyBase+worker, 1),
			Work(s.sampleLen(r)),
			Store(obj, 0, 1),
			Store(tallyBase+worker, 1, 1),
		}, Think: s.sampleThink(r)}
	}
	s.check = tallyCheck(s)
	return s
}

// tallyCheck returns the shared object-sum-vs-tallies invariant: the
// object array's committed total equals the sum of the per-worker
// tally words, each incremented in the same transaction as its
// object write.
func tallyCheck(s *Scenario) func(st *State) error {
	return func(st *State) error {
		var sum, tallies uint64
		for w := 0; w < objects; w++ {
			sum += st.Read(w)
		}
		for w := 0; w < s.workers; w++ {
			tallies += st.Read(tallyBase + w)
		}
		if sum != tallies {
			return fmt.Errorf("%s: object sum %d, want tally sum %d", s.name, sum, tallies)
		}
		return nil
	}
}
