package scenario

import (
	"fmt"

	"txconflict/internal/dist"
	"txconflict/internal/rng"
)

// The kv* scenarios are the internal/txkv traffic shapes ported into
// the backend-agnostic registry, so the HTM simulator and the real
// STM runtime can compare on *keyed* access patterns — zipf-skewed
// hot keys, multi-key document writes, read-mostly keyed scans — not
// just the paper's object-array microbenchmarks. The register
// machine has no branches, so the shapes use a direct-mapped
// keyspace (key k lives at word k; the txkv hash map's probe paths
// collapse to one word), keeping the conflict structure of keyed
// traffic while staying expressible on both backends.
//
// Word layouts reuse the object-array conventions: kvKeys value
// words at [0, kvKeys), then (where needed) one private tally word
// per worker at kvKeys+worker.
const (
	kvKeys      = 64
	kvDocFields = 4
	kvDocs      = kvKeys / kvDocFields
)

func init() {
	for _, d := range []struct {
		name, desc string
		build      func(opt Options) *Scenario
	}{
		{"kvcounter", "keyed counter increments on a zipf-hot working set (txkv hotspot-counter shape)", newKVCounter},
		{"kvread", "keyed read-mostly traffic: 4 zipf-skewed gets, occasional tallied put (txkv readmostly shape)", newKVRead},
		{"kvdoc", "atomic 4-field document bumps; fields must never tear (txkv document shape)", newKVDoc},
	} {
		if err := Register(d.name, d.desc, d.build); err != nil {
			panic(err)
		}
	}
}

// newKVCounter builds the keyed hotspot-counter shape: each
// transaction increments one zipf-chosen counter word and the
// worker's private tally in the same transaction, both as tagged
// commutative deltas (OpAdd — the txkv escrow-counter shape: the
// program never observes either value, so the STM combiner may fold
// colliding increments under Policy.FoldCommutative; everywhere else
// the deltas lower to the classic read-modify-write). Committed
// invariant: Σ counters = Σ tallies — a lost counter update breaks
// it immediately.
func newKVCounter(opt Options) *Scenario {
	z := dist.NewZipf(kvKeys, 1.2, 1)
	s := newBase(opt, dist.Constant{V: 40},
		func(workers int) int { return kvKeys + workers })
	s.next = func(worker int, r *rng.Rand) Program {
		key := int(z.Sample(r)) - 1
		return Program{Ops: []Op{
			Work(s.sampleLen(r)),
			Add(key, s.delta),
			Add(kvKeys+worker, s.delta),
		}, Think: s.sampleThink(r)}
	}
	s.check = kvTallyCheck(s)
	return s
}

// newKVRead builds the keyed read-mostly shape: read 4 distinct
// zipf-skewed keys, and with p=0.1 increment the first together with
// the worker's tally. Same Σ values = Σ tallies invariant; the load
// is dominated by read-set validation on hot words.
func newKVRead(opt Options) *Scenario {
	const reads = 4
	const pWrite = 0.1
	z := dist.NewZipf(kvKeys, 1.05, 1)
	s := newBase(opt, dist.Constant{V: 20},
		func(workers int) int { return kvKeys + workers })
	s.next = func(worker int, r *rng.Rand) Program {
		var keys [reads]int
		for k := 0; k < reads; k++ {
		redraw:
			key := int(z.Sample(r)) - 1
			for m := 0; m < k; m++ {
				if keys[m] == key {
					goto redraw
				}
			}
			keys[k] = key
		}
		ops := make([]Op, 0, reads+4)
		for k, key := range keys {
			ops = append(ops, Load(key, k))
		}
		ops = append(ops, Work(s.sampleLen(r)))
		if r.Bool(pWrite) {
			ops = append(ops,
				Store(keys[0], 0, 1),
				Load(kvKeys+worker, 5),
				Store(kvKeys+worker, 5, 1),
			)
		}
		return Program{Ops: ops, Think: s.sampleThink(r)}
	}
	s.check = kvTallyCheck(s)
	return s
}

// newKVDoc builds the multi-key document shape: bump all four fields
// of a zipf-chosen document by one in a single transaction (read
// field 0, write old+1 to every field). Committed invariants: all
// fields of every document are equal (all-or-nothing visibility —
// a torn document is a direct serializability violation), and
// Σ field-0 values = total commits.
func newKVDoc(opt Options) *Scenario {
	z := dist.NewZipf(kvDocs, 1.1, 1)
	s := newBase(opt, dist.Constant{V: 40},
		func(int) int { return kvKeys })
	s.next = func(worker int, r *rng.Rand) Program {
		doc := int(z.Sample(r)) - 1
		base := doc * kvDocFields
		ops := make([]Op, 0, kvDocFields+2)
		ops = append(ops, Load(base, 0), Work(s.sampleLen(r)))
		for f := 0; f < kvDocFields; f++ {
			ops = append(ops, Store(base+f, 0, 1))
		}
		return Program{Ops: ops, Think: s.sampleThink(r)}
	}
	s.check = func(st *State) error {
		var sum uint64
		for d := 0; d < kvDocs; d++ {
			base := d * kvDocFields
			v0 := st.Read(base)
			for f := 1; f < kvDocFields; f++ {
				if v := st.Read(base + f); v != v0 {
					return fmt.Errorf("kvdoc: document %d torn: field 0 = %d, field %d = %d",
						d, v0, f, v)
				}
			}
			sum += v0
		}
		if commits := st.Commits(); sum != commits {
			return fmt.Errorf("kvdoc: document bump sum %d, want %d commits", sum, commits)
		}
		return nil
	}
	return s
}

// kvTallyCheck is the Σ keyed values = Σ per-worker tallies
// invariant shared by kvcounter and kvread.
func kvTallyCheck(s *Scenario) func(st *State) error {
	return func(st *State) error {
		var sum, tallies uint64
		for k := 0; k < kvKeys; k++ {
			sum += st.Read(k)
		}
		for w := 0; w < s.workers; w++ {
			tallies += st.Read(kvKeys + w)
		}
		if sum != tallies {
			return fmt.Errorf("%s: keyed value sum %d, want tally sum %d", s.name, sum, tallies)
		}
		return nil
	}
}
