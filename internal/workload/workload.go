// Package workload adapts the unified scenario engine
// (internal/scenario) to the HTM simulator: a scenario's
// register-machine programs over word indices are compiled, one
// transaction at a time, into htm.Tx op sequences with every scenario
// word on its own cache line — so pointer contention, not false
// sharing, dominates, as in the paper's lock-free designs.
//
// The same scenarios run unchanged as real transactions on the STM
// runtime via scenario.STMRunner; this package is only the simulator
// half of that pairing. The paper's Section 8.2 benchmarks
// (stack, queue, TxApp, bimodal) keep their historical constructors
// here as thin wrappers over the scenario registry.
package workload

import (
	"fmt"

	"txconflict/internal/dist"
	"txconflict/internal/htm"
	"txconflict/internal/rng"
	"txconflict/internal/scenario"
	"txconflict/internal/sim"
)

// wordBytes maps a scenario word index to its byte address: each word
// occupies its own 64-byte cache line.
const wordBytes = 64

// wordShift is log2(wordBytes), the scale for register-indirect
// addressing (registers hold word indices).
const wordShift = 6

// HTM compiles a scenario into an htm.Workload. Per-worker scenario
// state is sized to the machine's actual core count via the
// EnsureWorkers hook (htm.NewMachine calls it), and overflowing the
// configured worker range panics with a descriptive message instead
// of silently wrapping.
type HTM struct {
	sc *scenario.Scenario
}

// FromScenario wraps a scenario instance for the simulator.
func FromScenario(sc *scenario.Scenario) *HTM { return &HTM{sc: sc} }

// ByName instantiates a registry scenario for the simulator.
func ByName(name string, opt scenario.Options) (*HTM, error) {
	sc, err := scenario.ByName(name, opt)
	if err != nil {
		return nil, err
	}
	return FromScenario(sc), nil
}

// Scenario returns the wrapped scenario (for invariant checking).
func (w *HTM) Scenario() *scenario.Scenario { return w.sc }

// Name implements htm.Workload.
func (w *HTM) Name() string { return w.sc.Name() }

// EnsureWorkers sizes per-core scenario state; htm.NewMachine calls
// it with the actual core count.
func (w *HTM) EnsureWorkers(n int) { w.sc.EnsureWorkers(n) }

// NextTx implements htm.Workload: one scenario program compiled to
// simulator ops. OpAdd expands to two simulator ops, so the compiled
// sequence can be longer than the program.
func (w *HTM) NextTx(coreID int, r *rng.Rand) htm.Tx {
	p := w.sc.Next(coreID, r)
	ops := make([]htm.Op, 0, len(p.Ops))
	for _, op := range p.Ops {
		ops = compileOp(ops, op)
	}
	return htm.Tx{Ops: ops, ThinkTime: sim.Time(p.Think)}
}

// Check verifies the scenario invariant against the directory's
// committed memory image (read is typically m.Dir.ReadWord) and the
// per-core commit counts from the drained metrics.
func (w *HTM) Check(read func(byteAddr uint64) uint64, perCoreCommits []uint64) error {
	st := &scenario.State{
		Read:             func(word int) uint64 { return read(uint64(word) * wordBytes) },
		PerWorkerCommits: perCoreCommits,
	}
	return w.sc.Check(st)
}

// compileOp lowers one scenario op onto the simulator op sequence:
// static word indices become line addresses, and register-indirect
// indices are scaled by the word size (registers hold word indices on
// both backends). Mask and shift are harmlessly carried on static ops
// too — EffectiveAddr ignores them when AddrReg < 0. A commutative
// OpAdd expands to the read-modify-write a hardware TM executes
// anyway — read the word into the scratch register Dst, store back
// Dst + Imm — since the simulator has no combiner to fold deltas
// into; the STM side is where the tag pays off.
func compileOp(ops []htm.Op, op scenario.Op) []htm.Op {
	switch op.Kind {
	case scenario.OpCompute:
		return append(ops, htm.Compute(sim.Time(op.Cycles)))
	case scenario.OpRead:
		return append(ops, htm.Op{
			Kind:      htm.OpRead,
			Addr:      uint64(op.Word) * wordBytes,
			AddrReg:   op.Reg,
			AddrMask:  op.Mask,
			AddrShift: wordShift,
			Dst:       op.Dst,
		})
	case scenario.OpWrite:
		return append(ops, htm.Op{
			Kind:      htm.OpWrite,
			Addr:      uint64(op.Word) * wordBytes,
			AddrReg:   op.Reg,
			AddrMask:  op.Mask,
			AddrShift: wordShift,
			SrcReg:    op.Src,
			Imm:       op.Imm,
		})
	case scenario.OpAdd:
		addr := uint64(op.Word) * wordBytes
		return append(ops,
			htm.Op{
				Kind:      htm.OpRead,
				Addr:      addr,
				AddrReg:   op.Reg,
				AddrMask:  op.Mask,
				AddrShift: wordShift,
				Dst:       op.Dst,
			},
			htm.Op{
				Kind:      htm.OpWrite,
				Addr:      addr,
				AddrReg:   op.Reg,
				AddrMask:  op.Mask,
				AddrShift: wordShift,
				SrcReg:    op.Dst,
				Imm:       op.Imm,
			})
	default:
		panic(fmt.Sprintf("workload: unknown scenario op kind %d", op.Kind))
	}
}

// mustScenario builds a registry scenario for the historical
// constructors (names are compile-time constants, so failure is a
// programming error).
func mustScenario(name string, opt scenario.Options) *scenario.Scenario {
	sc, err := scenario.ByName(name, opt)
	if err != nil {
		panic(err)
	}
	return sc
}

// NewStack returns the paper's contended-stack workload with constant
// compute and think times (in cycles).
func NewStack(opCompute, think sim.Time) *HTM {
	return FromScenario(mustScenario("stack", scenario.Options{
		Length: dist.Constant{V: float64(opCompute)},
		Think:  dist.Constant{V: float64(think)},
	}))
}

// NewQueue returns the contended ring-queue workload.
func NewQueue(opCompute, think sim.Time) *HTM {
	return FromScenario(mustScenario("queue", scenario.Options{
		Length: dist.Constant{V: float64(opCompute)},
		Think:  dist.Constant{V: float64(think)},
	}))
}

// NewTxApp returns the uniform-length transactional application
// (2 objects of 64).
func NewTxApp(compute, think sim.Time) *HTM {
	return FromScenario(mustScenario("txapp", scenario.Options{
		Length: dist.Constant{V: float64(compute)},
		Think:  dist.Constant{V: float64(think)},
	}))
}

// NewBimodal returns the bimodal transactional application:
// transactions alternate (per draw) between short and very long
// compute phases, the regime where hand-tuned delays lose to the
// randomized strategy (Figure 3, bottom right).
func NewBimodal(short, long sim.Time, pShort float64, think sim.Time) *HTM {
	return FromScenario(mustScenario("bimodal", scenario.Options{
		Length: dist.Bimodal{Short: float64(short), Long: float64(long), PShort: pShort},
		Think:  dist.Constant{V: float64(think)},
	}))
}

// TunedDelay estimates the hand-tuned grace period for a workload:
// the average isolated fast-path length (memory ops at L1 hit latency
// plus in-transaction compute plus commit), as a tuner with knowledge
// of the dataset and implementation would set it (Section 8.2).
func TunedDelay(w htm.Workload, p htm.Params, samples int) float64 {
	if samples <= 0 {
		samples = 256
	}
	r := rng.New(0xC0FFEE)
	var total sim.Time
	for i := 0; i < samples; i++ {
		tx := w.NextTx(i%64, r)
		total += tx.Len(p.L1Latency) + p.CommitLatency
	}
	return float64(total) / float64(samples)
}
