// Package workload implements the benchmark workloads of the paper's
// Section 8.2 as access-pattern generators for the HTM simulator:
//
//   - Stack: a contended stack that alternates push and pop
//     (top-of-stack pointer plus an element array);
//   - Queue: a contended queue that alternates enqueue and dequeue
//     (head/tail pointers plus a ring of slots);
//   - TxApp: the "simple transactional application" — transactions
//     that jointly acquire and modify two out of a set of 64 objects;
//   - Bimodal: TxApp alternating between short and very long
//     transactions.
//
// Each workload carries an end-to-end verifiable invariant (stack
// depth, queue occupancy, object sum) so that HTM integration tests
// double as serializability checks.
package workload

import (
	"txconflict/internal/htm"
	"txconflict/internal/rng"
	"txconflict/internal/sim"
)

// Layout constants. Pointers live on their own lines so that pointer
// contention — not false sharing — dominates, as in the paper's
// lock-free designs.
const (
	stackTopAddr  = 0     // line 0: top offset (bytes)
	stackElemBase = 64    // element array
	queueTailAddr = 0     // line 0
	queueHeadAddr = 64    // line 1
	queueSlotBase = 128   // ring of slots
	queueRingMask = 0x1ff // 64 slots * 8 bytes - 1
	txAppObjBase  = 0     // objects at line i
	txAppObjects  = 64    // paper: "two out of a set of 64 objects"
)

// Stack alternates push and pop per core. The committed invariant:
// topOffset = 8 * Σ_core (commits_core mod 2), since each core's
// committed transactions strictly alternate push, pop, push, ...
type Stack struct {
	// OpCompute is the compute inside each transaction (fast-path
	// work), in cycles.
	OpCompute sim.Time
	// Think is the non-transactional gap between operations.
	Think sim.Time

	counts []uint64
}

// NewStack returns a stack workload for up to 64 cores.
func NewStack(opCompute, think sim.Time) *Stack {
	return &Stack{OpCompute: opCompute, Think: think, counts: make([]uint64, 64)}
}

// Name implements htm.Workload.
func (s *Stack) Name() string { return "stack" }

// NextTx implements htm.Workload.
func (s *Stack) NextTx(coreID int, r *rng.Rand) htm.Tx {
	n := s.counts[coreID]
	s.counts[coreID]++
	if n%2 == 0 {
		// push: r0 = top; elem[r0] = coreID; top = r0 + 8
		return htm.Tx{
			Ops: []htm.Op{
				htm.Read(stackTopAddr, 0),
				htm.Compute(s.OpCompute),
				htm.WriteAt(stackElemBase, 0, ^uint64(0), -1, uint64(coreID)),
				htm.Write(stackTopAddr, 0, 8),
			},
			ThinkTime: s.Think,
		}
	}
	// pop: r0 = top; r1 = elem[r0 - 8]; top = r0 - 8
	return htm.Tx{
		Ops: []htm.Op{
			htm.Read(stackTopAddr, 0),
			htm.Compute(s.OpCompute),
			htm.ReadAt(stackElemBase-8, 0, ^uint64(0), 1),
			htm.Write(stackTopAddr, 0, ^uint64(7)), // top -= 8
		},
		ThinkTime: s.Think,
	}
}

// ExpectedTop returns the stack-depth invariant implied by per-core
// commit counts.
func ExpectedTop(perCoreCommits []uint64) uint64 {
	var top uint64
	for _, c := range perCoreCommits {
		top += 8 * (c % 2)
	}
	return top
}

// Queue alternates enqueue and dequeue per core over a ring of
// slots. Committed invariant: tail = 8*Σceil(c/2), head = 8*Σfloor(c/2).
type Queue struct {
	OpCompute sim.Time
	Think     sim.Time

	counts []uint64
}

// NewQueue returns a queue workload.
func NewQueue(opCompute, think sim.Time) *Queue {
	return &Queue{OpCompute: opCompute, Think: think, counts: make([]uint64, 64)}
}

// Name implements htm.Workload.
func (q *Queue) Name() string { return "queue" }

// NextTx implements htm.Workload.
func (q *Queue) NextTx(coreID int, r *rng.Rand) htm.Tx {
	n := q.counts[coreID]
	q.counts[coreID]++
	if n%2 == 0 {
		// enqueue: r0 = tail; slot[r0 & mask] = coreID; tail = r0+8
		return htm.Tx{
			Ops: []htm.Op{
				htm.Read(queueTailAddr, 0),
				htm.Compute(q.OpCompute),
				htm.WriteAt(queueSlotBase, 0, queueRingMask, -1, uint64(coreID)),
				htm.Write(queueTailAddr, 0, 8),
			},
			ThinkTime: q.Think,
		}
	}
	// dequeue: r0 = head; r1 = slot[r0 & mask]; head = r0+8
	return htm.Tx{
		Ops: []htm.Op{
			htm.Read(queueHeadAddr, 0),
			htm.Compute(q.OpCompute),
			htm.ReadAt(queueSlotBase, 0, queueRingMask, 1),
			htm.Write(queueHeadAddr, 0, 8),
		},
		ThinkTime: q.Think,
	}
}

// ExpectedTailHead returns the committed queue pointers implied by
// per-core commit counts.
func ExpectedTailHead(perCoreCommits []uint64) (tail, head uint64) {
	for _, c := range perCoreCommits {
		tail += 8 * ((c + 1) / 2)
		head += 8 * (c / 2)
	}
	return
}

// TxApp is the paper's transactional application: each transaction
// jointly acquires and modifies two distinct objects out of 64,
// computing for Compute cycles in between. Committed invariant:
// Σ objects = 2 * commits.
type TxApp struct {
	// Compute is the in-transaction compute sampled per transaction.
	Compute func(r *rng.Rand) sim.Time
	Think   sim.Time
	// Objects overrides the object count (default 64).
	Objects int
}

// NewTxApp returns the uniform-length transactional application.
func NewTxApp(compute sim.Time, think sim.Time) *TxApp {
	return &TxApp{Compute: func(*rng.Rand) sim.Time { return compute }, Think: think}
}

// Name implements htm.Workload.
func (a *TxApp) Name() string { return "txapp" }

func (a *TxApp) objects() int {
	if a.Objects > 0 {
		return a.Objects
	}
	return txAppObjects
}

// NextTx implements htm.Workload.
func (a *TxApp) NextTx(coreID int, r *rng.Rand) htm.Tx {
	i, j := r.TwoDistinct(a.objects())
	ai := txAppObjBase + uint64(i)*64
	aj := txAppObjBase + uint64(j)*64
	comp := a.Compute(r)
	return htm.Tx{
		Ops: []htm.Op{
			htm.Read(ai, 0),
			htm.Read(aj, 1),
			htm.Compute(comp),
			htm.Write(ai, 0, 1),
			htm.Write(aj, 1, 1),
		},
		ThinkTime: a.Think,
	}
}

// ObjectSum reads the committed object array from the directory.
func ObjectSum(read func(addr uint64) uint64, objects int) uint64 {
	var sum uint64
	for i := 0; i < objects; i++ {
		sum += read(txAppObjBase + uint64(i)*64)
	}
	return sum
}

// NewBimodal returns the bimodal transactional application:
// transactions alternate (per draw) between short and very long
// compute phases, the regime where hand-tuned delays lose to the
// randomized strategy (Figure 3, bottom right).
func NewBimodal(short, long sim.Time, pShort float64, think sim.Time) *TxApp {
	app := &TxApp{Think: think}
	app.Compute = func(r *rng.Rand) sim.Time {
		if r.Bool(pShort) {
			return short
		}
		return long
	}
	return app
}

// ReadDominated is a read-mostly workload in the spirit of the
// read-dominated transactional workloads the paper cites
// (Attiya–Milani): each transaction reads Reads objects and, with
// probability PWrite, modifies one of them. Read sharing is cheap
// (S state replicates), so conflicts are rarer but writer
// transactions invalidate many transactional readers at once —
// long-chain territory where the requestor-wins strategies shine.
type ReadDominated struct {
	Objects int
	Reads   int
	PWrite  float64
	Compute sim.Time
	Think   sim.Time
}

// NewReadDominated returns a read-mostly workload over 64 objects.
func NewReadDominated(reads int, pWrite float64, compute, think sim.Time) *ReadDominated {
	return &ReadDominated{Objects: 64, Reads: reads, PWrite: pWrite, Compute: compute, Think: think}
}

// Name implements htm.Workload.
func (w *ReadDominated) Name() string { return "readdom" }

// NextTx implements htm.Workload.
func (w *ReadDominated) NextTx(coreID int, r *rng.Rand) htm.Tx {
	n := w.Reads
	if n < 1 {
		n = 1
	}
	ops := make([]htm.Op, 0, n+2)
	seen := make(map[int]bool, n)
	first := -1
	for i := 0; i < n; i++ {
		obj := r.Intn(w.Objects)
		if seen[obj] {
			continue
		}
		seen[obj] = true
		if first < 0 {
			first = obj
		}
		ops = append(ops, htm.Read(uint64(obj)*64, i&3))
	}
	ops = append(ops, htm.Compute(w.Compute))
	if r.Bool(w.PWrite) && first >= 0 {
		ops = append(ops, htm.Write(uint64(first)*64, 0, 1))
	}
	return htm.Tx{Ops: ops, ThinkTime: w.Think}
}

// TunedDelay estimates the hand-tuned grace period for a workload:
// the average isolated fast-path length (memory ops at L1 hit latency
// plus in-transaction compute plus commit), as a tuner with knowledge
// of the dataset and implementation would set it (Section 8.2).
func TunedDelay(w htm.Workload, p htm.Params, samples int) float64 {
	if samples <= 0 {
		samples = 256
	}
	r := rng.New(0xC0FFEE)
	var total sim.Time
	for i := 0; i < samples; i++ {
		tx := w.NextTx(i%64, r)
		total += tx.Len(p.L1Latency) + p.CommitLatency
	}
	return float64(total) / float64(samples)
}
