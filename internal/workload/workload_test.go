package workload

import (
	"testing"

	ccore "txconflict/internal/core"
	"txconflict/internal/htm"
	"txconflict/internal/rng"
	"txconflict/internal/strategy"
)

func runWorkload(t *testing.T, w htm.Workload, cores int, pol ccore.Policy, s ccore.Strategy, cycles uint64) (*htm.Machine, htm.Metrics) {
	t.Helper()
	p := htm.DefaultParams(cores)
	p.Policy = pol
	p.Strategy = s
	p.Seed = 77
	m := htm.NewMachine(p, w)
	m.Run(cycles)
	met := m.Drain()
	if met.Commits == 0 {
		t.Fatalf("%s: no commits", w.Name())
	}
	return m, met
}

func TestStackInvariant(t *testing.T) {
	for _, pol := range []ccore.Policy{ccore.RequestorWins, ccore.RequestorAborts} {
		w := NewStack(15, 10)
		m, met := runWorkload(t, w, 8, pol, strategy.UniformRW{}, 400000)
		top := m.Dir.ReadWord(stackTopAddr)
		if want := ExpectedTop(met.PerCoreCommits); top != want {
			t.Fatalf("%v: top offset %d, want %d (commits %v)", pol, top, want, met.PerCoreCommits)
		}
	}
}

func TestStackPushPopAlternation(t *testing.T) {
	w := NewStack(5, 5)
	r := rng.New(1)
	// Core 0's stream must alternate push (4 ops ending in +8 write)
	// and pop (ending in -8 write).
	tx1 := w.NextTx(0, r)
	tx2 := w.NextTx(0, r)
	if tx1.Ops[3].Imm != 8 {
		t.Fatal("first tx is not a push")
	}
	if tx2.Ops[3].Imm != ^uint64(7) {
		t.Fatal("second tx is not a pop")
	}
	// Other cores have independent parity.
	tx3 := w.NextTx(1, r)
	if tx3.Ops[3].Imm != 8 {
		t.Fatal("core 1 first tx is not a push")
	}
}

func TestQueueInvariant(t *testing.T) {
	for _, pol := range []ccore.Policy{ccore.RequestorWins, ccore.RequestorAborts} {
		w := NewQueue(15, 10)
		m, met := runWorkload(t, w, 8, pol, strategy.UniformRW{}, 400000)
		tail := m.Dir.ReadWord(queueTailAddr)
		head := m.Dir.ReadWord(queueHeadAddr)
		wantTail, wantHead := ExpectedTailHead(met.PerCoreCommits)
		if tail != wantTail || head != wantHead {
			t.Fatalf("%v: tail/head = %d/%d, want %d/%d", pol, tail, head, wantTail, wantHead)
		}
		if head > tail {
			t.Fatalf("queue head %d beyond tail %d", head, tail)
		}
	}
}

func TestTxAppInvariant(t *testing.T) {
	for _, pol := range []ccore.Policy{ccore.RequestorWins, ccore.RequestorAborts} {
		w := NewTxApp(40, 10)
		m, met := runWorkload(t, w, 8, pol, strategy.UniformRW{}, 400000)
		sum := ObjectSum(m.Dir.ReadWord, txAppObjects)
		if sum != 2*met.Commits {
			t.Fatalf("%v: object sum %d, want %d", pol, sum, 2*met.Commits)
		}
	}
}

func TestBimodalInvariant(t *testing.T) {
	w := NewBimodal(50, 5000, 0.5, 10)
	m, met := runWorkload(t, w, 8, ccore.RequestorWins, strategy.UniformRW{}, 1500000)
	sum := ObjectSum(m.Dir.ReadWord, txAppObjects)
	if sum != 2*met.Commits {
		t.Fatalf("object sum %d, want %d", sum, 2*met.Commits)
	}
}

func TestBimodalMixesLengths(t *testing.T) {
	w := NewBimodal(10, 1000, 0.5, 0)
	r := rng.New(3)
	short, long := 0, 0
	for i := 0; i < 200; i++ {
		tx := w.NextTx(0, r)
		if tx.Ops[2].Cycles == 10 {
			short++
		} else if tx.Ops[2].Cycles == 1000 {
			long++
		} else {
			t.Fatalf("unexpected compute %d", tx.Ops[2].Cycles)
		}
	}
	if short == 0 || long == 0 {
		t.Fatalf("bimodal not mixing: %d short, %d long", short, long)
	}
}

func TestTxAppPicksDistinctObjects(t *testing.T) {
	w := NewTxApp(10, 0)
	r := rng.New(5)
	for i := 0; i < 1000; i++ {
		tx := w.NextTx(0, r)
		if tx.Ops[0].Addr == tx.Ops[1].Addr {
			t.Fatal("transaction acquired the same object twice")
		}
	}
}

func TestTunedDelayPlausible(t *testing.T) {
	p := htm.DefaultParams(4)
	d := TunedDelay(NewStack(15, 10), p, 256)
	// Stack tx: 3 memory ops * 3 cycles + 15 compute + 10 commit = 34.
	if d < 20 || d > 60 {
		t.Fatalf("tuned delay %v implausible for stack", d)
	}
	// Bimodal tuned delay sits between the modes (that is exactly why
	// hand-tuning fails there).
	db := TunedDelay(NewBimodal(50, 5000, 0.5, 0), p, 2048)
	if db < 1000 || db > 4000 {
		t.Fatalf("tuned delay %v implausible for bimodal", db)
	}
}

func TestExpectedHelpers(t *testing.T) {
	if got := ExpectedTop([]uint64{2, 3, 5}); got != 16 {
		t.Fatalf("ExpectedTop = %d, want 16", got)
	}
	tail, head := ExpectedTailHead([]uint64{2, 3})
	if tail != 8*(1+2) || head != 8*(1+1) {
		t.Fatalf("ExpectedTailHead = %d,%d", tail, head)
	}
}

func TestWorkloadNames(t *testing.T) {
	if NewStack(1, 1).Name() != "stack" ||
		NewQueue(1, 1).Name() != "queue" ||
		NewTxApp(1, 1).Name() != "txapp" {
		t.Fatal("workload names wrong")
	}
}

func TestStackUnderNoDelay(t *testing.T) {
	// The NO_DELAY baseline must also preserve the invariant.
	w := NewStack(15, 10)
	m, met := runWorkload(t, w, 8, ccore.RequestorWins, nil, 400000)
	top := m.Dir.ReadWord(stackTopAddr)
	if want := ExpectedTop(met.PerCoreCommits); top != want {
		t.Fatalf("NO_DELAY: top %d, want %d", top, want)
	}
}

func BenchmarkStackSimulation(b *testing.B) {
	p := htm.DefaultParams(8)
	p.Strategy = strategy.UniformRW{}
	m := htm.NewMachine(p, NewStack(15, 10))
	b.ResetTimer()
	m.Run(uint64(b.N) * 100)
}

func TestReadDominatedInvariant(t *testing.T) {
	w := NewReadDominated(6, 0.2, 20, 10)
	m, met := runWorkload(t, w, 8, ccore.RequestorWins, strategy.UniformRW{}, 400000)
	// Writers increment only object values; no structural invariant
	// beyond serializability, which the coherence checker plus commit
	// accounting cover.
	if err := m.Dir.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if met.Commits == 0 {
		t.Fatal("no commits")
	}
}

func TestReadDominatedMostlyReads(t *testing.T) {
	w := NewReadDominated(6, 0.2, 20, 10)
	r := rng.New(3)
	writes, total := 0, 0
	for i := 0; i < 2000; i++ {
		tx := w.NextTx(0, r)
		total++
		for _, op := range tx.Ops {
			if op.Kind == htm.OpWrite {
				writes++
			}
		}
	}
	frac := float64(writes) / float64(total)
	if frac < 0.1 || frac > 0.3 {
		t.Fatalf("write fraction %v, want ~0.2", frac)
	}
}

func TestReadDominatedDistinctReads(t *testing.T) {
	w := NewReadDominated(8, 0, 5, 5)
	r := rng.New(4)
	for i := 0; i < 500; i++ {
		tx := w.NextTx(0, r)
		seen := map[uint64]bool{}
		for _, op := range tx.Ops {
			if op.Kind == htm.OpRead {
				if seen[op.Addr] {
					t.Fatal("duplicate read address in one tx")
				}
				seen[op.Addr] = true
			}
		}
	}
}
