package workload

import (
	"strings"
	"testing"

	ccore "txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/htm"
	"txconflict/internal/rng"
	"txconflict/internal/scenario"
	"txconflict/internal/strategy"
)

func runWorkload(t *testing.T, w *HTM, cores int, pol ccore.Policy, s ccore.Strategy, cycles uint64) (*htm.Machine, htm.Metrics) {
	t.Helper()
	p := htm.DefaultParams(cores)
	p.Policy = pol
	p.Strategy = s
	p.Seed = 77
	m := htm.NewMachine(p, w)
	m.Run(cycles)
	met := m.Drain()
	if met.Commits == 0 {
		t.Fatalf("%s: no commits", w.Name())
	}
	return m, met
}

// checkInvariant runs the workload and verifies the scenario's
// committed-state invariant against the drained directory image.
func checkInvariant(t *testing.T, w *HTM, pol ccore.Policy, s ccore.Strategy, cycles uint64) {
	t.Helper()
	m, met := runWorkload(t, w, 8, pol, s, cycles)
	if err := w.Check(m.Dir.ReadWord, met.PerCoreCommits); err != nil {
		t.Fatalf("%v: %v", pol, err)
	}
}

func TestStackInvariant(t *testing.T) {
	for _, pol := range []ccore.Policy{ccore.RequestorWins, ccore.RequestorAborts} {
		checkInvariant(t, NewStack(15, 10), pol, strategy.UniformRW{}, 400000)
	}
}

func TestStackPushPopAlternation(t *testing.T) {
	w := NewStack(5, 5)
	r := rng.New(1)
	// Core 0's stream must alternate push (ending in a +1 write to the
	// depth word) and pop (ending in a -1 write).
	tx1 := w.NextTx(0, r)
	tx2 := w.NextTx(0, r)
	if tx1.Ops[3].Imm != 1 {
		t.Fatal("first tx is not a push")
	}
	if tx2.Ops[3].Imm != ^uint64(0) {
		t.Fatal("second tx is not a pop")
	}
	// Other cores have independent parity.
	tx3 := w.NextTx(1, r)
	if tx3.Ops[3].Imm != 1 {
		t.Fatal("core 1 first tx is not a push")
	}
}

func TestQueueInvariant(t *testing.T) {
	for _, pol := range []ccore.Policy{ccore.RequestorWins, ccore.RequestorAborts} {
		checkInvariant(t, NewQueue(15, 10), pol, strategy.UniformRW{}, 400000)
	}
}

func TestTxAppInvariant(t *testing.T) {
	for _, pol := range []ccore.Policy{ccore.RequestorWins, ccore.RequestorAborts} {
		checkInvariant(t, NewTxApp(40, 10), pol, strategy.UniformRW{}, 400000)
	}
}

func TestBimodalInvariant(t *testing.T) {
	checkInvariant(t, NewBimodal(50, 5000, 0.5, 10), ccore.RequestorWins, strategy.UniformRW{}, 1500000)
}

func TestBimodalMixesLengths(t *testing.T) {
	w := NewBimodal(10, 1000, 0.5, 0)
	r := rng.New(3)
	short, long := 0, 0
	for i := 0; i < 200; i++ {
		tx := w.NextTx(0, r)
		if tx.Ops[2].Cycles == 10 {
			short++
		} else if tx.Ops[2].Cycles == 1000 {
			long++
		} else {
			t.Fatalf("unexpected compute %d", tx.Ops[2].Cycles)
		}
	}
	if short == 0 || long == 0 {
		t.Fatalf("bimodal not mixing: %d short, %d long", short, long)
	}
}

func TestTxAppPicksDistinctObjects(t *testing.T) {
	w := NewTxApp(10, 0)
	r := rng.New(5)
	for i := 0; i < 1000; i++ {
		tx := w.NextTx(0, r)
		if tx.Ops[0].Addr == tx.Ops[1].Addr {
			t.Fatal("transaction acquired the same object twice")
		}
	}
}

func TestTunedDelayPlausible(t *testing.T) {
	p := htm.DefaultParams(4)
	d := TunedDelay(NewStack(15, 10), p, 256)
	// Stack tx: 3 memory ops * 3 cycles + 15 compute + 10 commit = 34.
	if d < 20 || d > 60 {
		t.Fatalf("tuned delay %v implausible for stack", d)
	}
	// Bimodal tuned delay sits between the modes (that is exactly why
	// hand-tuning fails there).
	db := TunedDelay(NewBimodal(50, 5000, 0.5, 0), p, 2048)
	if db < 1000 || db > 4000 {
		t.Fatalf("tuned delay %v implausible for bimodal", db)
	}
}

func TestWorkloadNames(t *testing.T) {
	if NewStack(1, 1).Name() != "stack" ||
		NewQueue(1, 1).Name() != "queue" ||
		NewTxApp(1, 1).Name() != "txapp" ||
		NewBimodal(1, 2, 0.5, 1).Name() != "bimodal" {
		t.Fatal("workload names wrong")
	}
}

func TestStackUnderNoDelay(t *testing.T) {
	// The NO_DELAY baseline must also preserve the invariant.
	checkInvariant(t, NewStack(15, 10), ccore.RequestorWins, nil, 400000)
}

func TestByNameUnknown(t *testing.T) {
	_, err := ByName("nope", scenario.Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("err = %v, want unknown-scenario error", err)
	}
}

// TestCompileIndirectAddressing checks that register-indirect scenario
// ops land on per-word cache lines: the stack push's element store
// must address elemBase + depth*64 bytes.
func TestCompileIndirectAddressing(t *testing.T) {
	w := NewStack(5, 5)
	r := rng.New(1)
	tx := w.NextTx(0, r) // push
	st := tx.Ops[2]      // StoreAt(1, r0, ...)
	if st.Kind != htm.OpWrite || st.AddrReg != 0 || st.AddrShift != 6 {
		t.Fatalf("element store not compiled as shifted indirect: %+v", st)
	}
	regs := [8]uint64{3} // depth 3
	if got, want := st.EffectiveAddr(&regs), uint64((1+3)*64); got != want {
		t.Fatalf("effective addr %d, want %d", got, want)
	}
}

// TestEnsureWorkersFromMachine checks satellite fix #1: the machine
// sizes per-core scenario state from its actual core count, and
// overflowing the configured range panics with a clear message
// instead of silently wrapping or out-of-ranging.
func TestEnsureWorkersFromMachine(t *testing.T) {
	sc, err := scenario.ByName("stack", scenario.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	w := FromScenario(sc)
	p := htm.DefaultParams(8)
	htm.NewMachine(p, w) // must grow the 2-worker instance to 8 cores
	r := rng.New(1)
	for core := 0; core < 8; core++ {
		w.NextTx(core, r)
	}
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("expected panic for out-of-range worker")
		}
		if msg, ok := rec.(string); !ok || !strings.Contains(msg, "out of range") {
			t.Fatalf("panic = %v, want out-of-range message", rec)
		}
	}()
	w.NextTx(8, r)
}

// TestDistOverride checks that the -dist plumbing reaches the
// compiled programs: a constant override pins every compute op.
func TestDistOverride(t *testing.T) {
	w, err := ByName("txapp", scenario.Options{Length: dist.Constant{V: 123}})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	for i := 0; i < 50; i++ {
		tx := w.NextTx(0, r)
		if tx.Ops[2].Cycles != 123 {
			t.Fatalf("compute = %d, want 123", tx.Ops[2].Cycles)
		}
	}
}

func BenchmarkStackSimulation(b *testing.B) {
	p := htm.DefaultParams(8)
	p.Strategy = strategy.UniformRW{}
	m := htm.NewMachine(p, NewStack(15, 10))
	b.ResetTimer()
	m.Run(uint64(b.N) * 100)
}
