// Package txkv is a transactional key-value store layered on the
// internal/stm word arena — the repo's first keyed workload surface.
// The paper (and ROADMAP) frame conflict resolution as the thing that
// decides real transactional throughput; txkv converts the raw
// word-indexed arena into something an end user could send traffic
// to: keys, multi-key documents, counters, and a contended secondary
// index, all executed as ordinary stm transactions so the conflict
// policy, grace periods, sharded clocks and group-commit batching
// apply unchanged.
//
// # Word layout
//
// A Store with capacity C buckets (a power of two), I index classes
// and S size stripes owns one stm arena of 3C+I+S words:
//
//	[0, C)        bucket key words: 0 = empty, ^0 = tombstone,
//	              otherwise userKey+1
//	[C, 2C)       bucket value words
//	[2C, 3C)      index links: next bucket+1 in this bucket's
//	              index-class chain (0 = end)
//	[3C, 3C+I)    index heads: first bucket+1 per value class
//	[3C+I, +S)    striped occupancy counters (live keys only)
//
// Every operation's footprint flows through tx.Load/tx.Store, so a
// Put is a handful of word reads (the probe path) plus a few writes —
// exactly the kind of small-footprint transaction the paper's cost
// model prices.
//
// # Secondary index
//
// The index groups buckets by value class (value & (classes-1)) into
// per-class singly linked lists threaded through the link words. It
// is deliberately *structural* and non-commutative: inserts push at
// the head, deletes unlink mid-chain, and value updates that change
// class relink the bucket — so two racing updates that lose isolation
// leave a torn chain (a cycle, a shared tail, or an orphan) that
// CheckInvariants detects, where a commutative aggregate would
// silently re-add up. This is the serving-stack analogue of the
// scenario invariants.
//
// # Escrow counters
//
// Config.EscrowCounters switches the index to *key* classes
// (key & (classes-1)): a live bucket's class is then immutable, so
// value updates never touch the chains and Add can record its
// increment on the value word as a blind commutative delta (tx.Add)
// that the group-commit combiner folds under
// stm.Policy.FoldCommutative — colliding hot-counter bumps stop
// aborting each other. The trade: the index no longer trips on a
// torn value (only on torn structure), and a blind Add cannot report
// the new value. See internal/stm for the folding semantics.
package txkv

import (
	"errors"
	"fmt"

	"txconflict/internal/rng"
	"txconflict/internal/stm"
)

// ErrFull is the user-level (non-retrying) outcome of inserting into
// a map whose probe path has no free bucket.
var ErrFull = errors.New("txkv: map full")

// tombstone marks a bucket whose key was deleted; probes continue
// past it, inserts may reuse it.
const tombstone = ^uint64(0)

// Config sizes a Store.
type Config struct {
	// Capacity is the bucket count, rounded up to a power of two.
	// The map holds at most Capacity live keys; inserts beyond that
	// return ErrFull. 0 defaults to 1024.
	Capacity int
	// IndexClasses is the number of secondary-index value classes
	// (power of two, default 64). A value belongs to class
	// value & (IndexClasses-1).
	IndexClasses int
	// SizeStripes is the number of striped occupancy words (power of
	// two, default 16); striping keeps inserts from serializing on a
	// single counter word.
	SizeStripes int
	// EscrowCounters classes the secondary index by key instead of by
	// value (see the package comment): value updates stop relinking,
	// and Add on an existing key becomes a blind commutative delta
	// the STM combiner can fold (stm.Policy.FoldCommutative). In this
	// mode Add returns 0 for blind increments — callers that need the
	// post-increment value must Get it in a separate transaction.
	EscrowCounters bool
	// STM configures the underlying runtime (conflict policy, lazy
	// vs eager locking, CommitBatch, shards, tracing...).
	STM stm.Config
}

// Store is the transactional key-value store. All mutating and
// reading entry points run as stm transactions and are safe for
// concurrent use; the Committed*/Check methods read quiescent state
// and are meant for post-run verification.
type Store struct {
	rt      *stm.Runtime
	cap     int // buckets (power of two)
	mask    uint64
	classes int
	stripes int
	escrow  bool // key-classed index; Add records blind deltas
}

// New builds a store and its STM arena.
func New(cfg Config) *Store {
	c := ceilPow2(cfg.Capacity, 1024)
	classes := ceilPow2(cfg.IndexClasses, 64)
	stripes := ceilPow2(cfg.SizeStripes, 16)
	s := &Store{
		cap:     c,
		mask:    uint64(c - 1),
		classes: classes,
		stripes: stripes,
		escrow:  cfg.EscrowCounters,
	}
	s.rt = stm.New(3*c+classes+stripes, cfg.STM)
	return s
}

func ceilPow2(n, def int) int {
	if n <= 0 {
		n = def
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Arena word regions (see the package comment).
func (s *Store) keyWord(b int) int   { return b }
func (s *Store) valWord(b int) int   { return s.cap + b }
func (s *Store) linkWord(b int) int  { return 2*s.cap + b }
func (s *Store) headWord(c int) int  { return 3*s.cap + c }
func (s *Store) sizeWord(st int) int { return 3*s.cap + s.classes + st }

// class maps a value to its secondary-index class.
func (s *Store) class(val uint64) int { return int(val) & (s.classes - 1) }

// bucketClass maps a bucket holding (key, val) to its index class:
// the value class normally, the key class in escrow mode — immutable
// for a live bucket, which is what lets value updates skip the chains.
func (s *Store) bucketClass(key, val uint64) int {
	if s.escrow {
		return int(key) & (s.classes - 1)
	}
	return s.class(val)
}

// hash is the splitmix64 finalizer — full-avalanche, so sequential
// user keys spread across buckets (and size stripes).
func hash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	return k ^ (k >> 31)
}

// Runtime exposes the underlying STM runtime (stats, config).
func (s *Store) Runtime() *stm.Runtime { return s.rt }

// Capacity returns the bucket count.
func (s *Store) Capacity() int { return s.cap }

// probe walks key's probe path inside tx. It returns the bucket
// holding key (found=true), or found=false with free set to the
// bucket an insert should use (-1 when the path is exhausted: map
// full). The first tombstone on the path is remembered for reuse,
// but the walk continues to the first empty word so a reused slot
// can never shadow a live copy of the same key deeper in the path.
func (s *Store) probe(tx *stm.Tx, key uint64) (bucket int, found bool, free int) {
	h := int(hash(key) & s.mask)
	free = -1
	for i := 0; i < s.cap; i++ {
		b := (h + i) & int(s.mask)
		kw := tx.Load(s.keyWord(b))
		switch kw {
		case 0:
			if free < 0 {
				free = b
			}
			return 0, false, free
		case tombstone:
			if free < 0 {
				free = b
			}
		case key + 1:
			return b, true, free
		}
	}
	return 0, false, free
}

// indexPush links bucket b (holding key with value val) at the head
// of its class chain.
func (s *Store) indexPush(tx *stm.Tx, b int, key, val uint64) {
	c := s.bucketClass(key, val)
	tx.Store(s.linkWord(b), tx.Load(s.headWord(c)))
	tx.Store(s.headWord(c), uint64(b)+1)
}

// indexUnlink removes bucket b from the chain of the class it was
// indexed under (key's class in escrow mode, val's otherwise). The
// chain must contain b — a miss means the index lost an insert, which
// the transaction turns into a panic rather than silent corruption.
func (s *Store) indexUnlink(tx *stm.Tx, b int, key, val uint64) {
	c := s.bucketClass(key, val)
	cur := tx.Load(s.headWord(c))
	if cur == uint64(b)+1 {
		tx.Store(s.headWord(c), tx.Load(s.linkWord(b)))
		tx.Store(s.linkWord(b), 0)
		return
	}
	for steps := 0; cur != 0 && steps <= s.cap; steps++ {
		prev := int(cur) - 1
		next := tx.Load(s.linkWord(prev))
		if next == uint64(b)+1 {
			tx.Store(s.linkWord(prev), tx.Load(s.linkWord(b)))
			tx.Store(s.linkWord(b), 0)
			return
		}
		cur = next
	}
	panic(fmt.Sprintf("txkv: bucket %d missing from index class %d", b, c))
}

// checkKey rejects the one unrepresentable key (stored keys are
// userKey+1, and ^0 is the tombstone).
func checkKey(key uint64) error {
	if key >= tombstone-1 {
		return fmt.Errorf("txkv: key %#x out of range", key)
	}
	return nil
}

// put is the in-transaction upsert shared by Put, Add and UpdateDoc.
func (s *Store) put(tx *stm.Tx, key, val uint64) error {
	b, found, free := s.probe(tx, key)
	if found {
		old := tx.Load(s.valWord(b))
		if s.bucketClass(key, old) != s.bucketClass(key, val) {
			s.indexUnlink(tx, b, key, old)
			s.indexPush(tx, b, key, val)
		}
		tx.Store(s.valWord(b), val)
		return nil
	}
	if free < 0 {
		return ErrFull
	}
	tx.Store(s.keyWord(free), key+1)
	tx.Store(s.valWord(free), val)
	s.indexPush(tx, free, key, val)
	st := s.sizeWord(int(hash(key)) & (s.stripes - 1))
	tx.Store(st, tx.Load(st)+1)
	return nil
}

// get is the in-transaction lookup.
func (s *Store) get(tx *stm.Tx, key uint64) (uint64, bool) {
	b, found, _ := s.probe(tx, key)
	if !found {
		return 0, false
	}
	return tx.Load(s.valWord(b)), true
}

// del is the in-transaction delete.
func (s *Store) del(tx *stm.Tx, key uint64) bool {
	b, found, _ := s.probe(tx, key)
	if !found {
		return false
	}
	s.indexUnlink(tx, b, key, tx.Load(s.valWord(b)))
	tx.Store(s.keyWord(b), tombstone)
	tx.Store(s.valWord(b), 0)
	st := s.sizeWord(int(hash(key)) & (s.stripes - 1))
	tx.Store(st, tx.Load(st)-1)
	return true
}

// Put inserts or updates key. worker tags the transaction's trace
// records (pass -1 outside a worker pool); r must be the caller
// goroutine's own stream.
func (s *Store) Put(worker int, r *rng.Rand, key, val uint64) error {
	if err := checkKey(key); err != nil {
		return err
	}
	return s.rt.AtomicWorker(worker, r, func(tx *stm.Tx) error {
		return s.put(tx, key, val)
	})
}

// Get returns key's value (ok=false when absent).
func (s *Store) Get(worker int, r *rng.Rand, key uint64) (val uint64, ok bool, err error) {
	if err := checkKey(key); err != nil {
		return 0, false, err
	}
	err = s.rt.AtomicWorker(worker, r, func(tx *stm.Tx) error {
		val, ok = s.get(tx, key)
		return nil
	})
	return val, ok, err
}

// Delete removes key, reporting whether it was present.
func (s *Store) Delete(worker int, r *rng.Rand, key uint64) (deleted bool, err error) {
	if err := checkKey(key); err != nil {
		return false, err
	}
	err = s.rt.AtomicWorker(worker, r, func(tx *stm.Tx) error {
		deleted = s.del(tx, key)
		return nil
	})
	return deleted, err
}

// Add atomically increments key's value by delta, inserting delta
// when the key is absent (the counter type: a keyed read-modify-write
// whose conflicts land on the value word and, when the class
// changes, on the index chains). It returns the new value — except in
// escrow mode (Config.EscrowCounters), where an increment of an
// existing key is recorded blind via tx.Add so the batch combiner can
// fold it: the transaction never learns the value, and Add returns 0
// (inserts still return delta).
func (s *Store) Add(worker int, r *rng.Rand, key, delta uint64) (newVal uint64, err error) {
	if err := checkKey(key); err != nil {
		return 0, err
	}
	if !s.escrow {
		err = s.rt.AtomicWorker(worker, r, func(tx *stm.Tx) error {
			old, _ := s.get(tx, key)
			newVal = old + delta
			return s.put(tx, key, newVal)
		})
		return newVal, err
	}
	err = s.rt.AtomicWorker(worker, r, func(tx *stm.Tx) error {
		newVal = 0 // the closure re-runs on abort
		b, found, free := s.probe(tx, key)
		if found {
			// The probe path read the key words (validated as usual),
			// but the value word carries only a delta: no read entry,
			// so colliding increments on a hot counter commute.
			tx.Add(s.valWord(b), delta)
			return nil
		}
		if free < 0 {
			return ErrFull
		}
		newVal = delta
		tx.Store(s.keyWord(free), key+1)
		tx.Store(s.valWord(free), delta)
		s.indexPush(tx, free, key, delta)
		st := s.sizeWord(int(hash(key)) & (s.stripes - 1))
		tx.Store(st, tx.Load(st)+1)
		return nil
	})
	return newVal, err
}

// UpdateDoc atomically writes val to the document's fields — the
// keys base, base+1, ..., base+fields-1 — in one transaction, so a
// reader can never observe a half-updated document.
func (s *Store) UpdateDoc(worker int, r *rng.Rand, base uint64, fields int, val uint64) error {
	if err := checkKey(base + uint64(fields) - 1); err != nil {
		return err
	}
	return s.rt.AtomicWorker(worker, r, func(tx *stm.Tx) error {
		for f := 0; f < fields; f++ {
			if err := s.put(tx, base+uint64(f), val); err != nil {
				return err
			}
		}
		return nil
	})
}

// ReadDoc atomically reads the document's fields (absent fields read
// as 0 — a document that was never written is all-zero, still
// satisfying the all-fields-equal visibility invariant).
func (s *Store) ReadDoc(worker int, r *rng.Rand, base uint64, fields int) ([]uint64, error) {
	if err := checkKey(base + uint64(fields) - 1); err != nil {
		return nil, err
	}
	vals := make([]uint64, fields)
	err := s.rt.AtomicWorker(worker, r, func(tx *stm.Tx) error {
		for f := 0; f < fields; f++ {
			vals[f], _ = s.get(tx, base+uint64(f))
		}
		return nil
	})
	return vals, err
}

// Len returns the committed live-key count (the sum of the size
// stripes). Quiescent-state accessor.
func (s *Store) Len() int {
	var n uint64
	for st := 0; st < s.stripes; st++ {
		n += s.rt.ReadCommitted(s.sizeWord(st))
	}
	return int(n)
}

// Range calls fn for every committed live key. Quiescent-state
// accessor (it reads bucket words non-transactionally).
func (s *Store) Range(fn func(key, val uint64)) {
	for b := 0; b < s.cap; b++ {
		kw := s.rt.ReadCommitted(s.keyWord(b))
		if kw == 0 || kw == tombstone {
			continue
		}
		fn(kw-1, s.rt.ReadCommitted(s.valWord(b)))
	}
}

// CheckInvariants verifies the store's structural invariants against
// the committed (quiescent) arena:
//
//  1. occupancy: the striped size counters sum to the number of live
//     buckets;
//  2. reachability: every live bucket hangs off exactly one index
//     chain, and the chains contain nothing else (no orphans, no
//     double links, no cycles);
//  3. class consistency: a bucket in class c holds a value (a key, in
//     escrow mode) of class c;
//  4. probe integrity: every live key is found by its own probe path.
//
// Any violation is a serializability bug in the runtime (or a txkv
// logic bug), not a data race in the checker — call it only after
// all workers have stopped.
func (s *Store) CheckInvariants() error {
	live := 0
	for b := 0; b < s.cap; b++ {
		kw := s.rt.ReadCommitted(s.keyWord(b))
		if kw == 0 || kw == tombstone {
			continue
		}
		live++
	}
	if got := s.Len(); got != live {
		return fmt.Errorf("txkv: size stripes sum to %d, scan found %d live keys", got, live)
	}
	seen := make([]bool, s.cap)
	visited := 0
	for c := 0; c < s.classes; c++ {
		cur := s.rt.ReadCommitted(s.headWord(c))
		for steps := 0; cur != 0; steps++ {
			if steps > s.cap {
				return fmt.Errorf("txkv: index class %d chain exceeds capacity (cycle)", c)
			}
			b := int(cur) - 1
			if b < 0 || b >= s.cap {
				return fmt.Errorf("txkv: index class %d links out-of-range bucket %d", c, b)
			}
			if seen[b] {
				return fmt.Errorf("txkv: bucket %d linked twice in the index", b)
			}
			seen[b] = true
			visited++
			kw := s.rt.ReadCommitted(s.keyWord(b))
			if kw == 0 || kw == tombstone {
				return fmt.Errorf("txkv: index class %d links dead bucket %d", c, b)
			}
			val := s.rt.ReadCommitted(s.valWord(b))
			if got := s.bucketClass(kw-1, val); got != c {
				return fmt.Errorf("txkv: bucket %d (key %d, value %d, class %d) linked under class %d",
					b, kw-1, val, got, c)
			}
			cur = s.rt.ReadCommitted(s.linkWord(b))
		}
	}
	if visited != live {
		return fmt.Errorf("txkv: index chains reach %d buckets, %d are live", visited, live)
	}
	// Probe integrity: every live key must find itself.
	for b := 0; b < s.cap; b++ {
		kw := s.rt.ReadCommitted(s.keyWord(b))
		if kw == 0 || kw == tombstone {
			continue
		}
		if !s.committedFinds(kw-1, b) {
			return fmt.Errorf("txkv: key %d at bucket %d unreachable by its probe path", kw-1, b)
		}
	}
	return nil
}

// committedFinds reports whether key's committed probe path reaches
// bucket want before an empty word.
func (s *Store) committedFinds(key uint64, want int) bool {
	h := int(hash(key) & s.mask)
	for i := 0; i < s.cap; i++ {
		b := (h + i) & int(s.mask)
		kw := s.rt.ReadCommitted(s.keyWord(b))
		if kw == 0 {
			return false
		}
		if b == want {
			return kw == key+1
		}
	}
	return false
}
