package txkv

import (
	"fmt"
	"runtime"
	"time"

	"txconflict/internal/metrics"
	"txconflict/internal/stm"
)

// PerfCell is one measured point of the keyed-throughput matrix:
// workload x commit mode x GOMAXPROCS.
type PerfCell struct {
	Workload   string  `json:"workload"`
	Mode       string  `json:"mode"` // eager | lazy | lazy+batch<N>
	GOMAXPROCS int     `json:"gomaxprocs"`
	Users      int     `json:"users"`
	OpsPerSec  float64 `json:"opsPerSec"`
	Ops        uint64  `json:"ops"`
	Commits    uint64  `json:"commits"`
	Aborts     uint64  `json:"aborts"`
	Batches    uint64  `json:"batches,omitempty"`
	Folded     uint64  `json:"foldedCommits,omitempty"`
	// Commit-latency quantiles from the cell's metrics plane, so the
	// serving-stack trajectory records the tail alongside ops/sec.
	CommitP50Ns float64 `json:"p50Ns,omitempty"`
	CommitP99Ns float64 `json:"p99Ns,omitempty"`
}

// PerfReport is the BENCH_txkv.json payload — the serving stack's
// end-to-end requests/sec trajectory, the number every future perf
// PR gets to move.
type PerfReport struct {
	Unit       string     `json:"unit"`
	DurationMS int64      `json:"durationMs"`
	Seed       uint64     `json:"seed"`
	Batch      int        `json:"batchOpsPerRequest"`
	Cells      []PerfCell `json:"cells"`
}

// PerfConfig tunes the matrix.
type PerfConfig struct {
	// Workloads to measure (default: every registered workload).
	Workloads []string
	// Procs are the GOMAXPROCS levels (default 1, 4, 8). Each cell
	// pins GOMAXPROCS and runs procs closed-loop users, so the cell
	// measures scheduler-level parallelism, not oversubscription.
	Procs []int
	// CommitBatch is the lazy+batch mode's bound (default 4).
	CommitBatch int
	// Duration per cell (default 150ms).
	Duration time.Duration
	// Seed for reproducible op streams.
	Seed uint64
}

// perfModes returns the commit paths the matrix compares: the three
// classic modes plus the folded cell — lazy+batch with commutative
// folding on, over an escrow-counter store, so Add traffic commits
// as summed deltas instead of colliding read-modify-writes.
func perfModes(commitBatch int) []struct {
	name   string
	cfg    stm.Config
	escrow bool
} {
	eager := stm.DefaultConfig()
	lazy := eager
	lazy.Lazy = true
	batched := lazy
	batched.CommitBatch = commitBatch
	folded := batched
	folded.FoldCommutative = true
	return []struct {
		name   string
		cfg    stm.Config
		escrow bool
	}{
		{"eager", eager, false},
		{"lazy", lazy, false},
		{fmt.Sprintf("lazy+batch%d", commitBatch), batched, false},
		{fmt.Sprintf("lazy+batch%d+fold", commitBatch), folded, true},
	}
}

// Perf measures the full workload x mode x GOMAXPROCS matrix on
// in-process stores (LocalClient — the store's own throughput,
// without HTTP encode/decode). Every cell is verified: structural
// invariants plus the workload's semantic check; a violation fails
// the whole snapshot.
func Perf(cfg PerfConfig) (*PerfReport, error) {
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = Names()
	}
	if len(cfg.Procs) == 0 {
		cfg.Procs = []int{1, 4, 8}
	}
	if cfg.CommitBatch <= 0 {
		cfg.CommitBatch = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 150 * time.Millisecond
	}
	rep := &PerfReport{
		Unit:       "keyed ops/sec",
		DurationMS: cfg.Duration.Milliseconds(),
		Seed:       cfg.Seed,
		Batch:      16,
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, wname := range cfg.Workloads {
		for _, mode := range perfModes(cfg.CommitBatch) {
			for _, procs := range cfg.Procs {
				w, err := ByName(wname, Options{})
				if err != nil {
					return nil, err
				}
				runtime.GOMAXPROCS(procs)
				// Per-cell plane: quantiles never bleed across cells.
				sCfg := mode.cfg
				sCfg.Metrics = metrics.NewPlane(procs, 0)
				s := w.NewStore(Config{STM: sCfg, EscrowCounters: mode.escrow})
				res, err := w.RunLocal(s, GenConfig{
					Users:    procs,
					Batch:    rep.Batch,
					Duration: cfg.Duration,
					Seed:     cfg.Seed + uint64(procs),
				})
				if err != nil {
					return nil, fmt.Errorf("txkv: perf cell %s/%s/p%d: %w",
						wname, mode.name, procs, err)
				}
				snap := s.Runtime().Stats.Snapshot()
				cell := PerfCell{
					Workload:   wname,
					Mode:       mode.name,
					GOMAXPROCS: procs,
					Users:      procs,
					OpsPerSec:  res.OpsPerSec(),
					Ops:        res.Ops,
					Commits:    snap["commits"],
					Aborts:     snap["aborts"],
					Batches:    snap["batches"],
					Folded:     snap["foldedCommits"],
				}
				if p := s.Runtime().Metrics(); p != nil {
					ps := p.Snapshot()
					q := ps.Commit.Summary()
					cell.CommitP50Ns, cell.CommitP99Ns = q.P50, q.P99
				}
				rep.Cells = append(rep.Cells, cell)
			}
		}
	}
	return rep, nil
}
