package txkv

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"txconflict/internal/rng"
)

// Client executes one batch of ops — either in-process against a
// Store (LocalClient) or over HTTP against a txkvd server
// (HTTPClient in server.go).
type Client interface {
	Do(ops []Op) ([]Result, error)
}

// LocalClient runs batches directly on a store, tagging transactions
// with a fixed worker id. One LocalClient per goroutine.
type LocalClient struct {
	Store  *Store
	Worker int
	R      *rng.Rand
}

// Do implements Client.
func (c *LocalClient) Do(ops []Op) ([]Result, error) {
	return c.Store.ApplyBatch(c.Worker, c.R, ops), nil
}

// GenConfig tunes one closed-loop load run.
type GenConfig struct {
	// Users is the number of concurrent closed-loop users; each runs
	// on its own goroutine with its own random stream and client.
	Users int
	// Batch is the ops per request (default 16) — the network
	// amortization knob, mirroring production batch endpoints.
	Batch int
	// Duration bounds the run (default 200ms).
	Duration time.Duration
	// Seed makes op streams reproducible.
	Seed uint64
}

// GenResult summarizes one load run.
type GenResult struct {
	// Ops is the total completed (responded) operations.
	Ops uint64
	// PerUser counts completed ops per user.
	PerUser []uint64
	// ElapsedSec is the measured wall-clock duration.
	ElapsedSec float64
	// Totals aggregates every user's semantic bookkeeping for the
	// workload's final check.
	Totals Totals
}

// OpsPerSec returns the measured keyed-operation throughput.
func (g GenResult) OpsPerSec() float64 {
	if g.ElapsedSec <= 0 {
		return 0
	}
	return float64(g.Ops) / g.ElapsedSec
}

// Run drives the workload closed-loop: each user draws a batch from
// its working set, issues it through its client, validates every
// response, and immediately issues the next. newClient is called
// once per user (u is the user index; r is a dedicated stream for
// the client's own transactions). The first transport or validation
// error aborts the run.
func (w *Workload) Run(newClient func(u int, r *rng.Rand) Client, g GenConfig) (GenResult, error) {
	if g.Users <= 0 {
		g.Users = 1
	}
	if g.Batch <= 0 {
		g.Batch = 16
	}
	if g.Duration <= 0 {
		g.Duration = 200 * time.Millisecond
	}
	root := rng.New(g.Seed)
	res := GenResult{PerUser: make([]uint64, g.Users)}
	users := make([]*User, g.Users)
	errs := make([]error, g.Users)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for u := 0; u < g.Users; u++ {
		u := u
		ru := root.Split()  // op-stream randomness
		rc := root.Split()  // client/transaction randomness
		usr := w.NewUser(u) // per-user closed-loop state
		users[u] = usr
		client := newClient(u, rc)
		wg.Add(1)
		labels := pprof.Labels("subsystem", "txkv-loadgen",
			"workload", w.name, "txkv_user", strconv.Itoa(u))
		go pprof.Do(context.Background(), labels, func(context.Context) {
			defer wg.Done()
			batch := make([]Op, g.Batch)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range batch {
					batch[i] = usr.Next(ru)
				}
				results, err := client.Do(batch)
				if err != nil {
					errs[u] = fmt.Errorf("txkv: user %d: %w", u, err)
					return
				}
				if len(results) != len(batch) {
					errs[u] = fmt.Errorf("txkv: user %d: %d results for %d ops",
						u, len(results), len(batch))
					return
				}
				if usr.Observe != nil {
					for i, r := range results {
						if err := usr.Observe(batch[i], r); err != nil {
							errs[u] = err
							return
						}
					}
				}
				res.PerUser[u] += uint64(len(batch))
			}
		})
	}
	start := time.Now()
	time.Sleep(g.Duration)
	close(stop)
	wg.Wait()
	res.ElapsedSec = time.Since(start).Seconds()
	for u, usr := range users {
		if errs[u] != nil {
			return res, errs[u]
		}
		res.Ops += res.PerUser[u]
		res.Totals.merge(usr.totals)
	}
	if res.Ops == 0 {
		return res, fmt.Errorf("txkv: workload %s completed no operations", w.name)
	}
	return res, nil
}

// RunLocal is Run against an in-process store, one LocalClient (and
// worker id) per user, followed by the full verification: the
// store's structural invariants and the workload's semantic check.
func (w *Workload) RunLocal(s *Store, g GenConfig) (GenResult, error) {
	res, err := w.Run(func(u int, r *rng.Rand) Client {
		return &LocalClient{Store: s, Worker: u, R: r}
	}, g)
	if err != nil {
		return res, err
	}
	if err := s.CheckInvariants(); err != nil {
		return res, err
	}
	return res, w.Check(s, res.Totals)
}

// NewStore builds a store sized for the workload on the given STM
// configuration.
func (w *Workload) NewStore(cfg Config) *Store {
	if cfg.Capacity == 0 {
		cfg.Capacity = w.Capacity()
	}
	return New(cfg)
}
