package txkv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"txconflict/internal/core"
	"txconflict/internal/metrics"
	"txconflict/internal/rng"
	"txconflict/internal/strategy"
	"txconflict/internal/tune"
)

// maxBatchOps bounds one request's batch so a single POST cannot
// preallocate unbounded result buffers (the same hardening the trace
// loader got after fuzzing).
const maxBatchOps = 4096

// Server is the txkvd serving core: an http.Handler that executes
// batch requests on a fixed pool of transaction workers, one
// stm.AtomicWorker identity per pool worker — so per-worker trace
// buffers stay contention-free and conflict stats attribute cleanly.
// cmd/txkvd wraps it in an http.Server; tests drive it through
// httptest.
type Server struct {
	store *Store
	tuner *tune.Tuner

	jobs   chan job
	quit   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

type job struct {
	ops   []Op
	reply chan []Result
}

// NewServer starts workers pool goroutines around the store.
func NewServer(store *Store, workers int, seed uint64) *Server {
	if workers <= 0 {
		workers = 4
	}
	sv := &Server{
		store: store,
		jobs:  make(chan job),
		quit:  make(chan struct{}),
	}
	root := rng.New(seed)
	for w := 0; w < workers; w++ {
		w := w
		r := root.Split()
		sv.wg.Add(1)
		// Profiler labels make the pool legible in pprof output: CPU
		// samples split by worker identity instead of blurring into
		// one anonymous goroutine set.
		labels := pprof.Labels("subsystem", "txkv-pool", "txkv_worker", strconv.Itoa(w))
		go pprof.Do(context.Background(), labels, func(context.Context) {
			defer sv.wg.Done()
			for {
				select {
				case <-sv.quit:
					return
				case j := <-sv.jobs:
					j.reply <- sv.store.ApplyBatch(w, r, j.ops)
				}
			}
		})
	}
	return sv
}

// Store returns the served store (for post-shutdown verification).
func (sv *Server) Store() *Store { return sv.store }

// AttachTuner hands the server an adaptive control loop over the
// store's runtime; /v1/policy then renders its decision log and POST
// overrides route through it (suspending automatic decisions until a
// {"resume":true} POST). Attach before serving traffic — the field is
// not synchronized against concurrent requests. The server stops the
// tuner on Close.
func (sv *Server) AttachTuner(t *tune.Tuner) { sv.tuner = t }

// Tuner returns the attached control loop, nil when static.
func (sv *Server) Tuner() *tune.Tuner { return sv.tuner }

// Close drains the worker pool (stopping the attached tuner first, if
// any). In-flight requests racing Close may fail with "server
// closed"; callers should stop traffic first.
func (sv *Server) Close() {
	if sv.closed.CompareAndSwap(false, true) {
		if sv.tuner != nil {
			sv.tuner.Stop()
		}
		close(sv.quit)
		sv.wg.Wait()
	}
}

// Exec dispatches one batch to the worker pool and waits for its
// results.
func (sv *Server) Exec(ops []Op) ([]Result, error) {
	if len(ops) > maxBatchOps {
		return nil, fmt.Errorf("txkv: batch of %d ops exceeds the %d-op limit", len(ops), maxBatchOps)
	}
	if sv.closed.Load() {
		return nil, fmt.Errorf("txkv: server closed")
	}
	j := job{ops: ops, reply: make(chan []Result, 1)}
	select {
	case sv.jobs <- j:
		return <-j.reply, nil
	case <-sv.quit:
		return nil, fmt.Errorf("txkv: server closed")
	}
}

// batchRequest and batchResponse are the /v1/batch wire format.
type batchRequest struct {
	Ops []Op `json:"ops"`
}

type batchResponse struct {
	Results []Result `json:"results"`
}

// ServeHTTP implements the front-end API:
//
//	POST /v1/batch   {"ops":[{"op":"put","key":1,"val":2},...]}
//	GET  /v1/stats   committed size + live runtime counters, policy,
//	                 and (metrics plane attached) latency quantiles +
//	                 abort taxonomy
//	GET  /v1/policy  current policy + tuner decision log
//	POST /v1/policy  manual policy override (suspends the tuner) or
//	                 {"resume":true} to hand control back
//	GET  /v1/check   structural invariants (quiescent stores only)
//	GET  /metrics    Prometheus text exposition (histogram summaries,
//	                 abort taxonomy, commit-phase timers, stm counters)
//	GET  /healthz    liveness
func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/batch":
		sv.handleBatch(w, r)
	case "/v1/stats":
		rt := sv.store.Runtime()
		st := map[string]any{
			"len":         sv.store.Len(),
			"stm":         rt.Stats.Snapshot(),
			"config":      rt.Config().String(),
			"policy":      rt.Policy().String(),
			"kEstimate":   rt.KEstimate(),
			"policySwaps": rt.PolicySwaps(),
			"adaptive":    sv.tuner != nil,
		}
		if p := rt.Metrics(); p != nil {
			snap := p.Snapshot()
			st["latency"] = snap.LatencySummaries()
			st["abortReasons"] = snap.AbortCounts()
		}
		writeJSON(w, st)
	case "/metrics":
		sv.handleMetrics(w, r)
	case "/v1/policy":
		sv.handlePolicy(w, r)
	case "/v1/check":
		if err := sv.store.CheckInvariants(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, "ok")
	case "/healthz":
		fmt.Fprintln(w, "ok")
	default:
		http.NotFound(w, r)
	}
}

// handleMetrics renders the Prometheus text exposition: the metrics
// plane's summaries/taxonomy/phase timers when one is attached, the
// reflection-generated stm.Stats counters always, plus store-level
// gauges. Families are emitted in a fixed order so successive scrapes
// diff cleanly.
func (sv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	rt := sv.store.Runtime()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var buf bytes.Buffer
	if p := rt.Metrics(); p != nil {
		snap := p.Snapshot()
		if err := snap.WriteProm(&buf, "txstm"); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	// Every Stats counter rides along under its snake_case name; the
	// reflection snapshot keeps this complete as Stats grows fields.
	stats := rt.Stats.Snapshot()
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name := "txstm_" + metrics.SnakeCase(k) + "_total"
		if err := metrics.CounterProm(&buf, name, "counter",
			"stm.Stats."+k+" runtime counter.", stats[k]); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	pw := metrics.NewPromWriter(&buf)
	pw.Family("txkv_store_keys", "gauge", "Committed key count of the served store.")
	pw.Uint("txkv_store_keys", nil, uint64(sv.store.Len()))
	pw.Family("txstm_policy_swaps_total", "counter", "SetPolicy applications on the served runtime.")
	pw.Uint("txstm_policy_swaps_total", nil, rt.PolicySwaps())
	pw.Family("txstm_k_estimate", "gauge", "Windowed conflict chain-length estimate.")
	pw.Sample("txstm_k_estimate", nil, rt.KEstimate())
	if err := pw.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(buf.Bytes())
}

func (sv *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req batchRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	results, err := sv.Exec(req.Ops)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, batchResponse{Results: results})
}

// policyRequest is the POST /v1/policy wire format. Every field is
// optional; absent fields keep their current value, so a request can
// flip one knob without restating the rest. {"resume":true} instead
// lifts a manual override and hands control back to the tuner.
type policyRequest struct {
	Resolution  *string `json:"resolution"` // "rw" | "ra"
	Hybrid      *bool   `json:"hybrid"`
	Strategy    *string `json:"strategy"` // registry name; "" = NO_DELAY
	KWindow     *int    `json:"kWindow"`
	CommitBatch *int    `json:"commitBatch"`
	MaxRetries  *int    `json:"maxRetries"`
	// FoldCommutative flips the combiner's commutative-delta folding
	// (effective on the batched lazy path; see stm.Policy).
	FoldCommutative *bool `json:"foldCommutative"`
	Resume          bool  `json:"resume"`
}

// policyView renders the control plane: the tuner's view when one is
// attached (decision log included), a static snapshot otherwise.
func (sv *Server) policyView() tune.PolicyView {
	if sv.tuner != nil {
		return sv.tuner.View()
	}
	rt := sv.store.Runtime()
	return tune.PolicyView{
		Policy:    rt.Policy().String(),
		Auto:      false,
		Swaps:     rt.PolicySwaps(),
		KEstimate: rt.KEstimate(),
	}
}

func (sv *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	rt := sv.store.Runtime()
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, sv.policyView())
	case http.MethodPost:
		var req policyRequest
		dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
		if err := dec.Decode(&req); err != nil {
			http.Error(w, "bad policy: "+err.Error(), http.StatusBadRequest)
			return
		}
		if req.Resume {
			if sv.tuner == nil {
				http.Error(w, "no tuner attached (start with -adaptive)", http.StatusConflict)
				return
			}
			sv.tuner.Resume()
			writeJSON(w, sv.policyView())
			return
		}
		p := rt.Policy()
		if req.Resolution != nil {
			switch strings.ToLower(*req.Resolution) {
			case "rw", "requestorwins":
				p.Resolution = core.RequestorWins
			case "ra", "requestoraborts":
				p.Resolution = core.RequestorAborts
			default:
				http.Error(w, fmt.Sprintf("bad policy: unknown resolution %q (want rw or ra)", *req.Resolution),
					http.StatusBadRequest)
				return
			}
		}
		if req.Hybrid != nil {
			p.Hybrid = *req.Hybrid
		}
		if req.Strategy != nil {
			if *req.Strategy == "" {
				p.Strategy = nil
			} else {
				s, err := strategy.ByName(*req.Strategy)
				if err != nil {
					http.Error(w, "bad policy: "+err.Error(), http.StatusBadRequest)
					return
				}
				p.Strategy = s
			}
		}
		if req.KWindow != nil {
			p.KWindow = *req.KWindow
		}
		if req.CommitBatch != nil {
			p.CommitBatch = *req.CommitBatch
		}
		if req.MaxRetries != nil {
			p.MaxRetries = *req.MaxRetries
		}
		if req.FoldCommutative != nil {
			p.FoldCommutative = *req.FoldCommutative
		}
		if sv.tuner != nil {
			sv.tuner.Override(p)
		} else {
			rt.SetPolicy(p)
		}
		writeJSON(w, sv.policyView())
	default:
		http.Error(w, "GET or POST required", http.StatusMethodNotAllowed)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// HTTPClient drives a txkvd server over the batch endpoint; it
// implements Client, so the load generator runs unchanged against a
// remote store.
type HTTPClient struct {
	// Base is the server root, e.g. "http://127.0.0.1:7070".
	Base string
	// C is the underlying HTTP client (nil = http.DefaultClient).
	C *http.Client
}

// Do implements Client.
func (h *HTTPClient) Do(ops []Op) ([]Result, error) {
	body, err := json.Marshal(batchRequest{Ops: ops})
	if err != nil {
		return nil, err
	}
	c := h.C
	if c == nil {
		c = http.DefaultClient
	}
	resp, err := c.Post(h.Base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("txkv: server returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, err
	}
	return br.Results, nil
}
