package txkv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"txconflict/internal/rng"
)

// maxBatchOps bounds one request's batch so a single POST cannot
// preallocate unbounded result buffers (the same hardening the trace
// loader got after fuzzing).
const maxBatchOps = 4096

// Server is the txkvd serving core: an http.Handler that executes
// batch requests on a fixed pool of transaction workers, one
// stm.AtomicWorker identity per pool worker — so per-worker trace
// buffers stay contention-free and conflict stats attribute cleanly.
// cmd/txkvd wraps it in an http.Server; tests drive it through
// httptest.
type Server struct {
	store *Store

	jobs   chan job
	quit   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

type job struct {
	ops   []Op
	reply chan []Result
}

// NewServer starts workers pool goroutines around the store.
func NewServer(store *Store, workers int, seed uint64) *Server {
	if workers <= 0 {
		workers = 4
	}
	sv := &Server{
		store: store,
		jobs:  make(chan job),
		quit:  make(chan struct{}),
	}
	root := rng.New(seed)
	for w := 0; w < workers; w++ {
		w := w
		r := root.Split()
		sv.wg.Add(1)
		go func() {
			defer sv.wg.Done()
			for {
				select {
				case <-sv.quit:
					return
				case j := <-sv.jobs:
					j.reply <- sv.store.ApplyBatch(w, r, j.ops)
				}
			}
		}()
	}
	return sv
}

// Store returns the served store (for post-shutdown verification).
func (sv *Server) Store() *Store { return sv.store }

// Close drains the worker pool. In-flight requests racing Close may
// fail with "server closed"; callers should stop traffic first.
func (sv *Server) Close() {
	if sv.closed.CompareAndSwap(false, true) {
		close(sv.quit)
		sv.wg.Wait()
	}
}

// Exec dispatches one batch to the worker pool and waits for its
// results.
func (sv *Server) Exec(ops []Op) ([]Result, error) {
	if len(ops) > maxBatchOps {
		return nil, fmt.Errorf("txkv: batch of %d ops exceeds the %d-op limit", len(ops), maxBatchOps)
	}
	if sv.closed.Load() {
		return nil, fmt.Errorf("txkv: server closed")
	}
	j := job{ops: ops, reply: make(chan []Result, 1)}
	select {
	case sv.jobs <- j:
		return <-j.reply, nil
	case <-sv.quit:
		return nil, fmt.Errorf("txkv: server closed")
	}
}

// batchRequest and batchResponse are the /v1/batch wire format.
type batchRequest struct {
	Ops []Op `json:"ops"`
}

type batchResponse struct {
	Results []Result `json:"results"`
}

// ServeHTTP implements the front-end API:
//
//	POST /v1/batch   {"ops":[{"op":"put","key":1,"val":2},...]}
//	GET  /v1/stats   committed size + runtime counters
//	GET  /v1/check   structural invariants (quiescent stores only)
//	GET  /healthz    liveness
func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/batch":
		sv.handleBatch(w, r)
	case "/v1/stats":
		writeJSON(w, map[string]any{
			"len":    sv.store.Len(),
			"stm":    sv.store.Runtime().Stats.Snapshot(),
			"config": sv.store.Runtime().Config().String(),
		})
	case "/v1/check":
		if err := sv.store.CheckInvariants(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, "ok")
	case "/healthz":
		fmt.Fprintln(w, "ok")
	default:
		http.NotFound(w, r)
	}
}

func (sv *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req batchRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	results, err := sv.Exec(req.Ops)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, batchResponse{Results: results})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// HTTPClient drives a txkvd server over the batch endpoint; it
// implements Client, so the load generator runs unchanged against a
// remote store.
type HTTPClient struct {
	// Base is the server root, e.g. "http://127.0.0.1:7070".
	Base string
	// C is the underlying HTTP client (nil = http.DefaultClient).
	C *http.Client
}

// Do implements Client.
func (h *HTTPClient) Do(ops []Op) ([]Result, error) {
	body, err := json.Marshal(batchRequest{Ops: ops})
	if err != nil {
		return nil, err
	}
	c := h.C
	if c == nil {
		c = http.DefaultClient
	}
	resp, err := c.Post(h.Base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("txkv: server returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, err
	}
	return br.Results, nil
}
