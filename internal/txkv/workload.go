package txkv

import (
	"fmt"
	"sort"
	"strings"

	"txconflict/internal/dist"
	"txconflict/internal/rng"
)

// Totals aggregates the side effects the final workload check needs:
// the part of a run's history the quiescent store cannot reproduce.
type Totals struct {
	// Adds is the sum of deltas applied by successful Add ops.
	Adds uint64
}

func (t *Totals) merge(o Totals) { t.Adds += o.Adds }

// User is one closed-loop client: an op generator plus a response
// validator, both confined to the user's own goroutine.
type User struct {
	// Next draws the user's next op from its (skewed) working set.
	Next func(r *rng.Rand) Op
	// Observe validates one response; a non-nil error is an
	// isolation-violation verdict and fails the whole run. Nil when
	// the workload has nothing to check per-response.
	Observe func(op Op, res Result) error
	// totals accumulates this user's contribution to the final check.
	totals Totals
}

// Options tunes a workload instance obtained from ByName.
type Options struct {
	// Keys overrides the workload's keyspace size (0 = default).
	Keys uint64
	// KeyDist overrides the key-rank sampler (nil = the workload's
	// zipf default). Samples are folded into [0, Keys) — pair with
	// a mean around Keys/2 for sensible coverage.
	KeyDist dist.Sampler
}

// Workload is one named keyed traffic shape: a user factory over a
// keyspace, plus the committed-state check that closes the loop.
type Workload struct {
	name, desc string
	keys       uint64
	capacity   int
	newUser    func(u int, opt *Workload) *User
	check      func(s *Store, tot Totals) error

	keyDist dist.Sampler // nil = per-workload zipf default
}

// Name identifies the workload in flags and BENCH_txkv.json cells.
func (w *Workload) Name() string { return w.name }

// Description is the one-line summary for CLI listings.
func (w *Workload) Description() string { return w.desc }

// Keys returns the keyspace size.
func (w *Workload) Keys() uint64 { return w.keys }

// Capacity returns the store bucket count the workload needs.
func (w *Workload) Capacity() int { return w.capacity }

// NewUser builds user u's closed-loop client state.
func (w *Workload) NewUser(u int) *User { return w.newUser(u, w) }

// Check verifies the workload's semantic invariant against the
// quiescent store and the run's aggregated totals. Structural map
// invariants are separate (Store.CheckInvariants).
func (w *Workload) Check(s *Store, tot Totals) error { return w.check(s, tot) }

// sampleKey draws one key from the workload's skewed working set.
func (w *Workload) sampleKey(r *rng.Rand) uint64 {
	v := w.keyDist.Sample(r)
	if v < 0 {
		v = -v
	}
	return uint64(v) % w.keys
}

// defaultZipf is the working-set skew shared by the built-ins: rank
// 1 is the hottest key, tail falls off as rank^-s.
func defaultZipf(keys uint64, s float64) dist.Sampler {
	return dist.NewZipf(int(keys), s, 1)
}

// workloadDefs is the keyed-traffic catalog. Names are stable CLI
// identifiers (cmd/txkvd -workload) and BENCH_txkv.json cell labels.
var workloadDefs = []struct {
	name, desc string
	build      func(opt Options) *Workload
}{
	{"readmostly", "90% get / 8% put / 2% delete over a zipf working set", newReadMostly},
	{"hotspot-counter", "keyed increments on a small, strongly zipf-skewed counter set", newHotspotCounter},
	{"document", "8-field document updates vs atomic document reads (all-or-nothing visibility)", newDocument},
}

// Names returns the sorted workload names ByName accepts.
func Names() []string {
	names := make([]string, 0, len(workloadDefs))
	for _, d := range workloadDefs {
		names = append(names, d.name)
	}
	sort.Strings(names)
	return names
}

// Known reports whether ByName would accept name (after lower-case/
// trim folding, matching the scenario and dist registries).
func Known(name string) bool {
	want := strings.ToLower(strings.TrimSpace(name))
	for _, d := range workloadDefs {
		if d.name == want {
			return true
		}
	}
	return false
}

// Describe returns "name: description" lines for CLI help.
func Describe() []string {
	out := make([]string, 0, len(workloadDefs))
	for _, d := range workloadDefs {
		out = append(out, d.name+": "+d.desc)
	}
	return out
}

// ByName instantiates the named workload.
func ByName(name string, opt Options) (*Workload, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	for _, d := range workloadDefs {
		if d.name == want {
			w := d.build(opt)
			w.name, w.desc = d.name, d.desc
			return w, nil
		}
	}
	return nil, fmt.Errorf("txkv: unknown workload %q (have %s)",
		name, strings.Join(Names(), ", "))
}

// finish applies Options overrides and derives the store capacity
// (2x the keyspace, so probe paths stay short at full occupancy).
func finish(w *Workload, opt Options, defSkew float64) *Workload {
	if opt.Keys > 0 {
		w.keys = opt.Keys
	}
	w.keyDist = opt.KeyDist
	if w.keyDist == nil {
		w.keyDist = defaultZipf(w.keys, defSkew)
	}
	w.capacity = int(2 * w.keys)
	return w
}

// newReadMostly builds the read-dominated workload: the keyed
// analogue of the readmostly scenario. Its semantic content is
// structural — overwrites race benignly — so the map/index
// invariants carry the whole check.
func newReadMostly(opt Options) *Workload {
	w := &Workload{
		keys: 1024,
	}
	w.newUser = func(u int, w *Workload) *User {
		return &User{
			Next: func(r *rng.Rand) Op {
				key := w.sampleKey(r)
				switch {
				case r.Bool(0.90):
					return Op{Kind: KindGet, Key: key}
				case r.Bool(0.80):
					return Op{Kind: KindPut, Key: key, Val: uint64(u)<<32 | r.Uint64()&0xffff}
				default:
					return Op{Kind: KindDelete, Key: key}
				}
			},
		}
	}
	w.check = func(s *Store, tot Totals) error {
		if n := uint64(s.Len()); n > w.keys {
			return fmt.Errorf("readmostly: %d live keys exceed the %d-key keyspace", n, w.keys)
		}
		return nil
	}
	return finish(w, opt, 1.05)
}

// newHotspotCounter builds the contended-counter workload: every op
// is a keyed read-modify-write increment, and the strong zipf skew
// funnels most of them onto a handful of keys — the serving-stack
// version of the hotspot scenario. Lost updates show up directly:
// the committed counter sum must equal the number of applied adds.
func newHotspotCounter(opt Options) *Workload {
	w := &Workload{
		keys: 128,
	}
	w.newUser = func(u int, w *Workload) *User {
		usr := &User{}
		usr.Next = func(r *rng.Rand) Op {
			return Op{Kind: KindAdd, Key: w.sampleKey(r), Val: 1}
		}
		usr.Observe = func(op Op, res Result) error {
			if res.Err != "" {
				return fmt.Errorf("hotspot-counter: add failed: %s", res.Err)
			}
			usr.totals.Adds += op.Val
			return nil
		}
		return usr
	}
	w.check = func(s *Store, tot Totals) error {
		var sum uint64
		s.Range(func(_, val uint64) { sum += val })
		if sum != tot.Adds {
			return fmt.Errorf("hotspot-counter: committed counter sum %d, want %d applied adds",
				sum, tot.Adds)
		}
		return nil
	}
	return finish(w, opt, 1.2)
}

// docFields is the document workload's fields-per-document.
const docFields = 8

// newDocument builds the multi-key document workload: updates write
// one value to all eight fields of a zipf-chosen document in a
// single transaction, and reads assert the fields are equal — the
// all-or-nothing visibility invariant, checked on every read and
// again over the quiescent store.
func newDocument(opt Options) *Workload {
	w := &Workload{
		keys: 64 * docFields, // 64 documents
	}
	docs := func(w *Workload) uint64 { return w.keys / docFields }
	w.newUser = func(u int, w *Workload) *User {
		seq := uint64(0)
		usr := &User{}
		usr.Next = func(r *rng.Rand) Op {
			doc := w.sampleKey(r) % docs(w)
			base := doc * docFields
			if r.Bool(0.75) {
				seq++
				return Op{Kind: KindUpdateDoc, Key: base, Fields: docFields,
					Val: uint64(u+1)<<24 | seq}
			}
			return Op{Kind: KindReadDoc, Key: base, Fields: docFields}
		}
		usr.Observe = func(op Op, res Result) error {
			if res.Err != "" {
				return fmt.Errorf("document: %s op failed: %s", op.Kind, res.Err)
			}
			if op.Kind == KindReadDoc {
				for _, v := range res.Vals {
					if v != res.Vals[0] {
						return fmt.Errorf("document: torn read of doc %d: fields %v",
							op.Key/docFields, res.Vals)
					}
				}
			}
			return nil
		}
		return usr
	}
	w.check = func(s *Store, tot Totals) error {
		r := rng.New(1)
		for d := uint64(0); d < docs(w); d++ {
			vals, err := s.ReadDoc(-1, r, d*docFields, docFields)
			if err != nil {
				return err
			}
			for _, v := range vals {
				if v != vals[0] {
					return fmt.Errorf("document: doc %d committed fields differ: %v", d, vals)
				}
			}
		}
		return nil
	}
	return finish(w, opt, 1.1)
}
