package txkv

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"txconflict/internal/metrics"
	"txconflict/internal/rng"
	"txconflict/internal/stm"
)

// promFamilies is the exposition surface /metrics promises: the four
// latency summaries, the abort taxonomy, the sampled phase timers,
// and the runtime/control-plane gauges. smoke-txkvd and the churn
// test both fail if any family goes missing.
var promFamilies = []string{
	"txstm_attempt_latency_seconds",
	"txstm_commit_latency_seconds",
	"txstm_grace_wait_seconds",
	"txstm_combiner_drain_seconds",
	"txstm_aborted_attempts_total",
	"txstm_commit_phase_seconds_total",
	"txstm_commit_phase_samples_total",
	"txstm_phase_sample_interval",
	"txstm_commits_total",
	"txstm_aborts_total",
	"txkv_store_keys",
	"txstm_policy_swaps_total",
	"txstm_k_estimate",
}

// checkExposition parses a Prometheus text-format (0.0.4) body and
// fails the test on any structural violation: a sample without a
// preceding TYPE line for its family, an unparsable value, or a
// missing required family. It returns the set of family names seen.
func checkExposition(t *testing.T, body string) map[string]string {
	t.Helper()
	families := map[string]string{} // name -> type
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				families[parts[2]] = parts[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form %q", ln+1, line)
		}
		// Sample line: name[{labels}] value
		name := line
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if j := strings.LastIndexByte(line, '}'); j < i {
				t.Fatalf("line %d: unbalanced labels in %q", ln+1, line)
			}
			name = name[:i]
		} else if i := strings.IndexByte(name, ' '); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_count"), "_sum")
		if _, ok := families[base]; !ok {
			t.Fatalf("line %d: sample %q precedes its TYPE line", ln+1, name)
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", ln+1, val, err)
		}
	}
	for _, f := range promFamilies {
		if _, ok := families[f]; !ok {
			t.Errorf("exposition missing family %q", f)
		}
	}
	return families
}

// scrape fetches /metrics and returns the body, checking status and
// content type.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestMetricsExposition drives real traffic through a metrics-enabled
// server and validates the full /metrics contract: parseable 0.0.4
// exposition, every promised family, every abort-reason label, the
// quantile ladder on the commit-latency summary, and agreement
// between the exposed commit counter and the runtime's ground truth.
func TestMetricsExposition(t *testing.T) {
	w, err := ByName("document", Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := stm.DefaultConfig()
	cfg.Lazy = true
	cfg.CommitBatch = 4
	cfg.Metrics = metrics.NewPlane(4, 4)
	store := w.NewStore(Config{STM: cfg})
	sv := NewServer(store, 4, 7)
	defer sv.Close()
	ts := httptest.NewServer(sv)
	defer ts.Close()

	if _, err := w.RunLocal(store, GenConfig{
		Users: 4, Batch: 16, Duration: 60 * time.Millisecond, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}

	body := scrape(t, ts.URL)
	checkExposition(t, body)
	for r := 0; r < metrics.NumAbortReasons; r++ {
		want := `reason="` + metrics.AbortReason(r).String() + `"`
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing abort series %s", want)
		}
	}
	for _, q := range []string{`quantile="0.5"`, `quantile="0.9"`, `quantile="0.99"`, `quantile="0.999"`} {
		if !strings.Contains(body, "txstm_commit_latency_seconds{"+q+"}") {
			t.Errorf("commit latency summary missing %s", q)
		}
	}
	// The exposed histogram count matches the runtime counter (the
	// store is quiesced between RunLocal and the scrape).
	commits := store.Runtime().Stats.Commits.Load()
	want := "txstm_commit_latency_seconds_count " + strconv.FormatUint(commits, 10)
	if !strings.Contains(body, want) {
		t.Errorf("exposition lacks %q (runtime commits = %d)", want, commits)
	}
	if commits == 0 {
		t.Fatal("no commits recorded — the traffic phase measured nothing")
	}
}

// TestMetricsScrapeChurn is the -race exercise for the read path:
// concurrent /metrics scrapes while live traffic mutates the plane
// and a policy churner swaps the commit lane underneath both. Every
// scrape must still parse as well-formed exposition with the full
// family set.
func TestMetricsScrapeChurn(t *testing.T) {
	w, err := ByName("hotspot-counter", Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := stm.DefaultConfig()
	cfg.Lazy = true
	cfg.CommitBatch = 4
	cfg.Metrics = metrics.NewPlane(4, 4)
	store := w.NewStore(Config{STM: cfg})
	sv := NewServer(store, 4, 11)
	defer sv.Close()
	ts := httptest.NewServer(sv)
	defer ts.Close()

	d := 120 * time.Millisecond
	if testing.Short() {
		d = 40 * time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Policy churner: flips the group-commit lane and the grace
	// budget, so scrapes race real SetPolicy swaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rt := store.Runtime()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := rt.Policy()
			if i%2 == 0 {
				p.CommitBatch = 0
			} else {
				p.CommitBatch = 4
			}
			rt.SetPolicy(p)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Scrapers: parse every body in full.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				checkExposition(t, scrape(t, ts.URL))
			}
		}()
	}

	// Live traffic over the wire for the duration.
	res, err := w.Run(func(u int, r *rng.Rand) Client {
		return &HTTPClient{Base: ts.URL}
	}, GenConfig{Users: 4, Batch: 16, Duration: d, Seed: 5})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations served during churn")
	}
	if err := store.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
