package txkv

import (
	"fmt"

	"txconflict/internal/rng"
)

// Op is one keyed operation in a batch request — the wire unit of
// the txkvd front-end and the load generator. Kind selects the
// operation; unused fields are ignored.
type Op struct {
	Kind   string `json:"op"`
	Key    uint64 `json:"key"`
	Val    uint64 `json:"val,omitempty"`
	Fields int    `json:"fields,omitempty"` // document ops
}

// Op kinds. Each op executes as its own transaction; a batch
// amortizes the network round trip, not the commit.
const (
	KindGet       = "get"
	KindPut       = "put"
	KindDelete    = "del"
	KindAdd       = "add"
	KindUpdateDoc = "updatedoc"
	KindReadDoc   = "readdoc"
)

// Result is one op's outcome. Err carries user-level errors (map
// full, bad key, unknown kind); transactional retries never surface
// here — the runtime retries until commit.
type Result struct {
	Val   uint64   `json:"val,omitempty"`
	Vals  []uint64 `json:"vals,omitempty"` // readdoc
	Found bool     `json:"found,omitempty"`
	Err   string   `json:"err,omitempty"`
}

// Apply executes one op as a transaction on the store.
func (s *Store) Apply(worker int, r *rng.Rand, op Op) Result {
	switch op.Kind {
	case KindGet:
		v, ok, err := s.Get(worker, r, op.Key)
		return result(Result{Val: v, Found: ok}, err)
	case KindPut:
		return result(Result{}, s.Put(worker, r, op.Key, op.Val))
	case KindDelete:
		ok, err := s.Delete(worker, r, op.Key)
		return result(Result{Found: ok}, err)
	case KindAdd:
		v, err := s.Add(worker, r, op.Key, op.Val)
		return result(Result{Val: v}, err)
	case KindUpdateDoc:
		if op.Fields <= 0 {
			return Result{Err: "txkv: updatedoc with no fields"}
		}
		return result(Result{}, s.UpdateDoc(worker, r, op.Key, op.Fields, op.Val))
	case KindReadDoc:
		if op.Fields <= 0 {
			return Result{Err: "txkv: readdoc with no fields"}
		}
		vals, err := s.ReadDoc(worker, r, op.Key, op.Fields)
		return result(Result{Vals: vals}, err)
	default:
		return Result{Err: fmt.Sprintf("txkv: unknown op kind %q", op.Kind)}
	}
}

// ApplyBatch executes a batch in order, one transaction per op.
func (s *Store) ApplyBatch(worker int, r *rng.Rand, ops []Op) []Result {
	out := make([]Result, len(ops))
	for i, op := range ops {
		out[i] = s.Apply(worker, r, op)
	}
	return out
}

func result(res Result, err error) Result {
	if err != nil {
		res.Err = err.Error()
	}
	return res
}
