package txkv

import (
	"fmt"
	"testing"
	"time"

	"txconflict/internal/rng"
	"txconflict/internal/stm"
)

// TestWorkloadInvariants is the txkv cross-mode invariant matrix,
// the keyed-traffic extension of the scenario parity suite: every
// registered workload, under real concurrency, on all three commit
// paths (eager / lazy / lazy+CommitBatch=4). After each run the
// store must pass its structural checks — occupancy vs live-key
// count, index-chain reachability and class consistency, probe
// integrity — plus the workload's semantic check (counter sums,
// document all-or-nothing visibility). Run under -race in CI
// (make race-short).
func TestWorkloadInvariants(t *testing.T) {
	users := 4
	d := 60 * time.Millisecond
	if testing.Short() {
		d = 25 * time.Millisecond
	}
	for _, wname := range Names() {
		for _, m := range modes() {
			t.Run(fmt.Sprintf("%s/%s", wname, m.name), func(t *testing.T) {
				w, err := ByName(wname, Options{})
				if err != nil {
					t.Fatal(err)
				}
				s := w.NewStore(Config{STM: m.cfg})
				res, err := w.RunLocal(s, GenConfig{
					Users:    users,
					Batch:    8,
					Duration: d,
					Seed:     7,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Ops == 0 {
					t.Fatal("no operations completed")
				}
			})
		}
	}
}

// TestConcurrentMixedOps hammers one store with every op kind at
// once — inserts, deletes, counter RMWs and document updates racing
// on overlapping keys — and holds the structural invariants. This is
// the adversarial mix no single workload produces.
func TestConcurrentMixedOps(t *testing.T) {
	for _, m := range modes() {
		t.Run(m.name, func(t *testing.T) {
			s := New(Config{Capacity: 256, IndexClasses: 8, STM: m.cfg})
			const users = 4
			d := 50 * time.Millisecond
			if testing.Short() {
				d = 20 * time.Millisecond
			}
			done := make(chan error, users)
			stop := make(chan struct{})
			for u := 0; u < users; u++ {
				u := u
				go func() {
					r := rng.New(uint64(100 + u))
					for {
						select {
						case <-stop:
							done <- nil
							return
						default:
						}
						key := uint64(r.Intn(96))
						var err error
						switch r.Intn(5) {
						case 0:
							err = s.Put(u, r, key, r.Uint64()&0xff)
						case 1:
							_, _, err = s.Get(u, r, key)
						case 2:
							_, err = s.Delete(u, r, key)
						case 3:
							_, err = s.Add(u, r, key, 1)
						case 4:
							base := (key / 4) * 4
							err = s.UpdateDoc(u, r, base, 4, r.Uint64()&0xff)
						}
						if err != nil {
							done <- err
							return
						}
					}
				}()
			}
			time.Sleep(d)
			close(stop)
			for u := 0; u < users; u++ {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestEscrowAddFolds drives pure Add traffic on a handful of hot
// keys through an escrow store on the folded batch path and holds
// the no-lost-updates invariant: the committed counter sum must
// equal the adds applied, even though every increment on an existing
// key committed as a blind delta the combiner may have folded. The
// structural checks run under the key-class discipline.
func TestEscrowAddFolds(t *testing.T) {
	cfg := stm.DefaultConfig()
	cfg.Lazy = true
	cfg.CommitBatch = 4
	cfg.FoldCommutative = true
	s := New(Config{Capacity: 64, IndexClasses: 8, EscrowCounters: true, STM: cfg})
	const users, addsPer, hotKeys = 4, 3000, 4
	done := make(chan error, users)
	for u := 0; u < users; u++ {
		u := u
		go func() {
			r := rng.New(uint64(200 + u))
			for i := 0; i < addsPer; i++ {
				if _, err := s.Add(u, r, uint64(r.Intn(hotKeys)), 1); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for u := 0; u < users; u++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	var sum uint64
	s.Range(func(_, val uint64) { sum += val })
	if want := uint64(users * addsPer); sum != want {
		t.Fatalf("committed counter sum %d, want %d adds", sum, want)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every post-insert Add records a delta, and the combiner folds
	// deltas even in singleton batches — so the fold ledger must move.
	if got := s.Runtime().Stats.FoldedCommits.Load(); got == 0 {
		t.Fatal("no folded commits on the escrow Add path")
	}
}

// TestEscrowMixedOps reruns the adversarial op mix on an escrow
// store across all three commit paths (plus folding on the batched
// one): deletes and puts race blind Adds on overlapping keys, so the
// key-classed index and the combiner's mixed delta/plain fallback
// both get exercised. Structural invariants must hold throughout.
func TestEscrowMixedOps(t *testing.T) {
	for _, m := range modes() {
		t.Run(m.name, func(t *testing.T) {
			cfg := m.cfg
			if cfg.CommitBatch > 0 {
				cfg.FoldCommutative = true
			}
			s := New(Config{Capacity: 256, IndexClasses: 8, EscrowCounters: true, STM: cfg})
			const users = 4
			d := 50 * time.Millisecond
			if testing.Short() {
				d = 20 * time.Millisecond
			}
			done := make(chan error, users)
			stop := make(chan struct{})
			for u := 0; u < users; u++ {
				u := u
				go func() {
					r := rng.New(uint64(300 + u))
					for {
						select {
						case <-stop:
							done <- nil
							return
						default:
						}
						key := uint64(r.Intn(32))
						var err error
						switch r.Intn(4) {
						case 0:
							err = s.Put(u, r, key, r.Uint64()&0xff)
						case 1:
							_, _, err = s.Get(u, r, key)
						case 2:
							_, err = s.Delete(u, r, key)
						default:
							_, err = s.Add(u, r, key, 1)
						}
						if err != nil {
							done <- err
							return
						}
					}
				}()
			}
			time.Sleep(d)
			close(stop)
			for u := 0; u < users; u++ {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPerfSmoke keeps the BENCH_txkv.json emitter honest: a minimal
// matrix must produce verified cells for every workload x mode pair.
func TestPerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf matrix is slow; covered by make bench-txkv in CI")
	}
	rep, err := Perf(PerfConfig{
		Procs:    []int{1, 2},
		Duration: 25 * time.Millisecond,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := len(Names()) * 4 * 2 // workloads x modes x procs
	if len(rep.Cells) != want {
		t.Fatalf("perf matrix has %d cells, want %d", len(rep.Cells), want)
	}
	for _, c := range rep.Cells {
		if c.OpsPerSec <= 0 || c.Commits == 0 {
			t.Fatalf("dead cell: %+v", c)
		}
	}
}

// stmConfigString pins the mode labels used by BENCH_txkv.json cells
// against the runtime's own Config.String rendering.
func TestPerfModeLabels(t *testing.T) {
	ms := perfModes(4)
	if ms[0].name != "eager" || ms[1].name != "lazy" || ms[2].name != "lazy+batch4" {
		t.Fatalf("mode labels: %q/%q/%q", ms[0].name, ms[1].name, ms[2].name)
	}
	if !ms[2].cfg.Lazy || ms[2].cfg.CommitBatch != 4 {
		t.Fatalf("lazy+batch4 config: %+v", ms[2].cfg)
	}
	if ms[3].name != "lazy+batch4+fold" || !ms[3].cfg.FoldCommutative || !ms[3].escrow {
		t.Fatalf("folded mode: %q %+v escrow=%v", ms[3].name, ms[3].cfg, ms[3].escrow)
	}
}
