package txkv

import (
	"errors"
	"testing"

	"txconflict/internal/rng"
	"txconflict/internal/stm"
)

func newTestStore(t *testing.T, cfg stm.Config, capacity int) *Store {
	t.Helper()
	return New(Config{Capacity: capacity, STM: cfg})
}

// modes returns the three commit paths every txkv test matrix runs:
// eager encounter-time locking, lazy (TL2), and lazy with the
// group-commit combiner — the same triple as the scenario cross-mode
// suite.
func modes() []struct {
	name string
	cfg  stm.Config
} {
	eager := stm.DefaultConfig()
	lazy := eager
	lazy.Lazy = true
	batched := lazy
	batched.CommitBatch = 4
	return []struct {
		name string
		cfg  stm.Config
	}{
		{"eager", eager},
		{"lazy", lazy},
		{"lazy+batch4", batched},
	}
}

func TestPutGetDelete(t *testing.T) {
	for _, m := range modes() {
		t.Run(m.name, func(t *testing.T) {
			s := newTestStore(t, m.cfg, 64)
			r := rng.New(1)
			if _, ok, _ := s.Get(-1, r, 7); ok {
				t.Fatal("empty store found key 7")
			}
			if err := s.Put(-1, r, 7, 70); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(-1, r, 0, 100); err != nil { // key 0 is legal
				t.Fatal(err)
			}
			v, ok, err := s.Get(-1, r, 7)
			if err != nil || !ok || v != 70 {
				t.Fatalf("Get(7) = %d,%v,%v want 70,true,nil", v, ok, err)
			}
			if err := s.Put(-1, r, 7, 71); err != nil { // update
				t.Fatal(err)
			}
			if v, _, _ := s.Get(-1, r, 7); v != 71 {
				t.Fatalf("after update Get(7) = %d, want 71", v)
			}
			if s.Len() != 2 {
				t.Fatalf("Len = %d, want 2", s.Len())
			}
			if del, _ := s.Delete(-1, r, 7); !del {
				t.Fatal("Delete(7) reported absent")
			}
			if del, _ := s.Delete(-1, r, 7); del {
				t.Fatal("second Delete(7) reported present")
			}
			if _, ok, _ := s.Get(-1, r, 7); ok {
				t.Fatal("deleted key still found")
			}
			if s.Len() != 1 {
				t.Fatalf("Len after delete = %d, want 1", s.Len())
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCollisionsAndTombstones forces every key onto a shared probe
// path by filling a tiny map, deleting from the middle, and
// reinserting — the open-addressing edge cases (tombstone reuse must
// not shadow a live copy deeper in the path).
func TestCollisionsAndTombstones(t *testing.T) {
	s := newTestStore(t, stm.DefaultConfig(), 8)
	r := rng.New(2)
	for k := uint64(0); k < 8; k++ {
		if err := s.Put(-1, r, k, k*10); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
	if err := s.Put(-1, r, 99, 1); !errors.Is(err, ErrFull) {
		t.Fatalf("Put into full map = %v, want ErrFull", err)
	}
	// Delete every other key, creating tombstones mid-path.
	for k := uint64(0); k < 8; k += 2 {
		if del, err := s.Delete(-1, r, k); err != nil || !del {
			t.Fatalf("Delete(%d) = %v,%v", k, del, err)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Updates through tombstoned paths must hit the live copy, not
	// insert a duplicate at a reused tombstone.
	for k := uint64(1); k < 8; k += 2 {
		if err := s.Put(-1, r, k, k*100); err != nil {
			t.Fatalf("Put(%d) through tombstones: %v", k, err)
		}
		if v, ok, _ := s.Get(-1, r, k); !ok || v != k*100 {
			t.Fatalf("Get(%d) = %d,%v want %d,true", k, v, ok, k*100)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	// Reinsertions reuse tombstones.
	for k := uint64(0); k < 8; k += 2 {
		if err := s.Put(-1, r, k, k); err != nil {
			t.Fatalf("reinsert Put(%d): %v", k, err)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len after reinserts = %d, want 8", s.Len())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAddCounter(t *testing.T) {
	for _, m := range modes() {
		t.Run(m.name, func(t *testing.T) {
			s := newTestStore(t, m.cfg, 64)
			r := rng.New(3)
			for i := 0; i < 10; i++ {
				v, err := s.Add(-1, r, 5, 3)
				if err != nil {
					t.Fatal(err)
				}
				if want := uint64(3 * (i + 1)); v != want {
					t.Fatalf("Add #%d returned %d, want %d", i, v, want)
				}
			}
			if v, ok, _ := s.Get(-1, r, 5); !ok || v != 30 {
				t.Fatalf("Get(5) = %d,%v want 30,true", v, ok)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDocumentAtomicity(t *testing.T) {
	s := newTestStore(t, stm.DefaultConfig(), 64)
	r := rng.New(4)
	if err := s.UpdateDoc(-1, r, 8, 4, 42); err != nil {
		t.Fatal(err)
	}
	vals, err := s.ReadDoc(-1, r, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for f, v := range vals {
		if v != 42 {
			t.Fatalf("doc field %d = %d, want 42", f, v)
		}
	}
	// Unwritten documents read all-zero (still all-equal).
	vals, err = s.ReadDoc(-1, r, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	for f, v := range vals {
		if v != 0 {
			t.Fatalf("unwritten doc field %d = %d, want 0", f, v)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestIndexClassRelink pins the secondary index's relink-on-update
// path: changing a value's class must move its bucket between class
// chains exactly once.
func TestIndexClassRelink(t *testing.T) {
	s := New(Config{Capacity: 32, IndexClasses: 4, STM: stm.DefaultConfig()})
	r := rng.New(5)
	if err := s.Put(-1, r, 1, 0); err != nil { // class 0
		t.Fatal(err)
	}
	if err := s.Put(-1, r, 1, 3); err != nil { // class 3: relink
		t.Fatal(err)
	}
	if err := s.Put(-1, r, 1, 7); err != nil { // class 3 again: no-op
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s.Get(-1, r, 1); !ok || v != 7 {
		t.Fatalf("Get(1) = %d,%v want 7,true", v, ok)
	}
}

func TestBadKeysRejected(t *testing.T) {
	s := newTestStore(t, stm.DefaultConfig(), 16)
	r := rng.New(6)
	for _, key := range []uint64{^uint64(0), ^uint64(0) - 1} {
		if err := s.Put(-1, r, key, 1); err == nil {
			t.Fatalf("Put(%#x) accepted an unrepresentable key", key)
		}
		if _, _, err := s.Get(-1, r, key); err == nil {
			t.Fatalf("Get(%#x) accepted an unrepresentable key", key)
		}
	}
}

func TestRangeVisitsLiveKeys(t *testing.T) {
	s := newTestStore(t, stm.DefaultConfig(), 64)
	r := rng.New(7)
	want := map[uint64]uint64{1: 10, 2: 20, 3: 30}
	for k, v := range want {
		if err := s.Put(-1, r, k, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Delete(-1, r, 2); err != nil {
		t.Fatal(err)
	}
	delete(want, 2)
	got := map[uint64]uint64{}
	s.Range(func(k, v uint64) { got[k] = v })
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%d] = %d, want %d", k, got[k], v)
		}
	}
}

func TestApplyBatch(t *testing.T) {
	s := newTestStore(t, stm.DefaultConfig(), 64)
	r := rng.New(8)
	res := s.ApplyBatch(-1, r, []Op{
		{Kind: KindPut, Key: 1, Val: 11},
		{Kind: KindAdd, Key: 1, Val: 4},
		{Kind: KindGet, Key: 1},
		{Kind: KindDelete, Key: 1},
		{Kind: KindGet, Key: 1},
		{Kind: "bogus"},
	})
	if res[0].Err != "" || res[1].Val != 15 || !res[2].Found || res[2].Val != 15 {
		t.Fatalf("batch prefix results: %+v", res[:3])
	}
	if !res[3].Found || res[4].Found {
		t.Fatalf("delete/get results: %+v", res[3:5])
	}
	if res[5].Err == "" {
		t.Fatal("unknown op kind did not error")
	}
}

// TestWorkloadRegistry pins the CLI-facing registry surface.
func TestWorkloadRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{"readmostly", "hotspot-counter", "document"} {
		if !Known(want) {
			t.Fatalf("Known(%q) = false; registered: %v", want, names)
		}
		w, err := ByName("  "+want+"  ", Options{}) // folding
		if err != nil {
			t.Fatal(err)
		}
		if w.Name() != want {
			t.Fatalf("ByName(%q).Name() = %q", want, w.Name())
		}
		if w.Keys() == 0 || w.Capacity() < int(w.Keys()) {
			t.Fatalf("%s sized keys=%d capacity=%d", want, w.Keys(), w.Capacity())
		}
	}
	if Known("nope") {
		t.Fatal("Known accepted an unregistered workload")
	}
	if _, err := ByName("nope", Options{}); err == nil {
		t.Fatal("ByName accepted an unregistered workload")
	}
	if len(Describe()) != len(names) {
		t.Fatalf("Describe lines %d != names %d", len(Describe()), len(names))
	}
}
