package txkv

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/rng"
	"txconflict/internal/stm"
	"txconflict/internal/tune"
)

// TestTxkvdSmoke is the CI smoke test for the serving stack (make
// smoke-txkv): start the txkvd core behind a real HTTP listener,
// drive batched requests from the closed-loop load generator over
// the wire for every registered workload, then verify the store's
// structural invariants, the workload's semantic check, and a clean
// pool shutdown. Runs under -race.
func TestTxkvdSmoke(t *testing.T) {
	for _, wname := range Names() {
		t.Run(wname, func(t *testing.T) {
			w, err := ByName(wname, Options{})
			if err != nil {
				t.Fatal(err)
			}
			cfg := stm.DefaultConfig()
			cfg.Lazy = true
			cfg.CommitBatch = 4 // serve through the group-commit combiner
			store := w.NewStore(Config{STM: cfg})
			sv := NewServer(store, 4, 42)
			ts := httptest.NewServer(sv)

			d := 80 * time.Millisecond
			if testing.Short() {
				d = 30 * time.Millisecond
			}
			res, err := w.Run(func(u int, r *rng.Rand) Client {
				return &HTTPClient{Base: ts.URL}
			}, GenConfig{Users: 4, Batch: 16, Duration: d, Seed: 99})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("no operations served")
			}
			t.Logf("%s: %d keyed ops over HTTP (%.0f ops/sec)", wname, res.Ops, res.OpsPerSec())

			// Quiesced: the server-side invariant endpoint and the local
			// checks must both pass.
			resp, err := http.Get(ts.URL + "/v1/check")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("/v1/check returned %s", resp.Status)
			}
			if err := store.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if err := w.Check(store, res.Totals); err != nil {
				t.Fatal(err)
			}

			// Clean shutdown: pool drains, then refuses work.
			ts.Close()
			sv.Close()
			if _, err := sv.Exec([]Op{{Kind: KindGet, Key: 1}}); err == nil {
				t.Fatal("Exec succeeded after Close")
			}
		})
	}
}

// TestServerEndpoints covers the non-batch surface: stats, health,
// bad requests, and the oversized-batch guard.
func TestServerEndpoints(t *testing.T) {
	w, err := ByName("readmostly", Options{})
	if err != nil {
		t.Fatal(err)
	}
	store := w.NewStore(Config{STM: stm.DefaultConfig()})
	sv := NewServer(store, 2, 1)
	defer sv.Close()
	ts := httptest.NewServer(sv)
	defer ts.Close()

	for _, path := range []string{"/healthz", "/v1/stats", "/v1/check"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %s", path, resp.Status)
		}
	}
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope = %s, want 404", resp.Status)
	}
	// GET on the batch endpoint is rejected.
	resp, err = http.Get(ts.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/batch = %s, want 405", resp.Status)
	}
	// Malformed JSON is a 400.
	resp, err = http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %s, want 400", resp.Status)
	}
	// Oversized batches are refused before allocation.
	if _, err := sv.Exec(make([]Op, maxBatchOps+1)); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

// TestPolicyEndpoint covers the control-plane surface: reading the
// live policy, manual overrides (with and without an attached tuner),
// resume, and rejection of malformed overrides.
func TestPolicyEndpoint(t *testing.T) {
	getView := func(ts *httptest.Server) tune.PolicyView {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/policy")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/policy = %s", resp.Status)
		}
		var v tune.PolicyView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	post := func(ts *httptest.Server, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/policy", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	t.Run("static", func(t *testing.T) {
		w, err := ByName("readmostly", Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := stm.DefaultConfig()
		cfg.Lazy = true
		store := w.NewStore(Config{STM: cfg})
		sv := NewServer(store, 2, 1)
		defer sv.Close()
		ts := httptest.NewServer(sv)
		defer ts.Close()

		if v := getView(ts); v.Auto || v.Policy != store.Runtime().Policy().String() {
			t.Fatalf("static view = %+v", v)
		}
		// Partial override applies directly to the runtime.
		resp := post(ts, `{"commitBatch":8,"strategy":"RRW"}`)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("override = %s", resp.Status)
		}
		p := store.Runtime().Policy()
		if p.CommitBatch != 8 || p.Strategy == nil || p.Strategy.Name() != "RRW" {
			t.Fatalf("policy after override = %s", p)
		}
		// Resume without a tuner is a conflict.
		resp = post(ts, `{"resume":true}`)
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("resume without tuner = %s, want 409", resp.Status)
		}
		// Unknown resolution and unknown strategy are 400s.
		for _, bad := range []string{`{"resolution":"sideways"}`, `{"strategy":"nope"}`, `{`} {
			resp = post(ts, bad)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("POST %s = %s, want 400", bad, resp.Status)
			}
		}
		// Stats carries the control-plane fields.
		resp, err = http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, key := range []string{"policy", "kEstimate", "policySwaps", "adaptive", "stm", "len"} {
			if _, ok := st[key]; !ok {
				t.Fatalf("/v1/stats missing %q: %v", key, st)
			}
		}
		if st["adaptive"] != false {
			t.Fatal("static server reports adaptive=true")
		}
	})

	t.Run("tuned", func(t *testing.T) {
		w, err := ByName("readmostly", Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := stm.DefaultConfig()
		cfg.Lazy = true
		sampler := tune.NewSampler(cfg.Trace)
		cfg.Trace = sampler
		store := w.NewStore(Config{STM: cfg})
		sv := NewServer(store, 2, 1)
		sv.AttachTuner(tune.New(store.Runtime(), sampler, tune.Limits{}, time.Hour))
		defer sv.Close()
		ts := httptest.NewServer(sv)
		defer ts.Close()

		if v := getView(ts); !v.Auto {
			t.Fatalf("tuned view = %+v, want auto", v)
		}
		// Override suspends the tuner and logs the decision.
		resp := post(ts, `{"resolution":"rw","hybrid":false}`)
		resp.Body.Close()
		v := getView(ts)
		if v.Auto {
			t.Fatal("tuner still auto after override")
		}
		if len(v.Decisions) == 0 {
			t.Fatal("override not logged")
		}
		if store.Runtime().Policy().Resolution != core.RequestorWins {
			t.Fatal("override not applied")
		}
		// Resume hands control back.
		resp = post(ts, `{"resume":true}`)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("resume = %s", resp.Status)
		}
		if v := getView(ts); !v.Auto {
			t.Fatal("tuner not auto after resume")
		}
	})
}
