package synth

import (
	"math"
	"strconv"
	"testing"

	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/rng"
	"txconflict/internal/strategy"
)

func TestPolicyFor(t *testing.T) {
	if policyFor(strategy.ExpRA{}) != core.RequestorAborts {
		t.Fatal("ExpRA policy")
	}
	if policyFor(strategy.MeanRA{}) != core.RequestorAborts {
		t.Fatal("MeanRA policy")
	}
	if policyFor(strategy.UniformRW{}) != core.RequestorWins {
		t.Fatal("UniformRW policy")
	}
	if policyFor(strategy.Deterministic{}) != core.RequestorWins {
		t.Fatal("DET policy")
	}
}

func TestRunCellBasics(t *testing.T) {
	r := rng.New(1)
	c := RunCell(strategy.UniformRW{}, dist.Exponential{Mu: 500}, 2000, 2, false, 20000, r)
	if c.MeanCost <= 0 || c.OptCost <= 0 {
		t.Fatalf("degenerate cell %+v", c)
	}
	if c.Ratio < 1 {
		t.Fatalf("online beat OPT on average: %+v", c)
	}
	if c.Ratio > 2.2 {
		t.Fatalf("RRW ratio %v way above 2 on a benign distribution", c.Ratio)
	}
}

// TestFigure2aShape verifies the paper's three observations on
// Figure 2a (B=2000 >> µ=500):
//  1. DET performs well (almost never aborts);
//  2. the mean-constrained strategies beat their unconstrained
//     versions;
//  3. RRW costs ~2×OPT... actually on non-adversarial distributions
//     it is *at most* 2×OPT; the ≈2 equality shows on adversarial
//     inputs (Figure 2c / E12).
func TestFigure2aShape(t *testing.T) {
	r := rng.New(7)
	b, mu := 2000.0, 500.0
	for _, d := range dist.Fig2Suite(mu) {
		det := RunCell(strategy.Deterministic{}, d, b, 2, false, 30000, r)
		rrw := RunCell(strategy.UniformRW{}, d, b, 2, false, 30000, r)
		rra := RunCell(strategy.ExpRA{}, d, b, 2, false, 30000, r)
		rrwMu := RunCell(strategy.MeanRW{}, d, b, 2, true, 30000, r)
		rraMu := RunCell(strategy.MeanRA{}, d, b, 2, true, 30000, r)
		// (1) DET ~ OPT here: it waits B >> typical lengths.
		if det.Ratio > 1.1 {
			t.Errorf("%s: DET ratio %v, expected near-optimal", d.Name(), det.Ratio)
		}
		// (2) constrained beats unconstrained.
		if rrwMu.MeanCost >= rrw.MeanCost {
			t.Errorf("%s: RRW(mu) %v not below RRW %v", d.Name(), rrwMu.MeanCost, rrw.MeanCost)
		}
		if rraMu.MeanCost >= rra.MeanCost {
			t.Errorf("%s: RRA(mu) %v not below RRA %v", d.Name(), rraMu.MeanCost, rra.MeanCost)
		}
		// (3) RA beats RW at k=2 (unconstrained and constrained).
		if rra.MeanCost >= rrw.MeanCost {
			t.Errorf("%s: RRA %v not below RRW %v", d.Name(), rra.MeanCost, rrw.MeanCost)
		}
	}
}

// TestFigure2bShape verifies the low-fixed-cost regime (B=200 <
// µ=500): DET degrades, and the constrained strategies fall back to
// the unconstrained ones (threshold inequality fails), so their costs
// coincide within noise.
func TestFigure2bShape(t *testing.T) {
	r := rng.New(9)
	b, mu := 200.0, 500.0
	if mu/b < 2*(2*math.Ln2-1) {
		t.Fatal("test premise broken: should be above the RW threshold")
	}
	var detWorse int
	for _, d := range dist.Fig2Suite(mu) {
		det := RunCell(strategy.Deterministic{}, d, b, 2, false, 30000, r)
		rrw := RunCell(strategy.UniformRW{}, d, b, 2, false, 30000, r)
		rrwMu := RunCell(strategy.MeanRW{}, d, b, 2, true, 30000, r)
		if det.Ratio > rrw.Ratio {
			detWorse++
		}
		// Fallback: constrained == unconstrained distributionally.
		if rel := math.Abs(rrwMu.MeanCost-rrw.MeanCost) / rrw.MeanCost; rel > 0.05 {
			t.Errorf("%s: RRW(mu) should fall back to RRW: %v vs %v", d.Name(), rrwMu.MeanCost, rrw.MeanCost)
		}
	}
	if detWorse < 3 {
		t.Errorf("DET degraded on only %d/5 distributions in the low-B regime", detWorse)
	}
}

func TestFigure2Table(t *testing.T) {
	tab := Figure2(2000, 500, 5000, 1)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Columns) != 7 { // distribution, OPT, 5 strategies
		t.Fatalf("cols = %v", tab.Columns)
	}
	// Every cost cell must be positive and parseable.
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v <= 0 {
				t.Fatalf("bad cell %q in %v", cell, row)
			}
		}
	}
}

// TestFigure2cDETCollapse: on DET's worst-case input, DET pays ~3x
// OPT while RRW stays at ~2x and RRA at ~e/(e-1).
func TestFigure2cDETCollapse(t *testing.T) {
	tab := Figure2c(1000, 200000, 3)
	ratios := map[string]float64{}
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q", row[3])
		}
		ratios[row[0]] = v
	}
	if r := ratios["DET"]; math.Abs(r-3) > 0.01 {
		t.Errorf("DET worst-case ratio %v, want ~3", r)
	}
	if r := ratios["RRW"]; math.Abs(r-2) > 0.05 {
		t.Errorf("RRW ratio %v, want ~2", r)
	}
	want := math.E / (math.E - 1)
	if r := ratios["RRA"]; math.Abs(r-want) > 0.05 {
		t.Errorf("RRA ratio %v, want ~%v", r, want)
	}
	if ratios["DET"] <= ratios["RRW"] {
		t.Error("DET should lose to RRW on its worst case")
	}
}

// TestAbortProbability verifies Section 5.3's densities: commit mass
// ~1.8/B for RW, ~2.4/B for RA, so RA aborts less often.
func TestAbortProbability(t *testing.T) {
	b := 1000.0
	tab := AbortProbability(b, 400000, 5)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var rwAbort, raAbort float64
	for _, row := range tab.Rows {
		measured, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[1])
		}
		analytic, _ := strconv.ParseFloat(row[2], 64)
		if math.Abs(measured-analytic) > 0.002 {
			t.Errorf("%s: measured %v vs analytic %v", row[0], measured, analytic)
		}
		switch row[0] {
		case "RRW(mu)":
			rwAbort = measured
		case "RRA(mu)":
			raAbort = measured
		}
	}
	if !(raAbort < rwAbort) {
		t.Errorf("RA abort prob %v should be below RW %v", raAbort, rwAbort)
	}
}

func TestCrossover(t *testing.T) {
	tab := Crossover(8)
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][3] != "RA" {
		t.Errorf("k=2 winner = %s, want RA", tab.Rows[0][3])
	}
	for _, row := range tab.Rows[1:] {
		if row[3] != "RW" {
			t.Errorf("k=%s winner = %s, want RW", row[0], row[3])
		}
	}
}

func TestRatioValidation(t *testing.T) {
	tab := RatioValidation(1000, 40000, 11)
	for _, row := range tab.Rows {
		emp, _ := strconv.ParseFloat(row[3], 64)
		ana, _ := strconv.ParseFloat(row[4], 64)
		if emp > ana*1.05 {
			t.Errorf("%s k=%s: empirical ratio %v above analytic %v", row[0], row[2], emp, ana)
		}
		if emp < ana*0.5 {
			t.Errorf("%s k=%s: empirical ratio %v suspiciously low vs %v (bad sweep?)", row[0], row[2], emp, ana)
		}
	}
}

func BenchmarkFigure2Cell(b *testing.B) {
	r := rng.New(1)
	d := dist.Exponential{Mu: 500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunCell(strategy.UniformRW{}, d, 2000, 2, false, 100, r)
	}
}
