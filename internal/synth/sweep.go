package synth

import (
	"txconflict/internal/dist"
	"txconflict/internal/report"
	"txconflict/internal/rng"
	"txconflict/internal/strategy"
)

// Sweep runs the Figure 2 cell protocol over an arbitrary set of
// length distributions and chain length k: the scenario-diversity
// extension of Figure 2, used by synthbench to evaluate the
// strategies on heavy-tailed (pareto, lognormal), rank-skewed (zipf)
// and trace-replay (empirical) workloads the paper's figure does not
// cover.
func Sweep(dists []dist.Sampler, b float64, k, trials int, seed uint64) *report.Table {
	r := rng.New(seed)
	strategies := strategy.Fig2Set()
	t := &report.Table{
		Title:   "Distribution sweep: average conflict cost by strategy",
		Columns: []string{"distribution", "OPT"},
	}
	for _, s := range strategies {
		t.Columns = append(t.Columns, s.Name())
	}
	for _, d := range dists {
		row := []interface{}{d.Name()}
		var optVal float64
		cells := make([]Cell, 0, len(strategies))
		for _, s := range strategies {
			c := RunCell(s, d, b, k, usesMean(s), trials, r)
			cells = append(cells, c)
			optVal = c.OptCost
		}
		row = append(row, optVal)
		for _, c := range cells {
			row = append(row, c.MeanCost)
		}
		t.AddRow(row...)
	}
	t.AddNote("B=%g, k=%d, %d trials per cell; cost model of Section 4", b, k, trials)
	return t
}

// ExtendedSweep is Sweep over the full extended distribution suite
// (Fig2Suite plus pareto, zipf and the built-in empirical trace).
func ExtendedSweep(b, mu float64, k, trials int, seed uint64) *report.Table {
	return Sweep(dist.ExtendedSuite(mu), b, k, trials, seed)
}
