// Package synth reimplements the paper's Section 8.1 synthetic
// testbed: the transaction length is drawn from a distribution, the
// interrupt point is uniform over the length, the strategy picks the
// grace period, and the conflict cost follows Section 4's model.
// It regenerates Figure 2 (a, b, c) plus the abort-probability
// comparison of Section 5.3 and the RW-vs-RA crossover of
// Sections 5.3/5.4.
package synth

import (
	"math"

	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/report"
	"txconflict/internal/rng"
	"txconflict/internal/stats"
	"txconflict/internal/strategy"
)

// policyFor returns the cost-model policy a Figure 2 strategy is
// evaluated under (RRA variants use requestor aborts, the rest
// requestor wins).
func policyFor(s core.Strategy) core.Policy {
	switch s.(type) {
	case strategy.ExpRA, strategy.MeanRA:
		return core.RequestorAborts
	default:
		return core.RequestorWins
	}
}

// Cell is the outcome of one (strategy, distribution) cell.
type Cell struct {
	Strategy string
	Dist     string
	MeanCost float64
	CI95     float64
	OptCost  float64
	// Ratio is MeanCost / OptCost.
	Ratio float64
}

// RunCell evaluates one strategy against one length distribution
// with the Section 8.1 protocol.
func RunCell(s core.Strategy, d dist.Sampler, b float64, k int, feedMean bool, trials int, r *rng.Rand) Cell {
	pol := policyFor(s)
	var cost, opt stats.Welford
	for i := 0; i < trials; i++ {
		length := d.Sample(r)
		if length <= 0 {
			length = 1
		}
		interrupt := r.Float64() * length
		remaining := length - interrupt
		conf := core.Conflict{Policy: pol, K: k, B: b}
		if feedMean {
			conf.Mean = d.Mean()
		}
		x := s.Delay(conf, r)
		cost.Add(core.Cost(conf, x, remaining))
		opt.Add(math.Min(remaining*float64(k-1), b))
	}
	c := Cell{
		Strategy: s.Name(),
		Dist:     d.Name(),
		MeanCost: cost.Mean(),
		CI95:     cost.CI95(),
		OptCost:  opt.Mean(),
	}
	c.Ratio = stats.Ratio(c.MeanCost, c.OptCost)
	return c
}

// Figure2 regenerates Figure 2a (b=2000, µ=500) or 2b (b=200,
// µ=500): average conflict cost of each strategy across the five
// length distributions, normalized columns plus the offline optimum.
func Figure2(b, mu float64, trials int, seed uint64) *report.Table {
	t := Sweep(dist.Fig2Suite(mu), b, 2, trials, seed)
	t.Title = figTitle(b, mu)
	t.Notes = nil
	t.AddNote("B=%g, µ=%g, %d trials per cell; cost model of Section 4 with k=2", b, mu, trials)
	return t
}

func usesMean(s core.Strategy) bool {
	switch s.(type) {
	case strategy.MeanRW, strategy.MeanRA:
		return true
	default:
		return false
	}
}

func figTitle(b, mu float64) string {
	if b > mu {
		return "Figure 2a: average conflict cost, high fixed cost"
	}
	return "Figure 2b: average conflict cost, low fixed cost"
}

// Figure2c regenerates Figure 2c: the adversary plays the worst-case
// remaining time for the deterministic strategy (remaining just above
// DET's abort point), where DET pays ~3B while the randomized
// strategies stay near their ratios.
func Figure2c(b float64, trials int, seed uint64) *report.Table {
	r := rng.New(seed)
	strategies := strategy.Fig2Set()
	t := &report.Table{
		Title:   "Figure 2c: worst-case distribution for DET",
		Columns: []string{"strategy", "mean cost", "OPT", "ratio"},
	}
	remaining := b + 1e-9 // just above DET's k=2 abort point x=B
	for _, s := range strategies {
		pol := policyFor(s)
		var cost stats.Welford
		for i := 0; i < trials; i++ {
			conf := core.Conflict{Policy: pol, K: 2, B: b}
			if usesMean(s) {
				conf.Mean = remaining / 2 // uniform interrupt over 2B
			}
			x := s.Delay(conf, r)
			cost.Add(core.Cost(conf, x, remaining))
		}
		opt := math.Min(remaining, b)
		t.AddRow(s.Name(), cost.Mean(), opt, cost.Mean()/opt)
	}
	t.AddNote("adversary sets remaining time D = B+ε; DET waits B and still aborts, paying 3B")
	return t
}

// AbortProbability reproduces the Section 5.3 comparison: with the
// adversary at y = B, the probability that the mean-constrained
// strategies commit the receiver is the upper tail of their delay
// densities near B — about 1.8/B per unit step for requestor wins
// and 2.4/B for requestor aborts, so requestor aborts is less likely
// to abort under the same conditions.
func AbortProbability(b float64, trials int, seed uint64) *report.Table {
	r := rng.New(seed)
	t := &report.Table{
		Title:   "Section 5.3: abort probability at y = B (mean-constrained strategies)",
		Columns: []string{"strategy", "P[abort] measured", "P[abort] analytic", "tail density at B (×B)"},
	}
	// Adversary one unit short of the cap: commit iff x >= B-1,
	// whose probability approximates the density at B.
	d := b - 1
	mu := 1.0 // deep in the constrained regime
	cases := []struct {
		s       core.Strategy
		pol     core.Policy
		density float64
	}{
		{strategy.MeanRW{}, core.RequestorWins, math.Ln2 / (b * (2*math.Ln2 - 1))},
		{strategy.MeanRA{}, core.RequestorAborts, (math.E - 1) / (b * (math.E - 2))},
	}
	for _, c := range cases {
		aborts := 0
		for i := 0; i < trials; i++ {
			conf := core.Conflict{Policy: c.pol, K: 2, B: b, Mean: mu}
			if c.s.Delay(conf, r) < d {
				aborts++
			}
		}
		measured := float64(aborts) / float64(trials)
		analytic := 1 - c.density // per unit step at the edge
		t.AddRow(c.s.Name(), measured, analytic, c.density*b)
	}
	t.AddNote("requestor aborts keeps the receiver alive more often: 2.4/B vs 1.8/B commit mass")
	return t
}

// Crossover tabulates the analytic competitive ratios of the optimal
// RW and RA strategies as the conflict chain k grows (Sections
// 5.3-5.4): RA wins at k=2, RW wins for k >= 3.
func Crossover(maxK int) *report.Table {
	t := &report.Table{
		Title:   "RW vs RA competitive ratio by chain length k",
		Columns: []string{"k", "RRW* ratio", "RRA ratio", "better"},
	}
	for k := 2; k <= maxK; k++ {
		rw := strategy.GeneralRW{}.Ratio(core.Conflict{Policy: core.RequestorWins, K: k, B: 1})
		ra := strategy.ExpRA{}.Ratio(core.Conflict{Policy: core.RequestorAborts, K: k, B: 1})
		better := "RW"
		if ra < rw {
			better = "RA"
		}
		t.AddRow(k, rw, ra, better)
	}
	t.AddNote("hybrid policy (Section 9): requestor aborts at k=2, requestor wins for chains")
	return t
}

// RatioValidation sweeps adversarial remaining times and reports the
// worst empirical competitive ratio of each strategy against its
// analytic value (experiment E12).
func RatioValidation(b float64, samples int, seed uint64) *report.Table {
	r := rng.New(seed)
	t := &report.Table{
		Title:   "Empirical worst-case competitive ratio vs analytic",
		Columns: []string{"strategy", "policy", "k", "empirical", "analytic"},
	}
	type tc struct {
		s   core.Strategy
		pol core.Policy
		k   int
	}
	cases := []tc{
		{strategy.UniformRW{}, core.RequestorWins, 2},
		{strategy.GeneralRW{}, core.RequestorWins, 4},
		{strategy.ExpRA{}, core.RequestorAborts, 2},
		{strategy.ExpRA{}, core.RequestorAborts, 4},
		{strategy.Deterministic{}, core.RequestorWins, 2},
		{strategy.Deterministic{}, core.RequestorWins, 3},
	}
	for _, c := range cases {
		conf := core.Conflict{Policy: c.pol, K: c.k, B: b}
		// Sweep from b/20: the max over many noisy per-point ratio
		// estimates biases upward at tiny d, where the cost variance
		// explodes (rare aborts cost ~B against an OPT of ~d).
		worst := core.WorstCaseRatio(conf, c.s, b/20, 2*b, 80, samples, r)
		analytic := c.s.(strategy.Analytic).Ratio(conf)
		t.AddRow(c.s.Name(), c.pol.String(), c.k, worst, analytic)
	}
	return t
}
