package synth

import (
	"strconv"
	"testing"

	"txconflict/internal/dist"
)

func TestExtendedSweepShape(t *testing.T) {
	tab := ExtendedSweep(2000, 500, 2, 5000, 1)
	if want := len(dist.ExtendedSuite(500)); len(tab.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), want)
	}
	if len(tab.Columns) != 7 { // distribution, OPT, 5 strategies
		t.Fatalf("cols = %v", tab.Columns)
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v <= 0 {
				t.Fatalf("bad cell %q in %v", cell, row)
			}
		}
	}
}

// TestSweepChains checks the k > 2 path: every cost stays positive
// and the online strategies never beat the clairvoyant optimum on
// average.
func TestSweepChains(t *testing.T) {
	tab := Sweep(dist.Fig2Suite(300), 1000, 4, 5000, 7)
	for _, row := range tab.Rows {
		opt, err := strconv.ParseFloat(row[1], 64)
		if err != nil || opt <= 0 {
			t.Fatalf("bad OPT cell %q", row[1])
		}
		for _, cell := range row[2:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			if v < opt*0.99 {
				t.Errorf("%s: online cost %v below OPT %v", row[0], v, opt)
			}
		}
	}
}
