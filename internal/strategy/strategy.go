// Package strategy implements every grace-period decision algorithm
// from "The Transactional Conflict Problem" (SPAA 2018):
//
//   - Immediate        — abort at once (the NO_DELAY baseline)
//   - Fixed            — a hand-tuned constant delay (DELAY_TUNED)
//   - Deterministic    — Theorem 4: wait exactly B/(k-1) (DET)
//   - UniformRW        — Theorem 5 unconstrained: uniform on
//     [0, B/(k-1)], 2-competitive (RRW / DELAY_RAND)
//   - GeneralRW        — Theorem 6 unconstrained optimum for k >= 3
//   - MeanRW           — Theorems 5/6 mean-constrained optimum (RRW(µ))
//   - ExpRA            — Theorems 1/3 unconstrained requestor-aborts
//     optimum, the continuous ski-rental strategy (RRA)
//   - MeanRA           — Theorems 2/3 mean-constrained requestor-aborts
//     optimum (RRA(µ))
//   - Hybrid           — Section 9: requestor-aborts for k = 2,
//     requestor-wins for longer chains
//
// Every randomized strategy also exposes its density, CDF and support
// so that property tests can verify normalization, positivity, and
// agreement between closed-form CDFs and numerically integrated PDFs.
//
// Erratum note: the printed form of Theorem 6's mean-constrained PDF
// is negative at x=0 for k=3 and its Lagrange corner gives a
// competitive ratio below 1, which is impossible; re-deriving the
// corner from the paper's own constraints (normalization + p(0) >= 0
// binding) yields
//
//	p(x) = (k-1)^k [(B+x)^{k-2} - B^{k-2}] / (B^{k-1} T),
//	T = k^{k-1} - 2(k-1)^{k-1},
//
// with ratio 1 + µ(k-2)(k-1)^{k-1}/(2BT) under the threshold
// µ/B < 2T/((k-2)S), S = k^{k-1} - (k-1)^{k-1}. At the threshold this
// ratio is exactly continuous with the unconstrained optimum
// k^{k-1}/S, mirroring the verified k=2 structure of Theorem 5; that
// continuity check is enforced in the tests.
package strategy

import (
	"fmt"
	"math"

	"txconflict/internal/core"
	"txconflict/internal/rng"
)

// Distribution is implemented by randomized strategies; it exposes the
// delay density for verification and analysis.
type Distribution interface {
	core.Strategy
	// PDF evaluates the delay density at x for the given conflict.
	PDF(c core.Conflict, x float64) float64
	// CDF evaluates the cumulative distribution at x.
	CDF(c core.Conflict, x float64) float64
	// Support returns the interval [lo, hi] outside which the
	// density is zero.
	Support(c core.Conflict) (lo, hi float64)
}

// Analytic is implemented by strategies with a closed-form
// competitive ratio.
type Analytic interface {
	// Ratio returns the analytic competitive ratio for the conflict
	// parameters (B, k, and µ when used).
	Ratio(c core.Conflict) float64
}

// chainK clamps the conflict chain length to at least 2.
func chainK(c core.Conflict) int {
	if c.K < 2 {
		return 2
	}
	return c.K
}

// Immediate aborts without any grace period: the NO_DELAY baseline of
// Section 8.2.
type Immediate struct{}

// Delay returns 0.
func (Immediate) Delay(core.Conflict, *rng.Rand) float64 { return 0 }

// Name implements core.Strategy.
func (Immediate) Name() string { return "NO_DELAY" }

// Fixed waits a hand-chosen constant grace period, clamped to the
// useful support [0, B/(k-1)]. It models the paper's DELAY_TUNED
// baseline, where the tuner knows the workload's fast-path length.
type Fixed struct {
	// X is the tuned delay.
	X float64
}

// Delay returns min(X, MaxUsefulDelay).
func (f Fixed) Delay(c core.Conflict, _ *rng.Rand) float64 {
	return math.Min(f.X, core.MaxUsefulDelay(c))
}

// Name implements core.Strategy.
func (f Fixed) Name() string { return "DELAY_TUNED" }

// Deterministic is the optimal deterministic requestor-wins strategy
// of Theorem 4: always wait exactly B/(k-1).
type Deterministic struct{}

// Delay returns B/(k-1).
func (Deterministic) Delay(c core.Conflict, _ *rng.Rand) float64 {
	return c.B / float64(chainK(c)-1)
}

// Name implements core.Strategy.
func (Deterministic) Name() string { return "DET" }

// Ratio returns 2 + 1/(k-1) (Theorem 4).
func (Deterministic) Ratio(c core.Conflict) float64 {
	return 2 + 1/float64(chainK(c)-1)
}

// pow is a readability alias for math.Pow.
func pow(b, e float64) float64 { return math.Pow(b, e) }

// kPowers returns k^{k-1}, (k-1)^{k-1}, S = k^{k-1}-(k-1)^{k-1} and
// T = k^{k-1}-2(k-1)^{k-1} for the Theorem 6 family.
func kPowers(k int) (kk, k1k, s, tt float64) {
	kf := float64(k)
	kk = pow(kf, kf-1)
	k1k = pow(kf-1, kf-1)
	s = kk - k1k
	tt = kk - 2*k1k
	return
}

// String renders a strategy name with conflict context, for tables.
func Describe(s core.Strategy, c core.Conflict) string {
	if a, ok := s.(Analytic); ok {
		return fmt.Sprintf("%s (ratio %.3f)", s.Name(), a.Ratio(c))
	}
	return s.Name()
}
