package strategy

import (
	"fmt"
	"sort"
	"strings"

	"txconflict/internal/core"
)

// ByName resolves a strategy from its table name (case-insensitive).
// Recognized names: NO_DELAY, DELAY_TUNED:<x>, DET, RRW, RRW*,
// RRW(mu), RRA, RRA(mu), HYBRID.
func ByName(name string) (core.Strategy, error) {
	lower := strings.ToLower(strings.TrimSpace(name))
	if strings.HasPrefix(lower, "delay_tuned:") {
		var x float64
		if _, err := fmt.Sscanf(lower, "delay_tuned:%g", &x); err != nil {
			return nil, fmt.Errorf("strategy: bad tuned delay in %q: %v", name, err)
		}
		return Fixed{X: x}, nil
	}
	switch lower {
	case "no_delay", "nodelay", "immediate":
		return Immediate{}, nil
	case "det", "delay_det", "deterministic":
		return Deterministic{}, nil
	case "rrw", "delay_rand", "uniform":
		return UniformRW{}, nil
	case "rrw*", "generalrw":
		return GeneralRW{}, nil
	case "rrw(mu)", "rrwmu", "meanrw":
		return MeanRW{}, nil
	case "rra", "expra":
		return ExpRA{}, nil
	case "rra(mu)", "rramu", "meanra":
		return MeanRA{}, nil
	case "hybrid":
		return Hybrid{}, nil
	default:
		return nil, fmt.Errorf("strategy: unknown strategy %q (known: %s)", name, strings.Join(Names(), ", "))
	}
}

// Names lists the canonical registry names.
func Names() []string {
	n := []string{"NO_DELAY", "DELAY_TUNED:<x>", "DET", "RRW", "RRW*", "RRW(mu)", "RRA", "RRA(mu)", "HYBRID"}
	sort.Strings(n)
	return n
}

// Fig2Set returns the strategies compared in Figure 2 of the paper,
// in presentation order: RRW(µ), RRA(µ), RRW, RRA, DET.
func Fig2Set() []core.Strategy {
	return []core.Strategy{MeanRW{}, MeanRA{}, UniformRW{}, ExpRA{}, Deterministic{}}
}

// Fig3Set returns the HTM conflict-resolution variants of Figure 3:
// NO_DELAY, DELAY_TUNED (x must be filled in by the harness from
// workload knowledge), DELAY_DET, DELAY_RAND.
func Fig3Set(tuned float64) []core.Strategy {
	return []core.Strategy{Immediate{}, Fixed{X: tuned}, Deterministic{}, UniformRW{}}
}
