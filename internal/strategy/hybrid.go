package strategy

import (
	"math"

	"txconflict/internal/core"
	"txconflict/internal/rng"
)

// Hybrid realizes the strategy suggested in the paper's discussion
// (Sections 5.3 and 9): requestor-aborts is more efficient for
// two-transaction conflicts, requestor-wins for longer chains, so a
// system that can choose per conflict should alternate between the
// two. PreferredPolicy picks the policy; Delay then dispatches to the
// matching optimal strategy (mean-constrained when µ is known).
type Hybrid struct{}

// Name implements core.Strategy.
func (Hybrid) Name() string { return "HYBRID" }

// PreferredPolicy returns the policy whose optimal strategy has the
// smaller analytic competitive ratio for chain length k: requestor
// aborts at k = 2 (e/(e-1) < 2), requestor wins for k >= 3 (where
// k^{k-1}/S < e^{1/(k-1)}/(e^{1/(k-1)}-1)).
func (Hybrid) PreferredPolicy(k int) core.Policy {
	if k <= 2 {
		return core.RequestorAborts
	}
	return core.RequestorWins
}

// Delay dispatches to the optimal strategy for the preferred policy,
// overriding the conflict's own policy field.
func (h Hybrid) Delay(c core.Conflict, r *rng.Rand) float64 {
	c.Policy = h.PreferredPolicy(chainK(c))
	return h.delegate(c).Delay(c, r)
}

// Ratio returns the analytic ratio of the dispatched strategy.
func (h Hybrid) Ratio(c core.Conflict) float64 {
	c.Policy = h.PreferredPolicy(chainK(c))
	return h.delegate(c).(Analytic).Ratio(c)
}

func (Hybrid) delegate(c core.Conflict) core.Strategy {
	if c.Policy == core.RequestorAborts {
		if c.Mean > 0 {
			return MeanRA{}
		}
		return ExpRA{}
	}
	if c.Mean > 0 {
		return MeanRW{}
	}
	return GeneralRW{}
}

// BackoffB implements the multiplicative progress mechanism of
// Corollary 2: after `attempts` aborts the effective abort cost grows
// to base·factor^attempts, making the transaction ever less likely to
// be sacrificed. factor <= 1 disables backoff. The result saturates
// at maxB (pass +Inf for no cap).
func BackoffB(base float64, attempts int, factor, maxB float64) float64 {
	if factor <= 1 || attempts <= 0 {
		return math.Min(base, maxB)
	}
	b := base
	for i := 0; i < attempts; i++ {
		b *= factor
		if b >= maxB {
			return maxB
		}
	}
	return b
}

// AttemptBound returns Corollary 2's attempt bound
// log2(y) + log2(γ) + log2(k) - log2(B) + 2 (rounded up, at least 1):
// a transaction of length y that encounters γ conflicts commits
// within this many attempts with probability at least 1/2 under
// multiplicative backoff.
func AttemptBound(y, gamma float64, k int, b float64) int {
	v := math.Log2(y) + math.Log2(gamma) + math.Log2(float64(k)) - math.Log2(b) + 2
	n := int(math.Ceil(v))
	if n < 1 {
		n = 1
	}
	return n
}

// ForPolicy returns the paper's optimal strategy for a policy:
// mean-constrained when µ > 0 is carried by the conflict, otherwise
// the unconstrained optimum.
func ForPolicy(p core.Policy, mean bool) core.Strategy {
	switch {
	case p == core.RequestorAborts && mean:
		return MeanRA{}
	case p == core.RequestorAborts:
		return ExpRA{}
	case mean:
		return MeanRW{}
	default:
		return GeneralRW{}
	}
}
