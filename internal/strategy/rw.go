package strategy

import (
	"math"

	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/rng"
)

// ln4m1 is ln(4) - 1, the normalizing constant of Theorem 5's
// mean-constrained density.
var ln4m1 = math.Log(4) - 1

// UniformRW is the unconstrained randomized requestor-wins strategy
// of Theorem 5: the grace period is uniform on [0, B/(k-1)). It is
// optimal for k = 2 and 2-competitive for every k; its simplicity
// ("just choose a delay uniformly at random within some interval",
// Section 9) makes it the DELAY_RAND implementation candidate for
// real systems.
type UniformRW struct{}

// Delay draws uniformly from the useful support.
func (UniformRW) Delay(c core.Conflict, r *rng.Rand) float64 {
	return r.Float64() * core.MaxUsefulDelay(c)
}

// Name implements core.Strategy.
func (UniformRW) Name() string { return "RRW" }

// Ratio returns 2 (Theorem 5).
func (UniformRW) Ratio(core.Conflict) float64 { return 2 }

// PDF implements Distribution.
func (UniformRW) PDF(c core.Conflict, x float64) float64 {
	hi := core.MaxUsefulDelay(c)
	if x < 0 || x > hi {
		return 0
	}
	return 1 / hi
}

// CDF implements Distribution.
func (UniformRW) CDF(c core.Conflict, x float64) float64 {
	hi := core.MaxUsefulDelay(c)
	return dist.Clamp(x/hi, 0, 1)
}

// Support implements Distribution.
func (UniformRW) Support(c core.Conflict) (float64, float64) {
	return 0, core.MaxUsefulDelay(c)
}

// GeneralRW is the unconstrained optimal randomized requestor-wins
// strategy of Theorem 6 for conflict chains k >= 3:
//
//	p(x) = (k-1)^k (B+x)^{k-2} / (B^{k-1} S),   0 <= x <= B/(k-1),
//	S = k^{k-1} - (k-1)^{k-1},
//
// with competitive ratio k^{k-1}/S (which decreases from 2 at k=2
// towards e/(e-1) as k grows). For k = 2 it coincides with UniformRW.
type GeneralRW struct{}

// Delay samples by closed-form CDF inversion.
func (GeneralRW) Delay(c core.Conflict, r *rng.Rand) float64 {
	k := chainK(c)
	if k == 2 {
		return UniformRW{}.Delay(c, r)
	}
	_, k1k, s, _ := kPowers(k)
	u := r.Float64()
	// F(x) = (k-1)^{k-1} [(B+x)^{k-1} - B^{k-1}] / (B^{k-1} S)
	// => x = B [ (1 + u S/(k-1)^{k-1})^{1/(k-1)} - 1 ].
	return c.B * (pow(1+u*s/k1k, 1/float64(k-1)) - 1)
}

// Name implements core.Strategy.
func (GeneralRW) Name() string { return "RRW*" }

// Ratio returns k^{k-1}/S (Theorem 6, unconstrained corner).
func (GeneralRW) Ratio(c core.Conflict) float64 {
	k := chainK(c)
	if k == 2 {
		return 2
	}
	kk, _, s, _ := kPowers(k)
	return kk / s
}

// PDF implements Distribution.
func (GeneralRW) PDF(c core.Conflict, x float64) float64 {
	k := chainK(c)
	if k == 2 {
		return UniformRW{}.PDF(c, x)
	}
	hi := core.MaxUsefulDelay(c)
	if x < 0 || x > hi {
		return 0
	}
	_, _, s, _ := kPowers(k)
	kf := float64(k)
	return pow(kf-1, kf) * pow(c.B+x, kf-2) / (pow(c.B, kf-1) * s)
}

// CDF implements Distribution.
func (GeneralRW) CDF(c core.Conflict, x float64) float64 {
	k := chainK(c)
	if k == 2 {
		return UniformRW{}.CDF(c, x)
	}
	hi := core.MaxUsefulDelay(c)
	x = dist.Clamp(x, 0, hi)
	_, k1k, s, _ := kPowers(k)
	kf := float64(k)
	return k1k * (pow(c.B+x, kf-1) - pow(c.B, kf-1)) / (pow(c.B, kf-1) * s)
}

// Support implements Distribution.
func (GeneralRW) Support(c core.Conflict) (float64, float64) {
	return 0, core.MaxUsefulDelay(c)
}

// MeanRW is the mean-constrained randomized requestor-wins strategy:
// Theorem 5 for k = 2 and the (corrected, see the package comment)
// Theorem 6 for k >= 3. When the profiled mean µ is large relative to
// B the constrained corner is infeasible and the strategy falls back
// to the unconstrained optimum.
type MeanRW struct{}

// Name implements core.Strategy.
func (MeanRW) Name() string { return "RRW(mu)" }

// constrained reports whether the mean-constrained corner applies.
func (MeanRW) constrained(c core.Conflict) bool {
	if c.Mean <= 0 {
		return false
	}
	k := chainK(c)
	if k == 2 {
		return c.Mean/c.B < 2*ln4m1
	}
	_, _, s, tt := kPowers(k)
	return c.Mean/c.B < 2*tt/(float64(k-2)*s)
}

// Delay samples from the constrained density when applicable, else
// from the unconstrained optimum.
func (m MeanRW) Delay(c core.Conflict, r *rng.Rand) float64 {
	if !m.constrained(c) {
		return GeneralRW{}.Delay(c, r)
	}
	lo, hi := m.Support(c)
	u := r.Float64()
	cdf := func(x float64) float64 { return m.CDF(c, x) }
	return dist.InvertCDF(cdf, u, lo, hi, hi*1e-12)
}

// Ratio returns the analytic competitive ratio: Theorem 5's
// 1 + µ/(2B(ln4-1)) for k=2 and 1 + µ(k-2)(k-1)^{k-1}/(2BT) for
// k >= 3, or the unconstrained ratio when the threshold fails.
func (m MeanRW) Ratio(c core.Conflict) float64 {
	if !m.constrained(c) {
		return GeneralRW{}.Ratio(c)
	}
	k := chainK(c)
	if k == 2 {
		return 1 + c.Mean/(2*c.B*ln4m1)
	}
	_, k1k, _, tt := kPowers(k)
	return 1 + c.Mean*float64(k-2)*k1k/(2*c.B*tt)
}

// PDF implements Distribution.
func (m MeanRW) PDF(c core.Conflict, x float64) float64 {
	if !m.constrained(c) {
		return GeneralRW{}.PDF(c, x)
	}
	hi := core.MaxUsefulDelay(c)
	if x < 0 || x > hi {
		return 0
	}
	k := chainK(c)
	if k == 2 {
		// p(x) = ln((B+x)/B) / (B (ln4 - 1)).
		return math.Log((c.B+x)/c.B) / (c.B * ln4m1)
	}
	_, _, _, tt := kPowers(k)
	kf := float64(k)
	return pow(kf-1, kf) * (pow(c.B+x, kf-2) - pow(c.B, kf-2)) / (pow(c.B, kf-1) * tt)
}

// CDF implements Distribution.
func (m MeanRW) CDF(c core.Conflict, x float64) float64 {
	if !m.constrained(c) {
		return GeneralRW{}.CDF(c, x)
	}
	hi := core.MaxUsefulDelay(c)
	x = dist.Clamp(x, 0, hi)
	k := chainK(c)
	if k == 2 {
		// F(x) = [(B+x) ln((B+x)/B) - x] / (B (ln4-1)).
		return ((c.B+x)*math.Log((c.B+x)/c.B) - x) / (c.B * ln4m1)
	}
	_, k1k, _, tt := kPowers(k)
	kf := float64(k)
	num := pow(c.B+x, kf-1) - pow(c.B, kf-1) - (kf-1)*pow(c.B, kf-2)*x
	return k1k * num / (pow(c.B, kf-1) * tt)
}

// Support implements Distribution.
func (MeanRW) Support(c core.Conflict) (float64, float64) {
	return 0, core.MaxUsefulDelay(c)
}
