package strategy

import (
	"math"

	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/rng"
)

// raW returns W = (k-1)(e^{1/(k-1)} - 1) - 1, the normalizing
// constant of Theorem 3's mean-constrained density (W = e-2 at k=2).
func raW(k int) float64 {
	k1 := float64(k - 1)
	return k1*(math.Exp(1/k1)-1) - 1
}

// ExpRA is the unconstrained randomized requestor-aborts strategy —
// the continuous ski-rental optimum (Theorem 1) generalized to
// conflict chains by Theorem 3:
//
//	p(x) = e^{x/B} / (B (e^{1/(k-1)} - 1)),  0 <= x <= B/(k-1),
//
// with competitive ratio e^{1/(k-1)} / (e^{1/(k-1)} - 1), equal to
// e/(e-1) at k = 2 and growing roughly like k - 1/2 for long chains.
type ExpRA struct{}

// Delay samples by the closed-form inverse CDF
// x = B ln(1 + u (e^{1/(k-1)} - 1)).
func (ExpRA) Delay(c core.Conflict, r *rng.Rand) float64 {
	k := chainK(c)
	em1 := math.Expm1(1 / float64(k-1))
	return c.B * math.Log1p(r.Float64()*em1)
}

// Name implements core.Strategy.
func (ExpRA) Name() string { return "RRA" }

// Ratio returns e^{1/(k-1)} / (e^{1/(k-1)} - 1).
func (ExpRA) Ratio(c core.Conflict) float64 {
	k := chainK(c)
	e := math.Exp(1 / float64(k-1))
	return e / (e - 1)
}

// PDF implements Distribution.
func (ExpRA) PDF(c core.Conflict, x float64) float64 {
	hi := core.MaxUsefulDelay(c)
	if x < 0 || x > hi {
		return 0
	}
	k := chainK(c)
	em1 := math.Expm1(1 / float64(k-1))
	return math.Exp(x/c.B) / (c.B * em1)
}

// CDF implements Distribution.
func (ExpRA) CDF(c core.Conflict, x float64) float64 {
	hi := core.MaxUsefulDelay(c)
	x = dist.Clamp(x, 0, hi)
	k := chainK(c)
	em1 := math.Expm1(1 / float64(k-1))
	return math.Expm1(x/c.B) / em1
}

// Support implements Distribution.
func (ExpRA) Support(c core.Conflict) (float64, float64) {
	return 0, core.MaxUsefulDelay(c)
}

// MeanRA is the mean-constrained randomized requestor-aborts strategy
// of Theorem 2 (k = 2, after Khanafer et al.) and Theorem 3 (k > 2):
//
//	p(x) = (k-1)(e^{x/B} - 1) / (B W),  0 <= x <= B/(k-1),
//	W = (k-1)(e^{1/(k-1)} - 1) - 1,
//
// applicable when µ/B < 2W/(W+1) (equal to 2(e-2)/(e-1) at k=2,
// Theorem 2's threshold), with competitive ratio 1 + µ(k-1)/(2BW).
// Outside the threshold it falls back to ExpRA.
type MeanRA struct{}

// Name implements core.Strategy.
func (MeanRA) Name() string { return "RRA(mu)" }

// constrained reports whether the mean-constrained corner applies.
func (MeanRA) constrained(c core.Conflict) bool {
	if c.Mean <= 0 {
		return false
	}
	w := raW(chainK(c))
	return c.Mean/c.B < 2*w/(w+1)
}

// Delay samples from the constrained density when applicable.
func (m MeanRA) Delay(c core.Conflict, r *rng.Rand) float64 {
	if !m.constrained(c) {
		return ExpRA{}.Delay(c, r)
	}
	lo, hi := m.Support(c)
	u := r.Float64()
	cdf := func(x float64) float64 { return m.CDF(c, x) }
	return dist.InvertCDF(cdf, u, lo, hi, hi*1e-12)
}

// Ratio returns 1 + µ(k-1)/(2BW) under the threshold, else the
// unconstrained ratio.
func (m MeanRA) Ratio(c core.Conflict) float64 {
	if !m.constrained(c) {
		return ExpRA{}.Ratio(c)
	}
	k := chainK(c)
	return 1 + c.Mean*float64(k-1)/(2*c.B*raW(k))
}

// PDF implements Distribution.
func (m MeanRA) PDF(c core.Conflict, x float64) float64 {
	if !m.constrained(c) {
		return ExpRA{}.PDF(c, x)
	}
	hi := core.MaxUsefulDelay(c)
	if x < 0 || x > hi {
		return 0
	}
	k := chainK(c)
	return float64(k-1) * math.Expm1(x/c.B) / (c.B * raW(k))
}

// CDF implements Distribution.
func (m MeanRA) CDF(c core.Conflict, x float64) float64 {
	if !m.constrained(c) {
		return ExpRA{}.CDF(c, x)
	}
	hi := core.MaxUsefulDelay(c)
	x = dist.Clamp(x, 0, hi)
	k := chainK(c)
	// F(x) = (k-1) [B(e^{x/B}-1) - x] / (B W).
	return float64(k-1) * (c.B*math.Expm1(x/c.B) - x) / (c.B * raW(k))
}

// Support implements Distribution.
func (MeanRA) Support(c core.Conflict) (float64, float64) {
	return 0, core.MaxUsefulDelay(c)
}
