package strategy

import (
	"math"
	"testing"

	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/rng"
)

// conflicts under test: a spread of policies, chain lengths, budgets
// and means covering both constrained and unconstrained regimes.
func testConflicts() []core.Conflict {
	return []core.Conflict{
		{Policy: core.RequestorWins, K: 2, B: 2000, Mean: 500},
		{Policy: core.RequestorWins, K: 2, B: 200, Mean: 500},
		{Policy: core.RequestorWins, K: 3, B: 1000, Mean: 30},
		{Policy: core.RequestorWins, K: 5, B: 1000, Mean: 10},
		{Policy: core.RequestorWins, K: 8, B: 800},
		{Policy: core.RequestorAborts, K: 2, B: 2000, Mean: 500},
		{Policy: core.RequestorAborts, K: 2, B: 200, Mean: 500},
		{Policy: core.RequestorAborts, K: 3, B: 1000, Mean: 100},
		{Policy: core.RequestorAborts, K: 6, B: 900},
	}
}

// distributions returns every Distribution strategy applicable to the
// conflict's policy.
func distributionsFor(c core.Conflict) []Distribution {
	if c.Policy == core.RequestorAborts {
		return []Distribution{ExpRA{}, MeanRA{}}
	}
	return []Distribution{UniformRW{}, GeneralRW{}, MeanRW{}}
}

func TestPDFsIntegrateToOne(t *testing.T) {
	for _, c := range testConflicts() {
		for _, s := range distributionsFor(c) {
			lo, hi := s.Support(c)
			integral := dist.IntegratePDF(func(x float64) float64 { return s.PDF(c, x) }, lo, hi, 4000)
			if math.Abs(integral-1) > 1e-6 {
				t.Errorf("%s %+v: PDF integrates to %v", s.Name(), c, integral)
			}
		}
	}
}

func TestPDFsNonNegative(t *testing.T) {
	for _, c := range testConflicts() {
		for _, s := range distributionsFor(c) {
			lo, hi := s.Support(c)
			for i := 0; i <= 1000; i++ {
				x := lo + (hi-lo)*float64(i)/1000
				if p := s.PDF(c, x); p < 0 {
					t.Fatalf("%s %+v: PDF(%v) = %v < 0", s.Name(), c, x, p)
				}
			}
			if s.PDF(c, hi+1) != 0 || s.PDF(c, -1) != 0 {
				t.Errorf("%s %+v: PDF nonzero outside support", s.Name(), c)
			}
		}
	}
}

func TestCDFMatchesIntegratedPDF(t *testing.T) {
	for _, c := range testConflicts() {
		for _, s := range distributionsFor(c) {
			lo, hi := s.Support(c)
			numCDF := dist.CDFFromPDF(func(x float64) float64 { return s.PDF(c, x) }, lo, hi, 8000)
			for i := 0; i <= 20; i++ {
				x := lo + (hi-lo)*float64(i)/20
				want := numCDF(x)
				got := s.CDF(c, x)
				if math.Abs(got-want) > 2e-4 {
					t.Errorf("%s %+v: CDF(%v) = %v, integral says %v", s.Name(), c, x, got, want)
				}
			}
			if v := s.CDF(c, hi); math.Abs(v-1) > 1e-9 {
				t.Errorf("%s %+v: CDF(hi) = %v", s.Name(), c, v)
			}
			if v := s.CDF(c, lo); math.Abs(v) > 1e-9 {
				t.Errorf("%s %+v: CDF(lo) = %v", s.Name(), c, v)
			}
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	for _, c := range testConflicts() {
		for _, s := range distributionsFor(c) {
			lo, hi := s.Support(c)
			prev := -1.0
			for i := 0; i <= 500; i++ {
				x := lo + (hi-lo)*float64(i)/500
				v := s.CDF(c, x)
				if v < prev-1e-12 {
					t.Fatalf("%s %+v: CDF not monotone at %v", s.Name(), c, x)
				}
				prev = v
			}
		}
	}
}

func TestSamplesMatchCDF(t *testing.T) {
	// Kolmogorov-Smirnov-style check at fixed probe points.
	r := rng.New(202)
	const n = 100000
	for _, c := range testConflicts() {
		for _, s := range distributionsFor(c) {
			lo, hi := s.Support(c)
			probes := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
			counts := make([]int, len(probes))
			for i := 0; i < n; i++ {
				x := s.Delay(c, r)
				if x < lo-1e-9 || x > hi+1e-9 {
					t.Fatalf("%s %+v: sample %v outside support [%v,%v]", s.Name(), c, x, lo, hi)
				}
				for j, p := range probes {
					if x <= lo+(hi-lo)*p {
						counts[j]++
					}
				}
			}
			for j, p := range probes {
				want := s.CDF(c, lo+(hi-lo)*p)
				got := float64(counts[j]) / n
				if math.Abs(got-want) > 0.01 {
					t.Errorf("%s %+v: empirical CDF at probe %v = %v, analytic %v", s.Name(), c, p, got, want)
				}
			}
		}
	}
}

// TestEqualizerProperty verifies the defining property of the paper's
// optimal randomized strategies: the pointwise competitive ratio
// E[Cost]/OPT equals λ1 + λ2·d on the whole support (λ2 = 0 for the
// unconstrained strategies, so the ratio is flat and equal to the
// analytic competitive ratio).
func TestEqualizerProperty(t *testing.T) {
	r := rng.New(777)
	const samples = 400000
	type tc struct {
		c       core.Conflict
		s       core.Strategy
		lambda2 func(c core.Conflict) float64
	}
	zero := func(core.Conflict) float64 { return 0 }
	cases := []tc{
		{core.Conflict{Policy: core.RequestorWins, K: 2, B: 100}, UniformRW{}, zero},
		{core.Conflict{Policy: core.RequestorWins, K: 4, B: 100}, GeneralRW{}, zero},
		{core.Conflict{Policy: core.RequestorAborts, K: 2, B: 100}, ExpRA{}, zero},
		{core.Conflict{Policy: core.RequestorAborts, K: 3, B: 100}, ExpRA{}, zero},
		{core.Conflict{Policy: core.RequestorWins, K: 2, B: 100, Mean: 10}, MeanRW{},
			func(c core.Conflict) float64 { return 1 / (2 * c.B * ln4m1) }},
		{core.Conflict{Policy: core.RequestorWins, K: 3, B: 100, Mean: 5}, MeanRW{},
			func(c core.Conflict) float64 {
				_, k1k, _, tt := kPowers(3)
				return float64(3-2) * k1k / (2 * c.B * tt)
			}},
		{core.Conflict{Policy: core.RequestorAborts, K: 2, B: 100, Mean: 10}, MeanRA{},
			func(c core.Conflict) float64 { return 1 / (2 * c.B * (math.E - 2)) }},
		{core.Conflict{Policy: core.RequestorAborts, K: 3, B: 100, Mean: 10}, MeanRA{},
			func(c core.Conflict) float64 { return float64(3-1) / (2 * c.B * raW(3)) }},
	}
	for _, tcase := range cases {
		c := tcase.c
		hi := core.MaxUsefulDelay(c)
		var lambda1 float64
		if tcase.lambda2(c) == 0 {
			lambda1 = tcase.s.(Analytic).Ratio(core.Conflict{Policy: c.Policy, K: c.K, B: c.B})
		} else {
			lambda1 = 1 // constrained corners all have λ1 = 1
		}
		for _, frac := range []float64{0.15, 0.4, 0.7, 0.95} {
			d := hi * frac
			got := core.EmpiricalRatio(c, tcase.s, d, r, samples)
			want := lambda1 + tcase.lambda2(c)*d
			if math.Abs(got-want)/want > 0.02 {
				t.Errorf("%s %+v d=%v: ratio %v, want λ1+λ2·d = %v", tcase.s.Name(), c, d, got, want)
			}
		}
	}
}

func TestDeterministicRatio(t *testing.T) {
	// The adversary's best move against DET (abort at x = B/(k-1)) is
	// d = x: cost = k·x+B, OPT = B, ratio = 2 + 1/(k-1).
	for _, k := range []int{2, 3, 4, 8} {
		c := core.Conflict{Policy: core.RequestorWins, K: k, B: 1000}
		x := Deterministic{}.Delay(c, nil)
		ratio := core.Cost(c, x, x+1e-9) / core.OptCost(c, x+1e-9)
		want := Deterministic{}.Ratio(c)
		if math.Abs(ratio-want) > 1e-6 {
			t.Errorf("k=%d: adversarial ratio %v, want %v", k, ratio, want)
		}
		// No other d should do worse for the adversary.
		r := rng.New(5)
		worst := core.WorstCaseRatio(c, Deterministic{}, 1, 3*c.B, 600, 1, r)
		if worst > want+1e-6 {
			t.Errorf("k=%d: sweep found ratio %v above analytic %v", k, worst, want)
		}
	}
}

func TestThresholdContinuity(t *testing.T) {
	// At the feasibility threshold the constrained ratio must equal
	// the unconstrained one (the LP corners coincide).
	for _, k := range []int{3, 4, 6} {
		_, _, s, tt := kPowers(k)
		b := 1000.0
		muStar := b * 2 * tt / (float64(k-2) * s)
		c := core.Conflict{Policy: core.RequestorWins, K: k, B: b, Mean: muStar * (1 - 1e-9)}
		constrained := MeanRW{}.Ratio(c)
		unconstrained := GeneralRW{}.Ratio(c)
		if math.Abs(constrained-unconstrained) > 1e-6 {
			t.Errorf("k=%d RW: ratio discontinuity at threshold: %v vs %v", k, constrained, unconstrained)
		}
	}
	for _, k := range []int{2, 3, 5} {
		w := raW(k)
		b := 1000.0
		muStar := b * 2 * w / (w + 1)
		c := core.Conflict{Policy: core.RequestorAborts, K: k, B: b, Mean: muStar * (1 - 1e-9)}
		constrained := MeanRA{}.Ratio(c)
		unconstrained := ExpRA{}.Ratio(c)
		if math.Abs(constrained-unconstrained) > 1e-6 {
			t.Errorf("k=%d RA: ratio discontinuity at threshold: %v vs %v", k, constrained, unconstrained)
		}
	}
	// k=2 RW: Theorem 5's threshold µ/B = 2(ln4-1).
	b := 500.0
	c := core.Conflict{Policy: core.RequestorWins, K: 2, B: b, Mean: b * 2 * ln4m1 * (1 - 1e-9)}
	if got, want := (MeanRW{}).Ratio(c), (UniformRW{}).Ratio(c); math.Abs(got-want) > 1e-6 {
		t.Errorf("k=2 RW threshold discontinuity: %v vs %v", got, want)
	}
}

func TestMeanStrategiesFallBackAboveThreshold(t *testing.T) {
	r := rng.New(31)
	cRW := core.Conflict{Policy: core.RequestorWins, K: 2, B: 100, Mean: 1000}
	if got, want := (MeanRW{}).Ratio(cRW), 2.0; got != want {
		t.Errorf("MeanRW above threshold: ratio %v, want %v", got, want)
	}
	// Delay distribution must equal the unconstrained one; quick
	// check on the CDF midpoint.
	if got, want := (MeanRW{}).CDF(cRW, 50), (GeneralRW{}).CDF(cRW, 50); got != want {
		t.Errorf("MeanRW above threshold CDF %v, want %v", got, want)
	}
	cRA := core.Conflict{Policy: core.RequestorAborts, K: 2, B: 100, Mean: 1000}
	if got, want := (MeanRA{}).CDF(cRA, 50), (ExpRA{}).CDF(cRA, 50); got != want {
		t.Errorf("MeanRA above threshold CDF %v, want %v", got, want)
	}
	_ = r
}

func TestRatioOrderingsFromDiscussion(t *testing.T) {
	// Section 5.3: for k = 2, requestor aborts beats requestor wins
	// in both regimes.
	b, mu := 2000.0, 500.0
	cw := core.Conflict{Policy: core.RequestorWins, K: 2, B: b, Mean: mu}
	ca := core.Conflict{Policy: core.RequestorAborts, K: 2, B: b, Mean: mu}
	if !(MeanRA{}.Ratio(ca) < MeanRW{}.Ratio(cw)) {
		t.Error("constrained: RA should beat RW at k=2")
	}
	if !(ExpRA{}.Ratio(ca) < UniformRW{}.Ratio(cw)) {
		t.Error("unconstrained: RA should beat RW at k=2")
	}
	// Section 5.4 / discussion: for k >= 3 the ordering flips
	// (unconstrained case).
	for _, k := range []int{3, 4, 8, 16} {
		cwk := core.Conflict{Policy: core.RequestorWins, K: k, B: b}
		cak := core.Conflict{Policy: core.RequestorAborts, K: k, B: b}
		if !(GeneralRW{}.Ratio(cwk) < ExpRA{}.Ratio(cak)) {
			t.Errorf("k=%d: RW should beat RA for chains", k)
		}
	}
}

func TestGeneralRWRatioLimits(t *testing.T) {
	// k=2 must give 2; large k must approach e/(e-1).
	if r := (GeneralRW{}).Ratio(core.Conflict{K: 2, B: 1}); r != 2 {
		t.Fatalf("k=2 ratio %v", r)
	}
	r64 := GeneralRW{}.Ratio(core.Conflict{K: 64, B: 1})
	limit := math.E / (math.E - 1)
	if math.Abs(r64-limit) > 0.02 {
		t.Fatalf("k=64 ratio %v, want near %v", r64, limit)
	}
}

func TestExpRARatioLimits(t *testing.T) {
	if r := (ExpRA{}).Ratio(core.Conflict{K: 2, B: 1}); math.Abs(r-math.E/(math.E-1)) > 1e-12 {
		t.Fatalf("k=2 RA ratio %v", r)
	}
	// Large k: ratio ~ k - 1/2.
	r20 := ExpRA{}.Ratio(core.Conflict{K: 20, B: 1})
	if math.Abs(r20-19.5) > 0.1 {
		t.Fatalf("k=20 RA ratio %v, want ~19.5", r20)
	}
}

func TestImmediateAndFixed(t *testing.T) {
	c := core.Conflict{Policy: core.RequestorWins, K: 2, B: 100}
	if (Immediate{}).Delay(c, nil) != 0 {
		t.Fatal("Immediate should return 0")
	}
	if got := (Fixed{X: 40}).Delay(c, nil); got != 40 {
		t.Fatalf("Fixed(40) = %v", got)
	}
	// Fixed clamps to the useful support.
	c3 := core.Conflict{Policy: core.RequestorWins, K: 3, B: 100}
	if got := (Fixed{X: 400}).Delay(c3, nil); got != 50 {
		t.Fatalf("Fixed clamp = %v, want 50", got)
	}
}

func TestHybridPolicyChoice(t *testing.T) {
	h := Hybrid{}
	if h.PreferredPolicy(2) != core.RequestorAborts {
		t.Fatal("k=2 should prefer requestor aborts")
	}
	for _, k := range []int{3, 4, 10} {
		if h.PreferredPolicy(k) != core.RequestorWins {
			t.Fatalf("k=%d should prefer requestor wins", k)
		}
	}
	// Hybrid's ratio equals the min of the two optimal ratios.
	for _, k := range []int{2, 3, 5} {
		c := core.Conflict{K: k, B: 1000}
		rw := GeneralRW{}.Ratio(core.Conflict{Policy: core.RequestorWins, K: k, B: 1000})
		ra := ExpRA{}.Ratio(core.Conflict{Policy: core.RequestorAborts, K: k, B: 1000})
		if got, want := h.Ratio(c), math.Min(rw, ra); math.Abs(got-want) > 1e-12 {
			t.Errorf("k=%d hybrid ratio %v, want %v", k, got, want)
		}
	}
}

func TestHybridDelayInSupport(t *testing.T) {
	r := rng.New(44)
	for _, k := range []int{2, 3, 6} {
		c := core.Conflict{K: k, B: 500, Mean: 20}
		hi := core.MaxUsefulDelay(c)
		for i := 0; i < 1000; i++ {
			d := (Hybrid{}).Delay(c, r)
			if d < 0 || d > hi+1e-9 {
				t.Fatalf("hybrid delay %v outside [0,%v]", d, hi)
			}
		}
	}
}

func TestBackoffB(t *testing.T) {
	if BackoffB(100, 0, 2, math.Inf(1)) != 100 {
		t.Fatal("no attempts should keep base")
	}
	if BackoffB(100, 3, 2, math.Inf(1)) != 800 {
		t.Fatal("3 doublings of 100 should be 800")
	}
	if BackoffB(100, 10, 2, 500) != 500 {
		t.Fatal("backoff should saturate at maxB")
	}
	if BackoffB(100, 5, 1, math.Inf(1)) != 100 {
		t.Fatal("factor 1 disables backoff")
	}
}

func TestAttemptBound(t *testing.T) {
	// log2(1024) + log2(4) + log2(2) - log2(64) + 2 = 10+2+1-6+2 = 9.
	if got := AttemptBound(1024, 4, 2, 64); got != 9 {
		t.Fatalf("AttemptBound = %d, want 9", got)
	}
	if got := AttemptBound(1, 1, 2, 1024); got != 1 {
		t.Fatalf("AttemptBound floor = %d, want 1", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"NO_DELAY", "DET", "RRW", "RRW*", "RRW(mu)", "RRA", "RRA(mu)", "HYBRID", "delay_tuned:55"} {
		s, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if s == nil {
			t.Errorf("ByName(%q) returned nil", name)
		}
	}
	if f, err := ByName("DELAY_TUNED:12.5"); err != nil {
		t.Errorf("tuned parse: %v", err)
	} else if f.(Fixed).X != 12.5 {
		t.Errorf("tuned X = %v", f.(Fixed).X)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := ByName("delay_tuned:xyz"); err == nil {
		t.Error("bad tuned delay accepted")
	}
}

func TestFigSets(t *testing.T) {
	if got := len(Fig2Set()); got != 5 {
		t.Fatalf("Fig2Set size %d", got)
	}
	fig3 := Fig3Set(123)
	if got := len(fig3); got != 4 {
		t.Fatalf("Fig3Set size %d", got)
	}
	if fig3[1].(Fixed).X != 123 {
		t.Fatal("Fig3Set tuned delay not propagated")
	}
}

func TestForPolicy(t *testing.T) {
	if ForPolicy(core.RequestorAborts, false).Name() != "RRA" {
		t.Fatal("RA unconstrained")
	}
	if ForPolicy(core.RequestorAborts, true).Name() != "RRA(mu)" {
		t.Fatal("RA constrained")
	}
	if ForPolicy(core.RequestorWins, false).Name() != "RRW*" {
		t.Fatal("RW unconstrained")
	}
	if ForPolicy(core.RequestorWins, true).Name() != "RRW(mu)" {
		t.Fatal("RW constrained")
	}
}

func TestDescribe(t *testing.T) {
	c := core.Conflict{Policy: core.RequestorWins, K: 2, B: 100}
	if got := Describe(UniformRW{}, c); got != "RRW (ratio 2.000)" {
		t.Fatalf("Describe = %q", got)
	}
	if got := Describe(Immediate{}, c); got != "NO_DELAY" {
		t.Fatalf("Describe = %q", got)
	}
}

func TestMeanConstrainedAbortProbability(t *testing.T) {
	// Section 5.3: with the adversary at y = B (k=2), the abort
	// probability is 1 - F(B-) ~ 1 for large B, and the paper reports
	// the densities near B: RW ~ ln2/(B(ln4-1)) per unit, RA ~
	// (e-1)/(B(e-2)) per unit. Check the density values at x = B.
	b := 1000.0
	cw := core.Conflict{Policy: core.RequestorWins, K: 2, B: b, Mean: 1}
	pRW := MeanRW{}.PDF(cw, b)
	if math.Abs(pRW-math.Ln2/(b*ln4m1)) > 1e-12 {
		t.Errorf("RW density at B: %v, want %v", pRW, math.Ln2/(b*ln4m1))
	}
	ca := core.Conflict{Policy: core.RequestorAborts, K: 2, B: b, Mean: 1}
	pRA := MeanRA{}.PDF(ca, b)
	if math.Abs(pRA-(math.E-1)/(b*(math.E-2))) > 1e-12 {
		t.Errorf("RA density at B: %v, want %v", pRA, (math.E-1)/(b*(math.E-2)))
	}
}

func BenchmarkDelayUniformRW(b *testing.B) {
	r := rng.New(1)
	c := core.Conflict{Policy: core.RequestorWins, K: 2, B: 1000}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += (UniformRW{}).Delay(c, r)
	}
	_ = sink
}

func BenchmarkDelayExpRA(b *testing.B) {
	r := rng.New(1)
	c := core.Conflict{Policy: core.RequestorAborts, K: 2, B: 1000}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += (ExpRA{}).Delay(c, r)
	}
	_ = sink
}

func BenchmarkDelayMeanRW(b *testing.B) {
	r := rng.New(1)
	c := core.Conflict{Policy: core.RequestorWins, K: 2, B: 2000, Mean: 500}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += (MeanRW{}).Delay(c, r)
	}
	_ = sink
}

func BenchmarkDelayGeneralRW(b *testing.B) {
	r := rng.New(1)
	c := core.Conflict{Policy: core.RequestorWins, K: 5, B: 1000}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += (GeneralRW{}).Delay(c, r)
	}
	_ = sink
}
