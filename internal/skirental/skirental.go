// Package skirental implements the classic ski-rental problem and its
// known optimal algorithms (Section 3.3 of the paper): the
// 2-competitive deterministic rule, Karlin et al.'s e/(e-1)
// randomized strategy (Theorem 1), and the mean-constrained variant
// of Khanafer et al. (Theorem 2).
//
// The package exists to validate the paper's reduction (Section 4.2):
// the requestor-aborts transactional conflict problem with k = 2 maps
// exactly onto ski rental, so internal/strategy.ExpRA and this
// package's randomized buyer must produce identical cost profiles.
package skirental

import (
	"math"

	"txconflict/internal/rng"
)

// Instance describes one ski-rental instance: renting costs 1 per
// day, buying costs B.
type Instance struct {
	// B is the purchase price in rental-day units; B >= 1.
	B int
}

// Cost returns the total cost of buying at the start of day `buy`
// (1-indexed; buy > days means never buying) for a trip of `days`
// days: rentals for the days skied before the purchase, plus B if the
// purchase happened on or before the last day.
func (in Instance) Cost(buy, days int) int {
	if buy > days {
		return days
	}
	return (buy - 1) + in.B
}

// OptCost is the offline optimum min(days, B).
func (in Instance) OptCost(days int) int {
	if days < in.B {
		return days
	}
	return in.B
}

// Buyer decides, before the trip, the day on which to buy.
type Buyer interface {
	// BuyDay returns the (1-indexed) day on which skis are bought;
	// values beyond the horizon mean renting forever.
	BuyDay(in Instance, r *rng.Rand) int
	// Name identifies the algorithm.
	Name() string
}

// Deterministic buys on day B, the classic (2 - 1/B)-competitive
// break-even rule.
type Deterministic struct{}

// BuyDay returns B.
func (Deterministic) BuyDay(in Instance, _ *rng.Rand) int { return in.B }

// Name implements Buyer.
func (Deterministic) Name() string { return "DET" }

// Ratio returns the worst-case competitive ratio 2 - 1/B.
func (Deterministic) Ratio(in Instance) float64 { return 2 - 1/float64(in.B) }

// Randomized is Theorem 1's optimal randomized strategy: buy on day i
// with probability
//
//	p_i = ((B-1)/B)^{B-i} / (B (1 - (1-1/B)^B)),  1 <= i <= B,
//
// achieving expected cost (e/(e-1))·min(D, B) as B grows.
type Randomized struct{}

// Name implements Buyer.
func (Randomized) Name() string { return "RAND" }

// probs returns the buy-day distribution p_1..p_B.
func (Randomized) probs(in Instance) []float64 {
	b := in.B
	bf := float64(b)
	norm := bf * (1 - math.Pow(1-1/bf, bf))
	p := make([]float64, b)
	for i := 1; i <= b; i++ {
		p[i-1] = math.Pow((bf-1)/bf, bf-float64(i)) / norm
	}
	return p
}

// BuyDay samples from the Theorem 1 distribution.
func (rz Randomized) BuyDay(in Instance, r *rng.Rand) int {
	u := r.Float64()
	acc := 0.0
	for i, p := range rz.probs(in) {
		acc += p
		if u < acc {
			return i + 1
		}
	}
	return in.B
}

// Ratio returns the asymptotic competitive ratio e/(e-1).
func (Randomized) Ratio(Instance) float64 { return math.E / (math.E - 1) }

// MeanConstrained is Theorem 2's strategy: when the adversary's mean
// trip length µ satisfies µ/B < 2(e-2)/(e-1), buy-day density
// p(x) = (e^{x/B} - 1)/(B(e-2)) on [0, B] improves the ratio to
// 1 + µ/(2B(e-2)); otherwise fall back to Randomized.
type MeanConstrained struct {
	// Mu is the known mean of the adversarial distribution.
	Mu float64
}

// Name implements Buyer.
func (MeanConstrained) Name() string { return "RAND(mu)" }

// constrained reports whether the improved corner applies.
func (m MeanConstrained) constrained(in Instance) bool {
	return m.Mu > 0 && m.Mu/float64(in.B) < 2*(math.E-2)/(math.E-1)
}

// BuyDay samples the continuous constrained density and rounds up to
// a day.
func (m MeanConstrained) BuyDay(in Instance, r *rng.Rand) int {
	if !m.constrained(in) {
		return Randomized{}.BuyDay(in, r)
	}
	b := float64(in.B)
	u := r.Float64()
	// CDF F(x) = (B(e^{x/B}-1) - x)/(B(e-2)); invert by bisection.
	cdf := func(x float64) float64 { return (b*math.Expm1(x/b) - x) / (b * (math.E - 2)) }
	lo, hi := 0.0, b
	for hi-lo > 1e-9*b {
		mid := (lo + hi) / 2
		if cdf(mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	day := int(math.Ceil(lo))
	if day < 1 {
		day = 1
	}
	if day > in.B {
		day = in.B
	}
	return day
}

// Ratio returns 1 + µ/(2B(e-2)) under the threshold.
func (m MeanConstrained) Ratio(in Instance) float64 {
	if !m.constrained(in) {
		return Randomized{}.Ratio(in)
	}
	return 1 + m.Mu/(2*float64(in.B)*(math.E-2))
}

// ExpectedCost estimates E[cost] of a buyer against a fixed trip
// length over n trials.
func ExpectedCost(in Instance, b Buyer, days int, r *rng.Rand, n int) float64 {
	if n <= 0 {
		n = 1
	}
	sum := 0
	for i := 0; i < n; i++ {
		sum += in.Cost(b.BuyDay(in, r), days)
	}
	return float64(sum) / float64(n)
}
