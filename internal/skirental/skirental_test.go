package skirental

import (
	"math"
	"testing"

	"txconflict/internal/core"
	"txconflict/internal/rng"
	"txconflict/internal/strategy"
)

func TestCostModel(t *testing.T) {
	in := Instance{B: 10}
	// Never buying: pay one rental per day.
	if in.Cost(11, 5) != 5 {
		t.Fatal("rent-only cost wrong")
	}
	// Buying on day 1: pay only B.
	if in.Cost(1, 5) != 10 {
		t.Fatal("buy-immediately cost wrong")
	}
	// Buying on day 4 of a 5-day trip: 3 rentals + B.
	if in.Cost(4, 5) != 13 {
		t.Fatal("mid-trip buy cost wrong")
	}
	if in.OptCost(5) != 5 || in.OptCost(50) != 10 {
		t.Fatal("OPT wrong")
	}
}

func TestDeterministicRatio(t *testing.T) {
	in := Instance{B: 20}
	det := Deterministic{}
	// Worst case: trip ends the day the skis are bought.
	worst := 0.0
	for days := 1; days <= 3*in.B; days++ {
		ratio := float64(in.Cost(det.BuyDay(in, nil), days)) / float64(in.OptCost(days))
		if ratio > worst {
			worst = ratio
		}
	}
	if want := det.Ratio(in); math.Abs(worst-want) > 1e-9 {
		t.Fatalf("worst ratio %v, want %v", worst, want)
	}
}

func TestRandomizedDistribution(t *testing.T) {
	in := Instance{B: 50}
	probs := Randomized{}.probs(in)
	sum := 0.0
	for i, p := range probs {
		if p < 0 {
			t.Fatalf("p_%d = %v < 0", i+1, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// The distribution is increasing in i (later days likelier).
	for i := 1; i < len(probs); i++ {
		if probs[i] < probs[i-1] {
			t.Fatalf("p not increasing at day %d", i+1)
		}
	}
}

func TestRandomizedCompetitive(t *testing.T) {
	in := Instance{B: 40}
	r := rng.New(7)
	want := math.E / (math.E - 1)
	for _, days := range []int{1, 5, 20, 40, 80, 400} {
		got := ExpectedCost(in, Randomized{}, days, r, 200000) / float64(in.OptCost(days))
		// Finite-B discrete strategy is slightly above/below the
		// asymptotic ratio; allow 6%.
		if got > want*1.06 {
			t.Errorf("days=%d: ratio %v exceeds %v", days, got, want)
		}
	}
}

func TestMeanConstrainedBeatsUnconstrained(t *testing.T) {
	in := Instance{B: 100}
	r := rng.New(9)
	mc := MeanConstrained{Mu: 10}
	if !mc.constrained(in) {
		t.Fatal("µ=10, B=100 should be in the constrained regime")
	}
	if mc.Ratio(in) >= (Randomized{}).Ratio(in) {
		t.Fatal("constrained ratio should improve")
	}
	// Against short trips (d ~ µ << B) the constrained buyer must pay
	// less on average.
	days := 10
	costC := ExpectedCost(in, mc, days, r, 100000)
	costU := ExpectedCost(in, Randomized{}, days, r, 100000)
	if costC >= costU {
		t.Fatalf("constrained cost %v not below unconstrained %v", costC, costU)
	}
}

func TestMeanConstrainedFallsBack(t *testing.T) {
	in := Instance{B: 10}
	mc := MeanConstrained{Mu: 100}
	if mc.constrained(in) {
		t.Fatal("µ=100, B=10 should not be constrained")
	}
	if mc.Ratio(in) != (Randomized{}).Ratio(in) {
		t.Fatal("fallback ratio mismatch")
	}
}

func TestBuyDayInRange(t *testing.T) {
	r := rng.New(3)
	in := Instance{B: 25}
	buyers := []Buyer{Deterministic{}, Randomized{}, MeanConstrained{Mu: 5}}
	for _, b := range buyers {
		for i := 0; i < 5000; i++ {
			d := b.BuyDay(in, r)
			if d < 1 || d > in.B {
				t.Fatalf("%s: buy day %d outside [1,%d]", b.Name(), d, in.B)
			}
		}
	}
}

// TestReductionToRequestorAborts verifies Section 4.2's mapping: the
// continuous requestor-aborts strategy (ExpRA) and the discrete
// ski-rental randomized buyer incur matching expected cost profiles
// (up to discretization) on the same instances.
func TestReductionToRequestorAborts(t *testing.T) {
	const b = 60
	in := Instance{B: b}
	c := core.Conflict{Policy: core.RequestorAborts, K: 2, B: b}
	r := rng.New(11)
	for _, d := range []int{6, 30, 60, 120} {
		ski := ExpectedCost(in, Randomized{}, d, r, 150000)
		tx := core.ExpectedCost(c, strategy.ExpRA{}, float64(d), r, 150000)
		// Same problem, same optimum, both strategies e/(e-1)-
		// competitive: costs agree within discretization error.
		if rel := math.Abs(ski-tx) / tx; rel > 0.05 {
			t.Errorf("d=%d: ski-rental cost %v vs RA conflict cost %v (rel %v)", d, ski, tx, rel)
		}
	}
}

func TestExpectedCostDeterministicBuyer(t *testing.T) {
	in := Instance{B: 10}
	r := rng.New(1)
	if got := ExpectedCost(in, Deterministic{}, 5, r, 0); got != 5 {
		t.Fatalf("expected cost %v, want 5", got)
	}
}

func BenchmarkRandomizedBuyDay(b *testing.B) {
	in := Instance{B: 100}
	r := rng.New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += (Randomized{}).BuyDay(in, r)
	}
	_ = sink
}
