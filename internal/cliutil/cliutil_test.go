package cliutil

import (
	"errors"
	"strings"
	"testing"
)

func TestCheckNameAccepts(t *testing.T) {
	if err := CheckName("scenario", "stack", []string{"queue", "stack"}); err != nil {
		t.Fatalf("known name rejected: %v", err)
	}
}

func TestCheckNameRejectsWithSortedSuggestions(t *testing.T) {
	names := []string{"zeta", "alpha", "mid"}
	err := CheckName("workload", "nope", names)
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown workload "nope"`) {
		t.Fatalf("message lacks the kind and value: %q", msg)
	}
	if !strings.Contains(msg, "registered workloads: alpha, mid, zeta") {
		t.Fatalf("suggestions missing or unsorted: %q", msg)
	}
	// The input slice must not be reordered in place.
	if names[0] != "zeta" || names[2] != "mid" {
		t.Fatalf("CheckName mutated its input: %v", names)
	}
}

func TestFatalExitsWithStatus2(t *testing.T) {
	var got int
	old := exit
	exit = func(code int) { got = code }
	defer func() { exit = old }()
	Fatal("somecmd", errors.New("boom"))
	if got != 2 {
		t.Fatalf("Fatal exited with %d, want 2", got)
	}
}

func TestCheckPositive(t *testing.T) {
	if err := CheckPositive("workers", 1); err != nil {
		t.Fatalf("1 rejected: %v", err)
	}
	for _, v := range []int{0, -3} {
		err := CheckPositive("workers", v)
		if err == nil {
			t.Fatalf("%d accepted", v)
		}
		if !strings.Contains(err.Error(), "-workers must be > 0") {
			t.Fatalf("message lacks the flag name and bound: %q", err)
		}
	}
}

func TestCheckNonNegative(t *testing.T) {
	for _, v := range []int{0, 7} {
		if err := CheckNonNegative("batch", v); err != nil {
			t.Fatalf("%d rejected: %v", v, err)
		}
	}
	err := CheckNonNegative("batch", -1)
	if err == nil {
		t.Fatal("-1 accepted")
	}
	if !strings.Contains(err.Error(), "-batch must be >= 0 (got -1)") {
		t.Fatalf("message lacks the flag name and value: %q", err)
	}
}

func TestCheckRequires(t *testing.T) {
	// Unset flags never trip the check, whether or not the
	// prerequisite holds.
	for _, ok := range []bool{false, true} {
		if err := CheckRequires("fold", false, ok, "-batch > 0"); err != nil {
			t.Fatalf("unset flag rejected (ok=%v): %v", ok, err)
		}
	}
	if err := CheckRequires("fold", true, true, "-batch > 0"); err != nil {
		t.Fatalf("satisfied requirement rejected: %v", err)
	}
	err := CheckRequires("fold", true, false, "-batch > 0")
	if err == nil {
		t.Fatal("unmet requirement accepted")
	}
	if !strings.Contains(err.Error(), "-fold requires -batch > 0") {
		t.Fatalf("message lacks the flag name and requirement: %q", err)
	}
}
