// Package cliutil implements the shared flag conventions of the cmd/
// front-ends: registry-backed selector flags (-scenario, -workload)
// reject unknown values up front with the sorted registered names and
// exit status 2, matching the error shape dist.ByName produces for
// -dist — so every command suggests alternatives the same way and
// scripts can rely on the exit code.
package cliutil

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// exit is swapped out by tests; everything else goes through Fatal.
var exit = os.Exit

// CheckName validates a registry-backed selector: name must be one of
// names. On failure the error lists the registered names in sorted
// order, mirroring dist.ByName.
func CheckName(kind, name string, names []string) error {
	for _, n := range names {
		if n == name {
			return nil
		}
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	return fmt.Errorf("unknown %s %q; registered %ss: %s",
		kind, name, kind, strings.Join(sorted, ", "))
}

// CheckPositive validates an integer flag that must be strictly
// positive (worker pools, user counts, batch request sizes). The
// error names the flag so the message reads like the flag package's
// own diagnostics.
func CheckPositive(flagName string, v int) error {
	if v <= 0 {
		return fmt.Errorf("-%s must be > 0 (got %d)", flagName, v)
	}
	return nil
}

// CheckNonNegative validates an integer flag where zero means "off"
// or "default" but negative values are nonsense (-batch, -shards,
// -kwindow, -capacity).
func CheckNonNegative(flagName string, v int) error {
	if v < 0 {
		return fmt.Errorf("-%s must be >= 0 (got %d)", flagName, v)
	}
	return nil
}

// CheckRequires validates a dependent flag: set reports whether the
// flag was enabled, ok whether the machinery it depends on is
// configured, and requirement names that prerequisite (e.g.
// "-batch > 0"). The error names the flag, like CheckPositive.
func CheckRequires(flagName string, set, ok bool, requirement string) error {
	if set && !ok {
		return fmt.Errorf("-%s requires %s", flagName, requirement)
	}
	return nil
}

// Fatal reports a usage-level error the way every front-end does:
// "<cmd>: <err>" on stderr, exit status 2 (the flag package's own
// usage-error status).
func Fatal(cmd string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
	exit(2)
}
