// Package rng provides a fast, deterministic pseudo-random number
// generator for simulation workloads.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64 so that any 64-bit seed — including zero — yields a
// well-mixed state. Each *Rand is a single stream and is NOT safe for
// concurrent use; concurrent components should each own a stream
// obtained from Split or Jump, which are guaranteed non-overlapping
// for 2^128 draws.
//
// All experiment code in this repository draws randomness exclusively
// from this package so that every figure is reproducible from a seed.
package rng

import "math"

// Rand is a xoshiro256** stream. The zero value is NOT usable; obtain
// streams from New or Split.
type Rand struct {
	s [4]uint64
	// cached second normal variate from Box-Muller, NaN when empty.
	normCache float64
	hasCache  bool
}

// splitmix64 advances *x and returns the next splitmix64 output.
// It is used only for seeding.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from the given 64-bit seed. Distinct
// seeds yield (with overwhelming probability) uncorrelated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro forbids the all-zero state; splitmix64 of any seed
	// cannot produce four zero outputs, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[3] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// jumpPoly is the xoshiro256** jump polynomial, equivalent to 2^128
// calls of Uint64.
var jumpPoly = [4]uint64{
	0x180ec6d33cfd0aba, 0xd5a61266f0c9392c,
	0xa9582618e03fc9aa, 0x39abdc4529b1661c,
}

// Jump advances the stream by 2^128 steps in place. Successive Jump
// calls partition the period into non-overlapping substreams.
func (r *Rand) Jump() {
	var s0, s1, s2, s3 uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// Split returns a new independent stream: a copy of r jumped forward
// 2^128 steps. r itself is also jumped, so repeated Split calls hand
// out pairwise non-overlapping streams.
func (r *Rand) Split() *Rand {
	child := &Rand{s: r.s}
	child.Jump()
	r.s = child.s
	child.Jump()
	return child
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1): never exactly zero,
// convenient for logarithm-based transforms.
func (r *Rand) Float64Open() float64 {
	for {
		if v := r.Float64(); v > 0 {
			return v
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method (unbiased).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Lemire's method: multiply and use the high word, rejecting the
	// small biased region.
	v := r.Uint64()
	hi, lo := mul64(v, n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Int63 returns a non-negative 63-bit random integer.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Range returns a uniform float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1), via inverse-CDF transform.
func (r *Rand) ExpFloat64() float64 {
	return -math.Log(r.Float64Open())
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform, caching the paired variate.
func (r *Rand) NormFloat64() float64 {
	if r.hasCache {
		r.hasCache = false
		return r.normCache
	}
	u1 := r.Float64Open()
	u2 := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u1))
	r.normCache = mag * math.Sin(2*math.Pi*u2)
	r.hasCache = true
	return mag * math.Cos(2*math.Pi*u2)
}

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap
// function (Fisher-Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// TwoDistinct returns two distinct uniform integers in [0, n).
// It panics if n < 2.
func (r *Rand) TwoDistinct(n int) (int, int) {
	if n < 2 {
		panic("rng: TwoDistinct needs n >= 2")
	}
	a := r.Intn(n)
	b := r.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}
