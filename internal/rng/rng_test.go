package rng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: streams with equal seed diverged: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		t.Fatal("zero seed produced all-zero state")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 60 {
		t.Fatalf("zero-seeded stream looks degenerate: %d distinct of 64", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		if v := r.Float64Open(); v <= 0 || v >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d: count %d deviates from %v beyond 5 sigma", i, c, want)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ x, y, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
		{0xdeadbeef, 0xfeedface, 0, 0xdeadbeef * 0xfeedface},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x, %#x) = (%#x, %#x), want (%#x, %#x)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul64Property(t *testing.T) {
	f := func(x, y uint64) bool {
		hi, lo := mul64(x, y)
		wantHi, wantLo := bits.Mul64(x, y)
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 300000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestJumpDisjoint(t *testing.T) {
	a := New(99)
	b := New(99)
	b.Jump()
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		seen[a.Uint64()] = true
	}
	overlap := 0
	for i := 0; i < 10000; i++ {
		if seen[b.Uint64()] {
			overlap++
		}
	}
	if overlap > 2 { // chance collision on 64-bit values is ~nil
		t.Fatalf("jumped stream overlaps original in %d of 10000 draws", overlap)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(123)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first draw")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTwoDistinct(t *testing.T) {
	r := New(31)
	for i := 0; i < 10000; i++ {
		a, b := r.TwoDistinct(8)
		if a == b {
			t.Fatalf("TwoDistinct returned equal values %d,%d", a, b)
		}
		if a < 0 || a >= 8 || b < 0 || b >= 8 {
			t.Fatalf("TwoDistinct out of range: %d,%d", a, b)
		}
	}
}

func TestTwoDistinctUniformPairs(t *testing.T) {
	r := New(37)
	const n, draws = 4, 120000
	counts := map[[2]int]int{}
	for i := 0; i < draws; i++ {
		a, b := r.TwoDistinct(n)
		counts[[2]int{a, b}]++
	}
	pairs := n * (n - 1)
	want := float64(draws) / float64(pairs)
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("pair %v: count %d deviates from %v", k, c, want)
		}
	}
	if len(counts) != pairs {
		t.Fatalf("saw %d distinct pairs, want %d", len(counts), pairs)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(41)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", p)
	}
}

func TestShuffleCoversAllPositions(t *testing.T) {
	r := New(43)
	const n = 6
	// Every element should visit every position across many shuffles.
	visits := [n][n]int{}
	for trial := 0; trial < 6000; trial++ {
		arr := [n]int{0, 1, 2, 3, 4, 5}
		r.Shuffle(n, func(i, j int) { arr[i], arr[j] = arr[j], arr[i] })
		for pos, v := range arr {
			visits[v][pos]++
		}
	}
	for v := 0; v < n; v++ {
		for pos := 0; pos < n; pos++ {
			if visits[v][pos] == 0 {
				t.Fatalf("element %d never landed at position %d", v, pos)
			}
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.NormFloat64()
	}
	_ = sink
}
