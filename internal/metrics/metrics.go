// Package metrics is the runtime's always-on observability plane: a
// lock-free layer between the raw atomic counters of stm.Stats and
// the heavyweight per-transaction traces of internal/trace. It
// answers the questions counters cannot ("what is commit p99 right
// now?") at a cost traces cannot match (a handful of atomic adds per
// transaction, zero allocations).
//
// Three pieces:
//
//   - Histogram: a log-bucketed latency histogram (8 sub-buckets per
//     power of two, so any quantile estimate is within ~6.25% relative
//     error of the exact sample). Buckets are plain atomic counters —
//     concurrent Observe calls never lock — and snapshots are value
//     types that merge and subtract, so per-worker shards and rolling
//     windows fall out of the representation.
//   - AbortReason / CommitPhase: the abort-reason taxonomy that
//     replaces the single Aborts counter, and the commit-phase timer
//     labels (validation, lock acquisition, write-back, stripe-clock
//     advance) sampled 1-in-N on the commit path.
//   - Plane: per-worker cache-line-padded shards of the above, plus a
//     merged PlaneSnapshot and a Prometheus text-exposition writer
//     (prom.go) — the backing store for txkvd's GET /metrics, the
//     latency section of /v1/stats, and the p99 feed of the tuner.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout: values 0..7 get exact unit buckets; every
// power-of-two octave above that is split into 8 sub-buckets, so the
// bucket width never exceeds 1/8 of the bucket's lower bound. With
// the quantile estimator returning bucket midpoints, the worst-case
// relative error of any reported quantile is half that: 1/16.
const (
	histSubBits  = 3
	histSubCount = 1 << histSubBits // 8 sub-buckets per octave

	// NumBuckets covers the full uint64 range: 8 exact unit buckets,
	// then 8 buckets for each of the 61 octaves [2^3, 2^64).
	NumBuckets = (64-histSubBits)*histSubCount + histSubCount // 496
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	e := bits.Len64(v) - 1 // e >= histSubBits
	return (e-histSubBits)*histSubCount + int(v>>uint(e-histSubBits))
}

// BucketLower returns the inclusive lower bound of bucket i.
func BucketLower(i int) uint64 {
	if i < 2*histSubCount {
		return uint64(i)
	}
	g := i/histSubCount - 1 // octave group >= 1
	return uint64(histSubCount+i%histSubCount) << uint(g)
}

// Histogram is a lock-free log-bucketed histogram. The zero value is
// ready to use. Observe is safe for concurrent use; Snapshot may race
// with writers and returns a consistent-enough view (each bucket is
// individually exact, the total may trail by in-flight observations —
// the standard monitoring trade).
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // saturating at ~584 years of nanoseconds
}

// Observe records one value (negative values clamp to zero, so
// clock-skewed durations cannot corrupt the layout).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
}

// Snapshot copies the histogram into a mergeable value.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram. It is a plain
// value: Merge accumulates shards, Sub forms rolling windows, and the
// quantile estimators read it without further synchronization.
type HistSnapshot struct {
	Counts [NumBuckets]uint64
	Count  uint64
	Sum    uint64
}

// Merge adds o into s (shard aggregation). Merging is commutative and
// associative, so any merge order yields the same snapshot.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Sub returns s minus prev, the histogram of everything observed
// between the two snapshots. prev must be an earlier snapshot of the
// same histogram (bucket counts only grow).
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	out := s
	for i := range out.Counts {
		out.Counts[i] -= prev.Counts[i]
	}
	out.Count -= prev.Count
	out.Sum -= prev.Sum
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// values: the midpoint of the bucket holding the rank-ceil(q*n)
// sample, hence within 1/16 relative error of the exact order
// statistic. Returns 0 when the snapshot is empty.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			lo := BucketLower(i)
			if i+1 < NumBuckets {
				return float64(lo+BucketLower(i+1)) / 2
			}
			return float64(lo)
		}
	}
	return 0
}

// Mean returns the exact mean of the observed values (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Fingerprint hashes the bucket counts (FNV-1a), pinning the bucket
// layout and the determinism of a seeded run in golden tests: any
// change to the bucketing scheme or to what a code path observes
// shows up as a fingerprint change.
func (s *HistSnapshot) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	for _, c := range s.Counts {
		mix(c)
	}
	mix(s.Count)
	mix(s.Sum)
	return h
}

// Quantiles is the fixed ladder reported everywhere a summary is
// rendered (the /v1/stats latency section, BENCH cells, stderr
// reports): p50, p90, p99, p999.
type Quantiles struct {
	P50  float64 `json:"p50Ns"`
	P90  float64 `json:"p90Ns"`
	P99  float64 `json:"p99Ns"`
	P999 float64 `json:"p999Ns"`
	Mean float64 `json:"meanNs"`
	N    uint64  `json:"count"`
}

// Summary extracts the standard quantile ladder from a snapshot.
func (s *HistSnapshot) Summary() Quantiles {
	return Quantiles{
		P50:  s.Quantile(0.50),
		P90:  s.Quantile(0.90),
		P99:  s.Quantile(0.99),
		P999: s.Quantile(0.999),
		Mean: s.Mean(),
		N:    s.Count,
	}
}
