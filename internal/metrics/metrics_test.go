package metrics

import (
	"bufio"
	"bytes"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"

	"txconflict/internal/rng"
)

// TestBucketLayout pins the bucket boundary algebra: indices are
// monotone in the value, BucketLower inverts bucketIndex on bucket
// starts, and bucket width never exceeds 1/8 of the lower bound.
func TestBucketLayout(t *testing.T) {
	prev := -1
	for v := uint64(0); v < 1<<14; v++ {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		if i != prev {
			if got := BucketLower(i); got != v {
				t.Fatalf("BucketLower(%d) = %d, want bucket start %d", i, got, v)
			}
			prev = i
		}
	}
	for i := 2 * histSubCount; i < NumBuckets-1; i++ {
		lo, hi := BucketLower(i), BucketLower(i+1)
		if hi <= lo {
			t.Fatalf("bucket %d empty: [%d, %d)", i, lo, hi)
		}
		if width := hi - lo; width*histSubCount > lo {
			t.Fatalf("bucket %d too wide: width %d > lower/8 = %d", i, width, lo/histSubCount)
		}
	}
	// Extremes stay in range.
	if i := bucketIndex(math.MaxUint64); i != NumBuckets-1 {
		t.Fatalf("max value lands in bucket %d, want %d", i, NumBuckets-1)
	}
}

// TestQuantileErrorBound draws random samples from several shapes and
// checks every reported quantile against the exact order statistic:
// relative error must stay within the bucket-midpoint bound (1/16,
// with a little slack for the <8ns exact region).
func TestQuantileErrorBound(t *testing.T) {
	r := rng.New(42)
	shapes := map[string]func() int64{
		"uniform": func() int64 { return int64(r.Uint64n(2_000_000)) },
		"exp":     func() int64 { return int64(r.ExpFloat64() * 50_000) },
		"heavy": func() int64 {
			if r.Bool(0.99) {
				return int64(r.Uint64n(10_000))
			}
			return int64(10_000_000 + r.Uint64n(90_000_000))
		},
	}
	for name, draw := range shapes {
		var h Histogram
		samples := make([]int64, 0, 20_000)
		for i := 0; i < 20_000; i++ {
			v := draw()
			h.Observe(v)
			samples = append(samples, v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		s := h.Snapshot()
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			rank := int(math.Ceil(q*float64(len(samples)))) - 1
			exact := float64(samples[rank])
			got := s.Quantile(q)
			if exact < histSubCount {
				if math.Abs(got-exact) > 1 {
					t.Errorf("%s q%.3f: got %.1f, exact %.1f", name, q, got, exact)
				}
				continue
			}
			if rel := math.Abs(got-exact) / exact; rel > 1.0/16+1e-9 {
				t.Errorf("%s q%.3f: got %.1f, exact %.1f, rel err %.4f > 1/16", name, q, got, exact, rel)
			}
		}
	}
}

// TestMergeAssociativity checks that shard merging commutes and
// associates: any merge order of three snapshots yields identical
// counts, and Sub inverts Merge.
func TestMergeAssociativity(t *testing.T) {
	r := rng.New(7)
	mk := func() HistSnapshot {
		var h Histogram
		for i := 0; i < 5_000; i++ {
			h.Observe(int64(r.Uint64n(1_000_000)))
		}
		return h.Snapshot()
	}
	a, b, c := mk(), mk(), mk()

	ab := a
	ab.Merge(&b)
	abc1 := ab
	abc1.Merge(&c)

	bc := b
	bc.Merge(&c)
	abc2 := bc
	abc2.Merge(&a)

	if abc1 != abc2 {
		t.Fatal("merge order changed the snapshot")
	}
	back := abc1.Sub(c)
	if back != ab {
		t.Fatal("Sub did not invert Merge")
	}
}

// TestGoldenFingerprint pins the bucket layout and hash: a seeded
// sample stream must always produce the same fingerprint, or recorded
// golden histograms silently stop being comparable across versions.
func TestGoldenFingerprint(t *testing.T) {
	r := rng.New(12345)
	var h Histogram
	for i := 0; i < 10_000; i++ {
		h.Observe(int64(r.Uint64n(10_000_000)))
	}
	s := h.Snapshot()
	const want = 0xccde340c331a28d
	if got := s.Fingerprint(); got != want {
		t.Fatalf("fingerprint = %#x, want %#x (bucket layout or hash changed)", got, want)
	}
}

// TestPlaneShards checks worker routing and snapshot merging across
// shards, including the anonymous worker id -1.
func TestPlaneShards(t *testing.T) {
	p := NewPlane(4, 0)
	if p.SampleN() != DefaultSampleN {
		t.Fatalf("SampleN = %d, want default %d", p.SampleN(), DefaultSampleN)
	}
	for w := -1; w < 8; w++ {
		p.Shard(w).ObserveAttempt(int64(100 * (w + 2)))
		p.Shard(w).Abort(AbortKilled)
	}
	s := p.Snapshot()
	if s.Attempt.Count != 9 {
		t.Fatalf("merged attempt count = %d, want 9", s.Attempt.Count)
	}
	if s.Aborts[AbortKilled] != 9 {
		t.Fatalf("merged killed aborts = %d, want 9", s.Aborts[AbortKilled])
	}
	if got := s.AbortCounts()["killed"]; got != 9 {
		t.Fatalf("AbortCounts[killed] = %d, want 9", got)
	}
}

// TestSampleInterval pins the 1-in-N contract.
func TestSampleInterval(t *testing.T) {
	p := NewPlane(1, 8)
	sh := p.Shard(0)
	hits := 0
	for i := 0; i < 8*10; i++ {
		if sh.Sample() {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("sampled %d of 80 at 1-in-8, want 10", hits)
	}
}

// TestPromExposition parses the writer's own output: TYPE/HELP before
// samples, well-formed sample lines, all abort reasons and phases
// present, summary quantiles monotone.
func TestPromExposition(t *testing.T) {
	p := NewPlane(2, 0)
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		p.Shard(i % 2).ObserveAttempt(int64(r.Uint64n(100_000)))
		p.Shard(i % 2).ObserveCommit(int64(r.Uint64n(200_000)))
	}
	p.Shard(0).Abort(AbortValidation)
	p.Shard(0).Phase(PhaseLock, 1234)

	var buf bytes.Buffer
	snap := p.Snapshot()
	if err := snap.WriteProm(&buf, "txstm"); err != nil {
		t.Fatal(err)
	}
	families, samples := parseExposition(t, buf.String())
	for _, fam := range []string{
		"txstm_attempt_latency_seconds", "txstm_commit_latency_seconds",
		"txstm_grace_wait_seconds", "txstm_combiner_drain_seconds",
		"txstm_aborted_attempts_total", "txstm_commit_phase_seconds_total",
	} {
		if _, ok := families[fam]; !ok {
			t.Errorf("family %s missing", fam)
		}
	}
	for r := 0; r < NumAbortReasons; r++ {
		want := `txstm_aborted_attempts_total{reason="` + AbortReason(r).String() + `"}`
		if _, ok := samples[want]; !ok {
			t.Errorf("abort series %s missing", want)
		}
	}
	// Summary quantiles are nondecreasing in q.
	prev := -1.0
	for _, q := range []string{"0.5", "0.9", "0.99", "0.999"} {
		v, ok := samples[`txstm_commit_latency_seconds{quantile="`+q+`"}`]
		if !ok {
			t.Fatalf("quantile %s missing", q)
		}
		if v < prev {
			t.Errorf("quantile %s = %g below previous %g", q, v, prev)
		}
		prev = v
	}
}

// parseExposition is a strict-enough parser for the text format:
// returns TYPE by family and value by sample key. Fails the test on
// malformed lines or samples without a preceding TYPE.
func parseExposition(t *testing.T, text string) (map[string]string, map[string]float64) {
	t.Helper()
	families := map[string]string{}
	samples := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			families[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, val := line[:sp], line[sp+1:]
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		base := key
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		base = strings.TrimSuffix(strings.TrimSuffix(base, "_sum"), "_count")
		found := false
		for fam := range families {
			if strings.HasPrefix(base, fam) || strings.HasPrefix(fam, base) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("sample %q has no preceding TYPE", key)
		}
		samples[key] = f
	}
	return families, samples
}
