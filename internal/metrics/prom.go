package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), hand-rolled: the
// repo takes no dependencies, and the format is three line shapes
// (# HELP, # TYPE, sample). PromWriter keeps the invariants a scraper
// checks — every sample preceded by its family's TYPE/HELP, labels
// escaped, values finite decimal — and the smoke test in txkv parses
// its own output back to hold the writer to them.

// Label is one name="value" pair on a sample.
type Label struct{ Name, Value string }

// PromWriter accumulates exposition lines; errors are sticky.
type PromWriter struct {
	w   io.Writer
	err error
}

func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...interface{}) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Family opens a metric family: one HELP and one TYPE line. typ is
// counter, gauge, summary, histogram or untyped.
func (p *PromWriter) Family(name, typ, help string) {
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s %s\n", name, typ)
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Sample writes one float-valued sample line.
func (p *PromWriter) Sample(name string, labels []Label, v float64) {
	p.printf("%s%s %s\n", name, formatLabels(labels), strconv.FormatFloat(v, 'g', -1, 64))
}

// Uint writes one integer-valued sample line.
func (p *PromWriter) Uint(name string, labels []Label, v uint64) {
	p.printf("%s%s %d\n", name, formatLabels(labels), v)
}

// promQuantiles is the quantile ladder exposed on summary families.
var promQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50},
	{"0.9", 0.90},
	{"0.99", 0.99},
	{"0.999", 0.999},
}

// summaryProm writes one latency histogram as a Prometheus summary in
// seconds: the quantile ladder plus _sum and _count.
func summaryProm(p *PromWriter, name, help string, h *HistSnapshot) {
	p.Family(name, "summary", help)
	for _, pq := range promQuantiles {
		p.Sample(name, []Label{{"quantile", pq.label}}, h.Quantile(pq.q)/1e9)
	}
	p.Sample(name+"_sum", nil, float64(h.Sum)/1e9)
	p.Uint(name+"_count", nil, h.Count)
}

// WriteProm renders the merged plane in exposition format under the
// given metric-name prefix (e.g. "txstm"). Every abort-reason and
// commit-phase series is emitted even at zero, so dashboards and the
// smoke test can rely on the full label set being present from the
// first scrape.
func (s *PlaneSnapshot) WriteProm(w io.Writer, prefix string) error {
	p := NewPromWriter(w)
	summaryProm(p, prefix+"_attempt_latency_seconds",
		"Wall time of individual transaction attempts (committed and aborted).", &s.Attempt)
	summaryProm(p, prefix+"_commit_latency_seconds",
		"Wall time of committed atomic blocks, first attempt to commit.", &s.Commit)
	summaryProm(p, prefix+"_grace_wait_seconds",
		"Grace-period waits spent by requestors on locked words.", &s.Grace)
	summaryProm(p, prefix+"_combiner_drain_seconds",
		"Group-commit combiner rounds, drain to outcome stamps.", &s.Drain)

	name := prefix + "_aborted_attempts_total"
	p.Family(name, "counter", "Aborted attempts and escalation events by taxonomy reason.")
	for r := 0; r < NumAbortReasons; r++ {
		p.Uint(name, []Label{{"reason", AbortReason(r).String()}}, s.Aborts[r])
	}

	name = prefix + "_commit_phase_seconds_total"
	p.Family(name, "counter", "Sampled commit-phase time by phase (multiply by the sample interval to estimate totals).")
	for ph := 0; ph < NumCommitPhases; ph++ {
		p.Sample(name, []Label{{"phase", CommitPhase(ph).String()}}, float64(s.PhaseNs[ph])/1e9)
	}
	name = prefix + "_commit_phase_samples_total"
	p.Family(name, "counter", "Commits that ran the sampled phase timers, by phase.")
	for ph := 0; ph < NumCommitPhases; ph++ {
		p.Uint(name, []Label{{"phase", CommitPhase(ph).String()}}, s.PhaseN[ph])
	}

	name = prefix + "_phase_sample_interval"
	p.Family(name, "gauge", "1-in-N sampling interval of the commit-phase timers.")
	p.Uint(name, nil, uint64(s.SampleN))
	return p.Err()
}

// CounterProm writes a single-sample counter family — the bridge for
// the reflection-generated stm.Stats snapshot and ad-hoc gauges.
func CounterProm(w io.Writer, name, typ, help string, v uint64) error {
	p := NewPromWriter(w)
	p.Family(name, typ, help)
	p.Uint(name, nil, v)
	return p.Err()
}

// SnakeCase converts a lowerCamel counter key ("selfAborts") to the
// exposition convention ("self_aborts").
func SnakeCase(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'A' && r <= 'Z' {
			b.WriteByte('_')
			b.WriteByte(byte(r) + ('a' - 'A'))
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}
