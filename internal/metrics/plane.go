package metrics

import "sync/atomic"

// AbortReason is the abort taxonomy: every aborted attempt (and the
// two non-abort escalation events, MaxRetries and explicit user
// aborts) is attributed to exactly one reason, replacing the single
// opaque Aborts counter for diagnosis. The stm runtime maps its
// internal unwind causes onto these categories.
type AbortReason uint8

const (
	// AbortKilled: a requestor won the conflict and killed this
	// attempt (mid-execution, while waiting, or at the commit point).
	AbortKilled AbortReason = iota
	// AbortValidation: the read set failed validation — a snapshot
	// extension or commit-time recheck saw a newer version or a
	// foreign lock.
	AbortValidation
	// AbortLockTimeout: the grace period on a locked word expired with
	// the requestor on the losing side (requestor-aborts resolution,
	// or yielding to an irrevocable lock holder).
	AbortLockTimeout
	// AbortBatchAdmission: the group-commit combiner refused this
	// write set (stale reads or an intra-batch lost-update hazard).
	AbortBatchAdmission
	// AbortMaxRetries: the attempt budget ran out and the block
	// escalated to the irrevocable slow path (counted once per
	// escalation, alongside the per-attempt reason that caused it).
	AbortMaxRetries
	// AbortExplicit: the transaction function returned an error — a
	// user-level abort, never retried.
	AbortExplicit

	NumAbortReasons = int(AbortExplicit) + 1
)

// abortReasonNames are the label values used in exposition and JSON.
var abortReasonNames = [NumAbortReasons]string{
	"killed",
	"read-validation",
	"lock-timeout",
	"batch-admission",
	"max-retries",
	"explicit",
}

func (r AbortReason) String() string {
	if int(r) < len(abortReasonNames) {
		return abortReasonNames[r]
	}
	return "unknown"
}

// CommitPhase labels the sampled commit-phase timers.
type CommitPhase uint8

const (
	// PhaseValidate: commit-time read-set validation (and batch
	// admission, its combiner analogue).
	PhaseValidate CommitPhase = iota
	// PhaseLock: commit-lock acquisition (lazy mode; the combiner's
	// merged-plan acquisition in batched mode).
	PhaseLock
	// PhaseWriteBack: applying the buffered write set (including
	// folded delta sums) to the arena words.
	PhaseWriteBack
	// PhaseClock: stripe-clock advance and lock release.
	PhaseClock

	NumCommitPhases = int(PhaseClock) + 1
)

var commitPhaseNames = [NumCommitPhases]string{
	"validate",
	"lock",
	"writeback",
	"clock",
}

func (p CommitPhase) String() string {
	if int(p) < len(commitPhaseNames) {
		return commitPhaseNames[p]
	}
	return "unknown"
}

const cacheLine = 64

// DefaultSampleN is the default 1-in-N sampling interval for the
// commit-phase timers (the histograms are never sampled — every
// transaction is observed).
const DefaultSampleN = 64

// Shard is one worker's slice of the plane. All methods are lock-free
// single-atomic-op updates; a worker hammering its own shard never
// contends with scrapes or with other workers (modulo shard-count
// folding when workers exceed shards).
type Shard struct {
	attempt Histogram // per-attempt wall time, committed and aborted
	commit  Histogram // whole-block wall time of committed blocks
	grace   Histogram // per-conflict grace-period wait
	drain   Histogram // combiner round: drain to outcome stamps

	aborts  [NumAbortReasons]atomic.Uint64
	phaseNs [NumCommitPhases]atomic.Uint64
	phaseN  [NumCommitPhases]atomic.Uint64

	tick       atomic.Uint64
	sampleMask uint64

	_ [cacheLine]byte
}

// ObserveAttempt records one attempt's wall time (ns).
func (s *Shard) ObserveAttempt(ns int64) { s.attempt.Observe(ns) }

// ObserveCommit records a committed block's total wall time (ns),
// first attempt to final commit.
func (s *Shard) ObserveCommit(ns int64) { s.commit.Observe(ns) }

// ObserveGrace records one grace-period wait (ns).
func (s *Shard) ObserveGrace(ns int64) { s.grace.Observe(ns) }

// ObserveDrain records one combiner round's duration (ns).
func (s *Shard) ObserveDrain(ns int64) { s.drain.Observe(ns) }

// Abort attributes one aborted attempt (or escalation event).
func (s *Shard) Abort(r AbortReason) { s.aborts[r].Add(1) }

// Sample reports whether this commit should run the phase timers:
// true once every SampleN calls on this shard.
func (s *Shard) Sample() bool {
	return s.tick.Add(1)&s.sampleMask == 0
}

// Phase accumulates one sampled phase timing (ns).
func (s *Shard) Phase(p CommitPhase, ns int64) {
	if ns < 0 {
		ns = 0
	}
	s.phaseNs[p].Add(uint64(ns))
	s.phaseN[p].Add(1)
}

// Plane is the sharded metrics plane: one Shard per worker slot
// (folded modulo the shard count), merged on Snapshot.
type Plane struct {
	shards  []Shard
	mask    int
	sampleN int
}

// NewPlane builds a plane sized for the given worker count. workers
// is rounded up to a power of two and capped (shards are ~17KB each);
// sampleN is the 1-in-N phase-timer interval, rounded up to a power
// of two, with <= 0 selecting DefaultSampleN.
func NewPlane(workers, sampleN int) *Plane {
	n := 1
	for n < workers && n < 16 {
		n <<= 1
	}
	if sampleN <= 0 {
		sampleN = DefaultSampleN
	}
	sn := 1
	for sn < sampleN {
		sn <<= 1
	}
	p := &Plane{shards: make([]Shard, n), mask: n - 1, sampleN: sn}
	for i := range p.shards {
		p.shards[i].sampleMask = uint64(sn - 1)
	}
	return p
}

// Shard returns the shard for a worker id (any id, including the -1
// of anonymous Atomic calls, maps to a valid shard).
func (p *Plane) Shard(worker int) *Shard {
	if worker < 0 {
		worker = 0
	}
	return &p.shards[worker&p.mask]
}

// SampleN returns the effective phase-timer sampling interval.
func (p *Plane) SampleN() int { return p.sampleN }

// PlaneSnapshot is the merged view of every shard at one instant.
type PlaneSnapshot struct {
	Attempt HistSnapshot
	Commit  HistSnapshot
	Grace   HistSnapshot
	Drain   HistSnapshot

	Aborts  [NumAbortReasons]uint64
	PhaseNs [NumCommitPhases]uint64
	PhaseN  [NumCommitPhases]uint64

	SampleN int
}

// Snapshot merges all shards into one plane-wide view.
func (p *Plane) Snapshot() PlaneSnapshot {
	out := PlaneSnapshot{SampleN: p.sampleN}
	for i := range p.shards {
		sh := &p.shards[i]
		a, c, g, d := sh.attempt.Snapshot(), sh.commit.Snapshot(), sh.grace.Snapshot(), sh.drain.Snapshot()
		out.Attempt.Merge(&a)
		out.Commit.Merge(&c)
		out.Grace.Merge(&g)
		out.Drain.Merge(&d)
		for r := 0; r < NumAbortReasons; r++ {
			out.Aborts[r] += sh.aborts[r].Load()
		}
		for ph := 0; ph < NumCommitPhases; ph++ {
			out.PhaseNs[ph] += sh.phaseNs[ph].Load()
			out.PhaseN[ph] += sh.phaseN[ph].Load()
		}
	}
	return out
}

// AbortTotal sums the taxonomy (per-attempt reasons only, excluding
// the MaxRetries escalation marker and explicit user aborts, so the
// total is comparable to Stats.Aborts).
func (s *PlaneSnapshot) AbortTotal() uint64 {
	var t uint64
	for r := 0; r < NumAbortReasons; r++ {
		if r == int(AbortMaxRetries) || r == int(AbortExplicit) {
			continue
		}
		t += s.Aborts[r]
	}
	return t
}

// LatencySummaries renders the four histograms as the standard
// quantile ladder, keyed for JSON (/v1/stats, BENCH cells).
func (s *PlaneSnapshot) LatencySummaries() map[string]Quantiles {
	return map[string]Quantiles{
		"attempt":       s.Attempt.Summary(),
		"commit":        s.Commit.Summary(),
		"graceWait":     s.Grace.Summary(),
		"combinerDrain": s.Drain.Summary(),
	}
}

// AbortCounts renders the taxonomy as a name-keyed map.
func (s *PlaneSnapshot) AbortCounts() map[string]uint64 {
	out := make(map[string]uint64, NumAbortReasons)
	for r := 0; r < NumAbortReasons; r++ {
		out[AbortReason(r).String()] = s.Aborts[r]
	}
	return out
}
