package trace

// The block-framed binary trace container (.btrace) — the compact
// sibling of the JSONL format for production-scale captures. JSONL
// costs ~100 bytes/record; this format encodes the same Record
// stream at ~10-25 bytes/record (varint + delta coding, optional
// per-block DEFLATE), which is what makes 10⁶–10⁸-transaction traces
// practical to record, store and replay.
//
// Layout (all integers are unsigned varints unless stated; signed
// values use zigzag varints via encoding/binary.AppendVarint):
//
//	file    := magic(8 bytes, "txcbtr01") headerLen headerJSON block* footer trailer
//	block   := 'B' flags(1) count rawLen storedLen payload[storedLen] crc32(4, LE)
//	footer  := 'I' nBlocks entry* totalRecords crc32(4, LE)
//	entry   := count offsetΔ minStartΔ(zigzag) spanNs
//	trailer := footerOffset(8, LE) tailMagic(8 bytes, "txcbtrEN")
//
// Header JSON is the same Header struct the JSONL format writes
// (format name, version, scenario provenance, the calibrated UnitNs
// cycle conversion); the footer's totalRecords is authoritative for
// the record count, so the stream can be written without knowing it
// up front. Block flags bit 0 marks a DEFLATE-compressed payload
// (applied per block, and only when it actually shrinks the block);
// crc32 (Castagnoli) covers the stored payload bytes. The footer's
// per-block index — record count, byte offset of the block's 'B'
// tag, min start timestamp and timestamp span — lets a seekable
// reader jump to any block (LoadSample) without decoding the rest.
// The trailer locates the footer from EOF.
//
// Record payload encoding (per record, inside a block):
//
//	flags(1)  bit0 committed, bit1 irrevocable,
//	          bit2 reads delta-coded, bit3 writes delta-coded
//	worker    zigzag
//	startNs   zigzag; absolute for the block's first record, then
//	          delta vs the previous record (blocks decode
//	          independently, which is what makes sampling work)
//	durNs graceNs retries killsSuffered killsIssued ops foldedWrites
//	compute think   float64 bits, byte-reversed then uvarint (round
//	                scenario lengths have few mantissa bits, so the
//	                reversal turns them into small varints)
//	reads     count, then either first+diffs (delta-coded when the
//	          footprint is nondecreasing — recorded footprints are
//	          sorted) or raw absolute indices
//	writes    same
//
// Version bumps ride the 8-byte magic ("txcbtr01" is v1) plus the
// embedded header's Version field; readers reject both newer magics
// and newer header versions.

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"os"
)

const (
	// BinaryMagic opens every .btrace file; the trailing "01" is the
	// container version.
	BinaryMagic = "txcbtr01"
	// binaryTailMagic closes the file, after the 8-byte footer offset.
	binaryTailMagic = "txcbtrEN"

	blockTag  = 'B'
	footerTag = 'I'

	blockFlagCompressed = 1 << 0

	recFlagCommitted   = 1 << 0
	recFlagIrrevocable = 1 << 1
	recFlagReadsDelta  = 1 << 2
	recFlagWritesDelta = 1 << 3

	// DefaultBlockRecords is the block framing bound: the writer seals
	// a block at this many records (or at maxBlockBytes of payload,
	// whichever comes first), so readers never hold more than one
	// block of records in memory.
	DefaultBlockRecords = 4096
	// maxBlockBytes caps one block's uncompressed payload on both
	// sides: the writer seals early past 8 MiB, and the reader rejects
	// declared sizes beyond 64 MiB before allocating (a lying header
	// must not commit us to a huge allocation — the binary analogue of
	// the JSONL unbounded-preallocation fix).
	maxBlockBytes     = 8 << 20
	maxDecodeBlock    = 64 << 20
	maxHeaderJSON     = 1 << 20
	maxFooterBytes    = 16 << 20
	maxBlockRecordCap = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// BlockIndex is one footer entry: where a block lives and what record
// and time range it covers — enough to seek or sample without
// decoding the blocks in between.
type BlockIndex struct {
	// FirstRecord and Records give the block's record range
	// [FirstRecord, FirstRecord+Records).
	FirstRecord int
	Records     int
	// Offset is the file offset of the block's 'B' tag byte.
	Offset int64
	// MinStartNs and MaxStartNs bound the block's record start
	// timestamps.
	MinStartNs, MaxStartNs int64
}

// BinaryWriterOptions tunes the block framing.
type BinaryWriterOptions struct {
	// BlockRecords is the records-per-block bound (0 =
	// DefaultBlockRecords).
	BlockRecords int
	// NoCompress disables the per-block DEFLATE attempt (the writer
	// otherwise compresses each block and keeps whichever encoding is
	// smaller).
	NoCompress bool
}

// Writer streams Records into the block-framed binary container. One
// block of records is buffered at a time; Close seals the last block
// and writes the index footer and trailer. The writer needs only an
// io.Writer — the record count and index live in the footer, so
// nothing is back-patched.
type Writer struct {
	w   *bufio.Writer
	opt BinaryWriterOptions

	payload []byte // current block, uncompressed
	scratch bytes.Buffer
	fw      *flate.Writer

	blockRecs          int
	prevStart          int64
	minStart, maxStart int64

	off   int64 // bytes emitted so far (block offsets)
	index []BlockIndex
	total int

	closed bool
	err    error
}

// NewWriter starts a binary trace stream on w: magic and header are
// written immediately, records follow via WriteRecord, and Close
// seals the file. The header's Count may be zero — the footer carries
// the authoritative record count.
func NewWriter(w io.Writer, h Header, opt BinaryWriterOptions) (*Writer, error) {
	if opt.BlockRecords <= 0 {
		opt.BlockRecords = DefaultBlockRecords
	}
	h.Format = FormatName
	h.Version = FormatVersion
	hj, err := json.Marshal(&h)
	if err != nil {
		return nil, fmt.Errorf("trace: encode binary header: %w", err)
	}
	bw := &Writer{w: bufio.NewWriterSize(w, 1<<16), opt: opt}
	var pre []byte
	pre = append(pre, BinaryMagic...)
	pre = binary.AppendUvarint(pre, uint64(len(hj)))
	pre = append(pre, hj...)
	if _, err := bw.w.Write(pre); err != nil {
		bw.err = err
		return nil, fmt.Errorf("trace: write binary header: %w", err)
	}
	bw.off = int64(len(pre))
	return bw, nil
}

// WriteRecord appends one record to the stream, sealing a block when
// the framing bounds are reached.
func (bw *Writer) WriteRecord(r *Record) error {
	if bw.err != nil {
		return bw.err
	}
	if bw.closed {
		return fmt.Errorf("trace: WriteRecord after Close")
	}
	if bw.blockRecs == 0 {
		bw.minStart, bw.maxStart = r.StartNs, r.StartNs
		bw.payload = appendRecord(bw.payload[:0], r, r.StartNs, true)
	} else {
		if r.StartNs < bw.minStart {
			bw.minStart = r.StartNs
		}
		if r.StartNs > bw.maxStart {
			bw.maxStart = r.StartNs
		}
		bw.payload = appendRecord(bw.payload, r, bw.prevStart, false)
	}
	bw.prevStart = r.StartNs
	bw.blockRecs++
	bw.total++
	if bw.blockRecs >= bw.opt.BlockRecords || len(bw.payload) >= maxBlockBytes {
		return bw.flushBlock()
	}
	return nil
}

// flushBlock seals the buffered block: compress if it helps, frame,
// CRC, and record the index entry.
func (bw *Writer) flushBlock() error {
	if bw.blockRecs == 0 {
		return nil
	}
	stored := bw.payload
	var flags byte
	if !bw.opt.NoCompress {
		bw.scratch.Reset()
		if bw.fw == nil {
			bw.fw, _ = flate.NewWriter(&bw.scratch, flate.BestSpeed)
		} else {
			bw.fw.Reset(&bw.scratch)
		}
		if _, err := bw.fw.Write(bw.payload); err == nil && bw.fw.Close() == nil &&
			bw.scratch.Len() < len(bw.payload) {
			stored = bw.scratch.Bytes()
			flags = blockFlagCompressed
		}
	}
	var frame []byte
	frame = append(frame, blockTag, flags)
	frame = binary.AppendUvarint(frame, uint64(bw.blockRecs))
	frame = binary.AppendUvarint(frame, uint64(len(bw.payload)))
	frame = binary.AppendUvarint(frame, uint64(len(stored)))
	frame = append(frame, stored...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(stored, crcTable))
	if _, err := bw.w.Write(frame); err != nil {
		bw.err = err
		return fmt.Errorf("trace: write block: %w", err)
	}
	bw.index = append(bw.index, BlockIndex{
		FirstRecord: bw.total - bw.blockRecs,
		Records:     bw.blockRecs,
		Offset:      bw.off,
		MinStartNs:  bw.minStart,
		MaxStartNs:  bw.maxStart,
	})
	bw.off += int64(len(frame))
	bw.blockRecs = 0
	bw.payload = bw.payload[:0]
	return nil
}

// Close seals the last block and writes the index footer and trailer.
// The Writer is unusable afterwards; closing the underlying file is
// the caller's job.
func (bw *Writer) Close() error {
	if bw.closed {
		return bw.err
	}
	if err := bw.flushBlock(); err != nil {
		return err
	}
	bw.closed = true
	footerOff := bw.off
	var f []byte
	f = append(f, footerTag)
	f = binary.AppendUvarint(f, uint64(len(bw.index)))
	var prevOff, prevMin int64
	for _, e := range bw.index {
		f = binary.AppendUvarint(f, uint64(e.Records))
		f = binary.AppendUvarint(f, uint64(e.Offset-prevOff))
		f = binary.AppendVarint(f, e.MinStartNs-prevMin)
		f = binary.AppendUvarint(f, uint64(e.MaxStartNs-e.MinStartNs))
		prevOff, prevMin = e.Offset, e.MinStartNs
	}
	f = binary.AppendUvarint(f, uint64(bw.total))
	f = binary.LittleEndian.AppendUint32(f, crc32.Checksum(f, crcTable))
	f = binary.LittleEndian.AppendUint64(f, uint64(footerOff))
	f = append(f, binaryTailMagic...)
	if _, err := bw.w.Write(f); err != nil {
		bw.err = err
		return fmt.Errorf("trace: write footer: %w", err)
	}
	if err := bw.w.Flush(); err != nil {
		bw.err = err
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Count returns the number of records written so far.
func (bw *Writer) Count() int { return bw.total }

// Index returns the sealed blocks' index entries (complete only after
// Close).
func (bw *Writer) Index() []BlockIndex { return bw.index }

// appendRecord encodes one record onto buf. prevStart is the previous
// record's StartNs (the delta base); first marks the block's first
// record, whose StartNs is encoded absolutely.
func appendRecord(buf []byte, r *Record, prevStart int64, first bool) []byte {
	var flags byte
	if r.Committed {
		flags |= recFlagCommitted
	}
	if r.Irrevocable {
		flags |= recFlagIrrevocable
	}
	readsDelta := isNondecreasing(r.Reads)
	writesDelta := isNondecreasing(r.Writes)
	if readsDelta {
		flags |= recFlagReadsDelta
	}
	if writesDelta {
		flags |= recFlagWritesDelta
	}
	buf = append(buf, flags)
	buf = binary.AppendVarint(buf, int64(r.Worker))
	if first {
		buf = binary.AppendVarint(buf, r.StartNs)
	} else {
		buf = binary.AppendVarint(buf, r.StartNs-prevStart)
	}
	buf = binary.AppendUvarint(buf, uint64(r.DurNs))
	buf = binary.AppendUvarint(buf, uint64(r.GraceNs))
	buf = binary.AppendUvarint(buf, uint64(r.Retries))
	buf = binary.AppendUvarint(buf, uint64(r.KillsSuffered))
	buf = binary.AppendUvarint(buf, uint64(r.KillsIssued))
	buf = binary.AppendUvarint(buf, uint64(r.Ops))
	buf = binary.AppendUvarint(buf, uint64(r.FoldedWrites))
	buf = appendFloat(buf, r.Compute)
	buf = appendFloat(buf, r.Think)
	buf = appendIndexList(buf, r.Reads, readsDelta)
	buf = appendIndexList(buf, r.Writes, writesDelta)
	return buf
}

func isNondecreasing(xs []uint32) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// appendFloat varint-encodes a float64's byte-reversed IEEE bits:
// scenario lengths are mostly small round numbers whose mantissa tail
// is zero, so the reversal puts the zeros in the high bits and the
// uvarint stays short.
func appendFloat(buf []byte, v float64) []byte {
	return binary.AppendUvarint(buf, bits.ReverseBytes64(math.Float64bits(v)))
}

func appendIndexList(buf []byte, xs []uint32, delta bool) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(xs)))
	if delta {
		prev := uint32(0)
		for i, x := range xs {
			if i == 0 {
				buf = binary.AppendUvarint(buf, uint64(x))
			} else {
				buf = binary.AppendUvarint(buf, uint64(x-prev))
			}
			prev = x
		}
		return buf
	}
	for _, x := range xs {
		buf = binary.AppendUvarint(buf, uint64(x))
	}
	return buf
}

// cursor is a bounds-checked byte reader for the decode paths (the
// fuzz harness feeds these arbitrary bytes, so every read must fail
// cleanly instead of slicing out of range).
type cursor struct {
	b   []byte
	pos int
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: bad uvarint at offset %d", c.pos)
	}
	c.pos += n
	return v, nil
}

func (c *cursor) varint() (int64, error) {
	v, n := binary.Varint(c.b[c.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: bad varint at offset %d", c.pos)
	}
	c.pos += n
	return v, nil
}

func (c *cursor) byte() (byte, error) {
	if c.pos >= len(c.b) {
		return 0, fmt.Errorf("trace: truncated at offset %d", c.pos)
	}
	b := c.b[c.pos]
	c.pos++
	return b, nil
}

func (c *cursor) float() (float64, error) {
	v, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(bits.ReverseBytes64(v)), nil
}

func (c *cursor) indexList(delta bool) ([]uint32, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	// Each entry is at least one byte: bound the allocation by the
	// remaining payload before trusting the declared count.
	if n > uint64(len(c.b)-c.pos) {
		return nil, fmt.Errorf("trace: footprint count %d exceeds remaining payload", n)
	}
	xs := make([]uint32, n)
	prev := uint64(0)
	for i := range xs {
		v, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if delta && i > 0 {
			v += prev
		}
		if v > math.MaxUint32 {
			return nil, fmt.Errorf("trace: footprint index %d overflows uint32", v)
		}
		xs[i] = uint32(v)
		prev = v
	}
	return xs, nil
}

// decodeRecord decodes one record from the cursor. prevStart is the
// previous record's StartNs; first marks the block's first record.
func decodeRecord(c *cursor, r *Record, prevStart int64, first bool) error {
	flags, err := c.byte()
	if err != nil {
		return err
	}
	worker, err := c.varint()
	if err != nil {
		return err
	}
	start, err := c.varint()
	if err != nil {
		return err
	}
	if !first {
		start += prevStart
	}
	u := make([]uint64, 7)
	for i := range u {
		if u[i], err = c.uvarint(); err != nil {
			return err
		}
	}
	compute, err := c.float()
	if err != nil {
		return err
	}
	think, err := c.float()
	if err != nil {
		return err
	}
	reads, err := c.indexList(flags&recFlagReadsDelta != 0)
	if err != nil {
		return err
	}
	writes, err := c.indexList(flags&recFlagWritesDelta != 0)
	if err != nil {
		return err
	}
	if worker < math.MinInt32 || worker > math.MaxInt32 {
		return fmt.Errorf("trace: worker %d overflows int32", worker)
	}
	if u[0] > math.MaxInt64 || u[1] > math.MaxInt64 {
		return fmt.Errorf("trace: duration overflows int64")
	}
	for _, v := range u[2:] {
		if v > math.MaxUint32 {
			return fmt.Errorf("trace: counter %d overflows uint32", v)
		}
	}
	*r = Record{
		Worker:        int32(worker),
		StartNs:       start,
		DurNs:         int64(u[0]),
		GraceNs:       int64(u[1]),
		Retries:       uint32(u[2]),
		KillsSuffered: uint32(u[3]),
		KillsIssued:   uint32(u[4]),
		Ops:           uint32(u[5]),
		FoldedWrites:  uint32(u[6]),
		Committed:     flags&recFlagCommitted != 0,
		Irrevocable:   flags&recFlagIrrevocable != 0,
		Compute:       compute,
		Think:         think,
		Reads:         reads,
		Writes:        writes,
	}
	return nil
}

// binaryReader streams records out of a block-framed binary trace.
// It reads one block at a time (decompress, CRC-check, decode), so
// memory stays bounded by the block size regardless of trace length.
type binaryReader struct {
	br *bufio.Reader
	h  Header

	block    []Record // decoded current block
	blockPos int

	total   int // records handed out
	footer  bool
	footerN int // record count the footer promised

	rawBuf, storedBuf []byte
	fr                io.ReadCloser
}

// newBinaryReader parses the magic and header and positions the
// stream at the first block.
func newBinaryReader(r io.Reader) (*binaryReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(BinaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: read binary magic: %w", err)
	}
	if string(magic) != BinaryMagic {
		if string(magic[:6]) == BinaryMagic[:6] {
			return nil, fmt.Errorf("trace: unsupported binary container version %q (this build reads %q)",
				magic, BinaryMagic)
		}
		return nil, fmt.Errorf("trace: not a %s binary trace (magic %q)", FormatName, magic)
	}
	hlen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: read header length: %w", err)
	}
	if hlen > maxHeaderJSON {
		return nil, fmt.Errorf("trace: header length %d exceeds %d", hlen, maxHeaderJSON)
	}
	hj := make([]byte, hlen)
	if _, err := io.ReadFull(br, hj); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	var h Header
	if err := json.Unmarshal(hj, &h); err != nil {
		return nil, fmt.Errorf("trace: parse header: %w", err)
	}
	if h.Format != FormatName {
		return nil, fmt.Errorf("trace: not a %s stream (format %q)", FormatName, h.Format)
	}
	if h.Version < 1 || h.Version > FormatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d (this build reads <= %d)",
			h.Version, FormatVersion)
	}
	return &binaryReader{br: br, h: h}, nil
}

func (r *binaryReader) Header() *Header { return &r.h }

// Next decodes the next record into rec, loading the next block when
// the current one is exhausted. It returns io.EOF after the last
// record — but only once the footer has validated the stream.
func (r *binaryReader) Next(rec *Record) error {
	for r.blockPos >= len(r.block) {
		if r.footer {
			return io.EOF
		}
		if err := r.loadBlock(); err != nil {
			return err
		}
	}
	*rec = r.block[r.blockPos]
	r.blockPos++
	r.total++
	return nil
}

// loadBlock reads the next frame: a block (decoded into r.block) or
// the footer (validated, then EOF-ready).
func (r *binaryReader) loadBlock() error {
	tag, err := r.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return fmt.Errorf("trace: truncated binary stream: no index footer after %d records", r.total)
		}
		return fmt.Errorf("trace: read frame tag: %w", err)
	}
	switch tag {
	case blockTag:
		return r.decodeBlock()
	case footerTag:
		return r.readFooter()
	default:
		return fmt.Errorf("trace: unknown frame tag 0x%02x after %d records", tag, r.total)
	}
}

func (r *binaryReader) decodeBlock() error {
	flags, err := r.br.ReadByte()
	if err != nil {
		return fmt.Errorf("trace: read block flags: %w", err)
	}
	count, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("trace: read block count: %w", err)
	}
	rawLen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("trace: read block raw length: %w", err)
	}
	storedLen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("trace: read block stored length: %w", err)
	}
	if rawLen > maxDecodeBlock || storedLen > maxDecodeBlock {
		return fmt.Errorf("trace: block size %d/%d exceeds %d", rawLen, storedLen, maxDecodeBlock)
	}
	if count > maxBlockRecordCap || count > rawLen {
		// Every record costs at least one payload byte; a count beyond
		// that is a lying header, rejected before any allocation.
		return fmt.Errorf("trace: block count %d impossible for %d payload bytes", count, rawLen)
	}
	if cap(r.storedBuf) < int(storedLen) {
		r.storedBuf = make([]byte, storedLen)
	}
	stored := r.storedBuf[:storedLen]
	if _, err := io.ReadFull(r.br, stored); err != nil {
		return fmt.Errorf("trace: read block payload: %w", err)
	}
	var crcBytes [4]byte
	if _, err := io.ReadFull(r.br, crcBytes[:]); err != nil {
		return fmt.Errorf("trace: read block crc: %w", err)
	}
	if got, want := crc32.Checksum(stored, crcTable), binary.LittleEndian.Uint32(crcBytes[:]); got != want {
		return fmt.Errorf("trace: block crc mismatch: computed %08x, stored %08x", got, want)
	}
	payload := stored
	if flags&blockFlagCompressed != 0 {
		if cap(r.rawBuf) < int(rawLen) {
			r.rawBuf = make([]byte, rawLen)
		}
		raw := r.rawBuf[:rawLen]
		fr := flate.NewReader(bytes.NewReader(stored))
		if _, err := io.ReadFull(fr, raw); err != nil {
			return fmt.Errorf("trace: decompress block: %w", err)
		}
		// The declared raw length must be exact, or the block framing
		// and the compressed stream disagree.
		var one [1]byte
		if n, _ := fr.Read(one[:]); n != 0 {
			return fmt.Errorf("trace: compressed block longer than declared %d bytes", rawLen)
		}
		fr.Close()
		payload = raw
	} else if uint64(len(payload)) != rawLen {
		return fmt.Errorf("trace: uncompressed block length %d, declared %d", len(payload), rawLen)
	}
	if cap(r.block) < int(count) {
		r.block = make([]Record, count)
	}
	r.block = r.block[:count]
	c := &cursor{b: payload}
	var prevStart int64
	for i := range r.block {
		if err := decodeRecord(c, &r.block[i], prevStart, i == 0); err != nil {
			return fmt.Errorf("trace: record %d: %w", r.total+i, err)
		}
		prevStart = r.block[i].StartNs
	}
	if c.pos != len(payload) {
		return fmt.Errorf("trace: block has %d trailing payload bytes", len(payload)-c.pos)
	}
	r.blockPos = 0
	return nil
}

// readFooter parses and validates the index footer and trailer; after
// it returns the reader serves io.EOF.
func (r *binaryReader) readFooter() error {
	// The footer tag has been consumed; the rest of the stream is
	// footer body + 4-byte CRC + 16-byte trailer, all bounded.
	rest, err := io.ReadAll(io.LimitReader(r.br, maxFooterBytes))
	if err != nil {
		return fmt.Errorf("trace: read footer: %w", err)
	}
	if len(rest) < 4+16 {
		return fmt.Errorf("trace: truncated footer (%d bytes)", len(rest))
	}
	trailer := rest[len(rest)-16:]
	if string(trailer[8:]) != binaryTailMagic {
		return fmt.Errorf("trace: bad trailer magic %q", trailer[8:])
	}
	body := rest[:len(rest)-16-4]
	crcStored := binary.LittleEndian.Uint32(rest[len(rest)-16-4 : len(rest)-16])
	// The CRC covers the footer tag byte plus the body.
	full := append([]byte{footerTag}, body...)
	if got := crc32.Checksum(full, crcTable); got != crcStored {
		return fmt.Errorf("trace: footer crc mismatch: computed %08x, stored %08x", got, crcStored)
	}
	idx, total, err := parseFooterBody(body)
	if err != nil {
		return err
	}
	if total != r.total {
		return fmt.Errorf("trace: truncated stream: %d records, footer promises %d", r.total, total)
	}
	var sum int
	for _, e := range idx {
		sum += e.Records
	}
	if sum != total {
		return fmt.Errorf("trace: footer index covers %d records, footer promises %d", sum, total)
	}
	r.footer = true
	r.footerN = total
	r.h.Count = total
	return nil
}

// parseFooterBody decodes the footer's index entries and total count
// (the bytes between the 'I' tag and the CRC).
func parseFooterBody(body []byte) ([]BlockIndex, int, error) {
	c := &cursor{b: body}
	n, err := c.uvarint()
	if err != nil {
		return nil, 0, fmt.Errorf("trace: footer block count: %w", err)
	}
	if n > uint64(len(body)) {
		return nil, 0, fmt.Errorf("trace: footer block count %d impossible for %d bytes", n, len(body))
	}
	idx := make([]BlockIndex, n)
	var prevOff, prevMin int64
	first := 0
	for i := range idx {
		recs, err := c.uvarint()
		if err != nil {
			return nil, 0, err
		}
		offD, err := c.uvarint()
		if err != nil {
			return nil, 0, err
		}
		minD, err := c.varint()
		if err != nil {
			return nil, 0, err
		}
		span, err := c.uvarint()
		if err != nil {
			return nil, 0, err
		}
		if recs > maxBlockRecordCap {
			return nil, 0, fmt.Errorf("trace: footer entry %d count %d exceeds block cap", i, recs)
		}
		if offD > math.MaxInt64-uint64(prevOff) || span > math.MaxInt64 {
			return nil, 0, fmt.Errorf("trace: footer entry %d offset overflow", i)
		}
		e := &idx[i]
		e.FirstRecord = first
		e.Records = int(recs)
		e.Offset = prevOff + int64(offD)
		e.MinStartNs = prevMin + minD
		e.MaxStartNs = e.MinStartNs + int64(span)
		prevOff, prevMin = e.Offset, e.MinStartNs
		first += int(recs)
	}
	total, err := c.uvarint()
	if err != nil {
		return nil, 0, fmt.Errorf("trace: footer total: %w", err)
	}
	if c.pos != len(body) {
		return nil, 0, fmt.Errorf("trace: footer has %d trailing bytes", len(body)-c.pos)
	}
	if total > math.MaxInt32 {
		return nil, 0, fmt.Errorf("trace: footer total %d overflows", total)
	}
	return idx, int(total), nil
}

func (r *binaryReader) Close() error { return nil }

// WriteBinary encodes the whole trace to w in the binary container
// (the []Record-materialized convenience; Writer is the streaming
// path).
func WriteBinary(w io.Writer, tr *Trace) error {
	h := tr.Header
	h.Count = len(tr.Records)
	bw, err := NewWriter(w, h, BinaryWriterOptions{})
	if err != nil {
		return err
	}
	for i := range tr.Records {
		if err := bw.WriteRecord(&tr.Records[i]); err != nil {
			return err
		}
	}
	return bw.Close()
}

// ReadBinary materializes a binary trace from r, validating framing,
// CRCs, and the index footer.
func ReadBinary(r io.Reader) (*Trace, error) {
	br, err := newBinaryReader(r)
	if err != nil {
		return nil, err
	}
	return materialize(br)
}

// ReadIndex opens the binary trace at path and returns its header and
// block index via the trailer — no record decoding, O(footer) work
// regardless of trace size.
func ReadIndex(path string) (*Header, []BlockIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	h, idx, _, err := readIndexFile(f)
	return h, idx, err
}

// readIndexFile reads the header (front) and footer (via the trailer
// at EOF) of an open binary trace file.
func readIndexFile(f *os.File) (*Header, []BlockIndex, int, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, 0, fmt.Errorf("trace: %w", err)
	}
	size := st.Size()
	if size < int64(len(BinaryMagic))+16 {
		return nil, nil, 0, fmt.Errorf("trace: file too short (%d bytes) for a binary trace", size)
	}
	var trailer [16]byte
	if _, err := f.ReadAt(trailer[:], size-16); err != nil {
		return nil, nil, 0, fmt.Errorf("trace: read trailer: %w", err)
	}
	if string(trailer[8:]) != binaryTailMagic {
		return nil, nil, 0, fmt.Errorf("trace: bad trailer magic %q", trailer[8:])
	}
	footerOff := int64(binary.LittleEndian.Uint64(trailer[:8]))
	if footerOff < int64(len(BinaryMagic)) || footerOff >= size-16 {
		return nil, nil, 0, fmt.Errorf("trace: footer offset %d out of range", footerOff)
	}
	// Header: parse from the front (reuse the streaming reader's
	// header logic without consuming blocks).
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, nil, 0, fmt.Errorf("trace: %w", err)
	}
	br, err := newBinaryReader(f)
	if err != nil {
		return nil, nil, 0, err
	}
	h := br.h
	// Footer: tag + body + CRC + trailer.
	flen := size - 16 - footerOff
	if flen > maxFooterBytes {
		return nil, nil, 0, fmt.Errorf("trace: footer length %d exceeds %d", flen, maxFooterBytes)
	}
	fbytes := make([]byte, flen)
	if _, err := f.ReadAt(fbytes, footerOff); err != nil {
		return nil, nil, 0, fmt.Errorf("trace: read footer: %w", err)
	}
	if len(fbytes) < 1+4 || fbytes[0] != footerTag {
		return nil, nil, 0, fmt.Errorf("trace: footer offset does not point at an index footer")
	}
	body := fbytes[1 : len(fbytes)-4]
	crcStored := binary.LittleEndian.Uint32(fbytes[len(fbytes)-4:])
	if got := crc32.Checksum(fbytes[:len(fbytes)-4], crcTable); got != crcStored {
		return nil, nil, 0, fmt.Errorf("trace: footer crc mismatch: computed %08x, stored %08x", got, crcStored)
	}
	idx, total, err := parseFooterBody(body)
	if err != nil {
		return nil, nil, 0, err
	}
	h.Count = total
	return &h, idx, total, nil
}

// decodeBlockAt seeks to one indexed block and decodes it — the
// sampling path: only the selected blocks are ever read.
func decodeBlockAt(f *os.File, e BlockIndex, out []Record) ([]Record, error) {
	if _, err := f.Seek(e.Offset, io.SeekStart); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	br := &binaryReader{br: bufio.NewReaderSize(f, 1<<16)}
	tag, err := br.br.ReadByte()
	if err != nil || tag != blockTag {
		return nil, fmt.Errorf("trace: indexed offset %d does not frame a block", e.Offset)
	}
	if err := br.decodeBlock(); err != nil {
		return nil, err
	}
	if len(br.block) != e.Records {
		return nil, fmt.Errorf("trace: indexed block at %d has %d records, index promises %d",
			e.Offset, len(br.block), e.Records)
	}
	return append(out, br.block...), nil
}
