package trace

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randomTrace draws a structurally valid but adversarial trace:
// unsorted footprints (forcing the raw index encoding), empty and
// long footprints, negative and huge workers, fold counters, floats
// with full mantissas, extreme timestamps — everything the format
// claims to carry.
func randomTrace(rng *rand.Rand) *Trace {
	tr := &Trace{
		Header: Header{
			Scenario:       "prop",
			Workers:        1 + rng.Intn(16),
			Config:         "roundtrip-property",
			CapturedUnixNs: rng.Int63(),
		},
	}
	if rng.Intn(2) == 0 {
		tr.UnitNs = rng.Float64() * 10
	}
	n := rng.Intn(300)
	start := int64(0)
	for i := 0; i < n; i++ {
		// Timestamps mostly march forward (the recorder merges by
		// StartNs) but with occasional large jumps and repeats.
		switch rng.Intn(10) {
		case 0:
			start += rng.Int63n(1 << 40)
		case 1: // repeat
		default:
			start += rng.Int63n(5000)
		}
		r := Record{
			Worker:        int32(rng.Intn(20) - 2),
			StartNs:       start,
			DurNs:         rng.Int63n(1 << 50),
			GraceNs:       rng.Int63n(1 << 30),
			Retries:       uint32(rng.Intn(1000)),
			KillsSuffered: uint32(rng.Intn(10)),
			KillsIssued:   uint32(rng.Intn(10)),
			Ops:           uint32(rng.Intn(100)),
			FoldedWrites:  uint32(rng.Intn(50)),
			Committed:     rng.Intn(3) != 0,
			Irrevocable:   rng.Intn(20) == 0,
			Compute:       rng.Float64() * 1e6,
			Think:         float64(rng.Intn(100)),
			Reads:         randomFootprint(rng),
			Writes:        randomFootprint(rng),
		}
		if rng.Intn(10) == 0 {
			r.Compute = math.Float64frombits(rng.Uint64() &^ (0x7ff << 52)) // subnormal-ish, full mantissa
		}
		tr.Records = append(tr.Records, r)
	}
	tr.Count = len(tr.Records)
	return tr
}

func randomFootprint(rng *rand.Rand) []uint32 {
	switch rng.Intn(5) {
	case 0:
		return nil
	case 1: // long sorted footprint: the delta-coded path
		n := 1 + rng.Intn(64)
		xs := make([]uint32, n)
		x := rng.Uint32() % 1000
		for i := range xs {
			xs[i] = x
			x += rng.Uint32() % 100
		}
		return xs
	case 2: // unsorted: forces the raw encoding
		n := 2 + rng.Intn(16)
		xs := make([]uint32, n)
		for i := range xs {
			xs[i] = rng.Uint32()
		}
		return xs
	case 3: // boundary values
		return []uint32{math.MaxUint32, 0, math.MaxUint32 - 1}
	default:
		return []uint32{rng.Uint32() % 4096}
	}
}

// TestRoundTripProperty is the cross-format property test: for random
// traces, JSONL → binary → JSONL preserves every record semantically,
// and re-encoding the binary form is byte-stable. Runs under -race in
// CI's race-short lane.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	iters := 50
	if testing.Short() {
		iters = 10
	}
	for it := 0; it < iters; it++ {
		tr := randomTrace(rng)

		// JSONL encode/decode.
		var jbuf bytes.Buffer
		if err := Write(&jbuf, tr); err != nil {
			t.Fatalf("iter %d: jsonl encode: %v", it, err)
		}
		fromJSONL, err := Read(bytes.NewReader(jbuf.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: jsonl decode: %v", it, err)
		}

		// Binary encode/decode of the JSONL-loaded trace.
		var bbuf bytes.Buffer
		if err := WriteBinary(&bbuf, fromJSONL); err != nil {
			t.Fatalf("iter %d: binary encode: %v", it, err)
		}
		fromBinary, err := ReadBinary(bytes.NewReader(bbuf.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: binary decode: %v", it, err)
		}

		// Back to JSONL: the full cross-format loop.
		var jbuf2 bytes.Buffer
		if err := Write(&jbuf2, fromBinary); err != nil {
			t.Fatalf("iter %d: jsonl re-encode: %v", it, err)
		}
		back, err := Read(bytes.NewReader(jbuf2.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: jsonl re-decode: %v", it, err)
		}

		want := normalizeTrace(tr)
		for step, got := range map[string]*Trace{
			"jsonl": fromJSONL, "binary": fromBinary, "jsonl-again": back,
		} {
			if !reflect.DeepEqual(want, normalizeTrace(got)) {
				t.Fatalf("iter %d: %s round trip diverged (records %d)", it, step, len(tr.Records))
			}
		}

		// Binary re-encode must be byte-identical: same records, same
		// block framing, same footer.
		var bbuf2 bytes.Buffer
		if err := WriteBinary(&bbuf2, fromBinary); err != nil {
			t.Fatalf("iter %d: binary re-encode: %v", it, err)
		}
		if !bytes.Equal(bbuf.Bytes(), bbuf2.Bytes()) {
			t.Fatalf("iter %d: binary re-encode not byte-stable: %d vs %d bytes",
				it, bbuf.Len(), bbuf2.Len())
		}
	}
}

// TestRoundTripEmpty pins the degenerate cases: a record-free trace
// and single-record traces survive both formats.
func TestRoundTripEmpty(t *testing.T) {
	for _, tr := range []*Trace{
		{Header: Header{Scenario: "empty", Workers: 1}},
		{Header: Header{Scenario: "one", Workers: 1},
			Records: []Record{{Worker: 0, StartNs: 0}}},
		{Header: Header{Scenario: "neg", Workers: 1},
			Records: []Record{{Worker: -1, StartNs: math.MaxInt64 / 2, Committed: true}}},
	} {
		var bbuf bytes.Buffer
		if err := WriteBinary(&bbuf, tr); err != nil {
			t.Fatalf("%s: %v", tr.Scenario, err)
		}
		got, err := ReadBinary(bytes.NewReader(bbuf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", tr.Scenario, err)
		}
		if !reflect.DeepEqual(normalizeTrace(tr), normalizeTrace(got)) {
			t.Fatalf("%s: binary round trip diverged", tr.Scenario)
		}
		var jbuf bytes.Buffer
		if err := Write(&jbuf, tr); err != nil {
			t.Fatalf("%s: %v", tr.Scenario, err)
		}
		got, err = Read(bytes.NewReader(jbuf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", tr.Scenario, err)
		}
		if !reflect.DeepEqual(normalizeTrace(tr), normalizeTrace(got)) {
			t.Fatalf("%s: jsonl round trip diverged", tr.Scenario)
		}
	}
}
