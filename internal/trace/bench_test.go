package trace

import (
	"bytes"
	"testing"
	"time"

	"txconflict/internal/scenario"
	"txconflict/internal/stm"
)

// hotspotTrace records a real hotspot run on the STM runtime and
// tiles it to exactly n records (start times shifted per copy so the
// timeline keeps advancing) — the representative production capture
// for size and speed measurements.
func hotspotTrace(tb testing.TB, n int) *Trace {
	tb.Helper()
	sc, err := scenario.ByName("hotspot", scenario.Options{Workers: 4})
	if err != nil {
		tb.Fatal(err)
	}
	cfg := stm.DefaultConfig()
	rec := NewRecorder("hotspot", 4, cfg.String())
	rec.SetUnitNs(1.3)
	cfg.Trace = rec
	rn := scenario.NewSTMRunner(sc, cfg)
	if res := rn.Drive(4, 30*time.Millisecond, 11); res.Ops() == 0 {
		tb.Fatal("no transactions recorded")
	}
	tr := rec.Snapshot()
	if len(tr.Records) == 0 {
		tb.Fatal("empty recording")
	}
	span := tr.SpanNs() + 1
	out := &Trace{Header: tr.Header}
	out.Records = make([]Record, 0, n)
	for tile := 0; len(out.Records) < n; tile++ {
		for i := range tr.Records {
			if len(out.Records) >= n {
				break
			}
			r := tr.Records[i]
			r.StartNs += int64(tile) * span
			out.Records = append(out.Records, r)
		}
	}
	out.Count = len(out.Records)
	return out
}

// TestBinarySizeRatio is the compression acceptance gate: on a
// 10k-record hotspot-shaped capture, the binary container must be at
// least 4x smaller than the JSONL encoding of the same records.
func TestBinarySizeRatio(t *testing.T) {
	tr := hotspotTrace(t, 10_000)
	var jbuf, bbuf bytes.Buffer
	if err := Write(&jbuf, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bbuf, tr); err != nil {
		t.Fatal(err)
	}
	ratio := float64(jbuf.Len()) / float64(bbuf.Len())
	t.Logf("10k hotspot records: JSONL %d bytes (%.1f/rec), binary %d bytes (%.1f/rec), ratio %.2fx",
		jbuf.Len(), float64(jbuf.Len())/10000, bbuf.Len(), float64(bbuf.Len())/10000, ratio)
	if ratio < 4 {
		t.Fatalf("binary container only %.2fx smaller than JSONL, want >= 4x", ratio)
	}
}

// BenchmarkTraceEncode measures per-record encode cost on both
// formats over the same 10k-record capture.
func BenchmarkTraceEncode(b *testing.B) {
	tr := hotspotTrace(b, 10_000)
	var buf bytes.Buffer
	b.Run("jsonl", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := Write(&buf, tr); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(tr.Records)), "ns/record")
		b.ReportMetric(float64(buf.Len())/float64(len(tr.Records)), "bytes/record")
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := WriteBinary(&buf, tr); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(tr.Records)), "ns/record")
		b.ReportMetric(float64(buf.Len())/float64(len(tr.Records)), "bytes/record")
	})
}

// BenchmarkTraceDecode measures per-record decode cost on both
// formats.
func BenchmarkTraceDecode(b *testing.B) {
	tr := hotspotTrace(b, 10_000)
	var jbuf, bbuf bytes.Buffer
	if err := Write(&jbuf, tr); err != nil {
		b.Fatal(err)
	}
	if err := WriteBinary(&bbuf, tr); err != nil {
		b.Fatal(err)
	}
	b.Run("jsonl", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Read(bytes.NewReader(jbuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(tr.Records)), "ns/record")
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ReadBinary(bytes.NewReader(bbuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(tr.Records)), "ns/record")
	})
}
