package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// FormatName and FormatVersion identify the on-disk trace formats.
// JSONL is a single JSON header line followed by one JSON record per
// line; the binary container (binary.go) frames the same records
// into CRC'd blocks behind an 8-byte magic. Version bumps whenever a
// Record or Header field changes meaning; readers of both formats
// reject files written by a newer version instead of silently
// misreading them.
const (
	FormatName    = "txconflict-trace"
	FormatVersion = 1
)

// maxLineBytes bounds one JSON line on load. A record with a
// whole-arena footprint is a few KiB; 4 MiB leaves two orders of
// magnitude of headroom.
const maxLineBytes = 4 << 20

// Write streams the trace to w in the JSONL format: header line,
// then one record per line. The header's format, version and record
// count are stamped from the actual data. (WriteBinary is the
// block-framed sibling; Save picks by extension.)
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	h := tr.Header
	h.Format = FormatName
	h.Version = FormatVersion
	h.Count = len(tr.Records)
	enc := json.NewEncoder(bw) // Encode appends the newline
	if err := enc.Encode(&h); err != nil {
		return fmt.Errorf("trace: encode header: %w", err)
	}
	for i := range tr.Records {
		if err := enc.Encode(&tr.Records[i]); err != nil {
			return fmt.Errorf("trace: encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSONL trace from r, validating format name, version
// and record count (a short stream means a truncated file). It is
// the materialized convenience over the streaming reader; for binary
// streams use ReadBinary, for files of either format use Load.
func Read(r io.Reader) (*Trace, error) {
	jr, err := newJSONLReader(r)
	if err != nil {
		return nil, err
	}
	return materialize(jr)
}

// Save writes the trace to path, in the binary container when the
// path carries the BinaryExt extension and JSONL otherwise
// (atomically enough for CLI use: a failed write leaves a partial
// file that Load rejects via the record count or the missing
// footer).
func Save(path string, tr *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if IsBinaryPath(path) {
		err = WriteBinary(f, tr)
	} else {
		err = Write(f, tr)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads and validates the trace at path, auto-detecting the
// format from the content (JSONL or the binary container) — the
// extension is only a writing-side convention.
func Load(path string) (*Trace, error) {
	rr, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer rr.Close()
	return materialize(rr)
}
