package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// FormatName and FormatVersion identify the on-disk trace format: a
// single JSON header line followed by one JSON record per line.
// Version bumps whenever a Record or Header field changes meaning;
// Load rejects files written by a newer version instead of silently
// misreading them.
const (
	FormatName    = "txconflict-trace"
	FormatVersion = 1
)

// maxLineBytes bounds one JSON line on load. A record with a
// whole-arena footprint is a few KiB; 4 MiB leaves two orders of
// magnitude of headroom.
const maxLineBytes = 4 << 20

// Write streams the trace to w: header line, then one record per
// line. The header's format, version and record count are stamped
// from the actual data.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	h := tr.Header
	h.Format = FormatName
	h.Version = FormatVersion
	h.Count = len(tr.Records)
	enc := json.NewEncoder(bw) // Encode appends the newline
	if err := enc.Encode(&h); err != nil {
		return fmt.Errorf("trace: encode header: %w", err)
	}
	for i := range tr.Records {
		if err := enc.Encode(&tr.Records[i]); err != nil {
			return fmt.Errorf("trace: encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a trace from r, validating format name, version and
// record count (a short stream means a truncated file).
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: read header: %w", err)
		}
		return nil, fmt.Errorf("trace: empty stream")
	}
	var h Header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("trace: parse header: %w", err)
	}
	if h.Format != FormatName {
		return nil, fmt.Errorf("trace: not a %s stream (format %q)", FormatName, h.Format)
	}
	if h.Version < 1 || h.Version > FormatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d (this build reads <= %d)",
			h.Version, FormatVersion)
	}
	tr := &Trace{Header: h}
	if h.Count > 0 {
		// Trust the header's count for sizing only up to a bound: a
		// corrupt count must not commit us to a huge allocation before
		// a single record has parsed (found by FuzzLoad).
		c := h.Count
		if c > 4096 {
			c = 4096
		}
		tr.Records = make([]Record, 0, c)
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("trace: parse record %d: %w", len(tr.Records), err)
		}
		tr.Records = append(tr.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read records: %w", err)
	}
	if len(tr.Records) != h.Count {
		return nil, fmt.Errorf("trace: truncated stream: %d records, header promises %d",
			len(tr.Records), h.Count)
	}
	return tr, nil
}

// Save writes the trace to path (atomically enough for CLI use: a
// failed write leaves a partial file that Load rejects via the record
// count).
func Save(path string, tr *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := Write(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads and validates the trace at path.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return Read(f)
}
