package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// BinaryExt is the file extension selecting the block-framed binary
// container in Create/Save/Convert; anything else writes JSONL.
const BinaryExt = ".btrace"

// RecordReader streams records out of a persisted trace without
// materializing it: Next fills rec and returns io.EOF after the last
// record. Implementations validate the stream (format, version,
// CRCs, record count) as they go; a clean io.EOF means the whole
// trace was read and checked. Header is available immediately, but
// its Count is authoritative only for JSONL — the binary footer
// patches it once the stream completes.
type RecordReader interface {
	Header() *Header
	Next(rec *Record) error
	Close() error
}

// RecordWriter streams records into a persisted trace. Close seals
// the file (JSONL back-patches the header's record count; binary
// writes the index footer); dropping a writer without Close leaves a
// file every reader rejects.
type RecordWriter interface {
	WriteRecord(rec *Record) error
	Close() error
}

// jsonlReader streams the line-oriented JSONL format.
type jsonlReader struct {
	sc    *bufio.Scanner
	h     Header
	count int
	done  bool
}

// newJSONLReader parses the header line and positions the stream at
// the first record.
func newJSONLReader(r io.Reader) (*jsonlReader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: read header: %w", err)
		}
		return nil, fmt.Errorf("trace: empty stream")
	}
	var h Header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("trace: parse header: %w", err)
	}
	if h.Format != FormatName {
		return nil, fmt.Errorf("trace: not a %s stream (format %q)", FormatName, h.Format)
	}
	if h.Version < 1 || h.Version > FormatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d (this build reads <= %d)",
			h.Version, FormatVersion)
	}
	return &jsonlReader{sc: sc, h: h}, nil
}

func (r *jsonlReader) Header() *Header { return &r.h }

func (r *jsonlReader) Next(rec *Record) error {
	if r.done {
		return io.EOF
	}
	for r.sc.Scan() {
		line := r.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		*rec = Record{}
		if err := json.Unmarshal(line, rec); err != nil {
			return fmt.Errorf("trace: parse record %d: %w", r.count, err)
		}
		r.count++
		return nil
	}
	if err := r.sc.Err(); err != nil {
		return fmt.Errorf("trace: read records: %w", err)
	}
	if r.count != r.h.Count {
		return fmt.Errorf("trace: truncated stream: %d records, header promises %d",
			r.count, r.h.Count)
	}
	r.done = true
	return io.EOF
}

func (r *jsonlReader) Close() error { return nil }

// countPad is the slack reserved after the JSONL stream writer's
// provisional header line, so the final header (with the real record
// count) can be patched in place without moving the record lines.
const countPad = 20

// jsonlWriter streams records as JSONL. The header goes out first
// with a zero count and countPad trailing spaces; Close re-marshals
// it with the final count and rewrites the line in place — which is
// why this writer needs an io.WriteSeeker. A crash before Close
// leaves count 0 with records following, which Read rejects as
// truncated-or-lying, same as the materialized Write path.
type jsonlWriter struct {
	ws      io.WriteSeeker
	bw      *bufio.Writer
	h       Header
	lineLen int
	count   int
	closed  bool
}

func newJSONLWriter(ws io.WriteSeeker, h Header) (*jsonlWriter, error) {
	h.Format = FormatName
	h.Version = FormatVersion
	h.Count = 0
	hj, err := json.Marshal(&h)
	if err != nil {
		return nil, fmt.Errorf("trace: encode header: %w", err)
	}
	line := append(hj, strings.Repeat(" ", countPad)...)
	line = append(line, '\n')
	w := &jsonlWriter{ws: ws, bw: bufio.NewWriterSize(ws, 1<<16), h: h, lineLen: len(line) - 1}
	if _, err := w.bw.Write(line); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	return w, nil
}

func (w *jsonlWriter) WriteRecord(rec *Record) error {
	if w.closed {
		return fmt.Errorf("trace: WriteRecord after Close")
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("trace: encode record %d: %w", w.count, err)
	}
	buf = append(buf, '\n')
	if _, err := w.bw.Write(buf); err != nil {
		return fmt.Errorf("trace: write record %d: %w", w.count, err)
	}
	w.count++
	return nil
}

func (w *jsonlWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	w.h.Count = w.count
	hj, err := json.Marshal(&w.h)
	if err != nil {
		return fmt.Errorf("trace: encode final header: %w", err)
	}
	if len(hj) > w.lineLen {
		return fmt.Errorf("trace: final header (%d bytes) outgrew its reserved line (%d)", len(hj), w.lineLen)
	}
	line := append(hj, strings.Repeat(" ", w.lineLen-len(hj))...)
	if _, err := w.ws.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("trace: patch header: %w", err)
	}
	if _, err := w.ws.Write(line); err != nil {
		return fmt.Errorf("trace: patch header: %w", err)
	}
	if _, err := w.ws.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("trace: patch header: %w", err)
	}
	return nil
}

// fileReader bundles a RecordReader with the file it reads.
type fileReader struct {
	RecordReader
	f *os.File
}

func (fr *fileReader) Close() error {
	err := fr.RecordReader.Close()
	if cerr := fr.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// fileWriter bundles a RecordWriter with the file it writes; Close
// seals the trace then the file.
type fileWriter struct {
	RecordWriter
	f *os.File
}

func (fw *fileWriter) Close() error {
	err := fw.RecordWriter.Close()
	if cerr := fw.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// NewReader auto-detects the trace format on r (binary magic vs JSONL
// '{') and returns the matching streaming reader.
func NewReader(r io.Reader) (RecordReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	sniff, err := br.Peek(len(BinaryMagic))
	if err != nil && len(sniff) == 0 {
		if err == io.EOF {
			return nil, fmt.Errorf("trace: empty stream")
		}
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(sniff) >= len(BinaryMagic) && string(sniff[:6]) == BinaryMagic[:6] {
		// Any container version routes to the binary reader, which
		// rejects unsupported versions with a telling error instead of
		// "unrecognized format".
		return newBinaryReader(br)
	}
	if len(sniff) > 0 && sniff[0] == '{' {
		return newJSONLReader(br)
	}
	return nil, fmt.Errorf("trace: unrecognized trace format (leading bytes %q)", sniff)
}

// Open opens the trace at path for streaming reads, auto-detecting
// the format from the content (not the extension).
func Open(path string) (RecordReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	rr, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &fileReader{RecordReader: rr, f: f}, nil
}

// Create starts a streaming trace writer at path. The extension picks
// the format: BinaryExt (".btrace") writes the block-framed binary
// container, anything else JSONL. The header's Count is ignored —
// Close stamps the real count (JSONL) or index footer (binary).
func Create(path string, h Header) (RecordWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	var rw RecordWriter
	if IsBinaryPath(path) {
		rw, err = NewWriter(f, h, BinaryWriterOptions{})
	} else {
		rw, err = newJSONLWriter(f, h)
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	return &fileWriter{RecordWriter: rw, f: f}, nil
}

// IsBinaryPath reports whether path selects the binary container by
// extension.
func IsBinaryPath(path string) bool {
	return strings.EqualFold(filepath.Ext(path), BinaryExt)
}

// Convert streams the trace at src into dst, re-encoding in the
// format dst's extension selects (JSONL ↔ binary in either
// direction, or a re-encode within one format). Provenance — header
// fields including the UnitNs calibration — carries over. Returns
// the number of records converted; memory stays bounded regardless
// of trace size.
func Convert(src, dst string) (int, error) {
	rr, err := Open(src)
	if err != nil {
		return 0, err
	}
	defer rr.Close()
	w, err := Create(dst, *rr.Header())
	if err != nil {
		return 0, err
	}
	n := 0
	var rec Record
	for {
		if err := rr.Next(&rec); err != nil {
			if err == io.EOF {
				break
			}
			w.Close()
			return n, err
		}
		if err := w.WriteRecord(&rec); err != nil {
			w.Close()
			return n, err
		}
		n++
	}
	return n, w.Close()
}

// materialize drains a streaming reader into a Trace. The
// preallocation is bounded the same way Read's is: a lying header
// count cannot force a huge up-front allocation.
func materialize(rr RecordReader) (*Trace, error) {
	h := rr.Header()
	tr := &Trace{Header: *h}
	if c := h.Count; c > 0 {
		if c > 4096 {
			c = 4096
		}
		tr.Records = make([]Record, 0, c)
	}
	var rec Record
	for {
		if err := rr.Next(&rec); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		tr.Records = append(tr.Records, rec)
	}
	// The binary reader learns the authoritative count from the
	// footer; refresh the materialized header either way.
	tr.Header = *rr.Header()
	tr.Header.Count = len(tr.Records)
	return tr, nil
}

// LoadSample loads at most ~max records from the trace at path,
// evenly spaced across the whole capture. On the binary format it
// uses the block index: only the selected blocks are read and
// decoded, so sampling a 10⁸-record trace touches a handful of
// blocks. On JSONL (no index) it falls back to a strided streaming
// pass — still bounded memory, but a full-file scan. max <= 0, or a
// trace within budget, loads everything.
func LoadSample(path string, max int) (*Trace, error) {
	if max <= 0 {
		return Load(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	var sniff [len(BinaryMagic)]byte
	n, _ := f.ReadAt(sniff[:], 0)
	if n == len(sniff) && string(sniff[:]) == BinaryMagic {
		defer f.Close()
		return sampleBinary(f, max)
	}
	f.Close()
	return sampleJSONL(path, max)
}

// sampleBinary picks evenly spaced blocks off the index until the
// record budget is filled.
func sampleBinary(f *os.File, max int) (*Trace, error) {
	h, idx, total, err := readIndexFile(f)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Header: *h}
	if total <= max || len(idx) <= 1 {
		// Within budget (or a single block): stream the whole file.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		return ReadBinary(f)
	}
	// How many whole blocks fit the budget, and which: ceil-strided
	// positions across the index so the sample spans the capture.
	avg := (total + len(idx) - 1) / len(idx)
	want := max / avg
	if want < 1 {
		want = 1
	}
	if want > len(idx) {
		want = len(idx)
	}
	for i := 0; i < want; i++ {
		e := idx[i*len(idx)/want]
		if tr.Records, err = decodeBlockAt(f, e, tr.Records); err != nil {
			return nil, err
		}
	}
	tr.Header.Count = len(tr.Records)
	tr.Header.Sampled = total
	return tr, nil
}

// sampleJSONL strides a full streaming pass, keeping every k-th
// record.
func sampleJSONL(path string, max int) (*Trace, error) {
	rr, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer rr.Close()
	total := rr.Header().Count
	if total <= max {
		return materialize(rr)
	}
	stride := (total + max - 1) / max
	tr := &Trace{Header: *rr.Header()}
	var rec Record
	for i := 0; ; i++ {
		if err := rr.Next(&rec); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		if i%stride == 0 {
			tr.Records = append(tr.Records, rec)
		}
	}
	tr.Header.Count = len(tr.Records)
	tr.Header.Sampled = total
	return tr, nil
}
