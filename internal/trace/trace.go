// Package trace closes the profile-to-simulation loop of Section 1
// of "The Transactional Conflict Problem": the paper motivates its
// analysis with transaction-length distributions profiled from real
// transactional workloads, and this package records what the
// internal/stm runtime actually executed, persists it, and feeds it
// back into both execution backends.
//
// The pieces:
//
//   - Recorder: a low-overhead stm.Tracer with per-worker append-only
//     buffers (installed via stm.Config.Trace, annotated with
//     program-level context by scenario.STMRunner). One Record per
//     atomic block: footprints, retries, kills, grace waits, timings.
//   - Save/Load: two versioned on-disk formats behind one API. JSONL
//     (one JSON header line, one JSON record per line, ~100
//     bytes/record) is the human-greppable form; the block-framed
//     binary container (BinaryExt ".btrace", see binary.go: varint +
//     delta coding, per-block CRC and optional DEFLATE, an index
//     footer for seek/sample) is the production-capture form at
//     ~4-10x smaller. Load auto-detects by content; Save/Create pick
//     by extension; Convert streams between them.
//   - Writer/RecordWriter and RecordReader: the streaming pair —
//     record and replay paths never hold a full trace in memory, so
//     10⁶–10⁸-transaction captures stream through a bounded block
//     buffer. LoadSample uses the binary index to replay an evenly
//     spaced sample of an arbitrarily large trace.
//   - Profile: the aggregator turning a trace into length and
//     think-time distributions (dist.NewEmpirical samplers,
//     registrable in the dist.ByName catalog as "trace:<key>") and a
//     summary table with a log₂ length histogram.
//   - ReplayScenario/RegisterScenario: the bridge to
//     scenario.NewReplay, so a recorded trace runs as a first-class
//     scenario on the HTM simulator and the STM runtime alike
//     (txsim/stmbench -replay), with a verifiable invariant.
//
// experiments.TraceFidelity stacks these into the measure-model-
// validate report: record a real run, replay the identical footprints
// on the simulator, compare throughput and abort behaviour.
package trace

// Record is one atomic block of a recorded run: the runtime-observed
// half (outcome, retries, kills, grace waits, concrete word
// footprints, timings) merged with the scenario-level half (program
// op count, sampled compute length, think time). Field tags are kept
// short — traces run to millions of lines.
type Record struct {
	// Worker is the recording worker index (-1 for unattributed
	// blocks that reached the overflow buffer).
	Worker int32 `json:"w"`
	// StartNs is the block's start, in nanoseconds since the
	// recorder's epoch (Header.CapturedUnixNs).
	StartNs int64 `json:"t"`
	// DurNs is the block's wall-clock duration.
	DurNs int64 `json:"d"`
	// GraceNs is the total grace-wait time across attempts.
	GraceNs int64 `json:"g,omitempty"`
	// Retries counts aborted attempts before the outcome.
	Retries uint32 `json:"r,omitempty"`
	// KillsSuffered and KillsIssued count conflict kills on each side
	// of the ledger.
	KillsSuffered uint32 `json:"kr,omitempty"`
	KillsIssued   uint32 `json:"ki,omitempty"`
	// Committed distinguishes commits from user-level aborts.
	Committed bool `json:"c"`
	// Irrevocable marks blocks that fell back to the slow path.
	Irrevocable bool `json:"irr,omitempty"`
	// Ops is the program length (scenario annotation).
	Ops uint32 `json:"o,omitempty"`
	// Compute is the program's sampled in-transaction compute, in
	// scenario units (simulated cycles / busy-work iterations).
	Compute float64 `json:"l,omitempty"`
	// Think is the program's post-commit think time, same units.
	Think float64 `json:"th,omitempty"`
	// Reads and Writes are the distinct word indices of the final
	// attempt's footprint.
	Reads  []uint32 `json:"rs,omitempty"`
	Writes []uint32 `json:"ws,omitempty"`
	// FoldedWrites counts the block's delta-writes (stm.Tx.Add) that
	// the group-commit combiner folded into summed stores instead of
	// writing back individually. Zero (and absent from the JSONL) for
	// blocks committed outside the fold path, and in every file
	// written before the field existed.
	FoldedWrites uint32 `json:"fw,omitempty"`
}

// Header identifies a trace: provenance (scenario, worker count,
// runtime config, capture time) plus the format version and record
// count used to validate files on load.
type Header struct {
	// Format is always FormatName; Version is the writer's
	// FormatVersion.
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Scenario is the recorded scenario's registry name.
	Scenario string `json:"scenario"`
	// Workers is the recording worker count.
	Workers int `json:"workers"`
	// Config is the stm.Config.String() of the recorded runtime.
	Config string `json:"config,omitempty"`
	// CapturedUnixNs is the recorder's epoch (wall clock).
	CapturedUnixNs int64 `json:"capturedUnixNs"`
	// Count is the record count (truncation check on load).
	Count int `json:"records"`
	// UnitNs is the recording machine's calibrated wall-clock
	// nanoseconds per scenario compute unit (one busy-work
	// iteration), measured at capture time. It closes the units gap
	// between the two backends: at the simulator's 1 GHz convention,
	// recorded units × UnitNs = simulated cycles, so a trace recorded
	// on one box replays faithfully on the simulator
	// (ReplayScenarioCycles). 0 in files written before calibration
	// existed — replay then falls back to 1 unit = 1 cycle.
	UnitNs float64 `json:"unitNs,omitempty"`
	// Sampled is the original capture's record count when this trace
	// is an index-sampled subset (LoadSample); 0 for full loads.
	Sampled int `json:"sampled,omitempty"`
}

// Trace is a fully loaded (or freshly captured) trace.
type Trace struct {
	Header
	Records []Record
}

// Commits counts committed records.
func (tr *Trace) Commits() int {
	n := 0
	for i := range tr.Records {
		if tr.Records[i].Committed {
			n++
		}
	}
	return n
}

// SpanNs returns the wall-clock span covered by the records: from
// the earliest start to the latest end.
func (tr *Trace) SpanNs() int64 {
	if len(tr.Records) == 0 {
		return 0
	}
	lo, hi := int64(1<<62), int64(-1<<62)
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.StartNs < lo {
			lo = r.StartNs
		}
		if end := r.StartNs + r.DurNs; end > hi {
			hi = end
		}
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}
