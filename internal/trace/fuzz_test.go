package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedTrace builds a small but structurally complete trace — a
// couple of workers, mixed outcomes, footprints, annotations — and
// returns its serialized bytes. It stands in for `make trace-demo`
// output so the seed corpus always exists; the real demo trace joins
// it via testdata/fuzz-seed.trace (written by `make fuzz-trace`).
func fuzzSeedTrace() []byte {
	tr := &Trace{
		Header: Header{
			Scenario:       "hotspot",
			Workers:        2,
			Config:         "requestor-wins/RRW/lazy/b4",
			CapturedUnixNs: 1700000000000000000,
		},
		Records: []Record{
			{Worker: 0, StartNs: 10, DurNs: 900, Retries: 1, KillsSuffered: 1,
				Committed: true, Ops: 5, Compute: 60, Think: 10,
				Reads: []uint32{3, 9}, Writes: []uint32{0, 17}},
			{Worker: 1, StartNs: 40, DurNs: 300, GraceNs: 120, KillsIssued: 1,
				Committed: true, Ops: 5, Compute: 42, Think: 10,
				Writes: []uint32{2}},
			{Worker: -1, StartNs: 95, DurNs: 50, Committed: false, Irrevocable: true},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzLoad is the persistence-format fuzz harness: whatever bytes land
// on disk — truncated files, corrupt versions, bit flips inside a
// record line — Load must either return the trace with every record
// the header promises or fail with an error. It must never panic and
// never silently drop records (a short read that "succeeds" would
// poison every downstream profile and replay).
func FuzzLoad(f *testing.F) {
	valid := fuzzSeedTrace()
	f.Add(valid)
	// Truncations: drop the tail mid-record and mid-header.
	f.Add(valid[:len(valid)-20])
	f.Add(valid[:15])
	f.Add([]byte{})
	// Corrupt version / format.
	f.Add(bytes.Replace(valid, []byte(`"version":1`), []byte(`"version":99`), 1))
	f.Add(bytes.Replace(valid, []byte(FormatName), []byte("not-a-trace"), 1))
	// Count lies about the record lines.
	f.Add(bytes.Replace(valid, []byte(`"records":3`), []byte(`"records":7`), 1))
	// Bit flips in a record line and in the header.
	flip := func(b []byte, i int) []byte {
		c := append([]byte(nil), b...)
		c[i%len(c)] ^= 0x20
		return c
	}
	f.Add(flip(valid, 5))
	f.Add(flip(valid, len(valid)/2))
	f.Add(flip(valid, len(valid)-3))
	// Pathological inputs: no newline, huge count, raw JSON array.
	f.Add([]byte(`{"format":"txconflict-trace","version":1,"records":1000000}`))
	f.Add([]byte(`[1,2,3]`))
	// The trace-demo artifact, when `make fuzz-trace` has run.
	if demo, err := os.ReadFile(filepath.Join("testdata", "fuzz-seed.trace")); err == nil {
		f.Add(demo)
	}

	f.Fuzz(fuzzLoadBody)
}

// fuzzLoadBody is the shared contract check for both fuzz targets:
// arbitrary bytes either fail Load with an error or produce a
// complete, re-serializable trace. Load auto-detects the format, so
// the same body covers JSONL and binary inputs.
func fuzzLoadBody(t *testing.T, data []byte) {
	path := filepath.Join(t.TempDir(), "fuzz.trace")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := Load(path)
	if err != nil {
		return // rejecting corrupt input is the contract
	}
	// Accepted: the trace must be internally complete and
	// re-serializable.
	if len(tr.Records) != tr.Header.Count {
		t.Fatalf("accepted trace with %d records but header count %d",
			len(tr.Records), tr.Header.Count)
	}
	if tr.Header.Format != FormatName {
		t.Fatalf("accepted trace with format %q", tr.Header.Format)
	}
	if tr.Header.Version < 1 || tr.Header.Version > FormatVersion {
		t.Fatalf("accepted trace with version %d", tr.Header.Version)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("re-serializing an accepted trace: %v", err)
	}
	rt, err := Read(&buf)
	if err != nil {
		t.Fatalf("round trip of an accepted trace: %v", err)
	}
	if len(rt.Records) != len(tr.Records) {
		t.Fatalf("round trip dropped records: %d -> %d", len(tr.Records), len(rt.Records))
	}
	// And through the binary container: an accepted trace must survive
	// the compact encoding too.
	var bbuf bytes.Buffer
	if err := WriteBinary(&bbuf, tr); err != nil {
		t.Fatalf("binary-encoding an accepted trace: %v", err)
	}
	brt, err := ReadBinary(&bbuf)
	if err != nil {
		t.Fatalf("binary round trip of an accepted trace: %v", err)
	}
	if len(brt.Records) != len(tr.Records) {
		t.Fatalf("binary round trip dropped records: %d -> %d", len(tr.Records), len(brt.Records))
	}
}

// fuzzSeedBinary is the binary sibling of fuzzSeedTrace: the same
// structurally complete trace in the block-framed container.
func fuzzSeedBinary() []byte {
	tr, err := Read(bytes.NewReader(fuzzSeedTrace()))
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzLoadBinary hammers the binary container decode paths: block
// framing, CRCs, DEFLATE, varint record decoding, the index footer
// and the trailer. The seeds target each structural region — Load
// must reject every corruption cleanly (no panic, no OOM-sized
// allocation, no silent partial load).
func FuzzLoadBinary(f *testing.F) {
	valid := fuzzSeedBinary()
	f.Add(valid)
	// Truncations: mid-trailer, mid-footer, mid-block, mid-header.
	f.Add(valid[:len(valid)-8])
	f.Add(valid[:len(valid)-17])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(BinaryMagic)+2])
	f.Add([]byte(BinaryMagic))
	// Bit flips in each structural region: header JSON, block payload,
	// block CRC, footer body, trailer offset, tail magic.
	flip := func(i int) []byte {
		c := append([]byte(nil), valid...)
		c[(i%len(c)+len(c))%len(c)] ^= 0xff
		return c
	}
	f.Add(flip(len(BinaryMagic) + 3))
	f.Add(flip(len(valid) / 2))
	f.Add(flip(-30))
	f.Add(flip(-18))
	f.Add(flip(-12))
	f.Add(flip(-1))
	// Newer container and newer header versions.
	newer := append([]byte(nil), valid...)
	copy(newer, "txcbtr99")
	f.Add(newer)
	f.Add(bytes.Replace(valid, []byte(`"version":1`), []byte(`"version":9`), 1))
	// Lying block count and oversized declared lengths (the bounded-
	// allocation guards).
	hdr := `{"format":"txconflict-trace","version":1}`
	frame := func(tail ...byte) []byte {
		b := append([]byte(BinaryMagic), byte(len(hdr)))
		b = append(b, hdr...)
		return append(b, tail...)
	}
	f.Add(frame('B', 0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40, 3, 3, 1, 2, 3, 0, 0, 0, 0))
	f.Add(frame('B', 0, 1, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40, 1))
	f.Add(frame('I', 0xff, 0xff, 0xff, 0xff, 0x0f))
	f.Add(frame('?', 0))
	// The golden fixture keeps the corpus anchored to a real v1 file.
	if g, err := os.ReadFile(filepath.Join("testdata", "golden-v1.btrace")); err == nil {
		f.Add(g)
	}

	f.Fuzz(fuzzLoadBody)
}
