package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedTrace builds a small but structurally complete trace — a
// couple of workers, mixed outcomes, footprints, annotations — and
// returns its serialized bytes. It stands in for `make trace-demo`
// output so the seed corpus always exists; the real demo trace joins
// it via testdata/fuzz-seed.trace (written by `make fuzz-trace`).
func fuzzSeedTrace() []byte {
	tr := &Trace{
		Header: Header{
			Scenario:       "hotspot",
			Workers:        2,
			Config:         "requestor-wins/RRW/lazy/b4",
			CapturedUnixNs: 1700000000000000000,
		},
		Records: []Record{
			{Worker: 0, StartNs: 10, DurNs: 900, Retries: 1, KillsSuffered: 1,
				Committed: true, Ops: 5, Compute: 60, Think: 10,
				Reads: []uint32{3, 9}, Writes: []uint32{0, 17}},
			{Worker: 1, StartNs: 40, DurNs: 300, GraceNs: 120, KillsIssued: 1,
				Committed: true, Ops: 5, Compute: 42, Think: 10,
				Writes: []uint32{2}},
			{Worker: -1, StartNs: 95, DurNs: 50, Committed: false, Irrevocable: true},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzLoad is the persistence-format fuzz harness: whatever bytes land
// on disk — truncated files, corrupt versions, bit flips inside a
// record line — Load must either return the trace with every record
// the header promises or fail with an error. It must never panic and
// never silently drop records (a short read that "succeeds" would
// poison every downstream profile and replay).
func FuzzLoad(f *testing.F) {
	valid := fuzzSeedTrace()
	f.Add(valid)
	// Truncations: drop the tail mid-record and mid-header.
	f.Add(valid[:len(valid)-20])
	f.Add(valid[:15])
	f.Add([]byte{})
	// Corrupt version / format.
	f.Add(bytes.Replace(valid, []byte(`"version":1`), []byte(`"version":99`), 1))
	f.Add(bytes.Replace(valid, []byte(FormatName), []byte("not-a-trace"), 1))
	// Count lies about the record lines.
	f.Add(bytes.Replace(valid, []byte(`"records":3`), []byte(`"records":7`), 1))
	// Bit flips in a record line and in the header.
	flip := func(b []byte, i int) []byte {
		c := append([]byte(nil), b...)
		c[i%len(c)] ^= 0x20
		return c
	}
	f.Add(flip(valid, 5))
	f.Add(flip(valid, len(valid)/2))
	f.Add(flip(valid, len(valid)-3))
	// Pathological inputs: no newline, huge count, raw JSON array.
	f.Add([]byte(`{"format":"txconflict-trace","version":1,"records":1000000}`))
	f.Add([]byte(`[1,2,3]`))
	// The trace-demo artifact, when `make fuzz-trace` has run.
	if demo, err := os.ReadFile(filepath.Join("testdata", "fuzz-seed.trace")); err == nil {
		f.Add(demo)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.trace")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		tr, err := Load(path)
		if err != nil {
			return // rejecting corrupt input is the contract
		}
		// Accepted: the trace must be internally complete and
		// re-serializable.
		if len(tr.Records) != tr.Header.Count {
			t.Fatalf("accepted trace with %d records but header count %d",
				len(tr.Records), tr.Header.Count)
		}
		if tr.Header.Format != FormatName {
			t.Fatalf("accepted trace with format %q", tr.Header.Format)
		}
		if tr.Header.Version < 1 || tr.Header.Version > FormatVersion {
			t.Fatalf("accepted trace with version %d", tr.Header.Version)
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("re-serializing an accepted trace: %v", err)
		}
		rt, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip of an accepted trace: %v", err)
		}
		if len(rt.Records) != len(tr.Records) {
			t.Fatalf("round trip dropped records: %d -> %d", len(tr.Records), len(rt.Records))
		}
	})
}
