package trace

import (
	"sort"
	"sync"
	"time"

	"txconflict/internal/stm"
)

// workerBuf is one worker's append-only record buffer, padded so two
// workers' slice headers never share a cache line (each buffer is
// written by exactly one goroutine; the padding keeps the headers
// from false-sharing while they grow).
type workerBuf struct {
	recs []Record
	_    [40]byte
}

// Recorder captures one Record per atomic block with per-worker
// append-only buffers. It implements stm.Tracer (install it as
// stm.Config.Trace) and scenario.ProgramAnnotator (scenario.STMRunner
// detects it on the same Config and supplies the program-level half
// of each record on the worker's own goroutine).
//
// Writes are contention-free: worker w appends only to buffer w from
// its own goroutine. Blocks arriving with an out-of-range or unknown
// worker id (plain stm.Atomic calls) land in a mutex-guarded
// overflow buffer. Snapshot must only be called after the recorded
// workers have stopped.
type Recorder struct {
	scenario string
	config   string
	epochNs  int64
	unitNs   float64

	bufs []workerBuf

	overMu sync.Mutex
	over   []Record
}

// NewRecorder builds a recorder for a run of the named scenario with
// the given worker count. Buffers do NOT grow: blocks from workers
// outside [0, workers) fall into the shared overflow buffer (slower,
// mutex-guarded), so size the recorder to the run's actual worker
// count. config is free-form provenance, conventionally
// stm.Config.String().
func NewRecorder(scenarioName string, workers int, config string) *Recorder {
	if workers < 1 {
		workers = 1
	}
	return &Recorder{
		scenario: scenarioName,
		config:   config,
		epochNs:  time.Now().UnixNano(),
		bufs:     make([]workerBuf, workers),
	}
}

// SetUnitNs stamps the calibrated wall-nanoseconds per compute unit
// into the recorder's provenance (Header.UnitNs; see
// scenario.CalibrateUnitNs). Call before the recorded run starts.
func (rec *Recorder) SetUnitNs(ns float64) {
	if ns > 0 {
		rec.unitNs = ns
	}
}

// TraceTx implements stm.Tracer: copy the block's trace into the
// worker's buffer (the TxTrace and its slices are only valid during
// this call). Footprints are copied sorted — the runtime dedupes but
// does not order them, and sorted footprints are what the binary
// format's delta coder compresses.
func (rec *Recorder) TraceTx(t *stm.TxTrace) {
	r := Record{
		Worker:        int32(t.Worker),
		StartNs:       t.StartUnixNs - rec.epochNs,
		DurNs:         t.DurNs,
		GraceNs:       t.GraceWaitNs,
		Retries:       uint32(t.Retries),
		KillsSuffered: uint32(t.KillsSuffered),
		KillsIssued:   uint32(t.KillsIssued),
		Committed:     t.Committed,
		Irrevocable:   t.Irrevocable,
		FoldedWrites:  uint32(t.FoldedWrites),
	}
	if len(t.Reads) > 0 {
		r.Reads = append(make([]uint32, 0, len(t.Reads)), t.Reads...)
		sortU32(r.Reads)
	}
	if len(t.Writes) > 0 {
		r.Writes = append(make([]uint32, 0, len(t.Writes)), t.Writes...)
		sortU32(r.Writes)
	}
	if w := t.Worker; w >= 0 && w < len(rec.bufs) {
		rec.bufs[w].recs = append(rec.bufs[w].recs, r)
		return
	}
	rec.overMu.Lock()
	rec.over = append(rec.over, r)
	rec.overMu.Unlock()
}

// AnnotateProgram implements scenario.ProgramAnnotator: attach the
// scenario-level context to the worker's most recent record. It runs
// on the worker's goroutine immediately after the runtime delivered
// the block's TxTrace, so the worker's newest record is exactly that
// block — in the overflow buffer (where workers interleave) the
// newest record with a matching worker id is.
func (rec *Recorder) AnnotateProgram(worker, ops int, compute, think float64) {
	if worker >= 0 && worker < len(rec.bufs) {
		if n := len(rec.bufs[worker].recs); n > 0 {
			r := &rec.bufs[worker].recs[n-1]
			r.Ops = uint32(ops)
			r.Compute = compute
			r.Think = think
		}
		return
	}
	rec.overMu.Lock()
	for i := len(rec.over) - 1; i >= 0; i-- {
		if r := &rec.over[i]; r.Worker == int32(worker) {
			r.Ops = uint32(ops)
			r.Compute = compute
			r.Think = think
			break
		}
	}
	rec.overMu.Unlock()
}

// Len returns the total number of captured records. Like Snapshot it
// must only be called once the recorded workers have stopped.
func (rec *Recorder) Len() int {
	n := len(rec.over)
	for i := range rec.bufs {
		n += len(rec.bufs[i].recs)
	}
	return n
}

// Header returns the recorder's provenance header (count 0 — the
// streaming WriteTo path stamps counts via the writer's footer).
func (rec *Recorder) Header() Header {
	return Header{
		Format:         FormatName,
		Version:        FormatVersion,
		Scenario:       rec.scenario,
		Workers:        len(rec.bufs),
		Config:         rec.config,
		CapturedUnixNs: rec.epochNs,
		UnitNs:         rec.unitNs,
	}
}

// Snapshot merges the per-worker buffers into a Trace, ordered by
// start time (ties broken by worker). It must only be called after
// the recorded workers have stopped; the records are copied, so the
// recorder may be reused or dropped afterwards.
func (rec *Recorder) Snapshot() *Trace {
	merged := make([]Record, 0, rec.Len())
	for i := range rec.bufs {
		merged = append(merged, rec.bufs[i].recs...)
	}
	rec.overMu.Lock()
	merged = append(merged, rec.over...)
	rec.overMu.Unlock()
	sort.SliceStable(merged, func(a, b int) bool {
		if merged[a].StartNs != merged[b].StartNs {
			return merged[a].StartNs < merged[b].StartNs
		}
		return merged[a].Worker < merged[b].Worker
	})
	h := rec.Header()
	h.Count = len(merged)
	return &Trace{Header: h, Records: merged}
}

// WriteTo drains the recorder into a streaming writer in Snapshot's
// order — a k-way merge over the per-worker buffers (each naturally
// start-ordered: a worker's blocks are sequential) plus the sorted
// overflow buffer — without ever building the merged []Record. Like
// Snapshot it must only run after the recorded workers have stopped.
// Returns the number of records written; the caller owns the
// writer's Close.
func (rec *Recorder) WriteTo(w RecordWriter) (int, error) {
	rec.overMu.Lock()
	over := append([]Record(nil), rec.over...)
	rec.overMu.Unlock()
	sort.SliceStable(over, func(a, b int) bool {
		if over[a].StartNs != over[b].StartNs {
			return over[a].StartNs < over[b].StartNs
		}
		return over[a].Worker < over[b].Worker
	})
	// Merge heads: one per worker buffer, one for the overflow.
	lanes := make([][]Record, 0, len(rec.bufs)+1)
	for i := range rec.bufs {
		if len(rec.bufs[i].recs) > 0 {
			lanes = append(lanes, rec.bufs[i].recs)
		}
	}
	if len(over) > 0 {
		lanes = append(lanes, over)
	}
	n := 0
	for len(lanes) > 0 {
		best := 0
		for i := 1; i < len(lanes); i++ {
			a, b := &lanes[i][0], &lanes[best][0]
			if a.StartNs < b.StartNs || (a.StartNs == b.StartNs && a.Worker < b.Worker) {
				best = i
			}
		}
		if err := w.WriteRecord(&lanes[best][0]); err != nil {
			return n, err
		}
		n++
		lanes[best] = lanes[best][1:]
		if len(lanes[best]) == 0 {
			lanes = append(lanes[:best], lanes[best+1:]...)
		}
	}
	return n, nil
}

// sortU32 orders a small footprint slice in place (insertion sort —
// footprints are typically a handful of words, and this avoids the
// sort.Slice closure allocation on the capture path).
func sortU32(xs []uint32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
