package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestGoldenFixtures pins the v1 on-disk formats forever: the
// checked-in JSONL and binary fixtures must keep loading, with every
// field intact, in every future build. If either of these tests
// breaks, the format changed incompatibly — bump the version and keep
// reading v1 instead of editing the fixtures.
func TestGoldenFixtures(t *testing.T) {
	jsonl, err := Load(filepath.Join("testdata", "golden-v1.trace"))
	if err != nil {
		t.Fatalf("golden JSONL no longer loads: %v", err)
	}
	binary, err := Load(filepath.Join("testdata", "golden-v1.btrace"))
	if err != nil {
		t.Fatalf("golden binary no longer loads: %v", err)
	}
	for name, tr := range map[string]*Trace{"jsonl": jsonl, "binary": binary} {
		if tr.Scenario != "golden" || tr.Workers != 2 || tr.Version != 1 {
			t.Fatalf("%s: header = %+v", name, tr.Header)
		}
		if tr.Config != "requestor-wins/RRW/lazy/b4" || tr.CapturedUnixNs != 1700000000000000000 {
			t.Fatalf("%s: provenance = %+v", name, tr.Header)
		}
		if tr.UnitNs != 1.25 {
			t.Fatalf("%s: calibration = %v", name, tr.UnitNs)
		}
		if tr.Count != 5 || len(tr.Records) != 5 {
			t.Fatalf("%s: %d records, count %d", name, len(tr.Records), tr.Count)
		}
	}
	if !reflect.DeepEqual(normalizeTrace(jsonl), normalizeTrace(binary)) {
		t.Fatal("golden JSONL and binary fixtures diverged")
	}

	want := []Record{
		{Worker: 0, StartNs: 10, DurNs: 900, Retries: 1, KillsSuffered: 1,
			Committed: true, Ops: 5, Compute: 60, Think: 10,
			Reads: []uint32{3, 9}, Writes: []uint32{0, 17}},
		{Worker: 1, StartNs: 40, DurNs: 300, GraceNs: 120, KillsIssued: 1,
			Committed: true, Ops: 5, Compute: 42.5, Think: 10,
			Writes: []uint32{2}},
		{Worker: -1, StartNs: 95, DurNs: 50, Irrevocable: true},
		{Worker: 0, StartNs: 120, DurNs: 700, Committed: true, Ops: 3,
			Compute: 30, Think: 5, Reads: []uint32{7, 1, 4},
			Writes: []uint32{7}, FoldedWrites: 2},
		{Worker: 1, StartNs: 4294967296, DurNs: 1, Committed: true,
			Reads: []uint32{4294967295}},
	}
	if !reflect.DeepEqual(jsonl.Records, want) {
		t.Fatalf("golden records drifted:\ngot  %+v\nwant %+v", jsonl.Records, want)
	}
}

// TestGoldenRejections pins the rejection behaviour for future and
// hostile files, derived from the goldens so the corruptions stay
// realistic.
func TestGoldenRejections(t *testing.T) {
	rawJSONL, err := os.ReadFile(filepath.Join("testdata", "golden-v1.trace"))
	if err != nil {
		t.Fatal(err)
	}
	rawBinary, err := os.ReadFile(filepath.Join("testdata", "golden-v1.btrace"))
	if err != nil {
		t.Fatal(err)
	}
	reject := func(name string, data []byte, wantErr string) {
		t.Helper()
		path := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("%s: err = %v, want %q", name, err, wantErr)
		}
	}

	// A version-2 writer's output must be refused, not misread.
	reject("newer.trace",
		bytes.Replace(rawJSONL, []byte(`"version":1`), []byte(`"version":2`), 1),
		"unsupported format version")
	reject("newer-header.btrace",
		bytes.Replace(rawBinary, []byte(`"version":1`), []byte(`"version":2`), 1),
		"unsupported format version")
	newerContainer := append([]byte(nil), rawBinary...)
	copy(newerContainer, "txcbtr02")
	reject("newer-container.btrace", newerContainer, "unsupported binary container version")

	// Alien files.
	alien := append([]byte(nil), rawBinary...)
	copy(alien, "PK\x03\x04zip!")
	reject("alien.btrace", alien, "unrecognized trace format")
	reject("alien.trace", []byte(`{"format":"something-else","version":1}`+"\n"),
		"not a txconflict-trace")

	// A lying record count must fail as truncation, and a huge count
	// must not commit the loader to a huge allocation (bounded
	// preallocation: this returns promptly instead of OOMing).
	reject("lying-count.trace",
		bytes.Replace(rawJSONL, []byte(`"records":5`), []byte(`"records":9`), 1),
		"truncated stream")
	reject("huge-count.trace",
		bytes.Replace(rawJSONL, []byte(`"records":5`), []byte(`"records":2000000000`), 1),
		"truncated stream")

	// Binary: truncation anywhere loses the footer and is refused.
	reject("truncated.btrace", rawBinary[:len(rawBinary)-20], "trace:")
}
