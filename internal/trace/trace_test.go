package trace

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"txconflict/internal/dist"
	"txconflict/internal/rng"
	"txconflict/internal/scenario"
	"txconflict/internal/stm"
)

// recordRun drives the named scenario on the STM runtime with a
// Recorder installed and returns the captured trace.
func recordRun(t *testing.T, bench string, workers int, d time.Duration) *Trace {
	t.Helper()
	sc, err := scenario.ByName(bench, scenario.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	cfg := stm.DefaultConfig()
	rec := NewRecorder(bench, workers, cfg.String())
	cfg.Trace = rec
	rn := scenario.NewSTMRunner(sc, cfg)
	res := rn.Drive(workers, d, 7)
	if res.Ops() == 0 {
		t.Fatalf("%s: no transactions recorded", bench)
	}
	if err := rn.Check(res.PerWorker); err != nil {
		t.Fatalf("%s: recorded run invariant: %v", bench, err)
	}
	return rec.Snapshot()
}

// TestRecorderCapture checks an end-to-end recorded run: header
// provenance, per-record annotation (the scenario half), footprints,
// and the start-time ordering of Snapshot.
func TestRecorderCapture(t *testing.T) {
	tr := recordRun(t, "txapp", 2, 30*time.Millisecond)
	if tr.Scenario != "txapp" || tr.Workers != 2 || tr.Format != FormatName || tr.Version != FormatVersion {
		t.Fatalf("header = %+v", tr.Header)
	}
	if tr.Count != len(tr.Records) || len(tr.Records) == 0 {
		t.Fatalf("record count: header %d, actual %d", tr.Count, len(tr.Records))
	}
	if tr.Commits() == 0 {
		t.Fatal("no committed records")
	}
	prev := int64(math.MinInt64)
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.StartNs < prev {
			t.Fatalf("record %d out of order: %d after %d", i, r.StartNs, prev)
		}
		prev = r.StartNs
		if r.Worker < 0 || r.Worker > 1 {
			t.Fatalf("record %d worker = %d", i, r.Worker)
		}
		if !r.Committed {
			continue
		}
		// txapp: read 2 objects, compute 60, increment both.
		if r.Ops != 5 || r.Compute != 60 || r.Think != 10 {
			t.Fatalf("record %d annotation = ops %d compute %v think %v", i, r.Ops, r.Compute, r.Think)
		}
		if len(r.Writes) != 2 {
			t.Fatalf("record %d writes = %v", i, r.Writes)
		}
	}
}

// TestSaveLoadRoundTrip pins the on-disk format: a saved trace loads
// back identical, and corrupted variants are rejected with telling
// errors.
func TestSaveLoadRoundTrip(t *testing.T) {
	tr := recordRun(t, "hotspot", 2, 20*time.Millisecond)
	path := filepath.Join(t.TempDir(), "run.trace")
	if err := Save(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip diverged:\nsaved  %+v\nloaded %+v", tr.Header, got.Header)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name, content, wantErr string) {
		p := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(p); err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("%s: err = %v, want %q", name, err, wantErr)
		}
	}
	lines := strings.SplitN(string(raw), "\n", 2)
	corrupt("newer.trace",
		strings.Replace(lines[0], `"version":1`, `"version":99`, 1)+"\n"+lines[1],
		"unsupported format version")
	corrupt("alien.trace", `{"format":"something-else","version":1}`+"\n", "not a txconflict-trace")
	corrupt("empty.trace", "", "empty stream")
	truncated := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	corrupt("short.trace", strings.Join(truncated[:len(truncated)-3], "\n")+"\n", "truncated stream")
}

// TestRecorderOverflow routes unattributed blocks (plain Atomic, no
// worker id) into the overflow buffer instead of dropping them.
func TestRecorderOverflow(t *testing.T) {
	rec := NewRecorder("manual", 1, "")
	cfg := stm.DefaultConfig()
	cfg.Trace = rec
	rt := stm.New(4, cfg)
	r := rng.New(1)
	_ = rt.Atomic(r, func(tx *stm.Tx) error { tx.Store(0, 1); return nil })
	_ = rt.AtomicWorker(0, r, func(tx *stm.Tx) error { tx.Store(1, 1); return nil })
	tr := rec.Snapshot()
	if len(tr.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(tr.Records))
	}
	workers := map[int32]bool{}
	for _, r := range tr.Records {
		workers[r.Worker] = true
	}
	if !workers[-1] || !workers[0] {
		t.Fatalf("worker attribution = %+v", tr.Records)
	}
}

// TestRecorderOverflowAnnotation pins the overflow-buffer annotation
// rule: with interleaved out-of-range workers, each annotation must
// land on the newest record of the *matching* worker, never on
// whichever record happens to be last.
func TestRecorderOverflowAnnotation(t *testing.T) {
	rec := NewRecorder("manual", 1, "")
	emit := func(worker int) {
		rec.TraceTx(&stm.TxTrace{Worker: worker, Committed: true})
	}
	emit(5)
	emit(7) // worker 7's block lands after worker 5's, before 5 annotates
	rec.AnnotateProgram(5, 3, 30, 1)
	rec.AnnotateProgram(7, 4, 40, 2)
	for _, r := range rec.Snapshot().Records {
		switch r.Worker {
		case 5:
			if r.Ops != 3 || r.Compute != 30 {
				t.Fatalf("worker 5 record mis-annotated: %+v", r)
			}
		case 7:
			if r.Ops != 4 || r.Compute != 40 {
				t.Fatalf("worker 7 record mis-annotated: %+v", r)
			}
		default:
			t.Fatalf("unexpected record %+v", r)
		}
	}
}

// TestProfileAndSamplers checks the aggregation arithmetic on a
// hand-built trace and the dist-catalog bridge (raw and rescaled).
func TestProfileAndSamplers(t *testing.T) {
	tr := &Trace{
		Header: Header{Scenario: "unit", Workers: 2},
		Records: []Record{
			{Committed: true, Compute: 10, Think: 2, Reads: []uint32{0}, Writes: []uint32{1}, DurNs: 100, StartNs: 0},
			{Committed: true, Compute: 30, Think: 4, Reads: []uint32{1, 2}, Writes: []uint32{0, 3}, DurNs: 100, StartNs: 50, Retries: 2, GraceNs: 40},
			{Committed: false, Compute: 99, Think: 9, DurNs: 100, StartNs: 100}, // aborted: excluded from samples
		},
	}
	p := NewProfile(tr)
	if p.Records != 3 || p.Commits != 2 {
		t.Fatalf("counts = %d/%d", p.Records, p.Commits)
	}
	if p.MeanLength != 20 || p.MeanThink != 3 {
		t.Fatalf("means = %v/%v", p.MeanLength, p.MeanThink)
	}
	if p.MeanReads != 1.5 || p.MeanWrites != 1.5 {
		t.Fatalf("footprints = %v/%v", p.MeanReads, p.MeanWrites)
	}
	if p.AbortsPerCommit != 1 {
		t.Fatalf("aborts/commit = %v", p.AbortsPerCommit)
	}
	if p.SpanNs != 200 {
		t.Fatalf("span = %d", p.SpanNs)
	}

	ls, err := p.LengthSampler("")
	if err != nil || ls.Mean() != 20 || ls.Name() != "trace:unit" {
		t.Fatalf("length sampler = %v/%v (%v)", ls.Name(), ls.Mean(), err)
	}
	ts, err := p.ThinkSampler("")
	if err != nil || ts.Mean() != 3 {
		t.Fatalf("think sampler mean = %v (%v)", ts.Mean(), err)
	}

	lname, tname, err := p.RegisterSamplers("Unit-Key")
	if err != nil {
		t.Fatal(err)
	}
	if lname != "trace:unit-key" || tname != "trace:unit-key:think" {
		t.Fatalf("registered names = %q, %q", lname, tname)
	}
	raw, err := dist.ByName(lname, 0) // mu <= 0: raw trace
	if err != nil || raw.Mean() != 20 {
		t.Fatalf("raw catalog sampler mean = %v (%v)", raw.Mean(), err)
	}
	scaled, err := dist.ByName(lname, 500)
	if err != nil || math.Abs(scaled.Mean()-500) > 1e-9 {
		t.Fatalf("rescaled catalog sampler mean = %v (%v)", scaled.Mean(), err)
	}
	if _, _, err := p.RegisterSamplers("unit-key"); err == nil {
		t.Fatal("duplicate sampler registration accepted")
	}

	empty := NewProfile(&Trace{Header: Header{Scenario: "none"}})
	if _, err := empty.LengthSampler(""); err == nil {
		t.Fatal("empty profile produced a sampler")
	}
	if tab := p.Table(); len(tab.Rows) == 0 {
		t.Fatal("profile table is empty")
	}
}

// TestReplayFromRecordedTrace closes the loop inside the package: a
// recorded hotspot run replays on the STM runtime with the invariant
// intact, and registers as a first-class scenario.
func TestReplayFromRecordedTrace(t *testing.T) {
	tr := recordRun(t, "hotspot", 2, 20*time.Millisecond)
	sc, err := ReplayScenario(tr, scenario.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name() != "replay:hotspot" {
		t.Fatalf("replay name = %q", sc.Name())
	}
	rn := scenario.NewSTMRunner(sc, stm.DefaultConfig())
	res := rn.Drive(2, 20*time.Millisecond, 3)
	if res.Ops() == 0 {
		t.Fatal("replay ran no transactions")
	}
	if err := rn.Check(res.PerWorker); err != nil {
		t.Fatalf("replay invariant: %v", err)
	}

	if err := RegisterScenario("replay:trace-test", tr); err != nil {
		t.Fatal(err)
	}
	reg, err := scenario.ByName("replay:trace-test", scenario.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Words() != sc.Words() {
		t.Fatalf("registered replay arena = %d words, direct = %d", reg.Words(), sc.Words())
	}
	if err := RegisterScenario("replay:trace-test", tr); err == nil {
		t.Fatal("duplicate scenario registration accepted")
	}
	if err := RegisterScenario("x", &Trace{}); err == nil {
		t.Fatal("empty trace registered as scenario")
	}
}
