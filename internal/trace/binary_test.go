package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"txconflict/internal/scenario"
	"txconflict/internal/stm"
)

// synthTrace builds a deterministic n-record trace shaped like a
// hotspot capture: sorted read footprints, single-word writes, a mix
// of commits and aborts, and the occasional unattributed (-1) worker.
func synthTrace(n int) *Trace {
	tr := &Trace{
		Header: Header{
			Scenario:       "synth",
			Workers:        4,
			Config:         "unit-test",
			CapturedUnixNs: 1700000000000000000,
			UnitNs:         1.5,
		},
	}
	x := uint64(12345)
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		base := uint32(x % 512)
		r := Record{
			Worker:    int32(i % 4),
			StartNs:   int64(i) * 1500,
			DurNs:     1200 + int64(x%400),
			Retries:   uint32(x % 3),
			Committed: x%8 != 0,
			Ops:       5,
			Compute:   60,
			Think:     10,
			Reads:     []uint32{base, base + 1, base + 7},
			Writes:    []uint32{base},
		}
		if i%97 == 0 {
			r.Worker = -1
			r.Irrevocable = true
			r.GraceNs = 250
			r.KillsIssued = 1
			r.FoldedWrites = 2
		}
		tr.Records = append(tr.Records, r)
	}
	tr.Count = len(tr.Records)
	return tr
}

// normalizeTrace maps semantically equal traces to one representative:
// nil and empty footprints are the same record (JSONL's omitempty
// round-trips empty slices as nil), and the mutable accounting fields
// the pipeline stamps (Count, Sampled) are cleared.
func normalizeTrace(tr *Trace) *Trace {
	out := &Trace{Header: tr.Header}
	out.Format = FormatName
	out.Version = FormatVersion
	out.Count = 0
	out.Sampled = 0
	out.Records = make([]Record, len(tr.Records))
	copy(out.Records, tr.Records)
	for i := range out.Records {
		r := &out.Records[i]
		if len(r.Reads) == 0 {
			r.Reads = nil
		}
		if len(r.Writes) == 0 {
			r.Writes = nil
		}
	}
	return out
}

// TestBinaryRoundTrip pins the materialized binary path: WriteBinary
// then ReadBinary returns the same records, the header survives
// (including the UnitNs calibration), and the footer count is
// authoritative.
func TestBinaryRoundTrip(t *testing.T) {
	tr := synthTrace(1000)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Format != FormatName || got.Version != FormatVersion {
		t.Fatalf("header format = %q v%d", got.Format, got.Version)
	}
	if got.Count != 1000 || len(got.Records) != 1000 {
		t.Fatalf("count = %d, records = %d", got.Count, len(got.Records))
	}
	if got.UnitNs != tr.UnitNs || got.Scenario != tr.Scenario {
		t.Fatalf("header provenance lost: %+v", got.Header)
	}
	if !reflect.DeepEqual(normalizeTrace(tr), normalizeTrace(got)) {
		t.Fatal("binary round trip diverged")
	}
}

// TestBinaryWriterBlocks checks the streaming writer's block framing:
// records-per-block bound, index entries covering the whole record
// range with correct timestamp bounds, and byte offsets that actually
// frame blocks (via decodeBlockAt).
func TestBinaryWriterBlocks(t *testing.T) {
	tr := synthTrace(100)
	path := filepath.Join(t.TempDir(), "blocks.btrace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := NewWriter(f, tr.Header, BinaryWriterOptions{BlockRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Records {
		if err := bw.WriteRecord(&tr.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if bw.Count() != 100 {
		t.Fatalf("writer count = %d", bw.Count())
	}
	idx := bw.Index()
	if want := (100 + 15) / 16; len(idx) != want {
		t.Fatalf("blocks = %d, want %d", len(idx), want)
	}
	next := 0
	for i, e := range idx {
		if e.FirstRecord != next {
			t.Fatalf("block %d first record = %d, want %d", i, e.FirstRecord, next)
		}
		if e.Records <= 0 || e.Records > 16 {
			t.Fatalf("block %d records = %d", i, e.Records)
		}
		lo, hi := tr.Records[e.FirstRecord].StartNs, tr.Records[e.FirstRecord+e.Records-1].StartNs
		if e.MinStartNs != lo || e.MaxStartNs != hi {
			t.Fatalf("block %d time bounds = [%d,%d], want [%d,%d]",
				i, e.MinStartNs, e.MaxStartNs, lo, hi)
		}
		next += e.Records
	}
	if next != 100 {
		t.Fatalf("index covers %d records", next)
	}

	// The footer on disk reproduces the writer's index.
	h, gotIdx, err := ReadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Count != 100 || h.Scenario != "synth" {
		t.Fatalf("indexed header = %+v", h)
	}
	if !reflect.DeepEqual(idx, gotIdx) {
		t.Fatalf("footer index diverged:\nwriter %+v\nfooter %+v", idx, gotIdx)
	}

	// Each indexed offset frames a decodable block with the promised
	// records.
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	for i, e := range gotIdx {
		recs, err := decodeBlockAt(rf, e, nil)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		want := tr.Records[e.FirstRecord : e.FirstRecord+e.Records]
		if !reflect.DeepEqual(recs, want) {
			t.Fatalf("block %d records diverged", i)
		}
	}
}

// TestBinaryCompressionChoice checks that the per-block DEFLATE
// attempt only sticks when it shrinks the block, and that NoCompress
// streams still decode.
func TestBinaryCompressionChoice(t *testing.T) {
	tr := synthTrace(2000)
	var plain, packed bytes.Buffer
	bw, err := NewWriter(&plain, tr.Header, BinaryWriterOptions{NoCompress: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Records {
		if err := bw.WriteRecord(&tr.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&packed, tr); err != nil {
		t.Fatal(err)
	}
	if packed.Len() >= plain.Len() {
		t.Fatalf("compressed container %d bytes, uncompressed %d", packed.Len(), plain.Len())
	}
	for name, buf := range map[string]*bytes.Buffer{"plain": &plain, "packed": &packed} {
		got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(normalizeTrace(tr), normalizeTrace(got)) {
			t.Fatalf("%s container diverged", name)
		}
	}
}

// TestBinaryStreamingReader drives the RecordReader interface
// directly: the header is available before any record, records come
// back in order, and io.EOF arrives only after footer validation.
func TestBinaryStreamingReader(t *testing.T) {
	tr := synthTrace(50)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	rr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	if rr.Header().Scenario != "synth" {
		t.Fatalf("streamed header = %+v", rr.Header())
	}
	var rec Record
	for i := 0; ; i++ {
		err := rr.Next(&rec)
		if err == io.EOF {
			if i != 50 {
				t.Fatalf("EOF after %d records", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.StartNs != tr.Records[i].StartNs {
			t.Fatalf("record %d start = %d, want %d", i, rec.StartNs, tr.Records[i].StartNs)
		}
	}
	// After EOF the footer count has been folded into the header.
	if rr.Header().Count != 50 {
		t.Fatalf("post-EOF header count = %d", rr.Header().Count)
	}
}

// TestConvertBothDirections round-trips a trace JSONL → binary →
// JSONL via the streaming Convert path and checks semantic identity
// plus binary re-encode byte stability.
func TestConvertBothDirections(t *testing.T) {
	tr := synthTrace(300)
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "a.trace")
	btr := filepath.Join(dir, "b.btrace")
	jsonl2 := filepath.Join(dir, "c.trace")
	btr2 := filepath.Join(dir, "d.btrace")
	if err := Save(jsonl, tr); err != nil {
		t.Fatal(err)
	}
	for _, hop := range [][2]string{{jsonl, btr}, {btr, jsonl2}, {jsonl2, btr2}} {
		n, err := Convert(hop[0], hop[1])
		if err != nil {
			t.Fatalf("%s -> %s: %v", hop[0], hop[1], err)
		}
		if n != 300 {
			t.Fatalf("%s -> %s converted %d records", hop[0], hop[1], n)
		}
	}
	back, err := Load(jsonl2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeTrace(tr), normalizeTrace(back)) {
		t.Fatal("JSONL -> binary -> JSONL diverged")
	}
	// Re-encoding the same record stream must be byte-stable.
	b1, err := os.ReadFile(btr)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(btr2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("binary re-encode not byte-stable: %d vs %d bytes", len(b1), len(b2))
	}
}

// TestLoadAutoDetect checks that Load dispatches on content, not
// extension: a binary container under a .trace name and a JSONL
// stream under .btrace both load.
func TestLoadAutoDetect(t *testing.T) {
	tr := synthTrace(25)
	dir := t.TempDir()
	lying1 := filepath.Join(dir, "binary-inside.trace")
	f, err := os.Create(lying1)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	lying2 := filepath.Join(dir, "jsonl-inside.btrace")
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(lying2, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{lying1, lying2} {
		got, err := Load(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !reflect.DeepEqual(normalizeTrace(tr), normalizeTrace(got)) {
			t.Fatalf("%s: auto-detected load diverged", p)
		}
	}
}

// TestCreateStreamsBothFormats drives the extension-dispatched Create
// path: the JSONL writer back-patches its header count, the binary
// writer's footer carries it, and both files load identically.
func TestCreateStreamsBothFormats(t *testing.T) {
	tr := synthTrace(40)
	dir := t.TempDir()
	for _, name := range []string{"s.trace", "s.btrace"} {
		path := filepath.Join(dir, name)
		h := tr.Header
		h.Count = 0 // streaming writers must not need the count up front
		w, err := Create(path, h)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tr.Records {
			if err := w.WriteRecord(&tr.Records[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Count != 40 {
			t.Fatalf("%s: loaded count = %d", name, got.Count)
		}
		if !reflect.DeepEqual(normalizeTrace(tr), normalizeTrace(got)) {
			t.Fatalf("%s: streamed write diverged", name)
		}
	}
}

// TestLoadSampleBinary checks the index-driven sampling path: an
// over-budget binary trace comes back as evenly spaced whole blocks,
// Sampled records the original total, and a within-budget trace loads
// in full.
func TestLoadSampleBinary(t *testing.T) {
	tr := synthTrace(400)
	path := filepath.Join(t.TempDir(), "s.btrace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := NewWriter(f, tr.Header, BinaryWriterOptions{BlockRecords: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Records {
		if err := bw.WriteRecord(&tr.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := LoadSample(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sampled != 400 {
		t.Fatalf("Sampled = %d, want 400", got.Sampled)
	}
	if got.Count != len(got.Records) || len(got.Records) == 0 || len(got.Records) > 120 {
		t.Fatalf("sample = %d records (count %d)", len(got.Records), got.Count)
	}
	// Sampled records must be a subsequence of the original: whole
	// blocks, so runs of 20 with matching content.
	byStart := map[int64]Record{}
	for _, r := range tr.Records {
		byStart[r.StartNs] = r
	}
	for i, r := range got.Records {
		want, ok := byStart[r.StartNs]
		if !ok || !reflect.DeepEqual(normalizeTrace(&Trace{Records: []Record{r}}),
			normalizeTrace(&Trace{Records: []Record{want}})) {
			t.Fatalf("sampled record %d not in the original trace: %+v", i, r)
		}
	}

	full, err := LoadSample(path, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if full.Sampled != 0 || len(full.Records) != 400 {
		t.Fatalf("within-budget sample = %d records, Sampled %d", len(full.Records), full.Sampled)
	}
}

// TestLoadSampleJSONL checks the strided fallback on the unindexed
// format.
func TestLoadSampleJSONL(t *testing.T) {
	tr := synthTrace(200)
	path := filepath.Join(t.TempDir(), "s.trace")
	if err := Save(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSample(path, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sampled != 200 {
		t.Fatalf("Sampled = %d, want 200", got.Sampled)
	}
	if len(got.Records) != 50 {
		t.Fatalf("strided sample = %d records, want 50", len(got.Records))
	}
	for i, r := range got.Records {
		if want := tr.Records[i*4]; r.StartNs != want.StartNs {
			t.Fatalf("sample record %d start = %d, want %d (stride 4)", i, r.StartNs, want.StartNs)
		}
	}
}

// TestBinaryCorruptionRejected flips bytes in every structural region
// — block payload, CRC, footer, trailer, magic — and requires a
// telling error, never a silent partial load.
func TestBinaryCorruptionRejected(t *testing.T) {
	tr := synthTrace(100)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	reject := func(name string, data []byte, wantErr string) {
		t.Helper()
		_, err := ReadBinary(bytes.NewReader(data))
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("%s: err = %v, want %q", name, err, wantErr)
		}
	}
	flip := func(i int) []byte {
		c := append([]byte(nil), valid...)
		c[i] ^= 0xff
		return c
	}

	newer := append([]byte(nil), valid...)
	copy(newer, "txcbtr99")
	reject("newer container", newer, "unsupported binary container version")

	alien := append([]byte(nil), valid...)
	copy(alien, "notatrcf")
	reject("alien magic", alien, "not a txconflict-trace binary trace")

	// A byte inside the block frame (the footer + trailer take the
	// last ~30 bytes; well before that is block payload or the block's
	// own CRC — either way the CRC check catches the flip).
	reject("payload bit flip", flip(len(valid)-60), "crc mismatch")
	// Flipping inside the footer body breaks the footer CRC.
	reject("footer bit flip", flip(len(valid)-24), "footer crc mismatch")
	reject("trailer magic", flip(len(valid)-1), "bad trailer magic")
	reject("truncated mid-block", valid[:len(valid)/2], "trace:")
	// The trailer locates the footer; cut the file right there so the
	// blocks are intact but the footer never arrives.
	footerOff := int(binary.LittleEndian.Uint64(valid[len(valid)-16:]))
	reject("no footer", valid[:footerOff], "truncated binary stream")

	// A lying block count must be rejected before allocation. Build a
	// hand-framed block claiming 2^40 records in 3 payload bytes.
	var lying []byte
	lying = append(lying, BinaryMagic...)
	hdr := fmt.Sprintf(`{"format":%q,"version":1}`, FormatName)
	lying = append(lying, byte(len(hdr)))
	lying = append(lying, hdr...)
	lying = append(lying, blockTag, 0)
	lying = append(lying, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40) // count = 2^40
	lying = append(lying, 3, 3, 1, 2, 3, 0, 0, 0, 0)
	reject("lying block count", lying, "impossible for")

	// Oversized declared block: rejected before the 64 MiB allocation.
	var huge []byte
	huge = append(huge, BinaryMagic...)
	huge = append(huge, byte(len(hdr)))
	huge = append(huge, hdr...)
	huge = append(huge, blockTag, 0, 1)
	huge = append(huge, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40) // huge rawLen
	huge = append(huge, 1)                                  // storedLen
	reject("oversized block", huge, "exceeds")
}

// TestRecorderWriteToStreams checks the Recorder's streaming drain:
// WriteTo merges the per-worker buffers in start order into a
// RecordWriter, matching Snapshot record for record, without the
// materialized intermediate.
func TestRecorderWriteToStreams(t *testing.T) {
	sc, err := scenario.ByName("hotspot", scenario.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := stm.DefaultConfig()
	rec := NewRecorder("hotspot", 2, cfg.String())
	rec.SetUnitNs(3)
	cfg.Trace = rec
	rn := scenario.NewSTMRunner(sc, cfg)
	if res := rn.Drive(2, 20*time.Millisecond, 7); res.Ops() == 0 {
		t.Fatal("no transactions recorded")
	}
	want := rec.Snapshot()

	path := filepath.Join(t.TempDir(), "stream.btrace")
	w, err := Create(path, rec.Header())
	if err != nil {
		t.Fatal(err)
	}
	n, err := rec.WriteTo(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n != len(want.Records) {
		t.Fatalf("WriteTo streamed %d records, Snapshot has %d", n, len(want.Records))
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.UnitNs != 3 {
		t.Fatalf("calibration lost in streaming path: UnitNs = %v", got.UnitNs)
	}
	if !reflect.DeepEqual(normalizeTrace(want), normalizeTrace(got)) {
		t.Fatal("streamed recording diverged from Snapshot")
	}
}
