package trace

import (
	"fmt"
	"math"
	"strings"

	"txconflict/internal/dist"
	"txconflict/internal/report"
	"txconflict/internal/scenario"
)

// Profile aggregates a trace into the distributions and summary
// statistics the rest of the repository consumes: committed
// transaction lengths and think times as sample sets (→
// dist.NewEmpirical), plus the runtime-behaviour means a fidelity
// report compares against.
type Profile struct {
	// Scenario is the recorded scenario name (from the header).
	Scenario string
	// Records and Commits count all blocks and committed blocks.
	Records, Commits int
	// Retries, KillsSuffered, KillsIssued are totals over all blocks.
	Retries, KillsSuffered, KillsIssued uint64
	// MeanLength and MeanThink are the means of the committed
	// Lengths/Thinks sample sets.
	MeanLength, MeanThink float64
	// MeanReads and MeanWrites are the mean footprint sizes of
	// committed blocks.
	MeanReads, MeanWrites float64
	// MeanGraceNs and MeanDurNs are per-block means.
	MeanGraceNs, MeanDurNs float64
	// AbortsPerCommit is total retries over total commits.
	AbortsPerCommit float64
	// SpanNs is the recorded wall-clock span; CommitsPerSec the
	// recorded committed-transaction throughput over that span.
	SpanNs        int64
	CommitsPerSec float64
	// Lengths and Thinks are the committed blocks' sampled compute
	// lengths and think times (scenario units), the raw material for
	// empirical samplers.
	Lengths, Thinks []float64
}

// NewProfile aggregates tr. Traces with no committed records still
// profile (runtime stats only); LengthSampler then returns an error.
func NewProfile(tr *Trace) *Profile {
	p := &Profile{Scenario: tr.Scenario, Records: len(tr.Records), SpanNs: tr.SpanNs()}
	var graceSum, durSum float64
	var readSum, writeSum float64
	for i := range tr.Records {
		r := &tr.Records[i]
		p.Retries += uint64(r.Retries)
		p.KillsSuffered += uint64(r.KillsSuffered)
		p.KillsIssued += uint64(r.KillsIssued)
		graceSum += float64(r.GraceNs)
		durSum += float64(r.DurNs)
		if !r.Committed {
			continue
		}
		p.Commits++
		readSum += float64(len(r.Reads))
		writeSum += float64(len(r.Writes))
		p.Lengths = append(p.Lengths, r.Compute)
		p.Thinks = append(p.Thinks, r.Think)
		p.MeanLength += r.Compute
		p.MeanThink += r.Think
	}
	if p.Records > 0 {
		p.MeanGraceNs = graceSum / float64(p.Records)
		p.MeanDurNs = durSum / float64(p.Records)
	}
	if p.Commits > 0 {
		p.MeanLength /= float64(p.Commits)
		p.MeanThink /= float64(p.Commits)
		p.MeanReads = readSum / float64(p.Commits)
		p.MeanWrites = writeSum / float64(p.Commits)
		p.AbortsPerCommit = float64(p.Retries) / float64(p.Commits)
	}
	if p.SpanNs > 0 {
		p.CommitsPerSec = float64(p.Commits) / (float64(p.SpanNs) / 1e9)
	}
	return p
}

// LengthSampler returns the empirical sampler over the committed
// transaction lengths, named name ("" defaults to "trace:<scenario>").
func (p *Profile) LengthSampler(name string) (*dist.Empirical, error) {
	if len(p.Lengths) == 0 {
		return nil, fmt.Errorf("trace: profile of %q has no committed records to sample", p.Scenario)
	}
	if name == "" {
		name = "trace:" + p.Scenario
	}
	return dist.NewEmpirical(name, p.Lengths), nil
}

// ThinkSampler returns the empirical sampler over the committed
// think times.
func (p *Profile) ThinkSampler(name string) (*dist.Empirical, error) {
	if len(p.Thinks) == 0 {
		return nil, fmt.Errorf("trace: profile of %q has no committed records to sample", p.Scenario)
	}
	if name == "" {
		name = "trace:" + p.Scenario + ":think"
	}
	return dist.NewEmpirical(name, p.Thinks), nil
}

// RegisterSamplers adds the profile's length and think distributions
// to the dist.ByName catalog as "trace:<key>" and "trace:<key>:think"
// and returns the two registered names. The builders follow the
// catalog's mean convention: mu > 0 rescales the samples to mean mu,
// mu <= 0 (or a zero-mean trace) replays them raw. Both names are
// checked for collisions up front, so a failure never leaves the
// catalog half-populated.
func (p *Profile) RegisterSamplers(key string) (lengthName, thinkName string, err error) {
	lengthName = "trace:" + strings.ToLower(strings.TrimSpace(key))
	thinkName = lengthName + ":think"
	if len(p.Lengths) == 0 {
		return "", "", fmt.Errorf("trace: profile of %q has no committed records to register", p.Scenario)
	}
	for _, name := range []string{lengthName, thinkName} {
		if dist.Known(name) {
			return "", "", fmt.Errorf("dist: distribution %q already registered", name)
		}
	}
	if err := dist.Register(lengthName, empiricalBuilder(lengthName, p.Lengths)); err != nil {
		return "", "", err
	}
	if err := dist.Register(thinkName, empiricalBuilder(thinkName, p.Thinks)); err != nil {
		return "", "", err
	}
	return lengthName, thinkName, nil
}

// empiricalBuilder adapts a sample set to the catalog's
// mean-parameterized builder convention.
func empiricalBuilder(name string, samples []float64) func(mu float64) dist.Sampler {
	raw := dist.NewEmpirical(name, samples)
	return func(mu float64) dist.Sampler {
		if mu <= 0 || raw.Mean() == 0 {
			return raw
		}
		scale := mu / raw.Mean()
		scaled := make([]float64, len(samples))
		for i, v := range samples {
			scaled[i] = v * scale
		}
		return dist.NewEmpirical(name, scaled)
	}
}

// Table renders the profile as a summary table with a log₂ histogram
// of committed transaction lengths — the CLI output of
// `stmbench -record`.
func (p *Profile) Table() *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("trace profile (%s): %d records over %.1f ms", p.Scenario, p.Records, float64(p.SpanNs)/1e6),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("commits", p.Commits)
	t.AddRow("commits/s (recorded)", p.CommitsPerSec)
	t.AddRow("aborts/commit", p.AbortsPerCommit)
	t.AddRow("kills suffered / issued", fmt.Sprintf("%d / %d", p.KillsSuffered, p.KillsIssued))
	t.AddRow("mean length (units)", p.MeanLength)
	t.AddRow("mean think (units)", p.MeanThink)
	t.AddRow("mean footprint r/w", fmt.Sprintf("%.2f / %.2f", p.MeanReads, p.MeanWrites))
	t.AddRow("mean grace wait (ns)", p.MeanGraceNs)
	t.AddRow("mean duration (ns)", p.MeanDurNs)
	for _, b := range p.lengthHistogram() {
		t.AddRow(b.label, b.bar)
	}
	return t
}

// histBucket is one rendered histogram row.
type histBucket struct{ label, bar string }

// lengthHistogram buckets the committed lengths by log₂ and renders
// proportional bars (the profiled length distributions of the
// paper's Section 1, in table form).
func (p *Profile) lengthHistogram() []histBucket {
	if len(p.Lengths) == 0 {
		return nil
	}
	counts := map[int]int{}
	lo, hi := math.MaxInt, math.MinInt
	for _, v := range p.Lengths {
		b := 0
		if v >= 1 {
			b = int(math.Log2(v)) + 1
		}
		counts[b]++
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	out := make([]histBucket, 0, hi-lo+1)
	for b := lo; b <= hi; b++ {
		c := counts[b]
		label := "len [0,1)"
		if b > 0 {
			label = fmt.Sprintf("len [%.0f,%.0f)", math.Pow(2, float64(b-1)), math.Pow(2, float64(b)))
		}
		bar := strings.Repeat("#", (c*40+max-1)/max)
		out = append(out, histBucket{label, fmt.Sprintf("%-40s %d", bar, c)})
	}
	return out
}

// replayRecords converts the trace's committed records to the
// scenario layer's replay form, scaling compute and think by the
// given factor (1 replays the recorded units raw).
func replayRecords(tr *Trace, scale float64) []scenario.ReplayRecord {
	if scale <= 0 {
		scale = 1
	}
	recs := make([]scenario.ReplayRecord, 0, len(tr.Records))
	for i := range tr.Records {
		r := &tr.Records[i]
		if !r.Committed {
			continue
		}
		recs = append(recs, scenario.ReplayRecord{
			Reads:   r.Reads,
			Writes:  r.Writes,
			Compute: r.Compute * scale,
			Think:   r.Think * scale,
		})
	}
	return recs
}

// CycleScale returns the trace's busy-work-unit → simulated-cycle
// conversion factor: the calibrated Header.UnitNs when the capture
// stamped one (at the simulator's 1 GHz convention, one wall
// nanosecond is one cycle), and 1 for pre-calibration files.
func (tr *Trace) CycleScale() float64 {
	if tr.UnitNs > 0 {
		return tr.UnitNs
	}
	return 1
}

// ReplayScenario builds a scenario.NewReplay over the trace's
// committed records: the identical footprints re-issued as
// register-machine programs, runnable on the HTM simulator (via
// internal/workload) and the STM runtime alike. Compute and think
// replay in the recorded units — right for the STM backend, whose
// units are busy-work iterations; the simulator wants
// ReplayScenarioCycles.
func ReplayScenario(tr *Trace, opt scenario.Options) (*scenario.Scenario, error) {
	return replayScenario(tr, opt, 1)
}

// ReplayScenarioCycles is ReplayScenario with the recorded compute
// and think lengths converted to simulated cycles via the trace's
// calibration header (CycleScale) — the HTM-backend form, faithful
// to the recording machine's real per-unit cost.
func ReplayScenarioCycles(tr *Trace, opt scenario.Options) (*scenario.Scenario, error) {
	return replayScenario(tr, opt, tr.CycleScale())
}

func replayScenario(tr *Trace, opt scenario.Options, scale float64) (*scenario.Scenario, error) {
	recs := replayRecords(tr, scale)
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: no committed records to replay (scenario %q, %d records)",
			tr.Scenario, len(tr.Records))
	}
	name := "replay:" + tr.Scenario
	return scenario.NewReplay(name,
		fmt.Sprintf("replay of a recorded %s run (%d committed transactions)", tr.Scenario, len(recs)),
		recs, opt)
}

// RegisterScenario adds the trace's replay to the scenario.ByName
// catalog under the given name, making it selectable wherever a
// registry scenario is (-scenario flags, the parity suite, the
// figure harnesses). Units replay raw (the STM-backend convention);
// RegisterScenarioCycles is the calibrated simulator form.
func RegisterScenario(name string, tr *Trace) error {
	return registerScenario(name, tr, 1)
}

// RegisterScenarioCycles registers the replay with compute and think
// converted to simulated cycles via the calibration header — what
// txsim -replay uses, so a trace recorded on a fast box simulates
// with that box's real per-unit cost.
func RegisterScenarioCycles(name string, tr *Trace) error {
	return registerScenario(name, tr, tr.CycleScale())
}

func registerScenario(name string, tr *Trace, scale float64) error {
	recs := replayRecords(tr, scale)
	if len(recs) == 0 {
		return fmt.Errorf("trace: no committed records to replay (scenario %q, %d records)",
			tr.Scenario, len(tr.Records))
	}
	desc := fmt.Sprintf("replay of a recorded %s run (%d committed transactions)", tr.Scenario, len(recs))
	return scenario.Register(name, desc, func(opt scenario.Options) *scenario.Scenario {
		sc, err := scenario.NewReplay(name, desc, recs, opt)
		if err != nil {
			panic(err) // unreachable: recs validated non-empty above
		}
		return sc
	})
}
