// Package dist provides the transaction-length distributions of the
// paper's evaluation (Section 8.1) and the numeric machinery the
// strategy family needs to manipulate delay densities.
//
// The paper's optimal grace-period strategies (Theorems 1-6) are
// derived against distributions of the unknown remaining time, and
// Figure 2 sweeps a suite of length distributions; this package is
// the single home for both:
//
//   - Sampler implementations for every workload generator
//     (Constant, Uniform, Exponential, Lognormal, Bimodal, plus the
//     heavy-tailed Pareto, the rank-skewed Zipf, and Empirical
//     trace replay);
//   - Fig2Suite, the five-distribution catalog that Figure 2 sweeps,
//     and ExtendedSuite/ByName for the CLI benchmarks;
//   - numeric helpers (Clamp, InvertCDF, IntegratePDF, CDFFromPDF)
//     used by internal/strategy to invert closed-form CDFs and by the
//     property tests to verify normalization.
//
// All randomness flows through internal/rng, so every draw sequence
// is reproducible from a seed.
package dist

import (
	"math"

	"txconflict/internal/rng"
)

// Sampler draws isolated transaction lengths. Implementations must be
// deterministic functions of the stream r, so that a fixed seed
// reproduces a fixed schedule.
type Sampler interface {
	// Sample draws one transaction length. Draws are >= 0; callers
	// that need strict positivity clamp to 1.
	Sample(r *rng.Rand) float64
	// Mean returns the distribution's mean µ, which profilers feed to
	// the mean-constrained strategies.
	Mean() float64
	// Name identifies the distribution in tables and CLI flags.
	Name() string
}

// Constant always returns V: the degenerate distribution, the
// easiest case for the deterministic strategy.
type Constant struct {
	// V is the fixed length.
	V float64
}

// Sample implements Sampler.
func (c Constant) Sample(*rng.Rand) float64 { return c.V }

// Mean implements Sampler.
func (c Constant) Mean() float64 { return c.V }

// Name implements Sampler.
func (c Constant) Name() string { return "constant" }

// Uniform draws uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// UniformMean returns the uniform distribution on [0, 2·mean), the
// Figure 2 parameterization by mean alone.
func UniformMean(mean float64) Uniform {
	return Uniform{Lo: 0, Hi: 2 * mean}
}

// Sample implements Sampler.
func (u Uniform) Sample(r *rng.Rand) float64 { return r.Range(u.Lo, u.Hi) }

// Mean implements Sampler.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Name implements Sampler.
func (u Uniform) Name() string { return "uniform" }

// Exponential draws exponentially distributed lengths with mean Mu —
// the memoryless workload, and the paper's default length model.
type Exponential struct {
	// Mu is the mean (1/rate).
	Mu float64
}

// Sample implements Sampler.
func (e Exponential) Sample(r *rng.Rand) float64 { return e.Mu * r.ExpFloat64() }

// Mean implements Sampler.
func (e Exponential) Mean() float64 { return e.Mu }

// Name implements Sampler.
func (e Exponential) Name() string { return "exponential" }

// Lognormal draws exp(N(LogMu, Sigma²)): a right-skewed unimodal
// length model with a moderate tail, common in profiled transaction
// traces.
type Lognormal struct {
	// LogMu is the mean of the underlying normal.
	LogMu float64
	// Sigma is the standard deviation of the underlying normal.
	Sigma float64
}

// LognormalMean returns the lognormal with the given mean and shape
// sigma: LogMu = ln(mean) - sigma²/2.
func LognormalMean(mean, sigma float64) Lognormal {
	return Lognormal{LogMu: math.Log(mean) - sigma*sigma/2, Sigma: sigma}
}

// Sample implements Sampler.
func (l Lognormal) Sample(r *rng.Rand) float64 {
	return math.Exp(l.LogMu + l.Sigma*r.NormFloat64())
}

// Mean implements Sampler.
func (l Lognormal) Mean() float64 { return math.Exp(l.LogMu + l.Sigma*l.Sigma/2) }

// Name implements Sampler.
func (l Lognormal) Name() string { return "lognormal" }

// Bimodal mixes two constant modes: a short transaction with
// probability PShort, a long one otherwise. It models the paper's
// bimodal application (a fast common path plus a rare long scan).
type Bimodal struct {
	Short, Long float64
	// PShort is the probability of the short mode.
	PShort float64
}

// BimodalMean returns a bimodal with the given overall mean: the
// short mode is mean/5, taken with probability 3/4, and the long mode
// absorbs the rest of the mass.
func BimodalMean(mean float64) Bimodal {
	short := mean / 5
	const pShort = 0.75
	long := (mean - pShort*short) / (1 - pShort)
	return Bimodal{Short: short, Long: long, PShort: pShort}
}

// Sample implements Sampler.
func (b Bimodal) Sample(r *rng.Rand) float64 {
	if r.Bool(b.PShort) {
		return b.Short
	}
	return b.Long
}

// Mean implements Sampler.
func (b Bimodal) Mean() float64 {
	return b.PShort*b.Short + (1-b.PShort)*b.Long
}

// Name implements Sampler.
func (b Bimodal) Name() string { return "bimodal" }

// Pareto draws from the heavy-tailed Pareto distribution with scale
// Xm and shape Alpha > 1 (so the mean exists): the adversarial end of
// realistic length models, where rare transactions dwarf the mean.
type Pareto struct {
	// Xm is the scale (minimum value).
	Xm float64
	// Alpha is the tail index; draws have finite mean iff Alpha > 1.
	Alpha float64
}

// ParetoMean returns the Pareto with the given mean and tail index
// alpha: Xm = mean·(alpha-1)/alpha.
func ParetoMean(mean, alpha float64) Pareto {
	return Pareto{Xm: mean * (alpha - 1) / alpha, Alpha: alpha}
}

// Sample implements Sampler (inverse-CDF transform).
func (p Pareto) Sample(r *rng.Rand) float64 {
	return p.Xm / math.Pow(1-r.Float64(), 1/p.Alpha)
}

// Mean implements Sampler.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Name implements Sampler.
func (p Pareto) Name() string { return "pareto" }

// Zipf draws one of N ranked lengths with probability proportional to
// 1/rank^S: length Base·rank, so a few ranks dominate the mass but
// long transactions appear with polynomially decaying frequency. It
// models key-popularity-skewed workloads (the classic contention
// generator).
type Zipf struct {
	// N is the number of ranks (>= 1).
	N int
	// S is the skew exponent (>= 0; larger = more skewed).
	S float64
	// Base scales rank r to length Base·r.
	Base float64

	// cdf is the lazily built rank CDF; all fields above are
	// configuration, so Zipf must be used by pointer or constructed
	// via ZipfMean to share the table.
	cdf []float64
}

// NewZipf returns a Zipf sampler with a precomputed rank table.
func NewZipf(n int, s, base float64) *Zipf {
	z := &Zipf{N: n, S: s, Base: base}
	z.build()
	return z
}

// ZipfMean returns a Zipf sampler over n ranks with skew s, scaled so
// that the mean length is the given mean.
func ZipfMean(mean float64, n int, s float64) *Zipf {
	z := NewZipf(n, s, 1)
	z.Base = mean / z.Mean()
	return z
}

func (z *Zipf) build() {
	if z.N < 1 {
		z.N = 1
	}
	z.cdf = make([]float64, z.N)
	total := 0.0
	for rank := 1; rank <= z.N; rank++ {
		total += math.Pow(float64(rank), -z.S)
		z.cdf[rank-1] = total
	}
	for i := range z.cdf {
		z.cdf[i] /= total
	}
}

// Sample implements Sampler: binary search of the rank CDF.
func (z *Zipf) Sample(r *rng.Rand) float64 {
	if z.cdf == nil {
		z.build()
	}
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return z.Base * float64(lo+1)
}

// Mean implements Sampler.
func (z *Zipf) Mean() float64 {
	if z.cdf == nil {
		z.build()
	}
	mean := 0.0
	prev := 0.0
	for rank := 1; rank <= z.N; rank++ {
		p := z.cdf[rank-1] - prev
		prev = z.cdf[rank-1]
		mean += p * z.Base * float64(rank)
	}
	return mean
}

// Name implements Sampler.
func (z *Zipf) Name() string { return "zipf" }

// Empirical replays lengths sampled uniformly from a recorded trace:
// the bridge from profiled production workloads to the synthetic
// testbed.
type Empirical struct {
	trace []float64
	mean  float64
	name  string
}

// NewEmpirical returns a sampler over the given trace. It panics on
// an empty trace. The trace is not copied; callers must not mutate it
// afterwards.
func NewEmpirical(name string, trace []float64) *Empirical {
	if len(trace) == 0 {
		panic("dist: empirical sampler needs a non-empty trace")
	}
	sum := 0.0
	for _, v := range trace {
		sum += v
	}
	if name == "" {
		name = "empirical"
	}
	return &Empirical{trace: trace, mean: sum / float64(len(trace)), name: name}
}

// Sample implements Sampler.
func (e *Empirical) Sample(r *rng.Rand) float64 {
	return e.trace[r.Intn(len(e.trace))]
}

// Mean implements Sampler.
func (e *Empirical) Mean() float64 { return e.mean }

// Name implements Sampler.
func (e *Empirical) Name() string { return e.name }

// Size returns the number of trace entries.
func (e *Empirical) Size() int { return len(e.trace) }
