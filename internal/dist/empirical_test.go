package dist

import (
	"math"
	"testing"

	"txconflict/internal/rng"
)

// goldenEmpiricalTrace is the fixed sample set behind the Empirical
// golden fingerprint: a spread of short, medium and heavy-tailed
// values, including repeats (repeats must not bias the draw).
var goldenEmpiricalTrace = []float64{
	3, 3, 7, 12, 12, 12, 25, 40, 61, 88, 130, 200, 450, 450, 1024, 5000,
}

// goldenEmpiricalFP pins the exact draw sequence of Empirical over
// goldenEmpiricalTrace at seed 1 (1000 draws, FNV-1a over float64
// bits — same scheme as goldenFingerprints). Recorded once from the
// reference run; a drift here means every replayed trace in the
// repository silently changes.
const goldenEmpiricalFP uint64 = 0xd8e8ad3eae4d4dcf

// TestEmpiricalGoldenDeterminism locks the Empirical sampler's
// reproducibility contract, matching the golden coverage the other
// sampler families got in PR 1.
func TestEmpiricalGoldenDeterminism(t *testing.T) {
	draws := func(seed uint64, n int) []float64 {
		e := NewEmpirical("golden", goldenEmpiricalTrace)
		r := rng.New(seed)
		out := make([]float64, n)
		for i := range out {
			out[i] = e.Sample(r)
		}
		return out
	}
	a, b := draws(2024, 1000), draws(2024, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged across runs: %v vs %v", i, a[i], b[i])
		}
	}
	if got := fingerprint(draws(1, 1000)); got != goldenEmpiricalFP {
		t.Errorf("fingerprint %#x, golden %#x — Empirical draw sequence drifted", got, goldenEmpiricalFP)
	}
}

// TestEmpiricalMeanConvergence is the property test: for random
// traces, the empirical mean of a large sample converges to the trace
// mean (the contract profilers rely on when a recorded trace is fed
// back through the mean-constrained strategies).
func TestEmpiricalMeanConvergence(t *testing.T) {
	root := rng.New(99)
	for trial := 0; trial < 10; trial++ {
		n := 3 + root.Intn(500)
		traceVals := make([]float64, n)
		sum := 0.0
		for i := range traceVals {
			traceVals[i] = root.Range(0.5, 2000)
			sum += traceVals[i]
		}
		e := NewEmpirical("prop", traceVals)
		if want := sum / float64(n); math.Abs(e.Mean()-want) > 1e-9*want {
			t.Fatalf("trial %d: Mean() = %v, want %v", trial, e.Mean(), want)
		}
		r := root.Split()
		const draws = 200_000
		var acc float64
		for i := 0; i < draws; i++ {
			acc += e.Sample(r)
		}
		emp := acc / draws
		// Uniform resampling of n values with bounded range: the
		// standard error at 200k draws is far below 2% of the mean.
		if rel := math.Abs(emp-e.Mean()) / e.Mean(); rel > 0.02 {
			t.Errorf("trial %d (n=%d): sampled mean %v vs trace mean %v (rel err %.4f)",
				trial, n, emp, e.Mean(), rel)
		}
	}
}

// TestDistRegisterCatalog covers the dynamic half of the ByName
// catalog (recorded-trace samplers register as "trace:<key>").
func TestDistRegisterCatalog(t *testing.T) {
	samples := []float64{5, 15}
	if err := Register("Trace:Reg-Test", func(mu float64) Sampler {
		if mu <= 0 {
			return NewEmpirical("trace:reg-test", samples)
		}
		return Constant{V: mu}
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := ByName("trace:reg-test", 0)
	if err != nil || raw.Mean() != 10 {
		t.Fatalf("registered sampler: mean %v, err %v", raw.Mean(), err)
	}
	scaled, err := ByName(" TRACE:REG-TEST ", 42)
	if err != nil || scaled.Mean() != 42 {
		t.Fatalf("mu-parameterized lookup: mean %v, err %v", scaled.Mean(), err)
	}
	found := false
	for _, n := range Names() {
		if n == "trace:reg-test" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered name missing from Names(): %v", Names())
	}
	if err := Register("trace:reg-test", func(float64) Sampler { return Constant{V: 1} }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := Register("exponential", func(float64) Sampler { return Constant{V: 1} }); err == nil {
		t.Fatal("shadowing a built-in was accepted")
	}
	if err := Register("  ", func(float64) Sampler { return Constant{V: 1} }); err == nil {
		t.Fatal("blank name accepted")
	}
	if err := Register("x", nil); err == nil {
		t.Fatal("nil builder accepted")
	}
}
