package dist

import (
	"math"
	"testing"

	"txconflict/internal/rng"
)

// families returns every sampler family under test, parameterized to
// mean mu. The list must cover at least the six families the
// acceptance criteria require; it covers all eight.
func families(mu float64) []Sampler {
	return []Sampler{
		Constant{V: mu},
		UniformMean(mu),
		Exponential{Mu: mu},
		LognormalMean(mu, 0.75),
		BimodalMean(mu),
		ParetoMean(mu, 2.5),
		ZipfMean(mu, 64, 1.2),
		BuiltinTrace(mu),
	}
}

// TestDistSamplerMeans checks the core profiler contract: the
// empirical mean of a large sample agrees with the configured Mean()
// for every family (all families here have finite variance, so a 2%
// relative tolerance at n=200k is generous).
func TestDistSamplerMeans(t *testing.T) {
	const (
		mu  = 500.0
		n   = 200_000
		tol = 0.02
	)
	for _, d := range families(mu) {
		d := d
		t.Run(d.Name(), func(t *testing.T) {
			if got := d.Mean(); math.Abs(got-mu)/mu > 1e-9 {
				t.Fatalf("configured mean = %v, want %v", got, mu)
			}
			r := rng.New(42)
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += d.Sample(r)
			}
			emp := sum / n
			if rel := math.Abs(emp-mu) / mu; rel > tol {
				t.Errorf("empirical mean %v vs configured %v (rel err %.4f)", emp, mu, rel)
			}
		})
	}
}

// TestDistSamplerNonNegative checks that draws are never negative —
// transaction lengths must be usable as durations.
func TestDistSamplerNonNegative(t *testing.T) {
	for _, d := range families(300) {
		d := d
		t.Run(d.Name(), func(t *testing.T) {
			r := rng.New(7)
			for i := 0; i < 50_000; i++ {
				if v := d.Sample(r); v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("draw %d = %v", i, v)
				}
			}
		})
	}
}

// closedForm holds a family with an analytic CDF and quantile, for
// the round-trip checks below.
type closedForm struct {
	name     string
	pdf      func(x float64) float64
	cdf      func(x float64) float64
	quantile func(u float64) float64
	lo, hi   float64 // integration window (captures ~all mass)
}

func closedForms() []closedForm {
	const mu = 500.0
	exp := Exponential{Mu: mu}
	uni := UniformMean(mu)
	par := ParetoMean(mu, 2.5)
	return []closedForm{
		{
			name:     exp.Name(),
			pdf:      func(x float64) float64 { return math.Exp(-x/mu) / mu },
			cdf:      func(x float64) float64 { return 1 - math.Exp(-x/mu) },
			quantile: func(u float64) float64 { return -mu * math.Log(1-u) },
			lo:       0, hi: 30 * mu,
		},
		{
			name:     uni.Name(),
			pdf:      func(x float64) float64 { return 1 / (uni.Hi - uni.Lo) },
			cdf:      func(x float64) float64 { return Clamp((x-uni.Lo)/(uni.Hi-uni.Lo), 0, 1) },
			quantile: func(u float64) float64 { return uni.Lo + u*(uni.Hi-uni.Lo) },
			lo:       uni.Lo, hi: uni.Hi,
		},
		{
			name: par.Name(),
			pdf: func(x float64) float64 {
				return par.Alpha * math.Pow(par.Xm, par.Alpha) / math.Pow(x, par.Alpha+1)
			},
			cdf:      func(x float64) float64 { return 1 - math.Pow(par.Xm/x, par.Alpha) },
			quantile: func(u float64) float64 { return par.Xm / math.Pow(1-u, 1/par.Alpha) },
			// A uniform Simpson grid cannot span the whole heavy tail;
			// integrate to the 0.9999 quantile (missing mass 1e-4).
			lo: par.Xm, hi: par.Xm / math.Pow(1e-4, 1/par.Alpha),
		},
	}
}

// TestDistInvertCDFRoundTrip checks InvertCDF against closed-form
// quantiles: inverting F at u must recover F^{-1}(u), the same
// normalization contract internal/strategy relies on when drawing
// from the mean-constrained densities.
func TestDistInvertCDFRoundTrip(t *testing.T) {
	for _, cf := range closedForms() {
		cf := cf
		t.Run(cf.name, func(t *testing.T) {
			// Invert on a window that contains the needed quantiles.
			hi := cf.quantile(0.999)
			for _, u := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
				want := cf.quantile(u)
				got := InvertCDF(cf.cdf, u, cf.lo, hi, hi*1e-12)
				if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
					t.Errorf("quantile(%v) = %v, want %v", u, got, want)
				}
				// And F(F^{-1}(u)) = u.
				if back := cf.cdf(got); math.Abs(back-u) > 1e-9 {
					t.Errorf("cdf(quantile(%v)) = %v", u, back)
				}
			}
		})
	}
}

// TestDistCDFFromPDFAgreesWithClosedForm checks the numeric CDF
// builder against analytic CDFs on a probe grid.
func TestDistCDFFromPDFAgreesWithClosedForm(t *testing.T) {
	for _, cf := range closedForms() {
		cf := cf
		t.Run(cf.name, func(t *testing.T) {
			num := CDFFromPDF(cf.pdf, cf.lo, cf.hi, 8000)
			for i := 0; i <= 40; i++ {
				// Probe the body (the numeric tail window carries the
				// truncation error for the heavy-tailed families).
				x := cf.lo + (cf.quantile(0.995)-cf.lo)*float64(i)/40
				got, want := num(x), cf.cdf(x)
				if math.Abs(got-want) > 5e-4 {
					t.Errorf("CDF(%v) = %v, want %v", x, got, want)
				}
			}
		})
	}
}

// TestDistIntegratePDFNormalization mirrors the strategy package's
// normalization promise: every closed-form density integrates to 1.
func TestDistIntegratePDFNormalization(t *testing.T) {
	for _, cf := range closedForms() {
		cf := cf
		t.Run(cf.name, func(t *testing.T) {
			integral := IntegratePDF(cf.pdf, cf.lo, cf.hi, 20000)
			if math.Abs(integral-1) > 2e-3 {
				t.Errorf("PDF integrates to %v", integral)
			}
		})
	}
}

func TestDistClamp(t *testing.T) {
	if Clamp(-1, 0, 5) != 0 || Clamp(7, 0, 5) != 5 || Clamp(3, 0, 5) != 3 {
		t.Fatal("clamp broken")
	}
}

// TestDistSamplesMatchCDF is a coarse Kolmogorov-Smirnov check that
// each closed-form family's draws follow its analytic CDF.
func TestDistSamplesMatchCDF(t *testing.T) {
	const mu = 500.0
	samplers := map[string]Sampler{
		"exponential": Exponential{Mu: mu},
		"uniform":     UniformMean(mu),
		"pareto":      ParetoMean(mu, 2.5),
	}
	for _, cf := range closedForms() {
		cf := cf
		d, ok := samplers[cf.name]
		if !ok {
			t.Fatalf("no sampler for %s", cf.name)
		}
		t.Run(cf.name, func(t *testing.T) {
			r := rng.New(99)
			const n = 100_000
			probes := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
			counts := make([]int, len(probes))
			for i := 0; i < n; i++ {
				x := d.Sample(r)
				for j, u := range probes {
					if x <= cf.quantile(u) {
						counts[j]++
					}
				}
			}
			for j, u := range probes {
				got := float64(counts[j]) / n
				if math.Abs(got-u) > 0.01 {
					t.Errorf("empirical CDF at quantile(%v) = %v", u, got)
				}
			}
		})
	}
}

func TestDistFig2Suite(t *testing.T) {
	const mu = 500.0
	suite := Fig2Suite(mu)
	if len(suite) != 5 {
		t.Fatalf("Fig2Suite size = %d, want 5", len(suite))
	}
	seen := map[string]bool{}
	for _, d := range suite {
		if seen[d.Name()] {
			t.Errorf("duplicate suite entry %q", d.Name())
		}
		seen[d.Name()] = true
		if math.Abs(d.Mean()-mu)/mu > 1e-9 {
			t.Errorf("%s: mean %v, want %v", d.Name(), d.Mean(), mu)
		}
	}
	ext := ExtendedSuite(mu)
	if len(ext) != 8 {
		t.Fatalf("ExtendedSuite size = %d, want 8", len(ext))
	}
}

func TestDistByName(t *testing.T) {
	for _, name := range Names() {
		d, err := ByName(name, 250)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if math.Abs(d.Mean()-250)/250 > 1e-9 {
			t.Errorf("%s: mean %v, want 250", name, d.Mean())
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown name accepted")
	}
	if d, err := ByName("  Exponential ", 100); err != nil || d.Name() != "exponential" {
		t.Errorf("case/space-insensitive lookup failed: %v %v", d, err)
	}
}

func TestDistEmpirical(t *testing.T) {
	trace := []float64{1, 2, 3, 10}
	e := NewEmpirical("t", trace)
	if e.Mean() != 4 {
		t.Fatalf("trace mean = %v", e.Mean())
	}
	if e.Size() != 4 {
		t.Fatalf("trace size = %d", e.Size())
	}
	r := rng.New(5)
	seen := map[float64]bool{}
	for i := 0; i < 10_000; i++ {
		v := e.Sample(r)
		switch v {
		case 1, 2, 3, 10:
			seen[v] = true
		default:
			t.Fatalf("draw %v not in trace", v)
		}
	}
	if len(seen) != 4 {
		t.Errorf("only %d of 4 trace values drawn", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("empty trace accepted")
		}
	}()
	NewEmpirical("empty", nil)
}

func TestDistZipfSkew(t *testing.T) {
	z := NewZipf(32, 1.2, 10)
	r := rng.New(3)
	counts := map[float64]int{}
	for i := 0; i < 100_000; i++ {
		counts[z.Sample(r)]++
	}
	// Rank 1 (length 10) must dominate rank 32 (length 320).
	if counts[10] <= counts[320]*10 {
		t.Errorf("rank 1 drawn %d times, rank 32 %d — not skewed", counts[10], counts[320])
	}
}

// TestDistGoldenDeterminism locks the reproducibility contract:
// identical seeds produce identical draw sequences, run to run and
// process to process (the fingerprints below were recorded once and
// must never drift, or every figure in the repository silently
// changes).
func TestDistGoldenDeterminism(t *testing.T) {
	draws := func(d Sampler, seed uint64, n int) []float64 {
		r := rng.New(seed)
		out := make([]float64, n)
		for i := range out {
			out[i] = d.Sample(r)
		}
		return out
	}
	for _, d := range families(500) {
		a := draws(d, 2024, 1000)
		b := draws(d, 2024, 1000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: draw %d diverged across runs: %v vs %v", d.Name(), i, a[i], b[i])
			}
		}
	}
	// Golden fingerprints: FNV-1a over the bit patterns of 1000 draws
	// at seed 1. Recorded from the reference run.
	for _, g := range goldenFingerprints {
		d, err := ByName(g.name, 500)
		if err != nil {
			t.Fatalf("golden family %q missing: %v", g.name, err)
		}
		if got := fingerprint(draws(d, 1, 1000)); got != g.fp {
			t.Errorf("%s: fingerprint %#x, golden %#x — draw sequence drifted", g.name, got, g.fp)
		}
	}
}

// goldenFingerprints pins the exact draw sequences of every named
// family at seed 1, mean 500 (1000 draws each).
var goldenFingerprints = []struct {
	name string
	fp   uint64
}{
	{"bimodal", 0x585ff3339d275ec5},
	{"constant", 0xbde7384052e608a5},
	{"exponential", 0xfd87517eff972e44},
	{"lognormal", 0xf8ec6f20d87476d},
	{"pareto", 0x27bbcc0068aac742},
	{"trace", 0xbaba04bbd8ce990f},
	{"uniform", 0x18e59f7888523bba},
	{"zipf", 0x29c5db6047a2571a},
}

// fingerprint hashes a draw sequence with FNV-1a over float64 bits.
func fingerprint(vs []float64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range vs {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= prime
		}
	}
	return h
}
