package dist

// Numeric helpers shared by the strategy family and its property
// tests: clamping, CDF inversion by bisection, and Simpson
// integration of densities. internal/strategy uses InvertCDF to draw
// from the mean-constrained densities whose closed-form CDFs have no
// closed-form inverse, and the tests use IntegratePDF/CDFFromPDF to
// check each closed-form CDF against its integrated PDF.

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// InvertCDF solves cdf(x) = u for x in [lo, hi] by bisection, to
// within tol (absolute width of the bracketing interval; tol <= 0
// defaults to (hi-lo)·1e-12). cdf must be non-decreasing on [lo, hi].
// Values of u outside [cdf(lo), cdf(hi)] clamp to the respective
// endpoint.
func InvertCDF(cdf func(float64) float64, u, lo, hi, tol float64) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	if tol <= 0 {
		tol = (hi - lo) * 1e-12
	}
	if u <= cdf(lo) {
		return lo
	}
	if u >= cdf(hi) {
		return hi
	}
	// Bound the iteration count: 1/2^200 underflows any tolerance,
	// and a defensive cap keeps a buggy cdf from spinning forever.
	for i := 0; i < 200 && hi-lo > tol; i++ {
		mid := lo + (hi-lo)/2
		if cdf(mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// IntegratePDF integrates pdf over [lo, hi] with composite Simpson's
// rule on n subintervals (n is rounded up to even, minimum 2).
func IntegratePDF(pdf func(float64) float64, lo, hi float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (hi - lo) / float64(n)
	sum := pdf(lo) + pdf(hi)
	for i := 1; i < n; i++ {
		x := lo + float64(i)*h
		if i%2 == 1 {
			sum += 4 * pdf(x)
		} else {
			sum += 2 * pdf(x)
		}
	}
	return sum * h / 3
}

// CDFFromPDF returns the numerically integrated CDF of pdf on
// [lo, hi]: a cumulative Simpson table on n subintervals with linear
// interpolation between grid points. Outside the support it clamps to
// 0 and to the total mass respectively (which is ~1 for a normalized
// density).
func CDFFromPDF(pdf func(float64) float64, lo, hi float64, n int) func(float64) float64 {
	if n < 2 {
		n = 2
	}
	h := (hi - lo) / float64(n)
	// cum[i] = integral of pdf over [lo, lo+i·h], each cell integrated
	// with Simpson on (left, midpoint, right).
	cum := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		a := lo + float64(i-1)*h
		b := a + h
		cum[i] = cum[i-1] + h/6*(pdf(a)+4*pdf((a+b)/2)+pdf(b))
	}
	return func(x float64) float64 {
		if x <= lo {
			return 0
		}
		if x >= hi {
			return cum[n]
		}
		t := (x - lo) / h
		i := int(t)
		if i >= n {
			i = n - 1
		}
		frac := t - float64(i)
		return cum[i] + frac*(cum[i+1]-cum[i])
	}
}
