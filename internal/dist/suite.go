package dist

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"txconflict/internal/rng"
)

// Fig2Suite returns the five length distributions Figure 2 sweeps,
// each parameterized to mean mu: constant, uniform on [0, 2µ),
// exponential, a moderately skewed lognormal, and the bimodal
// short/long mix. The order is the figure's row order.
func Fig2Suite(mu float64) []Sampler {
	return []Sampler{
		Constant{V: mu},
		UniformMean(mu),
		Exponential{Mu: mu},
		LognormalMean(mu, 0.75),
		BimodalMean(mu),
	}
}

// ExtendedSuite returns Fig2Suite plus the scenario-diversity
// distributions: heavy-tailed Pareto, rank-skewed Zipf, and a
// deterministic empirical trace. Every sampler has mean mu.
func ExtendedSuite(mu float64) []Sampler {
	return append(Fig2Suite(mu),
		ParetoMean(mu, 2.5),
		ZipfMean(mu, 64, 1.2),
		BuiltinTrace(mu),
	)
}

// BuiltinTrace returns the Empirical sampler over a deterministic
// synthetic production-like trace: a lognormal body with a Pareto
// tail, drawn from a fixed seed and rescaled to mean mu. It stands in
// for replaying a profiled workload when no real trace is at hand.
func BuiltinTrace(mu float64) *Empirical {
	const n = 2048
	r := rng.New(0xd157)
	body := LognormalMean(1, 0.6)
	tail := ParetoMean(4, 2.2)
	trace := make([]float64, n)
	sum := 0.0
	for i := range trace {
		v := body.Sample(r)
		if r.Bool(0.05) {
			v = tail.Sample(r)
		}
		trace[i] = v
		sum += v
	}
	scale := mu * float64(n) / sum
	for i := range trace {
		trace[i] *= scale
	}
	return NewEmpirical("trace", trace)
}

// builders maps CLI names to mean-parameterized constructors. The
// static entries below are the built-in catalog; Register adds
// runtime entries (recorded-trace samplers use "trace:<key>" names).
// builderMu guards the map against concurrent Register/ByName.
var (
	builderMu sync.RWMutex
	builders  = map[string]func(mu float64) Sampler{
		"constant":    func(mu float64) Sampler { return Constant{V: mu} },
		"uniform":     func(mu float64) Sampler { return UniformMean(mu) },
		"exponential": func(mu float64) Sampler { return Exponential{Mu: mu} },
		"lognormal":   func(mu float64) Sampler { return LognormalMean(mu, 0.75) },
		"bimodal":     func(mu float64) Sampler { return BimodalMean(mu) },
		"pareto":      func(mu float64) Sampler { return ParetoMean(mu, 2.5) },
		"zipf":        func(mu float64) Sampler { return ZipfMean(mu, 64, 1.2) },
		"trace":       func(mu float64) Sampler { return BuiltinTrace(mu) },
	}
)

// Register adds a named constructor to the ByName catalog (names are
// folded to lower case, matching lookup). The builder receives the
// requested mean mu; by convention mu <= 0 asks for the sampler's
// natural parameterization (recorded-trace samplers return the raw
// trace). Registering an empty or already-taken name is an error —
// built-in names cannot be shadowed.
func Register(name string, build func(mu float64) Sampler) error {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" {
		return fmt.Errorf("dist: cannot register an empty distribution name")
	}
	if build == nil {
		return fmt.Errorf("dist: nil builder for %q", key)
	}
	builderMu.Lock()
	defer builderMu.Unlock()
	if _, dup := builders[key]; dup {
		return fmt.Errorf("dist: distribution %q already registered", key)
	}
	builders[key] = build
	return nil
}

// Known reports whether ByName would accept the name (same
// lowercase/trim folding), without building the sampler.
func Known(name string) bool {
	builderMu.RLock()
	defer builderMu.RUnlock()
	_, ok := builders[strings.ToLower(strings.TrimSpace(name))]
	return ok
}

// Names returns the sorted distribution names ByName accepts.
func Names() []string {
	builderMu.RLock()
	defer builderMu.RUnlock()
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName returns the named distribution parameterized to mean mu.
// Names are the lower-case Name() strings of the suite samplers
// ("constant", "uniform", "exponential", "lognormal", "bimodal",
// "pareto", "zipf", "trace") plus any Register-ed entries.
func ByName(name string, mu float64) (Sampler, error) {
	builderMu.RLock()
	b, ok := builders[strings.ToLower(strings.TrimSpace(name))]
	builderMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dist: unknown distribution %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return b(mu), nil
}
