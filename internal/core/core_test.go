package core

import (
	"math"
	"testing"
	"testing/quick"

	"txconflict/internal/rng"
)

func TestPolicyString(t *testing.T) {
	if RequestorWins.String() != "requestor-wins" {
		t.Fatal(RequestorWins.String())
	}
	if RequestorAborts.String() != "requestor-aborts" {
		t.Fatal(RequestorAborts.String())
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal(Policy(9).String())
	}
}

func TestValidate(t *testing.T) {
	good := Conflict{Policy: RequestorWins, K: 2, B: 100}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid conflict rejected: %v", err)
	}
	bad := []Conflict{
		{K: 1, B: 100},
		{K: 2, B: 0},
		{K: 2, B: -5},
		{K: 2, B: math.Inf(1)},
		{K: 2, B: math.NaN()},
		{K: 2, B: 100, Mean: -1},
		{K: 2, B: 100, Mean: math.NaN()},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid conflict %+v accepted", i, c)
		}
	}
}

func TestCostRequestorWinsK2(t *testing.T) {
	c := Conflict{Policy: RequestorWins, K: 2, B: 100}
	// Commit within grace: pay D (= (k-1)*D with k=2).
	if got := Cost(c, 50, 30); got != 30 {
		t.Fatalf("commit case cost = %v, want 30", got)
	}
	// Abort at deadline: 2x + B.
	if got := Cost(c, 50, 80); got != 2*50+100 {
		t.Fatalf("abort case cost = %v, want 200", got)
	}
	// Boundary d == x commits (paper: D <= x commits for RW).
	if got := Cost(c, 50, 50); got != 50 {
		t.Fatalf("boundary cost = %v, want 50", got)
	}
	// Immediate abort pays exactly B.
	if got := Cost(c, 0, 10); got != 100 {
		t.Fatalf("immediate abort = %v, want 100", got)
	}
}

func TestCostRequestorWinsChain(t *testing.T) {
	c := Conflict{Policy: RequestorWins, K: 4, B: 90}
	// Commit: (k-1)*D = 3*10.
	if got := Cost(c, 20, 10); got != 30 {
		t.Fatalf("chain commit cost = %v", got)
	}
	// Abort: k*x + B = 4*20 + 90.
	if got := Cost(c, 20, 25); got != 170 {
		t.Fatalf("chain abort cost = %v", got)
	}
}

func TestCostRequestorAbortsK2(t *testing.T) {
	c := Conflict{Policy: RequestorAborts, K: 2, B: 100}
	if got := Cost(c, 50, 30); got != 30 {
		t.Fatalf("RA commit cost = %v", got)
	}
	if got := Cost(c, 50, 80); got != 150 {
		t.Fatalf("RA abort cost = %v, want x+B=150", got)
	}
}

func TestCostRequestorAbortsChain(t *testing.T) {
	c := Conflict{Policy: RequestorAborts, K: 3, B: 100}
	if got := Cost(c, 40, 10); got != 20 {
		t.Fatalf("RA chain commit = %v, want (k-1)*D=20", got)
	}
	if got := Cost(c, 40, 90); got != 2*(40+100) {
		t.Fatalf("RA chain abort = %v, want (k-1)(x+B)=280", got)
	}
}

func TestOptCost(t *testing.T) {
	rw := Conflict{Policy: RequestorWins, K: 2, B: 100}
	if OptCost(rw, 30) != 30 || OptCost(rw, 500) != 100 {
		t.Fatal("RW k=2 OPT wrong")
	}
	rw3 := Conflict{Policy: RequestorWins, K: 3, B: 100}
	if OptCost(rw3, 30) != 60 || OptCost(rw3, 500) != 100 {
		t.Fatal("RW k=3 OPT wrong")
	}
	ra := Conflict{Policy: RequestorAborts, K: 2, B: 100}
	if OptCost(ra, 30) != 30 || OptCost(ra, 500) != 100 {
		t.Fatal("RA k=2 OPT wrong")
	}
	ra4 := Conflict{Policy: RequestorAborts, K: 4, B: 90}
	if OptCost(ra4, 10) != 30 || OptCost(ra4, 1e6) != 90 {
		t.Fatal("RA k=4 OPT wrong")
	}
}

func TestOptNeverExceedsCost(t *testing.T) {
	// The offline optimum is a lower bound on any decision's cost.
	f := func(kRaw uint8, bRaw, xRaw, dRaw uint16, pol bool) bool {
		k := int(kRaw%6) + 2
		b := float64(bRaw%5000) + 1
		c := Conflict{K: k, B: b}
		if pol {
			c.Policy = RequestorAborts
		}
		x := float64(xRaw) / 65535 * MaxUsefulDelay(c)
		d := float64(dRaw)/65535*2*b + 1e-9
		return OptCost(c, d) <= Cost(c, x, d)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxUsefulDelay(t *testing.T) {
	if MaxUsefulDelay(Conflict{K: 2, B: 100}) != 100 {
		t.Fatal("k=2 support wrong")
	}
	if MaxUsefulDelay(Conflict{K: 5, B: 100}) != 25 {
		t.Fatal("k=5 support wrong")
	}
}

// fixedDelay is a test strategy returning a constant grace period.
type fixedDelay float64

func (f fixedDelay) Delay(Conflict, *rng.Rand) float64 { return float64(f) }
func (f fixedDelay) Name() string                      { return "fixed-test" }

func TestExpectedCostDeterministic(t *testing.T) {
	c := Conflict{Policy: RequestorWins, K: 2, B: 100}
	r := rng.New(1)
	got := ExpectedCost(c, fixedDelay(50), 80, r, 10)
	if got != 200 {
		t.Fatalf("expected cost = %v, want 200", got)
	}
}

func TestEmpiricalRatio(t *testing.T) {
	c := Conflict{Policy: RequestorWins, K: 2, B: 100}
	r := rng.New(1)
	// Delay 0 against d=10: cost B=100, OPT=10 => ratio 10.
	if got := EmpiricalRatio(c, fixedDelay(0), 10, r, 1); got != 10 {
		t.Fatalf("ratio = %v, want 10", got)
	}
	// d=0 edge: OPT is 0, ratio defined as 1.
	if got := EmpiricalRatio(c, fixedDelay(0), 0, r, 1); got != 1 {
		t.Fatalf("zero-opt ratio = %v, want 1", got)
	}
}

func TestWorstCaseRatioFixedZero(t *testing.T) {
	// Immediate abort has unbounded ratio as d -> 0; over a sweep
	// starting at small d the worst ratio must come from the
	// smallest d.
	c := Conflict{Policy: RequestorWins, K: 2, B: 100}
	r := rng.New(1)
	worst := WorstCaseRatio(c, fixedDelay(0), 1, 200, 100, 1, r)
	if worst != 100 { // d=1: cost 100, opt 1
		t.Fatalf("worst ratio = %v, want 100", worst)
	}
}

func TestCostContinuityAtSupportEdge(t *testing.T) {
	// At x = MaxUsefulDelay and d slightly above, the abort branch
	// cost for RW k=2 is 2B+B = 3B; sanity-check against formulas.
	c := Conflict{Policy: RequestorWins, K: 2, B: 100}
	x := MaxUsefulDelay(c)
	if got := Cost(c, x, x+1); got != 2*x+c.B {
		t.Fatalf("edge cost = %v", got)
	}
}

func BenchmarkCost(b *testing.B) {
	c := Conflict{Policy: RequestorWins, K: 3, B: 1000}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Cost(c, float64(i%500), float64(i%700))
	}
	_ = sink
}
