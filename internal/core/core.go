// Package core defines the transactional conflict problem of
// Alistarh, Haider, Kübler and Nadiradze (SPAA 2018): the cost model
// for delaying conflict resolution between transactions, the offline
// optimum, and the Strategy interface implemented by every
// grace-period decision algorithm in this repository.
//
// # The problem
//
// A receiver transaction T1 is interrupted by a requestor T2 (or by a
// chain of k-1 requestors). The system may abort immediately or grant
// a grace period x. With D the unknown remaining execution time of
// the transaction whose fate is being decided and B the fixed abort
// cost, the conflict cost is:
//
//	Requestor wins (k >= 2):
//	    D <= x:  (k-1)·D        (T1 commits; everyone else waited D)
//	    D >  x:  k·x + B        (T1 ran x for nothing, k-1 waited x,
//	                             plus the abort cost)
//	Requestor aborts (k = 2):
//	    D <= x:  D              (T2 waited D, then T1 committed)
//	    D >  x:  x + B          (T2 waited x, then aborted)
//	Requestor aborts (k > 2):
//	    D <= x:  (k-1)·D
//	    D >  x:  (k-1)·(x + B)  (all k-1 requestors abort)
//
// The offline optimum with foresight is min((k-1)·D, B) for requestor
// wins and min(D, B) for requestor aborts with k=2; see OptCost.
package core

import (
	"fmt"
	"math"

	"txconflict/internal/rng"
)

// Policy selects the conflict-resolution paradigm (Section 1).
type Policy int

const (
	// RequestorWins aborts the receiver of the coherence request
	// (unless it commits within the grace period). Implemented by
	// e.g. the paper's Graphite HTM.
	RequestorWins Policy = iota
	// RequestorAborts aborts the requestor at the deadline,
	// resolving the conflict in favor of the receiver.
	RequestorAborts
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case RequestorWins:
		return "requestor-wins"
	case RequestorAborts:
		return "requestor-aborts"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Conflict describes one conflict instance presented to a strategy.
// It carries everything a *local* decision is allowed to see: the
// resolution policy, the chain length k, the abort cost B, and — when
// a profiler supplies it — the mean µ of the transaction-length
// distribution. It never carries D, the remaining time, which is the
// online unknown.
type Conflict struct {
	Policy Policy
	// K is the conflict chain length (number of transactions
	// involved); K >= 2.
	K int
	// B is the fixed abort cost. In practice this is the time the
	// transaction has already been running plus a fixed cleanup cost
	// (paper, footnote 1).
	B float64
	// Mean is the known mean µ of the adversarial length
	// distribution, or 0 when unknown.
	Mean float64
}

// Validate reports whether the conflict parameters are usable.
func (c Conflict) Validate() error {
	if c.K < 2 {
		return fmt.Errorf("core: conflict chain k=%d, need k >= 2", c.K)
	}
	if c.B <= 0 || math.IsNaN(c.B) || math.IsInf(c.B, 0) {
		return fmt.Errorf("core: abort cost B=%v, need finite B > 0", c.B)
	}
	if c.Mean < 0 || math.IsNaN(c.Mean) {
		return fmt.Errorf("core: mean µ=%v, need µ >= 0", c.Mean)
	}
	return nil
}

// Strategy decides the grace period for a conflict. Implementations
// live in internal/strategy.
type Strategy interface {
	// Delay returns the grace period x >= 0 chosen for the conflict.
	// Randomized strategies draw from r; deterministic strategies
	// ignore it.
	Delay(c Conflict, r *rng.Rand) float64
	// Name identifies the strategy in tables (RRW, RRA, DET, ...).
	Name() string
}

// Cost returns the conflict cost incurred when the strategy chose
// grace period x and the true remaining time was d, per the paper's
// Section 4 cost model.
func Cost(c Conflict, x, d float64) float64 {
	k := float64(c.K)
	switch c.Policy {
	case RequestorWins:
		if d <= x {
			return (k - 1) * d
		}
		return k*x + c.B
	case RequestorAborts:
		if c.K == 2 {
			if d <= x {
				return d
			}
			return x + c.B
		}
		if d <= x {
			return (k - 1) * d
		}
		return (k - 1) * (x + c.B)
	default:
		panic("core: unknown policy")
	}
}

// OptCost returns the cost of the offline optimum, which knows d.
//
// Requestor wins: min((k-1)·d, B) (Section 4.1).
// Requestor aborts, k=2: min(d, B) (Section 4.2, classic ski rental).
// Requestor aborts, k>2: the paper's Lagrangian normalizes conflict
// cost by (k-1)·y on [0, B/(k-1)] and by B outside, i.e. the offline
// optimum is min((k-1)·d, B).
func OptCost(c Conflict, d float64) float64 {
	switch c.Policy {
	case RequestorWins:
		return math.Min(float64(c.K-1)*d, c.B)
	case RequestorAborts:
		if c.K == 2 {
			return math.Min(d, c.B)
		}
		return math.Min(float64(c.K-1)*d, c.B)
	default:
		panic("core: unknown policy")
	}
}

// MaxUsefulDelay returns the upper end of the support of any sensible
// strategy: B for the two-transaction cases and B/(k-1) for chains.
// Delaying beyond this point is dominated by aborting at 0
// (Section 5).
func MaxUsefulDelay(c Conflict) float64 {
	if c.K == 2 {
		return c.B
	}
	return c.B / float64(c.K-1)
}

// ExpectedCost integrates Cost over the strategy's delay distribution
// empirically with n samples, for a fixed adversarial remaining time
// d. Deterministic strategies need n=1.
func ExpectedCost(c Conflict, s Strategy, d float64, r *rng.Rand, n int) float64 {
	if n <= 0 {
		n = 1
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += Cost(c, s.Delay(c, r), d)
	}
	return sum / float64(n)
}

// EmpiricalRatio estimates the competitive ratio of s against the
// offline optimum for a fixed d: E[Cost]/OPT.
func EmpiricalRatio(c Conflict, s Strategy, d float64, r *rng.Rand, n int) float64 {
	opt := OptCost(c, d)
	if opt == 0 {
		return 1
	}
	return ExpectedCost(c, s, d, r, n) / opt
}

// WorstCaseRatio sweeps adversarial choices of d over [dLo, dHi] in
// steps and returns the largest empirical competitive ratio found.
// It is the workhorse of the strategy property tests: for a strategy
// with analytic ratio R, the sweep must stay within sampling noise
// of R.
func WorstCaseRatio(c Conflict, s Strategy, dLo, dHi float64, steps, samples int, r *rng.Rand) float64 {
	if steps < 2 {
		steps = 2
	}
	worst := 0.0
	for i := 0; i <= steps; i++ {
		d := dLo + (dHi-dLo)*float64(i)/float64(steps)
		if d <= 0 {
			continue
		}
		if ratio := EmpiricalRatio(c, s, d, r, samples); ratio > worst {
			worst = ratio
		}
	}
	return worst
}
