// Package lockfree provides the lock-free data structures the paper's
// benchmarks use as slow-path backups (Section 8.2): a Treiber stack
// and a Michael–Scott queue. They also serve as non-transactional
// baselines in the throughput comparisons.
package lockfree

import "sync/atomic"

// Stack is a Treiber stack. The zero value is an empty stack.
type Stack[T any] struct {
	head atomic.Pointer[snode[T]]
	size atomic.Int64
}

type snode[T any] struct {
	v    T
	next *snode[T]
}

// Push adds v to the top of the stack.
func (s *Stack[T]) Push(v T) {
	n := &snode[T]{v: v}
	for {
		old := s.head.Load()
		n.next = old
		if s.head.CompareAndSwap(old, n) {
			s.size.Add(1)
			return
		}
	}
}

// Pop removes and returns the top element; ok is false when empty.
func (s *Stack[T]) Pop() (v T, ok bool) {
	for {
		old := s.head.Load()
		if old == nil {
			return v, false
		}
		if s.head.CompareAndSwap(old, old.next) {
			s.size.Add(-1)
			return old.v, true
		}
	}
}

// Len returns the approximate number of elements.
func (s *Stack[T]) Len() int { return int(s.size.Load()) }

// Queue is a Michael–Scott queue. Use NewQueue to create one.
type Queue[T any] struct {
	head atomic.Pointer[qnode[T]]
	tail atomic.Pointer[qnode[T]]
	size atomic.Int64
}

type qnode[T any] struct {
	v    T
	next atomic.Pointer[qnode[T]]
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] {
	q := &Queue[T]{}
	sentinel := &qnode[T]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// Enqueue appends v to the tail.
func (q *Queue[T]) Enqueue(v T) {
	n := &qnode[T]{v: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			// Tail is lagging; help advance it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.size.Add(1)
			return
		}
	}
}

// Dequeue removes and returns the head element; ok is false when
// empty.
func (q *Queue[T]) Dequeue() (v T, ok bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			return v, false // empty
		}
		if head == tail {
			// Tail lagging behind a non-empty queue; help.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		val := next.v
		if q.head.CompareAndSwap(head, next) {
			q.size.Add(-1)
			return val, true
		}
	}
}

// Len returns the approximate number of elements.
func (q *Queue[T]) Len() int { return int(q.size.Load()) }
