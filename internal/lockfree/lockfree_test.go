package lockfree

import (
	"sync"
	"testing"
)

func TestStackSequentialLIFO(t *testing.T) {
	var s Stack[int]
	if _, ok := s.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
	for i := 0; i < 10; i++ {
		s.Push(i)
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d", s.Len())
	}
	for i := 9; i >= 0; i-- {
		v, ok := s.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("drained stack still pops")
	}
}

func TestQueueSequentialFIFO(t *testing.T) {
	q := NewQueue[int]()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue from empty succeeded")
	}
	for i := 0; i < 10; i++ {
		q.Enqueue(i)
	}
	if q.Len() != 10 {
		t.Fatalf("len = %d", q.Len())
	}
	for i := 0; i < 10; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("drained queue still dequeues")
	}
}

// TestStackConcurrentConservation pushes a known multiset from many
// goroutines while others pop; every pushed element must be popped
// exactly once (counting the leftovers).
func TestStackConcurrentConservation(t *testing.T) {
	var s Stack[int]
	const producers, consumers, perP = 4, 4, 5000
	var wg sync.WaitGroup
	popped := make([]map[int]int, consumers)
	for c := 0; c < consumers; c++ {
		popped[c] = make(map[int]int)
	}
	done := make(chan struct{})
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				s.Push(p*perP + i)
			}
		}()
	}
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		c := c
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, ok := s.Pop()
				if ok {
					popped[c][v]++
					continue
				}
				select {
				case <-done:
					// Drain whatever remains, then exit.
					for {
						v, ok := s.Pop()
						if !ok {
							return
						}
						popped[c][v]++
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	cg.Wait()
	seen := make(map[int]int)
	for c := 0; c < consumers; c++ {
		for v, n := range popped[c] {
			seen[v] += n
		}
	}
	if len(seen) != producers*perP {
		t.Fatalf("popped %d distinct values, want %d", len(seen), producers*perP)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d popped %d times", v, n)
		}
	}
}

// TestQueueConcurrentFIFOPerProducer checks per-producer FIFO order:
// elements from one producer must be dequeued in production order.
func TestQueueConcurrentFIFOPerProducer(t *testing.T) {
	q := NewQueue[[2]int]() // (producer, seq)
	const producers, perP = 4, 5000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				q.Enqueue([2]int{p, i})
			}
		}()
	}
	wg.Wait()
	lastSeq := make([]int, producers)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	count := 0
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		count++
		if v[1] <= lastSeq[v[0]] {
			t.Fatalf("producer %d order violated: %d after %d", v[0], v[1], lastSeq[v[0]])
		}
		lastSeq[v[0]] = v[1]
	}
	if count != producers*perP {
		t.Fatalf("dequeued %d, want %d", count, producers*perP)
	}
}

// TestQueueConcurrentProducersConsumers runs enqueues and dequeues
// concurrently and verifies conservation.
func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue[int]()
	const producers, consumers, perP = 4, 4, 5000
	var pg, cg sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[int]int)
	done := make(chan struct{})
	for p := 0; p < producers; p++ {
		p := p
		pg.Add(1)
		go func() {
			defer pg.Done()
			for i := 0; i < perP; i++ {
				q.Enqueue(p*perP + i)
			}
		}()
	}
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			local := make(map[int]int)
			for {
				v, ok := q.Dequeue()
				if ok {
					local[v]++
					continue
				}
				select {
				case <-done:
					for {
						v, ok := q.Dequeue()
						if !ok {
							mu.Lock()
							for k, n := range local {
								seen[k] += n
							}
							mu.Unlock()
							return
						}
						local[v]++
					}
				default:
				}
			}
		}()
	}
	pg.Wait()
	close(done)
	cg.Wait()
	if len(seen) != producers*perP {
		t.Fatalf("consumed %d distinct, want %d", len(seen), producers*perP)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d consumed %d times", v, n)
		}
	}
}

func TestGenericTypes(t *testing.T) {
	var s Stack[string]
	s.Push("a")
	s.Push("b")
	if v, _ := s.Pop(); v != "b" {
		t.Fatal("generic stack broken")
	}
	q := NewQueue[struct{ X, Y int }]()
	q.Enqueue(struct{ X, Y int }{1, 2})
	if v, _ := q.Dequeue(); v.X != 1 || v.Y != 2 {
		t.Fatal("generic queue broken")
	}
}

func BenchmarkStackPushPop(b *testing.B) {
	var s Stack[int]
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.Push(1)
			s.Pop()
		}
	})
}

func BenchmarkQueueEnqDeq(b *testing.B) {
	q := NewQueue[int]()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Enqueue(1)
			q.Dequeue()
		}
	})
}
