// Package cache models a set-associative L1 data cache with LRU
// replacement, MSI line states, and the per-line transactional bit of
// the paper's Algorithm 1 ("each cache line has an additional bit...
// set if cache line is used by transaction").
//
// The cache stores actual data words so that end-to-end HTM tests can
// verify memory semantics, not just protocol bookkeeping.
package cache

import "fmt"

// LineBytes is the cache line size in bytes.
const LineBytes = 64

// WordsPerLine is the number of 8-byte words in a line.
const WordsPerLine = LineBytes / 8

// LineAddr identifies a cache line (byte address >> 6).
type LineAddr uint64

// LineOf returns the line address containing byte address a.
func LineOf(byteAddr uint64) LineAddr { return LineAddr(byteAddr / LineBytes) }

// WordOf returns the word index of byte address a within its line.
func WordOf(byteAddr uint64) int { return int(byteAddr % LineBytes / 8) }

// State is an MSI coherence state.
type State uint8

const (
	// Invalid: the line holds no valid data.
	Invalid State = iota
	// Shared: read-only copy, possibly replicated in other caches.
	Shared
	// Modified: exclusive, writable, dirty with respect to memory.
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Line is one cache line.
type Line struct {
	Tag   LineAddr
	State State
	// Tx marks the line as transactional (read or written inside the
	// current transaction). Evicting or invalidating a Tx line aborts
	// the transaction.
	Tx bool
	// TxDirty marks lines speculatively written by the current
	// transaction; their data must be discarded on abort.
	TxDirty bool
	// Pending marks a line allocated by Insert that is awaiting its
	// data fill; pending lines are never chosen as victims.
	Pending bool
	Data    [WordsPerLine]uint64
	lru     uint64
}

// Valid reports whether the line holds data.
func (l *Line) Valid() bool { return l.State != Invalid }

// Cache is a set-associative cache. Not safe for concurrent use; in
// the simulator each core owns one and all access is single-threaded
// through the event kernel.
type Cache struct {
	sets, ways int
	lines      []Line
	tick       uint64

	// Stats counters.
	Hits, Misses, Evictions uint64
}

// New creates a cache with the given geometry. sets must be a power
// of two.
func New(sets, ways int) *Cache {
	if sets <= 0 || ways <= 0 {
		panic("cache: non-positive geometry")
	}
	if sets&(sets-1) != 0 {
		panic("cache: sets must be a power of two")
	}
	return &Cache{sets: sets, ways: ways, lines: make([]Line, sets*ways)}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) setOf(la LineAddr) []Line {
	s := int(uint64(la) & uint64(c.sets-1))
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// Lookup returns the valid line holding la, updating LRU and hit/miss
// counters. It returns nil on miss.
func (c *Cache) Lookup(la LineAddr) *Line {
	set := c.setOf(la)
	for i := range set {
		if set[i].Valid() && set[i].Tag == la {
			c.tick++
			set[i].lru = c.tick
			c.Hits++
			return &set[i]
		}
	}
	c.Misses++
	return nil
}

// Peek returns the valid line holding la without touching LRU or
// counters, or nil.
func (c *Cache) Peek(la LineAddr) *Line {
	set := c.setOf(la)
	for i := range set {
		if set[i].Valid() && set[i].Tag == la {
			return &set[i]
		}
	}
	return nil
}

// FindPending returns the pending (fill-in-flight) line allocated for
// la, or nil.
func (c *Cache) FindPending(la LineAddr) *Line {
	set := c.setOf(la)
	for i := range set {
		if set[i].Pending && set[i].Tag == la {
			return &set[i]
		}
	}
	return nil
}

// Insert allocates a line for la and returns it along with the
// evicted victim (valid only when evicted is true). The caller is
// responsible for writeback/abort handling of the victim. If la is
// already present, the existing line is returned with evicted=false.
//
// Victim preference: an Invalid way if any, otherwise the true LRU
// among non-Tx lines, otherwise the LRU Tx line (whose eviction the
// HTM layer must translate into an abort, per Algorithm 1 line 4).
func (c *Cache) Insert(la LineAddr) (line *Line, victim Line, evicted bool) {
	if l := c.Peek(la); l != nil {
		c.tick++
		l.lru = c.tick
		return l, Line{}, false
	}
	if l := c.FindPending(la); l != nil {
		c.tick++
		l.lru = c.tick
		return l, Line{}, false
	}
	set := c.setOf(la)
	var pick *Line
	// Pass 1: invalid, non-pending way.
	for i := range set {
		if !set[i].Valid() && !set[i].Pending {
			pick = &set[i]
			break
		}
	}
	// Pass 2: LRU among non-transactional, non-pending lines.
	if pick == nil {
		for i := range set {
			if !set[i].Tx && !set[i].Pending && (pick == nil || set[i].lru < pick.lru) {
				pick = &set[i]
			}
		}
	}
	// Pass 3: LRU among non-pending lines (forced Tx eviction).
	if pick == nil {
		for i := range set {
			if !set[i].Pending && (pick == nil || set[i].lru < pick.lru) {
				pick = &set[i]
			}
		}
	}
	if pick == nil {
		panic("cache: all ways pending; caller exceeded outstanding-miss budget")
	}
	if pick.Valid() {
		victim = *pick
		evicted = true
		c.Evictions++
	}
	c.tick++
	*pick = Line{Tag: la, State: Invalid, lru: c.tick}
	return pick, victim, evicted
}

// Invalidate drops the line holding la if present, returning its
// previous contents.
func (c *Cache) Invalidate(la LineAddr) (old Line, ok bool) {
	if l := c.Peek(la); l != nil {
		old = *l
		*l = Line{}
		return old, true
	}
	return Line{}, false
}

// ForEach calls fn on every valid line.
func (c *Cache) ForEach(fn func(*Line)) {
	for i := range c.lines {
		if c.lines[i].Valid() {
			fn(&c.lines[i])
		}
	}
}

// TxLines returns the addresses of all transactional lines.
func (c *Cache) TxLines() []LineAddr {
	var out []LineAddr
	c.ForEach(func(l *Line) {
		if l.Tx {
			out = append(out, l.Tag)
		}
	})
	return out
}

// ClearTxBits ends a transaction by clearing Tx/TxDirty on all lines
// (the commit path of Algorithm 1).
func (c *Cache) ClearTxBits() {
	c.ForEach(func(l *Line) {
		l.Tx = false
		l.TxDirty = false
	})
}

// DropTxLines invalidates all transactional lines (the abort path of
// Algorithm 1) and returns their addresses.
func (c *Cache) DropTxLines() []LineAddr {
	var dropped []LineAddr
	c.ForEach(func(l *Line) {
		if l.Tx {
			dropped = append(dropped, l.Tag)
			*l = Line{}
		}
	})
	return dropped
}
