package cache

import (
	"testing"
	"testing/quick"

	"txconflict/internal/rng"
)

func TestLineMath(t *testing.T) {
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 1 || LineOf(130) != 2 {
		t.Fatal("LineOf wrong")
	}
	if WordOf(0) != 0 || WordOf(8) != 1 || WordOf(63) != 7 || WordOf(64) != 0 {
		t.Fatal("WordOf wrong")
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Fatal("state strings wrong")
	}
	if State(7).String() != "State(7)" {
		t.Fatal("unknown state string wrong")
	}
}

func TestNewValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {1, 0}, {3, 2}, {-4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			New(bad[0], bad[1])
		}()
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := New(4, 2)
	if c.Lookup(10) != nil {
		t.Fatal("cold lookup hit")
	}
	l, _, ev := c.Insert(10)
	if ev {
		t.Fatal("insert into empty set evicted")
	}
	l.State = Shared
	if got := c.Lookup(10); got == nil || got.Tag != 10 {
		t.Fatal("lookup after insert missed")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestInsertExistingReturnsSameLine(t *testing.T) {
	c := New(4, 2)
	l1, _, _ := c.Insert(10)
	l1.State = Modified
	l1.Data[3] = 99
	l2, _, ev := c.Insert(10)
	if ev {
		t.Fatal("re-insert evicted")
	}
	if l2 != l1 || l2.Data[3] != 99 {
		t.Fatal("re-insert did not return existing line")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(1, 2) // one set, two ways
	a, _, _ := c.Insert(1)
	a.State = Shared
	b, _, _ := c.Insert(2)
	b.State = Shared
	c.Lookup(1) // touch 1; 2 becomes LRU
	_, victim, ev := c.Insert(3)
	if !ev || victim.Tag != 2 {
		t.Fatalf("expected to evict line 2, got ev=%v tag=%d", ev, victim.Tag)
	}
	if c.Peek(1) == nil || c.Peek(2) != nil {
		t.Fatal("wrong line evicted")
	}
}

func TestEvictionPrefersInvalid(t *testing.T) {
	c := New(1, 2)
	a, _, _ := c.Insert(1)
	a.State = Shared
	// Second way still invalid; inserting must not evict.
	_, _, ev := c.Insert(2)
	if ev {
		t.Fatal("evicted despite free way")
	}
}

func TestEvictionAvoidsTxLines(t *testing.T) {
	c := New(1, 2)
	a, _, _ := c.Insert(1)
	a.State = Modified
	a.Tx = true
	b, _, _ := c.Insert(2)
	b.State = Shared
	c.Lookup(1) // 1 is MRU *and* Tx; 2 is LRU non-Tx
	l3, victim, ev := c.Insert(3)
	if !ev || victim.Tag != 2 {
		t.Fatalf("should evict non-Tx line 2, evicted %d", victim.Tag)
	}
	// Now both remaining lines (1 Tx, 3) — make 3 Tx too and force a
	// Tx eviction.
	l3.State = Shared
	l3.Tx = true
	_, victim, ev = c.Insert(4)
	if !ev || !victim.Tx {
		t.Fatal("forced eviction should surface a Tx victim")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(2, 2)
	l, _, _ := c.Insert(5)
	l.State = Modified
	l.Data[0] = 42
	old, ok := c.Invalidate(5)
	if !ok || old.Data[0] != 42 || old.State != Modified {
		t.Fatal("invalidate did not return old contents")
	}
	if c.Peek(5) != nil {
		t.Fatal("line still present after invalidate")
	}
	if _, ok := c.Invalidate(5); ok {
		t.Fatal("double invalidate reported ok")
	}
}

func TestTxBitLifecycle(t *testing.T) {
	c := New(4, 2)
	for _, la := range []LineAddr{1, 2, 3} {
		l, _, _ := c.Insert(la)
		l.State = Modified
		l.Tx = true
		if la == 2 {
			l.TxDirty = true
		}
	}
	nl, _, _ := c.Insert(9)
	nl.State = Shared // non-tx line
	if got := len(c.TxLines()); got != 3 {
		t.Fatalf("TxLines = %d", got)
	}
	c.ClearTxBits()
	if got := len(c.TxLines()); got != 0 {
		t.Fatalf("TxLines after clear = %d", got)
	}
	if c.Peek(2).TxDirty {
		t.Fatal("TxDirty survived commit")
	}
	if c.Peek(9) == nil {
		t.Fatal("non-tx line disturbed by commit")
	}
}

func TestDropTxLines(t *testing.T) {
	c := New(4, 2)
	for _, la := range []LineAddr{1, 2} {
		l, _, _ := c.Insert(la)
		l.State = Modified
		l.Tx = true
	}
	l, _, _ := c.Insert(3)
	l.State = Shared
	dropped := c.DropTxLines()
	if len(dropped) != 2 {
		t.Fatalf("dropped %v", dropped)
	}
	if c.Peek(1) != nil || c.Peek(2) != nil {
		t.Fatal("tx lines survived abort")
	}
	if c.Peek(3) == nil {
		t.Fatal("non-tx line dropped by abort")
	}
}

func TestSetIsolation(t *testing.T) {
	// Lines mapping to different sets never evict each other.
	c := New(4, 1)
	for la := LineAddr(0); la < 4; la++ {
		l, _, ev := c.Insert(la)
		l.State = Shared
		if ev {
			t.Fatalf("insert %d evicted despite distinct sets", la)
		}
	}
	for la := LineAddr(0); la < 4; la++ {
		if c.Peek(la) == nil {
			t.Fatalf("line %d missing", la)
		}
	}
}

// TestCacheInvariantProperty drives random insert/lookup/invalidate
// traffic and checks structural invariants: no duplicate tags within
// a set, valid lines only where inserted.
func TestCacheInvariantProperty(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		c := New(8, 4)
		live := map[LineAddr]bool{}
		for step := 0; step < 2000; step++ {
			la := LineAddr(r.Intn(64))
			switch r.Intn(3) {
			case 0:
				l, victim, ev := c.Insert(la)
				l.State = Shared
				if ev {
					delete(live, victim.Tag)
				}
				live[la] = true
			case 1:
				got := c.Lookup(la)
				if live[la] != (got != nil) {
					return false
				}
			case 2:
				_, ok := c.Invalidate(la)
				if live[la] != ok {
					return false
				}
				delete(live, la)
			}
		}
		// No duplicate tags among valid lines.
		seen := map[LineAddr]int{}
		c.ForEach(func(l *Line) { seen[l.Tag]++ })
		for tag, n := range seen {
			if n > 1 {
				t.Logf("tag %d appears %d times", tag, n)
				return false
			}
			if !live[tag] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New(64, 8)
	for la := LineAddr(0); la < 64; la++ {
		l, _, _ := c.Insert(la)
		l.State = Shared
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(LineAddr(i % 64))
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	c := New(16, 4)
	for i := 0; i < b.N; i++ {
		l, _, _ := c.Insert(LineAddr(i % 1024))
		l.State = Shared
	}
}
