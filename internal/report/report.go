// Package report renders experiment results as aligned text tables
// and CSV, the output format of every figure-regeneration harness in
// this repository.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, stringifying each cell.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		case uint64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote rendered under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6 || v < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (RFC-4180-ish; cells containing
// commas or quotes are quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the text form.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.WriteText(&b)
	return b.String()
}
