package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{Title: "demo", Columns: []string{"name", "value", "note"}}
	t.AddRow("alpha", 1.5, "plain")
	t.AddRow("beta", 12345678.9, "big")
	t.AddRow("gamma", 0.0001, "tiny")
	t.AddRow("delta", 42, "int")
	t.AddRow("eps", uint64(7), "uint")
	t.AddNote("a note with %d args", 2)
	return t
}

func TestWriteText(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== demo ==", "alpha", "beta", "note: a note with 2 args", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Header separator present.
	if !strings.Contains(out, "----") {
		t.Error("missing separator")
	}
}

func TestColumnsAligned(t *testing.T) {
	tab := &Table{Columns: []string{"a", "bbbb"}}
	tab.AddRow("xxxxxxx", "y")
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// The second column should start at the same offset in header
	// and data rows.
	hIdx := strings.Index(lines[0], "bbbb")
	dIdx := strings.Index(lines[2], "y")
	if hIdx != dIdx {
		t.Errorf("columns misaligned: header %d vs data %d\n%s", hIdx, dIdx, out)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	tab := &Table{Columns: []string{"x", "y"}}
	tab.AddRow("plain", `with "quote", and comma`)
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"with ""quote"", and comma"`) {
		t.Errorf("CSV quoting wrong:\n%s", out)
	}
	if !strings.HasPrefix(out, "x,y\n") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{2, "2"},
		{1234.5, "1234.5"},
		{2e6, "2.000e+06"},
		{5e-5, "5.000e-05"},
	}
	for _, c := range cases {
		if got := formatFloat(c.v); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
