package htm

import (
	"txconflict/internal/rng"
	"txconflict/internal/sim"
)

// OpKind distinguishes transaction operations.
type OpKind uint8

const (
	// OpRead loads the word at Addr into register Dst.
	OpRead OpKind = iota
	// OpWrite stores (regs[SrcReg] + Imm) to the word at Addr; with
	// SrcReg < 0 the stored value is just Imm.
	OpWrite
	// OpCompute spins for Cycles cycles without memory traffic.
	OpCompute
)

// Op is one step of a transaction body. Transactions are replayable
// op sequences: on abort the core re-executes the same ops with a
// fresh register file.
//
// Addressing is either static (AddrReg < 0: the effective address is
// Addr) or register-indirect (AddrReg >= 0: the effective address is
// Addr + (regs[AddrReg] & AddrMask) << AddrShift), which lets
// workloads express pointer-chasing structures like stacks and
// ring-buffer queues. AddrShift scales a register-held index into a
// byte offset (shift 6 turns a word/line index into its line address);
// zero keeps the historical byte-offset semantics.
type Op struct {
	Kind      OpKind
	Addr      uint64
	AddrReg   int
	AddrMask  uint64
	AddrShift uint8
	Cycles    sim.Time
	Dst       int
	SrcReg    int
	Imm       uint64
}

// EffectiveAddr computes the byte address against a register file.
func (op Op) EffectiveAddr(regs *[8]uint64) uint64 {
	if op.AddrReg < 0 {
		return op.Addr
	}
	return op.Addr + (regs[op.AddrReg&7]&op.AddrMask)<<op.AddrShift
}

// Read constructs a load of Addr into register dst.
func Read(addr uint64, dst int) Op {
	return Op{Kind: OpRead, Addr: addr, AddrReg: -1, Dst: dst}
}

// ReadAt constructs a load from base + (regs[reg] & mask) into
// register dst.
func ReadAt(base uint64, reg int, mask uint64, dst int) Op {
	return Op{Kind: OpRead, Addr: base, AddrReg: reg, AddrMask: mask, Dst: dst}
}

// Write constructs a store of regs[src]+imm to Addr.
func Write(addr uint64, src int, imm uint64) Op {
	return Op{Kind: OpWrite, Addr: addr, AddrReg: -1, SrcReg: src, Imm: imm}
}

// WriteAt constructs a store of regs[src]+imm to
// base + (regs[reg] & mask).
func WriteAt(base uint64, reg int, mask uint64, src int, imm uint64) Op {
	return Op{Kind: OpWrite, Addr: base, AddrReg: reg, AddrMask: mask, SrcReg: src, Imm: imm}
}

// WriteImm constructs a store of the constant imm to Addr.
func WriteImm(addr uint64, imm uint64) Op {
	return Op{Kind: OpWrite, Addr: addr, AddrReg: -1, SrcReg: -1, Imm: imm}
}

// Compute constructs a pure-compute step of the given cycles.
func Compute(cycles sim.Time) Op { return Op{Kind: OpCompute, AddrReg: -1, Cycles: cycles} }

// Tx is one transaction instance plus the non-transactional think
// time that follows it.
type Tx struct {
	Ops []Op
	// ThinkTime is the non-transactional compute executed after the
	// transaction commits, before the next one starts.
	ThinkTime sim.Time
}

// Len returns the isolated execution length of the transaction in
// cycles, counting compute plus one L1 hit per memory op (the
// commit cost ρ of Section 6, up to cache misses).
func (t Tx) Len(l1Latency sim.Time) sim.Time {
	var total sim.Time
	for _, op := range t.Ops {
		switch op.Kind {
		case OpCompute:
			total += op.Cycles
		default:
			total += l1Latency
		}
	}
	return total
}

// Workload supplies each core with an endless stream of transactions
// (the model of Section 3.2: "each [thread] has a virtually infinite
// sequence of transactions to execute").
type Workload interface {
	// NextTx returns the next transaction for the given core.
	NextTx(coreID int, r *rng.Rand) Tx
	// Name identifies the workload in tables.
	Name() string
}

// WorkloadFunc adapts a function to the Workload interface.
type WorkloadFunc struct {
	F func(coreID int, r *rng.Rand) Tx
	N string
}

// NextTx implements Workload.
func (w WorkloadFunc) NextTx(coreID int, r *rng.Rand) Tx { return w.F(coreID, r) }

// Name implements Workload.
func (w WorkloadFunc) Name() string { return w.N }
