package htm

import (
	"testing"
	"testing/quick"

	"txconflict/internal/rng"
)

// refMachine interprets transaction ops against a flat map — the
// specification the simulator must match in the absence of
// concurrency.
type refMachine struct {
	mem  map[uint64]uint64
	regs [8]uint64
}

func (m *refMachine) runTx(tx Tx) {
	m.regs = [8]uint64{}
	for _, op := range tx.Ops {
		switch op.Kind {
		case OpCompute:
		case OpRead:
			m.regs[op.Dst&7] = m.mem[op.EffectiveAddr(&m.regs)]
		case OpWrite:
			val := op.Imm
			if op.SrcReg >= 0 {
				val += m.regs[op.SrcReg&7]
			}
			m.mem[op.EffectiveAddr(&m.regs)] = val
		}
	}
}

// randomTx builds a random replayable transaction over a small
// address space (few distinct lines per tx so that even a tiny L1 can
// host it, while evictions still happen across transactions).
func randomTx(r *rng.Rand) Tx {
	n := 1 + r.Intn(5)
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		addr := uint64(r.Intn(16)) * 8 // 16 words over 2 lines
		switch r.Intn(3) {
		case 0:
			ops = append(ops, Read(addr, r.Intn(4)))
		case 1:
			ops = append(ops, Write(addr, r.Intn(4), uint64(r.Intn(100))))
		case 2:
			ops = append(ops, Compute(sim1to20(r)))
		}
	}
	return Tx{Ops: ops, ThinkTime: uint64(r.Intn(10))}
}

func sim1to20(r *rng.Rand) uint64 { return uint64(1 + r.Intn(20)) }

// TestSingleCoreMatchesReference runs random transaction streams on a
// single-core machine with a deliberately tiny L1 (forcing eviction
// and writeback paths) and checks the directory's final memory image
// word-for-word against the sequential reference interpreter.
func TestSingleCoreMatchesReference(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		const nTx = 60
		txs := make([]Tx, nTx)
		for i := range txs {
			txs[i] = randomTx(r)
		}
		// Reference execution.
		ref := &refMachine{mem: map[uint64]uint64{}}
		for _, tx := range txs {
			ref.runTx(tx)
		}
		// Simulated execution: tiny cache (2 sets x 2 ways).
		p := DefaultParams(1)
		p.L1Sets = 2
		p.L1Ways = 2
		idx := 0
		w := WorkloadFunc{N: "random", F: func(int, *rng.Rand) Tx {
			if idx >= len(txs) {
				return Tx{Ops: []Op{Compute(1000000)}} // idle tail
			}
			tx := txs[idx]
			idx++
			return tx
		}}
		m := NewMachine(p, w)
		for _, c := range m.Cores {
			c.start()
		}
		for idx < nTx {
			before := idx
			m.K.RunUntil(m.K.Now() + 100000)
			if idx == before {
				t.Logf("seed %d: no progress at tx %d", seed, idx)
				return false
			}
		}
		m.Drain()
		for word := uint64(0); word < 16; word++ {
			addr := word * 8
			if got, want := m.Dir.ReadWord(addr), ref.mem[addr]; got != want {
				t.Logf("seed %d: word %d = %d, reference %d", seed, word, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRegisterSemantics checks the op mini-ISA: register-indirect
// addressing, source-register adds, masking.
func TestRegisterSemantics(t *testing.T) {
	p := DefaultParams(1)
	done := false
	w := WorkloadFunc{N: "isa", F: func(int, *rng.Rand) Tx {
		if done {
			return Tx{Ops: []Op{Compute(1000000)}}
		}
		done = true
		return Tx{Ops: []Op{
			WriteImm(0, 16),                   // [0] = 16
			Read(0, 0),                        // r0 = 16
			WriteAt(64, 0, ^uint64(0), -1, 7), // [64+16] = 7
			ReadAt(64, 0, ^uint64(0), 1),      // r1 = [80] = 7
			Write(8, 1, 100),                  // [8] = r1 + 100 = 107
			WriteAt(128, 0, 0x18, -1, 9),      // [128 + (16 & 0x18)] = [144] = 9
		}}
	}}
	m := NewMachine(p, w)
	m.Run(50000)
	m.Drain()
	if got := m.Dir.ReadWord(0); got != 16 {
		t.Fatalf("[0] = %d", got)
	}
	if got := m.Dir.ReadWord(80); got != 7 {
		t.Fatalf("[80] = %d", got)
	}
	if got := m.Dir.ReadWord(8); got != 107 {
		t.Fatalf("[8] = %d", got)
	}
	if got := m.Dir.ReadWord(144); got != 9 {
		t.Fatalf("[144] = %d (mask broken)", got)
	}
}
