package htm

import (
	"testing"

	ccore "txconflict/internal/core"
	"txconflict/internal/strategy"
)

func TestHybridPolicySerializability(t *testing.T) {
	p := DefaultParams(8)
	p.HybridPolicy = true
	p.Strategy = strategy.Hybrid{}
	m := NewMachine(p, counterWorkload(40, 5))
	m.Run(300000)
	met := m.Drain()
	if met.Commits == 0 {
		t.Fatal("no commits under hybrid policy")
	}
	if got := m.Dir.ReadWord(0); got != uint64(met.Commits) {
		t.Fatalf("hybrid run lost updates: %d vs %d", got, met.Commits)
	}
	if err := m.checkCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridUsesBothResolutions(t *testing.T) {
	// Heavy contention produces both pair conflicts (k=2 -> RA ->
	// NACK aborts) and chains (k>2 -> RW -> receiver aborts), so a
	// hybrid run should show NACK aborts and other aborts.
	p := DefaultParams(12)
	p.HybridPolicy = true
	p.Strategy = strategy.Hybrid{}
	m := NewMachine(p, counterWorkload(60, 0))
	met := m.Run(500000)
	if met.NackAborts == 0 {
		t.Error("hybrid never used requestor-aborts resolution")
	}
	if met.Aborts <= met.NackAborts+met.CapacityAborts {
		t.Error("hybrid never used requestor-wins resolution")
	}
}

func TestPolicyForRule(t *testing.T) {
	p := DefaultParams(2)
	p.HybridPolicy = true
	m := NewMachine(p, counterWorkload(1, 1))
	c := m.Cores[0]
	if c.policyFor(2) != ccore.RequestorAborts {
		t.Fatal("k=2 should be requestor aborts")
	}
	if c.policyFor(3) != ccore.RequestorWins {
		t.Fatal("k=3 should be requestor wins")
	}
	p2 := DefaultParams(2)
	p2.Policy = ccore.RequestorAborts
	m2 := NewMachine(p2, counterWorkload(1, 1))
	if m2.Cores[0].policyFor(5) != ccore.RequestorAborts {
		t.Fatal("non-hybrid must keep the configured policy")
	}
}

func TestFixedBAblation(t *testing.T) {
	p := DefaultParams(8)
	p.Strategy = strategy.UniformRW{}
	p.FixedB = 500
	m := NewMachine(p, counterWorkload(40, 5))
	m.Run(300000)
	met := m.Drain()
	if met.Commits == 0 {
		t.Fatal("no commits with FixedB")
	}
	if got := m.Dir.ReadWord(0); got != uint64(met.Commits) {
		t.Fatalf("FixedB run lost updates: %d vs %d", got, met.Commits)
	}
}

func TestMeshTopology(t *testing.T) {
	p := DefaultParams(8)
	p.MeshDim = 3 // 3x3 grid, 8 cores + center directory
	p.Strategy = strategy.UniformRW{}
	m := NewMachine(p, counterWorkload(40, 5))
	// Latency sanity: the center tile (core 4 at (1,1)) is closest.
	if m.coreDirLatency(4) != p.NetLatency {
		t.Fatalf("center tile latency %d, want %d", m.coreDirLatency(4), p.NetLatency)
	}
	if m.coreDirLatency(0) != m.P.NetLatency+2*m.P.HopLatency {
		t.Fatalf("corner tile latency %d", m.coreDirLatency(0))
	}
	m.Run(300000)
	met := m.Drain()
	if met.Commits == 0 {
		t.Fatal("no commits on mesh")
	}
	if got := m.Dir.ReadWord(0); got != uint64(met.Commits) {
		t.Fatalf("mesh run lost updates: %d vs %d", got, met.Commits)
	}
	if err := m.checkCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestMeshTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("undersized mesh accepted")
		}
	}()
	p := DefaultParams(16)
	p.MeshDim = 3 // 9 tiles < 16 cores
	NewMachine(p, counterWorkload(1, 1))
}

func TestMeshUniformWhenDisabled(t *testing.T) {
	p := DefaultParams(4)
	m := NewMachine(p, counterWorkload(1, 1))
	for i := 0; i < 4; i++ {
		if m.coreDirLatency(i) != p.NetLatency {
			t.Fatalf("core %d latency %d without mesh", i, m.coreDirLatency(i))
		}
	}
}
