package htm

import (
	"fmt"
	"strings"

	"txconflict/internal/cache"
)

// DebugState renders a human-readable snapshot of every core's
// execution state and the directory's per-line records, for test
// failure diagnostics and interactive debugging.
func (m *Machine) DebugState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%d pending-events=%d\n", m.K.Now(), m.K.Pending())
	for _, c := range m.Cores {
		fmt.Fprintf(&b, "core %d: tx=%v committing=%v pc=%d/%d inflight=%v restartPending=%v grace=%v pendingConflicts=%d commits=%d aborts=%d\n",
			c.id, c.txActive, c.committing, c.pc, len(c.ops), c.inflight, c.restartPending, c.graceArmed, len(c.pending), c.commits, c.aborts)
		c.L1.ForEach(func(l *cache.Line) {
			if l.Valid() || l.Pending {
				fmt.Fprintf(&b, "   line %d %s tx=%v txdirty=%v pending=%v\n", l.Tag, l.State, l.Tx, l.TxDirty, l.Pending)
			}
		})
	}
	for la, e := range m.Dir.entries {
		if e.state != dirI || e.busy || len(e.queue) > 0 {
			fmt.Fprintf(&b, "dir line %d: state=%d owner=%d sharers=%b busy=%v queue=%d\n",
				la, e.state, e.owner, e.sharers, e.busy, len(e.queue))
		}
	}
	return b.String()
}
