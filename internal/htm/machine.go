package htm

import (
	"fmt"

	"txconflict/internal/cache"
	"txconflict/internal/rng"
	"txconflict/internal/sim"
)

// Machine assembles cores, directory and the event kernel into a
// runnable multicore HTM simulation.
type Machine struct {
	K     *sim.Kernel
	P     Params
	Dir   *Directory
	Cores []*Core
	W     Workload

	msgs map[string]uint64

	profMean float64
	profInit bool
	stopping bool
}

// NewMachine builds a machine for the given parameters and workload.
// Workloads that carry per-core state can implement
// EnsureWorkers(n int); it is called with the actual core count so
// the state is sized to the machine instead of a hard-coded maximum.
func NewMachine(p Params, w Workload) *Machine {
	p.validate()
	if ws, ok := w.(interface{ EnsureWorkers(n int) }); ok {
		ws.EnsureWorkers(p.Cores)
	}
	m := &Machine{
		K:    &sim.Kernel{},
		P:    p,
		W:    w,
		msgs: make(map[string]uint64),
	}
	m.Dir = newDirectory(m)
	root := rng.New(p.Seed)
	for i := 0; i < p.Cores; i++ {
		m.Cores = append(m.Cores, newCore(i, m, root.Split()))
	}
	return m
}

func (m *Machine) count(name string) { m.msgs[name]++ }

// coreDirLatency returns the one-way message latency between a core
// and the directory: uniform NetLatency, or distance-dependent when a
// mesh topology is configured (cores on a MeshDim² grid, directory at
// the center tile).
func (m *Machine) coreDirLatency(core int) sim.Time {
	if m.P.MeshDim == 0 {
		return m.P.NetLatency
	}
	d := m.P.MeshDim
	x, y := core%d, core/d
	cx, cy := d/2, d/2
	hops := absInt(x-cx) + absInt(y-cy)
	return m.P.NetLatency + sim.Time(hops)*m.P.HopLatency
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// profileUpdate feeds a committed transaction length into the
// exponentially weighted running mean (the "profiler" of Section 1).
func (m *Machine) profileUpdate(execLen float64) {
	const alpha = 0.1
	if !m.profInit {
		m.profMean = execLen
		m.profInit = true
		return
	}
	m.profMean += alpha * (execLen - m.profMean)
}

// profileMean returns the profiler's mean estimate (0 = unknown).
func (m *Machine) profileMean() float64 {
	if !m.profInit {
		return 0
	}
	return m.profMean
}

// Run simulates for the given number of cycles and returns metrics.
func (m *Machine) Run(cycles sim.Time) Metrics {
	for _, c := range m.Cores {
		c.start()
	}
	m.K.RunUntil(cycles)
	return m.Collect()
}

// Drain stops cores from starting new transactions (and from
// restarting aborted ones — without this, a NO_DELAY run under heavy
// contention can livelock forever, transactions endlessly shooting
// each other down) and runs the kernel until every in-flight
// transaction and message settles. Tests use it to compare the
// directory's committed memory image against commit counts exactly.
func (m *Machine) Drain() Metrics {
	m.stopping = true
	m.K.Run()
	return m.Collect()
}

// Collect snapshots metrics without advancing the simulation.
func (m *Machine) Collect() Metrics {
	met := Metrics{
		Cycles:   m.K.Now(),
		Messages: make(map[string]uint64, len(m.msgs)),
	}
	for k, v := range m.msgs {
		met.Messages[k] = v
	}
	for _, c := range m.Cores {
		met.Commits += c.commits
		met.Aborts += c.aborts
		met.Conflicts += c.conflicts
		met.GraceCommits += c.graceCommits
		met.NackAborts += c.nackAborts
		met.CapacityAborts += c.capAborts
		met.PerCoreCommits = append(met.PerCoreCommits, c.commits)
	}
	met.MeanTxCycles = m.profileMean()
	return met
}

// checkCoherence verifies the protocol invariants that must hold at
// every instant, even with messages in flight:
//
//  1. at most one core caches any line in Modified state;
//  2. a Modified copy excludes all other valid copies;
//  3. a Modified copy implies the directory believes that core owns
//     the line;
//  4. a Shared copy implies the core is in the directory's sharer set
//     (or is the still-believed owner during a demote-in-flight).
func (m *Machine) checkCoherence() error {
	type holder struct {
		core  int
		state cache.State
	}
	holders := make(map[cache.LineAddr][]holder)
	for _, c := range m.Cores {
		c.L1.ForEach(func(l *cache.Line) {
			holders[l.Tag] = append(holders[l.Tag], holder{c.id, l.State})
		})
	}
	for la, hs := range holders {
		modified := -1
		for _, h := range hs {
			if h.state == cache.Modified {
				if modified >= 0 {
					return fmt.Errorf("line %d: modified in cores %d and %d", la, modified, h.core)
				}
				modified = h.core
			}
		}
		if modified >= 0 && len(hs) > 1 {
			return fmt.Errorf("line %d: modified in core %d alongside %d other copies", la, modified, len(hs)-1)
		}
		e := m.Dir.entry(la)
		if modified >= 0 {
			if e.state != dirM || e.owner != modified {
				return fmt.Errorf("line %d: core %d has M but directory state=%d owner=%d", la, modified, e.state, e.owner)
			}
		}
		for _, h := range hs {
			if h.state != cache.Shared {
				continue
			}
			inSharers := e.state == dirS && e.sharers&(1<<uint(h.core)) != 0
			demoteWindow := e.state == dirM && e.owner == h.core
			if !inSharers && !demoteWindow {
				return fmt.Errorf("line %d: core %d has S but directory disagrees (state=%d sharers=%b owner=%d)", la, h.core, e.state, e.sharers, e.owner)
			}
		}
	}
	return nil
}
