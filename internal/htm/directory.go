package htm

import (
	"txconflict/internal/cache"
	"txconflict/internal/sim"
)

// dirState is the directory's view of a line.
type dirState uint8

const (
	dirI dirState = iota // no cached copies
	dirS                 // one or more read-only copies
	dirM                 // exactly one (believed) owner
)

// request is one outstanding coherence request at the directory.
type request struct {
	core    int
	write   bool
	reqTx   bool     // requestor is inside a transaction
	elapsed sim.Time // requestor's transaction elapsed cycles (for RA cost)
	attempt int      // requestor's abort count (for RA backoff)
	la      cache.LineAddr

	acksLeft int
	nacked   bool
}

// dirEntry is the directory record for one line. The directory also
// holds the authoritative memory copy of the line's data: committed
// values always reach the directory (commit writebacks and eviction
// writebacks), while speculative values never do, so an aborting core
// can silently drop its transactional lines.
type dirEntry struct {
	state   dirState
	owner   int
	sharers uint64 // bitmask over cores
	data    [cache.WordsPerLine]uint64
	busy    bool
	queue   []*request
}

// Directory is the home node of all lines (modeling the shared L2 /
// memory controller). Requests for the same line are serialized:
// while one is in flight the rest wait in a per-line FIFO — this is
// what turns simultaneous conflicting transactions into the paper's
// conflict *chains* (the queue length is the k-2 extra waiters).
type Directory struct {
	m       *Machine
	entries map[cache.LineAddr]*dirEntry
}

func newDirectory(m *Machine) *Directory {
	return &Directory{m: m, entries: make(map[cache.LineAddr]*dirEntry)}
}

func (d *Directory) entry(la cache.LineAddr) *dirEntry {
	e, ok := d.entries[la]
	if !ok {
		e = &dirEntry{state: dirI}
		d.entries[la] = e
	}
	return e
}

// ReadWord returns the directory's committed value of a word; tests
// use it to check end-to-end memory semantics.
func (d *Directory) ReadWord(byteAddr uint64) uint64 {
	e := d.entry(cache.LineOf(byteAddr))
	return e.data[cache.WordOf(byteAddr)]
}

// queueLen returns the number of requests waiting on the line,
// including the one in flight. The conflict chain length presented to
// strategies is 2 + (waiters behind the current request).
func (d *Directory) queueLen(la cache.LineAddr) int {
	return len(d.entry(la).queue)
}

// Request is the arrival point of GetS/GetX messages.
func (d *Directory) Request(req *request) {
	d.m.count("dir.request")
	e := d.entry(req.la)
	if e.busy {
		e.queue = append(e.queue, req)
		return
	}
	e.busy = true
	d.begin(e, req)
}

// begin dispatches a request against the current entry state. Called
// with e.busy held by req.
func (d *Directory) begin(e *dirEntry, req *request) {
	switch e.state {
	case dirI:
		if req.write {
			e.state = dirM
			e.owner = req.core
			e.sharers = 0
		} else {
			e.state = dirS
			e.sharers |= 1 << uint(req.core)
		}
		d.grant(e, req)
	case dirS:
		if !req.write {
			e.sharers |= 1 << uint(req.core)
			d.grant(e, req)
			return
		}
		// Invalidate all sharers except the requestor.
		targets := e.sharers &^ (1 << uint(req.core))
		if targets == 0 {
			e.state = dirM
			e.owner = req.core
			e.sharers = 0
			d.grant(e, req)
			return
		}
		req.acksLeft = popcount(targets)
		req.nacked = false
		chain := 2 + len(e.queue)
		for c := 0; c < d.m.P.Cores; c++ {
			if targets&(1<<uint(c)) != 0 {
				c := c
				d.m.count("dir.inv")
				d.m.K.After(d.m.coreDirLatency(c), func() {
					d.m.Cores[c].handleInv(req, chain)
				})
			}
		}
	case dirM:
		if e.owner == req.core {
			// The owner's eviction writeback is still in flight;
			// retry once it lands.
			d.m.count("dir.retry")
			d.m.K.After(2*d.m.coreDirLatency(req.core), func() { d.begin(e, req) })
			return
		}
		owner := e.owner
		chain := 2 + len(e.queue)
		d.m.count("dir.fetch")
		d.m.K.After(d.m.coreDirLatency(owner), func() {
			d.m.Cores[owner].handleFetch(req, chain)
		})
	}
}

// InvAck is a sharer's acknowledgment of an invalidation (possibly
// after a grace period and a receiver abort).
func (d *Directory) InvAck(req *request, from int) {
	d.m.count("dir.invack")
	e := d.entry(req.la)
	e.sharers &^= 1 << uint(from)
	req.acksLeft--
	d.maybeFinishInv(e, req)
}

// InvNack is a transactional sharer's refusal (requestor-aborts
// policy): the sharer keeps its line and the requestor must abort.
func (d *Directory) InvNack(req *request, from int) {
	d.m.count("dir.invnack")
	req.nacked = true
	req.acksLeft--
	d.maybeFinishInv(d.entry(req.la), req)
}

func (d *Directory) maybeFinishInv(e *dirEntry, req *request) {
	if req.acksLeft > 0 {
		return
	}
	if req.nacked {
		d.fail(e, req)
		return
	}
	e.state = dirM
	e.owner = req.core
	e.sharers = 0
	d.grant(e, req)
}

// OwnerReply carries the owner's current data for a fetched line. For
// a write fetch the owner has invalidated its copy; for a read fetch
// it demoted to Shared.
func (d *Directory) OwnerReply(req *request, from int, data [cache.WordsPerLine]uint64) {
	d.m.count("dir.ownerreply")
	e := d.entry(req.la)
	e.data = data
	if req.write {
		e.state = dirM
		e.owner = req.core
		e.sharers = 0
	} else {
		e.state = dirS
		e.sharers = 1<<uint(from) | 1<<uint(req.core)
	}
	d.grant(e, req)
}

// OwnerNack is the owner's refusal under requestor-aborts: the owner
// keeps the line and the requestor aborts.
func (d *Directory) OwnerNack(req *request, from int) {
	d.m.count("dir.ownernack")
	d.fail(d.entry(req.la), req)
}

// OwnerMiss reports that the believed owner no longer holds the line
// (it aborted and dropped it, or evicted it — the writeback either
// has arrived, clearing dirM, or is about to). Ownership is cleared
// and the request re-dispatched; the directory copy is authoritative.
func (d *Directory) OwnerMiss(req *request, from int) {
	d.m.count("dir.ownermiss")
	e := d.entry(req.la)
	if e.state == dirM && e.owner == from {
		e.state = dirI
		e.sharers = 0
	}
	d.begin(e, req)
}

// DropOwned is an aborting core's notification that it discarded a
// Modified transactional line without writeback (the directory copy
// is the committed value). Without this, the directory would believe
// the core still owns the line and a re-request from the same core
// would retry forever.
func (d *Directory) DropOwned(from int, la cache.LineAddr) {
	d.m.count("dir.dropowned")
	e := d.entry(la)
	if e.state == dirM && e.owner == from {
		e.state = dirI
		e.sharers = 0
	}
}

// Writeback handles an eviction writeback of a Modified line. Stale
// writebacks (ownership already moved) are ignored: the data traveled
// with the intervening fetch reply instead.
func (d *Directory) Writeback(from int, la cache.LineAddr, data [cache.WordsPerLine]uint64) {
	d.m.count("dir.writeback")
	e := d.entry(la)
	if e.state == dirM && e.owner == from {
		e.data = data
		e.state = dirI
		e.sharers = 0
	}
}

// CommitData updates the authoritative copy with a committed
// speculative write; the core keeps the line in Modified state.
// Stale updates (ownership moved between commit and arrival) are
// dropped — the fetch that moved ownership carried the same data.
func (d *Directory) CommitData(from int, la cache.LineAddr, data [cache.WordsPerLine]uint64) {
	d.m.count("dir.commitdata")
	e := d.entry(la)
	if e.state == dirM && e.owner == from {
		e.data = data
	}
}

// grant completes a request successfully, shipping data and the new
// state to the requestor.
func (d *Directory) grant(e *dirEntry, req *request) {
	d.m.count("dir.grant")
	data := e.data
	write := req.write
	c := req.core
	la := req.la
	d.m.K.After(d.m.coreDirLatency(c), func() {
		d.m.Cores[c].handleGrant(la, data, write)
	})
	d.finish(e)
}

// fail completes a request with a NACK-abort: the requestor's
// transaction must abort (requestor-aborts resolution).
func (d *Directory) fail(e *dirEntry, req *request) {
	d.m.count("dir.fail")
	c := req.core
	la := req.la
	d.m.K.After(d.m.coreDirLatency(c), func() {
		d.m.Cores[c].handleNackAbort(la)
	})
	d.finish(e)
}

// finish releases the per-line serialization and starts the next
// queued request.
func (d *Directory) finish(e *dirEntry) {
	if len(e.queue) == 0 {
		e.busy = false
		return
	}
	next := e.queue[0]
	e.queue = e.queue[1:]
	d.m.K.After(d.m.P.DirLatency, func() { d.begin(e, next) })
}

// popcount counts set bits.
func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// CheckInvariants verifies directory/cache consistency: at most one
// believed owner, directory sharer sets are supersets of actual
// cached copies, and no line is cached Modified in two cores. Tests
// call it after (and during) runs.
func (d *Directory) CheckInvariants() error {
	return d.m.checkCoherence()
}
