package htm

import (
	"txconflict/internal/cache"
	ccore "txconflict/internal/core"
	"txconflict/internal/rng"
	"txconflict/internal/sim"
	"txconflict/internal/strategy"
)

// pendingConflict is a coherence request parked at a receiving core
// during its grace period.
type pendingConflict struct {
	req     *request
	isFetch bool // fetch of an M line vs invalidation of an S line
}

// Core models one core: a private L1, a transactional execution
// engine, and the conflict-resolution logic of the paper. All methods
// run inside the event kernel (single-threaded).
type Core struct {
	id  int
	m   *Machine
	L1  *cache.Cache
	rng *rng.Rand

	regs [8]uint64

	// Current transaction.
	txActive bool
	epoch    uint64 // bumped on commit/abort; stale timers check it
	ops      []Op
	think    sim.Time
	pc       int
	txStart  sim.Time
	attempts int

	// One outstanding memory request (blocking MSHR).
	inflight       bool
	restartPending bool

	// committing marks the window between reaching the commit point
	// and the commit completing. A transaction in this window has
	// logically won: incoming conflicts are parked and served with
	// committed data instead of aborting it (commit is locally
	// atomic, as in real HTM commit pipelines).
	committing bool

	// Receiver-side grace state. gracePolicy is the policy chosen
	// when the grace was armed (relevant with HybridPolicy, which
	// picks per conflict by chain length).
	graceArmed  bool
	gracePolicy ccore.Policy
	pending     []pendingConflict

	// Stats.
	commits, aborts, conflicts          uint64
	graceCommits, nackAborts, capAborts uint64
}

func newCore(id int, m *Machine, r *rng.Rand) *Core {
	return &Core{
		id:  id,
		m:   m,
		L1:  cache.New(m.P.L1Sets, m.P.L1Ways),
		rng: r,
	}
}

// guard wraps a continuation so that it fires only if the transaction
// epoch is unchanged (i.e. no commit/abort invalidated it).
func (c *Core) guard(fn func()) func() {
	e := c.epoch
	return func() {
		if c.epoch == e {
			fn()
		}
	}
}

// start fetches the first transaction. Cores are staggered by their
// id to avoid artificial lockstep.
func (c *Core) start() {
	c.m.K.After(sim.Time(c.id), c.nextTx)
}

func (c *Core) nextTx() {
	if c.m.stopping {
		return
	}
	tx := c.m.W.NextTx(c.id, c.rng)
	c.ops = tx.Ops
	c.think = tx.ThinkTime
	c.attempts = 0
	c.beginTx()
}

// beginTx (re)starts execution of the current op sequence.
func (c *Core) beginTx() {
	c.txActive = true
	c.epoch++
	c.pc = 0
	c.txStart = c.m.K.Now()
	c.regs = [8]uint64{}
	c.step()
}

// step executes the op at pc, or commits when the body is done.
func (c *Core) step() {
	if !c.txActive {
		return
	}
	if c.pc >= len(c.ops) {
		c.committing = true
		c.m.K.After(c.m.P.CommitLatency, c.guard(c.finishCommit))
		return
	}
	op := c.ops[c.pc]
	switch op.Kind {
	case OpCompute:
		c.pc++
		c.m.K.After(op.Cycles, c.guard(c.step))
	case OpRead, OpWrite:
		c.access(op)
	}
}

// access performs one memory op against the L1, issuing a coherence
// request on a miss or upgrade. On a hit the op takes effect
// atomically (tag check and data access are indivisible, as in real
// hardware — otherwise a crossing fetch could steal the line before
// the transactional bit is set, and two symmetric cores ping-pong a
// contended line forever without a single conflict being detected);
// the hit latency is charged before the next op starts.
func (c *Core) access(op Op) {
	la := cache.LineOf(op.EffectiveAddr(&c.regs))
	line := c.L1.Peek(la)
	write := op.Kind == OpWrite
	if line != nil && (!write || line.State == cache.Modified) {
		c.applyOp(op, line)
		c.pc++
		c.m.K.After(c.m.P.L1Latency, c.guard(c.step))
		return
	}
	if line == nil {
		nl, victim, evicted := c.L1.Insert(la)
		if evicted {
			if victim.State == cache.Modified && !victim.Tx {
				c.sendWriteback(victim.Tag, victim.Data)
			}
			if victim.Tx {
				// Algorithm 1, line 4: evicting a transactional
				// line aborts the transaction. The victim left the
				// cache in Insert, so doAbort's sweep cannot see it
				// — release its ownership here or the directory
				// retries this core's next request for it forever.
				c.dropEvictedTxVictim(victim)
				c.capAborts++
				c.doAbort()
				return
			}
		}
		nl.Pending = true
	}
	// Miss (fill) or upgrade (S->M): one blocking request.
	c.sendRequest(la, write)
}

// applyOp performs the data movement of a memory op against a line
// with sufficient permissions, marking it transactional.
func (c *Core) applyOp(op Op, line *cache.Line) {
	ea := op.EffectiveAddr(&c.regs)
	line.Tx = true
	w := cache.WordOf(ea)
	if op.Kind == OpWrite {
		val := op.Imm
		if op.SrcReg >= 0 {
			val += c.regs[op.SrcReg&7]
		}
		line.Data[w] = val
		line.TxDirty = true
	} else {
		c.regs[op.Dst&7] = line.Data[w]
	}
}

// sendRequest issues GetS/GetX to the directory.
func (c *Core) sendRequest(la cache.LineAddr, write bool) {
	c.inflight = true
	req := &request{
		core:    c.id,
		write:   write,
		reqTx:   c.txActive,
		elapsed: c.m.K.Now() - c.txStart,
		attempt: c.attempts,
		la:      la,
	}
	if write {
		c.m.count("core.getx")
	} else {
		c.m.count("core.gets")
	}
	c.m.K.After(c.m.coreDirLatency(c.id), func() { c.m.Dir.Request(req) })
}

// dropEvictedTxVictim releases the directory-side state of a
// transactional line that a capacity eviction just removed from the
// cache. A Modified victim's speculative data is discarded (the
// directory copy is the committed value), but the directory must stop
// believing this core owns the line: doAbort's DropOwned sweep walks
// the cache and the victim is already gone from it.
func (c *Core) dropEvictedTxVictim(victim cache.Line) {
	if victim.State != cache.Modified {
		return // Shared drops stay silent; the sharer mask is a superset
	}
	la := victim.Tag
	c.m.count("core.dropowned")
	c.m.K.After(c.m.coreDirLatency(c.id), func() { c.m.Dir.DropOwned(c.id, la) })
}

func (c *Core) sendWriteback(la cache.LineAddr, data [cache.WordsPerLine]uint64) {
	c.m.count("core.writeback")
	c.m.K.After(c.m.coreDirLatency(c.id), func() { c.m.Dir.Writeback(c.id, la, data) })
}

// handleGrant receives data and permissions from the directory.
func (c *Core) handleGrant(la cache.LineAddr, data [cache.WordsPerLine]uint64, write bool) {
	c.inflight = false
	line := c.L1.FindPending(la)
	if line == nil {
		line = c.L1.Peek(la) // upgrade grant: line is valid Shared
	}
	if line == nil {
		nl, victim, evicted := c.L1.Insert(la)
		if evicted {
			if victim.State == cache.Modified && !victim.Tx {
				c.sendWriteback(victim.Tag, victim.Data)
			}
			if victim.Tx && c.txActive {
				c.dropEvictedTxVictim(victim)
				c.capAborts++
				// Fill first so the grant is not lost, then abort.
				nl.State = grantState(write)
				nl.Data = data
				c.doAbort()
				return
			}
		}
		line = nl
	}
	line.Pending = false
	line.Data = data
	line.State = grantState(write)
	if c.restartPending {
		c.restartPending = false
		c.scheduleRestart()
		return
	}
	if !c.txActive {
		return
	}
	// Complete the op that missed atomically with the fill, then
	// charge the access latency before the next op.
	c.applyOp(c.ops[c.pc], line)
	c.pc++
	c.m.K.After(c.m.P.L1Latency, c.guard(c.step))
}

func grantState(write bool) cache.State {
	if write {
		return cache.Modified
	}
	return cache.Shared
}

// handleNackAbort receives a requestor-aborts NACK: this core's
// transaction loses the conflict and restarts.
func (c *Core) handleNackAbort(la cache.LineAddr) {
	c.inflight = false
	c.nackAborts++
	if line := c.L1.FindPending(la); line != nil {
		*line = cache.Line{} // the fill will never arrive
	}
	if c.restartPending {
		c.restartPending = false
		c.scheduleRestart()
		return
	}
	if c.txActive {
		c.doAbort()
	}
}

// handleFetch processes a directory forward for a line this core
// (supposedly) owns in Modified state.
func (c *Core) handleFetch(req *request, chain int) {
	line := c.L1.Peek(req.la)
	if line == nil || line.State != cache.Modified {
		// Aborted (dropped) or evicted (writeback in flight).
		c.m.K.After(c.m.coreDirLatency(c.id), func() { c.m.Dir.OwnerMiss(req, c.id) })
		return
	}
	if line.Tx && c.txActive {
		c.conflict(req, true, chain)
		return
	}
	c.serveFetch(req, line)
}

// serveFetch replies with data, demoting or invalidating locally.
func (c *Core) serveFetch(req *request, line *cache.Line) {
	data := line.Data
	if req.write {
		c.L1.Invalidate(req.la)
	} else {
		line.State = cache.Shared
	}
	c.m.count("core.ownerreply")
	c.m.K.After(c.m.coreDirLatency(c.id), func() { c.m.Dir.OwnerReply(req, c.id, data) })
}

// handleInv processes an invalidation of a Shared line.
func (c *Core) handleInv(req *request, chain int) {
	line := c.L1.Peek(req.la)
	if line == nil {
		c.ackInv(req)
		return
	}
	if line.Tx && c.txActive {
		c.conflict(req, false, chain)
		return
	}
	c.L1.Invalidate(req.la)
	c.ackInv(req)
}

func (c *Core) ackInv(req *request) {
	c.m.count("core.invack")
	c.m.K.After(c.m.coreDirLatency(c.id), func() { c.m.Dir.InvAck(req, c.id) })
}

func (c *Core) nackInv(req *request) {
	c.m.count("core.invnack")
	c.m.K.After(c.m.coreDirLatency(c.id), func() { c.m.Dir.InvNack(req, c.id) })
}

// conflict is the paper's decision point: a remote request has hit a
// transactional line. The receiving core picks a grace period via the
// strategy and parks the request; per the model's assumption (b),
// requests arriving during an ongoing grace period attach to it
// rather than starting a new one.
func (c *Core) conflict(req *request, isFetch bool, chain int) {
	c.conflicts++
	c.m.count("core.conflict")
	c.pending = append(c.pending, pendingConflict{req: req, isFetch: isFetch})
	if c.committing || c.graceArmed {
		return
	}
	k := chain
	if c.m.P.FixedChainK > 0 {
		k = c.m.P.FixedChainK
	}
	if k < 2 {
		k = 2
	}
	c.graceArmed = true
	c.gracePolicy = c.policyFor(k)
	x := c.graceDelay(req, k, c.gracePolicy)
	if x <= 0 {
		c.graceExpire()
		return
	}
	c.m.K.After(x, c.guard(c.graceExpire))
}

// policyFor returns the resolution policy for a conflict of chain
// length k: the configured one, or — under HybridPolicy — the paper's
// Section 9 rule (requestor aborts for pair conflicts, requestor wins
// for chains, matching the better competitive ratio).
func (c *Core) policyFor(k int) ccore.Policy {
	if !c.m.P.HybridPolicy {
		return c.m.P.Policy
	}
	if k <= 2 {
		return ccore.RequestorAborts
	}
	return ccore.RequestorWins
}

// graceDelay evaluates the strategy on the conflict parameters.
func (c *Core) graceDelay(req *request, k int, pol ccore.Policy) sim.Time {
	s := c.m.P.Strategy
	if s == nil {
		return 0
	}
	// B is the doomed transaction's abort cost: elapsed time plus
	// cleanup (paper footnote 1) — the receiver's under requestor
	// wins, the requestor's under requestor aborts. The FixedB
	// ablation replaces it with a constant.
	var b float64
	var attempts int
	if pol == ccore.RequestorWins {
		b = float64(c.m.K.Now()-c.txStart) + float64(c.m.P.AbortPenalty)
		attempts = c.attempts
	} else {
		b = float64(req.elapsed) + float64(c.m.P.AbortPenalty)
		attempts = req.attempt
	}
	if c.m.P.FixedB > 0 {
		b = c.m.P.FixedB
	}
	if c.m.P.BackoffFactor > 1 {
		b = strategy.BackoffB(b, attempts, c.m.P.BackoffFactor, c.m.P.MaxBackoffB)
	}
	conf := ccore.Conflict{Policy: pol, K: k, B: b}
	if c.m.P.UseMeanProfile {
		conf.Mean = c.m.profileMean()
	}
	x := s.Delay(conf, c.rng)
	if x < 0 {
		x = 0
	}
	return sim.Time(x)
}

// graceExpire resolves all parked conflicts at the deadline:
// requestor-wins aborts the receiver; requestor-aborts NACKs every
// transactional requestor (and aborts the receiver anyway if some
// requestor cannot abort, e.g. a non-transactional access).
func (c *Core) graceExpire() {
	c.graceArmed = false
	if c.committing {
		// Reached the commit point during the grace period: the
		// receiver has won; parked requests are served at commit.
		return
	}
	if c.gracePolicy == ccore.RequestorWins {
		c.doAbort()
		return
	}
	for _, p := range c.pending {
		if !p.req.reqTx {
			// Cannot NACK a non-transactional requestor; fall back
			// to aborting the receiver, which serves everyone.
			c.doAbort()
			return
		}
	}
	pend := c.pending
	c.pending = nil
	for _, p := range pend {
		if p.isFetch {
			req := p.req
			c.m.count("core.ownernack")
			c.m.K.After(c.m.coreDirLatency(c.id), func() { c.m.Dir.OwnerNack(req, c.id) })
		} else {
			c.nackInv(p.req)
		}
	}
}

// finishCommit completes the transaction: committed speculative data
// is written back to the directory (keeping ownership), tx bits are
// cleared, parked requests are served with the committed values.
func (c *Core) finishCommit() {
	c.commits++
	if c.graceArmed || len(c.pending) > 0 {
		c.graceCommits++
	}
	c.m.profileUpdate(float64(c.m.K.Now() - c.txStart))
	c.L1.ForEach(func(l *cache.Line) {
		if l.TxDirty {
			la, data := l.Tag, l.Data
			c.m.count("core.commitdata")
			c.m.K.After(c.m.coreDirLatency(c.id), func() { c.m.Dir.CommitData(c.id, la, data) })
		}
	})
	c.L1.ClearTxBits()
	c.txActive = false
	c.committing = false
	c.graceArmed = false
	c.epoch++
	c.servePending(true)
	c.m.K.After(c.think, c.nextTx)
}

// doAbort aborts the running transaction: speculative lines are
// dropped (the directory copy is the committed value), parked
// requests are released, and the transaction restarts after the
// cleanup penalty — immediately, or once the in-flight request
// returns.
func (c *Core) doAbort() {
	if !c.txActive {
		return
	}
	c.aborts++
	c.m.count("core.abort")
	c.txActive = false
	c.committing = false
	c.epoch++
	c.graceArmed = false
	c.attempts++
	// Notify the directory about dropped Modified lines so ownership
	// does not dangle (Shared drops stay silent; the sharer mask is a
	// conservative superset).
	c.L1.ForEach(func(l *cache.Line) {
		if l.Tx && l.State == cache.Modified {
			la := l.Tag
			c.m.count("core.dropowned")
			c.m.K.After(c.m.coreDirLatency(c.id), func() { c.m.Dir.DropOwned(c.id, la) })
		}
	})
	c.L1.DropTxLines()
	c.servePending(false)
	if c.inflight {
		c.restartPending = true
		return
	}
	c.scheduleRestart()
}

// scheduleRestart re-launches an aborted transaction after the
// cleanup penalty plus a randomized exponential backoff. The
// randomization de-convoys the restart herd: without it, an
// all-readers-upgrade pattern (shared stack top) livelocks, every
// winner being shot by the lockstep-restarting losers.
func (c *Core) scheduleRestart() {
	if c.m.stopping {
		return
	}
	delay := c.m.P.AbortPenalty
	if base := c.m.P.RestartBackoffBase; base > 0 {
		shift := c.attempts
		if shift > 10 {
			shift = 10
		}
		limit := base << uint(shift)
		if max := c.m.P.MaxRestartBackoff; max > 0 && limit > max {
			limit = max
		}
		delay += sim.Time(c.rng.Uint64n(uint64(limit)))
	}
	c.m.K.After(delay, c.beginTx)
}

// servePending releases parked requests after commit (with data) or
// abort (with OwnerMiss, since the lines were dropped).
func (c *Core) servePending(committed bool) {
	pend := c.pending
	c.pending = nil
	for _, p := range pend {
		req := p.req
		if p.isFetch {
			line := c.L1.Peek(req.la)
			if committed && line != nil && line.State == cache.Modified {
				c.serveFetch(req, line)
			} else {
				c.m.K.After(c.m.coreDirLatency(c.id), func() { c.m.Dir.OwnerMiss(req, c.id) })
			}
		} else {
			if committed {
				c.L1.Invalidate(req.la)
			}
			c.ackInv(req)
		}
	}
}
