// Package htm is a functional, cycle-level model of a hardware
// transactional memory built on a directory-based MSI coherence
// protocol with private L1 caches — the stand-in for the paper's
// Graphite-based HTM (Section 8.2).
//
// The model follows the paper's Algorithm 1: each L1 line carries a
// transactional bit; evicting a transactional line aborts the
// transaction; conflicts are detected when a remote coherence request
// (fetch or invalidation) reaches a transactional line. On conflict
// the receiving core consults a core.Strategy to pick a grace period:
// it delays its coherence response hoping to commit, and at the
// deadline either aborts itself (requestor-wins) or NACKs the
// requestor (requestor-aborts).
package htm

import (
	"math"

	"txconflict/internal/core"
	"txconflict/internal/sim"
)

// Params configures a simulated machine.
type Params struct {
	// Cores is the number of cores (1..64).
	Cores int
	// L1Sets and L1Ways give the private L1 geometry.
	L1Sets, L1Ways int
	// NetLatency is the one-way message latency between a core and
	// the directory (and core-to-core forwards), in cycles.
	NetLatency sim.Time
	// L1Latency is the L1 hit latency in cycles.
	L1Latency sim.Time
	// DirLatency is the directory processing latency in cycles.
	DirLatency sim.Time
	// CommitLatency is the cost of a commit in cycles.
	CommitLatency sim.Time
	// AbortPenalty is the fixed cleanup cost of an abort in cycles
	// (the fixed part of the paper's abort cost B, footnote 1).
	AbortPenalty sim.Time
	// Policy selects requestor-wins or requestor-aborts conflict
	// resolution.
	Policy core.Policy
	// HybridPolicy, when true, overrides Policy per conflict with the
	// paper's Section 9 suggestion: requestor-aborts for k = 2
	// conflicts, requestor-wins for longer chains (where the RW
	// strategies have the better ratio).
	HybridPolicy bool
	// Strategy decides grace periods. nil means Immediate (NO_DELAY).
	Strategy core.Strategy
	// UseMeanProfile feeds the running mean of committed transaction
	// lengths to the strategy (the profiler of Section 1,
	// "Extensions").
	UseMeanProfile bool
	// BackoffFactor multiplies the effective abort cost B per abort
	// of the same transaction (Corollary 2). Values <= 1 disable
	// backoff.
	BackoffFactor float64
	// MaxBackoffB caps the backoff growth of B, in cycles. Zero means
	// no cap.
	MaxBackoffB float64
	// FixedChainK, when > 0, reports every conflict as a chain of
	// this length instead of using the directory's queue length
	// (ablation: "chain-length estimate").
	FixedChainK int
	// FixedB, when > 0, presents a constant abort cost B to the
	// strategy instead of elapsed+cleanup (ablation: "abort cost
	// estimate", paper footnote 1).
	FixedB float64
	// MeshDim, when > 0, arranges cores on a MeshDim x MeshDim grid
	// with the directory at the center tile; message latency becomes
	// NetLatency + HopLatency * manhattan distance (a Graphite-like
	// tiled topology). Zero keeps the uniform NetLatency.
	MeshDim int
	// HopLatency is the per-hop cost in mesh mode (default 2).
	HopLatency sim.Time
	// RestartBackoffBase is the base of the randomized exponential
	// backoff applied before an aborted transaction restarts:
	// uniform in [0, base·2^min(attempts,10)), capped by
	// MaxRestartBackoff. Zero disables backoff — which livelocks
	// convoy-prone workloads (all-readers-upgrade patterns like a
	// shared stack top) exactly as real HTMs do without retry
	// backoff.
	RestartBackoffBase sim.Time
	// MaxRestartBackoff caps the randomized restart backoff.
	MaxRestartBackoff sim.Time
	// Seed seeds all per-core random streams.
	Seed uint64
}

// DefaultParams returns a small but realistic configuration: 64-set,
// 4-way L1 (16 KiB), 15-cycle network hops, 3-cycle L1 hits.
func DefaultParams(cores int) Params {
	return Params{
		Cores:              cores,
		L1Sets:             64,
		L1Ways:             4,
		NetLatency:         15,
		L1Latency:          3,
		DirLatency:         5,
		CommitLatency:      10,
		AbortPenalty:       60,
		Policy:             core.RequestorWins,
		Strategy:           nil,
		BackoffFactor:      1,
		RestartBackoffBase: 64,
		MaxRestartBackoff:  16384,
		Seed:               1,
	}
}

// validate normalizes and checks the parameters.
func (p *Params) validate() {
	if p.Cores <= 0 || p.Cores > 64 {
		panic("htm: Cores must be in 1..64 (directory uses a 64-bit sharer mask)")
	}
	if p.L1Sets == 0 {
		p.L1Sets = 64
	}
	if p.L1Ways == 0 {
		p.L1Ways = 4
	}
	if p.BackoffFactor == 0 {
		p.BackoffFactor = 1
	}
	if p.MaxBackoffB == 0 {
		p.MaxBackoffB = math.Inf(1)
	}
	if p.MeshDim > 0 && p.MeshDim*p.MeshDim < p.Cores {
		panic("htm: mesh too small for core count")
	}
	if p.HopLatency == 0 {
		p.HopLatency = 2
	}
}

// Metrics aggregates the outcome of a simulation run.
type Metrics struct {
	// Cycles is the simulated duration.
	Cycles sim.Time
	// Commits and Aborts count transaction outcomes across cores.
	Commits, Aborts uint64
	// Conflicts counts receiver-side conflict events.
	Conflicts uint64
	// GraceCommits counts receivers that committed during a grace
	// period (the delay paid off).
	GraceCommits uint64
	// NackAborts counts requestor aborts triggered by RA NACKs.
	NackAborts uint64
	// CapacityAborts counts aborts caused by transactional-line
	// eviction.
	CapacityAborts uint64
	// Messages counts coherence messages by kind.
	Messages map[string]uint64
	// PerCoreCommits records commits per core (fairness analysis).
	PerCoreCommits []uint64
	// MeanTxCycles is the profiler's final estimate of committed
	// transaction length.
	MeanTxCycles float64
}

// Throughput returns commits per million cycles.
func (m Metrics) Throughput() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Commits) / float64(m.Cycles) * 1e6
}

// OpsPerSecond converts throughput to operations per second assuming
// the given clock in GHz (the paper's figures report ops/s).
func (m Metrics) OpsPerSecond(ghz float64) float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Commits) / (float64(m.Cycles) / (ghz * 1e9))
}

// AbortRate returns aborts per commit.
func (m Metrics) AbortRate() float64 {
	if m.Commits == 0 {
		return float64(m.Aborts)
	}
	return float64(m.Aborts) / float64(m.Commits)
}
