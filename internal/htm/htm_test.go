package htm

import (
	"reflect"
	"testing"

	ccore "txconflict/internal/core"
	"txconflict/internal/rng"
	"txconflict/internal/sim"
	"txconflict/internal/strategy"
)

// counterWorkload increments the shared counter at address 0:
// tx { r0 = [0]; compute; [0] = r0 + 1 }.
func counterWorkload(compute, think sim.Time) Workload {
	return WorkloadFunc{
		N: "counter",
		F: func(coreID int, r *rng.Rand) Tx {
			return Tx{
				Ops: []Op{
					Read(0, 0),
					Compute(compute),
					Write(0, 0, 1),
				},
				ThinkTime: think,
			}
		},
	}
}

// disjointWorkload touches a core-private line: no conflicts ever.
func disjointWorkload(compute sim.Time) Workload {
	return WorkloadFunc{
		N: "disjoint",
		F: func(coreID int, r *rng.Rand) Tx {
			addr := uint64(coreID) * 64
			return Tx{
				Ops:       []Op{Read(addr, 0), Compute(compute), Write(addr, 0, 1)},
				ThinkTime: 10,
			}
		},
	}
}

func TestSingleCoreCounter(t *testing.T) {
	p := DefaultParams(1)
	m := NewMachine(p, counterWorkload(20, 10))
	m.Run(200000)
	met := m.Drain()
	if met.Commits == 0 {
		t.Fatal("no commits on a single core")
	}
	if met.Aborts != 0 {
		t.Fatalf("%d aborts with no contention", met.Aborts)
	}
	if got := m.Dir.ReadWord(0); got != uint64(met.Commits) {
		t.Fatalf("counter = %d, commits = %d", got, met.Commits)
	}
	if err := m.checkCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestCounterSerializability is the end-to-end HTM correctness test:
// whatever the policy and strategy, the committed counter value must
// equal the number of commits — lost updates would show up as a
// deficit.
func TestCounterSerializability(t *testing.T) {
	strategies := []ccore.Strategy{
		nil, // NO_DELAY
		strategy.Deterministic{},
		strategy.UniformRW{},
		strategy.ExpRA{},
	}
	policies := []ccore.Policy{ccore.RequestorWins, ccore.RequestorAborts}
	for _, pol := range policies {
		for _, s := range strategies {
			name := "NO_DELAY"
			if s != nil {
				name = s.Name()
			}
			t.Run(pol.String()+"/"+name, func(t *testing.T) {
				p := DefaultParams(8)
				p.Policy = pol
				p.Strategy = s
				p.Seed = 42
				m := NewMachine(p, counterWorkload(30, 5))
				m.Run(300000)
				met := m.Drain()
				if met.Commits == 0 {
					t.Fatal("no commits")
				}
				if got := m.Dir.ReadWord(0); got != uint64(met.Commits) {
					t.Fatalf("lost updates: counter=%d commits=%d (aborts=%d conflicts=%d)",
						got, met.Commits, met.Aborts, met.Conflicts)
				}
				if err := m.checkCoherence(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestCoherenceInvariantsDuringRun(t *testing.T) {
	p := DefaultParams(8)
	p.Strategy = strategy.UniformRW{}
	m := NewMachine(p, counterWorkload(20, 0))
	for _, c := range m.Cores {
		c.start()
	}
	// Probe invariants every 500 cycles while the run is hot.
	var probeErr error
	var probe func()
	probe = func() {
		if err := m.checkCoherence(); err != nil && probeErr == nil {
			probeErr = err
			m.K.Stop()
			return
		}
		m.K.After(500, probe)
	}
	m.K.After(500, probe)
	m.K.RunUntil(150000)
	if probeErr != nil {
		t.Fatal(probeErr)
	}
}

func TestDisjointNoConflicts(t *testing.T) {
	p := DefaultParams(8)
	p.Strategy = strategy.UniformRW{}
	m := NewMachine(p, disjointWorkload(10))
	met := m.Run(100000)
	if met.Commits == 0 {
		t.Fatal("no commits")
	}
	if met.Conflicts != 0 || met.Aborts != 0 {
		t.Fatalf("disjoint workload produced conflicts=%d aborts=%d", met.Conflicts, met.Aborts)
	}
	// Fairness: every core commits.
	for i, c := range met.PerCoreCommits {
		if c == 0 {
			t.Fatalf("core %d starved", i)
		}
	}
}

func TestContentionProducesConflicts(t *testing.T) {
	p := DefaultParams(8)
	p.Strategy = strategy.UniformRW{}
	m := NewMachine(p, counterWorkload(50, 0))
	met := m.Run(200000)
	if met.Conflicts == 0 {
		t.Fatal("shared counter produced no conflicts")
	}
	if met.GraceCommits == 0 {
		t.Fatal("delaying strategy never let a receiver commit in grace")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Metrics {
		p := DefaultParams(4)
		p.Strategy = strategy.UniformRW{}
		p.Seed = 7
		m := NewMachine(p, counterWorkload(25, 5))
		return m.Run(100000)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	run := func(seed uint64) Metrics {
		p := DefaultParams(4)
		p.Strategy = strategy.UniformRW{}
		p.Seed = seed
		m := NewMachine(p, counterWorkload(25, 5))
		return m.Run(100000)
	}
	a, b := run(1), run(2)
	if reflect.DeepEqual(a.PerCoreCommits, b.PerCoreCommits) && a.Conflicts == b.Conflicts {
		t.Log("different seeds produced identical runs (possible but unlikely); not failing")
	}
}

func TestCapacityAbort(t *testing.T) {
	// A transaction touching more distinct lines in one set than the
	// cache has ways must abort on eviction of its own tx line.
	p := DefaultParams(1)
	p.L1Sets = 1
	p.L1Ways = 2
	m := NewMachine(p, WorkloadFunc{
		N: "capacity",
		F: func(coreID int, r *rng.Rand) Tx {
			return Tx{Ops: []Op{
				Read(0*64, 0),
				Read(1*64, 1),
				Read(2*64, 2), // third line in a 2-way single set
			}}
		},
	})
	met := m.Run(50000)
	if met.CapacityAborts == 0 {
		t.Fatal("no capacity aborts despite overflowing the L1 set")
	}
	if met.Commits != 0 {
		t.Fatalf("%d commits of an impossible transaction", met.Commits)
	}
}

func TestRequestorAbortsNacks(t *testing.T) {
	p := DefaultParams(8)
	p.Policy = ccore.RequestorAborts
	p.Strategy = strategy.ExpRA{}
	m := NewMachine(p, counterWorkload(40, 0))
	met := m.Run(300000)
	if met.NackAborts == 0 {
		t.Fatal("requestor-aborts run produced no NACK aborts")
	}
	// Under RA every conflict abort is a requestor abort; the only
	// other abort source is capacity.
	if met.Aborts != met.NackAborts+met.CapacityAborts {
		t.Fatalf("aborts=%d nack=%d capacity=%d: receiver was aborted under RA",
			met.Aborts, met.NackAborts, met.CapacityAborts)
	}
}

func TestRequestorWinsAbortsReceivers(t *testing.T) {
	p := DefaultParams(8)
	p.Policy = ccore.RequestorWins
	p.Strategy = strategy.UniformRW{}
	m := NewMachine(p, counterWorkload(40, 0))
	met := m.Run(300000)
	if met.NackAborts != 0 {
		t.Fatalf("requestor-wins run produced %d NACK aborts", met.NackAborts)
	}
	if met.Aborts == 0 {
		t.Fatal("contended RW run produced no aborts")
	}
}

func TestProfilerPopulated(t *testing.T) {
	p := DefaultParams(2)
	p.UseMeanProfile = true
	p.Strategy = strategy.MeanRW{}
	m := NewMachine(p, counterWorkload(30, 10))
	met := m.Run(100000)
	if met.Commits == 0 {
		t.Fatal("no commits")
	}
	if met.MeanTxCycles <= 0 {
		t.Fatal("profiler mean not populated")
	}
	// A counter tx is ~3 ops + 30 compute cycles; the profiled mean
	// must be in a sane range (well under the run length).
	if met.MeanTxCycles < 30 || met.MeanTxCycles > 10000 {
		t.Fatalf("profiler mean %v implausible", met.MeanTxCycles)
	}
}

func TestBackoffReducesStarvation(t *testing.T) {
	// With backoff enabled, the effective B grows per abort, so
	// transactions that abort repeatedly become more likely to
	// survive. We just verify the mechanism engages and the run
	// still commits correctly.
	p := DefaultParams(8)
	p.Strategy = strategy.UniformRW{}
	p.BackoffFactor = 2
	p.MaxBackoffB = 1e6
	m := NewMachine(p, counterWorkload(60, 0))
	m.Run(300000)
	met := m.Drain()
	if met.Commits == 0 {
		t.Fatal("no commits with backoff")
	}
	if got := m.Dir.ReadWord(0); got != uint64(met.Commits) {
		t.Fatalf("backoff run lost updates: %d vs %d", got, met.Commits)
	}
}

func TestFixedChainKOverride(t *testing.T) {
	p := DefaultParams(8)
	p.Strategy = strategy.Deterministic{}
	p.FixedChainK = 4
	m := NewMachine(p, counterWorkload(40, 0))
	m.Run(200000)
	met := m.Drain()
	if got := m.Dir.ReadWord(0); got != uint64(met.Commits) {
		t.Fatalf("fixed-k run lost updates: %d vs %d", got, met.Commits)
	}
}

func TestMultiLineTransactionSerializability(t *testing.T) {
	// Transfers between two accounts: total balance is conserved by
	// every serializable execution.
	const accounts = 4
	w := WorkloadFunc{
		N: "transfer",
		F: func(coreID int, r *rng.Rand) Tx {
			a, b := r.TwoDistinct(accounts)
			return Tx{Ops: []Op{
				Read(uint64(a)*64, 0),
				Read(uint64(b)*64, 1),
				Compute(15),
				Write(uint64(a)*64, 0, ^uint64(0)), // a -= 1 (two's complement)
				Write(uint64(b)*64, 1, 1),          // b += 1
			}, ThinkTime: 5}
		},
	}
	for _, pol := range []ccore.Policy{ccore.RequestorWins, ccore.RequestorAborts} {
		p := DefaultParams(6)
		p.Policy = pol
		p.Strategy = strategy.UniformRW{}
		m := NewMachine(p, w)
		m.Run(300000)
		met := m.Drain()
		if met.Commits == 0 {
			t.Fatalf("%v: no commits", pol)
		}
		var total uint64
		for a := 0; a < accounts; a++ {
			total += m.Dir.ReadWord(uint64(a) * 64)
		}
		if total != 0 {
			t.Fatalf("%v: balance not conserved: total drift %d after %d commits", pol, int64(total), met.Commits)
		}
		if err := m.checkCoherence(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDelayImprovesContendedThroughput(t *testing.T) {
	// The paper's headline empirical claim: adding delays improves
	// throughput under contention — in the regime where the receiver
	// is often close to its commit point when the conflict arrives
	// (short tail after the contended write, like the stack/queue
	// fast paths). Compare NO_DELAY vs DELAY_RAND.
	w := WorkloadFunc{
		N: "write-early",
		F: func(coreID int, r *rng.Rand) Tx {
			return Tx{
				Ops: []Op{
					Read(0, 0),
					Write(0, 0, 1),
					Compute(40), // tail work while holding the line
				},
				ThinkTime: 20,
			}
		},
	}
	run := func(s ccore.Strategy) Metrics {
		p := DefaultParams(4)
		p.Strategy = s
		p.Seed = 9
		m := NewMachine(p, w)
		return m.Run(400000)
	}
	noDelay := run(nil)
	withDelay := run(strategy.UniformRW{})
	if noDelay.Aborts == 0 {
		t.Fatal("NO_DELAY under contention had no aborts")
	}
	if withDelay.GraceCommits == 0 {
		t.Fatal("no receiver ever committed within its grace period")
	}
	if withDelay.Commits <= noDelay.Commits {
		t.Fatalf("delay did not improve throughput: %d vs %d", withDelay.Commits, noDelay.Commits)
	}
	if withDelay.AbortRate() >= noDelay.AbortRate() {
		t.Fatalf("delay did not reduce abort rate: %v vs %v", withDelay.AbortRate(), noDelay.AbortRate())
	}
}

func TestDelayCanHurtEarlyConflictWorkloads(t *testing.T) {
	// Converse regime (documented, matches the theory): when
	// conflicts arrive early in long transactions, (k-1)·D > B for
	// essentially every receiver, the offline optimum aborts
	// immediately, and any delay is pure overhead. NO_DELAY should
	// be at least as good here.
	run := func(s ccore.Strategy) Metrics {
		p := DefaultParams(12)
		p.Strategy = s
		p.Seed = 9
		m := NewMachine(p, counterWorkload(80, 0))
		return m.Run(400000)
	}
	noDelay := run(nil)
	withDelay := run(strategy.UniformRW{})
	if noDelay.Commits == 0 || withDelay.Commits == 0 {
		t.Fatal("runs made no progress")
	}
	if float64(withDelay.Commits) > 1.2*float64(noDelay.Commits) {
		t.Fatalf("delay unexpectedly dominated the early-conflict regime: %d vs %d",
			withDelay.Commits, noDelay.Commits)
	}
}

func TestUncontendedDelayHarmless(t *testing.T) {
	// Second empirical claim: delays do not hurt uncontended runs.
	run := func(s ccore.Strategy) Metrics {
		p := DefaultParams(8)
		p.Strategy = s
		m := NewMachine(p, disjointWorkload(20))
		return m.Run(200000)
	}
	noDelay := run(nil)
	withDelay := run(strategy.UniformRW{})
	if rel := float64(withDelay.Commits) / float64(noDelay.Commits); rel < 0.99 {
		t.Fatalf("delay hurt uncontended throughput: %d vs %d", withDelay.Commits, noDelay.Commits)
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := Metrics{Cycles: 2e6, Commits: 4000, Aborts: 1000}
	if m.Throughput() != 2000 {
		t.Fatalf("throughput %v", m.Throughput())
	}
	if got := m.OpsPerSecond(1); got != 2000*1e3 {
		t.Fatalf("ops/s %v", got)
	}
	if m.AbortRate() != 0.25 {
		t.Fatalf("abort rate %v", m.AbortRate())
	}
	var zero Metrics
	if zero.Throughput() != 0 || zero.OpsPerSecond(1) != 0 {
		t.Fatal("zero metrics should not divide by zero")
	}
}

func TestTxLen(t *testing.T) {
	tx := Tx{Ops: []Op{Read(0, 0), Compute(100), Write(0, 0, 1)}}
	if got := tx.Len(3); got != 106 {
		t.Fatalf("Len = %d", got)
	}
}

func TestParamsValidate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("65 cores accepted")
		}
	}()
	p := DefaultParams(65)
	NewMachine(p, counterWorkload(1, 1))
}

func BenchmarkSimulatedCycles(b *testing.B) {
	p := DefaultParams(8)
	p.Strategy = strategy.UniformRW{}
	m := NewMachine(p, counterWorkload(30, 5))
	for _, c := range m.Cores {
		c.start()
	}
	b.ResetTimer()
	m.K.RunUntil(sim.Time(b.N) * 100)
}
