// Package stats provides the summary statistics used when aggregating
// experiment results: online mean/variance (Welford), percentiles,
// histograms and normal-approximation confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates mean and variance in a single numerically
// stable pass. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 for no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 for no observations).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 for no observations).
func (w *Welford) Max() float64 { return w.max }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// CI95 returns the half-width of the 95% normal-approximation
// confidence interval on the mean.
func (w *Welford) CI95() float64 { return 1.96 * w.StdErr() }

// Merge combines another accumulator into w (parallel Welford).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n1, n2 := float64(w.n), float64(o.n)
	delta := o.mean - w.mean
	tot := n1 + n2
	w.mean += delta * n2 / tot
	w.m2 += o.m2 + delta*delta*n1*n2/tot
	w.n += o.n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// String summarizes the accumulator.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g", w.n, w.Mean(), w.StdDev(), w.min, w.max)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between order statistics. It returns 0 for
// empty input and does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Histogram is a fixed-width bucket histogram over [Lo, Hi); values
// outside the range land in the under/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	Buckets   []int64
	Underflow int64
	Overflow  int64
	total     int64
}

// NewHistogram creates a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < h.Lo {
		h.Underflow++
		return
	}
	if x >= h.Hi {
		h.Overflow++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if i >= len(h.Buckets) { // float rounding at the top edge
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
}

// Total returns the number of observations, including out-of-range.
func (h *Histogram) Total() int64 { return h.total }

// BucketCenter returns the midpoint of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of in-range observations in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.total)
}

// Ratio computes a/b, returning 0 when b is 0. Used for throughput
// and competitive-ratio reporting where empty cells are legitimate.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// RelErr returns |got-want|/|want|, or |got| when want == 0.
func RelErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
