package stats

import (
	"math"
	"testing"
	"testing/quick"

	"txconflict/internal/rng"
)

func TestWelfordAgainstDirect(t *testing.T) {
	r := rng.New(1)
	var w Welford
	xs := make([]float64, 0, 1000)
	for i := 0; i < 1000; i++ {
		x := r.NormFloat64()*3 + 10
		xs = append(xs, x)
		w.Add(x)
	}
	mean := Mean(xs)
	variance := 0.0
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs) - 1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Fatalf("welford mean %v vs direct %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-9 {
		t.Fatalf("welford variance %v vs direct %v", w.Variance(), variance)
	}
	if w.N() != 1000 {
		t.Fatalf("n = %d", w.N())
	}
}

func TestWelfordMinMax(t *testing.T) {
	var w Welford
	for _, x := range []float64{3, -1, 7, 2} {
		w.Add(x)
	}
	if w.Min() != -1 || w.Max() != 7 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 || w.CI95() != 0 {
		t.Fatal("empty accumulator should be all zeros")
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(5)
	if w.Mean() != 5 || w.Variance() != 0 {
		t.Fatalf("single-element stats wrong: %v", w.String())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(seed uint32, split uint8) bool {
		r := rng.New(uint64(seed))
		n := 100
		k := int(split)%n + 1
		var all, a, b Welford
		for i := 0; i < n; i++ {
			x := r.Float64()*100 - 50
			all.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-7 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	before := a.String()
	a.Merge(&b) // merging empty must be a no-op
	if a.String() != before {
		t.Fatal("merge with empty changed accumulator")
	}
	b.Merge(&a) // merging into empty copies
	if b.Mean() != 2 || b.N() != 2 {
		t.Fatalf("merge into empty: %v", b.String())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("P50 of {0,10} = %v, want 5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileEmpty(t *testing.T) {
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{5, 1, 3}) != 3 {
		t.Fatal("median of {5,1,3} wrong")
	}
}

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean{2,4}")
	}
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Fatal("Sum{1,2,3}")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	for i := 0; i < 10; i++ {
		if h.Buckets[i] != 1 {
			t.Fatalf("bucket %d = %d", i, h.Buckets[i])
		}
	}
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Fatalf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
	if h.Total() != 12 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.BucketCenter(0) != 0.5 {
		t.Fatalf("center(0) = %v", h.BucketCenter(0))
	}
	if f := h.Fraction(3); math.Abs(f-1.0/12) > 1e-12 {
		t.Fatalf("fraction(3) = %v", f)
	}
}

func TestHistogramTopEdge(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(math.Nextafter(1, 0)) // just below Hi
	if h.Buckets[3] != 1 {
		t.Fatalf("top-edge value fell into %v", h.Buckets)
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad histogram shape did not panic")
		}
	}()
	NewHistogram(1, 0, 10)
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Fatal("Ratio broken")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(11, 10) != 0.1 {
		t.Fatalf("RelErr(11,10) = %v", RelErr(11, 10))
	}
	if RelErr(0.5, 0) != 0.5 {
		t.Fatalf("RelErr(0.5,0) = %v", RelErr(0.5, 0))
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	r := rng.New(9)
	var small, large Welford
	for i := 0; i < 100; i++ {
		small.Add(r.NormFloat64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(r.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i))
	}
}

func BenchmarkPercentile(b *testing.B) {
	r := rng.New(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Percentile(xs, 99)
	}
	_ = sink
}
