package stm

import (
	"time"

	"txconflict/internal/metrics"
)

// TxTrace summarizes one completed Atomic call — every attempt of one
// atomic block, from the first optimistic execution to the final
// commit (or user-level abort). It is the runtime half of a trace
// record: the scenario layer knows the program (op count, sampled
// compute, think time) and annotates separately; the runtime knows
// what actually happened (retries, kills, grace waits, the concrete
// word footprint of the final attempt).
type TxTrace struct {
	// Worker is the caller-supplied worker id (AtomicWorker), or -1
	// for plain Atomic calls.
	Worker int
	// StartUnixNs is the wall-clock start of the first attempt.
	StartUnixNs int64
	// DurNs is the wall-clock duration of the whole atomic block.
	DurNs int64
	// GraceWaitNs is the total time this transaction spent waiting in
	// grace periods (as a requestor), across all attempts.
	GraceWaitNs int64
	// Retries counts aborted attempts before the outcome.
	Retries int
	// KillsSuffered counts attempts of this block killed by
	// requestors; KillsIssued counts receivers this block killed while
	// resolving its own conflicts.
	KillsSuffered, KillsIssued int
	// Committed distinguishes a commit from a user-level abort.
	Committed bool
	// FoldedWrites counts this block's delta-writes (tx.Add) that the
	// group-commit combiner folded into summed hot-word applications
	// (0 for unbatched commits and demoted deltas).
	FoldedWrites int
	// Irrevocable reports that the block fell back to the serialized
	// slow path before finishing.
	Irrevocable bool
	// Reads and Writes are the word footprint of the final attempt:
	// the distinct word indices read and written, disjoint (a word
	// both read and written counts as a write). The slices are reused
	// across transactions — Tracer implementations must copy what
	// they keep.
	Reads, Writes []uint32
}

// Tracer receives one TxTrace per completed Atomic/AtomicWorker call
// when installed as Config.Trace. TraceTx is called on the
// transaction's own goroutine; implementations must be safe for
// concurrent use from many workers and must not retain t or its
// slices past the call.
type Tracer interface {
	TraceTx(t *TxTrace)
}

// beginTrace opens instrumentation for one atomic block (tracing
// enabled only).
func (tx *Tx) beginTrace(worker int) {
	tx.tr = TxTrace{
		Worker:      worker,
		StartUnixNs: time.Now().UnixNano(),
		Reads:       tx.tr.Reads[:0],
		Writes:      tx.tr.Writes[:0],
	}
}

// captureFootprint snapshots the attempt's word footprint before
// commit/rollback clears the sets. Re-executed attempts overwrite the
// previous capture, so the emitted footprint is the final attempt's.
func (tx *Tx) captureFootprint() {
	tx.tr.Reads = tx.tr.Reads[:0]
	tx.tr.Writes = tx.tr.Writes[:0]
	if tx.rt.lazy {
		for _, idx := range tx.writeIdx {
			tx.tr.Writes = append(tx.tr.Writes, uint32(idx))
		}
		// Pending delta-writes are writes too (blind ones: they never
		// appear in the read log, so the dedup below is unaffected).
		for _, idx := range tx.addIdx {
			tx.tr.Writes = append(tx.tr.Writes, uint32(idx))
		}
	} else {
		for _, u := range tx.undo {
			tx.tr.Writes = append(tx.tr.Writes, uint32(u.idx))
		}
	}
	// The read set logs one entry per Load, and a read-before-write
	// word appears there too (the Load ran before the lock was owned
	// or the write buffered); dedupe against both lists so Reads is
	// the distinct read-only footprint, disjoint from Writes. Sets
	// are small, so the quadratic scan beats sorting.
outer:
	for _, re := range tx.reads {
		w := uint32(re.idx)
		for _, seen := range tx.tr.Reads {
			if seen == w {
				continue outer
			}
		}
		for _, written := range tx.tr.Writes {
			if written == w {
				continue outer
			}
		}
		tx.tr.Reads = append(tx.tr.Reads, w)
	}
}

// noteAbort records trace-relevant facts about an aborted attempt.
func (tx *Tx) noteAbort(reason metrics.AbortReason) {
	if reason == metrics.AbortKilled {
		tx.tr.KillsSuffered++
	}
}

// emitTrace finalizes the block's trace and hands it to the
// configured Tracer. The pointer (and its slices) are valid only for
// the duration of the call — the descriptor returns to the pool right
// after.
func (tx *Tx) emitTrace(committed bool) {
	tx.tr.Committed = committed
	tx.tr.Retries = int(tx.attempts.Load())
	tx.tr.DurNs = time.Now().UnixNano() - tx.tr.StartUnixNs
	tx.rt.tracer.TraceTx(&tx.tr)
}
