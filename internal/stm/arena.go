// Package stm is a hand-rolled software transactional memory with
// versioned locks, extended with the paper's grace-period conflict
// resolution. Go has no hardware TM, so this runtime is the
// real-concurrency counterpart of the internal/htm simulator: the
// same core.Strategy implementations plug into real goroutines.
//
// # Arena layout
//
// Words live in a flat data array, but their transactional metadata —
// the versioned lock (version<<1 | lockedBit) and the owner slot — is
// packed per word into a cache-line-padded record, so that
// neighbouring words never false-share a metadata line. The global
// commit clock of classic TL2 is replaced by striped per-shard
// clocks: word idx belongs to stripe idx&(shards-1), and a committing
// writer advances only the clocks of the stripes it wrote. At high
// core counts this removes the single contended CAS line that
// otherwise serializes every commit.
//
// Striped clocks need a striped notion of snapshot. A transaction
// holds one read version per stripe, taken lazily: the first time a
// read (or write-lock acquisition) in stripe s observes a word
// version newer than the stripe snapshot, the transaction *extends* —
// it reads the latest stripe clock, revalidates its entire read set,
// and on success adopts the newer snapshot (TL2/TinySTM-style
// extension). Extension failure aborts, so opacity is preserved:
// no transaction, even a doomed one, observes a torn snapshot.
//
// # Locking modes
//
//   - Eager (encounter-time, default): writers acquire the word lock
//     at the first Store and write in place with an undo log —
//     the faithful analogue of the paper's HTM (Algorithm 1), where
//     a transaction owns its write set for its whole duration and
//     conflicts find the receiver mid-execution.
//   - Lazy (commit-time, TL2-style): writes are buffered and locks
//     are taken in address order only inside commit. Lock hold times
//     are short, so grace periods matter less — this mode doubles as
//     the "lazy versioning" ablation.
//
// # Conflicts and the epoch scheme
//
// A conflict arises when a transaction (the requestor) encounters a
// word locked by another transaction (the receiver — it owns the
// data item, exactly the paper's receiver role). The requestor
// evaluates the configured core.Strategy to obtain the grace period
// (using the doomed side's elapsed time as the abort cost B, paper
// footnote 1), then waits:
//
//   - requestor wins: at the deadline the requestor kills the
//     receiver (a status CAS the receiver observes at its next
//     instrumentation point) and waits for the locks to drop;
//   - requestor aborts: at the deadline the requestor aborts itself.
//
// Descriptors are reused across retries of the same atomic block, so
// "the receiver" must mean one *attempt*, not one descriptor. Each
// descriptor therefore packs an attempt epoch and a status into a
// single atomic state word (epoch << stateEpochShift | status, with
// stateEpochShift = 3: the status field is three bits wide since the
// group commit added its three terminal outcomes — batchDone,
// batchFail, batchKilled — to active/killed/noReturn); every retry
// bumps the epoch. A requestor captures the receiver's (epoch, status) when
// its wait begins, kills with a CAS against exactly that state, and
// treats any epoch change as "the lock moved on". A stale requestor
// can thus never kill a later attempt, and never mistakes a later
// attempt of the same descriptor for the one it started waiting on.
//
// A receiver that reaches its commit write-back phase can no longer
// be killed (commit is locally atomic, as in the HTM model).
// Transactions that exhaust MaxRetries fall back to an irrevocable
// slow path (serialized by a token), the STM analogue of the paper's
// lock-free fallback paths.
//
// # Commutative folding
//
// The paper's conflict model (and §9's k-chain analysis) treats every
// write to a hot word as a conflict edge: n transactions incrementing
// one counter serialize into a chain of length n regardless of
// policy, because read-modify-write footprints genuinely conflict.
// But blind increments commute — the chain is an artifact of
// expressing "add delta" as load;store. Tx.Add records such deltas
// separately in the descriptor footprint (no read entry, no value
// dependency), and the group-commit combiner (batch.go, gated by
// Policy.FoldCommutative) exploits them: when every access to a
// contended word within a drained batch is a tagged delta, the
// combiner applies ONE summed store and advances the stripe clock
// once, collapsing the k-length conflict chain into a single commit
// event. Any plain write to the same word in the same batch falls
// back to roster-order write-back, so mixed traffic keeps exact
// semantics. Outside the fold path (eager mode, unbatched lazy, fold
// gate off, irrevocable blocks) Add lowers to the equivalent
// load/store pair at record time, so the operation is always exact —
// folding changes only how many clock advances and lock handoffs the
// hot word pays, never what it reads afterwards. Stats.FoldedCommits
// and Stats.FoldedWords count the folds; TxTrace.FoldedWrites
// attributes them per block.
package stm

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/metrics"
	"txconflict/internal/strategy"
)

const cacheLine = 64

// wordMeta is the per-word transactional metadata, padded so two
// words never share a cache line: the versioned lock
// (version<<1 | lockedBit, version drawn from the word's stripe
// clock) and the owner descriptor slot.
type wordMeta struct {
	lock  atomic.Uint64
	owner atomic.Pointer[Tx]
	_     [cacheLine - 16]byte
}

// stripe is one clock shard, padded onto its own line so commits in
// different stripes never contend on clock cache lines.
type stripe struct {
	clock atomic.Uint64
	_     [cacheLine - 8]byte
}

// Config assembles a runtime at construction time. It is two halves
// glued together for convenience: the *structural* fields (Shards,
// Lazy, Trace — plus the arena size passed to New) freeze the memory
// layout and instrumentation for the life of the Runtime, while the
// remaining fields are only the *initial* Policy — the dynamic
// tuning surface that Runtime.SetPolicy can replace atomically at
// any point (see policy.go and internal/tune for the controller
// that does so online). Runtime.Config reconstructs a Config that
// reflects the current policy, so reports always label what actually
// ran.
type Config struct {
	// Policy selects requestor-wins or requestor-aborts resolution.
	Policy core.Policy
	// HybridPolicy overrides Policy per conflict with the paper's
	// Section 9 rule: requestor-aborts for pair conflicts (k = 2),
	// requestor-wins for longer chains. Pairs naturally with
	// strategy.Hybrid, which dispatches the matching optimal
	// strategy.
	HybridPolicy bool
	// Strategy picks grace periods; nil means no grace (immediate
	// resolution, the NO_DELAY baseline).
	Strategy core.Strategy
	// Lazy switches to commit-time locking (TL2); the default is
	// eager encounter-time locking, matching the paper's HTM.
	Lazy bool
	// CommitBatch, when > 0 in Lazy mode, routes commits through the
	// per-shard group-commit combiner (batch.go): a committing
	// transaction either becomes its shard's combiner — acquiring the
	// merged commit locks once, validating and writing back up to
	// CommitBatch queued write sets with a single clock advance per
	// written stripe — or enqueues its descriptor and waits for the
	// combiner to stamp its outcome into the packed state word. 0
	// keeps the unbatched commit path (the ablation baseline). The
	// setting is ignored in eager mode, whose encounter-time locks
	// cannot be handed off at commit.
	CommitBatch int
	// FoldCommutative (initial Policy.FoldCommutative) lets tx.Add
	// record blind delta-writes the group-commit combiner folds into
	// one summed application per hot word (escrow-style counters).
	// Requires the combiner lane (Lazy, CommitBatch > 0) to have any
	// effect; tx.Add lowers to load+store otherwise.
	FoldCommutative bool
	// Shards is the number of clock stripes. 0 picks a default sized
	// to GOMAXPROCS; 1 degenerates to the flat single-clock arena
	// (the pre-sharding layout, kept as the ablation baseline).
	// Other values are rounded up to a power of two.
	Shards int
	// UseMeanProfile feeds the profiled mean committed-transaction
	// duration to the strategy.
	UseMeanProfile bool
	// KWindow, when > 0, enables the windowed conflict-chain
	// estimator: the instantaneous per-conflict estimate (2 + waiters
	// on the receiver) is fed into a ring of the last KWindow
	// observations, and the chain length handed to the policy switch
	// and the strategy is raised to the window's running mean when
	// recent history shows longer chains than the instantaneous
	// waiter count (which undercounts chains formed by transitive
	// waiting). 0 keeps the plain 2 + waiters estimate.
	KWindow int
	// CleanupCost is the fixed component of the abort cost B in
	// nanoseconds; the elapsed execution time is added per the
	// paper's footnote 1.
	CleanupCost time.Duration
	// BackoffFactor multiplies B per abort of the same transaction
	// (Corollary 2); <= 1 disables.
	BackoffFactor float64
	// MaxRetries bounds optimistic retries before the transaction
	// falls back to the irrevocable slow path; 0 means never.
	MaxRetries int
	// Trace, when non-nil, receives one TxTrace per completed atomic
	// block (see internal/trace for the production recorder). All
	// instrumentation is gated behind this nil check, so the hot path
	// is unperturbed when tracing is off.
	Trace Tracer
	// Metrics, when non-nil, attaches the observability plane
	// (internal/metrics): per-worker latency histograms for attempt,
	// commit, grace-wait and combiner-drain time, the abort-reason
	// taxonomy, and 1-in-N sampled commit-phase timers. Unlike Trace
	// it is meant to stay on in production — the per-transaction cost
	// is a few uncontended atomic adds and no allocations (pinned by
	// TestTraceGateOverhead's metrics variant).
	Metrics *metrics.Plane
}

// DefaultConfig returns an eager requestor-wins configuration with
// the 2-competitive uniform strategy.
func DefaultConfig() Config {
	return Config{
		Policy:        core.RequestorWins,
		Strategy:      strategy.UniformRW{},
		CleanupCost:   2 * time.Microsecond,
		BackoffFactor: 1,
		MaxRetries:    64,
	}
}

// String renders the config for reports.
func (c Config) String() string {
	name := "NO_DELAY"
	if c.Strategy != nil {
		name = c.Strategy.Name()
	}
	mode := "eager"
	if c.Lazy {
		mode = "lazy"
	}
	if c.Shards == 1 {
		mode += "/flat"
	}
	if c.KWindow > 0 {
		mode += fmt.Sprintf("/kw%d", c.KWindow)
	}
	if c.Lazy && c.CommitBatch > 0 {
		mode += fmt.Sprintf("/b%d", c.CommitBatch)
		if c.FoldCommutative {
			mode += "/fold"
		}
	}
	return fmt.Sprintf("%v/%s/%s", c.Policy, name, mode)
}

// kEstimator is a lock-free ring of recent conflict-chain
// observations. observe and estimate race benignly: the estimate is a
// smoothing heuristic, not a correctness input, so a torn window
// costs at most a slightly stale mean.
type kEstimator struct {
	ring []atomic.Int64
	pos  atomic.Uint64
	sum  atomic.Int64
}

func newKEstimator(window int) *kEstimator {
	return &kEstimator{ring: make([]atomic.Int64, window)}
}

// observe records one instantaneous chain-length estimate.
func (e *kEstimator) observe(k int) {
	i := e.pos.Add(1) - 1
	old := e.ring[i%uint64(len(e.ring))].Swap(int64(k))
	e.sum.Add(int64(k) - old)
}

// estimate returns the running mean over the window (0 = no data).
func (e *kEstimator) estimate() float64 {
	n := e.pos.Load()
	if n == 0 {
		return 0
	}
	if n > uint64(len(e.ring)) {
		n = uint64(len(e.ring))
	}
	return float64(e.sum.Load()) / float64(n)
}

// Stats aggregates runtime counters (all updated atomically).
type Stats struct {
	Commits     atomic.Uint64
	Aborts      atomic.Uint64
	Kills       atomic.Uint64 // receiver aborts forced by requestors
	SelfAborts  atomic.Uint64 // requestor-side and validation aborts
	GraceWaits  atomic.Uint64 // conflicts that entered a grace wait
	Irrevocable atomic.Uint64 // slow-path executions
	Extensions  atomic.Uint64 // successful stripe-snapshot extensions

	// Group commit (Config.CommitBatch > 0, lazy mode only).
	Batches      atomic.Uint64 // combiner rounds
	BatchCommits atomic.Uint64 // write sets committed by a combiner
	BatchFails   atomic.Uint64 // admissions failed inside a batch

	// Commutative folding (Policy.FoldCommutative, batched lazy mode).
	FoldedCommits atomic.Uint64 // admitted members whose deltas were folded
	FoldedWords   atomic.Uint64 // hot words applied as one summed delta
}

// Snapshot returns a plain-value copy of the counters, keyed by the
// lowerCamel field name ("SelfAborts" → "selfAborts"). The map is
// generated by reflection over the struct, so a counter added to
// Stats can never be silently missing from /v1/stats, the Prometheus
// exposition, or the bench reports — the set of keys IS the set of
// fields (asserted by TestStatsSnapshotComplete).
func (s *Stats) Snapshot() map[string]uint64 {
	v := reflect.ValueOf(s).Elem()
	t := v.Type()
	out := make(map[string]uint64, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		c, ok := v.Field(i).Addr().Interface().(*atomic.Uint64)
		if !ok {
			continue
		}
		name := t.Field(i).Name
		out[string(name[0]|0x20)+name[1:]] = c.Load()
	}
	return out
}

// Runtime is a transactional memory arena plus its conflict policy.
// The structural fields (lazy, stripes, tracer, the arena itself) are
// frozen at New; the conflict policy lives behind one atomic pointer
// and is swappable at runtime (SetPolicy) — each transaction attempt
// latches the current *Policy once, so a swap never tears a running
// attempt and an unswapped runtime pays only the pointer load.
type Runtime struct {
	lazy       bool
	tracer     Tracer
	metrics    *metrics.Plane
	stripeMask int
	stripes    []stripe
	meta       []wordMeta
	words      []atomic.Uint64

	pol      atomic.Pointer[Policy]
	polSwaps atomic.Uint64

	fallback sync.Mutex // serializes irrevocable transactions
	txPool   sync.Pool  // reusable Tx descriptors (see Atomic)

	// Group-commit combiner lanes (nil unless Lazy); whether commits
	// actually route through them is the current Policy.CommitBatch.
	// A committing write set maps to batch[lowestWriteIdx & batchMask].
	batch     []batchShard
	batchMask int

	// kEst is the windowed chain estimator (nil while KWindow = 0);
	// SetPolicy swaps in a fresh window on resize.
	kEst atomic.Pointer[kEstimator]

	profBits atomic.Uint64 // float64 bits of the EWMA duration (ns)

	Stats Stats
}

// New creates a runtime with n words, all zero.
func New(n int, cfg Config) *Runtime {
	if n <= 0 {
		panic("stm: non-positive arena size")
	}
	sh := cfg.Shards
	if sh <= 0 {
		sh = defaultShards()
	}
	sh = ceilPow2(sh)
	rt := &Runtime{
		lazy:       cfg.Lazy,
		tracer:     cfg.Trace,
		metrics:    cfg.Metrics,
		stripeMask: sh - 1,
		stripes:    make([]stripe, sh),
		meta:       make([]wordMeta, n),
		words:      make([]atomic.Uint64, n),
	}
	if cfg.Lazy {
		// Lanes exist on every lazy runtime — a few cache lines — so
		// SetPolicy can open the combiner later without reallocating
		// under live transactions.
		lanes := defaultBatchShards()
		rt.batch = make([]batchShard, lanes)
		rt.batchMask = lanes - 1
	}
	p := cfg.policy()
	p.normalize()
	if !rt.lazy {
		p.CommitBatch = 0
	}
	if p.KWindow > 0 {
		rt.kEst.Store(newKEstimator(p.KWindow))
	}
	rt.pol.Store(&p)
	return rt
}

// KEstimate returns the windowed conflict-chain estimate (the mean of
// the last KWindow instantaneous observations); 0 when the estimator
// is disabled or has seen no conflicts yet.
func (rt *Runtime) KEstimate() float64 {
	est := rt.kEst.Load()
	if est == nil {
		return 0
	}
	return est.estimate()
}

// defaultShards sizes the stripe count to the machine: enough stripes
// that concurrent committers rarely collide on a clock line, capped
// so per-transaction snapshot state stays small.
func defaultShards() int {
	s := 4 * runtime.GOMAXPROCS(0)
	if s > 64 {
		s = 64
	}
	if s < 1 {
		s = 1
	}
	return s
}

// ceilPow2 rounds n up to the next power of two (n >= 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// stripeOf maps a word index to its clock stripe. Adjacent words land
// in different stripes, spreading hot neighbourhoods across clocks.
func (rt *Runtime) stripeOf(idx int) int { return idx & rt.stripeMask }

// Size returns the arena size in words.
func (rt *Runtime) Size() int { return len(rt.words) }

// Shards returns the number of clock stripes (a power of two).
func (rt *Runtime) Shards() int { return len(rt.stripes) }

// Config returns the runtime's configuration with the *current*
// policy folded in: the structural half is the construction-time
// truth, the dynamic half reflects the latest SetPolicy — so
// Config().String() labels reports with what is actually running.
func (rt *Runtime) Config() Config {
	p := rt.Policy()
	return Config{
		Policy:          p.Resolution,
		HybridPolicy:    p.Hybrid,
		Strategy:        p.Strategy,
		Lazy:            rt.lazy,
		CommitBatch:     p.CommitBatch,
		FoldCommutative: p.FoldCommutative,
		Shards:          len(rt.stripes),
		UseMeanProfile:  p.UseMeanProfile,
		KWindow:         p.KWindow,
		CleanupCost:     p.CleanupCost,
		BackoffFactor:   p.BackoffFactor,
		MaxRetries:      p.MaxRetries,
		Trace:           rt.tracer,
		Metrics:         rt.metrics,
	}
}

// Metrics returns the attached observability plane (nil when the
// runtime was built without one).
func (rt *Runtime) Metrics() *metrics.Plane { return rt.metrics }

// ReadCommitted reads a word outside any transaction, spinning past
// transient locks. Intended for post-run verification.
func (rt *Runtime) ReadCommitted(idx int) uint64 {
	m := &rt.meta[idx]
	for {
		l := m.lock.Load()
		if l&1 == 0 {
			v := rt.words[idx].Load()
			if m.lock.Load() == l {
				return v
			}
		}
		runtime.Gosched()
	}
}

// profileMean returns the EWMA of committed transaction durations in
// nanoseconds (0 = no data yet).
func (rt *Runtime) profileMean() float64 {
	return math.Float64frombits(rt.profBits.Load())
}

func (rt *Runtime) profileUpdate(ns float64) {
	const alpha = 0.05
	for {
		old := rt.profBits.Load()
		cur := math.Float64frombits(old)
		next := ns
		if cur != 0 {
			next = cur + alpha*(ns-cur)
		}
		if rt.profBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}
