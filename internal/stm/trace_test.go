package stm

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"txconflict/internal/metrics"
	"txconflict/internal/rng"
)

// collectTracer copies every TxTrace it receives (the pointer is only
// valid during the call).
type collectTracer struct {
	mu   sync.Mutex
	recs []TxTrace
}

func (c *collectTracer) TraceTx(t *TxTrace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := *t
	cp.Reads = append([]uint32(nil), t.Reads...)
	cp.Writes = append([]uint32(nil), t.Writes...)
	c.recs = append(c.recs, cp)
}

func (c *collectTracer) snapshot() []TxTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TxTrace(nil), c.recs...)
}

// countTracer only counts calls — the no-op sink for overhead tests.
type countTracer struct{ n int }

func (c *countTracer) TraceTx(*TxTrace) { c.n++ }

// TestTraceUncontendedRecords checks the per-block record contents on
// an uncontended runtime: worker attribution, outcome, retry count,
// and the deduplicated read/write footprints, in both locking modes.
func TestTraceUncontendedRecords(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		name := "eager"
		if lazy {
			name = "lazy"
		}
		t.Run(name, func(t *testing.T) {
			tr := &collectTracer{}
			cfg := DefaultConfig()
			cfg.Lazy = lazy
			cfg.Trace = tr
			rt := New(8, cfg)
			r := rng.New(1)
			for i := 0; i < 5; i++ {
				err := rt.AtomicWorker(3, r, func(tx *Tx) error {
					v := tx.Load(0)
					_ = tx.Load(0) // duplicate load must not widen the footprint
					_ = tx.Load(5)
					tx.Store(1, v+1)
					tx.Store(2, 7)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			recs := tr.snapshot()
			if len(recs) != 5 {
				t.Fatalf("got %d records, want 5", len(recs))
			}
			for i, rec := range recs {
				if rec.Worker != 3 || !rec.Committed || rec.Retries != 0 {
					t.Fatalf("record %d = %+v", i, rec)
				}
				if rec.KillsSuffered != 0 || rec.KillsIssued != 0 || rec.GraceWaitNs != 0 {
					t.Fatalf("record %d has conflict stats on an uncontended run: %+v", i, rec)
				}
				if rec.DurNs < 0 || rec.StartUnixNs == 0 {
					t.Fatalf("record %d timing: %+v", i, rec)
				}
				reads := append([]uint32(nil), rec.Reads...)
				writes := append([]uint32(nil), rec.Writes...)
				sort.Slice(reads, func(a, b int) bool { return reads[a] < reads[b] })
				sort.Slice(writes, func(a, b int) bool { return writes[a] < writes[b] })
				if len(writes) != 2 || writes[0] != 1 || writes[1] != 2 {
					t.Fatalf("record %d writes = %v, want [1 2]", i, rec.Writes)
				}
				if len(reads) != 2 || reads[0] != 0 || reads[1] != 5 {
					t.Fatalf("record %d reads = %v, want [0 5]", i, rec.Reads)
				}
			}
		})
	}
}

// TestTraceUserAbort checks that user-level aborts emit a
// non-committed record with the attempted footprint.
func TestTraceUserAbort(t *testing.T) {
	tr := &collectTracer{}
	cfg := DefaultConfig()
	cfg.Trace = tr
	rt := New(4, cfg)
	errNope := errors.New("nope")
	err := rt.Atomic(rng.New(1), func(tx *Tx) error {
		tx.Store(2, 1)
		return errNope
	})
	if !errors.Is(err, errNope) {
		t.Fatalf("err = %v", err)
	}
	recs := tr.snapshot()
	if len(recs) != 1 || recs[0].Committed || recs[0].Worker != -1 {
		t.Fatalf("records = %+v", recs)
	}
	if len(recs[0].Writes) != 1 || recs[0].Writes[0] != 2 {
		t.Fatalf("aborted footprint = %v, want [2]", recs[0].Writes)
	}
	if rt.ReadCommitted(2) != 0 {
		t.Fatal("user abort leaked a write")
	}
}

// TestTraceKillAccounting stages a requestor-wins kill and checks
// both sides of the ledger: the victim's record carries the suffered
// kill and the retry, the killer's carries the issued kill.
func TestTraceKillAccounting(t *testing.T) {
	tr := &collectTracer{}
	cfg := DefaultConfig()
	cfg.Strategy = nil // immediate resolution: the requestor kills at once
	cfg.MaxRetries = 0
	cfg.Trace = tr
	rt := New(1, cfg)
	root := rng.New(3)
	recvR, reqR := root.Split(), root.Split()

	held := make(chan struct{})
	cont := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // receiver (worker 0): holds the word lock until killed
		defer wg.Done()
		once := sync.OnceFunc(func() { close(held) })
		_ = rt.AtomicWorker(0, recvR, func(tx *Tx) error {
			tx.Store(0, 1)
			if tx.Attempts() == 0 {
				once()
				<-cont
			}
			tx.Store(0, 2) // instrumentation point: observes the kill
			return nil
		})
	}()
	<-held

	wg.Add(1)
	go func() { // requestor (worker 1): kills the receiver immediately
		defer wg.Done()
		_ = rt.AtomicWorker(1, reqR, func(tx *Tx) error {
			tx.Store(0, tx.Load(0)+10)
			return nil
		})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for rt.Stats.Kills.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("kill never landed (stats %v)", rt.Stats.Snapshot())
		}
		runtime.Gosched()
	}
	close(cont)
	wg.Wait()

	var victim, killer *TxTrace
	for i, rec := range tr.snapshot() {
		rec := rec
		switch rec.Worker {
		case 0:
			victim = &tr.recs[i]
		case 1:
			killer = &tr.recs[i]
		}
	}
	if victim == nil || killer == nil {
		t.Fatalf("missing records: %+v", tr.snapshot())
	}
	if victim.KillsSuffered == 0 || victim.Retries == 0 || !victim.Committed {
		t.Fatalf("victim record = %+v", victim)
	}
	if killer.KillsIssued == 0 || !killer.Committed {
		t.Fatalf("killer record = %+v", killer)
	}
}

// TestTraceGateOverhead is the hot-path guard for Config.Trace = nil:
//
//  1. the gate is correct — a tracer fires exactly once per block when
//     installed and never when absent;
//  2. the tracing-off path allocates nothing per transaction (all
//     instrumentation state lives behind the gate);
//  3. the tracing-off path through AtomicWorker costs within 5% of the
//     legacy Atomic entry (min of interleaved trials, so a leak of
//     instrumentation work ahead of the nil gate shows up as a stable
//     regression rather than scheduler noise);
//  4. both guarantees survive the batched group-commit path
//     (Config.CommitBatch > 0): the combiner reuses its scratch across
//     pooled descriptors, so a steady-state batched commit with
//     tracing off still allocates nothing and pays no gate cost;
//  5. both guarantees survive a live SetPolicy swap: the control
//     plane's per-attempt policy load is one atomic pointer read, so
//     a runtime whose policy has been replaced mid-flight costs the
//     same as one still on its construction-time policy;
//  6. the metrics plane (Config.Metrics) holds the same bar with the
//     histograms ON at the default phase-sampling rate: zero
//     allocations per transaction and within the 5% gate — metrics
//     are the always-on tier, so their cost budget is the hot path's,
//     not the tracer's.
func TestTraceGateOverhead(t *testing.T) {
	mk := func(traced *countTracer, batch int, plane *metrics.Plane) *Runtime {
		cfg := DefaultConfig()
		if traced != nil {
			cfg.Trace = traced
		}
		if batch > 0 {
			cfg.Lazy = true
			cfg.CommitBatch = batch
		}
		cfg.Metrics = plane
		return New(64, cfg)
	}

	ct := &countTracer{}
	rtOn := mk(ct, 0, nil)
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		_ = rtOn.Atomic(r, func(tx *Tx) error { tx.Store(i%64, 1); return nil })
	}
	if ct.n != 100 {
		t.Fatalf("tracer fired %d times for 100 blocks", ct.n)
	}

	rtOff := mk(nil, 0, nil)
	rtBatch := mk(nil, 4, nil)
	rtSwapped := mk(nil, 0, nil)
	rtMetrics := mk(nil, 0, metrics.NewPlane(2, 0))
	rtMetricsBatch := mk(nil, 4, metrics.NewPlane(2, 0))
	{ // exercise the control plane: replace the policy before measuring
		p := rtSwapped.Policy()
		p.CleanupCost++
		rtSwapped.SetPolicy(p)
	}
	if !raceEnabled { // the race detector randomizes sync.Pool reuse
		if avg := testing.AllocsPerRun(200, func() {
			_ = rtOff.AtomicWorker(0, r, func(tx *Tx) error { tx.Store(1, 2); return nil })
		}); avg > 0.5 { // tolerate a GC dropping the descriptor pool mid-run
			t.Errorf("tracing-off transaction allocates %.1f objects/op, want 0", avg)
		}
		if avg := testing.AllocsPerRun(200, func() {
			_ = rtBatch.AtomicWorker(0, r, func(tx *Tx) error { tx.Store(1, 2); return nil })
		}); avg > 0.5 {
			t.Errorf("batched tracing-off transaction allocates %.1f objects/op, want 0", avg)
		}
		if avg := testing.AllocsPerRun(200, func() {
			_ = rtSwapped.AtomicWorker(0, r, func(tx *Tx) error { tx.Store(1, 2); return nil })
		}); avg > 0.5 {
			t.Errorf("swapped-policy transaction allocates %.1f objects/op, want 0", avg)
		}
		if avg := testing.AllocsPerRun(200, func() {
			_ = rtMetrics.AtomicWorker(0, r, func(tx *Tx) error { tx.Store(1, 2); return nil })
		}); avg > 0.5 {
			t.Errorf("metrics-on transaction allocates %.1f objects/op, want 0", avg)
		}
		if avg := testing.AllocsPerRun(200, func() {
			_ = rtMetricsBatch.AtomicWorker(0, r, func(tx *Tx) error { tx.Store(1, 2); return nil })
		}); avg > 0.5 {
			t.Errorf("metrics-on batched transaction allocates %.1f objects/op, want 0", avg)
		}
	}

	if testing.Short() {
		return
	}
	const iters = 200_000
	loop := func(rt *Runtime, worker int) float64 {
		lr := rng.New(7)
		body := func(tx *Tx) error { tx.Store(3, 4); return nil }
		start := time.Now()
		if worker < 0 {
			for i := 0; i < iters; i++ {
				_ = rt.Atomic(lr, body)
			}
		} else {
			for i := 0; i < iters; i++ {
				_ = rt.AtomicWorker(worker, lr, body)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / iters
	}
	for _, v := range []struct {
		name string
		rt   *Runtime
	}{
		{"eager", rtOff},
		{"lazy-batched", rtBatch},
		{"policy-swapped", rtSwapped},
		{"eager-metrics-on", rtMetrics},
		{"lazy-batched-metrics-on", rtMetricsBatch},
	} {
		// Interleaved min-of-5 trials absorb most scheduler noise, but
		// `go test ./...` runs whole packages in parallel and a noisy
		// neighbour can still skew one side of a comparison. A genuine
		// overhead regression skews every repetition the same way, so
		// retry the measurement and fail only when the gate is
		// exceeded on every attempt.
		var base, off float64
		for attempt := 0; attempt < 3; attempt++ {
			base, off = 1e18, 1e18
			for trial := 0; trial < 5; trial++ {
				if v := loop(v.rt, -1); v < base {
					base = v
				}
				if v := loop(v.rt, 0); v < off {
					off = v
				}
			}
			if off <= base*1.05 {
				break
			}
		}
		if off > base*1.05 {
			t.Errorf("%s tracing-off hot path: %.1f ns/op vs %.1f ns/op baseline (>5%% overhead)",
				v.name, off, base)
		}
	}
}

// BenchmarkUncontendedTxTraced is the traced counterpart of
// BenchmarkUncontendedTx: same single-word transactions with a
// recording no-op sink, so `go test -bench 'UncontendedTx'` prints
// the cost of full instrumentation next to the gated baseline.
func BenchmarkUncontendedTxTraced(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Trace = &countTracer{}
	rt := New(64, cfg)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rt.AtomicWorker(0, r, func(tx *Tx) error {
			tx.Store(i%64, uint64(i))
			return nil
		})
	}
}
