package stm

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/rng"
	"txconflict/internal/strategy"
)

func TestPolicyStringAndNormalize(t *testing.T) {
	p := Policy{Resolution: core.RequestorWins, Strategy: strategy.UniformRW{}, KWindow: 64, CommitBatch: 4}
	if got := p.String(); got != "requestor-wins/RRW/kw64/b4" {
		t.Fatalf("String() = %q", got)
	}
	p = Policy{Resolution: core.RequestorAborts, Hybrid: true}
	if got := p.String(); got != "Hybrid/NO_DELAY" {
		t.Fatalf("String() = %q", got)
	}
	n := Policy{BackoffFactor: -1, CommitBatch: -2, KWindow: -3, MaxRetries: -4}
	n.normalize()
	if n.BackoffFactor != 1 || n.CommitBatch != 0 || n.KWindow != 0 || n.MaxRetries != 0 {
		t.Fatalf("normalize left %+v", n)
	}
}

func TestResolutionForHybrid(t *testing.T) {
	p := Policy{Resolution: core.RequestorWins, Hybrid: true}
	if p.resolutionFor(2) != core.RequestorAborts {
		t.Fatal("hybrid k=2 is not requestor-aborts")
	}
	if p.resolutionFor(3) != core.RequestorWins {
		t.Fatal("hybrid k=3 is not requestor-wins")
	}
	p.Hybrid = false
	if p.resolutionFor(2) != core.RequestorWins {
		t.Fatal("non-hybrid ignored Resolution")
	}
}

func TestSetPolicySemantics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KWindow = 8
	rt := New(8, cfg)
	if rt.PolicySwaps() != 0 {
		t.Fatal("fresh runtime reports swaps")
	}

	// Swap in a different policy; the runtime must serve it back and
	// count the swap.
	p := rt.Policy()
	p.Resolution = core.RequestorAborts
	p.Strategy = strategy.ExpRA{}
	p.MaxRetries = 7
	rt.SetPolicy(p)
	if got := rt.Policy(); got.Resolution != core.RequestorAborts || got.MaxRetries != 7 {
		t.Fatalf("Policy() = %+v after swap", got)
	}
	if rt.PolicySwaps() != 1 {
		t.Fatalf("swaps = %d, want 1", rt.PolicySwaps())
	}
	// Config() folds the live policy in, so report labels stay
	// truthful after a swap.
	if c := rt.Config(); c.Policy != core.RequestorAborts || c.MaxRetries != 7 {
		t.Fatalf("Config() = %+v did not track the swap", c)
	}

	// Eager runtimes silently drop CommitBatch — the combiner is a
	// lazy-commit structure.
	p.CommitBatch = 8
	rt.SetPolicy(p)
	if got := rt.Policy().CommitBatch; got != 0 {
		t.Fatalf("eager runtime kept CommitBatch=%d", got)
	}

	// Nonsense values are clamped like New clamps them.
	rt.SetPolicy(Policy{BackoffFactor: -2, KWindow: -1, MaxRetries: -1})
	if got := rt.Policy(); got.BackoffFactor != 1 || got.KWindow != 0 || got.MaxRetries != 0 {
		t.Fatalf("SetPolicy skipped normalization: %+v", got)
	}
}

func TestSetPolicyKWindowResize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KWindow = 4
	rt := New(8, cfg)
	rt.kEst.Load().observe(5)
	if rt.KEstimate() == 0 {
		t.Fatal("estimator ignored the observation")
	}
	// Same window: the estimator (and its history) must survive.
	p := rt.Policy()
	p.MaxRetries = 3
	rt.SetPolicy(p)
	if rt.KEstimate() == 0 {
		t.Fatal("same-size swap discarded the estimator history")
	}
	// Resize: fresh, empty window.
	p.KWindow = 16
	rt.SetPolicy(p)
	if rt.KEstimate() != 0 {
		t.Fatal("resize kept stale history")
	}
	if got := len(rt.kEst.Load().ring); got != 16 {
		t.Fatalf("ring sized %d, want 16", got)
	}
	// Disable: estimator goes away entirely.
	p.KWindow = 0
	rt.SetPolicy(p)
	if rt.kEst.Load() != nil {
		t.Fatal("KWindow=0 left an estimator installed")
	}
	if rt.KEstimate() != 0 {
		t.Fatal("KEstimate nonzero with no estimator")
	}
}

// TestLazyRuntimeOpensLaneLater pins the structural guarantee behind
// the control plane: every lazy runtime allocates its combiner lanes
// up front, so a SetPolicy can open group commit on a runtime built
// with CommitBatch=0.
func TestLazyRuntimeOpensLaneLater(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lazy = true
	rt := New(64, cfg)
	if rt.batch == nil {
		t.Fatal("lazy runtime built without combiner lanes")
	}
	p := rt.Policy()
	p.CommitBatch = 4
	rt.SetPolicy(p)
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		_ = rt.AtomicWorker(0, r, func(tx *Tx) error { tx.Store(i%64, uint64(i)); return nil })
	}
	if rt.Stats.Commits.Load() < 200 {
		t.Fatalf("commits = %d", rt.Stats.Commits.Load())
	}
	// And close it again; commits must keep flowing on the direct path.
	p.CommitBatch = 0
	rt.SetPolicy(p)
	for i := 0; i < 200; i++ {
		_ = rt.AtomicWorker(0, r, func(tx *Tx) error { tx.Store(i%64, uint64(i)); return nil })
	}
	if rt.Stats.Commits.Load() < 400 {
		t.Fatalf("commits = %d after closing the lane", rt.Stats.Commits.Load())
	}
}

// churnPolicies is the cycle of policies the churn tests rotate
// through: resolution flips, strategy changes, hybrid, estimator
// resizes, lane open/close — every dynamic knob the control plane can
// touch.
func churnPolicies() []Policy {
	return []Policy{
		{Resolution: core.RequestorWins, Strategy: strategy.UniformRW{}, BackoffFactor: 1, MaxRetries: 64},
		{Resolution: core.RequestorAborts, Strategy: strategy.ExpRA{}, KWindow: 16, BackoffFactor: 2, MaxRetries: 64},
		{Resolution: core.RequestorWins, Hybrid: true, Strategy: strategy.Hybrid{}, KWindow: 64, CommitBatch: 4, BackoffFactor: 1, MaxRetries: 64},
		{Resolution: core.RequestorWins, CommitBatch: 2, BackoffFactor: 1, MaxRetries: 64},
		{Resolution: core.RequestorAborts, Strategy: strategy.ExpRA{}, KWindow: 16, CommitBatch: 8, BackoffFactor: 1},
	}
}

// foldChurnPolicies rotates the knobs that matter to the commutative
// folding path: the fold gate itself, the lane open/closed, and a
// kill-heavy requestor-aborts phase, so delta-writes recorded under
// one policy regularly commit (or die) under another.
func foldChurnPolicies() []Policy {
	return []Policy{
		{Resolution: core.RequestorWins, CommitBatch: 4, FoldCommutative: true, BackoffFactor: 1, MaxRetries: 64},
		{Resolution: core.RequestorAborts, Strategy: strategy.ExpRA{}, CommitBatch: 4, BackoffFactor: 1, MaxRetries: 64},
		{Resolution: core.RequestorAborts, Strategy: strategy.ExpRA{}, CommitBatch: 8, FoldCommutative: true, KWindow: 16, BackoffFactor: 1, MaxRetries: 64},
		{Resolution: core.RequestorWins, Strategy: strategy.UniformRW{}, BackoffFactor: 1, MaxRetries: 64},
		{Resolution: core.RequestorWins, CommitBatch: 2, FoldCommutative: true, BackoffFactor: 1, MaxRetries: 64},
	}
}

// TestFoldPolicyChurn is the kill-heavy stress proof for commutative
// folding: workers hammer the SAME hot words with a mix of tx.Add
// delta-writes and plain load/store increments while a churner flips
// FoldCommutative (and the lane, and the kill policy) mid-run. The
// invariant is exact, not statistical: each hot word must equal the
// total committed increments targeting it, whether those increments
// were folded by the combiner, written back in roster order, or
// lowered to plain writes because the latched policy had folding off.
// Run under -race this is also the data-race proof for the fold path.
func TestFoldPolicyChurn(t *testing.T) {
	modes := []struct {
		name string
		cfg  func() Config
	}{
		{"eager", func() Config { return DefaultConfig() }},
		{"lazy", func() Config { c := DefaultConfig(); c.Lazy = true; return c }},
		{"lazy+batched", func() Config {
			c := DefaultConfig()
			c.Lazy = true
			c.CommitBatch = 4
			c.FoldCommutative = true
			return c
		}},
	}
	const workers = 4
	dur := 150 * time.Millisecond
	if testing.Short() {
		dur = 40 * time.Millisecond
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			cfg := mode.cfg()
			cfg.CleanupCost = time.Microsecond
			cfg.MaxRetries = 256
			rt := New(2+workers, cfg)
			stop := make(chan struct{})
			var wg sync.WaitGroup

			wg.Add(1)
			go func() {
				defer wg.Done()
				pols := foldChurnPolicies()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					rt.SetPolicy(pols[i%len(pols)])
					time.Sleep(20 * time.Microsecond)
				}
			}()

			// Every committed transaction increments BOTH hot words
			// exactly once — one via Add, one via a plain
			// read-modify-write — with the roles swapped on odd rounds
			// so each word sees both access kinds from every worker
			// (the combiner's mixed delta/plain fallback path).
			counts := make([]uint64, workers)
			root := rng.New(31)
			for w := 0; w < workers; w++ {
				w := w
				r := root.Split()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						addWord, storeWord := 0, 1
						if i%2 == 1 {
							addWord, storeWord = 1, 0
						}
						err := rt.AtomicWorker(w, r, func(tx *Tx) error {
							tx.Add(addWord, 1)
							tx.Store(storeWord, tx.Load(storeWord)+1)
							tx.Add(2+w, 1) // private word, delta-only
							return nil
						})
						if err != nil {
							panic(fmt.Sprintf("worker %d: %v", w, err))
						}
						counts[w]++
					}
				}()
			}
			time.Sleep(dur)
			close(stop)
			wg.Wait()

			var total uint64
			for w := 0; w < workers; w++ {
				total += counts[w]
				if got := rt.ReadCommitted(2 + w); got != counts[w] {
					t.Errorf("worker %d private word = %d, committed %d transactions", w, got, counts[w])
				}
			}
			for word := 0; word <= 1; word++ {
				if got := rt.ReadCommitted(word); got != total {
					t.Errorf("hot word %d = %d, want %d committed increments", word, got, total)
				}
			}
			if total == 0 {
				t.Fatal("no transactions committed under churn")
			}
			if rt.PolicySwaps() == 0 {
				t.Fatal("churner never swapped")
			}
			t.Logf("%s: %d commits, %d folded, under %d policy swaps",
				mode.name, total, rt.Stats.FoldedCommits.Load(), rt.PolicySwaps())
		})
	}
}

// TestSetPolicyChurn hammers one contended arena with worker
// goroutines while another goroutine swaps the policy as fast as it
// can, across all three commit modes. The committed state must stay
// exact: every worker counts its own committed increments of a shared
// word and a private word, and the arena must agree with those counts
// when the dust settles — a policy swap may change who wins a
// conflict, never what a committed transaction wrote. Run under -race
// this is also the data-race proof for the control plane.
func TestSetPolicyChurn(t *testing.T) {
	modes := []struct {
		name string
		cfg  func() Config
	}{
		{"eager", func() Config { return DefaultConfig() }},
		{"lazy", func() Config { c := DefaultConfig(); c.Lazy = true; return c }},
		{"lazy+batched", func() Config {
			c := DefaultConfig()
			c.Lazy = true
			c.CommitBatch = 4
			return c
		}},
	}
	const workers = 4
	dur := 150 * time.Millisecond
	if testing.Short() {
		dur = 40 * time.Millisecond
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			cfg := mode.cfg()
			cfg.CleanupCost = time.Microsecond
			cfg.MaxRetries = 256
			rt := New(1+workers, cfg)
			stop := make(chan struct{})
			var wg sync.WaitGroup

			// The churner: rotate through every dynamic knob,
			// throttled just enough that it cannot starve the workers
			// on a single P.
			wg.Add(1)
			go func() {
				defer wg.Done()
				pols := churnPolicies()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					rt.SetPolicy(pols[i%len(pols)])
					time.Sleep(20 * time.Microsecond)
				}
			}()

			counts := make([]uint64, workers)
			root := rng.New(9)
			for w := 0; w < workers; w++ {
				w := w
				r := root.Split()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						err := rt.AtomicWorker(w, r, func(tx *Tx) error {
							tx.Store(0, tx.Load(0)+1)     // shared hot word
							tx.Store(1+w, tx.Load(1+w)+1) // private word
							return nil
						})
						if err != nil {
							panic(fmt.Sprintf("worker %d: %v", w, err))
						}
						counts[w]++
					}
				}()
			}
			time.Sleep(dur)
			close(stop)
			wg.Wait()

			var total uint64
			for w := 0; w < workers; w++ {
				total += counts[w]
				if got := rt.ReadCommitted(1 + w); got != counts[w] {
					t.Errorf("worker %d private word = %d, committed %d transactions", w, got, counts[w])
				}
			}
			if got := rt.ReadCommitted(0); got != total {
				t.Errorf("shared word = %d, want %d committed increments", got, total)
			}
			if total == 0 {
				t.Fatal("no transactions committed under churn")
			}
			if rt.PolicySwaps() == 0 {
				t.Fatal("churner never swapped")
			}
			t.Logf("%s: %d commits under %d policy swaps", mode.name, total, rt.PolicySwaps())
		})
	}
}
