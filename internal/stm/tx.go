package stm

import (
	"sort"
	"time"

	"sync/atomic"

	"txconflict/internal/metrics"
	"txconflict/internal/rng"
)

// Descriptor state: one atomic word packing (epoch << stateEpochShift
// | status). Only the descriptor's own goroutine advances the epoch
// (once per attempt, in reset); requestors flip the status of exactly
// one attempt with a full-state CAS, so a kill can never land on a
// later attempt of a reused descriptor. The three batch outcomes are
// stamped by a group-commit combiner (batch.go) into descriptors
// queued at its shard; they are the only terminal statuses a waiter
// retires on, so a drained descriptor is stamped exactly once.
const (
	statusActive      uint64 = iota // running optimistically
	statusKilled                    // a requestor won the conflict
	statusNoReturn                  // committing, past the point of no return
	statusBatchDone                 // group commit: the combiner committed this write set
	statusBatchFail                 // group commit: validation/admission failed, retry
	statusBatchKilled               // group commit: drained while killed, retry as victim

	stateStatusMask uint64 = 7
	stateEpochShift        = 3
)

// txAbort is the panic value used to unwind an aborted transaction.
// The reason is the metrics taxonomy category — every unwind site
// states which kind of conflict killed the attempt, so the metrics
// plane and the trace layer attribute aborts without string parsing.
type txAbort struct{ reason metrics.AbortReason }

// undoEntry records a pre-image for eager in-place writes.
type undoEntry struct {
	idx    int
	oldVal uint64
}

type readEntry struct {
	idx int
	ver uint64
}

// Tx is a transaction descriptor. It is reused across retries of the
// same atomic block and must not escape the transaction function;
// per-attempt identity lives in the state word's epoch.
type Tx struct {
	rt  *Runtime
	rng *rng.Rand

	// pol is the conflict policy this attempt runs under, latched
	// from the runtime's atomic policy slot once per attempt (reset):
	// a SetPolicy racing a running attempt never tears its view, and
	// every retry picks up the newest policy.
	pol *Policy

	// state packs the attempt epoch and the status; see the const
	// block above. Read and CASed by requestors resolving conflicts
	// against this descriptor.
	state   atomic.Uint64
	waiters atomic.Int32 // requestors currently waiting on me
	// irrevocable, startNanos and attempts are read by *other*
	// goroutines (requestors inspecting their receiver in graceFor),
	// hence atomic.
	irrevocable atomic.Bool
	startNanos  atomic.Int64
	attempts    atomic.Int32

	// rv holds the per-stripe read snapshot, taken lazily: 0 means
	// "stripe not snapshotted yet", and any nonzero word version
	// forces an extension on first contact. wvs is the per-stripe
	// commit-version scratch (0 = stripe not written this commit).
	rv  []uint64
	wvs []uint64

	reads []readEntry

	// traced gates all instrumentation below it (Config.Trace != nil,
	// latched per Atomic call); tr accumulates the block's trace and
	// reuses its footprint buffers across pooled descriptors.
	traced bool
	tr     TxTrace

	// mx is this worker's metrics shard (nil when the runtime has no
	// metrics plane), latched per Atomic call like the tracer;
	// blockStart is the first attempt's start (ns), the base of the
	// committed-block latency observation; lastAbort is the taxonomy
	// reason of the most recent aborted attempt.
	mx         *metrics.Shard
	blockStart int64
	lastAbort  metrics.AbortReason

	// Lazy mode: buffered write set.
	writeIdx  []int
	writeVals map[int]uint64
	// Commutative delta-writes (tx.Add under Policy.FoldCommutative
	// with the combiner lane open): blind `word += delta` intents with
	// no read entry, kept apart from the plain write set so the
	// combiner can fold them. addVals is allocated on first use and
	// reused across pooled descriptors. foldedN is written by the
	// combiner (before the outcome stamp, which orders it) with the
	// number of this member's deltas that were folded.
	addIdx  []int
	addVals map[int]uint64
	foldedN int
	// Eager mode: in-place writes with undo log.
	undo []undoEntry

	lockedUpTo int // lazy commit locks acquired (rollback bound)

	// Group commit (batch.go). batchNext links the descriptor into its
	// shard's queue while it waits for a combiner; the remaining slices
	// are the combiner-side scratch (roster, merged lock plan, per-lock
	// owners and pre-acquisition versions, per-member outcomes,
	// admitted write words), reused across pooled descriptors so a
	// steady-state batched commit allocates nothing.
	batchNext     atomic.Pointer[Tx]
	batchMembers  []*Tx
	batchLocks    []int
	batchOwners   []*Tx
	batchVers     []uint64
	batchOuts     []uint64
	batchAdmitted []int
	batchFolds    []int    // per lock word: -1 plain-written, else delta count
	batchSums     []uint64 // per lock word: folded delta sum
}

// epoch returns the current attempt epoch.
func (tx *Tx) epoch() uint64 { return tx.state.Load() >> stateEpochShift }

// killed reports whether the current attempt was killed by a
// requestor. Irrevocable transactions ignore kills (they cannot be
// victims).
func (tx *Tx) killed() bool {
	return !tx.irrevocable.Load() && tx.state.Load()&stateStatusMask == statusKilled
}

// Attempts reports how many times the current atomic block aborted.
func (tx *Tx) Attempts() int { return int(tx.attempts.Load()) }

// Atomic runs fn transactionally, retrying on conflict; it returns
// fn's error for user-level aborts. fn must confine all shared access
// to tx.Load/tx.Store and must be safe to re-execute.
//
// Descriptors are pooled across Atomic calls. This is safe *because*
// of the epoch protocol: a requestor that still holds a pointer to a
// recycled descriptor can only act on it through a full-state CAS
// against the (epoch, status) it captured, and that epoch is gone
// forever once the descriptor is reset — the state word survives
// recycling and its epoch only grows.
func (rt *Runtime) Atomic(r *rng.Rand, fn func(tx *Tx) error) error {
	return rt.AtomicWorker(-1, r, fn)
}

// AtomicWorker is Atomic with a caller-supplied worker id, recorded
// in the block's TxTrace when tracing is enabled (Config.Trace). The
// id has no semantic effect on execution; scenario.STMRunner passes
// its worker index so per-worker trace buffers stay contention-free.
func (rt *Runtime) AtomicWorker(worker int, r *rng.Rand, fn func(tx *Tx) error) error {
	tx, _ := rt.txPool.Get().(*Tx)
	if tx == nil {
		tx = &Tx{
			rt:  rt,
			rv:  make([]uint64, len(rt.stripes)),
			wvs: make([]uint64, len(rt.stripes)),
		}
		if rt.lazy {
			tx.writeVals = make(map[int]uint64, 8)
		}
	}
	tx.rng = r
	tx.attempts.Store(0)
	tx.blockStart = 0
	tx.mx = nil
	if rt.metrics != nil {
		tx.mx = rt.metrics.Shard(worker)
	}
	if tx.traced = rt.tracer != nil; tx.traced {
		tx.beginTrace(worker)
	}
	for {
		tx.reset()
		err, aborted := tx.attempt(fn)
		if !aborted {
			if tx.traced {
				tx.emitTrace(err == nil)
			}
			tx.rng = nil
			rt.txPool.Put(tx)
			return err
		}
		rt.Stats.Aborts.Add(1)
		tx.attempts.Add(1)
		if mr := tx.pol.MaxRetries; mr > 0 && int(tx.attempts.Load()) >= mr && !tx.irrevocable.Load() {
			rt.fallback.Lock()
			tx.irrevocable.Store(true)
			rt.Stats.Irrevocable.Add(1)
			if tx.mx != nil {
				tx.mx.Abort(metrics.AbortMaxRetries)
			}
			if tx.traced {
				tx.tr.Irrevocable = true
			}
		}
	}
}

// reset opens a fresh attempt: a new epoch (so stale requestors from
// the previous attempt can neither kill us nor keep waiting on us),
// the current conflict policy, and cleared speculative state.
func (tx *Tx) reset() {
	tx.pol = tx.rt.pol.Load()
	tx.state.Store((tx.epoch() + 1) << stateEpochShift) // status = active
	now := time.Now().UnixNano()
	tx.startNanos.Store(now)
	if tx.blockStart == 0 {
		tx.blockStart = now
	}
	clear(tx.rv)
	clear(tx.wvs)
	tx.reads = tx.reads[:0]
	tx.writeIdx = tx.writeIdx[:0]
	if tx.writeVals != nil {
		clear(tx.writeVals)
	}
	tx.addIdx = tx.addIdx[:0]
	if tx.addVals != nil {
		clear(tx.addVals)
	}
	tx.foldedN = 0
	tx.undo = tx.undo[:0]
	tx.lockedUpTo = 0
}

// attempt executes fn once; aborted reports whether it must be
// retried.
func (tx *Tx) attempt(fn func(tx *Tx) error) (err error, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(txAbort)
			if !ok {
				// A panic out of user code must not leak encounter
				// locks or the irrevocable token — release both
				// before letting it unwind.
				tx.rollback()
				tx.releaseToken()
				panic(r)
			}
			tx.lastAbort = ab.reason
			if tx.traced {
				tx.noteAbort(ab.reason)
			}
			if tx.mx != nil {
				tx.mx.ObserveAttempt(time.Now().UnixNano() - tx.startNanos.Load())
				tx.mx.Abort(ab.reason)
			}
			tx.rollback()
			aborted = true
		}
	}()
	err = fn(tx)
	if err != nil {
		// User-level abort: discard speculative state, no retry.
		if tx.traced {
			tx.captureFootprint()
		}
		tx.rollback()
		tx.releaseToken()
		if tx.mx != nil {
			tx.mx.ObserveAttempt(time.Now().UnixNano() - tx.startNanos.Load())
			tx.mx.Abort(metrics.AbortExplicit)
		}
		return err, false
	}
	if tx.traced {
		tx.captureFootprint()
	}
	tx.commit()
	tx.releaseToken()
	tx.rt.Stats.Commits.Add(1)
	now := time.Now().UnixNano()
	tx.rt.profileUpdate(float64(now - tx.startNanos.Load()))
	if tx.mx != nil {
		tx.mx.ObserveAttempt(now - tx.startNanos.Load())
		tx.mx.ObserveCommit(now - tx.blockStart)
	}
	return nil, false
}

func (tx *Tx) releaseToken() {
	if tx.irrevocable.Load() {
		tx.irrevocable.Store(false)
		tx.rt.fallback.Unlock()
	}
}

// rollback undoes all speculative effects of the current attempt.
func (tx *Tx) rollback() {
	// Eager: restore pre-images in reverse order, then release the
	// encounter locks with *fresh* stripe versions. Restoring the
	// original version would be an ABA hazard: a reader that loaded
	// the lock word before we acquired, the value while our dirty
	// in-place write was visible, and the lock word again after this
	// rollback would see an unchanged version and accept the
	// uncommitted value. Bumping the stripe clock makes its recheck
	// fail instead (at the cost of spurious validation aborts on the
	// identical pre-image, the standard undo-log STM trade).
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		tx.rt.words[u.idx].Store(u.oldVal)
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		s := tx.rt.stripeOf(u.idx)
		if tx.wvs[s] == 0 {
			tx.wvs[s] = tx.rt.stripes[s].clock.Add(1)
		}
		m := &tx.rt.meta[u.idx]
		m.owner.Store(nil)
		m.lock.Store(tx.wvs[s] << 1)
	}
	if len(tx.undo) > 0 {
		tx.undo = tx.undo[:0]
		clear(tx.wvs)
	}
	// Lazy: release partially acquired commit locks. No write-back
	// happened yet (that is after the no-return point), so the
	// original versions are still truthful.
	for i := 0; i < tx.lockedUpTo; i++ {
		m := &tx.rt.meta[tx.writeIdx[i]]
		m.owner.Store(nil)
		l := m.lock.Load()
		m.lock.Store(l &^ 1)
	}
	tx.lockedUpTo = 0
	// Retire this attempt's epoch: the locks are gone, so any
	// requestor still holding our captured (epoch, status) must see
	// the attempt as over — its kill CAS has to miss, keeping
	// Stats.Kills honest even while the descriptor idles in the pool
	// (the next reset bumps the epoch again).
	tx.state.Add(1 << stateEpochShift)
}

// abort unwinds the current attempt, attributed to one taxonomy
// reason.
func (tx *Tx) abort(reason metrics.AbortReason) {
	panic(txAbort{reason: reason})
}

// checkKilled aborts if a requestor killed this transaction.
func (tx *Tx) checkKilled() {
	if tx.killed() {
		tx.abort(metrics.AbortKilled)
	}
}

// ownsLock reports whether tx holds the encounter/commit lock on idx.
func (tx *Tx) ownsLock(idx int) bool {
	return tx.rt.meta[idx].owner.Load() == tx
}

// extend adopts the latest snapshot of stripe s after revalidating
// the whole read set (TL2/TinySTM-style snapshot extension). The
// stripe clock is read *before* validation: any commit that races
// past the loaded value either touches a read word (validation
// fails) or leaves versions above the adopted snapshot (a later
// extension catches it). Called on every validation miss, including
// the first contact with a stripe whose words have committed
// history.
func (tx *Tx) extend(s int) {
	c := tx.rt.stripes[s].clock.Load()
	for _, re := range tx.reads {
		l := tx.rt.meta[re.idx].lock.Load()
		if l&1 == 1 {
			if !tx.ownsLock(re.idx) {
				tx.rt.Stats.SelfAborts.Add(1)
				tx.abort(metrics.AbortValidation)
			}
			continue
		}
		if l>>1 != re.ver {
			tx.rt.Stats.SelfAborts.Add(1)
			tx.abort(metrics.AbortValidation)
		}
	}
	tx.rv[s] = c
	tx.rt.Stats.Extensions.Add(1)
}

// Load reads word idx transactionally.
func (tx *Tx) Load(idx int) uint64 {
	tx.checkKilled()
	if !tx.rt.lazy {
		if tx.ownsLock(idx) {
			return tx.rt.words[idx].Load()
		}
	} else if v, ok := tx.writeVals[idx]; ok {
		return v
	}
	m := &tx.rt.meta[idx]
	for {
		l1 := m.lock.Load()
		if l1&1 == 1 {
			tx.onLocked(idx)
			tx.checkKilled()
			continue
		}
		if s := tx.rt.stripeOf(idx); l1>>1 > tx.rv[s] {
			// The word changed after our stripe snapshot (or the
			// stripe has no snapshot yet); extend or die.
			tx.extend(s)
			continue
		}
		v := tx.rt.words[idx].Load()
		if m.lock.Load() != l1 {
			continue // raced with a writer; retry the read
		}
		tx.reads = append(tx.reads, readEntry{idx: idx, ver: l1 >> 1})
		if len(tx.addIdx) > 0 {
			v = tx.foldPendingDelta(idx, v)
		}
		return v
	}
}

// foldPendingDelta lowers a pending delta on idx into a plain
// buffered write once the word has been read: the transaction is no
// longer blind on the word, so the delta loses its commutative status
// and rejoins the ordinary read+store footprint (the read entry was
// just recorded by Load).
func (tx *Tx) foldPendingDelta(idx int, v uint64) uint64 {
	d, ok := tx.addVals[idx]
	if !ok {
		return v
	}
	delete(tx.addVals, idx)
	tx.dropAddIdx(idx)
	v += d
	if _, ok := tx.writeVals[idx]; !ok {
		tx.writeIdx = append(tx.writeIdx, idx)
	}
	tx.writeVals[idx] = v
	return v
}

// dropAddIdx removes idx from the (unsorted) delta index list.
func (tx *Tx) dropAddIdx(idx int) {
	for i, w := range tx.addIdx {
		if w == idx {
			tx.addIdx[i] = tx.addIdx[len(tx.addIdx)-1]
			tx.addIdx = tx.addIdx[:len(tx.addIdx)-1]
			return
		}
	}
}

// Store writes val to word idx transactionally.
func (tx *Tx) Store(idx int, val uint64) {
	tx.checkKilled()
	if tx.rt.lazy {
		if _, ok := tx.writeVals[idx]; !ok {
			tx.writeIdx = append(tx.writeIdx, idx)
			if len(tx.addIdx) > 0 {
				// A plain write overwrites whatever the word held, so
				// a pending delta on it is dead: x += d; x = v ends at
				// v regardless of d.
				if _, ok := tx.addVals[idx]; ok {
					delete(tx.addVals, idx)
					tx.dropAddIdx(idx)
				}
			}
		}
		tx.writeVals[idx] = val
		return
	}
	// Eager: acquire the encounter lock on first touch, then write
	// in place.
	if !tx.ownsLock(idx) {
		tx.acquire(idx)
	}
	tx.rt.words[idx].Store(val)
}

// Add applies `word idx += delta` transactionally. Its contract is
// exactly Store(idx, Load(idx)+delta) — and that is literally how it
// executes on eager runtimes, with the lazy combiner lane closed, on
// the irrevocable slow path, or while Policy.FoldCommutative is off.
// When the attempt's latched policy has folding enabled and the
// commit is headed for the group-commit combiner, the delta is
// instead recorded blind: no read entry, no buffered value, just a
// commutative `+= delta` intent the combiner folds with every other
// delta to the same word in the batch (see batch.go). A subsequent
// Load or Store of the same word inside the transaction demotes the
// delta back to the ordinary read/write footprint, so mixed access
// keeps plain sequential semantics.
func (tx *Tx) Add(idx int, delta uint64) {
	tx.checkKilled()
	if !tx.rt.lazy || tx.rt.batch == nil || tx.pol.CommitBatch == 0 ||
		!tx.pol.FoldCommutative || tx.irrevocable.Load() {
		tx.Store(idx, tx.Load(idx)+delta)
		return
	}
	if _, ok := tx.writeVals[idx]; ok {
		// The word's post-transaction value is already decided by a
		// buffered plain write; fold the delta into it.
		tx.writeVals[idx] += delta
		return
	}
	if tx.addVals == nil {
		tx.addVals = make(map[int]uint64, 4)
	}
	if _, ok := tx.addVals[idx]; !ok {
		tx.addIdx = append(tx.addIdx, idx)
	}
	tx.addVals[idx] += delta
}

// acquire takes the encounter lock on idx (eager mode), logging the
// pre-image.
func (tx *Tx) acquire(idx int) {
	m := &tx.rt.meta[idx]
	for {
		tx.checkKilled()
		l := m.lock.Load()
		if l&1 == 1 {
			tx.onLocked(idx)
			continue
		}
		if s := tx.rt.stripeOf(idx); l>>1 > tx.rv[s] {
			tx.extend(s)
			continue
		}
		if m.lock.CompareAndSwap(l, l|1) {
			m.owner.Store(tx)
			tx.undo = append(tx.undo, undoEntry{
				idx:    idx,
				oldVal: tx.rt.words[idx].Load(),
			})
			return
		}
	}
}

// commit finalizes the transaction.
func (tx *Tx) commit() {
	if tx.rt.lazy {
		tx.commitLazy()
	} else {
		tx.commitEager()
	}
}

// enterNoReturn transitions to the unkillable commit phase. A kill
// that lands first wins: the transaction obeys it and aborts.
func (tx *Tx) enterNoReturn() {
	st := tx.state.Load()
	if tx.irrevocable.Load() {
		tx.state.Store(st&^stateStatusMask | statusNoReturn)
		return
	}
	if st&stateStatusMask != statusActive ||
		!tx.state.CompareAndSwap(st, st&^stateStatusMask|statusNoReturn) {
		tx.rt.Stats.SelfAborts.Add(1)
		tx.abort(metrics.AbortKilled)
	}
}

// validateReads re-checks the read set at commit time.
func (tx *Tx) validateReads() {
	for _, re := range tx.reads {
		l := tx.rt.meta[re.idx].lock.Load()
		if l&1 == 1 {
			if !tx.ownsLock(re.idx) {
				tx.rt.Stats.SelfAborts.Add(1)
				tx.abort(metrics.AbortValidation)
			}
			continue
		}
		if l>>1 != re.ver {
			tx.rt.Stats.SelfAborts.Add(1)
			tx.abort(metrics.AbortValidation)
		}
	}
}

// stampStripes advances the clock of every stripe in the write set
// once and records the new versions in tx.wvs.
func (tx *Tx) stampStripes(idxOf func(i int) int, n int) {
	for i := 0; i < n; i++ {
		s := tx.rt.stripeOf(idxOf(i))
		if tx.wvs[s] == 0 {
			tx.wvs[s] = tx.rt.stripes[s].clock.Add(1)
		}
	}
}

func (tx *Tx) commitEager() {
	if len(tx.undo) == 0 {
		// Read-only: per-read validation against rv suffices.
		tx.checkKilled()
		return
	}
	tx.enterNoReturn()
	// Phase timers, 1-in-N sampled (metrics.Plane.SampleN): eager
	// commits have no lock-acquisition or write-back phase — both
	// happened at encounter time — so only validation and the
	// clock-advance/release pair are attributed.
	sampled := tx.mx != nil && tx.mx.Sample()
	var t0 int64
	if sampled {
		t0 = time.Now().UnixNano()
	}
	tx.validateReads()
	if sampled {
		t1 := time.Now().UnixNano()
		tx.mx.Phase(metrics.PhaseValidate, t1-t0)
		t0 = t1
	}
	tx.stampStripes(func(i int) int { return tx.undo[i].idx }, len(tx.undo))
	for _, u := range tx.undo {
		m := &tx.rt.meta[u.idx]
		m.owner.Store(nil)
		m.lock.Store(tx.wvs[tx.rt.stripeOf(u.idx)] << 1)
	}
	if sampled {
		tx.mx.Phase(metrics.PhaseClock, time.Now().UnixNano()-t0)
	}
	tx.undo = tx.undo[:0]
	clear(tx.wvs)
}

func (tx *Tx) commitLazy() {
	batched := tx.pol.CommitBatch > 0 && tx.rt.batch != nil && !tx.irrevocable.Load()
	if len(tx.addIdx) > 0 && !batched {
		// Deltas are only recorded when the attempt was headed for
		// the combiner under the same latched policy, so this lowering
		// is defensive; it keeps the direct path correct if that
		// invariant ever loosens. Load/Store may abort here, which is
		// fine — no locks are held yet.
		tx.lowerDeltas()
	}
	if len(tx.writeIdx) == 0 && len(tx.addIdx) == 0 {
		tx.checkKilled()
		return
	}
	sort.Ints(tx.writeIdx)
	// Group commit (Policy.CommitBatch): hand the sorted write set to
	// the shard combiner instead of fighting for the commit locks
	// individually. The gate is the attempt's latched policy, so a
	// live SetPolicy opens or closes the combiner lane for the *next*
	// attempts without disturbing commits already in flight (queued
	// waiters always self-serve, see batch.go). Irrevocable
	// transactions stay on the direct path — they are already
	// serialized by the fallback token and must not wait on (or be
	// failed by) a combiner.
	if batched {
		sort.Ints(tx.addIdx)
		tx.commitLazyBatched()
		return
	}
	// Phase timers, 1-in-N sampled. A conflict abort mid-acquisition
	// simply discards the sample — the histograms only ever describe
	// commits that reached each phase.
	sampled := tx.mx != nil && tx.mx.Sample()
	var t0 int64
	if sampled {
		t0 = time.Now().UnixNano()
	}
	for i, idx := range tx.writeIdx {
		tx.lockCommit(idx)
		tx.lockedUpTo = i + 1
	}
	if sampled {
		t1 := time.Now().UnixNano()
		tx.mx.Phase(metrics.PhaseLock, t1-t0)
		t0 = t1
	}
	tx.enterNoReturn()
	tx.validateReads()
	if sampled {
		t1 := time.Now().UnixNano()
		tx.mx.Phase(metrics.PhaseValidate, t1-t0)
		t0 = t1
	}
	tx.stampStripes(func(i int) int { return tx.writeIdx[i] }, len(tx.writeIdx))
	if sampled {
		t1 := time.Now().UnixNano()
		tx.mx.Phase(metrics.PhaseClock, t1-t0)
		t0 = t1
	}
	for _, idx := range tx.writeIdx {
		tx.rt.words[idx].Store(tx.writeVals[idx])
	}
	for _, idx := range tx.writeIdx {
		m := &tx.rt.meta[idx]
		m.owner.Store(nil)
		m.lock.Store(tx.wvs[tx.rt.stripeOf(idx)] << 1)
	}
	if sampled {
		tx.mx.Phase(metrics.PhaseWriteBack, time.Now().UnixNano()-t0)
	}
	tx.lockedUpTo = 0
	clear(tx.wvs)
}

// lowerDeltas demotes every pending delta to the ordinary read+store
// footprint. Load folds the pending delta on the word it reads (see
// foldPendingDelta) and removes it from addIdx, so draining the list
// head converges; each fold records a real read entry, restoring
// exactly the unbatched semantics of tx.Add.
func (tx *Tx) lowerDeltas() {
	for len(tx.addIdx) > 0 {
		tx.Load(tx.addIdx[0])
	}
}

// lockCommit acquires a commit lock (lazy mode).
func (tx *Tx) lockCommit(idx int) {
	m := &tx.rt.meta[idx]
	for {
		tx.checkKilled()
		l := m.lock.Load()
		if l&1 == 0 {
			if s := tx.rt.stripeOf(idx); l>>1 > tx.rv[s] {
				tx.extend(s)
				continue
			}
			if m.lock.CompareAndSwap(l, l|1) {
				m.owner.Store(tx)
				return
			}
			continue
		}
		tx.onLocked(idx)
	}
}
