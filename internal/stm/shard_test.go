package stm

import (
	"fmt"
	"sync"
	"testing"

	"txconflict/internal/core"
	"txconflict/internal/rng"
)

func TestShardDefaults(t *testing.T) {
	rt := New(8, DefaultConfig())
	if s := rt.Shards(); s < 1 || s&(s-1) != 0 {
		t.Fatalf("default shard count %d is not a positive power of two", s)
	}
	cfg := DefaultConfig()
	cfg.Shards = 5
	if got := New(8, cfg).Shards(); got != 8 {
		t.Fatalf("Shards=5 rounded to %d, want 8", got)
	}
	cfg.Shards = 1
	rtFlat := New(8, cfg)
	if got := rtFlat.Shards(); got != 1 {
		t.Fatalf("flat arena has %d stripes", got)
	}
	for idx := 0; idx < 8; idx++ {
		if s := rtFlat.stripeOf(idx); s != 0 {
			t.Fatalf("flat arena maps word %d to stripe %d", idx, s)
		}
	}
}

// TestStripedClockAdvancesPerStripe checks that commits only touch
// the clocks of the stripes they wrote.
func TestStripedClockAdvancesPerStripe(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 4
	rt := New(8, cfg)
	r := rng.New(1)
	// Words 1 and 5 both live in stripe 1 (idx & 3).
	_ = rt.Atomic(r, func(tx *Tx) error {
		tx.Store(1, 10)
		tx.Store(5, 11)
		return nil
	})
	if got := rt.stripes[1].clock.Load(); got != 1 {
		t.Fatalf("written stripe clock = %d, want 1 (one bump per commit)", got)
	}
	for _, s := range []int{0, 2, 3} {
		if got := rt.stripes[s].clock.Load(); got != 0 {
			t.Fatalf("untouched stripe %d clock = %d", s, got)
		}
	}
}

// TestSnapshotExtension: a reader whose lazily taken stripe snapshot
// trails committed history must extend (not abort) when the read set
// is still valid.
func TestSnapshotExtension(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 4
	rt := New(8, cfg)
	r := rng.New(1)
	for i := 0; i < 4; i++ {
		i := i
		_ = rt.Atomic(r, func(tx *Tx) error {
			tx.Store(i, uint64(100+i))
			return nil
		})
	}
	before := rt.Stats.Extensions.Load()
	err := rt.Atomic(r, func(tx *Tx) error {
		for i := 0; i < 4; i++ {
			if got := tx.Load(i); got != uint64(100+i) {
				t.Fatalf("word %d = %d", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats.Extensions.Load() == before {
		t.Fatal("multi-stripe read-only transaction never extended its snapshot")
	}
	if rt.Stats.Aborts.Load() != 0 {
		t.Fatalf("extension path aborted: %v", rt.Stats.Snapshot())
	}
}

// TestShardedObjectSumInvariant drives the TxApp-style object-sum
// invariant (each transaction increments two distinct objects, per
// internal/workload) through the sharded runtime under a kill-heavy
// requestor-wins configuration: NO_DELAY grace means every conflict
// kills the receiver immediately. Serializability requires
// Σ objects = 2 × committed ops exactly. Run under -race this doubles
// as the data-race audit of the sharded arena and epoch-kill
// protocol.
func TestShardedObjectSumInvariant(t *testing.T) {
	const objects = 64
	goroutines, perG := 8, 400
	if testing.Short() {
		goroutines, perG = 4, 150
	}
	for _, variant := range []struct {
		name string
		cfg  Config
	}{
		{"eager-sharded", Config{Policy: core.RequestorWins, MaxRetries: 128}},
		{"lazy-sharded", Config{Policy: core.RequestorWins, Lazy: true, MaxRetries: 128}},
		{"eager-flat", Config{Policy: core.RequestorWins, Shards: 1, MaxRetries: 128}},
	} {
		variant := variant
		t.Run(variant.name, func(t *testing.T) {
			t.Parallel()
			rt := New(objects, variant.cfg) // Strategy nil: kill-heavy NO_DELAY
			root := rng.New(42)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				r := root.Split()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						_ = rt.Atomic(r, func(tx *Tx) error {
							a, b := r.TwoDistinct(objects)
							tx.Store(a, tx.Load(a)+1)
							tx.Store(b, tx.Load(b)+1)
							return nil
						})
					}
				}()
			}
			wg.Wait()
			var sum uint64
			for i := 0; i < objects; i++ {
				sum += rt.ReadCommitted(i)
			}
			want := uint64(2 * goroutines * perG)
			if sum != want {
				t.Fatalf("object sum = %d, want %d (stats %v)", sum, want, rt.Stats.Snapshot())
			}
			if got := rt.Stats.Commits.Load(); got != uint64(goroutines*perG) {
				t.Fatalf("commits = %d, want %d", got, goroutines*perG)
			}
		})
	}
}

// benchDisjointWriters is the shared disjoint-writer load: each
// parallel worker increments its own 16-word slice of the arena, so
// the only shared traffic is commit-clock and metadata lines — the
// contention the striped clocks exist to remove. (bench_test.go's
// BenchmarkSTMArenaSharding is the cross-package E-series entry of
// the same load; keep the workload shapes in sync.)
func benchDisjointWriters(b *testing.B, shards int) {
	const words = 1024
	cfg := DefaultConfig()
	cfg.Strategy = nil
	cfg.Shards = shards
	rt := New(words, cfg)
	var gid int32
	var mu sync.Mutex
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		g := gid
		gid++
		mu.Unlock()
		r := rng.New(uint64(g) + 1)
		base := (int(g) * 16) % words
		i := 0
		for pb.Next() {
			idx := base + (i & 15)
			i++
			_ = rt.Atomic(r, func(tx *Tx) error {
				tx.Store(idx, tx.Load(idx)+1)
				return nil
			})
		}
	})
	b.ReportMetric(float64(rt.Stats.Aborts.Load()), "aborts")
}

// BenchmarkClockSharding measures commit throughput of disjoint
// writers on the flat single-clock arena vs the striped one.
func BenchmarkClockSharding(b *testing.B) {
	b.Run("flat", func(b *testing.B) { benchDisjointWriters(b, 1) })
	b.Run("sharded", func(b *testing.B) { benchDisjointWriters(b, 0) })
}

// BenchmarkShardCounts sweeps explicit shard counts on the disjoint
// writer load, for `go test -bench ShardCounts -cpu 8`.
func BenchmarkShardCounts(b *testing.B) {
	for _, shards := range []int{1, 2, 8, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchDisjointWriters(b, shards)
		})
	}
}
