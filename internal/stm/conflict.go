package stm

import (
	"math"
	"runtime"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/metrics"
	"txconflict/internal/strategy"
)

// chainK registers tx as a waiter on owner and returns the conflict
// chain-length estimate k. The estimate uses the post-Add waiter
// count, so simultaneous arrivals see distinct k values (2, 3, ...)
// instead of all computing k=2 — the Section 9 hybrid policy switch
// depends on this. Callers must pair with leaveChain.
func (owner *Tx) chainK() int {
	return 1 + int(owner.waiters.Add(1))
}

func (owner *Tx) leaveChain() {
	owner.waiters.Add(-1)
}

// onLocked is the conflict decision point: word idx is locked by
// another transaction. It returns once the lock has been observed to
// move on (so the caller may retry), and aborts the appropriate side
// per policy when the grace period expires.
//
// The receiver's identity is one *attempt*, captured as its full
// (epoch, status) state at wait start: the kill is a CAS against
// exactly that state, and any epoch change means the attempt we were
// waiting on is gone — a reused descriptor re-acquiring the same word
// can neither be killed by us nor absorb the rest of our grace
// period.
func (tx *Tx) onLocked(idx int) {
	rt := tx.rt
	m := &rt.meta[idx]
	owner := m.owner.Load()
	if owner == nil || owner == tx {
		runtime.Gosched()
		return
	}
	st0 := owner.state.Load()
	if st0&stateStatusMask != statusActive {
		// The owning attempt is already dying or committing; its
		// locks drop shortly, so just let the caller retry.
		runtime.Gosched()
		return
	}
	rt.Stats.GraceWaits.Add(1)
	if tx.traced || tx.mx != nil {
		// The deferred accumulation also runs when the wait ends in
		// an abort panic, so no grace time is lost on killed waiters.
		waitStart := time.Now()
		defer func() {
			ns := time.Since(waitStart).Nanoseconds()
			if tx.traced {
				tx.tr.GraceWaitNs += ns
			}
			if tx.mx != nil {
				tx.mx.ObserveGrace(ns)
			}
		}()
	}
	k := owner.chainK()
	defer owner.leaveChain()
	if est := rt.kEst.Load(); est != nil {
		// Windowed estimator (Policy.KWindow): feed the instantaneous
		// observation and raise k to the recent running mean when
		// history shows longer chains than this receiver's waiter
		// count alone — transitive waiters (A waits on B waits on C)
		// never appear in C's count, so the instantaneous estimate is
		// a lower bound. The estimator is loaded per conflict because
		// SetPolicy swaps it on KWindow resizes; observing into a
		// just-retired window is benign (it is garbage either way).
		est.observe(k)
		if e := est.estimate(); e > float64(k) {
			k = int(math.Round(e))
		}
	}

	// gone reports that the attempt we are waiting on released the
	// lock, lost it, or ended (epoch moved past st0's).
	gone := func() bool {
		return m.lock.Load()&1 == 0 ||
			m.owner.Load() != owner ||
			owner.state.Load()>>stateEpochShift != st0>>stateEpochShift
	}

	pol := tx.pol.resolutionFor(k)
	grace := tx.graceFor(owner, k, pol)
	deadline := time.Now().Add(grace)
	for {
		if gone() {
			return
		}
		if tx.killed() {
			tx.abort(metrics.AbortKilled)
		}
		if !time.Now().Before(deadline) {
			break
		}
		runtime.Gosched()
	}
	// Grace expired: resolve the conflict.
	if owner.irrevocable.Load() {
		// The receiver cannot be killed; yield to it.
		rt.Stats.SelfAborts.Add(1)
		tx.abort(metrics.AbortLockTimeout)
	}
	if pol == core.RequestorWins || tx.irrevocable.Load() {
		if owner.state.CompareAndSwap(st0, st0&^stateStatusMask|statusKilled) {
			rt.Stats.Kills.Add(1)
			if tx.traced {
				tx.tr.KillsIssued++
			}
		}
		// Killed, or already past no-return: either way the locks
		// drop shortly. We may have been killed too (mutual kill on
		// crossed lock orders) — obey it, or the two of us wait on
		// each other forever.
		for !gone() {
			if tx.killed() {
				tx.abort(metrics.AbortKilled)
			}
			runtime.Gosched()
		}
		return
	}
	// Requestor aborts.
	rt.Stats.SelfAborts.Add(1)
	tx.abort(metrics.AbortLockTimeout)
}

// maxGrace caps the grace period a strategy can request. Strategies
// price delays against the abort cost B (microseconds to
// milliseconds), so a minute is far beyond any useful grace — but it
// keeps a misbehaving strategy finite: +Inf, NaN-adjacent, or any
// value above MaxInt64 nanoseconds would otherwise survive the
// negative/NaN guard below and hit the float64→time.Duration
// conversion, whose overflow behaviour is implementation-defined —
// on amd64 it produces math.MinInt64, i.e. a *negative* duration
// that silently collapses the grace period to zero and turns the
// configured strategy into NO_DELAY.
const maxGrace = time.Minute

// graceFor evaluates the strategy for a conflict with the given
// receiver, chain length estimate and per-conflict policy.
func (tx *Tx) graceFor(owner *Tx, k int, pol core.Policy) time.Duration {
	s := tx.pol.Strategy
	if s == nil {
		return 0
	}
	now := time.Now().UnixNano()
	var b float64
	var attempts int
	if pol == core.RequestorWins {
		b = float64(now-owner.startNanos.Load()) + float64(tx.pol.CleanupCost.Nanoseconds())
		attempts = int(owner.attempts.Load())
	} else {
		b = float64(now-tx.startNanos.Load()) + float64(tx.pol.CleanupCost.Nanoseconds())
		attempts = int(tx.attempts.Load())
	}
	if b <= 0 {
		b = 1
	}
	if f := tx.pol.BackoffFactor; f > 1 {
		b = strategy.BackoffB(b, attempts, f, math.Inf(1))
	}
	conf := core.Conflict{Policy: pol, K: k, B: b}
	if tx.pol.UseMeanProfile {
		conf.Mean = tx.rt.profileMean()
	}
	x := s.Delay(conf, tx.rng)
	if x < 0 || math.IsNaN(x) {
		x = 0
	}
	if x > float64(maxGrace) {
		x = float64(maxGrace)
	}
	return time.Duration(x)
}
