// Package stm is a hand-rolled software transactional memory with
// versioned locks, extended with the paper's grace-period conflict
// resolution. Go has no hardware TM, so this runtime is the
// real-concurrency counterpart of the internal/htm simulator: the
// same core.Strategy implementations plug into real goroutines.
//
// # Protocol
//
// Words live in a flat arena; every word has a versioned lock
// (version<<1 | lockedBit) and an owner slot. Two locking modes are
// supported:
//
//   - Eager (encounter-time, default): writers acquire the word lock
//     at the first Store and write in place with an undo log —
//     the faithful analogue of the paper's HTM (Algorithm 1), where
//     a transaction owns its write set for its whole duration and
//     conflicts find the receiver mid-execution.
//   - Lazy (commit-time, TL2-style): writes are buffered and locks
//     are taken in address order only inside commit. Lock hold times
//     are short, so grace periods matter less — this mode doubles as
//     the "lazy versioning" ablation.
//
// Reads are optimistic in both modes, validated against the
// transaction's read version (TL2 rules), which gives opacity.
//
// # Conflicts
//
// A conflict arises when a transaction (the requestor) encounters a
// word locked by another transaction (the receiver — it owns the
// data item, exactly the paper's receiver role). The requestor
// evaluates the configured core.Strategy to obtain the grace period
// (using the doomed side's elapsed time as the abort cost B, paper
// footnote 1), then waits:
//
//   - requestor wins: at the deadline the requestor kills the
//     receiver (a status CAS the receiver observes at its next
//     instrumentation point) and waits for the locks to drop;
//   - requestor aborts: at the deadline the requestor aborts itself.
//
// A receiver that reaches its commit write-back phase can no longer
// be killed (commit is locally atomic, as in the HTM model).
// Transactions that exhaust MaxRetries fall back to an irrevocable
// slow path (serialized by a token), the STM analogue of the paper's
// lock-free fallback paths.
package stm

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/rng"
	"txconflict/internal/strategy"
)

// Status values of a transaction descriptor.
const (
	statusActive int32 = iota
	statusKilled
	statusNoReturn // committing, past the point of no return
)

// Config tunes the runtime's conflict resolution.
type Config struct {
	// Policy selects requestor-wins or requestor-aborts resolution.
	Policy core.Policy
	// HybridPolicy overrides Policy per conflict with the paper's
	// Section 9 rule: requestor-aborts for pair conflicts (k = 2),
	// requestor-wins for longer chains. Pairs naturally with
	// strategy.Hybrid, which dispatches the matching optimal
	// strategy.
	HybridPolicy bool
	// Strategy picks grace periods; nil means no grace (immediate
	// resolution, the NO_DELAY baseline).
	Strategy core.Strategy
	// Lazy switches to commit-time locking (TL2); the default is
	// eager encounter-time locking, matching the paper's HTM.
	Lazy bool
	// UseMeanProfile feeds the profiled mean committed-transaction
	// duration to the strategy.
	UseMeanProfile bool
	// CleanupCost is the fixed component of the abort cost B in
	// nanoseconds; the elapsed execution time is added per the
	// paper's footnote 1.
	CleanupCost time.Duration
	// BackoffFactor multiplies B per abort of the same transaction
	// (Corollary 2); <= 1 disables.
	BackoffFactor float64
	// MaxRetries bounds optimistic retries before the transaction
	// falls back to the irrevocable slow path; 0 means never.
	MaxRetries int
}

// DefaultConfig returns an eager requestor-wins configuration with
// the 2-competitive uniform strategy.
func DefaultConfig() Config {
	return Config{
		Policy:        core.RequestorWins,
		Strategy:      strategy.UniformRW{},
		CleanupCost:   2 * time.Microsecond,
		BackoffFactor: 1,
		MaxRetries:    64,
	}
}

// String renders the config for reports.
func (c Config) String() string {
	name := "NO_DELAY"
	if c.Strategy != nil {
		name = c.Strategy.Name()
	}
	mode := "eager"
	if c.Lazy {
		mode = "lazy"
	}
	return fmt.Sprintf("%v/%s/%s", c.Policy, name, mode)
}

// Stats aggregates runtime counters (all updated atomically).
type Stats struct {
	Commits     atomic.Uint64
	Aborts      atomic.Uint64
	Kills       atomic.Uint64 // receiver aborts forced by requestors
	SelfAborts  atomic.Uint64 // requestor-side and validation aborts
	GraceWaits  atomic.Uint64 // conflicts that entered a grace wait
	Irrevocable atomic.Uint64 // slow-path executions
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"commits":     s.Commits.Load(),
		"aborts":      s.Aborts.Load(),
		"kills":       s.Kills.Load(),
		"selfAborts":  s.SelfAborts.Load(),
		"graceWaits":  s.GraceWaits.Load(),
		"irrevocable": s.Irrevocable.Load(),
	}
}

// Runtime is a transactional memory arena plus its conflict policy.
type Runtime struct {
	cfg   Config
	clock atomic.Uint64
	words []atomic.Uint64
	locks []atomic.Uint64
	owner []atomic.Pointer[Tx]

	fallback sync.Mutex // serializes irrevocable transactions

	profBits atomic.Uint64 // float64 bits of the EWMA duration (ns)

	Stats Stats
}

// New creates a runtime with n words, all zero.
func New(n int, cfg Config) *Runtime {
	if n <= 0 {
		panic("stm: non-positive arena size")
	}
	if cfg.BackoffFactor == 0 {
		cfg.BackoffFactor = 1
	}
	return &Runtime{
		cfg:   cfg,
		words: make([]atomic.Uint64, n),
		locks: make([]atomic.Uint64, n),
		owner: make([]atomic.Pointer[Tx], n),
	}
}

// Size returns the arena size in words.
func (rt *Runtime) Size() int { return len(rt.words) }

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// ReadCommitted reads a word outside any transaction, spinning past
// transient locks. Intended for post-run verification.
func (rt *Runtime) ReadCommitted(idx int) uint64 {
	for {
		l := rt.locks[idx].Load()
		if l&1 == 0 {
			v := rt.words[idx].Load()
			if rt.locks[idx].Load() == l {
				return v
			}
		}
		runtime.Gosched()
	}
}

// profileMean returns the EWMA of committed transaction durations in
// nanoseconds (0 = no data yet).
func (rt *Runtime) profileMean() float64 {
	return math.Float64frombits(rt.profBits.Load())
}

func (rt *Runtime) profileUpdate(ns float64) {
	const alpha = 0.05
	for {
		old := rt.profBits.Load()
		cur := math.Float64frombits(old)
		next := ns
		if cur != 0 {
			next = cur + alpha*(ns-cur)
		}
		if rt.profBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// txAbort is the panic value used to unwind an aborted transaction.
type txAbort struct{ reason string }

// undoEntry records a pre-image for eager in-place writes.
type undoEntry struct {
	idx     int
	oldVal  uint64
	oldLock uint64
}

// Tx is a transaction descriptor. It is reused across retries of the
// same atomic block and must not escape the transaction function.
type Tx struct {
	rt  *Runtime
	rng *rng.Rand

	status  atomic.Int32
	waiters atomic.Int32 // requestors currently waiting on me
	// irrevocable, startNanos and attempts are read by *other*
	// goroutines (requestors inspecting their receiver in graceFor),
	// hence atomic.
	irrevocable atomic.Bool
	startNanos  atomic.Int64
	attempts    atomic.Int32

	rv uint64

	reads []readEntry

	// Lazy mode: buffered write set.
	writeIdx  []int
	writeVals map[int]uint64
	// Eager mode: in-place writes with undo log.
	undo []undoEntry

	lockedUpTo int // lazy commit locks acquired (rollback bound)
}

type readEntry struct {
	idx int
	ver uint64
}

// Attempts reports how many times the current atomic block aborted.
func (tx *Tx) Attempts() int { return int(tx.attempts.Load()) }

// Atomic runs fn transactionally, retrying on conflict; it returns
// fn's error for user-level aborts. fn must confine all shared access
// to tx.Load/tx.Store and must be safe to re-execute.
func (rt *Runtime) Atomic(r *rng.Rand, fn func(tx *Tx) error) error {
	tx := &Tx{rt: rt, rng: r, writeVals: make(map[int]uint64, 8)}
	for {
		tx.reset()
		err, aborted := tx.attempt(fn)
		if !aborted {
			return err
		}
		rt.Stats.Aborts.Add(1)
		tx.attempts.Add(1)
		if rt.cfg.MaxRetries > 0 && int(tx.attempts.Load()) >= rt.cfg.MaxRetries && !tx.irrevocable.Load() {
			rt.fallback.Lock()
			tx.irrevocable.Store(true)
			rt.Stats.Irrevocable.Add(1)
		}
	}
}

func (tx *Tx) reset() {
	tx.status.Store(statusActive)
	tx.rv = tx.rt.clock.Load()
	tx.startNanos.Store(time.Now().UnixNano())
	tx.reads = tx.reads[:0]
	tx.writeIdx = tx.writeIdx[:0]
	for k := range tx.writeVals {
		delete(tx.writeVals, k)
	}
	tx.undo = tx.undo[:0]
	tx.lockedUpTo = 0
}

// attempt executes fn once; aborted reports whether it must be
// retried.
func (tx *Tx) attempt(fn func(tx *Tx) error) (err error, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(txAbort); !ok {
				panic(r)
			}
			tx.rollback()
			aborted = true
		}
	}()
	err = fn(tx)
	if err != nil {
		// User-level abort: discard speculative state, no retry.
		tx.rollback()
		tx.releaseToken()
		return err, false
	}
	tx.commit()
	tx.releaseToken()
	tx.rt.Stats.Commits.Add(1)
	tx.rt.profileUpdate(float64(time.Now().UnixNano() - tx.startNanos.Load()))
	return nil, false
}

func (tx *Tx) releaseToken() {
	if tx.irrevocable.Load() {
		tx.irrevocable.Store(false)
		tx.rt.fallback.Unlock()
	}
}

// rollback undoes all speculative effects of the current attempt.
func (tx *Tx) rollback() {
	// Eager: restore pre-images in reverse order, then release the
	// encounter locks with their original versions.
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		tx.rt.words[u.idx].Store(u.oldVal)
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		tx.rt.owner[u.idx].Store(nil)
		tx.rt.locks[u.idx].Store(u.oldLock &^ 1)
	}
	tx.undo = tx.undo[:0]
	// Lazy: release partially acquired commit locks.
	for i := 0; i < tx.lockedUpTo; i++ {
		idx := tx.writeIdx[i]
		tx.rt.owner[idx].Store(nil)
		l := tx.rt.locks[idx].Load()
		tx.rt.locks[idx].Store(l &^ 1)
	}
	tx.lockedUpTo = 0
}

// abort unwinds the current attempt.
func (tx *Tx) abort(reason string) {
	panic(txAbort{reason: reason})
}

// checkKilled aborts if a requestor killed this transaction.
// Irrevocable transactions ignore kills (they cannot be victims).
func (tx *Tx) checkKilled() {
	if !tx.irrevocable.Load() && tx.status.Load() == statusKilled {
		tx.abort("killed")
	}
}

// ownsLock reports whether tx holds the encounter/commit lock on idx.
func (tx *Tx) ownsLock(idx int) bool {
	return tx.rt.owner[idx].Load() == tx
}

// Load reads word idx transactionally.
func (tx *Tx) Load(idx int) uint64 {
	tx.checkKilled()
	if !tx.rt.cfg.Lazy {
		if tx.ownsLock(idx) {
			return tx.rt.words[idx].Load()
		}
	} else if v, ok := tx.writeVals[idx]; ok {
		return v
	}
	for {
		l1 := tx.rt.locks[idx].Load()
		if l1&1 == 1 {
			tx.onLocked(idx)
			tx.checkKilled()
			continue
		}
		if l1>>1 > tx.rv {
			// The word changed after our snapshot began.
			tx.rt.Stats.SelfAborts.Add(1)
			tx.abort("read-validation")
		}
		v := tx.rt.words[idx].Load()
		if tx.rt.locks[idx].Load() != l1 {
			continue // raced with a writer; retry the read
		}
		tx.reads = append(tx.reads, readEntry{idx: idx, ver: l1 >> 1})
		return v
	}
}

// Store writes val to word idx transactionally.
func (tx *Tx) Store(idx int, val uint64) {
	tx.checkKilled()
	if tx.rt.cfg.Lazy {
		if _, ok := tx.writeVals[idx]; !ok {
			tx.writeIdx = append(tx.writeIdx, idx)
		}
		tx.writeVals[idx] = val
		return
	}
	// Eager: acquire the encounter lock on first touch, then write
	// in place.
	if !tx.ownsLock(idx) {
		tx.acquire(idx)
	}
	tx.rt.words[idx].Store(val)
}

// acquire takes the encounter lock on idx (eager mode), logging the
// pre-image.
func (tx *Tx) acquire(idx int) {
	for {
		tx.checkKilled()
		l := tx.rt.locks[idx].Load()
		if l&1 == 1 {
			tx.onLocked(idx)
			continue
		}
		if l>>1 > tx.rv {
			tx.rt.Stats.SelfAborts.Add(1)
			tx.abort("write-version")
		}
		if tx.rt.locks[idx].CompareAndSwap(l, l|1) {
			tx.rt.owner[idx].Store(tx)
			tx.undo = append(tx.undo, undoEntry{
				idx:     idx,
				oldVal:  tx.rt.words[idx].Load(),
				oldLock: l,
			})
			return
		}
	}
}

// commit finalizes the transaction.
func (tx *Tx) commit() {
	if tx.rt.cfg.Lazy {
		tx.commitLazy()
	} else {
		tx.commitEager()
	}
}

// enterNoReturn transitions to the unkillable commit phase. A kill
// that lands first wins: the transaction obeys it and aborts.
func (tx *Tx) enterNoReturn() {
	if tx.irrevocable.Load() {
		tx.status.Store(statusNoReturn)
		return
	}
	if !tx.status.CompareAndSwap(statusActive, statusNoReturn) {
		tx.rt.Stats.SelfAborts.Add(1)
		tx.abort("killed-at-commit")
	}
}

// validateReads re-checks the read set at commit time.
func (tx *Tx) validateReads() {
	for _, re := range tx.reads {
		l := tx.rt.locks[re.idx].Load()
		if l&1 == 1 {
			if !tx.ownsLock(re.idx) {
				tx.rt.Stats.SelfAborts.Add(1)
				tx.abort("commit-validation-locked")
			}
			continue
		}
		if l>>1 != re.ver {
			tx.rt.Stats.SelfAborts.Add(1)
			tx.abort("commit-validation-version")
		}
	}
}

func (tx *Tx) commitEager() {
	if len(tx.undo) == 0 {
		// Read-only: per-read validation against rv suffices.
		tx.checkKilled()
		return
	}
	tx.enterNoReturn()
	tx.validateReads()
	wv := tx.rt.clock.Add(1)
	for _, u := range tx.undo {
		tx.rt.owner[u.idx].Store(nil)
		tx.rt.locks[u.idx].Store(wv << 1)
	}
	tx.undo = tx.undo[:0]
}

func (tx *Tx) commitLazy() {
	if len(tx.writeIdx) == 0 {
		tx.checkKilled()
		return
	}
	sort.Ints(tx.writeIdx)
	for i, idx := range tx.writeIdx {
		tx.lockCommit(idx)
		tx.lockedUpTo = i + 1
	}
	tx.enterNoReturn()
	tx.validateReads()
	wv := tx.rt.clock.Add(1)
	for _, idx := range tx.writeIdx {
		tx.rt.words[idx].Store(tx.writeVals[idx])
	}
	for _, idx := range tx.writeIdx {
		tx.rt.owner[idx].Store(nil)
		tx.rt.locks[idx].Store(wv << 1)
	}
	tx.lockedUpTo = 0
}

// lockCommit acquires a commit lock (lazy mode).
func (tx *Tx) lockCommit(idx int) {
	for {
		tx.checkKilled()
		l := tx.rt.locks[idx].Load()
		if l&1 == 0 {
			if l>>1 > tx.rv {
				tx.rt.Stats.SelfAborts.Add(1)
				tx.abort("lock-version")
			}
			if tx.rt.locks[idx].CompareAndSwap(l, l|1) {
				tx.rt.owner[idx].Store(tx)
				return
			}
			continue
		}
		tx.onLocked(idx)
	}
}

// onLocked is the conflict decision point: word idx is locked by
// another transaction. It returns once the lock has been observed to
// move on (so the caller may retry), and aborts the appropriate side
// per policy when the grace period expires.
func (tx *Tx) onLocked(idx int) {
	owner := tx.rt.owner[idx].Load()
	if owner == nil || owner == tx {
		runtime.Gosched()
		return
	}
	rt := tx.rt
	rt.Stats.GraceWaits.Add(1)
	k := 2 + int(owner.waiters.Load())
	owner.waiters.Add(1)
	defer owner.waiters.Add(-1)

	pol := rt.policyFor(k)
	grace := tx.graceFor(owner, k, pol)
	deadline := time.Now().Add(grace)
	for {
		if rt.locks[idx].Load()&1 == 0 || rt.owner[idx].Load() != owner {
			return // receiver committed or aborted; lock moved on
		}
		if !tx.irrevocable.Load() && tx.status.Load() == statusKilled {
			tx.abort("killed-while-waiting")
		}
		if !time.Now().Before(deadline) {
			break
		}
		runtime.Gosched()
	}
	// Grace expired: resolve the conflict.
	if owner.irrevocable.Load() {
		// The receiver cannot be killed; yield to it.
		rt.Stats.SelfAborts.Add(1)
		tx.abort("yield-to-irrevocable")
	}
	if pol == core.RequestorWins || tx.irrevocable.Load() {
		if owner.status.CompareAndSwap(statusActive, statusKilled) {
			rt.Stats.Kills.Add(1)
		}
		// Killed, or already past no-return: either way the locks
		// drop shortly. We may have been killed too (mutual kill on
		// crossed lock orders) — obey it, or the two of us wait on
		// each other forever.
		for rt.locks[idx].Load()&1 == 1 && rt.owner[idx].Load() == owner {
			if !tx.irrevocable.Load() && tx.status.Load() == statusKilled {
				tx.abort("killed-while-waiting")
			}
			runtime.Gosched()
		}
		return
	}
	// Requestor aborts.
	rt.Stats.SelfAborts.Add(1)
	tx.abort("requestor-aborts")
}

// policyFor returns the per-conflict resolution policy (Section 9
// hybrid rule when enabled).
func (rt *Runtime) policyFor(k int) core.Policy {
	if !rt.cfg.HybridPolicy {
		return rt.cfg.Policy
	}
	if k <= 2 {
		return core.RequestorAborts
	}
	return core.RequestorWins
}

// graceFor evaluates the strategy for a conflict with the given
// receiver, chain length estimate and per-conflict policy.
func (tx *Tx) graceFor(owner *Tx, k int, pol core.Policy) time.Duration {
	s := tx.rt.cfg.Strategy
	if s == nil {
		return 0
	}
	now := time.Now().UnixNano()
	var b float64
	var attempts int
	if pol == core.RequestorWins {
		b = float64(now-owner.startNanos.Load()) + float64(tx.rt.cfg.CleanupCost.Nanoseconds())
		attempts = int(owner.attempts.Load())
	} else {
		b = float64(now-tx.startNanos.Load()) + float64(tx.rt.cfg.CleanupCost.Nanoseconds())
		attempts = int(tx.attempts.Load())
	}
	if b <= 0 {
		b = 1
	}
	if f := tx.rt.cfg.BackoffFactor; f > 1 {
		b = strategy.BackoffB(b, attempts, f, math.Inf(1))
	}
	conf := core.Conflict{Policy: pol, K: k, B: b}
	if tx.rt.cfg.UseMeanProfile {
		conf.Mean = tx.rt.profileMean()
	}
	x := s.Delay(conf, tx.rng)
	if x < 0 || math.IsNaN(x) {
		x = 0
	}
	return time.Duration(x)
}
