package stm

import (
	"testing"
	"testing/quick"

	"txconflict/internal/rng"
)

// TestSequentialMatchesReference runs random single-threaded
// transaction streams against both locking modes and compares every
// committed word with a flat-map reference, including user-aborted
// transactions whose effects must vanish.
func TestSequentialMatchesReference(t *testing.T) {
	abortErr := errString("user-abort")
	f := func(seed uint32, lazy bool) bool {
		r := rng.New(uint64(seed))
		cfg := DefaultConfig()
		cfg.Lazy = lazy
		const words = 16
		rt := New(words, cfg)
		ref := make([]uint64, words)
		// Single-threaded: transactions never retry, so the shadow
		// array may be mutated inside the transaction function.
		for txi := 0; txi < 80; txi++ {
			n := 1 + r.Intn(6)
			type op struct {
				write bool
				idx   int
				val   uint64
			}
			ops := make([]op, n)
			for i := range ops {
				ops[i] = op{write: r.Bool(0.5), idx: r.Intn(words), val: r.Uint64() % 1000}
			}
			abort := r.Bool(0.25)
			shadow := append([]uint64(nil), ref...)
			err := rt.Atomic(r, func(tx *Tx) error {
				for _, o := range ops {
					if o.write {
						tx.Store(o.idx, o.val)
						shadow[o.idx] = o.val
					} else {
						if got := tx.Load(o.idx); got != shadow[o.idx] {
							t.Logf("seed %d tx %d: read [%d] = %d, want %d", seed, txi, o.idx, got, shadow[o.idx])
							return errString("mismatch")
						}
					}
				}
				if abort {
					return abortErr
				}
				return nil
			})
			if abort {
				if err != abortErr {
					return false
				}
				// Effects must vanish.
			} else {
				if err != nil {
					return false
				}
				ref = shadow
			}
			for i := 0; i < words; i++ {
				if rt.ReadCommitted(i) != ref[i] {
					t.Logf("seed %d tx %d: word %d = %d, want %d", seed, txi, i, rt.ReadCommitted(i), ref[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

type errString string

func (e errString) Error() string { return string(e) }
