package stm

import (
	"fmt"
	"time"

	"txconflict/internal/core"
)

// Policy is the dynamic half of the runtime's tuning surface: every
// knob that changes how conflicts are priced and resolved, but not
// how the arena is laid out. Config carries the *initial* Policy
// into New; after that, Runtime.SetPolicy is the only mutation point
// and the commit/abort paths read the current Policy through one
// atomic pointer load per attempt — so a controller (internal/tune)
// can retune a running system without stopping it, and a runtime
// whose policy never changes pays nothing but that load.
//
// The structural half — arena size, Shards, Lazy vs eager locking,
// the Trace hook — stays frozen in Config: those decide memory
// layout and descriptor shape and cannot be swapped under live
// transactions.
type Policy struct {
	// Resolution selects requestor-wins or requestor-aborts
	// resolution (Config.Policy at construction time).
	Resolution core.Policy
	// Hybrid overrides Resolution per conflict with the paper's
	// Section 9 rule: requestor-aborts for pair conflicts (k = 2),
	// requestor-wins for longer chains.
	Hybrid bool
	// Strategy picks grace periods; nil means no grace (immediate
	// resolution, the NO_DELAY baseline).
	Strategy core.Strategy
	// KWindow sizes the windowed conflict-chain estimator; 0 keeps
	// the instantaneous 2 + waiters estimate. Resizing swaps in a
	// fresh (empty) window.
	KWindow int
	// CommitBatch opens the lazy group-commit combiner lane with the
	// given batch bound; 0 closes it (direct commit path). Ignored
	// on eager runtimes, whose encounter-time locks cannot be handed
	// off at commit.
	CommitBatch int
	// FoldCommutative lets transactions record tx.Add calls as blind
	// delta-writes for the combiner to fold (escrow-style counters):
	// every delta to a hot word in one batch is admitted and applied
	// as a single summed update. Off, tx.Add lowers to the ordinary
	// load/store pair. Only meaningful while the combiner lane is
	// open (CommitBatch > 0 on a lazy runtime); inert otherwise, but
	// kept latched so a tuner can open the lane later without losing
	// the setting.
	FoldCommutative bool
	// UseMeanProfile feeds the profiled mean committed-transaction
	// duration to the strategy.
	UseMeanProfile bool
	// CleanupCost is the fixed component of the abort cost B.
	CleanupCost time.Duration
	// BackoffFactor multiplies B per abort of the same transaction
	// (Corollary 2); <= 1 disables.
	BackoffFactor float64
	// MaxRetries bounds optimistic retries before the irrevocable
	// slow path; 0 means never.
	MaxRetries int
}

// normalize clamps nonsense values the way New always has, so a
// SetPolicy caller cannot wedge the runtime.
func (p *Policy) normalize() {
	if p.BackoffFactor <= 0 {
		p.BackoffFactor = 1
	}
	if p.CommitBatch < 0 {
		p.CommitBatch = 0
	}
	if p.KWindow < 0 {
		p.KWindow = 0
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
}

// resolutionFor returns the per-conflict resolution (Section 9
// hybrid rule when enabled).
func (p *Policy) resolutionFor(k int) core.Policy {
	if !p.Hybrid {
		return p.Resolution
	}
	if k <= 2 {
		return core.RequestorAborts
	}
	return core.RequestorWins
}

// String renders the policy for reports and the decision log.
func (p Policy) String() string {
	name := "NO_DELAY"
	if p.Strategy != nil {
		name = p.Strategy.Name()
	}
	res := p.Resolution.String()
	if p.Hybrid {
		res = "Hybrid"
	}
	s := fmt.Sprintf("%s/%s", res, name)
	if p.KWindow > 0 {
		s += fmt.Sprintf("/kw%d", p.KWindow)
	}
	if p.CommitBatch > 0 {
		s += fmt.Sprintf("/b%d", p.CommitBatch)
	}
	if p.FoldCommutative {
		s += "/fold"
	}
	return s
}

// policy extracts the dynamic half of a construction-time Config.
func (c Config) policy() Policy {
	return Policy{
		Resolution:      c.Policy,
		Hybrid:          c.HybridPolicy,
		Strategy:        c.Strategy,
		KWindow:         c.KWindow,
		CommitBatch:     c.CommitBatch,
		FoldCommutative: c.FoldCommutative,
		UseMeanProfile:  c.UseMeanProfile,
		CleanupCost:     c.CleanupCost,
		BackoffFactor:   c.BackoffFactor,
		MaxRetries:      c.MaxRetries,
	}
}

// SetPolicy atomically replaces the runtime's conflict policy. It is
// safe to call concurrently with running transactions: in-flight
// attempts finish under the policy they latched at their start, and
// every later attempt reads the new one. Resizing KWindow swaps in a
// fresh estimator window; flipping CommitBatch to 0 lets queued
// combiner waiters drain themselves (a queued descriptor can always
// self-serve), so no commit is stranded by a swap.
func (rt *Runtime) SetPolicy(p Policy) {
	p.normalize()
	if !rt.lazy {
		// The combiner lane is a lazy-commit structure; keep the
		// reported policy truthful on eager runtimes.
		p.CommitBatch = 0
	}
	cur := rt.kEst.Load()
	curWindow := 0
	if cur != nil {
		curWindow = len(cur.ring)
	}
	if p.KWindow != curWindow {
		if p.KWindow > 0 {
			rt.kEst.Store(newKEstimator(p.KWindow))
		} else {
			rt.kEst.Store(nil)
		}
	}
	rt.pol.Store(&p)
	rt.polSwaps.Add(1)
}

// Policy returns the current conflict policy (a copy; mutate and
// SetPolicy to change the runtime).
func (rt *Runtime) Policy() Policy { return *rt.pol.Load() }

// PolicySwaps counts SetPolicy calls since construction — the
// control plane's own odometer, exposed so remote observers
// (/v1/stats) can tell a tuned runtime from a static one.
func (rt *Runtime) PolicySwaps() uint64 { return rt.polSwaps.Load() }
