// Kill-heavy stress for the group-commit combiner, meant to run under
// the race detector (make race-short): workers hammer a small hot set
// through batched lazy commits with immediate-kill conflict
// resolution and an aggressive irrevocable fallback, so requestors
// keep killing transactions that sit queued (or admitted) in another
// combiner's batch.
//
// The correctness claims under fire:
//
//   - no transaction commits after observing killed(): admission is an
//     active→noReturn CAS against the queued descriptor's state, so a
//     kill that lands while the descriptor waits can never be written
//     back — any violation double-applies a write set and breaks the
//     object-sum ledger below;
//   - no descriptor is stamped twice: stampOutcome panics on any
//     transition that is not a first stamp racing only with a one-shot
//     kill CAS, which fails the test via the panic;
//   - the queue never leaks a descriptor: the run drains (wg.Wait
//     returns) only if every queued commit was eventually stamped.
package stm

import (
	"sync"
	"testing"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/rng"
)

func TestBatchKillStress(t *testing.T) {
	cfg := Config{
		Policy:      core.RequestorWins,
		Strategy:    nil, // NO_DELAY: every conflict kills immediately
		Lazy:        true,
		CommitBatch: 4,
		CleanupCost: time.Microsecond,
		MaxRetries:  3, // frequent irrevocable fallbacks kill queued members too
	}
	const (
		workers = 8
		hot     = 6
	)
	rt := New(hot+workers, cfg)
	// Two combiner lanes: combiners with overlapping hot write sets
	// fight each other, so kills land on descriptors attributed to a
	// batch in flight (the single lane a 1-CPU box derives would make
	// combiner-vs-combiner conflicts impossible).
	rt.setBatchShards(2)

	root := rng.New(31)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w, r := w, root.Split()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := r.Intn(hot)
				j := (i + 1 + r.Intn(hot-1)) % hot
				_ = rt.Atomic(r, func(tx *Tx) error {
					tx.Store(i, tx.Load(i)+1)
					tx.Store(j, tx.Load(j)+1)
					tx.Store(hot+w, tx.Load(hot+w)+1)
					return nil
				})
			}
		}()
	}

	// Run until the schedule has demonstrably produced batches and
	// kills (bounded so a starved -race schedule cannot hang CI).
	target := uint64(200)
	if testing.Short() {
		target = 50
	}
	deadline := time.Now().Add(20 * time.Second)
	for rt.Stats.Kills.Load() < target/10 || rt.Stats.Batches.Load() < target {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	var hotSum, tallySum uint64
	for i := 0; i < hot; i++ {
		hotSum += rt.ReadCommitted(i)
	}
	for w := 0; w < workers; w++ {
		tallySum += rt.ReadCommitted(hot + w)
	}
	commits := rt.Stats.Commits.Load()
	if hotSum != 2*commits || tallySum != commits {
		t.Fatalf("ledger broken: hot sum %d (want %d), tally sum %d (want %d); stats %v",
			hotSum, 2*commits, tallySum, commits, rt.Stats.Snapshot())
	}
	snap := rt.Stats.Snapshot()
	if snap["batches"] == 0 || snap["batchCommits"] == 0 {
		t.Fatalf("stress never combined: %v", snap)
	}
	if snap["kills"] == 0 {
		t.Fatalf("stress never killed a transaction: %v", snap)
	}
	t.Logf("stress stats: %v", snap)
}
