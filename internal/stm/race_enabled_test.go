//go:build race

package stm

// raceEnabled reports that the race detector is active; it disables
// assertions that depend on sync.Pool reuse (the detector
// intentionally randomizes pool hits).
const raceEnabled = true
