// Batched group commit for the lazy (TL2) mode — a flat-combining
// commit phase in the spirit of Hendler et al.'s flat combining and
// TL2's decoupled commit.
//
// The paper's core observation is that conflict cost concentrates in
// serialized commit-time work on hot words. The unbatched lazy path
// pays that serialization per transaction: every committer fights for
// the same commit locks, burns a grace period per conflict, and
// advances the stripe clocks with its own CAS. Batching amortizes all
// three. Committing write sets are mapped onto a small set of
// combiner lanes; the first transaction to claim a lane becomes its
// *combiner* and commits a whole queue of write sets in one round:
//
//  1. Drain the lane queue into a roster (self first, then waiters).
//  2. Merge the roster's write sets into one sorted, deduplicated
//     lock plan and acquire each commit lock once, in address order.
//     Foreign locks resolve through the normal conflict machinery
//     (grace periods, kills) with the combiner as requestor.
//  3. Admit members in roster order: a member commits iff every read
//     still holds its recorded version (locks held by this batch keep
//     their pre-batch version bits, so the batch's own locks are
//     transparent) and no earlier-admitted member writes a word it
//     read — the intra-batch lost-update check. Admission flips the
//     member's state to no-return with a CAS, which atomically
//     resolves the race against requestor kills: a transaction that
//     was killed while queued can never be written back.
//  4. Write back admitted members, advance each written stripe clock
//     ONCE for the whole batch, release the locks, and stamp every
//     drained descriptor's outcome into its packed state word.
//
// Commutative folding (Policy.FoldCommutative) rides on step 3/4:
// delta-writes recorded by tx.Add are blind — no read entry on the
// word — so a batch of increments to one hot counter all pass
// admission, and the combiner applies their sum with a single store
// instead of failing everyone after the first writer. Mixed
// delta/plain access to a word falls back to strict roster-order
// application. This is the paper's §9 point made concrete: the
// conflict was detected either way; resolving it by commuting instead
// of retrying turns the worst-contention workload into the
// best-batching one.
//
// A waiting member spins on its own state word until stamped; if it
// observes the lane idle while still unstamped it claims the lane
// itself, so a queued descriptor can always self-serve (including
// one killed while queued — it drains itself and retires as a
// victim). Descriptors never leave the queue except by being drained,
// and every drained descriptor is stamped exactly once before the
// lane is released — stampOutcome enforces that with strict state
// transitions rather than trusting the protocol.
//
// When batching loses: under low contention the combiner handshake
// (lane CAS, roster bookkeeping) is pure overhead on commits that
// would not have conflicted anyway, and with long think times between
// transactions the queue never fills, so every "batch" has one
// member. Config.CommitBatch = 0 keeps the direct path for exactly
// those regimes.
package stm

import (
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"txconflict/internal/metrics"
)

// batchShard is one combiner lane, padded onto its own cache line:
// the lane-ownership flag, the bounded-queue census, and the Treiber
// stack of waiting descriptors.
type batchShard struct {
	busy   atomic.Uint32      // 1 while a combiner owns the lane
	queued atomic.Int32       // waiters linked (or linking) into the queue
	head   atomic.Pointer[Tx] // waiting descriptors, newest first
	_      [cacheLine - 16]byte
}

// defaultBatchShards sizes the combiner lanes to the machine: one
// lane per ~8 processors so batches actually form (a lane per stripe
// would almost never see two committers), capped so lane state stays
// small. More lanes means less combining but less lane contention.
func defaultBatchShards() int {
	s := runtime.GOMAXPROCS(0) / 8
	if s < 1 {
		s = 1
	}
	if s > 16 {
		s = 16
	}
	return ceilPow2(s)
}

// setBatchShards rebuilds the combiner lanes with an explicit lane
// count (tests only): cross-lane combiner conflicts — two combiners
// fighting over overlapping word sets — cannot happen with the single
// lane defaultBatchShards derives on small machines. Must be called
// before any transaction runs.
func (rt *Runtime) setBatchShards(n int) {
	n = ceilPow2(n)
	rt.batch = make([]batchShard, n)
	rt.batchMask = n - 1
}

// commitLazyBatched funnels this transaction's commit through its
// shard's combiner: claim the lane and combine, or enqueue and wait
// for a terminal stamp. tx.writeIdx and tx.addIdx are sorted and at
// least one of them is non-empty (a pure-counter transaction carries
// only delta-writes).
func (tx *Tx) commitLazyBatched() {
	rt := tx.rt
	first := 0
	switch {
	case len(tx.writeIdx) == 0:
		first = tx.addIdx[0]
	case len(tx.addIdx) == 0 || tx.writeIdx[0] < tx.addIdx[0]:
		first = tx.writeIdx[0]
	default:
		first = tx.addIdx[0]
	}
	sh := &rt.batch[first&rt.batchMask]
	enqueued := false
	spins := 0
	for {
		if enqueued {
			switch st := tx.state.Load() & stateStatusMask; st {
			case statusBatchDone, statusBatchFail, statusBatchKilled:
				tx.finishBatch(st)
				return
			}
			// Not stamped yet. A kill may have landed (statusKilled),
			// but the descriptor stays linked until a combiner drains
			// it — aborting now would dangle the queue link — so fall
			// through and make sure a combiner exists to drain us.
		}
		if sh.busy.Load() == 0 && sh.busy.CompareAndSwap(0, 1) {
			if enqueued {
				// The lane was idle, so the previous combiner (if any)
				// finished: either it drained and stamped us — handle
				// the stamp above — or we are still queued and about
				// to drain ourselves.
				switch tx.state.Load() & stateStatusMask {
				case statusBatchDone, statusBatchFail, statusBatchKilled:
					sh.busy.Store(0)
					continue
				}
			}
			tx.finishBatch(tx.combine(sh))
			return
		}
		if !enqueued {
			if n := sh.queued.Load(); int(n) < tx.pol.CommitBatch-1 && sh.queued.CompareAndSwap(n, n+1) {
				for {
					old := sh.head.Load()
					tx.batchNext.Store(old)
					if sh.head.CompareAndSwap(old, tx) {
						break
					}
				}
				enqueued = true
				continue
			}
			// Queue full: stay unlinked and keep bidding for the lane.
		}
		spins++
		batchPause(spins)
	}
}

// batchPause is the waiter's backoff: yield to the scheduler while
// the combiner is likely mid-round, then fall back to short sleeps —
// a lane holder descheduled by the OS can stall for milliseconds, and
// a pack of Gosched-spinning waiters only starves it further (the
// oversubscribed single-CPU pathology).
func batchPause(spins int) {
	if spins < 128 {
		runtime.Gosched()
		return
	}
	time.Sleep(5 * time.Microsecond)
}

// finishBatch translates a terminal batch outcome into the normal
// commit/abort control flow on the member's own goroutine, so commit
// bookkeeping (Stats.Commits, the duration profile, TxTrace emission)
// stays per-transaction exactly as on the unbatched path.
func (tx *Tx) finishBatch(out uint64) {
	switch out {
	case statusBatchDone:
		if tx.traced {
			// foldedN was written by the combiner before the outcome
			// stamp; observing the stamp ordered it.
			tx.tr.FoldedWrites = tx.foldedN
		}
		return
	case statusBatchKilled:
		tx.abort(metrics.AbortKilled)
	default: // statusBatchFail
		tx.rt.Stats.SelfAborts.Add(1)
		tx.abort(metrics.AbortBatchAdmission)
	}
}

// maxHelpRounds bounds the combiner's altruism: after its own round,
// a combiner keeps draining and committing rounds that queued up
// behind it (classic flat combining — a fresh pile of waiters becomes
// one batch instead of racing for the lane), but only this many times
// so its own caller's latency stays bounded under sustained load.
const maxHelpRounds = 2

// combine runs the lane: the combiner's own round, then up to
// maxHelpRounds altruistic rounds for commits that queued meanwhile.
// Called holding sh.busy; releases it on every path, including an
// abort unwinding out of lock acquisition. Returns tx's own outcome.
func (tx *Tx) combine(sh *batchShard) uint64 {
	defer sh.busy.Store(0)
	var t0 int64
	if tx.mx != nil {
		t0 = time.Now().UnixNano()
	}
	out := tx.combineRound(sh, true)
	for r := 0; r < maxHelpRounds && sh.head.Load() != nil; r++ {
		if !tx.helpRound(sh) {
			break
		}
	}
	if tx.mx != nil {
		// Drain time: the whole lane occupancy, own round plus
		// altruistic rounds (a combiner abort unwinds past this and
		// the round goes unobserved, like any other dead attempt).
		tx.mx.ObserveDrain(time.Now().UnixNano() - t0)
	}
	return out
}

// helpRound runs one altruistic round, swallowing the combiner's own
// conflict aborts (tx's outcome is already decided; an abort raised
// while acquiring locks for *other* transactions must not unwind —
// and possibly retry — an attempt that may already have committed).
// The round's members are stamped failed by combineRound's cleanup in
// that case. Reports whether another round is worth trying.
func (tx *Tx) helpRound(sh *batchShard) (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			if _, isAbort := p.(txAbort); !isAbort {
				panic(p)
			}
			ok = false
		}
	}()
	tx.combineRound(sh, false)
	return true
}

// combineRound drains the lane queue and commits one batch. When
// includeSelf is set, tx is the roster head and its outcome is
// returned; otherwise the roster is just the drained waiters (an
// altruistic round) and the return value is meaningless. Every
// drained descriptor is stamped before the round returns or unwinds.
func (tx *Tx) combineRound(sh *batchShard, includeSelf bool) uint64 {
	rt := tx.rt

	// Roster in commit order: self first (when committing), then the
	// drained queue. Waiters rely on drain-implies-stamp to retire.
	members := tx.batchMembers[:0]
	if includeSelf {
		members = append(members, tx)
	}
	drained := 0
	for m := sh.head.Swap(nil); m != nil; {
		next := m.batchNext.Load()
		m.batchNext.Store(nil)
		drained++
		if m != tx {
			members = append(members, m)
		}
		m = next
	}
	if drained > 0 {
		sh.queued.Add(int32(-drained))
	}
	tx.batchMembers = members
	if len(members) == 0 {
		return 0
	}

	// Merged lock plan: the distinct write words of the whole roster
	// in address order (orderly acquisition keeps combiners in
	// different lanes deadlock-free among themselves and with the
	// irrevocable path, which locks in the same order). Each word's
	// owner slot is attributed to the first roster member writing it,
	// so requestors conflict with — and can kill — a real queued
	// transaction, not an opaque combiner.
	locks := tx.batchLocks[:0]
	for _, m := range members {
		locks = append(locks, m.writeIdx...)
		locks = append(locks, m.addIdx...)
	}
	sort.Ints(locks)
	n := 0
	for i, idx := range locks {
		if i == 0 || idx != locks[n-1] {
			locks[n] = idx
			n++
		}
	}
	locks = locks[:n]
	tx.batchLocks = locks
	owners := tx.batchOwners[:0]
	for _, idx := range locks {
		for _, m := range members {
			if writesWord(m, idx) || addsWord(m, idx) {
				owners = append(owners, m)
				break
			}
		}
	}
	tx.batchOwners = owners

	vers := tx.batchVers[:0] // pre-acquisition lock words, parallel to locks
	acquired := 0
	completed := false
	defer func() {
		if completed {
			return
		}
		// The combiner's own abort is unwinding (killed during
		// acquisition, or yielding to an irrevocable lock holder).
		// Nothing was written back yet — admission has not run — so
		// release the acquired locks with their original versions and
		// fail the drained roster (their goroutines retry) before the
		// panic resumes.
		for i := 0; i < acquired; i++ {
			m := &rt.meta[locks[i]]
			m.owner.Store(nil)
			m.lock.Store(vers[i])
		}
		for _, m := range members {
			if m != tx {
				stampOutcome(m, statusBatchFail)
			}
		}
		tx.dropBatchRefs()
	}()

	// Phase timers, 1-in-N sampled on the combiner's shard; the whole
	// batch's phase work is attributed to one sample, matching the
	// amortization story (one acquisition/advance for many commits).
	sampled := tx.mx != nil && tx.mx.Sample()
	var t0 int64
	if sampled {
		t0 = time.Now().UnixNano()
	}
	for i, idx := range locks {
		m := &rt.meta[idx]
		for {
			tx.checkKilled()
			l := m.lock.Load()
			if l&1 == 1 {
				tx.onLocked(idx)
				continue
			}
			if m.lock.CompareAndSwap(l, l|1) {
				m.owner.Store(owners[i])
				vers = append(vers, l)
				acquired++
				break
			}
		}
	}
	tx.batchVers = vers
	if sampled {
		t1 := time.Now().UnixNano()
		tx.mx.Phase(metrics.PhaseLock, t1-t0)
		t0 = t1
	}

	// Admission, in roster order. A member is admitted iff every read
	// still holds its recorded version — words locked by this batch
	// keep their pre-batch version bits, so the batch's own locks are
	// transparent; foreign locks fail conservatively — and no
	// earlier-admitted member writes a word it read (its read is stale
	// the moment the batch commits: the lost update group commit must
	// not allow). The active→noReturn CAS then atomically loses to
	// any kill that landed while the member was queued.
	//
	// Commutative folding needs no extra admission rule: a tagged
	// delta-write (tx.Add) carries no read entry on its word, so a
	// roster full of blind increments to one hot counter sails through
	// both checks and every member is admitted — where the plain RMW
	// encoding would fail everyone after the first admitted writer.
	// Delta words still count as *writes* against later members
	// (admittedWrites below), so a member that actually read the hot
	// word keeps full lost-update protection.
	outs := tx.batchOuts[:0]
	admittedWrites := tx.batchAdmitted[:0]
	for _, m := range members {
		st := m.state.Load()
		if st&stateStatusMask != statusActive {
			outs = append(outs, statusBatchKilled)
			continue
		}
		ok := true
		for _, re := range m.reads {
			l := rt.meta[re.idx].lock.Load()
			if l>>1 != re.ver || (l&1 == 1 && !containsWord(locks, re.idx)) {
				ok = false
				break
			}
		}
		if ok {
		overlap:
			for _, re := range m.reads {
				for _, w := range admittedWrites {
					if re.idx == w {
						ok = false
						break overlap
					}
				}
			}
		}
		if !ok {
			outs = append(outs, statusBatchFail)
			continue
		}
		if !m.state.CompareAndSwap(st, st&^stateStatusMask|statusNoReturn) {
			outs = append(outs, statusBatchKilled)
			continue
		}
		outs = append(outs, statusBatchDone)
		admittedWrites = append(admittedWrites, m.writeIdx...)
		admittedWrites = append(admittedWrites, m.addIdx...)
	}
	tx.batchOuts = outs
	tx.batchAdmitted = admittedWrites
	if sampled {
		t1 := time.Now().UnixNano()
		tx.mx.Phase(metrics.PhaseValidate, t1-t0)
		t0 = t1
	}

	// Write back admitted members in roster order (a later-admitted
	// writer of a shared word serializes after, so its value wins).
	// Deltas to a word nobody plain-writes are not applied here: they
	// accumulate into one sum and the word is updated once below —
	// the commutativity payoff (one store per hot counter per batch).
	// A delta to a word some admitted member plain-writes falls back
	// to on-the-spot application, keeping strict roster order for
	// mixed access.
	folds := tx.batchFolds[:0]
	sums := tx.batchSums[:0]
	for range locks {
		folds = append(folds, 0)
		sums = append(sums, 0)
	}
	for i, m := range members {
		if outs[i] != statusBatchDone {
			continue
		}
		for _, idx := range m.writeIdx {
			folds[wordPos(locks, idx)] = -1
		}
	}
	var foldedTxs uint64
	for i, m := range members {
		if outs[i] != statusBatchDone {
			continue
		}
		for _, idx := range m.writeIdx {
			rt.words[idx].Store(m.writeVals[idx])
		}
		m.foldedN = 0
		for _, idx := range m.addIdx {
			j := wordPos(locks, idx)
			if folds[j] < 0 {
				w := &rt.words[idx]
				w.Store(w.Load() + m.addVals[idx])
				continue
			}
			folds[j]++
			sums[j] += m.addVals[idx]
			m.foldedN++
		}
		if m.foldedN > 0 {
			foldedTxs++
		}
	}
	var foldedWords uint64
	for j, idx := range locks {
		if folds[j] > 0 {
			w := &rt.words[idx]
			w.Store(w.Load() + sums[j])
			foldedWords++
		}
	}
	tx.batchFolds = folds
	tx.batchSums = sums
	if sampled {
		t1 := time.Now().UnixNano()
		tx.mx.Phase(metrics.PhaseWriteBack, t1-t0)
		t0 = t1
	}

	// Release: one clock advance per *written* stripe for the whole
	// batch — the CAS-traffic amortization this path exists for. A
	// locked word whose only writers failed admission is unchanged and
	// releases with its original version.
	for i, idx := range locks {
		written := false
		for _, w := range admittedWrites {
			if w == idx {
				written = true
				break
			}
		}
		m := &rt.meta[idx]
		m.owner.Store(nil)
		if written {
			s := rt.stripeOf(idx)
			if tx.wvs[s] == 0 {
				tx.wvs[s] = rt.stripes[s].clock.Add(1)
			}
			m.lock.Store(tx.wvs[s] << 1)
		} else {
			m.lock.Store(vers[i])
		}
	}
	clear(tx.wvs)
	if sampled {
		tx.mx.Phase(metrics.PhaseClock, time.Now().UnixNano()-t0)
	}

	// Stamp outcomes (after release, so failed members re-fight for
	// locks immediately) and settle the ledger. Per-member commit
	// bookkeeping happens on each member's own goroutine when it
	// observes its stamp.
	rt.Stats.Batches.Add(1)
	var committedN, failedN uint64
	var selfOut uint64
	for i, m := range members {
		switch outs[i] {
		case statusBatchDone:
			committedN++
		case statusBatchFail:
			failedN++
		}
		if m == tx {
			selfOut = outs[i]
		} else {
			stampOutcome(m, outs[i])
		}
	}
	rt.Stats.BatchCommits.Add(committedN)
	rt.Stats.BatchFails.Add(failedN)
	if foldedTxs > 0 {
		rt.Stats.FoldedCommits.Add(foldedTxs)
		rt.Stats.FoldedWords.Add(foldedWords)
	}
	completed = true
	tx.dropBatchRefs()
	return selfOut
}

// stampOutcome publishes a drained member's terminal outcome into its
// packed state word. The only legal concurrent writer is a
// requestor's one-shot kill CAS (active→killed), so every other
// pre-state means the descriptor was stamped twice — a protocol
// violation worth dying loudly for rather than silently double
// committing.
func stampOutcome(m *Tx, out uint64) {
	for {
		st := m.state.Load()
		switch st & stateStatusMask {
		case statusActive:
			if out == statusBatchDone {
				panic("stm: batch commit stamp on an unadmitted descriptor")
			}
			// A kill can still race in; retry resolves it below.
			if m.state.CompareAndSwap(st, st&^stateStatusMask|out) {
				return
			}
		case statusKilled:
			if out == statusBatchDone {
				panic("stm: batch commit stamp on a killed descriptor")
			}
			// Preserve the kill: the waiter retires as a victim.
			if m.state.CompareAndSwap(st, st&^stateStatusMask|statusBatchKilled) {
				return
			}
		case statusNoReturn:
			if out != statusBatchDone {
				panic("stm: batch failure stamp on an admitted descriptor")
			}
			if m.state.CompareAndSwap(st, st&^stateStatusMask|statusBatchDone) {
				return
			}
		default:
			panic("stm: descriptor stamped twice in a batch")
		}
	}
}

// dropBatchRefs clears the pointer-holding combiner scratch so pooled
// descriptors from this batch are not retained past the round (the
// int/uint64 scratch keeps its capacity harmlessly).
func (tx *Tx) dropBatchRefs() {
	clear(tx.batchMembers)
	tx.batchMembers = tx.batchMembers[:0]
	clear(tx.batchOwners)
	tx.batchOwners = tx.batchOwners[:0]
}

// writesWord reports whether m's (sorted) write set contains idx.
func writesWord(m *Tx, idx int) bool {
	i := sort.SearchInts(m.writeIdx, idx)
	return i < len(m.writeIdx) && m.writeIdx[i] == idx
}

// addsWord reports whether m's (sorted) delta set contains idx.
func addsWord(m *Tx, idx int) bool {
	i := sort.SearchInts(m.addIdx, idx)
	return i < len(m.addIdx) && m.addIdx[i] == idx
}

// wordPos returns idx's position in the sorted lock plan; idx must be
// present (every write and delta word of every member is).
func wordPos(locks []int, idx int) int { return sort.SearchInts(locks, idx) }

// containsWord reports whether the sorted lock plan contains idx.
func containsWord(locks []int, idx int) bool {
	i := sort.SearchInts(locks, idx)
	return i < len(locks) && locks[i] == idx
}
