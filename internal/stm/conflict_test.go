package stm

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/metrics"
	"txconflict/internal/rng"
)

// unclampedGrace is a test strategy returning a fixed grace period
// verbatim. The production strategies (e.g. strategy.Fixed) clamp to
// core.MaxUsefulDelay = B, which for a just-started receiver is
// microseconds — far too short to stage an ordered conflict around.
type unclampedGrace float64

func (g unclampedGrace) Name() string                               { return "unclampedGrace" }
func (g unclampedGrace) Delay(_ core.Conflict, _ *rng.Rand) float64 { return float64(g) }

// TestEpochKillSkipsLaterAttempt stages the descriptor-reuse ABA:
// a requestor parks in onLocked against attempt 1 of a receiver; the
// receiver then aborts and attempt 2 of the *same descriptor*
// re-acquires the same word. The requestor's captured epoch must make
// it treat the lock as "moved on" — never carrying its stale deadline
// over to attempt 2, and never killing it (the old pointer-identity
// protocol did both).
func TestEpochKillSkipsLaterAttempt(t *testing.T) {
	cfg := DefaultConfig()
	// A genuinely long grace so no deadline can legitimately expire
	// during the staging windows (the orchestration below is
	// event-driven, so the test never actually waits this long).
	cfg.Strategy = unclampedGrace(10 * time.Second / time.Nanosecond)
	cfg.MaxRetries = 0
	rt := New(2, cfg)
	root := rng.New(11)
	recvR, reqR := root.Split(), root.Split()

	held1 := make(chan struct{})
	abort1 := make(chan struct{})
	held2 := make(chan struct{}, 4)
	done2 := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // receiver
		defer wg.Done()
		_ = rt.Atomic(recvR, func(tx *Tx) error {
			tx.Store(0, 7)
			if tx.Attempts() == 0 {
				close(held1)
				<-abort1
				panic(txAbort{reason: metrics.AbortValidation})
			}
			select {
			case held2 <- struct{}{}:
			default:
			}
			<-done2
			return nil
		})
	}()
	<-held1

	wg.Add(1)
	go func() { // requestor
		defer wg.Done()
		_ = rt.Atomic(reqR, func(tx *Tx) error {
			tx.Store(0, tx.Load(0)+100)
			return nil
		})
	}()

	waitFor := func(cond func() bool, what string) {
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("%s never happened (stats %v)", what, rt.Stats.Snapshot())
			}
			runtime.Gosched()
		}
	}
	// Park the requestor against attempt 1, then retire attempt 1.
	waitFor(func() bool { return rt.Stats.GraceWaits.Load() >= 1 }, "requestor grace wait")
	close(abort1)
	<-held2
	// The fixed protocol starts a *fresh* grace wait against attempt
	// 2 (or the requestor slipped in and committed during the
	// inter-attempt window); the broken one fires the stale deadline
	// and kills attempt 2.
	waitFor(func() bool {
		return rt.Stats.GraceWaits.Load() >= 2 ||
			rt.Stats.Commits.Load() >= 1 || // requestor won the window
			rt.Stats.Kills.Load() >= 1
	}, "requestor re-resolution")
	close(done2)
	wg.Wait()

	if kills := rt.Stats.Kills.Load(); kills != 0 {
		t.Fatalf("stale requestor killed a later attempt (%d kills, stats %v)", kills, rt.Stats.Snapshot())
	}
	if commits := rt.Stats.Commits.Load(); commits != 2 {
		t.Fatalf("commits = %d, want 2 (stats %v)", commits, rt.Stats.Snapshot())
	}
}

// TestForeignPanicReleasesEncounterLocks: a panic out of user code
// (not the internal txAbort) must roll back in-place writes and drop
// encounter locks before unwinding — otherwise the word stays locked
// forever and every later transaction wedges on it.
func TestForeignPanicReleasesEncounterLocks(t *testing.T) {
	rt := New(4, DefaultConfig())
	r := rng.New(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("user panic was swallowed")
			}
		}()
		_ = rt.Atomic(r, func(tx *Tx) error {
			tx.Store(0, 9)
			panic("user bug")
		})
	}()
	if rt.meta[0].lock.Load()&1 != 0 {
		t.Fatal("panic leaked the encounter lock")
	}
	if got := rt.ReadCommitted(0); got != 0 {
		t.Fatalf("panic leaked a dirty write: %d", got)
	}
	if err := rt.Atomic(r, func(tx *Tx) error { tx.Store(0, 1); return nil }); err != nil {
		t.Fatalf("runtime unusable after panic: %v", err)
	}
	if got := rt.ReadCommitted(0); got != 1 {
		t.Fatalf("post-panic commit lost: %d", got)
	}
}

// TestForeignPanicReleasesIrrevocableToken: the same unwind from an
// irrevocable transaction must release the fallback token, or every
// future slow-path transaction deadlocks.
func TestForeignPanicReleasesIrrevocableToken(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRetries = 1 // first abort escalates to the slow path
	rt := New(2, cfg)
	r := rng.New(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("user panic was swallowed")
			}
		}()
		_ = rt.Atomic(r, func(tx *Tx) error {
			if tx.Attempts() == 0 {
				panic(txAbort{reason: metrics.AbortValidation}) // force escalation
			}
			panic("user bug on the irrevocable path")
		})
	}()
	if rt.Stats.Irrevocable.Load() == 0 {
		t.Fatal("staging failed: transaction never went irrevocable")
	}
	if !rt.fallback.TryLock() {
		t.Fatal("panic leaked the irrevocable fallback token")
	}
	rt.fallback.Unlock()
}

// TestChainEstimateDistinct: concurrent requestors registering on the
// same receiver must observe distinct chain lengths 2, 3, ..., n+1.
// The old pre-Add read let simultaneous arrivals all compute k=2,
// hiding long chains from the Section 9 hybrid switch.
func TestChainEstimateDistinct(t *testing.T) {
	const n = 8
	for round := 0; round < 50; round++ {
		owner := &Tx{}
		ks := make([]int, n)
		var start, wg sync.WaitGroup
		start.Add(1)
		wg.Add(n)
		for i := 0; i < n; i++ {
			i := i
			go func() {
				defer wg.Done()
				start.Wait()
				ks[i] = owner.chainK()
			}()
		}
		start.Done()
		wg.Wait()
		sort.Ints(ks)
		for i, k := range ks {
			if k != i+2 {
				t.Fatalf("round %d: chain estimates %v, want a permutation of 2..%d", round, ks, n+1)
			}
		}
		if owner.waiters.Load() != n {
			t.Fatalf("waiter count = %d, want %d", owner.waiters.Load(), n)
		}
	}
}

// TestGraceForClampsOverflow is the regression test for the
// float64→time.Duration overflow in graceFor: a strategy returning
// +Inf (or any nanosecond value above MaxInt64) passed the
// `x < 0 || NaN` guard and converted to an implementation-defined —
// on amd64, negative — duration, silently collapsing the configured
// grace period to zero. Non-finite and overflowing delays must now
// clamp to the finite maxGrace; negative and NaN delays still floor
// to zero, and sane delays pass through untouched.
func TestGraceForClampsOverflow(t *testing.T) {
	cases := []struct {
		name  string
		delay float64
		want  time.Duration
	}{
		{"+Inf", math.Inf(1), maxGrace},
		{"above MaxInt64 ns", 2 * float64(math.MaxInt64), maxGrace},
		{"just above cap", float64(maxGrace) * 1.5, maxGrace},
		{"NaN", math.NaN(), 0},
		{"negative", -5, 0},
		{"-Inf", math.Inf(-1), 0},
		{"sane", 1500, 1500 * time.Nanosecond},
		{"at cap", float64(maxGrace), maxGrace},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Strategy = unclampedGrace(c.delay)
			rt := New(1, cfg)
			now := time.Now().UnixNano()
			owner := &Tx{rt: rt}
			owner.startNanos.Store(now)
			tx := &Tx{rt: rt, pol: rt.pol.Load()}
			tx.startNanos.Store(now)
			for _, pol := range []core.Policy{core.RequestorWins, core.RequestorAborts} {
				got := tx.graceFor(owner, 2, pol)
				if got < 0 {
					t.Fatalf("policy %v: grace %v is negative (overflow leaked through)", pol, got)
				}
				if got != c.want {
					t.Fatalf("policy %v: grace = %v, want %v", pol, got, c.want)
				}
			}
		})
	}
}
