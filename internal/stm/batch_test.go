package stm

import (
	"sync"
	"testing"
	"time"

	"txconflict/internal/rng"
)

// batchedConfig is the lazy group-commit configuration the batch
// tests build on.
func batchedConfig(batch int) Config {
	cfg := DefaultConfig()
	cfg.Lazy = true
	cfg.CommitBatch = batch
	return cfg
}

// TestBatchUncontended checks the degenerate single-member batches of
// an uncontended runtime: every commit goes through the combiner,
// values land, and the ledger adds up.
func TestBatchUncontended(t *testing.T) {
	rt := New(16, batchedConfig(4))
	r := rng.New(1)
	const n = 100
	for i := 0; i < n; i++ {
		if err := rt.Atomic(r, func(tx *Tx) error {
			tx.Store(i%16, tx.Load(i%16)+1)
			tx.Store(15, uint64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.Stats.Commits.Load(); got != n {
		t.Fatalf("commits = %d, want %d", got, n)
	}
	if got := rt.Stats.Batches.Load(); got != n {
		t.Fatalf("batches = %d, want %d (every commit combines)", got, n)
	}
	if got := rt.Stats.BatchCommits.Load(); got != n {
		t.Fatalf("batchCommits = %d, want %d", got, n)
	}
	if rt.ReadCommitted(15) != n-1 {
		t.Fatalf("word 15 = %d, want %d", rt.ReadCommitted(15), n-1)
	}
}

// TestBatchEagerIgnored pins that CommitBatch has no effect outside
// lazy mode: the eager path takes encounter locks and never combines.
func TestBatchEagerIgnored(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CommitBatch = 8 // eager: must be ignored
	rt := New(4, cfg)
	r := rng.New(2)
	for i := 0; i < 10; i++ {
		if err := rt.Atomic(r, func(tx *Tx) error {
			tx.Store(0, tx.Load(0)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if rt.batch != nil || rt.Stats.Batches.Load() != 0 {
		t.Fatalf("eager runtime built combiner lanes (batches=%d)", rt.Stats.Batches.Load())
	}
	if rt.ReadCommitted(0) != 10 {
		t.Fatalf("word 0 = %d, want 10", rt.ReadCommitted(0))
	}
}

// TestBatchContendedCounter hammers one shared counter from many
// goroutines through the combiner: the classic lost-update shape.
// Every same-word read-modify-write pair conflicts inside a batch, so
// the intra-batch admission check must fail all but one member per
// round and the failed members must retry to a correct total.
func TestBatchContendedCounter(t *testing.T) {
	rt := New(4, batchedConfig(4))
	const workers, per = 8, 200
	var wg sync.WaitGroup
	root := rng.New(7)
	for w := 0; w < workers; w++ {
		r := root.Split()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = rt.Atomic(r, func(tx *Tx) error {
					tx.Store(0, tx.Load(0)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if got := rt.ReadCommitted(0); got != workers*per {
		t.Fatalf("counter = %d, want %d (stats %v)", got, workers*per, rt.Stats.Snapshot())
	}
	if rt.Stats.Commits.Load() != workers*per {
		t.Fatalf("commits = %d, want %d", rt.Stats.Commits.Load(), workers*per)
	}
}

// TestBatchDisjointMembers runs goroutines with disjoint write sets
// through one lane: disjoint members must all be admitted (no false
// intra-batch conflicts), and the totals must land per word.
func TestBatchDisjointMembers(t *testing.T) {
	const workers, per = 6, 300
	rt := New(workers, batchedConfig(workers))
	rt.setBatchShards(1) // one lane: all commits may combine
	var wg sync.WaitGroup
	root := rng.New(11)
	for w := 0; w < workers; w++ {
		w, r := w, root.Split()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = rt.Atomic(r, func(tx *Tx) error {
					tx.Store(w, tx.Load(w)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if got := rt.ReadCommitted(w); got != per {
			t.Fatalf("word %d = %d, want %d (stats %v)", w, got, per, rt.Stats.Snapshot())
		}
	}
	if fails := rt.Stats.BatchFails.Load(); fails != 0 {
		t.Fatalf("disjoint write sets failed admission %d times", fails)
	}
}

// TestBatchIntraBatchConflictStaged stages a deterministic two-member
// batch over the same read-modify-write word: the second member must
// fail admission (stale read), retry, and both increments must land.
func TestBatchIntraBatchConflictStaged(t *testing.T) {
	rt := New(2, batchedConfig(2))
	rt.setBatchShards(1)
	root := rng.New(13)
	rA, rB := root.Split(), root.Split()

	// Worker B parks inside its first attempt until A is committing,
	// so B's commit enqueues while A combines — or A's commit lands
	// first and B revalidates. Either way both must total correctly.
	bStarted := make(chan struct{})
	aDone := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		first := true
		_ = rt.Atomic(rB, func(tx *Tx) error {
			v := tx.Load(0)
			if first {
				first = false
				close(bStarted)
				<-aDone // A commits while B holds a stale read
			}
			tx.Store(0, v+1)
			return nil
		})
	}()
	go func() {
		defer wg.Done()
		<-bStarted
		_ = rt.Atomic(rA, func(tx *Tx) error {
			tx.Store(0, tx.Load(0)+1)
			return nil
		})
		close(aDone)
	}()
	wg.Wait()
	if got := rt.ReadCommitted(0); got != 2 {
		t.Fatalf("word 0 = %d, want 2 (stats %v)", got, rt.Stats.Snapshot())
	}
}

// TestBatchReadOnlySkipsCombiner pins that read-only transactions
// bypass the combiner entirely (nothing to hand off).
func TestBatchReadOnlySkipsCombiner(t *testing.T) {
	rt := New(4, batchedConfig(4))
	r := rng.New(17)
	for i := 0; i < 20; i++ {
		if err := rt.Atomic(r, func(tx *Tx) error {
			_ = tx.Load(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.Stats.Batches.Load(); got != 0 {
		t.Fatalf("read-only transactions combined %d times", got)
	}
}

// TestBatchConfigString pins the report rendering of a batched
// configuration.
func TestBatchConfigString(t *testing.T) {
	cfg := batchedConfig(8)
	if s := cfg.String(); s != "requestor-wins/RRW/lazy/b8" {
		t.Fatalf("cfg.String() = %q", s)
	}
	cfg.CommitBatch = 0
	if s := cfg.String(); s != "requestor-wins/RRW/lazy" {
		t.Fatalf("cfg.String() = %q", s)
	}
}

// TestBatchQueueBound checks that the bounded queue never admits more
// than CommitBatch write sets into one combiner round.
func TestBatchQueueBound(t *testing.T) {
	const batch = 2
	rt := New(8, batchedConfig(batch))
	rt.setBatchShards(1)
	const workers, per = 8, 100
	var wg sync.WaitGroup
	root := rng.New(23)
	for w := 0; w < workers; w++ {
		w, r := w, root.Split()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = rt.Atomic(r, func(tx *Tx) error {
					tx.Store(w, tx.Load(w)+1)
					return nil
				})
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("batched commits wedged (stats %v)", rt.Stats.Snapshot())
	}
	commits := rt.Stats.BatchCommits.Load() + rt.Stats.BatchFails.Load()
	if batches := rt.Stats.Batches.Load(); commits > batches*batch {
		t.Fatalf("%d outcomes across %d batches exceeds the bound %d per round",
			commits, batches, batch)
	}
	for w := 0; w < workers; w++ {
		if got := rt.ReadCommitted(w); got != per {
			t.Fatalf("word %d = %d, want %d", w, got, per)
		}
	}
}
