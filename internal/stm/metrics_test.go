package stm

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"txconflict/internal/metrics"
	"txconflict/internal/rng"
)

// TestStatsSnapshotComplete holds Snapshot to the struct: every
// atomic.Uint64 field of Stats must appear in the map under its
// lowerCamel name — the reflection generator makes this true by
// construction, and this test makes sure Stats never grows a counter
// of a type the generator skips.
func TestStatsSnapshotComplete(t *testing.T) {
	var s Stats
	s.Commits.Store(7)
	s.FoldedWords.Store(3)
	snap := s.Snapshot()

	st := reflect.TypeOf(&s).Elem()
	au := reflect.TypeOf(atomic.Uint64{})
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if f.Type != au {
			t.Errorf("Stats.%s is %v, not atomic.Uint64 — Snapshot() and the Prometheus exposition will not see it", f.Name, f.Type)
			continue
		}
		key := string(f.Name[0]|0x20) + f.Name[1:]
		if _, ok := snap[key]; !ok {
			t.Errorf("Snapshot() missing key %q for field %s", key, f.Name)
		}
	}
	if len(snap) != st.NumField() {
		t.Errorf("Snapshot() has %d keys for %d fields", len(snap), st.NumField())
	}
	if snap["commits"] != 7 || snap["foldedWords"] != 3 {
		t.Errorf("Snapshot() values wrong: %v", snap)
	}
}

// TestMetricsPlaneWiring runs real transactions through every commit
// path on a metrics-enabled runtime and reconciles the plane against
// Stats: histogram counts, the abort taxonomy, and the explicit-abort
// and killed reasons all have to line up with the runtime's ground
// truth.
func TestMetricsPlaneWiring(t *testing.T) {
	modes := []struct {
		name  string
		lazy  bool
		batch int
		fold  bool
	}{
		{"eager", false, 0, false},
		{"lazy", true, 0, false},
		{"lazy-batched", true, 4, false},
		{"lazy-batched-folded", true, 4, true},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			plane := metrics.NewPlane(4, 4)
			cfg := DefaultConfig()
			cfg.Lazy = m.lazy
			cfg.CommitBatch = m.batch
			cfg.FoldCommutative = m.fold
			cfg.Metrics = plane
			rt := New(16, cfg)
			if rt.Metrics() != plane {
				t.Fatal("Metrics() accessor lost the plane")
			}

			const workers, txPerWorker = 4, 300
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					r := rng.New(uint64(100 + w))
					for i := 0; i < txPerWorker; i++ {
						_ = rt.AtomicWorker(w, r, func(tx *Tx) error {
							tx.Add(0, 1) // hot word: real conflicts
							tx.Store(1+w, tx.Load(1+w)+1)
							return nil
						})
					}
				}(w)
			}
			wg.Wait()

			errBoom := errors.New("boom")
			if err := rt.Atomic(rng.New(9), func(tx *Tx) error {
				tx.Store(8, 1)
				return errBoom
			}); !errors.Is(err, errBoom) {
				t.Fatalf("user abort returned %v", err)
			}

			s := plane.Snapshot()
			commits := rt.Stats.Commits.Load()
			aborts := rt.Stats.Aborts.Load()
			if commits != workers*txPerWorker {
				t.Fatalf("commits = %d, want %d", commits, workers*txPerWorker)
			}
			if s.Commit.Count != commits {
				t.Errorf("commit histogram count = %d, want %d", s.Commit.Count, commits)
			}
			// Every attempt is observed exactly once: committed,
			// aborted-and-retried, or the one explicit user abort.
			if want := commits + aborts + 1; s.Attempt.Count != want {
				t.Errorf("attempt histogram count = %d, want %d", s.Attempt.Count, want)
			}
			// The per-attempt taxonomy partitions Stats.Aborts.
			if got := s.AbortTotal(); got != aborts {
				t.Errorf("abort taxonomy total = %d, want Stats.Aborts = %d (taxonomy %v)",
					got, aborts, s.AbortCounts())
			}
			if s.Aborts[metrics.AbortExplicit] != 1 {
				t.Errorf("explicit aborts = %d, want 1", s.Aborts[metrics.AbortExplicit])
			}
			if kills := rt.Stats.Kills.Load(); kills > 0 && s.Aborts[metrics.AbortKilled] == 0 {
				t.Errorf("%d kills landed but the killed reason is zero", kills)
			}
			if g := rt.Stats.GraceWaits.Load(); g > 0 && s.Grace.Count == 0 {
				t.Errorf("%d grace waits but the grace histogram is empty", g)
			}
			if m.batch > 0 && rt.Stats.Batches.Load() > 0 && s.Drain.Count == 0 {
				t.Error("combiner ran but the drain histogram is empty")
			}
			// Sampled phase timers: with 1-in-4 sampling over 1200
			// commits, every mode has sampled at least one commit.
			var phases uint64
			for ph := 0; ph < metrics.NumCommitPhases; ph++ {
				phases += s.PhaseN[ph]
			}
			if phases == 0 {
				t.Error("no commit-phase samples recorded")
			}
			// State stays exact regardless of instrumentation.
			if got := rt.ReadCommitted(0); got != workers*txPerWorker {
				t.Fatalf("hot word = %d, want %d", got, workers*txPerWorker)
			}
		})
	}
}

// BenchmarkUncontendedTxMetrics is the metrics-on counterpart of
// BenchmarkUncontendedTx: the honest per-transaction price of the
// always-on plane (histogram observes plus the sampling tick).
func BenchmarkUncontendedTxMetrics(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Metrics = metrics.NewPlane(1, 0)
	rt := New(64, cfg)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rt.AtomicWorker(0, r, func(tx *Tx) error {
			tx.Store(i%64, uint64(i))
			return nil
		})
	}
}
