package stm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/rng"
	"txconflict/internal/strategy"
)

// configs returns the configuration matrix exercised by the
// concurrency tests: both policies, both locking modes, with and
// without delay strategies.
func configs() []Config {
	var out []Config
	for _, lazy := range []bool{false, true} {
		for _, pol := range []core.Policy{core.RequestorWins, core.RequestorAborts} {
			for _, s := range []core.Strategy{nil, strategy.UniformRW{}, strategy.ExpRA{}} {
				out = append(out, Config{
					Policy:        pol,
					Strategy:      s,
					Lazy:          lazy,
					CleanupCost:   time.Microsecond,
					MaxRetries:    128,
					BackoffFactor: 1,
				})
			}
		}
	}
	// Flat single-clock arena (Shards=1, the pre-sharding layout)
	// coverage for both locking modes.
	for _, lazy := range []bool{false, true} {
		out = append(out, Config{
			Policy:        core.RequestorWins,
			Strategy:      strategy.UniformRW{},
			Lazy:          lazy,
			Shards:        1,
			CleanupCost:   time.Microsecond,
			MaxRetries:    128,
			BackoffFactor: 1,
		})
	}
	return out
}

func TestSequentialLoadStore(t *testing.T) {
	rt := New(16, DefaultConfig())
	r := rng.New(1)
	err := rt.Atomic(r, func(tx *Tx) error {
		tx.Store(3, 42)
		if got := tx.Load(3); got != 42 {
			t.Errorf("read-own-write = %d", got)
		}
		if got := tx.Load(4); got != 0 {
			t.Errorf("fresh word = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.ReadCommitted(3); got != 42 {
		t.Fatalf("committed value = %d", got)
	}
	if rt.Stats.Commits.Load() != 1 {
		t.Fatalf("commits = %d", rt.Stats.Commits.Load())
	}
}

func TestUserErrorAbortsWithoutRetry(t *testing.T) {
	rt := New(4, DefaultConfig())
	r := rng.New(1)
	boom := errors.New("boom")
	calls := 0
	err := rt.Atomic(r, func(tx *Tx) error {
		calls++
		tx.Store(0, 99)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times", calls)
	}
	if got := rt.ReadCommitted(0); got != 0 {
		t.Fatalf("aborted write leaked: %d", got)
	}
	if rt.Stats.Commits.Load() != 0 {
		t.Fatal("user abort counted as commit")
	}
}

func TestLazyBuffering(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lazy = true
	rt := New(4, cfg)
	r := rng.New(1)
	_ = rt.Atomic(r, func(tx *Tx) error {
		tx.Store(0, 7)
		// In lazy mode the word must not be globally visible yet.
		if rt.words[0].Load() != 0 {
			t.Error("lazy write hit memory before commit")
		}
		if tx.Load(0) != 7 {
			t.Error("read-own-write through buffer failed")
		}
		return nil
	})
	if rt.ReadCommitted(0) != 7 {
		t.Fatal("lazy commit lost the write")
	}
}

func TestEagerInPlaceAndRollback(t *testing.T) {
	cfg := DefaultConfig()
	rt := New(4, cfg)
	r := rng.New(1)
	fail := errors.New("fail")
	_ = rt.Atomic(r, func(tx *Tx) error {
		tx.Store(0, 7)
		// Eager mode writes in place while holding the lock.
		if rt.words[0].Load() != 7 {
			t.Error("eager write not in place")
		}
		if rt.meta[0].lock.Load()&1 != 1 {
			t.Error("eager write did not lock the word")
		}
		return fail
	})
	if rt.ReadCommitted(0) != 0 {
		t.Fatal("rollback did not restore the pre-image")
	}
	if rt.meta[0].lock.Load()&1 != 0 {
		t.Fatal("rollback left the word locked")
	}
}

// TestCounterConcurrent is the core serializability test: G
// goroutines each add 1 to a shared counter N times; the final value
// must be exactly G*N for every configuration.
func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 8, 2000
	for _, cfg := range configs() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			t.Parallel()
			rt := New(8, cfg)
			root := rng.New(99)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				r := root.Split()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						_ = rt.Atomic(r, func(tx *Tx) error {
							tx.Store(0, tx.Load(0)+1)
							return nil
						})
					}
				}()
			}
			wg.Wait()
			if got := rt.ReadCommitted(0); got != goroutines*perG {
				t.Fatalf("counter = %d, want %d (stats %v)", got, goroutines*perG, rt.Stats.Snapshot())
			}
			if rt.Stats.Commits.Load() != goroutines*perG {
				t.Fatalf("commits = %d", rt.Stats.Commits.Load())
			}
		})
	}
}

// TestTransfersConserveBalance runs random transfers among accounts;
// serializability implies the total is conserved and every snapshot a
// transaction observes is consistent.
func TestTransfersConserveBalance(t *testing.T) {
	const accounts, goroutines, perG = 16, 8, 1500
	const initial = 1000
	for _, cfg := range configs() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			t.Parallel()
			rt := New(accounts, cfg)
			seed := rng.New(7)
			for i := 0; i < accounts; i++ {
				i := i
				_ = rt.Atomic(seed, func(tx *Tx) error {
					tx.Store(i, initial)
					return nil
				})
			}
			root := rng.New(1234)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				r := root.Split()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						_ = rt.Atomic(r, func(tx *Tx) error {
							a, b := r.TwoDistinct(accounts)
							av, bv := tx.Load(a), tx.Load(b)
							tx.Store(a, av-1)
							tx.Store(b, bv+1)
							return nil
						})
					}
				}()
			}
			wg.Wait()
			var total uint64
			for i := 0; i < accounts; i++ {
				total += rt.ReadCommitted(i)
			}
			if total != accounts*initial {
				t.Fatalf("balance drift: %d != %d (stats %v)", total, accounts*initial, rt.Stats.Snapshot())
			}
		})
	}
}

// TestOpacity verifies that no transaction — even one that later
// aborts — observes a torn snapshot of two words that are always
// updated together.
func TestOpacity(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		lazy := lazy
		t.Run(fmt.Sprintf("lazy=%v", lazy), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			cfg.Lazy = lazy
			rt := New(2, cfg)
			stop := make(chan struct{})
			var torn atomic64Bool
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				r := rng.New(1)
				for i := uint64(1); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					_ = rt.Atomic(r, func(tx *Tx) error {
						tx.Store(0, i)
						tx.Store(1, i)
						return nil
					})
				}
			}()
			go func() {
				defer wg.Done()
				r := rng.New(2)
				for {
					select {
					case <-stop:
						return
					default:
					}
					_ = rt.Atomic(r, func(tx *Tx) error {
						a := tx.Load(0)
						b := tx.Load(1)
						if a != b {
							torn.set()
						}
						return nil
					})
				}
			}()
			time.Sleep(300 * time.Millisecond)
			close(stop)
			wg.Wait()
			if torn.get() {
				t.Fatal("a transaction observed a torn snapshot")
			}
		})
	}
}

// atomic64Bool is a tiny helper for cross-goroutine flags in tests.
type atomic64Bool struct {
	mu sync.Mutex
	v  bool
}

func (b *atomic64Bool) set()      { b.mu.Lock(); b.v = true; b.mu.Unlock() }
func (b *atomic64Bool) get() bool { b.mu.Lock(); defer b.mu.Unlock(); return b.v }

func TestIrrevocableFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRetries = 1 // fall back almost immediately
	rt := New(4, cfg)
	const goroutines, perG = 8, 300
	root := rng.New(5)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		r := root.Split()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_ = rt.Atomic(r, func(tx *Tx) error {
					tx.Store(0, tx.Load(0)+1)
					busySpin(300) // hold the lock to force overlap
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if got := rt.ReadCommitted(0); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	// On an oversubscribed machine goroutines can serialize and never
	// abort, in which case the fallback is legitimately idle.
	if rt.Stats.Aborts.Load() > uint64(goroutines) && rt.Stats.Irrevocable.Load() == 0 {
		t.Fatalf("fallback never engaged despite MaxRetries=1 and %d aborts", rt.Stats.Aborts.Load())
	}
}

// stageConflict forces one real lock conflict on word 0 regardless of
// GOMAXPROCS or core count: the receiver acquires the encounter lock
// and parks on a channel; the requestor then touches the same word and
// must go through the full onLocked path (grace wait + resolution).
// The receiver is released only after the requestor's resolution has
// been observed in the counters, so the conflict cannot be skipped by
// goroutine serialization on a loaded or single-core box.
func stageConflict(t *testing.T, pol core.Policy) *Runtime {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Policy = pol
	cfg.MaxRetries = 0 // never escalate to irrevocable (which kills)
	rt := New(2, cfg)
	root := rng.New(3)
	recvRng := root.Split()
	reqRng := root.Split()

	held := make(chan struct{}, 4)
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // receiver: holds the lock until released
		defer wg.Done()
		_ = rt.Atomic(recvRng, func(tx *Tx) error {
			tx.Store(0, tx.Load(0)+1)
			select {
			case held <- struct{}{}:
			default: // retries after a kill must not block
			}
			<-release
			return nil
		})
	}()
	<-held

	wg.Add(1)
	go func() { // requestor: conflicts on word 0
		defer wg.Done()
		_ = rt.Atomic(reqRng, func(tx *Tx) error {
			tx.Store(0, tx.Load(0)+1)
			return nil
		})
	}()

	// Wait until the requestor has resolved the conflict, then let the
	// receiver go. Kills (RW) and self aborts (RA) land before the
	// lock is released, so this cannot hang.
	resolved := func() bool {
		if pol == core.RequestorWins {
			return rt.Stats.Kills.Load() > 0
		}
		return rt.Stats.SelfAborts.Load() > 0
	}
	deadline := time.Now().Add(10 * time.Second)
	for !resolved() {
		if time.Now().After(deadline) {
			t.Fatalf("%v: staged conflict never resolved (stats %v)", pol, rt.Stats.Snapshot())
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	return rt
}

func TestPolicyKillAccounting(t *testing.T) {
	// Requestor-wins must resolve a conflict by killing the receiver;
	// requestor aborts must never kill (only self aborts).
	rw := stageConflict(t, core.RequestorWins)
	if rw.Stats.Kills.Load() == 0 {
		t.Error("requestor-wins conflict produced no kills")
	}
	if rw.Stats.GraceWaits.Load() == 0 {
		t.Error("requestor-wins conflict skipped the grace wait")
	}
	ra := stageConflict(t, core.RequestorAborts)
	if ra.Stats.Kills.Load() != 0 {
		t.Errorf("requestor-aborts produced %d kills", ra.Stats.Kills.Load())
	}
	if ra.Stats.SelfAborts.Load() == 0 {
		t.Error("requestor-aborts conflict produced no self aborts")
	}
	// Both runtimes must still settle to consistent committed state.
	for _, rt := range []*Runtime{rw, ra} {
		if got := rt.ReadCommitted(0); got != 2 {
			t.Errorf("counter = %d, want 2 (one commit per side)", got)
		}
	}
}

// busySpin burns roughly n loop iterations of CPU (no sleeping, so
// the transaction stays on-CPU like a real computation).
func busySpin(n int) {
	x := uint64(1)
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	if x == 42 { // defeat dead-code elimination
		panic("unreachable")
	}
}

func TestProfilerMean(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseMeanProfile = true
	cfg.Strategy = strategy.MeanRW{}
	rt := New(2, cfg)
	r := rng.New(1)
	for i := 0; i < 50; i++ {
		_ = rt.Atomic(r, func(tx *Tx) error {
			tx.Store(0, tx.Load(0)+1)
			return nil
		})
	}
	if rt.profileMean() <= 0 {
		t.Fatal("profiler mean not populated")
	}
}

func TestReadCommittedStability(t *testing.T) {
	rt := New(1, DefaultConfig())
	r := rng.New(1)
	_ = rt.Atomic(r, func(tx *Tx) error { tx.Store(0, 5); return nil })
	for i := 0; i < 100; i++ {
		if rt.ReadCommitted(0) != 5 {
			t.Fatal("ReadCommitted unstable")
		}
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, DefaultConfig())
}

func TestConfigString(t *testing.T) {
	c := DefaultConfig()
	if c.String() != "requestor-wins/RRW/eager" {
		t.Fatalf("String = %q", c.String())
	}
	c.Strategy = nil
	c.Lazy = true
	c.Policy = core.RequestorAborts
	if c.String() != "requestor-aborts/NO_DELAY/lazy" {
		t.Fatalf("String = %q", c.String())
	}
}

func BenchmarkUncontendedTx(b *testing.B) {
	rt := New(64, DefaultConfig())
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rt.Atomic(r, func(tx *Tx) error {
			tx.Store(i%64, uint64(i))
			return nil
		})
	}
}

func BenchmarkContendedCounter(b *testing.B) {
	rt := New(1, DefaultConfig())
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(uint64(time.Now().UnixNano()))
		for pb.Next() {
			_ = rt.Atomic(r, func(tx *Tx) error {
				tx.Store(0, tx.Load(0)+1)
				return nil
			})
		}
	})
}
