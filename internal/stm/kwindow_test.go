package stm

import (
	"strings"
	"sync"
	"testing"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/rng"
	"txconflict/internal/strategy"
)

func TestKEstimatorWindow(t *testing.T) {
	e := newKEstimator(4)
	if e.estimate() != 0 {
		t.Fatal("empty estimator must report 0")
	}
	e.observe(2)
	e.observe(2)
	if got := e.estimate(); got != 2 {
		t.Fatalf("estimate = %v, want 2", got)
	}
	// Fill the window with 6s: the early 2s must age out.
	for i := 0; i < 4; i++ {
		e.observe(6)
	}
	if got := e.estimate(); got != 6 {
		t.Fatalf("estimate = %v, want 6 after window rollover", got)
	}
}

func TestKEstimateDisabledByDefault(t *testing.T) {
	rt := New(8, DefaultConfig())
	if rt.KEstimate() != 0 {
		t.Fatal("KEstimate must be 0 with KWindow = 0")
	}
	if strings.Contains(rt.Config().String(), "kw") {
		t.Fatalf("config string %q must not mention kw", rt.Config().String())
	}
}

func TestKWindowConfigString(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KWindow = 64
	if got := cfg.String(); !strings.Contains(got, "kw64") {
		t.Fatalf("config string %q missing kw64", got)
	}
}

// TestKWindowObservesConflicts drives a contended counter with the
// windowed estimator enabled: the invariant must hold and, once
// grace waits occurred, the estimate must be a plausible chain
// length (>= 2).
func TestKWindowObservesConflicts(t *testing.T) {
	cfg := Config{
		Policy:      core.RequestorWins,
		Strategy:    strategy.UniformRW{},
		KWindow:     16,
		CleanupCost: time.Microsecond,
		MaxRetries:  256,
	}
	rt := New(1, cfg)
	const workers = 4
	const opsPer = 300
	var wg sync.WaitGroup
	root := rng.New(3)
	for w := 0; w < workers; w++ {
		r := root.Split()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				_ = rt.Atomic(r, func(tx *Tx) error {
					tx.Store(0, tx.Load(0)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if got := rt.ReadCommitted(0); got != workers*opsPer {
		t.Fatalf("counter = %d, want %d", got, workers*opsPer)
	}
	if rt.Stats.GraceWaits.Load() > 0 {
		if est := rt.KEstimate(); est < 2 {
			t.Fatalf("KEstimate = %v after conflicts, want >= 2", est)
		}
	}
}
