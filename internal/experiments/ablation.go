package experiments

import (
	"fmt"

	"txconflict/internal/core"
	"txconflict/internal/htm"
	"txconflict/internal/report"
	"txconflict/internal/scenario"
	"txconflict/internal/strategy"
	"txconflict/internal/workload"
)

// Ablations runs the design-choice ablations called out in DESIGN.md
// §5 on one benchmark at one thread count, reporting throughput and
// abort behaviour per variant:
//
//   - chain-length estimate: directory queue length vs fixed k=2;
//   - abort cost B: elapsed+cleanup (paper footnote 1) vs fixed;
//   - Corollary 2 backoff: off vs ×2;
//   - policy: requestor wins vs requestor aborts vs Section 9 hybrid;
//   - topology: uniform network vs 4x4 mesh.
func Ablations(bench string, threads int, cfg Fig3Config) (*report.Table, error) {
	type variant struct {
		name   string
		adjust func(p *htm.Params)
	}
	variants := []variant{
		{"baseline RW + RRW (queue k, B=elapsed+cleanup)", func(p *htm.Params) {}},
		{"fixed k=2", func(p *htm.Params) { p.FixedChainK = 2 }},
		{"fixed B=500", func(p *htm.Params) { p.FixedB = 500 }},
		{"Cor2 backoff x2", func(p *htm.Params) {
			p.BackoffFactor = 2
			p.MaxBackoffB = 1e6
		}},
		{"policy RA + RRA", func(p *htm.Params) {
			p.Policy = core.RequestorAborts
			p.Strategy = strategy.ExpRA{}
		}},
		{"hybrid policy (Sec 9)", func(p *htm.Params) {
			p.HybridPolicy = true
			p.Strategy = strategy.Hybrid{}
		}},
		{"mean-profiled strategy", func(p *htm.Params) {
			p.UseMeanProfile = true
			p.Strategy = strategy.MeanRW{}
		}},
		{"4x4 mesh topology", func(p *htm.Params) { p.MeshDim = 4 }},
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Ablations (%s, %d threads)", bench, threads),
		Columns: []string{"variant", "ops/s", "aborts/commit", "conflicts", "graceCommits"},
	}
	for _, v := range variants {
		w, err := workload.ByName(bench, scenario.Options{Length: cfg.Length})
		if err != nil {
			return nil, err
		}
		p := htm.DefaultParams(threads)
		p.Policy = cfg.Policy
		p.Strategy = strategy.UniformRW{}
		p.Seed = cfg.Seed
		v.adjust(&p)
		m := htm.NewMachine(p, w)
		met := m.Run(cfg.Cycles)
		t.AddRow(v.name, met.OpsPerSecond(cfg.GHz), met.AbortRate(), met.Conflicts, met.GraceCommits)
	}
	return t, nil
}
