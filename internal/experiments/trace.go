package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"txconflict/internal/htm"
	"txconflict/internal/report"
	"txconflict/internal/scenario"
	"txconflict/internal/strategy"
	"txconflict/internal/trace"
	"txconflict/internal/workload"
)

// RecordTrace runs one recorded measurement of a registry scenario on
// the real-goroutine STM runtime and returns the captured trace: the
// "measure" leg of the Section 1 profile-to-simulation loop. The
// scenario invariant is verified before the trace is handed back, so
// a returned trace always comes from a serializable run.
func RecordTrace(bench string, cfg STMConfig, workers int, d time.Duration) (*trace.Trace, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 4 {
			workers = 4
		}
	}
	if d <= 0 {
		d = cfg.Duration
		if d <= 0 {
			d = 200 * time.Millisecond
		}
	}
	sc, err := scenario.ByName(bench, scenario.Options{Workers: workers, Length: cfg.Length})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	sCfg := stmRuntimeConfig(cfg, strategy.UniformRW{})
	rec := trace.NewRecorder(sc.Name(), workers, sCfg.String())
	// Stamp the machine's measured wall-ns per compute unit before the
	// run, so the capture carries its own unit→cycle conversion.
	rec.SetUnitNs(scenario.CalibrateUnitNs())
	sCfg.Trace = rec
	rn := scenario.NewSTMRunner(sc, sCfg)
	res := rn.Drive(workers, d, cfg.Seed)
	if err := rn.Check(res.PerWorker); err != nil {
		return nil, fmt.Errorf("experiments: recorded run: %w", err)
	}
	tr := rec.Snapshot()
	if tr.Commits() == 0 {
		return nil, fmt.Errorf("experiments: recorded run of %q committed nothing in %v", bench, d)
	}
	return tr, nil
}

// FidelityConfig tunes the TraceFidelity comparison.
type FidelityConfig struct {
	// Workers is the replay concurrency on both backends (default:
	// the trace's recorded worker count, capped at GOMAXPROCS).
	Workers int
	// Cycles is the simulated duration of the HTM leg.
	Cycles uint64
	// Duration is the wall-clock duration of the STM leg.
	Duration time.Duration
	// Seed feeds both backends' random streams.
	Seed uint64
	// STM carries the replay runtime's mode knobs (Policy, Lazy,
	// Shards, KWindow) — set them to the recorded run's configuration
	// or the comparison measures a config mismatch, not fidelity. The
	// zero value is the eager requestor-wins default.
	STM STMConfig
}

// TraceFidelity is the "validate" leg of the loop: replay a recorded
// trace's exact footprints on the HTM simulator and on the STM
// runtime, verify the replay invariant on both committed images, and
// tabulate recorded vs simulated vs re-measured throughput and abort
// behaviour. Simulator throughput is in committed transactions per
// 10⁹ simulated cycles (ops/s at 1 GHz), the two real-time rows in
// committed transactions per wall-clock second — the comparison
// currency across the gap is abort rate and relative shape, as in
// the paper's Graphite-vs-real validation.
func TraceFidelity(tr *trace.Trace, cfg FidelityConfig) (*report.Table, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = tr.Workers
		if max := runtime.GOMAXPROCS(0); workers > max {
			workers = max
		}
		if workers < 1 {
			workers = 1
		}
	}
	if cfg.Cycles == 0 {
		cfg.Cycles = 500_000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 100 * time.Millisecond
	}
	prof := trace.NewProfile(tr)

	// HTM leg: the replay compiled to simulator ops, with recorded
	// compute units converted to simulated cycles via the trace's
	// calibration header (uncalibrated traces fall back to 1:1).
	simSc, err := trace.ReplayScenarioCycles(tr, scenario.Options{Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	w := workload.FromScenario(simSc)
	p := htm.DefaultParams(workers)
	p.Policy = cfg.STM.Policy
	p.Strategy = strategy.UniformRW{}
	p.Seed = cfg.Seed
	m := htm.NewMachine(p, w)
	met := m.Run(cfg.Cycles)
	fin := m.Drain()
	if err := w.Check(m.Dir.ReadWord, fin.PerCoreCommits); err != nil {
		return nil, fmt.Errorf("experiments: HTM replay: %w", err)
	}

	// STM leg: a fresh replay instance as real transactions.
	stmSc, err := trace.ReplayScenario(tr, scenario.Options{Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	sCfg := stmRuntimeConfig(cfg.STM, strategy.UniformRW{})
	rn := scenario.NewSTMRunner(stmSc, sCfg)
	res := rn.Drive(workers, cfg.Duration, cfg.Seed)
	if err := rn.Check(res.PerWorker); err != nil {
		return nil, fmt.Errorf("experiments: STM replay: %w", err)
	}
	snap := rn.Runtime().Stats.Snapshot()

	simCommitsPerSec := met.OpsPerSecond(1)
	var simAbortsPerCommit float64
	if met.Commits > 0 {
		simAbortsPerCommit = float64(met.Aborts) / float64(met.Commits)
	}
	var stmCommitsPerSec, stmAbortsPerCommit float64
	if res.ElapsedSec > 0 {
		stmCommitsPerSec = float64(snap["commits"]) / res.ElapsedSec
	}
	if snap["commits"] > 0 {
		stmAbortsPerCommit = float64(snap["aborts"]) / float64(snap["commits"])
	}

	t := &report.Table{
		Title: fmt.Sprintf("trace fidelity (%s): recorded vs simulated vs replayed, workers=%d",
			tr.Scenario, workers),
		Columns: []string{"source", "commits", "commits/s", "aborts/commit", "kills"},
	}
	t.AddRow("recorded (STM, original run)", prof.Commits, prof.CommitsPerSec,
		prof.AbortsPerCommit, prof.KillsIssued)
	t.AddRow("simulator (HTM, replayed)", met.Commits, simCommitsPerSec,
		simAbortsPerCommit, fin.Conflicts)
	t.AddRow("measured (STM, replayed)", snap["commits"], stmCommitsPerSec,
		stmAbortsPerCommit, snap["kills"])
	if stmCommitsPerSec > 0 {
		t.AddNote("sim-vs-real throughput ratio %.3g (sim at 1 GHz, %d cycles; real %v wall clock)",
			simCommitsPerSec/stmCommitsPerSec, cfg.Cycles, cfg.Duration)
	}
	t.AddNote("abort-rate delta sim-real = %+.3f aborts/commit", simAbortsPerCommit-stmAbortsPerCommit)
	if tr.UnitNs > 0 {
		t.AddNote("sim leg calibrated: %.3g ns/unit recorded, units replayed as cycles ×%.3g", tr.UnitNs, tr.CycleScale())
	} else {
		t.AddNote("sim leg uncalibrated (pre-calibration trace): 1 unit = 1 cycle")
	}
	t.AddNote("trace: %d records, %d committed, mean len %.1f, mean footprint %.1fr/%.1fw",
		prof.Records, prof.Commits, prof.MeanLength, prof.MeanReads, prof.MeanWrites)
	return t, nil
}

// TraceFormatPerf is one cell of the trace-format sweep: one on-disk
// format encoding a recorded hotspot trace, with the size and codec
// throughput a capacity plan reads (the traceSweep section of
// BENCH_stm.json). RatioVsJSONL is jsonl-bytes / this-format-bytes,
// so the binary cell's value is its compression factor.
type TraceFormatPerf struct {
	Format         string  `json:"format"`
	Records        int     `json:"records"`
	Bytes          int     `json:"bytes"`
	BytesPerRecord float64 `json:"bytesPerRecord"`
	EncodeNsPerRec float64 `json:"encodeNsPerRecord"`
	DecodeNsPerRec float64 `json:"decodeNsPerRecord"`
	RatioVsJSONL   float64 `json:"ratioVsJsonl,omitempty"`
}

// traceSweepRecords is the sweep's working-set size: a real recorded
// hotspot trace tiled out to at least this many records, large enough
// that per-file overheads (header, index footer) vanish from the
// bytes/record quotient.
const traceSweepRecords = 10_000

// TraceFormatSweep records a short hotspot run on the STM runtime,
// tiles the capture to traceSweepRecords records, and measures both
// trace formats encoding and decoding it in memory.
func TraceFormatSweep(cfg STMConfig) ([]TraceFormatPerf, error) {
	d := cfg.Duration
	if d <= 0 || d > 200*time.Millisecond {
		d = 200 * time.Millisecond
	}
	tr, err := RecordTrace("hotspot", cfg, 0, d)
	if err != nil {
		return nil, fmt.Errorf("experiments: trace sweep: %w", err)
	}
	tiled := TileTrace(tr, traceSweepRecords)
	cells := make([]TraceFormatPerf, 0, 2)
	var jsonlBytes int
	for _, format := range []string{"jsonl", "binary"} {
		encode := trace.Write
		decode := func(b []byte) (*trace.Trace, error) { return trace.Read(bytes.NewReader(b)) }
		if format == "binary" {
			encode = trace.WriteBinary
			decode = func(b []byte) (*trace.Trace, error) { return trace.ReadBinary(bytes.NewReader(b)) }
		}
		var buf bytes.Buffer
		// Warm-up + sizing pass, then timed passes over the same bytes.
		if err := encode(&buf, tiled); err != nil {
			return nil, fmt.Errorf("experiments: trace sweep %s encode: %w", format, err)
		}
		raw := append([]byte(nil), buf.Bytes()...)
		const passes = 3
		start := time.Now()
		for i := 0; i < passes; i++ {
			buf.Reset()
			if err := encode(&buf, tiled); err != nil {
				return nil, fmt.Errorf("experiments: trace sweep %s encode: %w", format, err)
			}
		}
		encNs := float64(time.Since(start).Nanoseconds()) / float64(passes*len(tiled.Records))
		start = time.Now()
		for i := 0; i < passes; i++ {
			if _, err := decode(raw); err != nil {
				return nil, fmt.Errorf("experiments: trace sweep %s decode: %w", format, err)
			}
		}
		decNs := float64(time.Since(start).Nanoseconds()) / float64(passes*len(tiled.Records))
		cell := TraceFormatPerf{
			Format:         format,
			Records:        len(tiled.Records),
			Bytes:          len(raw),
			BytesPerRecord: float64(len(raw)) / float64(len(tiled.Records)),
			EncodeNsPerRec: encNs,
			DecodeNsPerRec: decNs,
		}
		if format == "jsonl" {
			jsonlBytes = len(raw)
		} else if len(raw) > 0 {
			cell.RatioVsJSONL = float64(jsonlBytes) / float64(len(raw))
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// TileTrace repeats a trace's records until it holds at least n,
// shifting each copy's start times past the previous copy's span so
// the tiled trace still looks like one long monotone capture (what
// the format sweep and the size-regression test encode). The records
// share footprint slices with the source; treat the result as
// read-only.
func TileTrace(tr *trace.Trace, n int) *trace.Trace {
	if len(tr.Records) == 0 || len(tr.Records) >= n {
		return tr
	}
	span := tr.SpanNs() + 1
	out := &trace.Trace{Header: tr.Header}
	out.Records = make([]trace.Record, 0, n)
	for shift := int64(0); len(out.Records) < n; shift += span {
		for i := range tr.Records {
			r := tr.Records[i]
			r.StartNs += shift
			out.Records = append(out.Records, r)
			if len(out.Records) >= n {
				break
			}
		}
	}
	out.Header.Count = len(out.Records)
	return out
}
