package experiments

import (
	"fmt"
	"runtime"
	"time"

	"txconflict/internal/htm"
	"txconflict/internal/report"
	"txconflict/internal/scenario"
	"txconflict/internal/strategy"
	"txconflict/internal/trace"
	"txconflict/internal/workload"
)

// RecordTrace runs one recorded measurement of a registry scenario on
// the real-goroutine STM runtime and returns the captured trace: the
// "measure" leg of the Section 1 profile-to-simulation loop. The
// scenario invariant is verified before the trace is handed back, so
// a returned trace always comes from a serializable run.
func RecordTrace(bench string, cfg STMConfig, workers int, d time.Duration) (*trace.Trace, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 4 {
			workers = 4
		}
	}
	if d <= 0 {
		d = cfg.Duration
		if d <= 0 {
			d = 200 * time.Millisecond
		}
	}
	sc, err := scenario.ByName(bench, scenario.Options{Workers: workers, Length: cfg.Length})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	sCfg := stmRuntimeConfig(cfg, strategy.UniformRW{})
	rec := trace.NewRecorder(sc.Name(), workers, sCfg.String())
	sCfg.Trace = rec
	rn := scenario.NewSTMRunner(sc, sCfg)
	res := rn.Drive(workers, d, cfg.Seed)
	if err := rn.Check(res.PerWorker); err != nil {
		return nil, fmt.Errorf("experiments: recorded run: %w", err)
	}
	tr := rec.Snapshot()
	if tr.Commits() == 0 {
		return nil, fmt.Errorf("experiments: recorded run of %q committed nothing in %v", bench, d)
	}
	return tr, nil
}

// FidelityConfig tunes the TraceFidelity comparison.
type FidelityConfig struct {
	// Workers is the replay concurrency on both backends (default:
	// the trace's recorded worker count, capped at GOMAXPROCS).
	Workers int
	// Cycles is the simulated duration of the HTM leg.
	Cycles uint64
	// Duration is the wall-clock duration of the STM leg.
	Duration time.Duration
	// Seed feeds both backends' random streams.
	Seed uint64
	// STM carries the replay runtime's mode knobs (Policy, Lazy,
	// Shards, KWindow) — set them to the recorded run's configuration
	// or the comparison measures a config mismatch, not fidelity. The
	// zero value is the eager requestor-wins default.
	STM STMConfig
}

// TraceFidelity is the "validate" leg of the loop: replay a recorded
// trace's exact footprints on the HTM simulator and on the STM
// runtime, verify the replay invariant on both committed images, and
// tabulate recorded vs simulated vs re-measured throughput and abort
// behaviour. Simulator throughput is in committed transactions per
// 10⁹ simulated cycles (ops/s at 1 GHz), the two real-time rows in
// committed transactions per wall-clock second — the comparison
// currency across the gap is abort rate and relative shape, as in
// the paper's Graphite-vs-real validation.
func TraceFidelity(tr *trace.Trace, cfg FidelityConfig) (*report.Table, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = tr.Workers
		if max := runtime.GOMAXPROCS(0); workers > max {
			workers = max
		}
		if workers < 1 {
			workers = 1
		}
	}
	if cfg.Cycles == 0 {
		cfg.Cycles = 500_000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 100 * time.Millisecond
	}
	prof := trace.NewProfile(tr)

	// HTM leg: the replay compiled to simulator ops.
	simSc, err := trace.ReplayScenario(tr, scenario.Options{Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	w := workload.FromScenario(simSc)
	p := htm.DefaultParams(workers)
	p.Policy = cfg.STM.Policy
	p.Strategy = strategy.UniformRW{}
	p.Seed = cfg.Seed
	m := htm.NewMachine(p, w)
	met := m.Run(cfg.Cycles)
	fin := m.Drain()
	if err := w.Check(m.Dir.ReadWord, fin.PerCoreCommits); err != nil {
		return nil, fmt.Errorf("experiments: HTM replay: %w", err)
	}

	// STM leg: a fresh replay instance as real transactions.
	stmSc, err := trace.ReplayScenario(tr, scenario.Options{Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	sCfg := stmRuntimeConfig(cfg.STM, strategy.UniformRW{})
	rn := scenario.NewSTMRunner(stmSc, sCfg)
	res := rn.Drive(workers, cfg.Duration, cfg.Seed)
	if err := rn.Check(res.PerWorker); err != nil {
		return nil, fmt.Errorf("experiments: STM replay: %w", err)
	}
	snap := rn.Runtime().Stats.Snapshot()

	simCommitsPerSec := met.OpsPerSecond(1)
	var simAbortsPerCommit float64
	if met.Commits > 0 {
		simAbortsPerCommit = float64(met.Aborts) / float64(met.Commits)
	}
	var stmCommitsPerSec, stmAbortsPerCommit float64
	if res.ElapsedSec > 0 {
		stmCommitsPerSec = float64(snap["commits"]) / res.ElapsedSec
	}
	if snap["commits"] > 0 {
		stmAbortsPerCommit = float64(snap["aborts"]) / float64(snap["commits"])
	}

	t := &report.Table{
		Title: fmt.Sprintf("trace fidelity (%s): recorded vs simulated vs replayed, workers=%d",
			tr.Scenario, workers),
		Columns: []string{"source", "commits", "commits/s", "aborts/commit", "kills"},
	}
	t.AddRow("recorded (STM, original run)", prof.Commits, prof.CommitsPerSec,
		prof.AbortsPerCommit, prof.KillsIssued)
	t.AddRow("simulator (HTM, replayed)", met.Commits, simCommitsPerSec,
		simAbortsPerCommit, fin.Conflicts)
	t.AddRow("measured (STM, replayed)", snap["commits"], stmCommitsPerSec,
		stmAbortsPerCommit, snap["kills"])
	if stmCommitsPerSec > 0 {
		t.AddNote("sim-vs-real throughput ratio %.3g (sim at 1 GHz, %d cycles; real %v wall clock)",
			simCommitsPerSec/stmCommitsPerSec, cfg.Cycles, cfg.Duration)
	}
	t.AddNote("abort-rate delta sim-real = %+.3f aborts/commit", simAbortsPerCommit-stmAbortsPerCommit)
	t.AddNote("trace: %d records, %d committed, mean len %.1f, mean footprint %.1fr/%.1fw",
		prof.Records, prof.Commits, prof.MeanLength, prof.MeanReads, prof.MeanWrites)
	return t, nil
}
