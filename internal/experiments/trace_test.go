package experiments

import (
	"strings"
	"testing"
	"time"

	"txconflict/internal/core"
)

// TestTraceFidelity exercises the full measure-model-validate loop on
// a small in-memory trace: record a contended hotspot run on the STM,
// replay the identical footprints on the HTM simulator and the STM
// runtime, and check the three-row comparison table. CI runs this
// under the race detector (make race-short).
func TestTraceFidelity(t *testing.T) {
	cfg := STMConfig{Policy: core.RequestorWins, Seed: 5}
	d := 40 * time.Millisecond
	if testing.Short() {
		d = 20 * time.Millisecond
	}
	tr, err := RecordTrace("hotspot", cfg, 2, d)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Commits() == 0 || tr.Scenario != "hotspot" {
		t.Fatalf("recorded trace: %d records, %d commits, scenario %q",
			len(tr.Records), tr.Commits(), tr.Scenario)
	}
	tab, err := TraceFidelity(tr, FidelityConfig{
		Workers:  2,
		Cycles:   150_000,
		Duration: d,
		Seed:     5,
		STM:      cfg, // replay under the recorded run's config
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("fidelity table has %d rows, want 3 (recorded/simulator/measured)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] == "0" {
			t.Fatalf("fidelity row %q committed nothing: %v", row[0], row)
		}
	}
	if !strings.Contains(tab.Title, "hotspot") {
		t.Fatalf("title = %q", tab.Title)
	}
}

// TestRecordTraceUnknownScenario pins the error contract: recording a
// scenario that is not registered surfaces the registry's sorted name
// list instead of a bare failure.
func TestRecordTraceUnknownScenario(t *testing.T) {
	_, err := RecordTrace("no-such-scenario", STMConfig{}, 1, 10*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") ||
		!strings.Contains(err.Error(), "hotspot") {
		t.Fatalf("err = %v, want unknown-scenario with registered names", err)
	}
}
