package experiments

import (
	"strconv"
	"testing"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/strategy"
)

func smallFig3() Fig3Config {
	return Fig3Config{
		Threads: []int{1, 4},
		Cycles:  300_000,
		Policy:  core.RequestorWins,
		Seed:    3,
		GHz:     1,
	}
}

func TestFigure3AllBenches(t *testing.T) {
	for _, bench := range []string{"stack", "queue", "txapp", "bimodal"} {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			tab, err := Figure3(bench, smallFig3())
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) != 2 || len(tab.Columns) != 5 {
				t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Columns))
			}
			for _, row := range tab.Rows {
				for _, cell := range row[1:] {
					v, err := strconv.ParseFloat(cell, 64)
					if err != nil || v <= 0 {
						t.Fatalf("%s: non-positive throughput cell %q in %v", bench, cell, row)
					}
				}
			}
		})
	}
}

func TestFigure3UnknownBench(t *testing.T) {
	if _, err := Figure3("nope", smallFig3()); err == nil {
		t.Fatal("unknown bench accepted")
	}
}

func TestFig3Metrics(t *testing.T) {
	met, err := Fig3Metrics("stack", 4, strategy.UniformRW{}, smallFig3())
	if err != nil {
		t.Fatal(err)
	}
	if met.Commits == 0 {
		t.Fatal("no commits in metrics probe")
	}
}

func TestSTMThroughputSmoke(t *testing.T) {
	cfg := STMConfig{
		Goroutines: []int{1, 2},
		Duration:   30 * time.Millisecond,
		Policy:     core.RequestorWins,
		Seed:       1,
	}
	tab, err := STMThroughput("txapp", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v <= 0 {
				t.Fatalf("bad throughput cell %q", cell)
			}
		}
	}
}

func TestSTMThroughputFlatArena(t *testing.T) {
	cfg := STMConfig{
		Goroutines: []int{2},
		Duration:   20 * time.Millisecond,
		Policy:     core.RequestorWins,
		Shards:     1,
		Seed:       1,
	}
	tab, err := STMThroughput("txapp", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestSTMAblations(t *testing.T) {
	cfg := STMConfig{
		Duration: 15 * time.Millisecond,
		Policy:   core.RequestorWins,
		Seed:     1,
	}
	tab, err := STMAblations("txapp", 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 { // baseline + 8 single-knob variants (incl. batched commit)
		t.Fatalf("ablation rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil || v <= 0 {
			t.Fatalf("ablation %q commits/s cell %q invalid", row[0], row[1])
		}
	}
	if _, err := STMAblations("nope", 2, cfg); err == nil {
		t.Fatal("unknown bench accepted")
	}
}

func TestSTMPerf(t *testing.T) {
	cfg := STMConfig{
		Goroutines: []int{1, 2},
		Duration:   15 * time.Millisecond,
		Policy:     core.RequestorWins,
		Seed:       1,
	}
	rep, err := STMPerf("txapp", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	if rep.Shards < 1 {
		t.Fatalf("shards = %d", rep.Shards)
	}
	for _, p := range rep.Points {
		if p.CommitsPerSec <= 0 {
			t.Fatalf("non-positive commits/sec at %d goroutines", p.Goroutines)
		}
	}
	if _, err := STMPerf("nope", cfg); err == nil {
		t.Fatal("unknown bench accepted")
	}
}

func TestSTMUnknownBench(t *testing.T) {
	if _, err := STMThroughput("nope", STMConfig{Goroutines: []int{1}, Duration: time.Millisecond}); err == nil {
		t.Fatal("unknown STM bench accepted")
	}
}

func TestDefaultConfigsSane(t *testing.T) {
	f := DefaultFig3Config()
	if len(f.Threads) == 0 || f.Cycles == 0 {
		t.Fatal("bad default fig3 config")
	}
	s := DefaultSTMConfig()
	if len(s.Goroutines) == 0 || s.Duration == 0 {
		t.Fatal("bad default stm config")
	}
	for i := 1; i < len(s.Goroutines); i++ {
		if s.Goroutines[i] <= s.Goroutines[i-1] {
			t.Fatal("goroutine levels not increasing")
		}
	}
}

func TestAblations(t *testing.T) {
	cfg := smallFig3()
	tab, err := Ablations("txapp", 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("ablation rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil || v <= 0 {
			t.Fatalf("ablation %q throughput cell %q invalid", row[0], row[1])
		}
	}
}

func TestTunedDelayFor(t *testing.T) {
	d, err := TunedDelayFor("stack", nil)
	if err != nil || d <= 0 {
		t.Fatalf("TunedDelayFor: %v, %v", d, err)
	}
	if _, err := TunedDelayFor("nope", nil); err == nil {
		t.Fatal("unknown bench accepted")
	}
}
