package experiments

import (
	"fmt"
	"runtime"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/report"
	"txconflict/internal/scenario"
	"txconflict/internal/stm"
	"txconflict/internal/strategy"
)

// stmMeasurement is one measured cell on the real-goroutine runtime:
// throughput in committed transactions per second plus the runtime's
// own counters.
type stmMeasurement struct {
	CommitsPerSec   float64
	AbortsPerCommit float64
	KEstimate       float64
	// CommitP50Ns/CommitP99Ns are commit-latency quantiles from the
	// runtime's metrics plane (0 when the runtime has no plane or
	// nothing committed).
	CommitP50Ns float64
	CommitP99Ns float64
	Stats       map[string]uint64
}

// measureSTM runs n goroutines against the scenario runner for
// roughly d, verifies the scenario invariant, and reads the runtime
// counters afterwards.
func measureSTM(rn *scenario.STMRunner, n int, d time.Duration, seed uint64) (stmMeasurement, error) {
	res := rn.Drive(n, d, seed)
	if err := rn.Check(res.PerWorker); err != nil {
		return stmMeasurement{}, err
	}
	snap := rn.Runtime().Stats.Snapshot()
	commits := snap["commits"]
	m := stmMeasurement{Stats: snap, KEstimate: rn.Runtime().KEstimate()}
	if res.ElapsedSec > 0 {
		m.CommitsPerSec = float64(commits) / res.ElapsedSec
	}
	if commits > 0 {
		m.AbortsPerCommit = float64(snap["aborts"]) / float64(commits)
	}
	if p := rn.Runtime().Metrics(); p != nil {
		ps := p.Snapshot()
		q := ps.Commit.Summary()
		m.CommitP50Ns, m.CommitP99Ns = q.P50, q.P99
	}
	return m, nil
}

// STMAblations runs the runtime-level design ablations on one
// benchmark at one goroutine count on the real STM: arena sharding
// (striped clocks vs the flat single-clock layout), locking mode,
// policy, the Section 9 hybrid switch, the windowed conflict-chain
// estimator, Corollary 2 backoff, and the NO_DELAY baseline. The base
// configuration is pinned (eager requestor-wins, RRW, default shards)
// so every row varies exactly one design choice against the same
// baseline; cfg supplies only Duration, Seed and Length.
func STMAblations(bench string, goroutines int, cfg STMConfig) (*report.Table, error) {
	if goroutines <= 0 {
		goroutines = runtime.GOMAXPROCS(0)
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 100 * time.Millisecond
	}
	type variant struct {
		name   string
		adjust func(c *stm.Config)
	}
	variants := []variant{
		{"baseline RW + RRW (striped clocks)", func(c *stm.Config) {}},
		{"flat arena (1 shard)", func(c *stm.Config) { c.Shards = 1 }},
		{"lazy (TL2 commit locking)", func(c *stm.Config) { c.Lazy = true }},
		{"lazy batched commit (CommitBatch=8)", func(c *stm.Config) {
			c.Lazy = true
			c.CommitBatch = 8
		}},
		{"policy RA + RRA", func(c *stm.Config) {
			c.Policy = core.RequestorAborts
			c.Strategy = strategy.ExpRA{}
		}},
		{"hybrid policy (Sec 9)", func(c *stm.Config) {
			c.HybridPolicy = true
			c.Strategy = strategy.Hybrid{}
		}},
		{"windowed k estimator (KWindow=64)", func(c *stm.Config) { c.KWindow = 64 }},
		{"Cor2 backoff x2", func(c *stm.Config) { c.BackoffFactor = 2 }},
		{"NO_DELAY", func(c *stm.Config) { c.Strategy = nil }},
	}
	t := &report.Table{
		Title:   fmt.Sprintf("STM ablations (%s, %d goroutines)", bench, goroutines),
		Columns: []string{"variant", "commits/s", "aborts/commit", "kills", "extensions"},
	}
	for _, v := range variants {
		sCfg := stm.Config{
			Policy:        core.RequestorWins,
			Strategy:      strategy.UniformRW{},
			CleanupCost:   2 * time.Microsecond,
			BackoffFactor: 1,
			MaxRetries:    256,
		}
		v.adjust(&sCfg)
		rn, err := stmScenario(bench, cfg.Length, cfg.Delta, goroutines, sCfg)
		if err != nil {
			return nil, err
		}
		m, err := measureSTM(rn, goroutines, cfg.Duration, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %q: %w", v.name, err)
		}
		t.AddRow(v.name, m.CommitsPerSec, m.AbortsPerCommit, m.Stats["kills"], m.Stats["extensions"])
	}
	return t, nil
}

// STMPerfPoint is one goroutine level of the perf snapshot.
type STMPerfPoint struct {
	Goroutines      int     `json:"goroutines"`
	CommitsPerSec   float64 `json:"commitsPerSec"`
	Aborts          uint64  `json:"aborts"`
	AbortsPerCommit float64 `json:"abortsPerCommit"`
	Kills           uint64  `json:"kills"`
	KEstimate       float64 `json:"kEstimate,omitempty"`
	// Commit-latency quantiles from the per-cell metrics plane, so the
	// perf history tracks the tail alongside throughput.
	CommitP50Ns float64 `json:"p50Ns,omitempty"`
	CommitP99Ns float64 `json:"p99Ns,omitempty"`
}

// STMScenarioPerf is one registry scenario's committed-transaction
// throughput, recorded so workload-level regressions show up in the
// perf history alongside the main trajectory.
type STMScenarioPerf struct {
	Scenario        string  `json:"scenario"`
	Goroutines      int     `json:"goroutines"`
	CommitsPerSec   float64 `json:"commitsPerSec"`
	AbortsPerCommit float64 `json:"abortsPerCommit"`
	CommitP50Ns     float64 `json:"p50Ns,omitempty"`
	CommitP99Ns     float64 `json:"p99Ns,omitempty"`
}

// STMBatchPerf is one CommitBatch level of the lazy group-commit
// sweep: committed-transaction throughput plus the combiner's own
// ledger (rounds and write sets committed by a combiner), so the
// recorded trajectory shows both the speedup and how much combining
// actually happened on the measuring machine.
type STMBatchPerf struct {
	CommitBatch   int     `json:"commitBatch"`
	CommitsPerSec float64 `json:"commitsPerSec"`
	CommitP50Ns   float64 `json:"p50Ns,omitempty"`
	CommitP99Ns   float64 `json:"p99Ns,omitempty"`
	Batches       uint64  `json:"batches,omitempty"`
	BatchCommits  uint64  `json:"batchCommits,omitempty"`
	BatchFails    uint64  `json:"batchFails,omitempty"`
}

// STMFoldPerf is one cell of the commutative-folding sweep: the
// hotspot counter benchmark at the highest goroutine level on the
// batched lazy path, folding off vs on at each batch bound. Speedup
// is the fold-on throughput over the fold-off cell at the same
// batch; on a single-CPU runner the combiner rarely collects
// multi-member batches, so parity (speedup ≈ 1) is the expected
// floor there, not a regression.
type STMFoldPerf struct {
	CommitBatch   int     `json:"commitBatch"`
	Fold          bool    `json:"fold"`
	CommitsPerSec float64 `json:"commitsPerSec"`
	FoldedCommits uint64  `json:"foldedCommits,omitempty"`
	FoldedWords   uint64  `json:"foldedWords,omitempty"`
	Speedup       float64 `json:"speedup,omitempty"`
}

// STMAdaptivePerf is one phase of the adaptive-control trajectory
// (make bench-adaptive): the tuned runtime's steady-state throughput
// against the best static policy for the phase.
type STMAdaptivePerf struct {
	Phase                 string  `json:"phase"`
	BestStatic            string  `json:"bestStatic"`
	BestCommitsPerSec     float64 `json:"bestCommitsPerSec"`
	AdaptiveCommitsPerSec float64 `json:"adaptiveCommitsPerSec"`
	Ratio                 float64 `json:"ratio"`
	FinalPolicy           string  `json:"finalPolicy"`
}

// STMPerfReport is the machine-readable perf trajectory snapshot
// emitted by `make bench-stm` into BENCH_stm.json.
type STMPerfReport struct {
	Bench       string `json:"bench"`
	Policy      string `json:"policy"`
	Lazy        bool   `json:"lazy"`
	CommitBatch int    `json:"commitBatch,omitempty"`
	Fold        bool   `json:"fold,omitempty"`
	Shards      int    `json:"shards"`
	KWindow     int    `json:"kWindow,omitempty"`
	// Machine stamp: bench-fleet appends reports from several runs
	// (and machines) into one BENCH_stm.json array, so each entry
	// records where and when it was measured.
	GOMAXPROCS int               `json:"gomaxprocs"`
	NumCPU     int               `json:"numcpu,omitempty"`
	GoVersion  string            `json:"goVersion,omitempty"`
	Timestamp  string            `json:"timestamp,omitempty"`
	DurationMS int64             `json:"durationMs"`
	Points     []STMPerfPoint    `json:"points"`
	Scenarios  []STMScenarioPerf `json:"scenarios,omitempty"`
	// BatchSweep is the lazy group-commit trajectory: the main bench
	// at the highest goroutine level, CommitBatch swept over
	// 0 (unbatched baseline) and the batch bounds.
	BatchSweep []STMBatchPerf `json:"batchSweep,omitempty"`
	// FoldSweep is the commutative-folding trajectory (STMConfig.Fold
	// / make bench-fold): hotspot at batch 4 and 8, fold off vs on.
	FoldSweep []STMFoldPerf `json:"foldSweep,omitempty"`
	// AdaptiveSweep is the phase-shift convergence trajectory
	// (STMConfig.Adaptive / make bench-adaptive); AdaptiveSwaps is
	// the tuned runtime's SetPolicy count across it.
	AdaptiveSweep []STMAdaptivePerf `json:"adaptiveSweep,omitempty"`
	AdaptiveSwaps uint64            `json:"adaptiveSwaps,omitempty"`
	// TraceSweep is the trace-format comparison (STMConfig.TraceSweep
	// / make bench-trace): both on-disk formats encoding the same
	// recorded hotspot trace, with bytes/record and codec throughput.
	TraceSweep []TraceFormatPerf `json:"traceSweep,omitempty"`
}

// STMPerf measures commits/sec and abort counts on the main benchmark
// at the configured goroutine levels (default 1/4/8), plus a
// per-scenario commits/sec sweep over the whole registry at a fixed
// level — the recorded perf trajectory for CI.
func STMPerf(bench string, cfg STMConfig) (*STMPerfReport, error) {
	levels := cfg.Goroutines
	if len(levels) == 0 {
		levels = []int{1, 4, 8}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 200 * time.Millisecond
	}
	rep := &STMPerfReport{
		Bench:       bench,
		Policy:      cfg.Policy.String(),
		Lazy:        cfg.Lazy,
		CommitBatch: cfg.CommitBatch,
		Fold:        cfg.Fold,
		KWindow:     cfg.KWindow,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GoVersion:   runtime.Version(),
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		DurationMS:  cfg.Duration.Milliseconds(),
	}
	for _, n := range levels {
		sCfg := stmRuntimeConfig(cfg, strategy.UniformRW{})
		rn, err := stmScenario(bench, cfg.Length, cfg.Delta, n, sCfg)
		if err != nil {
			return nil, err
		}
		rep.Shards = rn.Runtime().Shards()
		m, err := measureSTM(rn, n, cfg.Duration, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, STMPerfPoint{
			Goroutines:      n,
			CommitsPerSec:   m.CommitsPerSec,
			Aborts:          m.Stats["aborts"],
			AbortsPerCommit: m.AbortsPerCommit,
			Kills:           m.Stats["kills"],
			KEstimate:       m.KEstimate,
			CommitP50Ns:     m.CommitP50Ns,
			CommitP99Ns:     m.CommitP99Ns,
		})
	}
	// Per-scenario sweep: every registry workload at a fixed level,
	// half the main duration (the trajectory, not a deep benchmark).
	const scenarioLevel = 4
	scenarioDur := cfg.Duration / 2
	if cfg.Quick {
		return rep, nil
	}
	for _, name := range scenario.Names() {
		sCfg := stmRuntimeConfig(cfg, strategy.UniformRW{})
		rn, err := stmScenario(name, cfg.Length, cfg.Delta, scenarioLevel, sCfg)
		if err != nil {
			return nil, err
		}
		m, err := measureSTM(rn, scenarioLevel, scenarioDur, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: perf scenario %q: %w", name, err)
		}
		rep.Scenarios = append(rep.Scenarios, STMScenarioPerf{
			Scenario:        name,
			Goroutines:      scenarioLevel,
			CommitsPerSec:   m.CommitsPerSec,
			AbortsPerCommit: m.AbortsPerCommit,
			CommitP50Ns:     m.CommitP50Ns,
			CommitP99Ns:     m.CommitP99Ns,
		})
	}
	// Lazy group-commit sweep at the highest level: batch=0 is the
	// unbatched lazy baseline the batched cells are read against.
	batchLevel := levels[len(levels)-1]
	for _, bsz := range []int{0, 2, 4, 8} {
		sCfg := stmRuntimeConfig(cfg, strategy.UniformRW{})
		sCfg.Lazy = true
		sCfg.CommitBatch = bsz
		rn, err := stmScenario(bench, cfg.Length, cfg.Delta, batchLevel, sCfg)
		if err != nil {
			return nil, err
		}
		m, err := measureSTM(rn, batchLevel, scenarioDur, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: perf batch sweep %d: %w", bsz, err)
		}
		rep.BatchSweep = append(rep.BatchSweep, STMBatchPerf{
			CommitBatch:   bsz,
			CommitsPerSec: m.CommitsPerSec,
			CommitP50Ns:   m.CommitP50Ns,
			CommitP99Ns:   m.CommitP99Ns,
			Batches:       m.Stats["batches"],
			BatchCommits:  m.Stats["batchCommits"],
			BatchFails:    m.Stats["batchFails"],
		})
	}
	// Commutative-folding sweep: the hotspot counter shape (all-delta
	// writes, the folding fast path) at the highest level, fold off vs
	// on per batch bound, so the recorded trajectory pins the speedup
	// the acceptance gate reads. Think time is zeroed to keep the
	// cells commit-bound — the regime folding targets; with think time
	// in the loop the hot word is idle most of the time and both cells
	// measure the scenario, not the commit path.
	if cfg.Fold {
		for _, bsz := range []int{4, 8} {
			var base float64
			for _, fold := range []bool{false, true} {
				sCfg := stmRuntimeConfig(cfg, strategy.UniformRW{})
				sCfg.Lazy = true
				sCfg.CommitBatch = bsz
				sCfg.FoldCommutative = fold
				sc, err := scenario.ByName("hotspot", scenario.Options{
					Workers: batchLevel,
					Length:  cfg.Length,
					Delta:   cfg.Delta,
					Think:   dist.Constant{V: 0},
				})
				if err != nil {
					return nil, err
				}
				rn := scenario.NewSTMRunner(sc, sCfg)
				// Full duration, not the trajectory half: the A/B gate
				// reads these cells, so they get the lowest-variance
				// window the snapshot budget allows.
				m, err := measureSTM(rn, batchLevel, cfg.Duration, cfg.Seed)
				if err != nil {
					return nil, fmt.Errorf("experiments: perf fold sweep batch %d fold=%v: %w", bsz, fold, err)
				}
				cell := STMFoldPerf{
					CommitBatch:   bsz,
					Fold:          fold,
					CommitsPerSec: m.CommitsPerSec,
					FoldedCommits: m.Stats["foldedCommits"],
					FoldedWords:   m.Stats["foldedWords"],
				}
				if fold && base > 0 {
					cell.Speedup = m.CommitsPerSec / base
				} else if !fold {
					base = m.CommitsPerSec
				}
				rep.FoldSweep = append(rep.FoldSweep, cell)
			}
		}
	}
	// Adaptive convergence trajectory (make bench-adaptive): the
	// phase-shift experiment at the highest level.
	if cfg.Adaptive {
		arep, err := AdaptiveConvergence(AdaptiveConfig{
			Goroutines:    batchLevel,
			PhaseDuration: cfg.Duration,
			Length:        cfg.Length,
			Seed:          cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: perf adaptive sweep: %w", err)
		}
		for _, pr := range arep.Phases {
			rep.AdaptiveSweep = append(rep.AdaptiveSweep, STMAdaptivePerf{
				Phase:                 pr.Phase,
				BestStatic:            pr.BestStatic,
				BestCommitsPerSec:     pr.BestOpsPerSec,
				AdaptiveCommitsPerSec: pr.AdaptiveOpsPerSec,
				Ratio:                 pr.Ratio,
				FinalPolicy:           pr.FinalPolicy,
			})
		}
		rep.AdaptiveSwaps = arep.Swaps
	}
	// Trace-format sweep (make bench-trace): both on-disk formats over
	// the same recorded hotspot capture.
	if cfg.TraceSweep {
		cells, err := TraceFormatSweep(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: perf trace sweep: %w", err)
		}
		rep.TraceSweep = cells
	}
	return rep, nil
}
