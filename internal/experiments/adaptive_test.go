package experiments

import (
	"testing"
	"time"
)

// TestAdaptiveConvergenceSmoke runs the phase-shift experiment at CI
// scale. Assertions are structural, not performance claims: the
// convergence ratio itself is machine- and load-dependent (CI
// containers are often single-core, where no contention arises and
// the controller rightly does nothing), so the test verifies the
// harness's plumbing — every phase measured, oracle picked, ratios
// computed, first-phase invariant checked inside the harness — and
// leaves the ratio threshold to `make bench-adaptive` trend review.
func TestAdaptiveConvergenceSmoke(t *testing.T) {
	dur := 160 * time.Millisecond
	if testing.Short() {
		dur = 60 * time.Millisecond
	}
	rep, err := AdaptiveConvergence(AdaptiveConfig{
		Goroutines:    2,
		PhaseDuration: dur,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("got %d phases, want 2 (readmostly, hotspot)", len(rep.Phases))
	}
	for _, pr := range rep.Phases {
		if len(pr.Static) != len(adaptiveCandidates()) {
			t.Fatalf("phase %s measured %d static candidates, want %d",
				pr.Phase, len(pr.Static), len(adaptiveCandidates()))
		}
		if pr.BestStatic == "" || pr.BestOpsPerSec <= 0 {
			t.Fatalf("phase %s has no oracle: %+v", pr.Phase, pr)
		}
		if pr.AdaptiveOpsPerSec <= 0 {
			t.Fatalf("phase %s adaptive run made no progress", pr.Phase)
		}
		if pr.Ratio <= 0 {
			t.Fatalf("phase %s ratio not computed: %+v", pr.Phase, pr)
		}
		if pr.FinalPolicy == "" {
			t.Fatalf("phase %s missing final policy", pr.Phase)
		}
	}
	if rep.Phases[0].Phase != "readmostly" || rep.Phases[1].Phase != "hotspot" {
		t.Fatalf("phase order: %s, %s", rep.Phases[0].Phase, rep.Phases[1].Phase)
	}
	// The decision log and swap counter must agree on whether the
	// controller acted.
	if (rep.Swaps == 0) != (len(rep.Decisions) == 0) {
		t.Fatalf("swaps=%d but %d decisions", rep.Swaps, len(rep.Decisions))
	}
	// The latency drill guarantees the p99 backoff rule fired on
	// every run, so its decision must be in the log.
	if !rep.P99RuleFired {
		t.Fatalf("p99 backoff rule never fired; decisions: %+v", rep.Decisions)
	}
	// Table rendering must not panic and must carry one row per phase.
	tab := rep.Table()
	if len(tab.Rows) != len(rep.Phases) {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), len(rep.Phases))
	}
}

// TestAdaptiveConvergenceUnknownPhase propagates registry errors.
func TestAdaptiveConvergenceUnknownPhase(t *testing.T) {
	_, err := AdaptiveConvergence(AdaptiveConfig{
		Phases:        []string{"no-such-scenario"},
		PhaseDuration: 10 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("unknown phase accepted")
	}
}
