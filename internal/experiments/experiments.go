// Package experiments glues the substrates into the paper's
// evaluation harnesses: each function regenerates one figure (or its
// STM counterpart) as a report.Table whose shape can be compared
// against the paper. EXPERIMENTS.md records the comparisons.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/htm"
	"txconflict/internal/report"
	"txconflict/internal/rng"
	"txconflict/internal/stm"
	"txconflict/internal/strategy"
	"txconflict/internal/txds"
	"txconflict/internal/workload"
)

// Fig3Config tunes the Figure 3 HTM-simulator sweep.
type Fig3Config struct {
	// Threads lists the core counts to sweep (paper: 1..16).
	Threads []int
	// Cycles is the simulated duration per cell.
	Cycles uint64
	// Policy is the HTM conflict-resolution policy (paper: requestor
	// wins).
	Policy core.Policy
	// Seed feeds all random streams.
	Seed uint64
	// GHz converts cycles to seconds for ops/s reporting.
	GHz float64
}

// DefaultFig3Config mirrors the paper's setup at laptop scale.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		Threads: []int{1, 2, 4, 8, 12, 16},
		Cycles:  2_000_000,
		Policy:  core.RequestorWins,
		Seed:    1,
		GHz:     1,
	}
}

// fig3Workload builds a fresh workload instance for a benchmark name.
// Fresh instances matter: stack/queue generators carry per-core
// parity state.
func fig3Workload(bench string) (htm.Workload, error) {
	switch bench {
	case "stack":
		return workload.NewStack(15, 10), nil
	case "queue":
		return workload.NewQueue(15, 10), nil
	case "txapp":
		return workload.NewTxApp(60, 10), nil
	case "bimodal":
		return workload.NewBimodal(50, 5000, 0.5, 10), nil
	default:
		return nil, fmt.Errorf("experiments: unknown benchmark %q (stack, queue, txapp, bimodal)", bench)
	}
}

// Figure3 regenerates one panel of Figure 3: throughput (ops/s) of
// NO_DELAY, DELAY_TUNED, DELAY_DET, DELAY_RAND across thread counts
// on the HTM simulator.
func Figure3(bench string, cfg Fig3Config) (*report.Table, error) {
	if len(cfg.Threads) == 0 {
		cfg = DefaultFig3Config()
	}
	tunedProbe, err := fig3Workload(bench)
	if err != nil {
		return nil, err
	}
	probeParams := htm.DefaultParams(1)
	tuned := workload.TunedDelay(tunedProbe, probeParams, 512)
	strategies := strategy.Fig3Set(tuned)
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 3 (%s): throughput, ops/s at %.0f GHz", bench, cfg.GHz),
		Columns: []string{"threads"},
	}
	names := []string{"NO_DELAY", "DELAY_TUNED", "DELAY_DET", "DELAY_RAND"}
	t.Columns = append(t.Columns, names...)
	for _, n := range cfg.Threads {
		row := []interface{}{n}
		for _, s := range strategies {
			w, err := fig3Workload(bench)
			if err != nil {
				return nil, err
			}
			p := htm.DefaultParams(n)
			p.Policy = cfg.Policy
			p.Strategy = s
			p.Seed = cfg.Seed
			m := htm.NewMachine(p, w)
			met := m.Run(cfg.Cycles)
			row = append(row, met.OpsPerSecond(cfg.GHz))
		}
		t.AddRow(row...)
	}
	t.AddNote("tuned delay = %.1f cycles (average isolated fast-path length)", tuned)
	t.AddNote("policy %v, %d cycles per cell, seed %d", cfg.Policy, cfg.Cycles, cfg.Seed)
	return t, nil
}

// TunedDelayFor returns the DELAY_TUNED grace period for a
// benchmark: the average isolated fast-path length in cycles.
func TunedDelayFor(bench string) (float64, error) {
	w, err := fig3Workload(bench)
	if err != nil {
		return 0, err
	}
	return workload.TunedDelay(w, htm.DefaultParams(1), 512), nil
}

// Fig3Metrics returns the raw metrics for one cell, for detailed
// inspection (abort rates, conflicts, grace commits).
func Fig3Metrics(bench string, threads int, s core.Strategy, cfg Fig3Config) (htm.Metrics, error) {
	w, err := fig3Workload(bench)
	if err != nil {
		return htm.Metrics{}, err
	}
	p := htm.DefaultParams(threads)
	p.Policy = cfg.Policy
	p.Strategy = s
	p.Seed = cfg.Seed
	m := htm.NewMachine(p, w)
	return m.Run(cfg.Cycles), nil
}

// STMConfig tunes the real-goroutine throughput benchmarks (the
// Graphite-experiment analogue on actual parallel hardware).
type STMConfig struct {
	// Goroutines lists the concurrency levels.
	Goroutines []int
	// Duration per cell.
	Duration time.Duration
	// Policy and Lazy select the runtime mode.
	Policy core.Policy
	Lazy   bool
	// Shards is the stm arena stripe count (0 = runtime default,
	// 1 = flat single-clock arena).
	Shards int
	// Seed feeds the per-goroutine streams.
	Seed uint64
}

// DefaultSTMConfig sweeps up to the machine's parallelism.
func DefaultSTMConfig() STMConfig {
	max := runtime.GOMAXPROCS(0)
	levels := []int{1}
	for n := 2; n < max; n *= 2 {
		levels = append(levels, n)
	}
	if max > 1 {
		levels = append(levels, max)
	}
	return STMConfig{
		Goroutines: levels,
		Duration:   200 * time.Millisecond,
		Policy:     core.RequestorWins,
		Seed:       1,
	}
}

// stmOp abstracts one benchmark operation on a freshly built
// structure.
type stmOp struct {
	rt *stm.Runtime
	op func(r *rng.Rand)
}

func stmBench(bench string, cfg stm.Config) (stmOp, error) {
	switch bench {
	case "stack":
		s := txds.NewStack(4096, cfg)
		return stmOp{rt: s.Runtime(), op: func(r *rng.Rand) {
			_ = s.Push(r, 1)
			_, _ = s.Pop(r)
		}}, nil
	case "queue":
		q := txds.NewQueue(4096, cfg)
		return stmOp{rt: q.Runtime(), op: func(r *rng.Rand) {
			_ = q.Enqueue(r, 1)
			_, _ = q.Dequeue(r)
		}}, nil
	case "txapp":
		a := txds.NewApp(300, cfg)
		return stmOp{rt: a.Runtime(), op: a.Op}, nil
	case "bimodal":
		a := txds.NewBimodalApp(50, 20000, 0.5, cfg)
		return stmOp{rt: a.Runtime(), op: a.Op}, nil
	default:
		return stmOp{}, fmt.Errorf("experiments: unknown STM benchmark %q", bench)
	}
}

// stmStrategies returns the Figure 3 strategy set for the STM, with
// the tuned delay expressed in nanoseconds.
func stmStrategies(tunedNs float64) []core.Strategy {
	return []core.Strategy{
		nil,
		strategy.Fixed{X: tunedNs},
		strategy.Deterministic{},
		strategy.UniformRW{},
	}
}

// tuneSTM measures the mean uncontended op latency (ns) for the
// DELAY_TUNED baseline.
func tuneSTM(bench string, pol core.Policy, lazy bool, shards int, seed uint64) (float64, error) {
	cfg := stm.Config{Policy: pol, Lazy: lazy, Shards: shards, CleanupCost: 2 * time.Microsecond, MaxRetries: 64}
	b, err := stmBench(bench, cfg)
	if err != nil {
		return 0, err
	}
	r := rng.New(seed)
	const ops = 3000
	start := time.Now()
	for i := 0; i < ops; i++ {
		b.op(r)
	}
	return float64(time.Since(start).Nanoseconds()) / ops, nil
}

// STMThroughput regenerates the Figure 3 analogue on the real
// STM runtime: ops/s for the four delay strategies across goroutine
// counts.
func STMThroughput(bench string, cfg STMConfig) (*report.Table, error) {
	if len(cfg.Goroutines) == 0 {
		cfg = DefaultSTMConfig()
	}
	tuned, err := tuneSTM(bench, cfg.Policy, cfg.Lazy, cfg.Shards, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("STM throughput (%s): ops/s, %v", bench, cfg.Policy),
		Columns: []string{"goroutines", "NO_DELAY", "DELAY_TUNED", "DELAY_DET", "DELAY_RAND"},
	}
	for _, n := range cfg.Goroutines {
		row := []interface{}{n}
		for _, s := range stmStrategies(tuned) {
			sCfg := stm.Config{
				Policy:      cfg.Policy,
				Strategy:    s,
				Lazy:        cfg.Lazy,
				Shards:      cfg.Shards,
				CleanupCost: 2 * time.Microsecond,
				MaxRetries:  256,
			}
			b, err := stmBench(bench, sCfg)
			if err != nil {
				return nil, err
			}
			row = append(row, runSTMCell(b, n, cfg.Duration, cfg.Seed))
		}
		t.AddRow(row...)
	}
	t.AddNote("tuned delay = %.0f ns (mean uncontended op latency)", tuned)
	return t, nil
}

// driveSTM hammers the structure with n goroutines for roughly d,
// returning the completed op count and the elapsed seconds. The
// shared driver under both the throughput sweep (ops/s) and the
// ablation/perf harnesses (commits/s from the runtime counters).
func driveSTM(b stmOp, n int, d time.Duration, seed uint64) (ops uint64, elapsedSec float64) {
	root := rng.New(seed)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	counts := make([]uint64, n)
	for g := 0; g < n; g++ {
		r := root.Split()
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				b.op(r)
				counts[g]++
			}
		}()
	}
	start := time.Now()
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsedSec = time.Since(start).Seconds()
	for _, c := range counts {
		ops += c
	}
	return ops, elapsedSec
}

// runSTMCell measures ops/s with n goroutines hammering the
// structure for the duration.
func runSTMCell(b stmOp, n int, d time.Duration, seed uint64) float64 {
	ops, elapsed := driveSTM(b, n, d, seed)
	return float64(ops) / elapsed
}
