// Package experiments glues the substrates into the paper's
// evaluation harnesses: each function regenerates one figure (or its
// STM counterpart) as a report.Table whose shape can be compared
// against the paper. EXPERIMENTS.md records the comparisons.
package experiments

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/htm"
	"txconflict/internal/metrics"
	"txconflict/internal/report"
	"txconflict/internal/rng"
	"txconflict/internal/scenario"
	"txconflict/internal/stm"
	"txconflict/internal/strategy"
	"txconflict/internal/workload"
)

// Fig3Config tunes the Figure 3 HTM-simulator sweep.
type Fig3Config struct {
	// Threads lists the core counts to sweep (paper: 1..16).
	Threads []int
	// Cycles is the simulated duration per cell.
	Cycles uint64
	// Policy is the HTM conflict-resolution policy (paper: requestor
	// wins).
	Policy core.Policy
	// Length overrides the scenario's default transaction-length
	// sampler (the -dist flag); nil keeps the scenario default.
	Length dist.Sampler
	// Delta is the Add magnitude for the commutative-counter
	// scenarios (scenario.Options.Delta; 0 = 1).
	Delta uint64
	// Seed feeds all random streams.
	Seed uint64
	// GHz converts cycles to seconds for ops/s reporting.
	GHz float64
}

// DefaultFig3Config mirrors the paper's setup at laptop scale.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		Threads: []int{1, 2, 4, 8, 12, 16},
		Cycles:  2_000_000,
		Policy:  core.RequestorWins,
		Seed:    1,
		GHz:     1,
	}
}

// Figure3 regenerates one panel of Figure 3: throughput (ops/s) of
// NO_DELAY, DELAY_TUNED, DELAY_DET, DELAY_RAND across thread counts
// on the HTM simulator. Every cell is drained after its measurement
// window and checked against the scenario's committed-state
// invariant, so each regeneration doubles as a serializability test.
func Figure3(bench string, cfg Fig3Config) (*report.Table, error) {
	if len(cfg.Threads) == 0 {
		cfg = DefaultFig3Config()
	}
	tunedProbe, err := workload.ByName(bench, scenario.Options{Length: cfg.Length, Delta: cfg.Delta})
	if err != nil {
		return nil, err
	}
	probeParams := htm.DefaultParams(1)
	tuned := workload.TunedDelay(tunedProbe, probeParams, 512)
	strategies := strategy.Fig3Set(tuned)
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 3 (%s): throughput, ops/s at %.0f GHz", bench, cfg.GHz),
		Columns: []string{"threads"},
	}
	names := []string{"NO_DELAY", "DELAY_TUNED", "DELAY_DET", "DELAY_RAND"}
	t.Columns = append(t.Columns, names...)
	for _, n := range cfg.Threads {
		row := []interface{}{n}
		for _, s := range strategies {
			w, err := workload.ByName(bench, scenario.Options{Length: cfg.Length, Delta: cfg.Delta})
			if err != nil {
				return nil, err
			}
			p := htm.DefaultParams(n)
			p.Policy = cfg.Policy
			p.Strategy = s
			p.Seed = cfg.Seed
			m := htm.NewMachine(p, w)
			met := m.Run(cfg.Cycles)
			row = append(row, met.OpsPerSecond(cfg.GHz))
			fin := m.Drain()
			if err := w.Check(m.Dir.ReadWord, fin.PerCoreCommits); err != nil {
				return nil, fmt.Errorf("experiments: %s at %d threads (%v): %w", bench, n, s, err)
			}
		}
		t.AddRow(row...)
	}
	t.AddNote("tuned delay = %.1f cycles (average isolated fast-path length)", tuned)
	t.AddNote("policy %v, %d cycles per cell, seed %d", cfg.Policy, cfg.Cycles, cfg.Seed)
	return t, nil
}

// TunedDelayFor returns the DELAY_TUNED grace period for a
// benchmark: the average isolated fast-path length in cycles, under
// the same length-sampler override the measured cells run with.
func TunedDelayFor(bench string, length dist.Sampler) (float64, error) {
	w, err := workload.ByName(bench, scenario.Options{Length: length})
	if err != nil {
		return 0, err
	}
	return workload.TunedDelay(w, htm.DefaultParams(1), 512), nil
}

// Fig3Metrics returns the raw metrics for one cell, for detailed
// inspection (abort rates, conflicts, grace commits).
func Fig3Metrics(bench string, threads int, s core.Strategy, cfg Fig3Config) (htm.Metrics, error) {
	w, err := workload.ByName(bench, scenario.Options{Length: cfg.Length, Delta: cfg.Delta})
	if err != nil {
		return htm.Metrics{}, err
	}
	p := htm.DefaultParams(threads)
	p.Policy = cfg.Policy
	p.Strategy = s
	p.Seed = cfg.Seed
	m := htm.NewMachine(p, w)
	return m.Run(cfg.Cycles), nil
}

// STMConfig tunes the real-goroutine throughput benchmarks (the
// Graphite-experiment analogue on actual parallel hardware).
type STMConfig struct {
	// Goroutines lists the concurrency levels.
	Goroutines []int
	// Duration per cell.
	Duration time.Duration
	// Policy and Lazy select the runtime mode.
	Policy core.Policy
	Lazy   bool
	// CommitBatch routes lazy commits through the group-commit
	// combiner with the given batch bound (stm.Config.CommitBatch);
	// 0 keeps the unbatched commit path.
	CommitBatch int
	// Shards is the stm arena stripe count (0 = runtime default,
	// 1 = flat single-clock arena).
	Shards int
	// KWindow enables the windowed conflict-chain estimator
	// (stm.Config.KWindow); 0 keeps the instantaneous estimate.
	KWindow int
	// Length overrides the scenario's default transaction-length
	// sampler (the -dist flag); nil keeps the scenario default.
	Length dist.Sampler
	// Adaptive adds the phase-shift convergence trajectory
	// (AdaptiveConvergence) to the STMPerf report's adaptiveSweep
	// section — the stmbench -perf -adaptive path.
	Adaptive bool
	// Fold enables commutative delta folding in the batched combiner
	// (stm.Config.FoldCommutative) and adds the foldSweep section to
	// the STMPerf report — the stmbench -fold path.
	Fold bool
	// Delta is the Add magnitude for the commutative-counter
	// scenarios (scenario.Options.Delta; 0 = 1).
	Delta uint64
	// TraceSweep adds the trace-format encode/decode/size section to
	// the STMPerf report (traceSweep in BENCH_stm.json) — the
	// stmbench -tracesweep / make bench-trace path.
	TraceSweep bool
	// Quick trims STMPerf to the main points (no per-scenario, batch,
	// fold or adaptive sweeps) — the bench-fleet path, where the
	// matrix itself supplies the coverage.
	Quick bool
	// MetricsSample is the 1-in-N commit-phase timer sampling interval
	// for the per-cell metrics plane (0 = metrics.DefaultSampleN).
	// Every cell gets a fresh plane either way — latency quantiles and
	// the abort taxonomy are always on.
	MetricsSample int
	// ReportEvery enables the periodic stderr reporter: every interval
	// during a measured drive, one structured line with the window's
	// commit count, p50/p99 commit latency, and abort taxonomy. 0
	// disables (the default; perf snapshots stay quiet).
	ReportEvery time.Duration
	// Seed feeds the per-goroutine streams.
	Seed uint64
}

// DefaultSTMConfig sweeps up to the machine's parallelism.
func DefaultSTMConfig() STMConfig {
	max := runtime.GOMAXPROCS(0)
	levels := []int{1}
	for n := 2; n < max; n *= 2 {
		levels = append(levels, n)
	}
	if max > 1 {
		levels = append(levels, max)
	}
	return STMConfig{
		Goroutines: levels,
		Duration:   200 * time.Millisecond,
		Policy:     core.RequestorWins,
		Seed:       1,
	}
}

// stmScenario instantiates a registry scenario sized for the given
// worker count on a fresh STM runtime.
func stmScenario(bench string, length dist.Sampler, delta uint64, workers int, cfg stm.Config) (*scenario.STMRunner, error) {
	sc, err := scenario.ByName(bench, scenario.Options{Workers: workers, Length: length, Delta: delta})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return scenario.NewSTMRunner(sc, cfg), nil
}

// stmRuntimeConfig assembles the stm.Config shared by the STM
// harnesses from the experiment-level knobs. Every runtime gets its
// own metrics plane, so each measured cell reads its own latency
// quantiles and abort taxonomy without cross-cell bleed.
func stmRuntimeConfig(cfg STMConfig, s core.Strategy) stm.Config {
	return stm.Config{
		Policy:          cfg.Policy,
		Strategy:        s,
		Lazy:            cfg.Lazy,
		CommitBatch:     cfg.CommitBatch,
		FoldCommutative: cfg.Fold,
		Shards:          cfg.Shards,
		KWindow:         cfg.KWindow,
		CleanupCost:     2 * time.Microsecond,
		MaxRetries:      256,
		Metrics:         metrics.NewPlane(16, cfg.MetricsSample),
	}
}

// stmStrategies returns the Figure 3 strategy set for the STM, with
// the tuned delay expressed in nanoseconds.
func stmStrategies(tunedNs float64) []core.Strategy {
	return []core.Strategy{
		nil,
		strategy.Fixed{X: tunedNs},
		strategy.Deterministic{},
		strategy.UniformRW{},
	}
}

// tuneSTM measures the mean uncontended op latency (ns) for the
// DELAY_TUNED baseline: one worker executing the scenario in
// isolation.
func tuneSTM(bench string, cfg STMConfig) (float64, error) {
	sCfg := stmRuntimeConfig(cfg, nil)
	sCfg.MaxRetries = 64
	rn, err := stmScenario(bench, cfg.Length, cfg.Delta, 1, sCfg)
	if err != nil {
		return 0, err
	}
	r := rng.New(cfg.Seed)
	const ops = 3000
	start := time.Now()
	for i := 0; i < ops; i++ {
		rn.RunOne(0, r)
	}
	return float64(time.Since(start).Nanoseconds()) / ops, nil
}

// STMThroughput regenerates the Figure 3 analogue on the real
// STM runtime: ops/s for the four delay strategies across goroutine
// counts. Every cell runs on a fresh arena and is checked against the
// scenario invariant after it stops.
func STMThroughput(bench string, cfg STMConfig) (*report.Table, error) {
	if len(cfg.Goroutines) == 0 {
		cfg = DefaultSTMConfig()
	}
	tuned, err := tuneSTM(bench, cfg)
	if err != nil {
		return nil, err
	}
	stratNames := []string{"NO_DELAY", "DELAY_TUNED", "DELAY_DET", "DELAY_RAND"}
	t := &report.Table{
		Title:   fmt.Sprintf("STM throughput (%s): ops/s, %v", bench, cfg.Policy),
		Columns: append([]string{"goroutines"}, stratNames...),
	}
	for _, n := range cfg.Goroutines {
		row := []interface{}{n}
		for si, s := range stmStrategies(tuned) {
			rn, err := stmScenario(bench, cfg.Length, cfg.Delta, n, stmRuntimeConfig(cfg, s))
			if err != nil {
				return nil, err
			}
			stop := startReporter(os.Stderr, rn.Runtime(), cfg.ReportEvery,
				fmt.Sprintf("%s g=%d %s", bench, n, stratNames[si]))
			res := rn.Drive(n, cfg.Duration, cfg.Seed)
			stop()
			if err := rn.Check(res.PerWorker); err != nil {
				return nil, fmt.Errorf("experiments: %s at %d goroutines: %w", bench, n, err)
			}
			row = append(row, res.OpsPerSec())
		}
		t.AddRow(row...)
	}
	t.AddNote("tuned delay = %.0f ns (mean uncontended op latency)", tuned)
	return t, nil
}
