package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"txconflict/internal/metrics"
	"txconflict/internal/stm"
)

// startReporter launches the periodic progress reporter over a live
// runtime's metrics plane: every interval it diffs two plane
// snapshots and writes one structured line for the window — commit
// count, windowed p50/p99 commit latency, and the abort taxonomy.
// stmbench points it at stderr so long interactive runs show their
// latency shape while tables are still being measured, without
// polluting the stdout tables/CSV. The returned stop function halts
// the loop and flushes one final window; it must be called before
// reading the runtime's final counters.
func startReporter(w io.Writer, rt *stm.Runtime, every time.Duration, label string) (stop func()) {
	p := rt.Metrics()
	if p == nil || every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(every)
		defer tick.Stop()
		prev := p.Snapshot()
		emit := func() {
			snap := p.Snapshot()
			fmt.Fprintln(w, reportLine(label, &snap, &prev))
			prev = snap
		}
		for {
			select {
			case <-done:
				emit()
				return
			case <-tick.C:
				emit()
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// reportLine formats one reporter window from two plane snapshots.
func reportLine(label string, cur, prev *metrics.PlaneSnapshot) string {
	d := cur.Commit.Sub(prev.Commit)
	q := d.Summary()
	var b strings.Builder
	fmt.Fprintf(&b, "%s: +%d commits", label, q.N)
	if q.N > 0 {
		fmt.Fprintf(&b, " p50=%s p99=%s",
			time.Duration(q.P50), time.Duration(q.P99))
	}
	var aborts []string
	for r := 0; r < metrics.NumAbortReasons; r++ {
		if n := cur.Aborts[r] - prev.Aborts[r]; n > 0 {
			aborts = append(aborts, fmt.Sprintf("%s=%d", metrics.AbortReason(r), n))
		}
	}
	if len(aborts) > 0 {
		fmt.Fprintf(&b, " aborts{%s}", strings.Join(aborts, " "))
	}
	return b.String()
}
