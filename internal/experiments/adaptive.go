package experiments

import (
	"fmt"
	"strings"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/report"
	"txconflict/internal/scenario"
	"txconflict/internal/stm"
	"txconflict/internal/strategy"
	"txconflict/internal/tune"
)

// AdaptiveConfig tunes the AdaptiveConvergence harness.
type AdaptiveConfig struct {
	// Phases is the workload sequence the adaptive runtime lives
	// through without restarting; empty defaults to the
	// readmostly -> hotspot shift (low-conflict to chained-conflict).
	Phases []string
	// Goroutines drives each phase (default 4).
	Goroutines int
	// PhaseDuration is the wall time per phase; the first half is the
	// controller's convergence window, the second half is measured.
	PhaseDuration time.Duration
	// TuneInterval paces the control loop (default PhaseDuration/20).
	TuneInterval time.Duration
	// Tolerance is the convergence criterion: the adaptive runtime
	// must reach at least (1 - Tolerance) of the best static
	// candidate's measured throughput in every phase (default 0.10).
	Tolerance float64
	// Length overrides the scenarios' length sampler; Seed feeds all
	// streams.
	Length dist.Sampler
	Seed   uint64
}

func (cfg *AdaptiveConfig) defaults() {
	if len(cfg.Phases) == 0 {
		cfg.Phases = []string{"readmostly", "hotspot"}
	}
	if cfg.Goroutines <= 0 {
		cfg.Goroutines = 4
	}
	if cfg.PhaseDuration <= 0 {
		cfg.PhaseDuration = 400 * time.Millisecond
	}
	if cfg.TuneInterval <= 0 {
		cfg.TuneInterval = cfg.PhaseDuration / 20
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 0.10
	}
}

// adaptiveCandidate is one static policy the adaptive runtime is read
// against. All candidates share the lazy structural config — the same
// structure the adaptive runtime runs, so the comparison isolates the
// dynamic half.
type adaptiveCandidate struct {
	name   string
	adjust func(c *stm.Config)
}

func adaptiveCandidates() []adaptiveCandidate {
	return []adaptiveCandidate{
		{"rw+rrw", func(c *stm.Config) {
			c.Policy = core.RequestorWins
			c.Strategy = strategy.UniformRW{}
		}},
		{"ra+rra", func(c *stm.Config) {
			c.Policy = core.RequestorAborts
			c.Strategy = strategy.ExpRA{}
		}},
		{"rw+batch4", func(c *stm.Config) {
			c.Policy = core.RequestorWins
			c.Strategy = strategy.UniformRW{}
			c.CommitBatch = 4
		}},
		{"nodelay", func(c *stm.Config) {
			c.Policy = core.RequestorWins
			c.Strategy = nil
		}},
	}
}

// adaptiveBaseConfig is the shared structural half: lazy locking (so
// the controller may open the combiner lane) and the windowed
// estimator the k-driven rules read.
func adaptiveBaseConfig() stm.Config {
	return stm.Config{
		Lazy:          true,
		KWindow:       64,
		CleanupCost:   2 * time.Microsecond,
		BackoffFactor: 1,
		MaxRetries:    256,
	}
}

// AdaptivePhaseResult is one phase of the convergence experiment.
type AdaptivePhaseResult struct {
	Phase string `json:"phase"`
	// Static maps candidate name to measured steady-state ops/sec on
	// a fresh runtime pinned to that policy.
	Static map[string]float64 `json:"static"`
	// BestStatic names the winning candidate; BestOpsPerSec is its
	// throughput.
	BestStatic    string  `json:"bestStatic"`
	BestOpsPerSec float64 `json:"bestOpsPerSec"`
	// AdaptiveOpsPerSec is the shared tuned runtime's throughput over
	// the phase's second half (the controller had the first half to
	// converge).
	AdaptiveOpsPerSec float64 `json:"adaptiveOpsPerSec"`
	// Ratio is adaptive over best static (1.0 = matched the oracle).
	Ratio float64 `json:"ratio"`
	// FinalPolicy is what the controller was running when the phase
	// ended.
	FinalPolicy string `json:"finalPolicy"`
}

// AdaptiveReport is the AdaptiveConvergence output.
type AdaptiveReport struct {
	Goroutines int                   `json:"goroutines"`
	PhaseMS    int64                 `json:"phaseMs"`
	Tolerance  float64               `json:"tolerance"`
	Phases     []AdaptivePhaseResult `json:"phases"`
	// Swaps is the shared runtime's SetPolicy count across the whole
	// run; Decisions is the controller's log.
	Swaps     uint64          `json:"swaps"`
	Decisions []tune.Decision `json:"decisions,omitempty"`
	// P99RuleFired reports that the controller's p99 latency-backoff
	// rule demonstrably fired — during the live phases if contention
	// produced a real tail regression, otherwise in the post-run
	// latency drill (canned windows replayed through the live tuner
	// via StepWindow). The firing's decision is in Decisions.
	P99RuleFired bool `json:"p99RuleFired"`
	// Converged reports every phase's Ratio >= 1 - Tolerance.
	Converged bool `json:"converged"`
}

// AdaptiveConvergence phase-shifts a workload under one live runtime
// driven by the internal/tune control loop and reads the result
// against a per-phase oracle of static policies:
//
//   - For each phase, every static candidate runs the phase's
//     scenario on a fresh runtime pinned to that policy; the best
//     measured throughput is the oracle for the phase.
//   - The adaptive runtime runs all phases back to back on one arena
//     — estimator history, policy, and committed state survive the
//     shift, exactly what a deployed self-tuning system faces. Each
//     phase's first half is the controller's convergence window; only
//     the second half is measured.
//
// The experiment converges when the adaptive runtime is within
// Tolerance of the oracle in every phase. Committed-state invariants
// are verified for the static cells and the adaptive run's first
// phase; later adaptive phases run over an arena polluted by earlier
// phases, where scenario invariants no longer apply.
func AdaptiveConvergence(cfg AdaptiveConfig) (*AdaptiveReport, error) {
	cfg.defaults()
	rep := &AdaptiveReport{
		Goroutines: cfg.Goroutines,
		PhaseMS:    cfg.PhaseDuration.Milliseconds(),
		Tolerance:  cfg.Tolerance,
	}

	// Static oracle: fresh runtime per (phase, candidate).
	type phaseOracle struct {
		static map[string]float64
		best   string
		ops    float64
	}
	oracles := make([]phaseOracle, 0, len(cfg.Phases))
	for _, phase := range cfg.Phases {
		po := phaseOracle{static: make(map[string]float64)}
		for _, cand := range adaptiveCandidates() {
			sCfg := adaptiveBaseConfig()
			cand.adjust(&sCfg)
			rn, err := stmScenario(phase, cfg.Length, 0, cfg.Goroutines, sCfg)
			if err != nil {
				return nil, err
			}
			res := rn.Drive(cfg.Goroutines, cfg.PhaseDuration/2, cfg.Seed)
			if err := rn.Check(res.PerWorker); err != nil {
				return nil, fmt.Errorf("experiments: adaptive oracle %s/%s: %w", phase, cand.name, err)
			}
			ops := res.OpsPerSec()
			po.static[cand.name] = ops
			if ops > po.ops {
				po.ops = ops
				po.best = cand.name
			}
		}
		oracles = append(oracles, po)
	}

	// Adaptive run: one runtime across all phases, arena sized for
	// the largest phase, controller running throughout.
	var scs []*scenario.Scenario
	words := 0
	for _, phase := range cfg.Phases {
		sc, err := scenario.ByName(phase, scenario.Options{Workers: cfg.Goroutines, Length: cfg.Length})
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		if sc.Words() > words {
			words = sc.Words()
		}
		scs = append(scs, sc)
	}
	aCfg := adaptiveBaseConfig()
	// The controller decides the dynamic half; start from the
	// pair-conflict default so phase shifts force real decisions.
	aCfg.Policy = core.RequestorAborts
	aCfg.Strategy = strategy.ExpRA{}
	sampler := tune.NewSampler(nil)
	aCfg.Trace = sampler
	rt := stm.New(words, aCfg)
	tn := tune.New(rt, sampler, tune.Limits{}, cfg.TuneInterval)
	tn.Start()
	defer tn.Stop()

	for i, sc := range scs {
		rn := scenario.NewSTMRunnerOn(sc, rt)
		warm := rn.Drive(cfg.Goroutines, cfg.PhaseDuration/2, cfg.Seed+uint64(i))
		meas := rn.Drive(cfg.Goroutines, cfg.PhaseDuration/2, cfg.Seed+uint64(i)+100)
		if i == 0 {
			// Only the first phase runs over a pristine arena; sum
			// both halves' per-worker commits for the invariant.
			counts := make([]uint64, len(warm.PerWorker))
			for w := range counts {
				counts[w] = warm.PerWorker[w] + meas.PerWorker[w]
			}
			if err := rn.Check(counts); err != nil {
				return nil, fmt.Errorf("experiments: adaptive phase %s: %w", sc.Name(), err)
			}
		}
		po := oracles[i]
		pr := AdaptivePhaseResult{
			Phase:             sc.Name(),
			Static:            po.static,
			BestStatic:        po.best,
			BestOpsPerSec:     po.ops,
			AdaptiveOpsPerSec: meas.OpsPerSec(),
			FinalPolicy:       rt.Policy().String(),
		}
		if po.ops > 0 {
			pr.Ratio = pr.AdaptiveOpsPerSec / po.ops
		}
		rep.Phases = append(rep.Phases, pr)
	}
	tn.Stop()

	// Latency-regression drill: with the live phases done and the
	// ticker stopped, replay a canned commit-p99 blowout through the
	// tuner (StepWindow: fixed windows, the controller's real
	// accumulated baselines, real policy application). Whether a live
	// tail regression occurs is machine- and load-dependent; the
	// drill makes the p99 backoff rule's arming a reported invariant
	// instead of a lucky draw. Escalating p99 values outrun the
	// controller's EWMA baseline from any starting point, so the rule
	// fires within the cap unless the live run already fired it.
	hasP99 := func() bool {
		for _, d := range tn.Decisions() {
			for _, r := range d.Reasons {
				if strings.Contains(r, "p99") {
					return true
				}
			}
		}
		return false
	}
	drill := func(p99 float64) tune.Window {
		return tune.Window{
			Counters: tune.Counters{
				Commits:     1000,
				GraceWaitNs: 100_000, // 10% of DurNs: inside every hysteresis band
				DurNs:       1_000_000,
			},
			Elapsed:     time.Second,
			CommitP50Ns: p99 / 2,
			CommitP99Ns: p99,
		}
	}
	for p99 := 100_000.0; !hasP99() && p99 < 1e12; p99 *= 2 {
		tn.StepWindow(drill(p99))
	}
	rep.P99RuleFired = hasP99()

	rep.Swaps = rt.PolicySwaps()
	rep.Decisions = tn.Decisions()
	rep.Converged = true
	for _, pr := range rep.Phases {
		if pr.Ratio < 1-cfg.Tolerance {
			rep.Converged = false
		}
	}
	return rep, nil
}

// Table renders the report for stmbench -adaptive.
func (r *AdaptiveReport) Table() *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Adaptive convergence (%d goroutines, %dms phases)", r.Goroutines, r.PhaseMS),
		Columns: []string{"phase", "best static", "static ops/s", "adaptive ops/s", "ratio", "final policy"},
	}
	for _, pr := range r.Phases {
		t.AddRow(pr.Phase, pr.BestStatic, pr.BestOpsPerSec, pr.AdaptiveOpsPerSec, pr.Ratio, pr.FinalPolicy)
	}
	t.AddNote("policy swaps: %d, decisions: %d, converged (within %.0f%% of oracle): %v",
		r.Swaps, len(r.Decisions), r.Tolerance*100, r.Converged)
	t.AddNote("p99 backoff rule fired (live or drill): %v", r.P99RuleFired)
	for _, d := range r.Decisions {
		for _, reason := range d.Reasons {
			t.AddNote("decision %d -> %s: %s", d.Seq, d.Policy, reason)
		}
	}
	return t
}
