// Package adversary implements the competitive-analysis model of
// Section 6: an adversary schedules conflicts between the
// transactions of n threads, and we compare the sum of running times
// Σ Γ(T, A) of an online grace-period strategy against the
// clairvoyant offline optimum, verifying Corollary 1's bound
//
//	Σ Γ(T, A) / Σ Γ(T, OPT) <= (r·w + 1)/(w + 1),
//
// where r is the local competitive ratio of the strategy and
// w(S) = Σ α_T / Σ ρ_T is the adversary's waste under the optimal
// algorithm.
//
// Per the model's simplifying assumptions (Section 3.2), each
// transaction is conflicted at most once (as receiver), conflicts are
// not cyclic, and the same conflict schedule is presented to the
// online algorithm and to the optimum — which makes the comparison
// exact rather than heuristic.
package adversary

import (
	"math"

	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/rng"
)

// Conflict is one adversarial conflict: the receiver transaction is
// interrupted at fraction Frac of its length by K-1 requestors whose
// own elapsed fractions are ReqFrac (used for requestor-aborts redo
// accounting).
type Conflict struct {
	// RecvLen is the receiver transaction's isolated length ρ.
	RecvLen float64
	// Frac is the interrupt point as a fraction of RecvLen.
	Frac float64
	// K is the conflict chain length (>= 2).
	K int
	// ReqLen and ReqFrac describe the requestor-side transactions
	// (all K-1 assumed identical for accounting simplicity).
	ReqLen  float64
	ReqFrac float64
}

// Remaining returns the receiver's remaining execution time D.
func (c Conflict) Remaining() float64 { return (1 - c.Frac) * c.RecvLen }

// Schedule is a full adversarial scenario: the isolated lengths of
// every transaction plus the conflicts the adversary injects.
type Schedule struct {
	// BaseLoad is Σ ρ_T over all transactions (conflicted or not).
	BaseLoad float64
	// Conflicts lists the adversary's conflict injections.
	Conflicts []Conflict
	// Cleanup is the fixed abort cleanup cost.
	Cleanup float64
	// Mean, when > 0, is the mean transaction length the profiler
	// would report (fed to mean-constrained strategies).
	Mean float64
}

// Outcome aggregates a strategy's performance on a schedule.
type Outcome struct {
	// SumRunning is Σ Γ(T): base load plus all conflict-induced
	// waste (delays, wasted execution, cleanup, redo).
	SumRunning float64
	// Waste is SumRunning - BaseLoad.
	Waste float64
	// ReceiverCommits counts conflicts where the receiver survived.
	ReceiverCommits int
}

// conflictWaste returns the extra running time a single conflict adds
// when the chosen grace period is x, following Section 4's cost
// accounting operationally:
//
//	requestor wins, D <= x: the k-1 requestors wait D;
//	requestor wins, D > x:  receiver wastes Frac·L + x + cleanup and
//	                        redoes the work, requestors wait x;
//	requestor aborts, D <= x: the k-1 requestors wait D;
//	requestor aborts, D > x:  each requestor wastes its elapsed time
//	                          + x + cleanup and redoes its work.
func conflictWaste(pol core.Policy, c Conflict, cleanup, x float64) (waste float64, receiverCommits bool) {
	d := c.Remaining()
	k1 := float64(c.K - 1)
	if d <= x {
		return k1 * d, true
	}
	switch pol {
	case core.RequestorWins:
		elapsed := c.Frac * c.RecvLen
		return elapsed + x + cleanup + k1*x, false
	case core.RequestorAborts:
		reqElapsed := c.ReqFrac * c.ReqLen
		return k1 * (reqElapsed + x + cleanup), false
	default:
		panic("adversary: unknown policy")
	}
}

// optWaste returns the clairvoyant minimum waste for one conflict:
// the better of waiting out the receiver and aborting immediately.
func optWaste(pol core.Policy, c Conflict, cleanup float64) float64 {
	wait, _ := conflictWaste(pol, c, cleanup, c.Remaining())
	abort, _ := conflictWaste(pol, c, cleanup, 0)
	return math.Min(wait, abort)
}

// abortCostB returns the strategy-visible abort cost B for a
// conflict: the doomed side's elapsed time plus cleanup (paper
// footnote 1).
func abortCostB(pol core.Policy, c Conflict, cleanup float64) float64 {
	if pol == core.RequestorWins {
		return c.Frac*c.RecvLen + cleanup
	}
	return c.ReqFrac*c.ReqLen + cleanup
}

// Run evaluates a strategy on a schedule. Randomized strategies are
// averaged over their own draws conflict by conflict (one draw per
// conflict, as in a real execution).
func Run(pol core.Policy, s core.Strategy, sched Schedule, r *rng.Rand) Outcome {
	out := Outcome{SumRunning: sched.BaseLoad}
	for _, c := range sched.Conflicts {
		b := abortCostB(pol, c, sched.Cleanup)
		conf := core.Conflict{Policy: pol, K: c.K, B: b, Mean: sched.Mean}
		x := s.Delay(conf, r)
		waste, committed := conflictWaste(pol, c, sched.Cleanup, x)
		out.Waste += waste
		if committed {
			out.ReceiverCommits++
		}
	}
	out.SumRunning += out.Waste
	return out
}

// RunOpt evaluates the clairvoyant optimum on a schedule.
func RunOpt(pol core.Policy, sched Schedule) Outcome {
	out := Outcome{SumRunning: sched.BaseLoad}
	for _, c := range sched.Conflicts {
		out.Waste += optWaste(pol, c, sched.Cleanup)
	}
	out.SumRunning += out.Waste
	return out
}

// CorollaryBound returns Corollary 1's bound on the sum-of-running-
// times ratio for a strategy with local competitive ratio r and
// adversarial waste w: (r·w + 1)/(w + 1).
func CorollaryBound(localRatio, w float64) float64 {
	return (localRatio*w + 1) / (w + 1)
}

// Waste returns w(S) = Σ α_T / Σ ρ_T for the optimal algorithm.
func Waste(pol core.Policy, sched Schedule) float64 {
	if sched.BaseLoad == 0 {
		return 0
	}
	return RunOpt(pol, sched).Waste / sched.BaseLoad
}

// Generator produces adversarial schedules.
type Generator interface {
	Generate(r *rng.Rand) Schedule
	Name() string
}

// Random is the baseline adversary: nTx transactions with lengths
// from Lengths; a fraction ConflictFrac of them is interrupted at a
// uniform point by a chain of length K.
type Random struct {
	NTx          int
	Lengths      dist.Sampler
	ConflictFrac float64
	K            int
	Cleanup      float64
	FeedMean     bool
}

// Name implements Generator.
func (a Random) Name() string { return "random" }

// Generate implements Generator.
func (a Random) Generate(r *rng.Rand) Schedule {
	k := a.K
	if k < 2 {
		k = 2
	}
	sched := Schedule{Cleanup: a.Cleanup}
	if a.FeedMean {
		sched.Mean = a.Lengths.Mean()
	}
	for i := 0; i < a.NTx; i++ {
		l := a.Lengths.Sample(r)
		if l <= 0 {
			l = 1
		}
		sched.BaseLoad += l
		if r.Bool(a.ConflictFrac) {
			sched.Conflicts = append(sched.Conflicts, Conflict{
				RecvLen: l,
				Frac:    r.Float64(),
				K:       k,
				ReqLen:  a.Lengths.Sample(r) + 1,
				ReqFrac: r.Float64(),
			})
		}
	}
	return sched
}

// AntiDeterministic targets the deterministic strategy's worst case:
// every conflicted transaction's remaining time lands exactly at the
// deterministic abort point B/(k-1) (Figure 2c's adversary).
type AntiDeterministic struct {
	NTx     int
	K       int
	Cleanup float64
}

// Name implements Generator.
func (a AntiDeterministic) Name() string { return "anti-DET" }

// Generate implements Generator.
func (a AntiDeterministic) Generate(r *rng.Rand) Schedule {
	k := a.K
	if k < 2 {
		k = 2
	}
	sched := Schedule{Cleanup: a.Cleanup}
	for i := 0; i < a.NTx; i++ {
		// Choose elapsed E uniformly, so B = E + cleanup; set the
		// remaining time exactly to B/(k-1): DET waits B/(k-1) and
		// *still* aborts (D <= x commits on the boundary, so nudge D
		// just above it).
		elapsed := 50 + 100*r.Float64()
		b := elapsed + a.Cleanup
		d := b/float64(k-1) + 1e-9
		l := elapsed + d
		sched.BaseLoad += l
		sched.Conflicts = append(sched.Conflicts, Conflict{
			RecvLen: l,
			Frac:    elapsed / l,
			K:       k,
			ReqLen:  l,
			ReqFrac: 0.5,
		})
	}
	return sched
}

// HighContention conflicts every transaction with long chains,
// stressing the k > 2 strategies.
type HighContention struct {
	NTx     int
	Lengths dist.Sampler
	KMax    int
	Cleanup float64
}

// Name implements Generator.
func (a HighContention) Name() string { return "high-contention" }

// Generate implements Generator.
func (a HighContention) Generate(r *rng.Rand) Schedule {
	sched := Schedule{Cleanup: a.Cleanup}
	for i := 0; i < a.NTx; i++ {
		l := a.Lengths.Sample(r)
		if l <= 0 {
			l = 1
		}
		sched.BaseLoad += l
		k := 2 + r.Intn(a.KMax-1)
		sched.Conflicts = append(sched.Conflicts, Conflict{
			RecvLen: l,
			Frac:    r.Float64(),
			K:       k,
			ReqLen:  a.Lengths.Sample(r) + 1,
			ReqFrac: r.Float64(),
		})
	}
	return sched
}
