package adversary

import (
	"reflect"
	"testing"

	"txconflict/internal/dist"
	"txconflict/internal/rng"
)

// TestGoldenSchedules locks schedule determinism: the same seed must
// produce byte-identical Random and HighContention schedules across
// independent generator runs, so every adversarial figure is
// reproducible from its seed alone.
func TestGoldenSchedules(t *testing.T) {
	gens := []Generator{
		Random{NTx: 500, Lengths: dist.Exponential{Mu: 200}, ConflictFrac: 0.5, K: 2, Cleanup: 50, FeedMean: true},
		Random{NTx: 500, Lengths: dist.UniformMean(300), ConflictFrac: 0.9, K: 3, Cleanup: 20},
		HighContention{NTx: 500, Lengths: dist.Exponential{Mu: 100}, KMax: 6, Cleanup: 30},
		HighContention{NTx: 500, Lengths: dist.BimodalMean(250), KMax: 4, Cleanup: 10},
	}
	for _, g := range gens {
		a := g.Generate(rng.New(77))
		b := g.Generate(rng.New(77))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different schedules", g.Name())
		}
		c := g.Generate(rng.New(78))
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical schedules", g.Name())
		}
	}
}

// TestGoldenTimeline extends the determinism contract to the
// operational simulation: identical TimelineParams (same seed) must
// produce identical results, for every sampler family the CLIs can
// select.
func TestGoldenTimeline(t *testing.T) {
	for _, name := range dist.Names() {
		d, err := dist.ByName(name, 120)
		if err != nil {
			t.Fatal(err)
		}
		p := TimelineParams{
			Threads:      3,
			TxPerThread:  200,
			Lengths:      d,
			ConflictFrac: 0.4,
			Cleanup:      40,
			Seed:         2024,
		}
		a, b := RunTimeline(p), RunTimeline(p)
		if a != b {
			t.Errorf("%s: timeline diverged for identical params:\n%+v\n%+v", name, a, b)
		}
	}
}
