package adversary

import (
	"fmt"

	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/rng"
	"txconflict/internal/sim"
)

// TimelineParams configures the operational Section 6 simulation: n
// threads execute pre-drawn transaction sequences on a shared
// timeline; the adversary interrupts pre-selected transactions at
// pre-drawn points, pairing each receiver with the next thread as
// requestor. Because the conflict schedule is drawn *before* the run,
// the online strategies and the clairvoyant optimum face literally
// identical conflicts, as the paper's model requires.
type TimelineParams struct {
	// Threads is the number of concurrent threads (>= 2).
	Threads int
	// TxPerThread is the length of each thread's transaction input.
	TxPerThread int
	// Lengths draws isolated transaction lengths (cycles, >= 1).
	Lengths dist.Sampler
	// ConflictFrac is the fraction of transactions the adversary
	// interrupts (on their first attempt).
	ConflictFrac float64
	// Cleanup is the fixed abort cost in cycles.
	Cleanup sim.Time
	// Policy resolves conflicts; Strategy picks grace periods (nil =
	// immediate).
	Policy   core.Policy
	Strategy core.Strategy
	// Clairvoyant replaces the strategy with the offline-optimal
	// per-conflict decision (knows the remaining time).
	Clairvoyant bool
	// FeedMean passes the length distribution's mean to the strategy.
	FeedMean bool
	// Seed draws the schedule and the strategy's randomness.
	Seed uint64
}

// TimelineResult aggregates an operational run.
type TimelineResult struct {
	// SumRunning is Σ Γ(T): for every committed transaction, the
	// time from its first invocation to its commit.
	SumRunning float64
	// BaseLoad is Σ ρ(T) over committed transactions.
	BaseLoad float64
	// Commits and Aborts count transaction outcomes.
	Commits, Aborts uint64
	// GraceSaves counts receivers that committed within their grace.
	GraceSaves uint64
	// Makespan is the finish time of the last thread.
	Makespan sim.Time
}

// Waste returns (SumRunning - BaseLoad) / BaseLoad.
func (r TimelineResult) Waste() float64 {
	if r.BaseLoad == 0 {
		return 0
	}
	return (r.SumRunning - r.BaseLoad) / r.BaseLoad
}

// tlTrace enables debug tracing (tests only).
var tlTrace bool

func tlLog(format string, args ...interface{}) {
	if tlTrace {
		fmt.Printf(format+"\n", args...)
	}
}

// timelineTx is one pre-drawn transaction.
type timelineTx struct {
	length     sim.Time
	conflicted bool
	frac       float64
}

// tlThread is a thread's run state.
type tlThread struct {
	id      int
	txs     []timelineTx
	idx     int
	epoch   uint64 // invalidates stale timers on abort/resume
	running bool
	// waiting marks a thread paused as a requestor in a conflict.
	waiting bool
	// receiverInGrace marks a thread whose current transaction is in
	// its grace period (assumption (b): cannot be re-conflicted).
	receiverInGrace bool

	firstStart       sim.Time // first invocation of the current transaction
	attemptAt        sim.Time // start of the current attempt
	conflictConsumed bool
}

// RunTimeline executes the operational simulation and returns its
// aggregate result. Deterministic given params.
func RunTimeline(p TimelineParams) TimelineResult {
	if p.Threads < 2 {
		panic("adversary: timeline needs >= 2 threads")
	}
	r := rng.New(p.Seed)
	strategyRng := r.Split()

	threads := make([]*tlThread, p.Threads)
	for t := range threads {
		txs := make([]timelineTx, p.TxPerThread)
		for i := range txs {
			l := p.Lengths.Sample(r)
			if l < 1 {
				l = 1
			}
			txs[i] = timelineTx{
				length:     sim.Time(l),
				conflicted: r.Bool(p.ConflictFrac),
				frac:       r.Float64(),
			}
		}
		threads[t] = &tlThread{id: t, txs: txs}
	}

	var k sim.Kernel
	res := TimelineResult{}

	var startTx func(t *tlThread, firstAttempt bool)
	var finishTx func(t *tlThread)

	resume := func(t *tlThread, delay sim.Time, fn func()) {
		e := t.epoch
		k.After(delay, func() {
			if t.epoch == e {
				fn()
			}
		})
	}

	// conflictAt fires when a conflicted transaction reaches its
	// interrupt point: the next thread becomes the requestor.
	conflictAt := func(recv *tlThread, remaining sim.Time) {
		reqThread := threads[(recv.id+1)%p.Threads]
		// Assumption constraints: skip if the requestor is not in a
		// position to conflict (idle, already waiting) or is itself
		// a receiver in grace. The receiver then simply runs to
		// completion.
		if !reqThread.running || reqThread.waiting || reqThread.receiverInGrace {
			resume(recv, remaining, func() { finishTx(recv) })
			return
		}
		// Pause the requestor.
		reqThread.waiting = true
		reqThread.epoch++ // cancel its completion timer
		reqElapsed := k.Now() - reqThread.attemptAt
		tlLog("t=%d PAUSE q=%d idx=%d elapsed=%d len=%d (recv=%d rem=%d)", k.Now(), reqThread.id, reqThread.idx, reqElapsed, reqThread.txs[reqThread.idx].length, recv.id, remaining)

		var grace sim.Time
		var b float64
		if p.Policy == core.RequestorWins {
			b = float64(k.Now()-recv.attemptAt) + float64(p.Cleanup)
		} else {
			b = float64(reqElapsed) + float64(p.Cleanup)
		}
		conf := core.Conflict{Policy: p.Policy, K: 2, B: b}
		if p.FeedMean {
			conf.Mean = p.Lengths.Mean()
		}
		switch {
		case p.Clairvoyant:
			if float64(remaining) <= b {
				grace = remaining
			} else {
				grace = 0
			}
		case p.Strategy == nil:
			grace = 0
		default:
			x := p.Strategy.Delay(conf, strategyRng)
			if x < 0 {
				x = 0
			}
			grace = sim.Time(x)
		}

		resumeRequestor := func(abortRequestor bool) {
			reqThread.waiting = false
			if !reqThread.running {
				return
			}
			if abortRequestor {
				res.Aborts++
				reqThread.epoch++
				// Not running during cleanup: a thread mid-cleanup
				// cannot be paused (its attemptAt is stale).
				reqThread.running = false
				resume(reqThread, p.Cleanup, func() { startTx(reqThread, false) })
				return
			}
			// Continue the paused transaction: shift its attempt
			// start by the pause length, reschedule completion.
			tx := reqThread.txs[reqThread.idx]
			reqThread.attemptAt = k.Now() - reqElapsed
			left := tx.length - reqElapsed
			tlLog("t=%d RESUME q=%d idx=%d elapsed=%d len=%d left=%d", k.Now(), reqThread.id, reqThread.idx, reqElapsed, tx.length, int64(left))
			resume(reqThread, left, func() { finishTx(reqThread) })
		}

		if grace >= remaining {
			// The receiver commits inside the grace period.
			recv.receiverInGrace = true
			res.GraceSaves++
			resume(recv, remaining, func() {
				recv.receiverInGrace = false
				finishTx(recv)
				resumeRequestor(false)
			})
			return
		}
		// Grace expires before the receiver can commit.
		recv.receiverInGrace = true
		resume(recv, grace, func() {
			recv.receiverInGrace = false
			if p.Policy == core.RequestorWins {
				// Receiver aborts and restarts; requestor resumes.
				res.Aborts++
				recv.epoch++
				recv.running = false // mid-cleanup: not pausable
				resume(recv, p.Cleanup, func() { startTx(recv, false) })
				resumeRequestor(false)
				return
			}
			// Requestor aborts; receiver keeps running to its end.
			resume(recv, remaining-grace, func() { finishTx(recv) })
			resumeRequestor(true)
		})
	}

	startTx = func(t *tlThread, firstAttempt bool) {
		if t.idx >= len(t.txs) {
			t.running = false
			return
		}
		tx := t.txs[t.idx]
		t.running = true
		t.attemptAt = k.Now()
		if firstAttempt {
			t.firstStart = k.Now()
			t.conflictConsumed = false
		}
		if tx.conflicted && !t.conflictConsumed {
			t.conflictConsumed = true
			at := sim.Time(tx.frac * float64(tx.length))
			remaining := tx.length - at
			resume(t, at, func() { conflictAt(t, remaining) })
			return
		}
		resume(t, tx.length, func() { finishTx(t) })
	}

	finishTx = func(t *tlThread) {
		res.Commits++
		res.SumRunning += float64(k.Now() - t.firstStart)
		res.BaseLoad += float64(t.txs[t.idx].length)
		t.idx++
		t.epoch++
		t.running = false
		resume(t, 1, func() { startTx(t, true) })
	}

	for _, t := range threads {
		t := t
		k.At(sim.Time(t.id), func() { startTx(t, true) })
	}
	k.Run()
	res.Makespan = k.Now()
	return res
}

// TimelineRatio runs the online strategy and the clairvoyant optimum
// on the same pre-drawn schedule and returns their sum-of-running-
// times ratio together with the optimum's waste.
func TimelineRatio(p TimelineParams) (ratio, waste float64, online, opt TimelineResult) {
	online = RunTimeline(p)
	pOpt := p
	pOpt.Clairvoyant = true
	opt = RunTimeline(pOpt)
	ratio = online.SumRunning / opt.SumRunning
	waste = opt.Waste()
	return
}
