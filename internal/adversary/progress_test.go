package adversary

import (
	"testing"

	"txconflict/internal/rng"
)

// TestCorollary2Progress is experiment E9: under multiplicative
// backoff, a transaction of length y encountering γ conflicts
// commits within log(y)+log(γ)+log(k)-log(B)+2 attempts with
// probability at least 1/2.
func TestCorollary2Progress(t *testing.T) {
	r := rng.New(31337)
	cases := []ProgressParams{
		{Y: 1000, Gamma: 3, K: 2, B0: 64},
		{Y: 5000, Gamma: 5, K: 2, B0: 32},
		{Y: 1000, Gamma: 2, K: 4, B0: 128},
		{Y: 200, Gamma: 8, K: 2, B0: 16},
	}
	for _, p := range cases {
		res := RunProgress(p, 4000, r)
		if res.PWithinBound < 0.5 {
			t.Errorf("params %+v: P(commit within %d attempts) = %.3f < 0.5",
				p, res.Bound, res.PWithinBound)
		}
	}
}

func TestProgressWithoutBackoffIsWorse(t *testing.T) {
	// Factor 1 (no backoff) must need at least as many attempts in
	// expectation as factor 2.
	r := rng.New(99)
	base := ProgressParams{Y: 2000, Gamma: 4, K: 2, B0: 32, MaxAttempts: 5000}
	withBackoff := base
	withBackoff.Factor = 2
	noBackoff := base
	noBackoff.Factor = 1
	mean := func(xs []int) float64 {
		s := 0
		for _, x := range xs {
			s += x
		}
		return float64(s) / float64(len(xs))
	}
	mb := mean(RunProgress(withBackoff, 1500, r).Attempts)
	mn := mean(RunProgress(noBackoff, 1500, r).Attempts)
	if mb >= mn {
		t.Errorf("backoff mean attempts %.2f not below no-backoff %.2f", mb, mn)
	}
}

func TestProgressBoundedByCap(t *testing.T) {
	r := rng.New(1)
	p := ProgressParams{Y: 1e9, Gamma: 50, K: 2, B0: 1, MaxAttempts: 10}
	res := RunProgress(p, 50, r)
	for _, a := range res.Attempts {
		if a > 10 {
			t.Fatalf("attempt count %d exceeds cap", a)
		}
	}
}
