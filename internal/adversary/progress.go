package adversary

import (
	"txconflict/internal/core"
	"txconflict/internal/rng"
	"txconflict/internal/strategy"
)

// ProgressParams configures the Corollary 2 experiment: a transaction
// of length Y encounters Gamma conflicts (as receiver, requestor
// wins) per execution attempt at uniform points; after every abort
// its abort cost B doubles. Corollary 2 predicts it commits within
//
//	log2(Y) + log2(Gamma) + log2(K) - log2(B0) + 2
//
// attempts with probability at least 1/2.
type ProgressParams struct {
	// Y is the transaction's running time.
	Y float64
	// Gamma is the number of conflicts per execution.
	Gamma int
	// K is the chain length of each conflict.
	K int
	// B0 is the initial abort cost.
	B0 float64
	// Factor is the multiplicative backoff (Corollary 2 uses 2).
	Factor float64
	// MaxAttempts caps the simulation.
	MaxAttempts int
}

// ProgressResult reports the attempts-to-commit distribution.
type ProgressResult struct {
	// Attempts holds the number of attempts needed per trial.
	Attempts []int
	// Bound is Corollary 2's attempt bound.
	Bound int
	// PWithinBound is the fraction of trials that committed within
	// Bound attempts (Corollary 2 predicts >= 1/2).
	PWithinBound float64
}

// RunProgress simulates the backoff scheme for the given number of
// trials using the unconstrained uniform requestor-wins strategy
// (the one Corollary 2's proof analyses).
func RunProgress(p ProgressParams, trials int, r *rng.Rand) ProgressResult {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 10000
	}
	if p.Factor == 0 {
		p.Factor = 2
	}
	s := strategy.UniformRW{}
	res := ProgressResult{
		Bound: strategy.AttemptBound(p.Y, float64(p.Gamma), p.K, p.B0),
	}
	within := 0
	for trial := 0; trial < trials; trial++ {
		b := p.B0
		attempts := 0
		for attempts < p.MaxAttempts {
			attempts++
			// One execution: survive all Gamma conflicts to commit.
			// Conflict i arrives at a uniform point; the transaction
			// survives iff the grace period covers the remaining
			// time (requestor-wins receiver role).
			survived := true
			for g := 0; g < p.Gamma; g++ {
				remaining := (1 - r.Float64()) * p.Y
				conf := core.Conflict{Policy: core.RequestorWins, K: p.K, B: b}
				x := s.Delay(conf, r)
				if x < remaining {
					survived = false
					break
				}
			}
			if survived {
				break
			}
			b *= p.Factor
		}
		res.Attempts = append(res.Attempts, attempts)
		if attempts <= res.Bound {
			within++
		}
	}
	res.PWithinBound = float64(within) / float64(trials)
	return res
}
