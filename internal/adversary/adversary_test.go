package adversary

import (
	"math"
	"testing"

	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/rng"
	"txconflict/internal/strategy"
)

func TestConflictWasteMatchesCostModel(t *testing.T) {
	// The operational waste must equal Section 4's conflict cost.
	c := Conflict{RecvLen: 100, Frac: 0.4, K: 2, ReqLen: 80, ReqFrac: 0.25}
	cleanup := 10.0
	d := c.Remaining() // 60
	if d != 60 {
		t.Fatalf("remaining = %v", d)
	}
	// RW commit case: x >= D -> waste (k-1)*D.
	if w, ok := conflictWaste(core.RequestorWins, c, cleanup, 70); !ok || w != 60 {
		t.Fatalf("RW commit waste = %v,%v", w, ok)
	}
	// RW abort case: waste = elapsed + x + cleanup + (k-1)x
	//              = 40 + 30 + 10 + 30 = 110; and cost model says
	// k·x + B with B = elapsed + cleanup = 2*30 + 50 = 110.
	if w, ok := conflictWaste(core.RequestorWins, c, cleanup, 30); ok || w != 110 {
		t.Fatalf("RW abort waste = %v,%v", w, ok)
	}
	// RA abort case: (k-1)(reqElapsed + x + cleanup) = 20+30+10 = 60.
	if w, ok := conflictWaste(core.RequestorAborts, c, cleanup, 30); ok || w != 60 {
		t.Fatalf("RA abort waste = %v,%v", w, ok)
	}
}

func TestOptWasteIsMinimum(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 2000; i++ {
		c := Conflict{
			RecvLen: 1 + 500*r.Float64(),
			Frac:    r.Float64(),
			K:       2 + r.Intn(4),
			ReqLen:  1 + 500*r.Float64(),
			ReqFrac: r.Float64(),
		}
		for _, pol := range []core.Policy{core.RequestorWins, core.RequestorAborts} {
			opt := optWaste(pol, c, 20)
			for _, x := range []float64{0, 1, 10, 50, c.Remaining(), c.Remaining() * 2} {
				w, _ := conflictWaste(pol, c, 20, x)
				if w < opt-1e-9 {
					t.Fatalf("%v: found x=%v with waste %v below opt %v (conflict %+v)", pol, x, w, opt, c)
				}
			}
		}
	}
}

func TestZeroConflictsRatioOne(t *testing.T) {
	sched := Schedule{BaseLoad: 1000}
	r := rng.New(1)
	on := Run(core.RequestorWins, strategy.UniformRW{}, sched, r)
	opt := RunOpt(core.RequestorWins, sched)
	if on.SumRunning != 1000 || opt.SumRunning != 1000 {
		t.Fatalf("empty schedule: %v / %v", on.SumRunning, opt.SumRunning)
	}
	if Waste(core.RequestorWins, sched) != 0 {
		t.Fatal("waste of empty schedule not 0")
	}
}

// TestCorollary1Bound is experiment E8: for randomized strategies
// with local ratio r, the sum of running times is within
// (r·w+1)/(w+1) of the offline optimum (plus sampling noise), for
// every adversary generator.
func TestCorollary1Bound(t *testing.T) {
	r := rng.New(2024)
	gens := []Generator{
		Random{NTx: 4000, Lengths: dist.Exponential{Mu: 200}, ConflictFrac: 0.5, K: 2, Cleanup: 50},
		Random{NTx: 4000, Lengths: dist.UniformMean(300), ConflictFrac: 0.9, K: 3, Cleanup: 20},
		HighContention{NTx: 4000, Lengths: dist.Exponential{Mu: 100}, KMax: 6, Cleanup: 30},
		AntiDeterministic{NTx: 4000, K: 2, Cleanup: 25},
	}
	type sc struct {
		pol core.Policy
		s   core.Strategy
	}
	cases := []sc{
		{core.RequestorWins, strategy.UniformRW{}},
		{core.RequestorWins, strategy.GeneralRW{}},
		{core.RequestorAborts, strategy.ExpRA{}},
	}
	for _, g := range gens {
		sched := g.Generate(r)
		w := Waste(core.RequestorWins, sched)
		for _, tc := range cases {
			wPol := Waste(tc.pol, sched)
			on := Run(tc.pol, tc.s, sched, r)
			opt := RunOpt(tc.pol, sched)
			ratio := on.SumRunning / opt.SumRunning
			// The local ratio depends on k per conflict; bound with
			// the worst k in the schedule.
			localRatio := 0.0
			for _, c := range sched.Conflicts {
				cc := core.Conflict{Policy: tc.pol, K: c.K, B: 1}
				if lr := tc.s.(strategy.Analytic).Ratio(cc); lr > localRatio {
					localRatio = lr
				}
			}
			bound := CorollaryBound(localRatio, wPol)
			if ratio > bound*1.03 { // 3% sampling slack
				t.Errorf("%s/%s on %s: ratio %.4f exceeds bound %.4f (waste %.3f)",
					tc.pol, tc.s.Name(), g.Name(), ratio, bound, wPol)
			}
		}
		_ = w
	}
}

func TestOnlineNeverBeatsOpt(t *testing.T) {
	r := rng.New(7)
	g := Random{NTx: 2000, Lengths: dist.Exponential{Mu: 150}, ConflictFrac: 0.7, K: 2, Cleanup: 40}
	sched := g.Generate(r)
	for _, tc := range []struct {
		pol core.Policy
		s   core.Strategy
	}{
		{core.RequestorWins, strategy.Immediate{}},
		{core.RequestorWins, strategy.Deterministic{}},
		{core.RequestorWins, strategy.UniformRW{}},
		{core.RequestorAborts, strategy.ExpRA{}},
		{core.RequestorAborts, strategy.MeanRA{}},
	} {
		on := Run(tc.pol, tc.s, sched, r)
		opt := RunOpt(tc.pol, sched)
		if on.SumRunning < opt.SumRunning-1e-6 {
			t.Errorf("%s/%s: online %v beat opt %v", tc.pol, tc.s.Name(), on.SumRunning, opt.SumRunning)
		}
	}
}

func TestAntiDeterministicPunishesDET(t *testing.T) {
	// Figure 2c / Theorem 4: against its worst-case distribution the
	// deterministic strategy pays its full ratio, while the
	// randomized strategy stays near 2.
	r := rng.New(11)
	sched := AntiDeterministic{NTx: 5000, K: 2, Cleanup: 25}.Generate(r)
	opt := RunOpt(core.RequestorWins, sched)
	det := Run(core.RequestorWins, strategy.Deterministic{}, sched, r)
	rnd := Run(core.RequestorWins, strategy.UniformRW{}, sched, r)
	detRatio := det.Waste / opt.Waste
	rndRatio := rnd.Waste / opt.Waste
	if detRatio < 2.5 {
		t.Errorf("DET not punished by its adversary: waste ratio %.3f", detRatio)
	}
	if rndRatio > 2.1 {
		t.Errorf("randomized strategy overpaid on DET's adversary: %.3f", rndRatio)
	}
	if rndRatio >= detRatio {
		t.Errorf("randomized (%.3f) should beat DET (%.3f) here", rndRatio, detRatio)
	}
}

func TestMeanFeedImprovesMeanStrategies(t *testing.T) {
	// With FeedMean, the constrained strategies should (weakly)
	// outperform their unconstrained versions when µ << B.
	r := rng.New(13)
	g := Random{
		NTx: 30000, Lengths: dist.Exponential{Mu: 30},
		ConflictFrac: 0.8, K: 2, Cleanup: 500, FeedMean: true,
	}
	sched := g.Generate(r)
	// Interrupts happen late in long elapsed times: B ~ elapsed+500
	// >> µ=30, so the constrained corner is active.
	unc := Run(core.RequestorAborts, strategy.ExpRA{}, sched, r)
	con := Run(core.RequestorAborts, strategy.MeanRA{}, sched, r)
	if con.Waste >= unc.Waste {
		t.Errorf("RRA(mu) waste %v not below RRA %v", con.Waste, unc.Waste)
	}
	uncW := Run(core.RequestorWins, strategy.GeneralRW{}, sched, r)
	conW := Run(core.RequestorWins, strategy.MeanRW{}, sched, r)
	if conW.Waste >= uncW.Waste {
		t.Errorf("RRW(mu) waste %v not below RRW %v", conW.Waste, uncW.Waste)
	}
}

func TestGeneratorShapes(t *testing.T) {
	r := rng.New(17)
	g := Random{NTx: 100, Lengths: dist.Constant{V: 10}, ConflictFrac: 1, K: 4, Cleanup: 5}
	sched := g.Generate(r)
	if len(sched.Conflicts) != 100 {
		t.Fatalf("conflicts = %d", len(sched.Conflicts))
	}
	if sched.BaseLoad != 1000 {
		t.Fatalf("base load = %v", sched.BaseLoad)
	}
	for _, c := range sched.Conflicts {
		if c.K != 4 || c.Frac < 0 || c.Frac >= 1 {
			t.Fatalf("bad conflict %+v", c)
		}
	}
	hc := HighContention{NTx: 50, Lengths: dist.Constant{V: 10}, KMax: 6, Cleanup: 5}.Generate(r)
	for _, c := range hc.Conflicts {
		if c.K < 2 || c.K > 6 {
			t.Fatalf("high-contention k = %d", c.K)
		}
	}
}

func TestCorollaryBoundFormula(t *testing.T) {
	if got := CorollaryBound(2, 0); got != 1 {
		t.Fatalf("bound(2,0) = %v", got)
	}
	// w -> inf: bound -> r.
	if got := CorollaryBound(2, 1e12); math.Abs(got-2) > 1e-6 {
		t.Fatalf("bound(2,inf) = %v", got)
	}
	if got := CorollaryBound(2, 1); got != 1.5 {
		t.Fatalf("bound(2,1) = %v", got)
	}
}

func BenchmarkRunSchedule(b *testing.B) {
	r := rng.New(1)
	sched := Random{NTx: 1000, Lengths: dist.Exponential{Mu: 100}, ConflictFrac: 0.5, K: 2, Cleanup: 20}.Generate(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(core.RequestorWins, strategy.UniformRW{}, sched, r)
	}
}
