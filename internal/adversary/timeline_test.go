package adversary

import (
	"testing"

	"txconflict/internal/core"
	"txconflict/internal/dist"
	"txconflict/internal/strategy"
)

func baseTimeline() TimelineParams {
	return TimelineParams{
		Threads:      4,
		TxPerThread:  800,
		Lengths:      dist.Exponential{Mu: 120},
		ConflictFrac: 0.4,
		Cleanup:      40,
		Policy:       core.RequestorWins,
		Strategy:     strategy.UniformRW{},
		Seed:         2024,
	}
}

func TestTimelineCompletes(t *testing.T) {
	p := baseTimeline()
	res := RunTimeline(p)
	if res.Commits != uint64(p.Threads*p.TxPerThread) {
		t.Fatalf("commits = %d, want %d", res.Commits, p.Threads*p.TxPerThread)
	}
	if res.SumRunning < res.BaseLoad {
		t.Fatalf("sum of running times %v below base load %v", res.SumRunning, res.BaseLoad)
	}
	if res.Makespan == 0 {
		t.Fatal("empty makespan")
	}
}

func TestTimelineDeterministic(t *testing.T) {
	a := RunTimeline(baseTimeline())
	b := RunTimeline(baseTimeline())
	if a != b {
		t.Fatalf("same params diverged:\n%+v\n%+v", a, b)
	}
}

func TestTimelineClairvoyantIsBest(t *testing.T) {
	// The clairvoyant decision must beat (or match) every online
	// strategy on the same schedule.
	for _, pol := range []core.Policy{core.RequestorWins, core.RequestorAborts} {
		var strategies []core.Strategy
		if pol == core.RequestorWins {
			strategies = []core.Strategy{nil, strategy.UniformRW{}, strategy.Deterministic{}}
		} else {
			strategies = []core.Strategy{nil, strategy.ExpRA{}}
		}
		p := baseTimeline()
		p.Policy = pol
		pOpt := p
		pOpt.Clairvoyant = true
		opt := RunTimeline(pOpt)
		for _, s := range strategies {
			p.Strategy = s
			on := RunTimeline(p)
			if on.SumRunning < opt.SumRunning*0.999 {
				name := "NO_DELAY"
				if s != nil {
					name = s.Name()
				}
				t.Errorf("%v/%s: online %v beat clairvoyant %v", pol, name, on.SumRunning, opt.SumRunning)
			}
		}
	}
}

// TestTimelineCorollary1 validates Corollary 1 on the operational
// timeline: the sum-of-running-times ratio stays within the
// (2w+1)/(w+1) bound (with slack for the timeline's queueing effects,
// which the accounting model abstracts away; the paper's bound still
// dominates empirically).
func TestTimelineCorollary1(t *testing.T) {
	p := baseTimeline()
	ratio, waste, _, _ := TimelineRatio(p)
	bound := CorollaryBound(2, waste)
	if ratio > bound*1.05 {
		t.Fatalf("timeline ratio %.4f exceeds bound %.4f (waste %.3f)", ratio, bound, waste)
	}
	if ratio < 1 {
		t.Fatalf("online ratio %v below 1", ratio)
	}
}

func TestTimelineGraceSaves(t *testing.T) {
	// With a generous strategy, some receivers must commit inside
	// their grace; with NO_DELAY none can.
	p := baseTimeline()
	withGrace := RunTimeline(p)
	if withGrace.GraceSaves == 0 {
		t.Error("uniform strategy never saved a receiver")
	}
	p.Strategy = nil
	noDelay := RunTimeline(p)
	if noDelay.GraceSaves != 0 {
		t.Errorf("NO_DELAY saved %d receivers", noDelay.GraceSaves)
	}
	if noDelay.Aborts == 0 {
		t.Error("NO_DELAY timeline had no aborts")
	}
}

func TestTimelineRAKeepsReceiver(t *testing.T) {
	p := baseTimeline()
	p.Policy = core.RequestorAborts
	p.Strategy = strategy.ExpRA{}
	res := RunTimeline(p)
	if res.Commits != uint64(p.Threads*p.TxPerThread) {
		t.Fatalf("RA timeline incomplete: %d commits", res.Commits)
	}
}

func TestTimelinePanicsOnOneThread(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("single-thread timeline accepted")
		}
	}()
	p := baseTimeline()
	p.Threads = 1
	RunTimeline(p)
}

func TestTimelineWasteNonNegative(t *testing.T) {
	p := baseTimeline()
	p.ConflictFrac = 0
	res := RunTimeline(p)
	if res.Aborts != 0 {
		t.Fatalf("conflict-free timeline aborted %d times", res.Aborts)
	}
	if w := res.Waste(); w != 0 {
		t.Fatalf("conflict-free waste = %v", w)
	}
}

func BenchmarkTimeline(b *testing.B) {
	p := baseTimeline()
	p.TxPerThread = 200
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i)
		RunTimeline(p)
	}
}
