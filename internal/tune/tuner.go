package tune

import (
	"sync"
	"time"

	"txconflict/internal/metrics"
	"txconflict/internal/stm"
)

// decisionLogCap bounds the tuner's decision log; older entries fall
// off.
const decisionLogCap = 32

// Decision is one applied policy change, as rendered in /v1/policy.
type Decision struct {
	Seq     uint64    `json:"seq"`
	At      time.Time `json:"at"`
	Policy  string    `json:"policy"`
	Reasons []string  `json:"reasons"`
}

// PolicyView is the JSON shape of the control plane for remote
// observers: the live policy, whether the tuner is deciding or has
// been manually overridden, and the recent decision log.
type PolicyView struct {
	Policy    string     `json:"policy"`
	Auto      bool       `json:"auto"`
	Swaps     uint64     `json:"swaps"`
	KEstimate float64    `json:"kEstimate"`
	Decisions []Decision `json:"decisions,omitempty"`
}

// Tuner drives the control loop: every interval it snapshots the
// Sampler, asks the Controller for a decision over the resulting
// Window, and applies any change through Runtime.SetPolicy. Step runs
// one iteration synchronously for tests and harnesses that want
// deterministic pacing; Start runs it on a goroutine until Stop.
type Tuner struct {
	rt      *stm.Runtime
	sampler *Sampler
	ctl     *Controller
	lazy    bool

	mu        sync.Mutex
	prev      Counters
	prevLat   metrics.HistSnapshot
	prevAt    time.Time
	decisions []Decision
	seq       uint64
	manual    bool

	interval time.Duration
	stop     chan struct{}
	wg       sync.WaitGroup
	started  bool
}

// New builds a Tuner over rt fed by s (which must be installed as
// rt's tracer — the Tuner cannot verify that, it just reads the
// counters). interval <= 0 defaults to 100ms.
func New(rt *stm.Runtime, s *Sampler, lim Limits, interval time.Duration) *Tuner {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &Tuner{
		rt:       rt,
		sampler:  s,
		ctl:      NewController(lim),
		lazy:     rt.Config().Lazy,
		prev:     s.Counters(),
		prevLat:  s.Latency(),
		prevAt:   time.Now(),
		interval: interval,
	}
}

// Start launches the control loop goroutine. Safe to call once;
// subsequent calls are no-ops.
func (t *Tuner) Start() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		return
	}
	t.started = true
	t.stop = make(chan struct{})
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		tick := time.NewTicker(t.interval)
		defer tick.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tick.C:
				t.Step()
			}
		}
	}()
}

// Stop halts the control loop and waits for it to exit. The applied
// policy stays in force.
func (t *Tuner) Stop() {
	t.mu.Lock()
	if !t.started {
		t.mu.Unlock()
		return
	}
	t.started = false
	close(t.stop)
	t.mu.Unlock()
	t.wg.Wait()
}

// Step runs one control iteration and reports whether it changed the
// policy. Safe to call concurrently with the Start loop (iterations
// serialize on the tuner lock) and while transactions run.
func (t *Tuner) Step() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	cur := t.sampler.Counters()
	lat := t.sampler.Latency()
	w := cur.Sub(t.prev, now.Sub(t.prevAt))
	d := lat.Sub(t.prevLat)
	w.CommitP50Ns = d.Quantile(0.50)
	w.CommitP99Ns = d.Quantile(0.99)
	t.prev = cur
	t.prevLat = lat
	t.prevAt = now
	if t.manual {
		return false
	}
	p, reasons := t.ctl.Decide(w, t.rt.KEstimate(), t.lazy, t.rt.Policy())
	if len(reasons) == 0 {
		return false
	}
	t.rt.SetPolicy(p)
	t.record(p.String(), reasons)
	return true
}

// StepWindow runs one control iteration over a caller-supplied
// window instead of differencing the sampler: deterministic replay.
// Harnesses use it to drive the controller through a canned sequence
// (a latency-regression drill, a recorded production trace) with the
// tuner's real policy application and decision log, free of wall
// clock noise. It does not disturb the sampler snapshot the periodic
// Step differencing uses.
func (t *Tuner) StepWindow(w Window) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.manual {
		return false
	}
	p, reasons := t.ctl.Decide(w, t.rt.KEstimate(), t.lazy, t.rt.Policy())
	if len(reasons) == 0 {
		return false
	}
	t.rt.SetPolicy(p)
	t.record(p.String(), reasons)
	return true
}

// Override applies p manually and suspends automatic decisions until
// Resume — the POST /v1/policy path. The override is logged like any
// decision.
func (t *Tuner) Override(p stm.Policy) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.manual = true
	t.rt.SetPolicy(p)
	t.record(t.rt.Policy().String(), []string{"manual override"})
}

// Resume re-enables automatic decisions after an Override.
func (t *Tuner) Resume() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.manual {
		return
	}
	t.manual = false
	t.record(t.rt.Policy().String(), []string{"manual override lifted"})
}

// record appends to the bounded decision log. Caller holds t.mu.
func (t *Tuner) record(policy string, reasons []string) {
	t.seq++
	t.decisions = append(t.decisions, Decision{
		Seq:     t.seq,
		At:      time.Now(),
		Policy:  policy,
		Reasons: reasons,
	})
	if len(t.decisions) > decisionLogCap {
		t.decisions = t.decisions[len(t.decisions)-decisionLogCap:]
	}
}

// View renders the control plane for /v1/policy.
func (t *Tuner) View() PolicyView {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := PolicyView{
		Policy:    t.rt.Policy().String(),
		Auto:      !t.manual,
		Swaps:     t.rt.PolicySwaps(),
		KEstimate: t.rt.KEstimate(),
	}
	v.Decisions = append(v.Decisions, t.decisions...)
	return v
}

// Decisions returns a copy of the recent decision log.
func (t *Tuner) Decisions() []Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Decision(nil), t.decisions...)
}
