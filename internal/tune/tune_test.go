package tune

import (
	"strings"
	"testing"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/stm"
)

// feed pushes n synthetic committed transactions into s, each with
// the given grace-wait and total duration.
func feed(s *Sampler, n int, graceNs, durNs int64) {
	for i := 0; i < n; i++ {
		s.TraceTx(&stm.TxTrace{Committed: true, GraceWaitNs: graceNs, DurNs: durNs})
	}
}

type recordingTracer struct {
	n         int
	annotated int
}

func (r *recordingTracer) TraceTx(*stm.TxTrace) { r.n++ }
func (r *recordingTracer) AnnotateProgram(worker, ops int, compute, think float64) {
	r.annotated++
}

func TestSamplerCountersAndTee(t *testing.T) {
	next := &recordingTracer{}
	s := NewSampler(next)
	s.TraceTx(&stm.TxTrace{Committed: true, Retries: 2, KillsIssued: 1, GraceWaitNs: 100, DurNs: 1000})
	s.TraceTx(&stm.TxTrace{Committed: false, KillsSuffered: 3, Irrevocable: true, DurNs: 500})
	s.AnnotateProgram(0, 4, 1.5, 0)

	c := s.Counters()
	want := Counters{
		Commits: 1, UserAborts: 1, Retries: 2,
		KillsIssued: 1, KillsSuffered: 3, Irrevocable: 1,
		GraceWaitNs: 100, DurNs: 1500,
	}
	if c != want {
		t.Fatalf("counters = %+v, want %+v", c, want)
	}
	if next.n != 2 || next.annotated != 1 {
		t.Fatalf("tee saw %d traces / %d annotations, want 2 / 1", next.n, next.annotated)
	}

	// Window math over a delta.
	prev := c
	feed(s, 3, 50, 100)
	w := s.Counters().Sub(prev, time.Second)
	if w.Commits != 3 || w.GraceWaitNs != 150 || w.DurNs != 300 {
		t.Fatalf("window = %+v", w.Counters)
	}
	if got := w.GraceFrac(); got != 0.5 {
		t.Fatalf("GraceFrac = %v, want 0.5", got)
	}
	if got := w.CommitsPerSec(); got != 3 {
		t.Fatalf("CommitsPerSec = %v, want 3", got)
	}
}

// TestSamplerLatencyHistogram checks the commit-latency feed: only
// commits are observed, and two snapshots difference into a windowed
// distribution with quantiles near the fed durations.
func TestSamplerLatencyHistogram(t *testing.T) {
	s := NewSampler(nil)
	feed(s, 10, 0, 1000)
	s.TraceTx(&stm.TxTrace{Committed: false, DurNs: 1 << 40}) // abort: not a commit latency
	lat := s.Latency()
	if lat.Count != 10 {
		t.Fatalf("latency count = %d, want 10 (aborts must not observe)", lat.Count)
	}
	if q := lat.Quantile(0.99); q < 1000*(1-1.0/16) || q > 1000*(1+1.0/16) {
		t.Fatalf("p99 = %v, want ~1000 within bucket error", q)
	}

	prev := lat
	feed(s, 5, 0, 8000)
	d := s.Latency().Sub(prev)
	if d.Count != 5 {
		t.Fatalf("window delta count = %d, want 5", d.Count)
	}
	if q := d.Quantile(0.5); q < 8000*(1-1.0/16) || q > 8000*(1+1.0/16) {
		t.Fatalf("windowed p50 = %v, want ~8000", q)
	}
}

func TestSamplerWithoutTee(t *testing.T) {
	s := NewSampler(nil)
	s.TraceTx(&stm.TxTrace{Committed: true})
	s.AnnotateProgram(0, 1, 0, 0) // must not panic with no downstream
	if s.Counters().Commits != 1 {
		t.Fatal("commit not counted")
	}
}

// activeWindow is a Window busy enough to pass the MinWindowCommits
// gate, with conflict evidence so the regime rules engage.
func activeWindow(graceFrac float64) Window {
	const dur = 1_000_000
	return Window{
		Counters: Counters{
			Commits:     1000,
			Retries:     100,
			GraceWaitNs: int64(graceFrac * dur),
			DurNs:       dur,
		},
		Elapsed: time.Second,
	}
}

func basePolicy() stm.Policy {
	return stm.Policy{Resolution: core.RequestorAborts, KWindow: 64, BackoffFactor: 1}
}

func TestControllerThinWindowSkipped(t *testing.T) {
	c := NewController(Limits{})
	w := activeWindow(0.1)
	w.Commits = 10 // below MinWindowCommits
	p, reasons := c.Decide(w, 5, true, basePolicy())
	if len(reasons) != 0 || p != basePolicy() {
		t.Fatalf("thin window decided: %v", reasons)
	}
}

func TestControllerBootstrapsEstimator(t *testing.T) {
	c := NewController(Limits{})
	cur := basePolicy()
	cur.KWindow = 0
	p, reasons := c.Decide(activeWindow(0.1), 0, true, cur)
	if p.KWindow != DefaultLimits().KWindowMin {
		t.Fatalf("KWindow = %d, want %d", p.KWindow, DefaultLimits().KWindowMin)
	}
	if len(reasons) != 1 || !strings.Contains(reasons[0], "bootstrap") {
		t.Fatalf("reasons = %v", reasons)
	}
}

func TestControllerRegimeFlip(t *testing.T) {
	c := NewController(Limits{})

	// Long chains: flip RA -> RW.
	p, reasons := c.Decide(activeWindow(0.1), 3.0, true, basePolicy())
	if p.Resolution != core.RequestorWins || p.Strategy == nil || p.Strategy.Name() != "RRW" {
		t.Fatalf("k=3.0 policy = %s, want requestor-wins/RRW (%v)", p, reasons)
	}

	// Pair conflicts: flip RW -> RA.
	cur := basePolicy()
	cur.Resolution = core.RequestorWins
	p, _ = c.Decide(activeWindow(0.1), 2.0, true, cur)
	if p.Resolution != core.RequestorAborts || p.Strategy == nil || p.Strategy.Name() != "RRA" {
		t.Fatalf("k=2.0 policy = %s, want requestor-aborts/RRA", p)
	}

	// Hysteresis band: k between KLow and KHigh keeps the current
	// choice, in both directions.
	for _, res := range []core.Policy{core.RequestorAborts, core.RequestorWins} {
		cur := basePolicy()
		cur.Resolution = res
		p, reasons := c.Decide(activeWindow(0.1), 2.35, true, cur)
		if p.Resolution != res {
			t.Fatalf("k=2.35 flipped %v -> %v (%v)", res, p.Resolution, reasons)
		}
	}

	// No conflict evidence in the window: a 0 estimate must not force
	// a flip.
	w := activeWindow(0)
	w.GraceWaitNs, w.KillsIssued = 0, 0
	cur = basePolicy()
	cur.Resolution = core.RequestorWins
	p, _ = c.Decide(w, 0, true, cur)
	if p.Resolution != core.RequestorWins {
		t.Fatal("idle window flipped the resolution policy")
	}
}

func TestControllerBatchLane(t *testing.T) {
	c := NewController(Limits{})

	// Heavy grace waiting on a lazy runtime opens the lane.
	p, reasons := c.Decide(activeWindow(0.5), 2.35, true, basePolicy())
	if p.CommitBatch != DefaultLimits().BatchSize {
		t.Fatalf("CommitBatch = %d, want %d (%v)", p.CommitBatch, DefaultLimits().BatchSize, reasons)
	}

	// Contention gone: close it.
	cur := basePolicy()
	cur.CommitBatch = 4
	p, _ = c.Decide(activeWindow(0.01), 2.35, true, cur)
	if p.CommitBatch != 0 {
		t.Fatalf("CommitBatch = %d after contention dropped, want 0", p.CommitBatch)
	}

	// In between: hold.
	cur.CommitBatch = 4
	p, reasons = c.Decide(activeWindow(0.1), 2.35, true, cur)
	if p.CommitBatch != 4 || len(reasons) != 0 {
		t.Fatalf("mid-band changed lane: %d (%v)", p.CommitBatch, reasons)
	}

	// Eager runtimes never get a lane.
	p, _ = c.Decide(activeWindow(0.5), 2.35, false, basePolicy())
	if p.CommitBatch != 0 {
		t.Fatal("controller opened a combiner lane on an eager runtime")
	}
}

func TestControllerKWindowResize(t *testing.T) {
	c := NewController(Limits{})

	// Four noisy window means: grow.
	var p stm.Policy
	for i, k := range []float64{2.3, 4.5, 2.3, 4.5} {
		p, _ = c.Decide(activeWindow(0.1), k, true, basePolicy())
		if i < 3 && p.KWindow != 64 {
			t.Fatalf("resized after only %d samples", i+1)
		}
	}
	if p.KWindow != 128 {
		t.Fatalf("KWindow = %d after noisy means, want 128", p.KWindow)
	}

	// Four near-identical means on a large window: shrink.
	c = NewController(Limits{})
	cur := basePolicy()
	cur.KWindow = 256
	for _, k := range []float64{2.35, 2.36, 2.35, 2.36} {
		p, _ = c.Decide(activeWindow(0.1), k, true, cur)
	}
	if p.KWindow != 128 {
		t.Fatalf("KWindow = %d after stable means, want 128", p.KWindow)
	}

	// Never below the floor.
	c = NewController(Limits{})
	cur.KWindow = DefaultLimits().KWindowMin
	for _, k := range []float64{2.35, 2.36, 2.35, 2.36} {
		p, _ = c.Decide(activeWindow(0.1), k, true, cur)
	}
	if p.KWindow != DefaultLimits().KWindowMin {
		t.Fatalf("KWindow = %d, shrank below the floor", p.KWindow)
	}
}

// latWindow is an activeWindow carrying synthetic commit-latency
// quantiles, with grace fraction and k pinned inside both hysteresis
// bands so only the p99 rule can fire.
func latWindow(p99 float64, commits uint64) Window {
	w := activeWindow(0.1)
	w.Commits = commits
	w.CommitP50Ns = p99 / 2
	w.CommitP99Ns = p99
	return w
}

func TestControllerP99Backoff(t *testing.T) {
	const kMid = 2.35 // inside the KLow..KHigh band: no regime flip

	// Degraded tail with flat throughput halves an open lane.
	c := NewController(Limits{})
	cur := basePolicy()
	cur.CommitBatch = 8
	for i := 0; i < 3; i++ { // seed the baseline, then hold steady
		p, reasons := c.Decide(latWindow(100_000, 1000), kMid, true, cur)
		if len(reasons) != 0 || p != cur {
			t.Fatalf("stable window %d decided: %v", i, reasons)
		}
	}
	p, reasons := c.Decide(latWindow(400_000, 1000), kMid, true, cur)
	if len(reasons) != 1 || !strings.Contains(reasons[0], "p99") {
		t.Fatalf("degraded window reasons = %v, want one p99 reason", reasons)
	}
	if p.CommitBatch != 4 {
		t.Fatalf("CommitBatch = %d after p99 backoff, want 4", p.CommitBatch)
	}
	// The rule re-baselined: the same degraded window seeds a fresh
	// baseline instead of firing again.
	if _, reasons := c.Decide(latWindow(400_000, 1000), kMid, true, p); len(reasons) != 0 {
		t.Fatalf("re-baseline failed, fired twice: %v", reasons)
	}

	// A throughput gain above the flat tolerance vetoes the rule:
	// the tail is paying for itself in commits.
	c = NewController(Limits{})
	c.Decide(latWindow(100_000, 1000), kMid, true, cur)
	p, reasons = c.Decide(latWindow(400_000, 2000), kMid, true, cur)
	if len(reasons) != 0 || p != cur {
		t.Fatalf("p99 rule fired despite 2x throughput: %v", reasons)
	}

	// Without an open lane the actuator is the grace budget: double
	// CleanupCost from the 64µs floor, capped at CleanupCostMax.
	c = NewController(Limits{})
	unbatched := basePolicy()
	c.Decide(latWindow(100_000, 1000), kMid, true, unbatched)
	p, reasons = c.Decide(latWindow(400_000, 1000), kMid, true, unbatched)
	if len(reasons) != 1 || !strings.Contains(reasons[0], "p99") {
		t.Fatalf("unbatched degraded window reasons = %v", reasons)
	}
	if p.CleanupCost != 64*time.Microsecond {
		t.Fatalf("CleanupCost = %v, want 64µs floor", p.CleanupCost)
	}
	c = NewController(Limits{})
	unbatched.CleanupCost = 400 * time.Microsecond
	c.Decide(latWindow(100_000, 1000), kMid, true, unbatched)
	p, _ = c.Decide(latWindow(400_000, 1000), kMid, true, unbatched)
	if p.CleanupCost != DefaultLimits().CleanupCostMax {
		t.Fatalf("CleanupCost = %v, want cap %v", p.CleanupCost, DefaultLimits().CleanupCostMax)
	}
	// Already at the cap: nothing left to actuate, no decision.
	c = NewController(Limits{})
	unbatched.CleanupCost = DefaultLimits().CleanupCostMax
	c.Decide(latWindow(100_000, 1000), kMid, true, unbatched)
	if _, reasons := c.Decide(latWindow(400_000, 1000), kMid, true, unbatched); len(reasons) != 0 {
		t.Fatalf("decided at the actuator cap: %v", reasons)
	}

	// A window whose quantiles are zero (no histogram feed) must
	// neither fire nor disturb the baselines.
	c = NewController(Limits{})
	c.Decide(latWindow(100_000, 1000), kMid, true, cur)
	c.Decide(activeWindow(0.1), kMid, true, cur) // quantile-free window
	p, reasons = c.Decide(latWindow(400_000, 1000), kMid, true, cur)
	if len(reasons) != 1 || p.CommitBatch != 4 {
		t.Fatalf("quantile-free window disturbed the baseline: %v", reasons)
	}
}

// TestTunerStepP99Decision drives the loop end to end: the Tuner
// differences the Sampler's histogram, the Controller sees the
// windowed p99 collapse, and the runtime's policy lane is halved. A
// huge flat tolerance removes the wall-clock-dependent throughput
// veto so the test is deterministic.
func TestTunerStepP99Decision(t *testing.T) {
	s := NewSampler(nil)
	cfg := stm.DefaultConfig()
	cfg.Lazy = true
	cfg.Trace = s
	cfg.KWindow = 64
	cfg.CommitBatch = 8
	rt := stm.New(64, cfg)
	tn := New(rt, s, Limits{P99FlatTol: 1e9}, time.Hour)

	feed(s, 1000, 100, 1000) // gf=0.1: lane band holds; seeds p99 baseline
	if tn.Step() {
		t.Fatal("baseline window produced a decision")
	}
	feed(s, 1000, 100, 1000)
	if tn.Step() {
		t.Fatal("steady window produced a decision")
	}
	feed(s, 1000, 1600, 16000) // 16x tail blowout, same grace fraction
	if !tn.Step() {
		t.Fatal("degraded window produced no decision")
	}
	if got := rt.Policy().CommitBatch; got != 4 {
		t.Fatalf("CommitBatch = %d after p99 decision, want 4", got)
	}
	ds := tn.Decisions()
	if len(ds) != 1 || !strings.Contains(strings.Join(ds[0].Reasons, " "), "p99") {
		t.Fatalf("decision log = %+v, want one p99 reason", ds)
	}
}

func TestTunerStepAppliesDecision(t *testing.T) {
	s := NewSampler(nil)
	cfg := stm.DefaultConfig()
	cfg.Lazy = true
	cfg.Trace = s
	cfg.KWindow = 64
	cfg.Policy = core.RequestorAborts
	rt := stm.New(64, cfg)

	tn := New(rt, s, Limits{}, time.Hour) // Step drives it, not the ticker
	// Window 1: busy with heavy grace waiting — lane should open.
	feed(s, 1000, 600, 1000)
	if !tn.Step() {
		t.Fatal("Step made no decision on a contended window")
	}
	if got := rt.Policy().CommitBatch; got != DefaultLimits().BatchSize {
		t.Fatalf("runtime CommitBatch = %d after step, want %d", got, DefaultLimits().BatchSize)
	}
	if rt.PolicySwaps() == 0 {
		t.Fatal("no policy swap recorded")
	}

	// Window 2: idle — below the commit gate, no decision.
	if tn.Step() {
		t.Fatal("Step decided on an idle window")
	}

	v := tn.View()
	if len(v.Decisions) != 1 || !v.Auto {
		t.Fatalf("view = %+v", v)
	}
	if v.Policy != rt.Policy().String() {
		t.Fatalf("view policy %q != runtime policy %q", v.Policy, rt.Policy().String())
	}
}

func TestTunerOverrideAndResume(t *testing.T) {
	s := NewSampler(nil)
	cfg := stm.DefaultConfig()
	cfg.Lazy = true
	cfg.Trace = s
	rt := stm.New(64, cfg)
	tn := New(rt, s, Limits{}, time.Hour)

	p := rt.Policy()
	p.Hybrid = true
	tn.Override(p)
	if !rt.Policy().Hybrid {
		t.Fatal("override not applied")
	}
	if v := tn.View(); v.Auto {
		t.Fatal("view still reports auto after override")
	}

	// While overridden, a contended window must not be acted on.
	feed(s, 1000, 600, 1000)
	if tn.Step() {
		t.Fatal("Step decided while manually overridden")
	}

	tn.Resume()
	if v := tn.View(); !v.Auto {
		t.Fatal("view not auto after resume")
	}
	ds := tn.Decisions()
	if len(ds) != 2 {
		t.Fatalf("decision log has %d entries, want 2 (override + resume)", len(ds))
	}
	if ds[0].Seq >= ds[1].Seq {
		t.Fatal("decision sequence not increasing")
	}
}

func TestTunerStartStop(t *testing.T) {
	s := NewSampler(nil)
	cfg := stm.DefaultConfig()
	cfg.Lazy = true
	cfg.Trace = s
	rt := stm.New(64, cfg)
	tn := New(rt, s, Limits{}, time.Millisecond)
	tn.Start()
	tn.Start() // idempotent
	feed(s, 1000, 600, 1000)
	deadline := time.Now().Add(2 * time.Second)
	for rt.PolicySwaps() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	tn.Stop()
	tn.Stop() // idempotent
	if rt.PolicySwaps() == 0 {
		t.Fatal("background loop never applied a decision")
	}
}
