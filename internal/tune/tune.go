// Package tune closes the trace→policy loop online: it watches a
// running stm.Runtime through its trace stream and retunes the
// runtime's stm.Policy while transactions keep flowing.
//
// The package is the control plane the paper's offline analysis
// implies but never builds. Sections 5–8 derive, per conflict regime,
// which resolution policy and grace-period strategy win; Section 9
// reduces the choice to a rule over the conflict-chain length k
// (requestor-aborts for pair conflicts, requestor-wins for longer
// chains). Those results assume the regime is known. tune estimates
// the regime live — windowed commit/abort/kill rates, grace-wait
// time, and the runtime's windowed k estimate — and walks the policy
// toward the regime's winner with enough hysteresis that a noisy
// boundary does not thrash the runtime.
//
// Three pieces, smallest first:
//
//   - Sampler (this file): an stm.Tracer that folds every completed
//     transaction into cumulative atomic counters plus a commit-latency
//     histogram, teeing to an optional downstream tracer
//     (trace.Recorder keeps working behind it). Counters() snapshots;
//     Counters.Sub turns two snapshots into a Window of rates, and the
//     histogram delta gives the window its CommitP50Ns/CommitP99Ns.
//   - Controller (controller.go): pure decision logic. Given a
//     Window, the current k estimate and the current Policy, Decide
//     returns the next Policy plus human-readable reasons — or no
//     change. All thresholds live in Limits. The p99 rule is the
//     tail-aware half: when windowed commit p99 degrades against its
//     EWMA baseline while throughput stays flat, it backs off the
//     group-commit lane (or widens the grace budget) — latency pain
//     with no throughput payoff means the batch is queueing, not
//     amortizing.
//   - Tuner (tuner.go): the loop. A goroutine (or an explicit Step
//     call) snapshots the Sampler, asks the Controller, applies the
//     result via Runtime.SetPolicy, and appends to a bounded decision
//     log that /v1/policy renders.
package tune

import (
	"sync/atomic"
	"time"

	"txconflict/internal/metrics"
	"txconflict/internal/stm"
)

// Sampler is an stm.Tracer that aggregates the trace stream into
// cumulative counters cheap enough to leave on in production: one
// atomic add per field per completed transaction, no allocation, no
// locks. Install it as Config.Trace (optionally wrapping the tracer
// you already had) and snapshot it from the control loop.
//
// Beyond the scalar counters, the Sampler folds every committed
// block's duration into a log-bucketed latency histogram, so the
// Tuner can difference two snapshots and read windowed commit
// quantiles — the p99 signal the Controller's latency-backoff rule
// steers by. Rates alone cannot see a tail collapse: a batching knob
// can hold throughput flat while pushing p99 out an order of
// magnitude, which is exactly the regression the histogram exists to
// catch.
type Sampler struct {
	next stm.Tracer // optional downstream tracer (tee)

	commits       atomic.Uint64
	userAborts    atomic.Uint64
	retries       atomic.Uint64
	killsIssued   atomic.Uint64
	killsSuffered atomic.Uint64
	irrevocable   atomic.Uint64
	graceWaitNs   atomic.Int64
	durNs         atomic.Int64

	commitLat metrics.Histogram
}

// NewSampler returns a Sampler teeing to next (nil for none).
func NewSampler(next stm.Tracer) *Sampler { return &Sampler{next: next} }

// TraceTx implements stm.Tracer.
func (s *Sampler) TraceTx(t *stm.TxTrace) {
	if t.Committed {
		s.commits.Add(1)
		s.commitLat.Observe(t.DurNs)
	} else {
		s.userAborts.Add(1)
	}
	if t.Retries > 0 {
		s.retries.Add(uint64(t.Retries))
	}
	if t.KillsIssued > 0 {
		s.killsIssued.Add(uint64(t.KillsIssued))
	}
	if t.KillsSuffered > 0 {
		s.killsSuffered.Add(uint64(t.KillsSuffered))
	}
	if t.Irrevocable {
		s.irrevocable.Add(1)
	}
	s.graceWaitNs.Add(t.GraceWaitNs)
	s.durNs.Add(t.DurNs)
	if s.next != nil {
		s.next.TraceTx(t)
	}
}

// AnnotateProgram implements scenario.ProgramAnnotator by forwarding
// to the downstream tracer when it is one, so wrapping trace.Recorder
// in a Sampler loses none of its program-context annotations.
func (s *Sampler) AnnotateProgram(worker, ops int, compute, think float64) {
	if a, ok := s.next.(interface {
		AnnotateProgram(worker, ops int, compute, think float64)
	}); ok {
		a.AnnotateProgram(worker, ops, compute, think)
	}
}

// Counters is a point-in-time snapshot of a Sampler's cumulative
// totals.
type Counters struct {
	Commits       uint64
	UserAborts    uint64
	Retries       uint64
	KillsIssued   uint64
	KillsSuffered uint64
	Irrevocable   uint64
	GraceWaitNs   int64
	DurNs         int64
}

// Counters snapshots the cumulative totals. Fields are read one by
// one, so a snapshot taken under live traffic is approximate at the
// margin — fine for rate estimation, which is all it feeds.
func (s *Sampler) Counters() Counters {
	return Counters{
		Commits:       s.commits.Load(),
		UserAborts:    s.userAborts.Load(),
		Retries:       s.retries.Load(),
		KillsIssued:   s.killsIssued.Load(),
		KillsSuffered: s.killsSuffered.Load(),
		Irrevocable:   s.irrevocable.Load(),
		GraceWaitNs:   s.graceWaitNs.Load(),
		DurNs:         s.durNs.Load(),
	}
}

// Latency snapshots the cumulative commit-latency histogram. Like
// Counters, two snapshots difference (HistSnapshot.Sub) into one
// window's distribution.
func (s *Sampler) Latency() metrics.HistSnapshot {
	return s.commitLat.Snapshot()
}

// Window is the delta between two Counters snapshots — one control
// interval of observed behaviour, plus the wall time it covers and
// the commit-latency quantiles of the blocks that committed inside
// it (0 when the window's histogram delta is empty, e.g. windows
// built from bare counters).
type Window struct {
	Counters
	Elapsed time.Duration

	// CommitP50Ns and CommitP99Ns are windowed commit-latency
	// quantiles in nanoseconds, from the Sampler's histogram delta.
	CommitP50Ns, CommitP99Ns float64
}

// Sub returns the window from prev to c.
func (c Counters) Sub(prev Counters, elapsed time.Duration) Window {
	return Window{
		Counters: Counters{
			Commits:       c.Commits - prev.Commits,
			UserAborts:    c.UserAborts - prev.UserAborts,
			Retries:       c.Retries - prev.Retries,
			KillsIssued:   c.KillsIssued - prev.KillsIssued,
			KillsSuffered: c.KillsSuffered - prev.KillsSuffered,
			Irrevocable:   c.Irrevocable - prev.Irrevocable,
			GraceWaitNs:   c.GraceWaitNs - prev.GraceWaitNs,
			DurNs:         c.DurNs - prev.DurNs,
		},
		Elapsed: elapsed,
	}
}

// AbortRate is aborted attempts over all attempts in the window: the
// probability an optimistic execution was wasted. 0 when idle.
func (w Window) AbortRate() float64 {
	attempts := w.Commits + w.UserAborts + w.Retries
	if attempts == 0 {
		return 0
	}
	return float64(w.Retries) / float64(attempts)
}

// GraceFrac is the fraction of in-transaction wall time spent waiting
// in grace periods — the controller's proxy for lock contention at
// and before commit. 0 when idle.
func (w Window) GraceFrac() float64 {
	if w.DurNs <= 0 {
		return 0
	}
	f := float64(w.GraceWaitNs) / float64(w.DurNs)
	if f < 0 {
		return 0
	}
	return f
}

// CommitsPerSec is window commit throughput.
func (w Window) CommitsPerSec() float64 {
	if w.Elapsed <= 0 {
		return 0
	}
	return float64(w.Commits) / w.Elapsed.Seconds()
}
