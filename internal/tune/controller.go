package tune

import (
	"fmt"
	"time"

	"txconflict/internal/core"
	"txconflict/internal/stm"
	"txconflict/internal/strategy"
)

// Limits holds every threshold the Controller steers by. Each
// actuated knob gets a *pair* of thresholds (open/close, high/low)
// deliberately separated so the controller has hysteresis: a signal
// sitting exactly on a single boundary would otherwise flip the
// policy every window, and each flip costs a fresh estimator window
// and a round of retries under the wrong strategy.
type Limits struct {
	// KHigh and KLow bound the Section 9 regime decision on the
	// windowed chain-length estimate: above KHigh conflicts chain
	// (k > 2 regime, requestor-wins wins), below KLow they pair off
	// (k = 2 regime, requestor-aborts wins). Between the two the
	// current choice stands. The paper's boundary is k = 2; the
	// estimator reports the mean of a noisy window, so the defaults
	// straddle it asymmetrically (2.5 / 2.2) — chains must prove
	// themselves before the controller reaches for kills.
	KHigh, KLow float64

	// BatchOpenGraceFrac and BatchCloseGraceFrac bound the group
	// commit decision on the fraction of transaction time spent in
	// grace waits. Heavy grace waiting on a lazy runtime means
	// transactions keep finding commit-time locks held; the combiner
	// amortizes those acquisitions across a batch. Below the close
	// threshold the lane only adds handoff latency.
	BatchOpenGraceFrac, BatchCloseGraceFrac float64

	// BatchSize is the lane bound used when the controller opens the
	// combiner.
	BatchSize int

	// KWindowMin and KWindowMax bound the estimator window. The
	// controller grows the window (×2) while successive window means
	// disagree (variance above KVarHigh — a longer memory smooths
	// them) and shrinks it (÷2) once they agree tightly (below
	// KVarLow — a shorter memory tracks phase shifts faster).
	KWindowMin, KWindowMax int
	KVarHigh, KVarLow      float64

	// MinWindowCommits gates every decision: a window with fewer
	// commits is too thin to read a regime from and is skipped
	// entirely.
	MinWindowCommits uint64

	// P99DegradeFactor and P99FlatTol bound the latency-backoff
	// rule. The controller keeps an EWMA baseline of windowed commit
	// p99 and throughput; when a window's p99 exceeds the baseline by
	// more than the degrade factor while throughput stayed within the
	// flat tolerance of its own baseline, some knob is buying tail
	// latency without buying commits — the rule backs off (halve the
	// group-commit lane if one is open, otherwise widen the grace
	// budget via CleanupCost) and re-baselines. A throughput gain
	// above the tolerance vetoes the rule: a tail that pays for
	// itself in commits is the paper's trade, not a regression.
	P99DegradeFactor, P99FlatTol float64

	// CleanupCostMax caps the grace-budget widening actuator;
	// CleanupCost doubles per firing up to this bound.
	CleanupCostMax time.Duration
}

// DefaultLimits returns the thresholds used by -adaptive runs.
func DefaultLimits() Limits {
	return Limits{
		KHigh:               2.5,
		KLow:                2.2,
		BatchOpenGraceFrac:  0.20,
		BatchCloseGraceFrac: 0.05,
		BatchSize:           4,
		KWindowMin:          64,
		KWindowMax:          1024,
		KVarHigh:            0.5,
		KVarLow:             0.05,
		MinWindowCommits:    50,
		P99DegradeFactor:    1.5,
		P99FlatTol:          0.10,
		CleanupCostMax:      512 * time.Microsecond,
	}
}

// kHistLen is how many recent window-mean k readings the controller
// keeps for its variance estimate.
const kHistLen = 8

// Controller is the pure decision half of the tuner: state is the
// short history of k readings the window-resize rule needs plus the
// EWMA baselines the p99 backoff rule compares against. It is not
// safe for concurrent use; the Tuner serializes calls.
type Controller struct {
	lim   Limits
	kHist []float64

	// p99Base and tputBase are EWMA baselines of windowed commit p99
	// (ns) and throughput (commits/sec); 0 means unseeded. The p99
	// rule resets both after firing so one regression is one
	// decision, not one per window until the EWMA catches up.
	p99Base, tputBase float64
}

// NewController returns a Controller with the given limits. Zero
// limits fields fall back to DefaultLimits piecewise, so callers can
// override just the thresholds they care about.
func NewController(lim Limits) *Controller {
	def := DefaultLimits()
	if lim.KHigh <= 0 {
		lim.KHigh = def.KHigh
	}
	if lim.KLow <= 0 {
		lim.KLow = def.KLow
	}
	if lim.BatchOpenGraceFrac <= 0 {
		lim.BatchOpenGraceFrac = def.BatchOpenGraceFrac
	}
	if lim.BatchCloseGraceFrac <= 0 {
		lim.BatchCloseGraceFrac = def.BatchCloseGraceFrac
	}
	if lim.BatchSize <= 0 {
		lim.BatchSize = def.BatchSize
	}
	if lim.KWindowMin <= 0 {
		lim.KWindowMin = def.KWindowMin
	}
	if lim.KWindowMax <= 0 {
		lim.KWindowMax = def.KWindowMax
	}
	if lim.KVarHigh <= 0 {
		lim.KVarHigh = def.KVarHigh
	}
	if lim.KVarLow <= 0 {
		lim.KVarLow = def.KVarLow
	}
	if lim.MinWindowCommits == 0 {
		lim.MinWindowCommits = def.MinWindowCommits
	}
	if lim.P99DegradeFactor <= 1 {
		lim.P99DegradeFactor = def.P99DegradeFactor
	}
	if lim.P99FlatTol <= 0 {
		lim.P99FlatTol = def.P99FlatTol
	}
	if lim.CleanupCostMax <= 0 {
		lim.CleanupCostMax = def.CleanupCostMax
	}
	return &Controller{lim: lim, kHist: make([]float64, 0, kHistLen)}
}

// Decide inspects one window and returns the policy the runtime
// should run next, with one reason string per change. An empty reason
// list means no change (the returned policy is then cur). lazy
// reports whether the runtime commits lazily — the combiner lane only
// exists there, so the batch rule is skipped on eager runtimes.
func (c *Controller) Decide(w Window, kEst float64, lazy bool, cur stm.Policy) (stm.Policy, []string) {
	if w.Commits < c.lim.MinWindowCommits {
		return cur, nil
	}
	p := cur
	var reasons []string

	// The k-driven rules need the windowed estimator; bootstrap it
	// before reading anything from kEst.
	if p.KWindow == 0 {
		p.KWindow = c.lim.KWindowMin
		reasons = append(reasons,
			fmt.Sprintf("bootstrap: open k estimator window (kw=%d)", p.KWindow))
		return p, reasons
	}

	// Section 9 regime flip, gated on the window actually having
	// conflicts: an idle estimator reads 0, which is a statement
	// about load, not about chain length.
	if w.GraceWaitNs > 0 || w.KillsIssued > 0 {
		switch {
		case kEst > c.lim.KHigh && p.Resolution != core.RequestorWins:
			p.Resolution = core.RequestorWins
			p.Strategy = strategy.UniformRW{}
			reasons = append(reasons, fmt.Sprintf(
				"k=%.2f > %.2f: chained conflicts, requestor-wins + RRW", kEst, c.lim.KHigh))
		case kEst > 0 && kEst < c.lim.KLow && p.Resolution != core.RequestorAborts:
			p.Resolution = core.RequestorAborts
			p.Strategy = strategy.ExpRA{}
			reasons = append(reasons, fmt.Sprintf(
				"k=%.2f < %.2f: pair conflicts, requestor-aborts + RRA", kEst, c.lim.KLow))
		}
	}

	// Group-commit lane, lazy runtimes only.
	laneChanged := false
	if lazy {
		gf := w.GraceFrac()
		switch {
		case p.CommitBatch == 0 && gf > c.lim.BatchOpenGraceFrac:
			p.CommitBatch = c.lim.BatchSize
			laneChanged = true
			reasons = append(reasons, fmt.Sprintf(
				"grace %.0f%% of tx time > %.0f%%: open group-commit lane (b=%d)",
				gf*100, c.lim.BatchOpenGraceFrac*100, p.CommitBatch))
		case p.CommitBatch > 0 && gf < c.lim.BatchCloseGraceFrac:
			p.CommitBatch = 0
			laneChanged = true
			reasons = append(reasons, fmt.Sprintf(
				"grace %.0f%% of tx time < %.0f%%: close group-commit lane",
				gf*100, c.lim.BatchCloseGraceFrac*100))
		}
	}

	// p99 latency backoff. Windows without histogram data (p99 = 0)
	// leave the baselines untouched, and a window whose lane the
	// grace rule just moved is skipped — the quantiles it carries
	// were measured under the old lane setting.
	if w.CommitP99Ns > 0 && !laneChanged {
		tput := w.CommitsPerSec()
		switch {
		case c.p99Base == 0:
			c.p99Base, c.tputBase = w.CommitP99Ns, tput
		case w.CommitP99Ns > c.lim.P99DegradeFactor*c.p99Base &&
			tput < c.tputBase*(1+c.lim.P99FlatTol):
			// Tail blew out and commits did not: back off whatever is
			// trading latency for batching, then re-baseline so one
			// regression fires once.
			if p.CommitBatch > 1 {
				p.CommitBatch /= 2
				reasons = append(reasons, fmt.Sprintf(
					"commit p99 %.0fµs > %.1fx baseline %.0fµs with flat throughput: halve group-commit lane (b=%d)",
					w.CommitP99Ns/1e3, c.lim.P99DegradeFactor, c.p99Base/1e3, p.CommitBatch))
			} else {
				cc := p.CleanupCost * 2
				if cc <= 0 {
					cc = 64 * time.Microsecond
				}
				if cc > c.lim.CleanupCostMax {
					cc = c.lim.CleanupCostMax
				}
				if cc != p.CleanupCost {
					p.CleanupCost = cc
					reasons = append(reasons, fmt.Sprintf(
						"commit p99 %.0fµs > %.1fx baseline %.0fµs with flat throughput: widen grace budget (cleanup=%s)",
						w.CommitP99Ns/1e3, c.lim.P99DegradeFactor, c.p99Base/1e3, cc))
				}
			}
			c.p99Base, c.tputBase = 0, 0
		default:
			const alpha = 0.3
			c.p99Base += alpha * (w.CommitP99Ns - c.p99Base)
			c.tputBase += alpha * (tput - c.tputBase)
		}
	}

	// Estimator window resize from the variance of recent window
	// means.
	if kEst > 0 {
		c.kHist = append(c.kHist, kEst)
		if len(c.kHist) > kHistLen {
			c.kHist = c.kHist[1:]
		}
	}
	if len(c.kHist) >= 4 {
		v := variance(c.kHist)
		switch {
		case v > c.lim.KVarHigh && p.KWindow*2 <= c.lim.KWindowMax:
			p.KWindow *= 2
			reasons = append(reasons, fmt.Sprintf(
				"k variance %.2f > %.2f: grow estimator window to %d", v, c.lim.KVarHigh, p.KWindow))
			c.kHist = c.kHist[:0]
		case v < c.lim.KVarLow && p.KWindow/2 >= c.lim.KWindowMin:
			p.KWindow /= 2
			reasons = append(reasons, fmt.Sprintf(
				"k variance %.2f < %.2f: shrink estimator window to %d", v, c.lim.KVarLow, p.KWindow))
			c.kHist = c.kHist[:0]
		}
	}

	if len(reasons) == 0 {
		return cur, nil
	}
	return p, reasons
}

func variance(xs []float64) float64 {
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	return v / float64(len(xs))
}
