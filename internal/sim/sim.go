// Package sim provides the discrete-event simulation kernel
// underlying the multicore/HTM model (the stand-in for the MIT
// Graphite simulator used in the paper's Section 8.2).
//
// Time is measured in abstract cycles (uint64). Events scheduled for
// the same cycle fire in scheduling order (deterministic FIFO
// tie-breaking), which makes every simulation reproducible from its
// seed.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp in cycles.
type Time = uint64

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among same-cycle events
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Kernel is a single-threaded discrete-event simulator. The zero
// value is ready to use.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would silently corrupt causality.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Stop makes Run return after the currently executing event.
func (k *Kernel) Stop() { k.stopped = true }

// Step fires the single next event, advancing the clock. It reports
// whether an event was fired.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	ev := heap.Pop(&k.events).(*event)
	k.now = ev.at
	k.fired++
	ev.fn()
	return true
}

// Run fires events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil fires events with timestamps <= limit (or until Stop), then
// advances the clock to limit if it hasn't passed it already.
func (k *Kernel) RunUntil(limit Time) {
	k.stopped = false
	for !k.stopped {
		if len(k.events) == 0 || k.events[0].at > limit {
			break
		}
		k.Step()
	}
	if k.now < limit {
		k.now = limit
	}
}
