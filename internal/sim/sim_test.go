package sim

import (
	"testing"
	"testing/quick"

	"txconflict/internal/rng"
)

func TestEventOrdering(t *testing.T) {
	var k Kernel
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired in order %v", order)
	}
	if k.Now() != 30 {
		t.Fatalf("clock at %d, want 30", k.Now())
	}
	if k.Fired() != 3 {
		t.Fatalf("fired %d", k.Fired())
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	var k Kernel
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events reordered: pos %d got %d", i, v)
		}
	}
}

func TestAfter(t *testing.T) {
	var k Kernel
	var at Time
	k.After(7, func() {
		at = k.Now()
		k.After(5, func() { at = k.Now() })
	})
	k.Run()
	if at != 12 {
		t.Fatalf("nested After landed at %d, want 12", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var k Kernel
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestStop(t *testing.T) {
	var k Kernel
	count := 0
	for i := 1; i <= 10; i++ {
		k.At(Time(i), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
	if k.Pending() != 7 {
		t.Fatalf("pending %d, want 7", k.Pending())
	}
	// Run resumes.
	k.Run()
	if count != 10 {
		t.Fatalf("resume ran to %d", count)
	}
}

func TestRunUntil(t *testing.T) {
	var k Kernel
	fired := []Time{}
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5,10", fired)
	}
	if k.Now() != 12 {
		t.Fatalf("clock %d, want 12", k.Now())
	}
	k.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v after full run", fired)
	}
	if k.Now() != 100 {
		t.Fatalf("clock %d, want 100", k.Now())
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	var k Kernel
	hit := false
	k.At(10, func() { hit = true })
	k.RunUntil(10)
	if !hit {
		t.Fatal("event at the limit did not fire")
	}
}

func TestStepOnEmpty(t *testing.T) {
	var k Kernel
	if k.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

// TestMonotoneClockProperty fires random event sets and checks the
// clock never goes backwards and all events fire in timestamp order.
func TestMonotoneClockProperty(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		r := rng.New(uint64(seed))
		n := int(nRaw)%200 + 1
		var k Kernel
		var stamps []Time
		for i := 0; i < n; i++ {
			at := Time(r.Intn(1000))
			k.At(at, func() { stamps = append(stamps, k.Now()) })
		}
		k.Run()
		if len(stamps) != n {
			return false
		}
		for i := 1; i < len(stamps); i++ {
			if stamps[i] < stamps[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCascadingEvents(t *testing.T) {
	// An event chain where each event schedules the next; ensures the
	// heap handles interleaved push/pop during Run.
	var k Kernel
	count := 0
	var step func()
	step = func() {
		count++
		if count < 1000 {
			k.After(1, step)
		}
	}
	k.At(0, step)
	k.Run()
	if count != 1000 {
		t.Fatalf("cascade ran %d steps", count)
	}
	if k.Now() != 999 {
		t.Fatalf("clock %d, want 999", k.Now())
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var k Kernel
		for j := 0; j < 1000; j++ {
			k.At(Time(j%97), func() {})
		}
		k.Run()
	}
}

func BenchmarkCascade(b *testing.B) {
	var k Kernel
	count := 0
	var step func()
	step = func() {
		count++
		if count < b.N {
			k.After(1, step)
		}
	}
	k.At(0, step)
	k.Run()
}
