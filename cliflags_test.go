package txconflict_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestCmdFlagValidation pins the shared front-end convention
// (internal/cliutil) across every command with registry-backed
// selector flags: an unknown -scenario / -workload / -dist value must
// exit with status 2 and print the sorted registered names, so a typo
// is a one-round-trip fix instead of a silent fallback.
func TestCmdFlagValidation(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	bindir := t.TempDir()
	bins := map[string]string{}
	for _, cmd := range []string{"stmbench", "txsim", "txkvd"} {
		bin := filepath.Join(bindir, cmd)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", cmd, err, out)
		}
		bins[cmd] = bin
	}

	cases := []struct {
		name string
		cmd  string
		args []string
		want string // substring of stderr
		list string // when set, the suggestion list after this prefix must be sorted
	}{
		{"stmbench scenario", "stmbench", []string{"-scenario", "nope"},
			`stmbench: unknown scenario "nope"`, "registered scenarios: "},
		{"txsim scenario", "txsim", []string{"-scenario", "nope"},
			`txsim: unknown scenario "nope"`, "registered scenarios: "},
		{"txkvd workload", "txkvd", []string{"-workload", "nope"},
			`txkvd: unknown workload "nope"; registered workloads: document, hotspot-counter, readmostly`, ""},
		{"txkvd mode", "txkvd", []string{"-mode", "weird"},
			`txkvd: unknown mode "weird"`, ""},
		{"stmbench dist", "stmbench", []string{"-scenario", "hotspot", "-dist", "nope"},
			"nope", ""},
		{"txkvd dist", "txkvd", []string{"-bench", "-dist", "nope"},
			"nope", ""},
		// Integer knobs: zero/negative values that would wedge or
		// silently misconfigure a run are rejected up front with the
		// flag named in the message.
		{"stmbench negative batch", "stmbench", []string{"-scenario", "hotspot", "-batch", "-1"},
			"stmbench: -batch must be >= 0 (got -1)", ""},
		{"stmbench negative shards", "stmbench", []string{"-scenario", "hotspot", "-shards", "-4"},
			"stmbench: -shards must be >= 0", ""},
		{"stmbench negative kwindow", "stmbench", []string{"-scenario", "hotspot", "-kwindow", "-64"},
			"stmbench: -kwindow must be >= 0", ""},
		{"txsim negative detail", "txsim", []string{"-scenario", "stack", "-detail", "-8"},
			"txsim: -detail must be >= 0", ""},
		{"txsim negative ablate", "txsim", []string{"-scenario", "stack", "-ablate", "-8"},
			"txsim: -ablate must be >= 0", ""},
		{"txkvd zero workers", "txkvd", []string{"-workers", "0"},
			"txkvd: -workers must be > 0 (got 0)", ""},
		{"txkvd negative workers", "txkvd", []string{"-workers", "-2"},
			"txkvd: -workers must be > 0 (got -2)", ""},
		{"txkvd zero users", "txkvd", []string{"-bench", "-users", "0"},
			"txkvd: -users must be > 0 (got 0)", ""},
		{"txkvd zero batchsize", "txkvd", []string{"-bench", "-batchsize", "0"},
			"txkvd: -batchsize must be > 0 (got 0)", ""},
		{"txkvd negative batch", "txkvd", []string{"-batch", "-1"},
			"txkvd: -batch must be >= 0 (got -1)", ""},
		{"txkvd negative capacity", "txkvd", []string{"-capacity", "-1"},
			"txkvd: -capacity must be >= 0 (got -1)", ""},
		// Dependent flags: -fold only means anything inside the
		// group-commit combiner, so it must name its prerequisite.
		{"stmbench fold without batch", "stmbench", []string{"-scenario", "hotspot", "-fold"},
			"stmbench: -fold requires -batch > 0", ""},
		{"txkvd fold without batch", "txkvd", []string{"-bench", "-fold"},
			"txkvd: -fold requires -batch > 0", ""},
		{"stmbench zero delta", "stmbench", []string{"-scenario", "hotspot", "-delta", "0"},
			"stmbench: -delta must be > 0 (got 0)", ""},
		// Observability knobs: the phase-timer sampling interval must be
		// positive, and -pprof only means anything when there is an HTTP
		// mux to mount the handlers on.
		{"txkvd zero metrics-sample", "txkvd", []string{"-metrics-sample", "0"},
			"txkvd: -metrics-sample must be > 0 (got 0)", ""},
		{"stmbench zero metrics-sample", "stmbench", []string{"-scenario", "hotspot", "-metrics-sample", "0"},
			"stmbench: -metrics-sample must be > 0 (got 0)", ""},
		{"txkvd pprof without serve", "txkvd", []string{"-bench", "-pprof"},
			"txkvd: -pprof requires serve mode", ""},
		{"txsim zero delta", "txsim", []string{"-scenario", "hotspot", "-delta", "0"},
			"txsim: -delta must be > 0 (got 0)", ""},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var stderr bytes.Buffer
			cmd := exec.Command(bins[c.cmd], c.args...)
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("%s %v: err = %v, want exit error (stderr %q)", c.cmd, c.args, err, stderr.String())
			}
			if code := ee.ExitCode(); code != 2 {
				t.Fatalf("%s %v: exit %d, want 2 (stderr %q)", c.cmd, c.args, code, stderr.String())
			}
			msg := stderr.String()
			if !strings.Contains(msg, c.want) {
				t.Fatalf("%s %v: stderr %q lacks %q", c.cmd, c.args, msg, c.want)
			}
			if c.list != "" {
				i := strings.Index(msg, c.list)
				if i < 0 {
					t.Fatalf("%s %v: stderr %q lacks %q", c.cmd, c.args, msg, c.list)
				}
				names := strings.Split(strings.TrimSpace(msg[i+len(c.list):]), ", ")
				if !sort.StringsAreSorted(names) {
					t.Fatalf("%s %v: suggestions not sorted: %v", c.cmd, c.args, names)
				}
			}
		})
	}
}
