package txconflict_test

import (
	"os/exec"
	"testing"
)

// seedFailedPackages lists the seven packages that failed at setup in
// the seed tree (every importer of the then-missing internal/dist).
// Keeping them building is this module's most basic regression
// guarantee: a change that breaks dist's API surfaces here by name
// rather than as a wall of unrelated compile errors.
var seedFailedPackages = []string{
	"txconflict", // bench_test.go
	"txconflict/internal/adversary",
	"txconflict/internal/strategy",
	"txconflict/internal/synth",
	"txconflict/cmd/paper",
	"txconflict/cmd/advbench",
	"txconflict/examples/hybrid",
}

// TestSeedFailedPackagesBuild compiles each previously [setup failed]
// package (including its tests) through the toolchain.
func TestSeedFailedPackagesBuild(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	for _, pkg := range seedFailedPackages {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			// `go vet` type-checks the package together with its test
			// files, which is exactly the seed's failure mode.
			out, err := exec.Command("go", "vet", pkg).CombinedOutput()
			if err != nil {
				t.Errorf("go vet %s: %v\n%s", pkg, err, out)
			}
		})
	}
}
